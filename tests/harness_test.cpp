// Conventional-flow harness tests: scoreboard mismatch detection, hang
// detection (output and input starvation), pinned inputs, and campaign
// semantics — exercised on small purpose-built designs.
#include <gtest/gtest.h>

#include "aqed/monitor_util.h"
#include "harness/conventional_flow.h"

namespace aqed::harness {
namespace {

using ir::NodeRef;
using ir::Sort;

struct ToyKnobs {
  uint64_t increment = 1;      // design computes x + increment
  bool respect_gate = true;    // honours the "gate" input when true
  bool deadlock_after = false; // stop producing outputs after 3 transactions
};

// Single-transaction-in-flight accelerator computing x+increment with a
// 1-cycle latency; has an extra free input "gate" that (when respected)
// pauses output production while low.
core::AcceleratorInterface BuildToy(ir::TransitionSystem& ts,
                                    const ToyKnobs& knobs) {
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef gate = ts.AddInput("gate", Sort::BitVec(1));

  const NodeRef out_pending = core::Reg(ts, "out_pending", 1, 0);
  const NodeRef out_reg = core::Reg(ts, "out_reg", 8, 0);
  const NodeRef txn_count = core::Reg(ts, "txn_count", 4, 0);

  const NodeRef in_ready = ctx.Not(out_pending);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  NodeRef out_valid = out_pending;
  if (knobs.respect_gate) out_valid = ctx.And(out_valid, gate);
  if (knobs.deadlock_after) {
    out_valid =
        ctx.And(out_valid, ctx.Ult(txn_count, ctx.Const(4, 4)));
  }
  const NodeRef drain = ctx.And(out_valid, host_ready);

  core::LatchWhen(ts, out_reg, capture,
                  ctx.Add(in_data, ctx.Const(8, knobs.increment)));
  ts.SetNext(out_pending, ctx.Ite(capture, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));
  core::CountWhen(ts, txn_count, capture);

  core::AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_valid;
  acc.data_elems = {{in_data}};
  acc.out_elems = {{out_reg}};
  return acc;
}

GoldenFn PlusOne() {
  return [](const std::vector<uint64_t>& in, const std::vector<uint64_t>&) {
    return std::vector<uint64_t>{(in[0] + 1) & 0xFF};
  };
}

TestbenchOptions BaseOptions() {
  TestbenchOptions options;
  options.max_cycles = 2000;
  options.hang_timeout = 100;
  // The toy's "gate" is random by default; pin it high so outputs flow.
  options.pinned_inputs = {{"gate", 1}};
  return options;
}

TEST(RandomTestbenchTest, CleanDesignRunsClean) {
  ir::TransitionSystem ts;
  const auto acc = BuildToy(ts, {});
  Rng rng(1);
  const auto result = RunRandomTestbench(ts, acc, PlusOne(), rng,
                                         BaseOptions());
  EXPECT_FALSE(result.bug_detected());
  EXPECT_GT(result.outputs_checked, 100u);
  // The last transaction may still be in flight when the budget expires.
  EXPECT_LE(result.inputs_captured - result.outputs_checked, 1u);
}

TEST(RandomTestbenchTest, WrongIncrementDetectedAsMismatch) {
  ir::TransitionSystem ts;
  ToyKnobs knobs;
  knobs.increment = 2;
  const auto acc = BuildToy(ts, knobs);
  Rng rng(2);
  const auto result = RunRandomTestbench(ts, acc, PlusOne(), rng,
                                         BaseOptions());
  EXPECT_EQ(result.outcome, TestbenchResult::Outcome::kMismatch);
  EXPECT_LT(result.detection_cycle, 10u);  // first checked output fails
}

TEST(RandomTestbenchTest, DeadlockDetectedAsHang) {
  ir::TransitionSystem ts;
  ToyKnobs knobs;
  knobs.deadlock_after = true;
  const auto acc = BuildToy(ts, knobs);
  Rng rng(3);
  const auto result = RunRandomTestbench(ts, acc, PlusOne(), rng,
                                         BaseOptions());
  EXPECT_EQ(result.outcome, TestbenchResult::Outcome::kHang);
}

TEST(RandomTestbenchTest, UnpinnedGateStallsButNoFalseAlarm) {
  // With "gate" toggling randomly the design is slower but still correct;
  // the hang timeout must not produce a false alarm.
  ir::TransitionSystem ts;
  const auto acc = BuildToy(ts, {});
  Rng rng(4);
  TestbenchOptions options = BaseOptions();
  options.pinned_inputs.clear();
  const auto result = RunRandomTestbench(ts, acc, PlusOne(), rng, options);
  EXPECT_FALSE(result.bug_detected());
}

TEST(RandomTestbenchTest, PinnedInputHidesGateSensitiveBug) {
  // A bug visible only while gate is low: corrupt data when !gate at
  // capture. Pinning gate=1 (the testbench assumption) hides it; an
  // unpinned bench finds it.
  auto build = [](ir::TransitionSystem& ts) {
    auto& ctx = ts.ctx();
    const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
    const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
    const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
    const NodeRef gate = ts.AddInput("gate", Sort::BitVec(1));
    const NodeRef out_pending = core::Reg(ts, "out_pending", 1, 0);
    const NodeRef out_reg = core::Reg(ts, "out_reg", 8, 0);
    const NodeRef in_ready = ctx.Not(out_pending);
    const NodeRef capture = ctx.And(in_valid, in_ready);
    const NodeRef drain = ctx.And(out_pending, host_ready);
    const NodeRef computed = ctx.Ite(
        gate, ctx.Add(in_data, ctx.Const(8, 1)), ctx.Const(8, 0xEE));
    core::LatchWhen(ts, out_reg, capture, computed);
    ts.SetNext(out_pending,
               ctx.Ite(capture, ctx.True(),
                       ctx.Ite(drain, ctx.False(), out_pending)));
    core::AcceleratorInterface acc;
    acc.in_valid = in_valid;
    acc.in_ready = in_ready;
    acc.host_ready = host_ready;
    acc.out_valid = out_pending;
    acc.data_elems = {{in_data}};
    acc.out_elems = {{out_reg}};
    return acc;
  };

  CampaignOptions pinned;
  pinned.num_seeds = 3;
  pinned.testbench.max_cycles = 2000;
  pinned.testbench.pinned_inputs = {{"gate", 1}};
  EXPECT_FALSE(RunCampaign(build, PlusOne(), pinned).bug_detected);

  CampaignOptions unpinned = pinned;
  unpinned.testbench.pinned_inputs.clear();
  EXPECT_TRUE(RunCampaign(build, PlusOne(), unpinned).bug_detected);
}

TEST(CampaignTest, AccumulatesCyclesAcrossSeeds) {
  const auto campaign = RunCampaign(
      [](ir::TransitionSystem& ts) { return BuildToy(ts, {}); }, PlusOne(),
      [] {
        CampaignOptions options;
        options.num_seeds = 3;
        options.testbench.max_cycles = 500;
        options.testbench.pinned_inputs = {{"gate", 1}};
        return options;
      }());
  EXPECT_FALSE(campaign.bug_detected);
  EXPECT_EQ(campaign.total_cycles_simulated, 3u * 500u);
}

}  // namespace
}  // namespace aqed::harness
