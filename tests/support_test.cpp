// Support-library tests: bit utilities, deterministic RNG, statistics
// accumulators, status types.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "support/bits.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/status.h"
#include "support/verdict.h"

namespace aqed {
namespace {

volatile uint64_t benchmark_sink_ = 0;

TEST(BitsTest, WidthMaskAndTruncate) {
  EXPECT_EQ(WidthMask(1), 1u);
  EXPECT_EQ(WidthMask(8), 0xFFu);
  EXPECT_EQ(WidthMask(64), ~uint64_t{0});
  EXPECT_EQ(Truncate(0x1FF, 8), 0xFFu);
  EXPECT_EQ(Truncate(0x1FF, 9), 0x1FFu);
  EXPECT_EQ(Truncate(~uint64_t{0}, 64), ~uint64_t{0});
}

TEST(BitsTest, SignExtend) {
  EXPECT_EQ(SignExtend(0x7F, 8), 127);
  EXPECT_EQ(SignExtend(0x80, 8), -128);
  EXPECT_EQ(SignExtend(0xFF, 8), -1);
  EXPECT_EQ(SignExtend(0x1, 1), -1);
  EXPECT_EQ(SignExtend(0x0, 1), 0);
  EXPECT_EQ(SignExtend(~uint64_t{0}, 64), -1);
}

TEST(BitsTest, GetBit) {
  EXPECT_TRUE(GetBit(0b100, 2));
  EXPECT_FALSE(GetBit(0b100, 1));
  EXPECT_TRUE(GetBit(uint64_t{1} << 63, 63));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(43);
  EXPECT_NE(Rng(42).Next(), c.Next());
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBitsCanonical) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.NextBits(5), 31u);
    EXPECT_LE(rng.NextBits(1), 1u);
  }
  // Width 64 must produce large values eventually.
  bool high_bit_seen = false;
  for (int i = 0; i < 100; ++i) {
    if (GetBit(rng.NextBits(64), 63)) high_bit_seen = true;
  }
  EXPECT_TRUE(high_bit_seen);
}

TEST(RngTest, ChanceIsRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(1, 4)) ++hits;
  }
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
  Rng always(10);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(always.Chance(4, 4));
}

TEST(StatsTest, MinAvgMax) {
  MinAvgMax acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.ToString(), "-");
  acc.Add(4);
  acc.Add(8);
  acc.Add(6);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), 4);
  EXPECT_DOUBLE_EQ(acc.avg(), 6);
  EXPECT_DOUBLE_EQ(acc.max(), 8);
  EXPECT_EQ(acc.ToString(0), "4, 6, 8");
}

TEST(StatsTest, StopwatchAdvances) {
  Stopwatch watch;
  uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_sink_ = sink;
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  const double before = watch.ElapsedSeconds();
  watch.Reset();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().message(), "OK");
  const Status error = Status::Error("boom");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.message(), "boom");
}

TEST(StatusTest, StatusOr) {
  StatusOr<int> value(7);
  EXPECT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 7);
  StatusOr<int> error(Status::Error("nope"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().message(), "nope");
}

// The verdict vocabulary is wire-stable: journals, solve-cache lines, and
// aqed-server frames persist these names, so every value must round-trip
// through its one string mapping, and no two values may share a name.
TEST(VerdictTest, EveryVerdictRoundTripsExactly) {
  std::set<std::string> names;
  for (const Verdict verdict : kAllVerdicts) {
    const std::string name = ToString(verdict);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << name << " is duplicated";
    const auto parsed = VerdictFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, verdict) << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllVerdicts));
  EXPECT_FALSE(VerdictFromString("no-such-verdict").has_value());
  EXPECT_FALSE(VerdictFromString("").has_value());
  EXPECT_FALSE(VerdictFromString("?").has_value());
}

TEST(VerdictTest, EveryUnknownReasonRoundTripsExactly) {
  std::set<std::string> names;
  for (const UnknownReason reason : kAllUnknownReasons) {
    const std::string name = ToString(reason);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << name << " is duplicated";
    const auto parsed = UnknownReasonFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, reason) << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllUnknownReasons));
  EXPECT_FALSE(UnknownReasonFromString("Deadline").has_value());  // exact case
}

TEST(VerdictTest, EveryCancelReasonRoundTripsExactly) {
  std::set<std::string> names;
  for (const CancelReason reason : kAllCancelReasons) {
    const std::string name = ToString(reason);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << name << " is duplicated";
    const auto parsed = CancelReasonFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, reason) << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllCancelReasons));
  EXPECT_FALSE(CancelReasonFromString("first bug wins").has_value());
}

}  // namespace
}  // namespace aqed
