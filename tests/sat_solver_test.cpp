// Unit and randomized differential tests for the CDCL SAT solver.
#include "sat/solver.h"

#include <gtest/gtest.h>

#include <vector>

#include "sat/dimacs.h"
#include "support/rng.h"

namespace aqed::sat {
namespace {

Lit Pos(Var v) { return Lit(v, false); }
Lit NegL(Var v) { return Lit(v, true); }

TEST(LitTest, EncodingRoundTrip) {
  const Lit a = Pos(7);
  EXPECT_EQ(a.var(), 7u);
  EXPECT_FALSE(a.negated());
  EXPECT_TRUE((~a).negated());
  EXPECT_EQ((~~a), a);
  EXPECT_EQ(a.index(), 14u);
  EXPECT_EQ((~a).index(), 15u);
}

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver solver;
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SingleUnitClause) {
  Solver solver;
  const Var x = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Pos(x)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(x), LBool::kTrue);
}

TEST(SolverTest, ContradictingUnitsAreUnsat) {
  Solver solver;
  const Var x = solver.NewVar();
  EXPECT_TRUE(solver.AddClause({Pos(x)}));
  EXPECT_FALSE(solver.AddClause({NegL(x)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, EmptyClauseIsUnsat) {
  Solver solver;
  EXPECT_FALSE(solver.AddClause(std::span<const Lit>{}));
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, TautologyIsDropped) {
  Solver solver;
  const Var x = solver.NewVar();
  EXPECT_TRUE(solver.AddClause({Pos(x), NegL(x)}));
  EXPECT_EQ(solver.num_clauses(), 0u);
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, DuplicateLiteralsAreMerged) {
  Solver solver;
  const Var x = solver.NewVar();
  const Var y = solver.NewVar();
  EXPECT_TRUE(solver.AddClause({Pos(x), Pos(x), Pos(y)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SimpleImplicationChain) {
  Solver solver;
  std::vector<Var> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(solver.NewVar());
  for (int i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(solver.AddClause({NegL(vars[i]), Pos(vars[i + 1])}));
  }
  ASSERT_TRUE(solver.AddClause({Pos(vars[0])}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(solver.ModelValue(vars[i]), LBool::kTrue) << i;
  }
}

TEST(SolverTest, XorChainUnsat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x3 xor x1 = 1 is UNSAT (odd cycle).
  Solver solver;
  const Var a = solver.NewVar(), b = solver.NewVar(), c = solver.NewVar();
  auto add_xor_true = [&](Var x, Var y) {
    EXPECT_TRUE(solver.AddClause({Pos(x), Pos(y)}));
    EXPECT_TRUE(solver.AddClause({NegL(x), NegL(y)}));
  };
  add_xor_true(a, b);
  add_xor_true(b, c);
  add_xor_true(c, a);
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

// Pigeonhole: n+1 pigeons into n holes, classic hard UNSAT family.
void AddPigeonhole(Solver& solver, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (auto& row : at) {
    for (auto& var : row) var = solver.NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Pos(at[p][h]));
    ASSERT_TRUE(solver.AddClause(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(solver.AddClause({NegL(at[p1][h]), NegL(at[p2][h])}));
      }
    }
  }
}

TEST(SolverTest, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver solver;
    AddPigeonhole(solver, holes);
    EXPECT_EQ(solver.Solve(), SolveResult::kUnsat) << holes;
  }
}

TEST(SolverTest, AssumptionsFlipOutcome) {
  Solver solver;
  const Var x = solver.NewVar(), y = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Pos(x), Pos(y)}));
  const Lit assume_both_false[] = {NegL(x), NegL(y)};
  EXPECT_EQ(solver.Solve(assume_both_false), SolveResult::kUnsat);
  EXPECT_FALSE(solver.failed_assumptions().empty());
  // Solver is reusable after an assumption failure.
  const Lit assume_x[] = {Pos(x)};
  EXPECT_EQ(solver.Solve(assume_x), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(x), LBool::kTrue);
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverTest, FailedAssumptionCore) {
  Solver solver;
  const Var x = solver.NewVar(), y = solver.NewVar(), z = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({NegL(x), Pos(y)}));  // x -> y
  const Lit assumptions[] = {Pos(z), Pos(x), NegL(y)};
  EXPECT_EQ(solver.Solve(assumptions), SolveResult::kUnsat);
  // z is irrelevant; the core must mention x or y only.
  for (Lit lit : solver.failed_assumptions()) {
    EXPECT_NE(lit.var(), z);
  }
}

TEST(SolverTest, ConflictLimitReturnsUnknown) {
  Solver solver;
  AddPigeonhole(solver, 8);  // hard enough to exceed a tiny budget
  EXPECT_EQ(solver.Solve({}, SolveLimits{.max_conflicts = 10}),
            SolveResult::kUnknown);
  // The limit applies to one call only; an unlimited solve finishes.
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, IncrementalClauseAddition) {
  Solver solver;
  const Var x = solver.NewVar(), y = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Pos(x), Pos(y)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  ASSERT_TRUE(solver.AddClause({NegL(x)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  EXPECT_EQ(solver.ModelValue(y), LBool::kTrue);
  solver.AddClause({NegL(y)});
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

// --- randomized differential testing vs brute force ------------------------

// Evaluates a CNF under an assignment given as bit i of `assignment`.
bool EvalCnf(const Cnf& cnf, uint64_t assignment) {
  for (const auto& clause : cnf.clauses) {
    bool satisfied = false;
    for (Lit lit : clause) {
      const bool value = ((assignment >> lit.var()) & 1) != 0;
      if (value != lit.negated()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool BruteForceSat(const Cnf& cnf) {
  for (uint64_t assignment = 0; assignment < (uint64_t{1} << cnf.num_vars);
       ++assignment) {
    if (EvalCnf(cnf, assignment)) return true;
  }
  return false;
}

Cnf RandomCnf(Rng& rng, uint32_t num_vars, uint32_t num_clauses,
              uint32_t max_len) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (uint32_t c = 0; c < num_clauses; ++c) {
    const uint32_t len = 1 + static_cast<uint32_t>(rng.NextBelow(max_len));
    std::vector<Lit> clause;
    for (uint32_t l = 0; l < len; ++l) {
      clause.emplace_back(static_cast<Var>(rng.NextBelow(num_vars)),
                          rng.Chance(1, 2));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

class RandomCnfTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCnfTest, MatchesBruteForceAndModelIsValid) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const uint32_t num_vars = 3 + static_cast<uint32_t>(rng.NextBelow(10));
    const uint32_t num_clauses =
        2 + static_cast<uint32_t>(rng.NextBelow(5 * num_vars));
    const Cnf cnf = RandomCnf(rng, num_vars, num_clauses, 4);

    Solver solver;
    const bool consistent = LoadCnf(cnf, solver);
    const SolveResult result =
        consistent ? solver.Solve() : SolveResult::kUnsat;
    const bool expected = BruteForceSat(cnf);
    ASSERT_EQ(result == SolveResult::kSat, expected)
        << "seed " << GetParam() << " round " << round << "\n"
        << ToDimacs(cnf);
    if (result == SolveResult::kSat) {
      uint64_t assignment = 0;
      for (Var v = 0; v < cnf.num_vars; ++v) {
        if (solver.ModelValue(v) == LBool::kTrue) assignment |= 1ull << v;
      }
      EXPECT_TRUE(EvalCnf(cnf, assignment)) << "model does not satisfy CNF";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Feature ablations must not change outcomes, only performance.
class AblationTest : public ::testing::TestWithParam<int> {};

TEST_P(AblationTest, AblatedSolverAgreesWithBruteForce) {
  Solver::Options options;
  switch (GetParam()) {
    case 0: options.use_vsids = false; break;
    case 1: options.use_phase_saving = false; break;
    case 2: options.use_minimization = false; break;
    case 3: options.use_restarts = false; break;
    case 4: options.use_reduce_db = false; break;
  }
  Rng rng(99);
  for (int round = 0; round < 25; ++round) {
    const uint32_t num_vars = 3 + static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t num_clauses =
        2 + static_cast<uint32_t>(rng.NextBelow(4 * num_vars));
    const Cnf cnf = RandomCnf(rng, num_vars, num_clauses, 4);
    Solver solver(options);
    const bool consistent = LoadCnf(cnf, solver);
    const SolveResult result =
        consistent ? solver.Solve() : SolveResult::kUnsat;
    ASSERT_EQ(result == SolveResult::kSat, BruteForceSat(cnf))
        << "ablation " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Features, AblationTest, ::testing::Range(0, 5));

TEST(DimacsTest, RoundTrip) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{Pos(0), NegL(2)}, {Pos(1)}, {NegL(0), NegL(1), Pos(2)}};
  const std::string text = ToDimacs(cnf);
  auto parsed = ParseDimacsString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().num_vars, 3u);
  ASSERT_EQ(parsed.value().clauses.size(), 3u);
  EXPECT_EQ(parsed.value().clauses[0][1], NegL(2));
}

TEST(DimacsTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDimacsString("p cnf x y\n1 0\n").ok());
  EXPECT_FALSE(ParseDimacsString("1 2 0\n").ok());             // no header
  EXPECT_FALSE(ParseDimacsString("p cnf 2 1\n1 3 0\n").ok());  // var range
  EXPECT_FALSE(ParseDimacsString("p cnf 2 2\n1 2 0\n").ok());  // count
  EXPECT_FALSE(ParseDimacsString("p cnf 2 1\n1 2\n").ok());    // unterminated
}

TEST(SolverStatsTest, CountersAdvance) {
  Solver solver;
  AddPigeonhole(solver, 5);
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
  EXPECT_GT(solver.stats().conflicts, 0u);
  EXPECT_GT(solver.stats().decisions, 0u);
  EXPECT_GT(solver.stats().propagations, 0u);
}

}  // namespace
}  // namespace aqed::sat
