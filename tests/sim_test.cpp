// Simulator unit tests: cycle semantics, register latching, arrays,
// constraints/bads, and cross-checks against the IR evaluation semantics.
#include <gtest/gtest.h>

#include "ir/eval.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace aqed::sim {
namespace {

using ir::NodeRef;
using ir::Sort;

TEST(SimulatorTest, CounterCountsAndWraps) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef counter = ts.AddState("counter", Sort::BitVec(3), 5);
  ts.SetNext(counter, ctx.Add(counter, ctx.Const(3, 1)));
  ts.AddOutput("counter", counter);

  Simulator sim(ts);
  const uint64_t expected[] = {5, 6, 7, 0, 1};
  for (uint64_t value : expected) {
    sim.Eval();
    EXPECT_EQ(sim.Value(counter), value);
    sim.Step();
  }
  sim.Reset();
  sim.Eval();
  EXPECT_EQ(sim.Value(counter), 5u);
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(SimulatorTest, InputsDefaultToZeroAndClearAfterStep) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in = ts.AddInput("in", Sort::BitVec(8));
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(8), 0);
  ts.SetNext(reg, ctx.Add(reg, in));

  Simulator sim(ts);
  sim.SetInput(in, 3);
  sim.Eval();
  sim.Step();
  sim.Eval();  // input not re-set: defaults to 0
  EXPECT_EQ(sim.Value(reg), 3u);
  EXPECT_EQ(sim.Value(in), 0u);
}

TEST(SimulatorTest, ArrayStateWriteAndRead) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef mem = ts.AddState("mem", Sort::Array(2, 8), 7);
  const NodeRef addr = ts.AddInput("addr", Sort::BitVec(2));
  const NodeRef data = ts.AddInput("data", Sort::BitVec(8));
  const NodeRef write_enable = ts.AddInput("we", Sort::BitVec(1));
  ts.SetNext(mem, ctx.Ite(write_enable, ctx.Write(mem, addr, data), mem));
  const NodeRef read = ctx.Read(mem, addr);
  ts.AddOutput("read", read);

  Simulator sim(ts);
  sim.SetInput(addr, 2);
  sim.Eval();
  EXPECT_EQ(sim.Value(read), 7u);  // uniform init
  sim.SetInput(addr, 2);
  sim.SetInput(data, 0x42);
  sim.SetInput(write_enable, 1);
  sim.Eval();
  sim.Step();
  sim.SetInput(addr, 2);
  sim.Eval();
  EXPECT_EQ(sim.Value(read), 0x42u);
  EXPECT_EQ(sim.ArrayValue(mem)[2], 0x42u);
  EXPECT_EQ(sim.ArrayValue(mem)[1], 7u);
}

TEST(SimulatorTest, ConstraintsAndBads) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in = ts.AddInput("in", Sort::BitVec(4));
  ts.AddConstraint(ctx.Ult(in, ctx.Const(4, 8)));
  ts.AddBad(ctx.Eq(in, ctx.Const(4, 5)), "is5");
  ts.AddBad(ctx.Eq(in, ctx.Const(4, 9)), "is9");

  Simulator sim(ts);
  sim.SetInput(in, 5);
  sim.Eval();
  EXPECT_TRUE(sim.ConstraintsHold());
  EXPECT_EQ(sim.ActiveBads(), std::vector<uint32_t>{0});
  sim.SetInput(in, 9);
  sim.Eval();
  EXPECT_FALSE(sim.ConstraintsHold());
  EXPECT_EQ(sim.ActiveBads(), std::vector<uint32_t>{1});
  sim.SetInput(in, 1);
  sim.Eval();
  EXPECT_TRUE(sim.ActiveBads().empty());
}

TEST(SimulatorTest, SetStateOverridesInitialValue) {
  ir::TransitionSystem ts;
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(8));  // uninitialized
  ts.SetNext(reg, reg);
  Simulator sim(ts);
  sim.Eval();
  EXPECT_EQ(sim.Value(reg), 0u);  // uninitialized defaults to 0
  sim.SetState(reg, 0x7C);
  sim.Eval();
  EXPECT_EQ(sim.Value(reg), 0x7Cu);
  sim.Step();
  sim.Eval();
  EXPECT_EQ(sim.Value(reg), 0x7Cu);  // held by next function
}

// Random combinational expressions evaluated by the simulator must agree
// with direct EvalScalarOp computation.
TEST(SimulatorTest, RandomExpressionAgreesWithEval) {
  Rng rng(404);
  for (int round = 0; round < 50; ++round) {
    ir::TransitionSystem ts;
    const NodeRef a = ts.AddInput("a", Sort::BitVec(8));
    const NodeRef b = ts.AddInput("b", Sort::BitVec(8));
    auto& ctx = ts.ctx();
    // expr = ((a + b) * a) ^ (b >> (a & 3))
    const NodeRef sum = ctx.Mul(ctx.Add(a, b), a);
    const NodeRef shift = ctx.Lshr(b, ctx.And(a, ctx.Const(8, 3)));
    const NodeRef expr = ctx.Xor(sum, shift);
    ts.AddOutput("expr", expr);

    const uint64_t av = rng.NextBits(8);
    const uint64_t bv = rng.NextBits(8);
    Simulator sim(ts);
    sim.SetInput(a, av);
    sim.SetInput(b, bv);
    sim.Eval();
    const uint64_t expected =
        Truncate(((av + bv) * av) ^ (bv >> (av & 3)), 8);
    EXPECT_EQ(sim.Value(expr), expected);
  }
}

}  // namespace
}  // namespace aqed::sim
