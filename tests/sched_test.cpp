// Scheduler tests: cancellation primitives, the FIFO thread pool, BMC's
// cooperative cancellation, and VerificationSession semantics — job
// expansion, first-bug-wins cancellation across entries, policy scoping,
// and verdict stability across worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "accel/motivating.h"
#include "aqed/checker.h"
#include "aqed/monitor_util.h"
#include "bmc/engine.h"
#include "sched/cancellation.h"
#include "sched/session.h"
#include "sched/thread_pool.h"
#include "telemetry/export.h"
#include "telemetry/report.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace aqed::sched {
namespace {

using ir::NodeRef;
using ir::Sort;

// --- cancellation primitives -------------------------------------------------

TEST(CancellationTest, DefaultTokenIsUnarmedAndNeverCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTest, SourceCancelsItsTokens) {
  CancellationSource source;
  const CancellationToken token = source.token();
  EXPECT_TRUE(token.armed());
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancelled());
  // Tokens taken after the fact observe the same flag.
  EXPECT_TRUE(source.token().cancelled());
}

TEST(CancellationTest, AnyCombinatorObservesEitherSource) {
  CancellationSource a, b;
  const CancellationToken any = CancellationToken::Any(a.token(), b.token());
  EXPECT_TRUE(any.armed());
  EXPECT_FALSE(any.cancelled());
  b.Cancel();
  EXPECT_TRUE(any.cancelled());
  EXPECT_FALSE(a.token().cancelled());
}

// --- thread pool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  std::atomic<int> sum{0};
  ThreadPool pool(4);
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  pool.Submit([&] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&] { count.fetch_add(1); });
  pool.Submit([&] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, SingleWorkerRunsInSubmissionOrder) {
  std::vector<int> order;
  ThreadPool pool(1);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

// --- BMC cooperative cancellation -------------------------------------------

TEST(BmcCancellationTest, PreCancelledRunStopsBeforeTheFirstFrame) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef counter = ts.AddState("counter", Sort::BitVec(8), 0);
  ts.SetNext(counter, ctx.Add(counter, ctx.Const(8, 1)));
  ts.AddBad(ctx.Eq(counter, ctx.Const(8, 200)), "deep");

  CancellationSource source;
  source.Cancel();
  bmc::BmcOptions options;
  options.max_bound = 50;
  options.cancel = source.token();
  const bmc::BmcResult result = bmc::RunBmc(ts, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.outcome, bmc::BmcResult::Outcome::kUnknown);
  EXPECT_EQ(result.frames_explored, 0u);
}

// --- session toys ------------------------------------------------------------

// One-deep accelerator: capture when idle, respond next cycle with in + 1.
// With `early_output` the design asserts out_valid straight out of reset —
// a depth-0 FC(early-output) bug, the cheapest possible detection.
core::AcceleratorInterface BuildSessionToy(ir::TransitionSystem& ts,
                                           bool early_output) {
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef held = core::Reg(ts, "held", 8, 0);
  const NodeRef out_pending = core::Reg(ts, "out_pending", 1, 0);

  const NodeRef in_ready = ctx.Not(out_pending);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  NodeRef out_valid = out_pending;
  if (early_output) out_valid = ctx.Or(out_valid, ctx.Not(out_pending));
  const NodeRef drain = ctx.And(out_valid, host_ready);

  core::LatchWhen(ts, held, capture, in_data);
  ts.SetNext(out_pending, ctx.Ite(capture, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  core::AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_valid;
  acc.data_elems = {{in_data}};
  acc.out_elems = {{ctx.Add(held, ctx.Const(8, 1))}};
  return acc;
}

core::AcceleratorBuilder ToyBuilder(bool early_output) {
  return [early_output](ir::TransitionSystem& ts) {
    return BuildSessionToy(ts, early_output);
  };
}

// --- session semantics -------------------------------------------------------

TEST(VerificationSessionTest, ExpandsOneJobPerEnabledPropertyGroup) {
  core::SessionOptions session_options;
  session_options.jobs = 1;
  VerificationSession session(session_options);
  core::AqedOptions options;  // FC only
  options.bmc.max_bound = 4;
  session.Enqueue(ToyBuilder(false), options, "toy");
  core::AqedOptions fc_rb = options;
  fc_rb.rb = core::RbOptions{};
  fc_rb.rb->tau = 4;
  session.Enqueue(ToyBuilder(false), fc_rb);
  const auto result = session.Wait();

  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_EQ(result.num_entries, 2u);
  EXPECT_EQ(result.jobs[0].label, "toy/FC");
  EXPECT_EQ(result.jobs[0].entry, 0u);
  // Unlabeled entries use the bare property name, cheapest group first.
  EXPECT_EQ(result.jobs[1].label, "RB");
  EXPECT_EQ(result.jobs[2].label, "FC");
  EXPECT_EQ(result.jobs[2].entry, 1u);
  EXPECT_FALSE(result.bug_found(0));
  EXPECT_FALSE(result.bug_found(1));
  EXPECT_EQ(result.stats.num_jobs(), 3u);
  EXPECT_EQ(result.stats.num_cancelled(), 0u);
}

TEST(VerificationSessionTest, InlineSessionMatchesCheckAccelerator) {
  core::AqedOptions options;
  options.bmc.max_bound = 6;
  const auto direct = core::CheckAccelerator(ToyBuilder(true), options);
  VerificationSession session;
  session.Enqueue(ToyBuilder(true), options);
  const auto via_session = session.Wait();
  ASSERT_TRUE(direct.bug_found(0));
  EXPECT_EQ(via_session.bug_found(0), direct.bug_found(0));
  EXPECT_EQ(via_session.kind(0), direct.kind(0));
  EXPECT_EQ(via_session.cex_cycles(0), direct.cex_cycles(0));
  EXPECT_EQ(direct.kind(0), core::BugKind::kEarlyOutput);
  EXPECT_EQ(direct.cex_cycles(0), 1u);  // depth-0 bug -> 1-cycle trace
  // The reported run's transition system is owned by the result.
  EXPECT_FALSE(direct.ts(0).bads().empty());
}

TEST(VerificationSessionTest, FirstBugWinsCancelsSessionSiblings) {
  // Entry 0: clean design with a deliberately huge bound — thousands of
  // cheap per-depth refutations, far more wall time than entry 1 needs.
  // Entry 1: depth-0 bug, found in one solver call. Under the session-wide
  // cancel policy the bug must stop entry 0 mid-run: its FC job reports
  // cancelled with frames_explored strictly below the requested bound.
  constexpr uint32_t kHugeBound = 5000;
  core::SessionOptions session_options;
  session_options.jobs = 2;
  session_options.cancel = core::SessionOptions::CancelPolicy::kSession;
  VerificationSession session(session_options);
  core::AqedOptions heavy;
  heavy.bmc.max_bound = kHugeBound;
  session.Enqueue(ToyBuilder(false), heavy, "clean");
  core::AqedOptions cheap;
  cheap.bmc.max_bound = 6;
  session.Enqueue(ToyBuilder(true), cheap, "buggy");
  const auto result = session.Wait();

  EXPECT_FALSE(result.bug_found(0));
  ASSERT_TRUE(result.bug_found(1));
  EXPECT_EQ(result.kind(1), core::BugKind::kEarlyOutput);
  const core::JobResult& heavy_job = result.jobs[0];
  EXPECT_TRUE(heavy_job.cancelled);
  EXPECT_LT(heavy_job.result.bmc.frames_explored, kHugeBound);
  EXPECT_GE(result.stats.num_cancelled(), 1u);
}

TEST(VerificationSessionTest, NoCancelPolicyRunsEveryJobToCompletion) {
  core::SessionOptions session_options;
  session_options.jobs = 2;
  session_options.cancel = core::SessionOptions::CancelPolicy::kNone;
  VerificationSession session(session_options);
  core::AqedOptions clean;
  clean.bmc.max_bound = 8;
  session.Enqueue(ToyBuilder(false), clean, "clean");
  core::AqedOptions buggy;
  buggy.bmc.max_bound = 6;
  session.Enqueue(ToyBuilder(true), buggy, "buggy");
  const auto result = session.Wait();
  EXPECT_TRUE(result.bug_found(1));
  EXPECT_EQ(result.stats.num_cancelled(), 0u);
  EXPECT_EQ(result.jobs[0].result.bmc.frames_explored, 8u);
}

TEST(VerificationSessionTest, ExternalCancelStopsPendingJobs) {
  VerificationSession session;
  core::AqedOptions options;
  options.bmc.max_bound = 8;
  session.Enqueue(ToyBuilder(false), options);
  session.Cancel();
  const auto result = session.Wait();
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].cancelled);
  EXPECT_EQ(result.jobs[0].ts, nullptr);
  EXPECT_FALSE(result.bug_found(0));
}

// --- session telemetry export ------------------------------------------------

#if AQED_TELEMETRY_ENABLED

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

// Restores the process-wide telemetry switch (sessions with sink paths arm
// it as a side effect) and leaves a clean global tracer behind.
struct TelemetryCleanup {
  ~TelemetryCleanup() {
    telemetry::SetEnabled(false);
    telemetry::Tracer::Global().Clear();
  }
};

TEST(SessionTelemetryTest, WaitExportsTraceMetricsAndFlightRecorderSamples) {
  TelemetryCleanup cleanup;
  telemetry::Tracer::Global().Clear();
  const std::string trace_path = testing::TempDir() + "/aqed_ok_trace.json";
  const std::string metrics_path =
      testing::TempDir() + "/aqed_ok_metrics.jsonl";
  core::SessionOptions session_options;
  session_options.trace_path = trace_path;
  session_options.metrics_path = metrics_path;
  session_options.sample_period_ms = 1;
  VerificationSession session(session_options);
  core::AqedOptions options;
  options.bmc.max_bound = 6;
  session.Enqueue(ToyBuilder(true), options, "toy");
  const auto result = session.Wait();
  EXPECT_TRUE(result.bug_found(0));

  const auto spans = telemetry::ParseChromeTrace(SlurpFile(trace_path));
  ASSERT_TRUE(spans.has_value());
  EXPECT_TRUE(std::any_of(spans->begin(), spans->end(), [](const auto& s) {
    return s.name == "sched.job:toy/FC";
  }));
  const auto log = telemetry::ReadMetricsLog(SlurpFile(metrics_path));
  ASSERT_TRUE(log.has_value());
  // The sampler brackets the run: at least the start and stop samples.
  EXPECT_GE(log->samples.size(), 2u);
}

// Regression test for the RAII export guard: a builder that throws out of
// an inline Wait() must still leave parseable telemetry files behind — a
// session that dies mid-run is the one whose telemetry matters most.
TEST(SessionTelemetryTest, ExportGuardWritesFilesWhenABuilderThrows) {
  TelemetryCleanup cleanup;
  telemetry::Tracer::Global().Clear();
  const std::string trace_path = testing::TempDir() + "/aqed_throw_trace.json";
  const std::string metrics_path =
      testing::TempDir() + "/aqed_throw_metrics.jsonl";
  core::SessionOptions session_options;
  session_options.jobs = 1;  // inline: the exception escapes Wait()
  session_options.trace_path = trace_path;
  session_options.metrics_path = metrics_path;
  VerificationSession session(session_options);
  core::AqedOptions options;
  options.bmc.max_bound = 4;
  session.Enqueue(ToyBuilder(false), options, "before");
  session.Enqueue(
      [](ir::TransitionSystem&) -> core::AcceleratorInterface {
        throw std::runtime_error("builder exploded");
      },
      options, "boom");
  EXPECT_THROW(session.Wait(), std::runtime_error);

  // Both files exist and parse; the trace covers the work done before the
  // explosion (the first entry's completed FC job).
  const auto spans = telemetry::ParseChromeTrace(SlurpFile(trace_path));
  ASSERT_TRUE(spans.has_value());
  EXPECT_TRUE(std::any_of(spans->begin(), spans->end(), [](const auto& s) {
    return s.name == "sched.job:before/FC";
  }));
  EXPECT_TRUE(telemetry::ReadMetricsLog(SlurpFile(metrics_path)).has_value());
}

#endif  // AQED_TELEMETRY_ENABLED

// The scheduler must not change verdicts: the paper's motivating example
// (clock-enable bug) reports the identical result at every worker count.
TEST(VerificationSessionStressTest, MotivatingVerdictStableAcrossJobCounts) {
  accel::MotivatingConfig config;
  config.data_width = 2;
  config.bug_clock_enable = true;
  const core::AcceleratorBuilder build = [config](ir::TransitionSystem& ts) {
    return accel::BuildMotivating(ts, config).acc;
  };
  const auto options = core::AqedOptions::Builder()
                           .WithRb({.tau = 24})
                           .WithBound(16)  // the bug sits at depth 14
                           .WithRbBound(12)
                           .Build();

  const auto baseline = core::CheckAccelerator(build, options);
  ASSERT_TRUE(baseline.bug_found(0));
  for (uint32_t jobs : {2u, 8u}) {
    core::SessionOptions session_options;
    session_options.jobs = jobs;
    const auto result = core::CheckAccelerator(build, options,
                                               session_options);
    EXPECT_EQ(result.bug_found(0), baseline.bug_found(0)) << jobs;
    EXPECT_EQ(result.kind(0), baseline.kind(0)) << jobs;
    EXPECT_EQ(result.cex_cycles(0), baseline.cex_cycles(0)) << jobs;
  }
}

}  // namespace
}  // namespace aqed::sched
