// k-induction engine tests: 1-inductive and strictly-2-inductive proofs,
// counterexample agreement with BMC, and a case that *requires* simple-path
// constraints to converge.
#include <gtest/gtest.h>

#include "accel/dataflow.h"
#include "aqed/rb_instrument.h"
#include "bmc/kinduction.h"

namespace aqed::bmc {
namespace {

using ir::NodeRef;
using ir::Sort;

TEST(KInductionTest, SaturatingCounterBoundProvedAtK1) {
  // counter' = counter < 100 ? counter+1 : counter; prove counter <= 100.
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef counter = ts.AddState("counter", Sort::BitVec(8), 0);
  ts.SetNext(counter,
             ctx.Ite(ctx.Ult(counter, ctx.Const(8, 100)),
                     ctx.Add(counter, ctx.Const(8, 1)), counter));
  ts.AddBad(ctx.Ugt(counter, ctx.Const(8, 100)), "counter_over_100");

  const auto result = RunKInduction(ts, {});
  EXPECT_EQ(result.outcome, KInductionResult::Outcome::kProved);
  EXPECT_EQ(result.k, 1u);
}

TEST(KInductionTest, ReachableBadReportedAsCounterexample) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef counter = ts.AddState("counter", Sort::BitVec(8), 0);
  ts.SetNext(counter, ctx.Add(counter, ctx.Const(8, 1)));
  ts.AddBad(ctx.Eq(counter, ctx.Const(8, 6)), "hits6");

  const auto result = RunKInduction(ts, {});
  ASSERT_EQ(result.outcome, KInductionResult::Outcome::kCounterexample);
  EXPECT_EQ(result.trace.length(), 7u);  // same minimal witness as BMC
  EXPECT_TRUE(result.trace_validated);
}

// Transition structure 0->2->0 (reachable) and 1->3, 3->1 (unreachable);
// bad = (c == 3). Not 1-inductive (1 -> 3), but 2-inductive: the only
// predecessor of 3 is 1, whose only predecessor is 3 itself (~bad blocks it).
TEST(KInductionTest, StrictlyTwoInductiveProperty) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef c = ts.AddState("c", Sort::BitVec(2), 0);
  NodeRef next = ctx.Const(2, 2);                                // 0 -> 2
  next = ctx.Ite(ctx.Eq(c, ctx.Const(2, 2)), ctx.Const(2, 0), next);
  next = ctx.Ite(ctx.Eq(c, ctx.Const(2, 1)), ctx.Const(2, 3), next);
  next = ctx.Ite(ctx.Eq(c, ctx.Const(2, 3)), ctx.Const(2, 1), next);
  ts.SetNext(c, next);
  ts.AddBad(ctx.Eq(c, ctx.Const(2, 3)), "c3");

  KInductionOptions options;
  options.simple_path = false;  // not needed here
  const auto result = RunKInduction(ts, options);
  EXPECT_EQ(result.outcome, KInductionResult::Outcome::kProved);
  EXPECT_EQ(result.k, 2u);
}

// Unreachable lasso 1 <-> 2 with an input-controlled exit to the bad state
// 3: plain k-induction never converges (arbitrarily long good paths inside
// the lasso), simple-path constraints bound them.
ir::TransitionSystem MakeLassoSystem() {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef c = ts.AddState("c", Sort::BitVec(2), 0);
  const NodeRef exit = ts.AddInput("exit", Sort::BitVec(1));
  NodeRef next = ctx.Const(2, 0);                                // 0 -> 0
  next = ctx.Ite(ctx.Eq(c, ctx.Const(2, 1)), ctx.Const(2, 2), next);
  next = ctx.Ite(ctx.Eq(c, ctx.Const(2, 2)),
                 ctx.Ite(exit, ctx.Const(2, 3), ctx.Const(2, 1)), next);
  next = ctx.Ite(ctx.Eq(c, ctx.Const(2, 3)), ctx.Const(2, 3), next);
  ts.SetNext(c, next);
  ts.AddBad(ctx.Eq(c, ctx.Const(2, 3)), "c3");
  return ts;
}

TEST(KInductionTest, SimplePathConstraintsNeededForLasso) {
  {
    auto ts = MakeLassoSystem();
    KInductionOptions options;
    options.simple_path = false;
    options.max_k = 8;
    const auto result = RunKInduction(ts, options);
    EXPECT_EQ(result.outcome, KInductionResult::Outcome::kUnknown);
  }
  {
    auto ts = MakeLassoSystem();
    KInductionOptions options;
    options.simple_path = true;
    options.max_k = 8;
    const auto result = RunKInduction(ts, options);
    EXPECT_EQ(result.outcome, KInductionResult::Outcome::kProved);
    EXPECT_LE(result.k, 4u);
  }
}

TEST(KInductionTest, ArrayStateParticipatesInSimplePath) {
  // A 2-entry memory cycles a token; bad = both entries zero. Reachable
  // states always hold exactly one token, and the property is provable.
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef mem = ts.AddState("mem", Sort::Array(1, 1), 0);
  const NodeRef ptr = ts.AddState("ptr", Sort::BitVec(1), 0);
  // Write a 1 at ptr, clear the other slot by writing its complement flag.
  const NodeRef with_token = ctx.Write(
      ctx.Write(mem, ptr, ctx.Const(1, 0)),
      ctx.Not(ptr), ctx.Const(1, 1));
  ts.SetNext(mem, with_token);
  ts.SetNext(ptr, ctx.Not(ptr));
  const NodeRef none = ctx.And(
      ctx.Eq(ctx.Read(mem, ctx.Const(1, 0)), ctx.Const(1, 0)),
      ctx.Eq(ctx.Read(mem, ctx.Const(1, 1)), ctx.Const(1, 0)));
  // From reset (all zero) the very first frame is "no token": guard the
  // property with a warm-up flag.
  const NodeRef warmed = ts.AddState("warmed", Sort::BitVec(1), 0);
  ts.SetNext(warmed, ctx.True());
  ts.AddBad(ctx.And(warmed, none), "token_lost");

  const auto result = RunKInduction(ts, {});
  EXPECT_EQ(result.outcome, KInductionResult::Outcome::kProved);
}

// Unbounded proof of a real design invariant: the correct dataflow
// accelerator conserves credits — the credit pool plus the number of
// occupied pipeline stages is always exactly the initial pool size. (This
// is the auxiliary invariant behind its starvation freedom; the starvation
// *monitor* itself is not k-inductive without it, the classic reason
// IC3-style invariant generation exists.)
TEST(KInductionTest, ProvesDataflowCreditConservation) {
  ir::TransitionSystem ts;
  const auto design = accel::BuildDataflow(ts, {});
  auto& ctx = ts.ctx();
  // Sum credits + s1_full + s2_full + s3_full over 3 bits.
  auto find_state = [&](const std::string& name) {
    for (ir::NodeRef state : ts.states()) {
      if (ts.ctx().node(state).name == name) return state;
    }
    ADD_FAILURE() << "state not found: " << name;
    return ir::kNullNode;
  };
  const NodeRef credits = find_state("df.credits");
  NodeRef sum = ctx.Zext(credits, 3);
  for (const char* name : {"df.s1_full", "df.s2_full", "df.s3_full"}) {
    sum = ctx.Add(sum, ctx.Zext(find_state(name), 3));
  }
  ts.AddBad(ctx.Ne(sum, ctx.Const(3, 2)), "credit_leak");

  const auto result = RunKInduction(ts, {});
  EXPECT_EQ(result.outcome, KInductionResult::Outcome::kProved)
      << "outcome " << static_cast<int>(result.outcome) << " at k "
      << result.k;
  EXPECT_EQ(result.k, 1u);  // conservation is 1-inductive

  // The buggy (credit-leaking) design genuinely violates it.
  ir::TransitionSystem buggy_ts;
  accel::BuildDataflow(buggy_ts, {.bug_credit_leak = true});
  auto& bctx = buggy_ts.ctx();
  auto find_buggy = [&](const std::string& name) {
    for (ir::NodeRef state : buggy_ts.states()) {
      if (buggy_ts.ctx().node(state).name == name) return state;
    }
    return ir::kNullNode;
  };
  NodeRef bsum = bctx.Zext(find_buggy("df.credits"), 3);
  for (const char* name : {"df.s1_full", "df.s2_full", "df.s3_full"}) {
    bsum = bctx.Add(bsum, bctx.Zext(find_buggy(name), 3));
  }
  buggy_ts.AddBad(bctx.Ne(bsum, bctx.Const(3, 2)), "credit_leak");
  const auto buggy_result = RunKInduction(buggy_ts, {});
  EXPECT_EQ(buggy_result.outcome,
            KInductionResult::Outcome::kCounterexample);
  EXPECT_TRUE(buggy_result.trace_validated);
}

}  // namespace
}  // namespace aqed::bmc
