// Observability-plane tests: the Prometheus text exposition (exact integer
// counters beyond 2^53, name mangling, cumulative buckets), histogram
// quantile estimation and its JSONL round-trip (including the percentile
// backfill for pre-upgrade files), the ambient request trace id (scoping,
// Chrome-trace export, journal and cache provenance), the durable
// Prometheus file writer under the export failpoint, and the server's
// slow-request log threshold behavior end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "fault/campaign.h"
#include "fault/journal.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace aqed::telemetry {
namespace {

using support::FailpointAction;
namespace failpoint = support::failpoint;

std::string TestPath(const char* tag) {
  return "/tmp/aqed_observe_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

// --- Prometheus exposition ---------------------------------------------------

TEST(RenderPrometheusTest, CountersRenderExactDecimalAcrossTheFullRange) {
  MetricsSnapshot snapshot;
  // 2^64-1: a JSON double (or any double-typed renderer) would round this;
  // the exposition must print it digit-exact.
  snapshot.counters.push_back({"service.requests", 18446744073709551615ull});
  snapshot.counters.push_back({"sat.conflicts", 0});
  const std::string text = RenderPrometheus(snapshot);
  EXPECT_EQ(text,
            "# TYPE service_requests counter\n"
            "service_requests 18446744073709551615\n"
            "# TYPE sat_conflicts counter\n"
            "sat_conflicts 0\n");
}

TEST(RenderPrometheusTest, NamesAreMangledToTheExpositionCharset) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"weird-name.v2/final", 1});
  snapshot.counters.push_back({"9lives", 2});
  const std::string text = RenderPrometheus(snapshot);
  EXPECT_NE(text.find("weird_name_v2_final 1\n"), std::string::npos);
  // A leading digit is not a legal metric name start; an underscore is
  // prepended rather than producing an unscrapable exposition.
  EXPECT_NE(text.find("_9lives 2\n"), std::string::npos);
}

TEST(RenderPrometheusTest, GaugesRenderSigned) {
  MetricsSnapshot snapshot;
  snapshot.gauges.push_back({"governor.pressure", -3});
  EXPECT_EQ(RenderPrometheus(snapshot),
            "# TYPE governor_pressure gauge\n"
            "governor_pressure -3\n");
}

TEST(RenderPrometheusTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsSnapshot snapshot;
  MetricsSnapshot::HistogramValue histogram;
  histogram.name = "sched.job_ms";
  histogram.bounds = {0.5, 10};
  histogram.counts = {2, 3, 4};  // per-bucket; the wire wants cumulative
  histogram.count = 9;
  histogram.sum = 27.25;
  snapshot.histograms.push_back(std::move(histogram));
  EXPECT_EQ(RenderPrometheus(snapshot),
            "# TYPE sched_job_ms histogram\n"
            "sched_job_ms_bucket{le=\"0.5\"} 2\n"
            "sched_job_ms_bucket{le=\"10\"} 5\n"
            "sched_job_ms_bucket{le=\"+Inf\"} 9\n"
            "sched_job_ms_sum 27.25\n"
            "sched_job_ms_count 9\n");
}

TEST(RenderPrometheusTest, FileWriterIsDurableAndHonorsTheExportFailpoint) {
  const std::string path = TestPath("prom");
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"service.requests", 7});

  ASSERT_TRUE(WritePrometheusFile(path, snapshot));
  StatusOr<std::string> written = support::ReadFileToString(path);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value(), RenderPrometheus(snapshot));

  // An armed export failpoint fails the write and leaves the previous
  // exposition untouched — a scraper never sees a torn or missing file.
  failpoint::Arm("telemetry.export",
                 {.action = FailpointAction::kReturnError});
  MetricsSnapshot newer;
  newer.counters.push_back({"service.requests", 8});
  EXPECT_FALSE(WritePrometheusFile(path, newer));
  failpoint::DisarmAll();
  StatusOr<std::string> after = support::ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), written.value());
  std::remove(path.c_str());
}

// --- histogram quantiles -----------------------------------------------------

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  const std::vector<double> bounds = {1, 10};
  const std::vector<uint64_t> counts = {0, 0, 0};
  EXPECT_EQ(HistogramQuantile(bounds, counts, 0.5), 0.0);
}

TEST(HistogramQuantileTest, InterpolatesInsideTheCrossingBucket) {
  // All four observations in [0, 10): the median interpolates to the middle
  // of the bucket, Prometheus histogram_quantile style.
  const std::vector<double> bounds = {10};
  const std::vector<uint64_t> counts = {4, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.5), 5.0);
}

TEST(HistogramQuantileTest, InfBucketClampsToTheLastFiniteBound) {
  // Everything overflowed past the last edge: there is no upper bound to
  // interpolate toward, so the estimate clamps instead of inventing one.
  const std::vector<double> bounds = {10};
  const std::vector<uint64_t> counts = {0, 5};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.99), 10.0);
}

TEST(HistogramQuantileTest, QuantilesAreMonotoneOnASpread) {
  const std::vector<double> bounds = {1, 3, 10, 30};
  const std::vector<uint64_t> counts = {10, 5, 3, 1, 1};
  const double p50 = HistogramQuantile(bounds, counts, 0.50);
  const double p95 = HistogramQuantile(bounds, counts, 0.95);
  const double p99 = HistogramQuantile(bounds, counts, 0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
}

TEST(HistogramTest, ObservesIndependentlyOfTheKillSwitch) {
  // The server's request-latency histogram is a plain member, not a
  // registry lookup: it must count even when telemetry is disabled, or
  // --status would report empty quantiles on an untraced server.
  SetEnabled(false);
  Histogram histogram(DefaultLatencyBucketsMs());
  histogram.Observe(5.0);
  histogram.Observe(700.0);
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 705.0);
}

// --- metrics JSONL percentiles -----------------------------------------------

MetricsSnapshot SpreadSnapshot() {
  MetricsSnapshot snapshot;
  snapshot.timestamp_us = 42;
  // A counter above 2^53 rides along: the JSONL integer path must keep it
  // exact end to end, same as the Prometheus path.
  snapshot.counters.push_back({"service.requests", (1ull << 60) + 7});
  MetricsSnapshot::HistogramValue histogram;
  histogram.name = "service.request_ms";
  histogram.bounds = {1, 10};
  histogram.counts = {8, 1, 1};
  histogram.count = 10;
  histogram.sum = 40.5;
  histogram.p50 = HistogramQuantile(histogram.bounds, histogram.counts, 0.50);
  histogram.p95 = HistogramQuantile(histogram.bounds, histogram.counts, 0.95);
  histogram.p99 = HistogramQuantile(histogram.bounds, histogram.counts, 0.99);
  snapshot.histograms.push_back(std::move(histogram));
  return snapshot;
}

TEST(MetricsJsonlTest, HistogramPercentilesRoundTrip) {
  const MetricsSnapshot snapshot = SpreadSnapshot();
  std::ostringstream out;
  WriteMetricsJsonl(out, snapshot);
  const auto log = ReadMetricsLog(out.str());
  ASSERT_TRUE(log.has_value());
  ASSERT_EQ(log->snapshot.counters.size(), 1u);
  EXPECT_EQ(log->snapshot.counters[0].value, (1ull << 60) + 7);
  ASSERT_EQ(log->snapshot.histograms.size(), 1u);
  const auto& histogram = log->snapshot.histograms[0];
  const auto& original = snapshot.histograms[0];
  EXPECT_DOUBLE_EQ(histogram.p50, original.p50);
  EXPECT_DOUBLE_EQ(histogram.p95, original.p95);
  EXPECT_DOUBLE_EQ(histogram.p99, original.p99);
  EXPECT_EQ(histogram.counts, original.counts);
}

TEST(MetricsJsonlTest, PercentilesAreBackfilledForPreUpgradeFiles) {
  // A file written before the percentile fields existed: strip them from
  // the histogram line and the reader must recompute from bounds/counts.
  const MetricsSnapshot snapshot = SpreadSnapshot();
  std::ostringstream out;
  WriteMetricsJsonl(out, snapshot);
  std::string text = out.str();
  const size_t cut = text.find(",\"p50\":");
  ASSERT_NE(cut, std::string::npos);
  const size_t end = text.find("}\n", cut);
  ASSERT_NE(end, std::string::npos);
  text.erase(cut, end - cut);
  ASSERT_EQ(text.find(",\"p50\":"), std::string::npos);

  const auto log = ReadMetricsLog(text);
  ASSERT_TRUE(log.has_value());
  ASSERT_EQ(log->snapshot.histograms.size(), 1u);
  const auto& histogram = log->snapshot.histograms[0];
  const auto& original = snapshot.histograms[0];
  EXPECT_DOUBLE_EQ(histogram.p50, original.p50);
  EXPECT_DOUBLE_EQ(histogram.p95, original.p95);
  EXPECT_DOUBLE_EQ(histogram.p99, original.p99);
}

// --- ambient trace id --------------------------------------------------------

TEST(TraceIdTest, ScopedTraceIdNestsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    const ScopedTraceId outer(0xAu);
    EXPECT_EQ(CurrentTraceId(), 0xAu);
    {
      const ScopedTraceId inner(0xBu);
      EXPECT_EQ(CurrentTraceId(), 0xBu);
    }
    EXPECT_EQ(CurrentTraceId(), 0xAu);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST(TraceIdTest, SpanTraceIdLandsInChromeTraceArgsAsHex) {
  SetEnabled(true);
  Tracer::Global().Drain();  // discard spans earlier tests recorded
  {
    // Above 2^53 on purpose: the export must use the 16-hex string, not a
    // JSON double.
    const ScopedTraceId scope(0xFFF0000000000002ull);
    Span span("observe.traced", {{"depth", 7}});
  }
  SetEnabled(false);
  const std::vector<TraceEvent> events = Tracer::Global().Drain();
  const TraceEvent* traced = nullptr;
  for (const TraceEvent& event : events) {
    if (event.name == "observe.traced") traced = &event;
  }
  ASSERT_NE(traced, nullptr);
  EXPECT_EQ(traced->trace_id, 0xFFF0000000000002ull);

  std::ostringstream out;
  WriteChromeTrace(out, {traced, 1});
  EXPECT_NE(out.str().find("\"trace_id\":\"fff0000000000002\""),
            std::string::npos);
  EXPECT_NE(out.str().find("\"depth\":7"), std::string::npos);
}

// --- journal provenance ------------------------------------------------------

fault::MutantReport SampleReport(uint64_t trace_id) {
  fault::MutantReport report;
  report.design = "alu";
  report.key.op = fault::MutationOp::kStuckAtZero;
  report.key.node = 42;
  report.key.seed = 0xA9ED;
  report.classification = fault::Classification::kDetectedFc;
  report.kind = core::BugKind::kFunctionalConsistency;
  report.cex_cycles = 5;
  report.attempts = 2;
  report.trace_id = trace_id;
  return report;
}

TEST(JournalTraceTest, RecordsRoundTripTheTraceId) {
  for (const uint64_t trace_id :
       {uint64_t{0}, uint64_t{0xFEEDFACECAFEF00D}}) {
    std::string line = fault::EncodeJournalRecord(SampleReport(trace_id));
    ASSERT_FALSE(line.empty());
    line.pop_back();  // DecodeJournalRecord takes the line sans newline
    const auto decoded = fault::DecodeJournalRecord(line);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->trace_id, trace_id);
    EXPECT_EQ(decoded->design, "alu");
  }
}

// Rebuilds a journal line around a doctored payload (the CRC covers the
// payload bytes, so edits must re-seal it).
std::string SealJournalLine(const std::string& payload) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", fault::Crc32(payload));
  return "{\"crc\":\"" + std::string(crc) + "\",\"data\":" + payload + "}";
}

TEST(JournalTraceTest, PreTraceRecordsAndMalformedIdsDecodeAsUntraced) {
  std::string line = fault::EncodeJournalRecord(SampleReport(0xDEADBEEF));
  line.pop_back();
  const size_t data = line.find(",\"data\":") + 8;
  std::string payload = line.substr(data, line.size() - data - 1);

  // A journal written before trace ids existed: no field at all.
  const size_t field = payload.find(",\"trace_id\":\"");
  ASSERT_NE(field, std::string::npos);
  const size_t field_end = payload.find('"', field + 14);
  ASSERT_NE(field_end, std::string::npos);
  std::string stripped = payload;
  stripped.erase(field, field_end + 1 - field);
  const auto legacy = fault::DecodeJournalRecord(SealJournalLine(stripped));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->trace_id, 0u);

  // A malformed id (wrong charset) degrades to untraced, never poisons the
  // classification record around it.
  std::string mangled = payload;
  mangled.replace(field, field_end + 1 - field,
                  ",\"trace_id\":\"zzzzzzzzzzzzzzzz\"");
  const auto lax = fault::DecodeJournalRecord(SealJournalLine(mangled));
  ASSERT_TRUE(lax.has_value());
  EXPECT_EQ(lax->trace_id, 0u);
  EXPECT_EQ(lax->classification, fault::Classification::kDetectedFc);
}

// --- cache provenance --------------------------------------------------------

TEST(CacheProvenanceTest, EntriesPersistTheOriginatingTraceId) {
  const std::string path = TestPath("cache");
  service::CacheKey key;
  key.design_digest = 0x1111;
  key.config_digest = 0x2222;
  key.mutant_key = "op-swap@n4#seed=0x7";
  key.depth = 32;
  service::CachedVerdict verdict;
  verdict.classification = fault::Classification::kSurvived;
  verdict.trace_id = 0xFEEDFACECAFEF00Dull;
  {
    service::SolveCache cache;
    cache.Store(key, verdict);
    ASSERT_TRUE(cache.Save(path).ok());
  }
  StatusOr<std::string> file = support::ReadFileToString(path);
  ASSERT_TRUE(file.ok());
  EXPECT_NE(file.value().find("\"trace_id\":\"feedfacecafef00d\""),
            std::string::npos);

  service::SolveCache reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  const auto hit = reloaded.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->trace_id, 0xFEEDFACECAFEF00Dull);
  std::remove(path.c_str());
}

TEST(CacheProvenanceTest, UntracedEntriesOmitTheFieldAndReloadAsZero) {
  const std::string path = TestPath("cache0");
  service::CacheKey key;
  key.design_digest = 0x3333;
  key.mutant_key = "-";
  service::CachedVerdict verdict;
  verdict.classification = fault::Classification::kSurvived;
  {
    service::SolveCache cache;
    cache.Store(key, verdict);
    ASSERT_TRUE(cache.Save(path).ok());
  }
  StatusOr<std::string> file = support::ReadFileToString(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value().find("trace_id"), std::string::npos);

  service::SolveCache reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  const auto hit = reloaded.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->trace_id, 0u);
  std::remove(path.c_str());
}

// --- slow-request log --------------------------------------------------------

std::string TestSocketPath(const char* tag) {
  return TestPath(tag) + ".sock";
}

service::CampaignRequest SmallAluRequest() {
  service::CampaignRequest request;
  request.designs = {"alu"};
  request.num_mutants = 3;
  request.seed = 7;
  request.jobs = 2;
  request.tenant = "observer";
  return request;
}

TEST(SlowLogTest, ZeroThresholdLogsEveryCampaignWithItsTraceId) {
  service::ServerOptions options;
  options.socket_path = TestSocketPath("slow0");
  options.slow_request_ms = 0;
  options.slow_log_path = TestPath("slow0") + ".jsonl";
  std::remove(options.slow_log_path.c_str());
  service::AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  service::Client client(options.socket_path);
  service::CampaignRequest request = SmallAluRequest();
  request.trace_id = 0xABCDEF0123456789ull;
  StatusOr<service::CampaignResponse> response = client.RunCampaign(request);
  ASSERT_TRUE(response.ok()) << response.status().message();
  ASSERT_TRUE(response.value().ok) << response.value().error;
  server.Stop();

  StatusOr<std::string> log = support::ReadFileToString(options.slow_log_path);
  ASSERT_TRUE(log.ok());
  // Exactly one campaign ran, so exactly one JSONL record — and every field
  // the schema promises, parsed (not grepped) to prove well-formedness.
  const std::string text = log.value();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  const auto record = ParseJson(text.substr(0, text.find('\n')));
  ASSERT_TRUE(record.has_value());
  ASSERT_NE(record->Find("trace_id"), nullptr);
  EXPECT_EQ(record->Find("trace_id")->AsString(), "abcdef0123456789");
  ASSERT_NE(record->Find("tenant"), nullptr);
  EXPECT_EQ(record->Find("tenant")->AsString(), "observer");
  ASSERT_NE(record->Find("verdict"), nullptr);
  EXPECT_EQ(record->Find("verdict")->AsString(), "ok");
  ASSERT_NE(record->Find("designs"), nullptr);
  EXPECT_EQ(record->Find("designs")->AsString(), "alu");
  ASSERT_NE(record->Find("depth"), nullptr);
  EXPECT_GT(record->Find("depth")->AsInt(), 0);
  ASSERT_NE(record->Find("wall_ms"), nullptr);
  ASSERT_NE(record->Find("digest"), nullptr);
  EXPECT_EQ(record->Find("digest")->AsString().size(), 16u);
  std::remove(options.slow_log_path.c_str());
}

TEST(SlowLogTest, HugeThresholdLogsNothing) {
  service::ServerOptions options;
  options.socket_path = TestSocketPath("slowinf");
  options.slow_request_ms = 1ll << 30;  // nothing is that slow
  options.slow_log_path = TestPath("slowinf") + ".jsonl";
  std::remove(options.slow_log_path.c_str());
  service::AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  service::Client client(options.socket_path);
  StatusOr<service::CampaignResponse> response =
      client.RunCampaign(SmallAluRequest());
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().ok) << response.value().error;
  server.Stop();

  // The log file exists (opened at start) but holds no records.
  StatusOr<std::string> log = support::ReadFileToString(options.slow_log_path);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().empty());
  std::remove(options.slow_log_path.c_str());
}

}  // namespace
}  // namespace aqed::telemetry
