// GSM, optical-flow and dataflow accelerators (paper Table 2): golden-model
// agreement, clean A-QED passes, and the expected property (FC or RB)
// catching each buggy variant.
#include <gtest/gtest.h>

#include "accel/dataflow.h"
#include "accel/gsm.h"
#include "accel/optflow.h"
#include "aqed/checker.h"
#include "aqed/report.h"
#include "harness/conventional_flow.h"
#include "sim/simulator.h"

namespace aqed {
namespace {

// Generic golden-agreement driver for single-element-batch designs.
void RunAgainstGolden(const ir::TransitionSystem& ts,
                      const core::AcceleratorInterface& acc,
                      const harness::GoldenFn& golden, uint32_t num_txns,
                      uint64_t seed) {
  ASSERT_TRUE(ts.Validate().ok());
  sim::Simulator sim(ts);
  Rng rng(seed);
  uint32_t sent = 0, received = 0;
  std::vector<std::vector<uint64_t>> expected;
  for (int cycle = 0; cycle < 1000 && received < num_txns; ++cycle) {
    const bool try_send = sent < num_txns && rng.Chance(3, 4);
    sim.SetInput(acc.in_valid, try_send ? 1 : 0);
    std::vector<uint64_t> words;
    for (ir::NodeRef word : acc.data_elems[0]) {
      const uint64_t value = rng.NextBits(8);
      sim.SetInput(word, value);
      words.push_back(value);
    }
    sim.SetInput(acc.host_ready, rng.Chance(7, 8) ? 1 : 0);
    sim.Eval();
    if (try_send && sim.Value(acc.in_ready)) {
      expected.push_back(golden(words, {}));
      ++sent;
    }
    if (sim.Value(acc.out_valid) && sim.Value(acc.host_ready)) {
      ASSERT_LT(received, expected.size());
      EXPECT_EQ(sim.Value(acc.out_elems[0][0]), expected[received][0])
          << "txn " << received;
      ++received;
    }
    sim.Step();
  }
  EXPECT_EQ(received, num_txns);
}

// --- GSM --------------------------------------------------------------------

TEST(GsmSim, MatchesGolden) {
  ir::TransitionSystem ts;
  const auto design = accel::BuildGsm(ts, {});
  RunAgainstGolden(ts, design.acc, accel::GsmGolden(), 10, 21);
}

TEST(GsmAqed, CleanDesignPasses) {
  const auto options = core::AqedOptions::Builder()
                           .WithRb({.tau = accel::GsmResponseBound()})
                           .WithFcBound(8)
                           .WithRbBound(12)
                           .Build();
  const auto result = core::CheckAccelerator(
      [](ir::TransitionSystem& t) { return accel::BuildGsm(t, {}).acc; },
      options);
  EXPECT_FALSE(result.bug_found())
      << core::FormatResult(result.ts(), result.aqed());
}

TEST(GsmAqed, TapIndexBugCaughtByFc) {
  const auto options = core::AqedOptions::Builder()
                           .WithRb({.tau = accel::GsmResponseBound()})
                           .WithFcBound(22)
                           .WithRbBound(20)
                           .WithConflictBudget(400000)
                           .Build();
  const auto result = core::CheckAccelerator(
      [](ir::TransitionSystem& t) {
        return accel::BuildGsm(t, {.bug_tap_index = true}).acc;
      },
      options);
  ASSERT_TRUE(result.bug_found()) << core::SummarizeResult(result.aqed());
  EXPECT_EQ(result.kind(), core::BugKind::kFunctionalConsistency);
  EXPECT_TRUE(result.aqed().bmc.trace_validated);
}

// --- optical flow -------------------------------------------------------------

TEST(OptFlowSim, MatchesGolden) {
  ir::TransitionSystem ts;
  const auto design = accel::BuildOptFlow(ts, {});
  RunAgainstGolden(ts, design.acc, accel::OptFlowGolden(), 10, 22);
}

TEST(OptFlowAqed, CleanDesignPasses) {
  const auto options = core::AqedOptions::Builder()
                           .WithRb({.tau = accel::OptFlowResponseBound()})
                           .WithFcBound(8)
                           .WithRbBound(18)
                           .Build();
  const auto result = core::CheckAccelerator(
      [](ir::TransitionSystem& t) { return accel::BuildOptFlow(t, {}).acc; },
      options);
  EXPECT_FALSE(result.bug_found())
      << core::FormatResult(result.ts(), result.aqed());
}

TEST(OptFlowAqed, FifoSizingDeadlockCaughtByRb) {
  const auto options = core::AqedOptions::Builder()
                           .WithRb({.tau = accel::OptFlowResponseBound()})
                           .WithFcBound(8)
                           .WithRbBound(24)
                           .WithConflictBudget(400000)
                           .Build();
  const auto result = core::CheckAccelerator(
      [](ir::TransitionSystem& t) {
        return accel::BuildOptFlow(t, {.bug_fifo_sizing = true}).acc;
      },
      options);
  ASSERT_TRUE(result.bug_found()) << core::SummarizeResult(result.aqed());
  EXPECT_EQ(result.kind(), core::BugKind::kResponseBound);
  EXPECT_TRUE(result.aqed().bmc.trace_validated);
}

TEST(OptFlowConventional, DeadlockSeenAsHang) {
  harness::CampaignOptions options;
  options.num_seeds = 2;
  options.testbench.max_cycles = 4000;
  options.testbench.hang_timeout = 200;
  const auto campaign = harness::RunCampaign(
      [](ir::TransitionSystem& ts) {
        return accel::BuildOptFlow(ts, {.bug_fifo_sizing = true}).acc;
      },
      accel::OptFlowGolden(), options);
  EXPECT_TRUE(campaign.bug_detected);
  EXPECT_EQ(campaign.outcome, harness::TestbenchResult::Outcome::kHang);
}

// --- dataflow ---------------------------------------------------------------

TEST(DataflowSim, MatchesGolden) {
  ir::TransitionSystem ts;
  const auto design = accel::BuildDataflow(ts, {});
  RunAgainstGolden(ts, design.acc, accel::DataflowGolden(), 12, 23);
}

TEST(DataflowAqed, CleanDesignPasses) {
  core::RbOptions rb;
  rb.tau = accel::DataflowResponseBound();
  rb.rdin_bound = accel::DataflowRdinBound();
  const auto options = core::AqedOptions::Builder()
                           .WithRb(rb)
                           .WithFcBound(8)
                           .WithRbBound(14)
                           .Build();
  const auto result = core::CheckAccelerator(
      [](ir::TransitionSystem& t) { return accel::BuildDataflow(t, {}).acc; },
      options);
  EXPECT_FALSE(result.bug_found())
      << core::FormatResult(result.ts(), result.aqed());
}

TEST(DataflowAqed, CreditLeakCaughtByRbStarvation) {
  core::RbOptions rb;
  rb.tau = accel::DataflowResponseBound();
  rb.rdin_bound = accel::DataflowRdinBound();
  const auto options = core::AqedOptions::Builder()
                           .WithRb(rb)
                           .WithFcBound(8)
                           .WithRbBound(24)
                           .WithConflictBudget(400000)
                           .Build();
  const auto result = core::CheckAccelerator(
      [](ir::TransitionSystem& t) {
        return accel::BuildDataflow(t, {.bug_credit_leak = true}).acc;
      },
      options);
  ASSERT_TRUE(result.bug_found()) << core::SummarizeResult(result.aqed());
  EXPECT_EQ(result.kind(), core::BugKind::kInputStarvation);
  EXPECT_TRUE(result.aqed().bmc.trace_validated);
}

}  // namespace
}  // namespace aqed
