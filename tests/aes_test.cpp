// AES accelerator: golden-model agreement, clean A-QED pass, and the four
// buggy variants of Table 2 caught by FC (with the common-key shared-context
// customization).
#include <gtest/gtest.h>

#include "accel/aes.h"
#include "accel/aes_internal.h"
#include "aqed/checker.h"
#include "aqed/report.h"
#include "harness/conventional_flow.h"
#include "sim/simulator.h"

namespace aqed {
namespace {

using accel::AesBug;
using accel::AesConfig;
using accel::AesGoldenEncrypt;
using accel::BuildAes;

TEST(AesGoldenTest, RoundPrimitivesBehave) {
  // The S-box is a permutation.
  bool seen[16] = {};
  for (uint8_t value : accel::aes_internal::kSbox) {
    ASSERT_LT(value, 16);
    EXPECT_FALSE(seen[value]);
    seen[value] = true;
  }
  // Encryption depends on every input bit (smoke avalanche check).
  const uint64_t base = AesGoldenEncrypt(0x1234, 0xBEEF, 3);
  for (uint32_t bit = 0; bit < 16; ++bit) {
    EXPECT_NE(AesGoldenEncrypt(0x1234 ^ (1u << bit), 0xBEEF, 3), base)
        << "block bit " << bit;
  }
  EXPECT_NE(AesGoldenEncrypt(0x1234, 0xBEEF ^ 1, 3), base);
}

// Drives the accelerator and compares against the golden model.
void RunAgainstGolden(const AesConfig& config, uint32_t num_txns,
                      uint64_t seed) {
  ir::TransitionSystem ts;
  const auto design = BuildAes(ts, config);
  ASSERT_TRUE(ts.Validate().ok());
  sim::Simulator sim(ts);
  Rng rng(seed);

  uint32_t sent = 0, received = 0;
  std::vector<std::vector<uint64_t>> expected;  // per txn, per batch elem
  for (int cycle = 0; cycle < 1000 && received < num_txns; ++cycle) {
    const bool try_send = sent < num_txns && rng.Chance(3, 4);
    sim.SetInput(design.acc.in_valid, try_send ? 1 : 0);
    std::vector<uint64_t> blocks;
    for (uint32_t b = 0; b < config.batch_size; ++b) {
      const uint64_t block = rng.NextBits(16);
      sim.SetInput(design.acc.data_elems[b][0], block);
      blocks.push_back(block);
    }
    const uint64_t key = rng.NextBits(16);
    sim.SetInput(design.key, key);
    sim.SetInput(design.acc.host_ready, 1);
    sim.Eval();
    if (try_send && sim.Value(design.acc.in_ready)) {
      std::vector<uint64_t> outs;
      for (uint64_t block : blocks) {
        outs.push_back(AesGoldenEncrypt(block, key, config.rounds));
      }
      expected.push_back(std::move(outs));
      ++sent;
    }
    if (sim.Value(design.acc.out_valid)) {
      ASSERT_LT(received, expected.size());
      for (uint32_t b = 0; b < config.batch_size; ++b) {
        EXPECT_EQ(sim.Value(design.acc.out_elems[b][0]),
                  expected[received][b])
            << "txn " << received << " elem " << b;
      }
      ++received;
    }
    sim.Step();
  }
  EXPECT_EQ(received, num_txns);
}

TEST(AesSim, MatchesGoldenSingleBatch) {
  AesConfig config;
  RunAgainstGolden(config, 10, 11);
}

TEST(AesSim, MatchesGoldenWideBatch) {
  AesConfig config;
  config.batch_size = 3;
  RunAgainstGolden(config, 8, 12);
}

TEST(AesSim, MatchesGoldenMoreRounds) {
  AesConfig config;
  config.rounds = 5;
  RunAgainstGolden(config, 6, 13);
}

core::AqedOptions AesAqedOptions(const AesConfig& config) {
  core::AqedOptions options;
  core::RbOptions rb;
  rb.tau = accel::AesResponseBound(config);
  options.rb = rb;
  options.fc_bound = 14;
  options.rb_bound = 20;
  options.bmc.conflict_budget = 400000;
  return options;
}

TEST(AesAqed, CleanDesignPasses) {
  AesConfig config;
  config.rounds = 2;
  const auto options = core::AqedOptions::Builder(AesAqedOptions(config))
                           .WithFcBound(8)
                           .WithRbBound(12)
                           .WithConflictBudget(-1)
                           .Build();
  const auto result = core::CheckAccelerator(
      [&](ir::TransitionSystem& t) { return BuildAes(t, config).acc; },
      options);
  EXPECT_FALSE(result.bug_found())
      << core::FormatResult(result.ts(), result.aqed());
}

class AesBugTest : public ::testing::TestWithParam<AesBug> {};

TEST_P(AesBugTest, FcCatchesBuggyVariant) {
  AesConfig config;
  config.rounds = 2;
  config.bug = GetParam();
  const auto result = core::CheckAccelerator(
      [&](ir::TransitionSystem& t) { return BuildAes(t, config).acc; },
      AesAqedOptions(config));
  ASSERT_TRUE(result.bug_found())
      << accel::AesBugName(GetParam()) << ": "
      << core::SummarizeResult(result.aqed());
  EXPECT_TRUE(result.kind() == core::BugKind::kFunctionalConsistency ||
              result.kind() == core::BugKind::kEarlyOutput)
      << core::BugKindName(result.kind());
  EXPECT_TRUE(result.aqed().bmc.trace_validated);
}

INSTANTIATE_TEST_SUITE_P(Variants, AesBugTest,
                         ::testing::Values(AesBug::kV1KeyScheduleStale,
                                           AesBug::kV2QueueOverflow,
                                           AesBug::kV3KeySampleLate,
                                           AesBug::kV4RoundSkip),
                         [](const auto& info) {
                           return std::string(accel::AesBugName(info.param));
                         });

TEST(AesConventional, RandomTestbenchCatchesVariants) {
  for (AesBug bug : {AesBug::kV1KeyScheduleStale, AesBug::kV2QueueOverflow,
                     AesBug::kV3KeySampleLate, AesBug::kV4RoundSkip}) {
    AesConfig config;
    config.rounds = 2;
    config.bug = bug;
    harness::CampaignOptions options;
    options.num_seeds = 4;
    options.testbench.max_cycles = 20000;
    const auto campaign = harness::RunCampaign(
        [&](ir::TransitionSystem& ts) { return BuildAes(ts, config).acc; },
        accel::AesGolden(config), options);
    EXPECT_TRUE(campaign.bug_detected) << accel::AesBugName(bug);
  }
}

}  // namespace
}  // namespace aqed
