// Preprocessor (bounded variable elimination) tests: satisfiability
// preservation, frozen variables, and model reconstruction — randomized
// differential testing against the plain solver and brute force.
#include <gtest/gtest.h>

#include "sat/preprocessor.h"
#include "sat/solver.h"
#include "support/rng.h"

namespace aqed::sat {
namespace {

Lit Pos(Var v) { return Lit(v, false); }
Lit NegL(Var v) { return Lit(v, true); }

bool EvalCnf(const Cnf& cnf, const std::vector<LBool>& model) {
  for (const auto& clause : cnf.clauses) {
    bool satisfied = false;
    for (Lit lit : clause) {
      const bool var_true = model[lit.var()] == LBool::kTrue;
      if (lit.negated() ? !var_true : var_true) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool BruteForceSat(const Cnf& cnf) {
  for (uint64_t a = 0; a < (uint64_t{1} << cnf.num_vars); ++a) {
    std::vector<LBool> model(cnf.num_vars);
    for (Var v = 0; v < cnf.num_vars; ++v) {
      model[v] = (a >> v) & 1 ? LBool::kTrue : LBool::kFalse;
    }
    if (EvalCnf(cnf, model)) return true;
  }
  return false;
}

TEST(PreprocessorTest, EliminatesSingleUseGateVariable) {
  // g <-> (a & b) as Tseitin; g used once in (g | c). BVE should remove g.
  Cnf cnf;
  cnf.num_vars = 4;  // a=0 b=1 g=2 c=3
  cnf.clauses = {{NegL(2), Pos(0)},
                 {NegL(2), Pos(1)},
                 {Pos(2), NegL(0), NegL(1)},
                 {Pos(2), Pos(3)}};
  const auto result = Preprocess(cnf, /*frozen=*/{0, 1, 3});
  EXPECT_FALSE(result.unsat);
  EXPECT_EQ(result.eliminated.size(), 1u);
  EXPECT_EQ(result.eliminated[0].var, 2u);
}

TEST(PreprocessorTest, FrozenVariablesSurvive) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{Pos(0), Pos(1)}, {NegL(0), Pos(1)}};
  const auto result = Preprocess(cnf, /*frozen=*/{0, 1});
  EXPECT_TRUE(result.eliminated.empty());
}

TEST(PreprocessorTest, DetectsTrivialUnsat) {
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.clauses = {{Pos(0)}, {NegL(0)}};
  EXPECT_TRUE(Preprocess(cnf, {}).unsat);
}

TEST(PreprocessorTest, PureLiteralElimination) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{Pos(0), Pos(1)}, {Pos(0), Pos(2)}};  // 0 is pure positive
  const auto result = Preprocess(cnf, /*frozen=*/{1, 2});
  EXPECT_FALSE(result.unsat);
  // Everything involving var 0 can be satisfied by setting it true.
  std::vector<LBool> model(3, LBool::kFalse);
  ExtendModel(result, model);
  EXPECT_TRUE(EvalCnf(cnf, model));
}

Cnf RandomCnf(Rng& rng, uint32_t num_vars, uint32_t num_clauses) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (uint32_t c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    const uint32_t len = 1 + static_cast<uint32_t>(rng.NextBelow(3));
    for (uint32_t l = 0; l < len; ++l) {
      clause.emplace_back(static_cast<Var>(rng.NextBelow(num_vars)),
                          rng.Chance(1, 2));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

class PreprocessorRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PreprocessorRandomTest, PreservesSatAndReconstructsModels) {
  Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    const uint32_t num_vars = 3 + static_cast<uint32_t>(rng.NextBelow(9));
    const Cnf cnf =
        RandomCnf(rng, num_vars,
                  2 + static_cast<uint32_t>(rng.NextBelow(3 * num_vars)));
    // Freeze a random subset (as the BMC engine freezes its target).
    std::vector<Var> frozen;
    for (Var v = 0; v < num_vars; ++v) {
      if (rng.Chance(1, 4)) frozen.push_back(v);
    }
    const auto result = Preprocess(cnf, frozen);
    const bool expected_sat = BruteForceSat(cnf);
    if (result.unsat) {
      EXPECT_FALSE(expected_sat) << "preprocessor claimed UNSAT wrongly";
      continue;
    }
    Solver solver;
    const bool loaded = LoadCnf(result.cnf, solver);
    const bool simplified_sat =
        loaded && solver.Solve() == SolveResult::kSat;
    ASSERT_EQ(simplified_sat, expected_sat)
        << "seed " << GetParam() << " round " << round << "\n"
        << ToDimacs(cnf);
    if (simplified_sat) {
      std::vector<LBool> model = solver.model();
      model.resize(cnf.num_vars, LBool::kUndef);
      ExtendModel(result, model);
      EXPECT_TRUE(EvalCnf(cnf, model))
          << "reconstructed model fails original CNF, seed " << GetParam()
          << " round " << round << "\n"
          << ToDimacs(cnf);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessorRandomTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

}  // namespace
}  // namespace aqed::sat
