// Property-based soundness testing of the FC monitor.
//
//  * No false positives: randomly generated *consistent* accelerators
//    (random per-transaction functions, random latencies, random queue
//    depths) must never trip FC/early-output within the bound.
//  * No false negatives on seeded inconsistencies: flipping one output bit
//    under a random history-dependent condition must be caught.
//  * Model boundary (Sec. II): an accelerator with an *interfering*
//    operation (a running accumulator) is outside the A-QED model, and FC
//    duly flags it — mirroring the three memory-controller configurations
//    the paper had to exclude.
#include <gtest/gtest.h>

#include "aqed/checker.h"
#include "aqed/monitor_util.h"
#include "aqed/report.h"
#include "support/rng.h"

namespace aqed::core {
namespace {

using ir::NodeRef;
using ir::Sort;

struct RandomToyParams {
  uint32_t latency = 1;        // execute cycles
  uint64_t mul_const = 1;      // f(x) = (x * mul) ^ xor_const + add_const
  uint64_t xor_const = 0;
  uint64_t add_const = 0;
  bool queue_two_deep = false;  // staging register in front of the engine
  bool seeded_inconsistency = false;
};

AcceleratorInterface BuildRandomToy(ir::TransitionSystem& ts,
                                    const RandomToyParams& params) {
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));

  // Optional 1-entry staging queue.
  const NodeRef staged = Reg(ts, "staged", 1, 0);
  const NodeRef stage_data = Reg(ts, "stage_data", 8, 0);

  const NodeRef busy = Reg(ts, "busy", 1, 0);
  const NodeRef wait = Reg(ts, "wait", 3, 0);
  const NodeRef held = Reg(ts, "held", 8, 0);
  const NodeRef out_pending = Reg(ts, "out_pending", 1, 0);
  const NodeRef out_reg = Reg(ts, "out_reg", 8, 0);
  const NodeRef parity = Reg(ts, "parity", 1, 0);  // history bit

  NodeRef in_ready;
  if (params.queue_two_deep) {
    in_ready = ctx.Not(staged);
  } else {
    in_ready = ctx.And(ctx.Not(busy), ctx.Not(out_pending));
  }
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef out_valid = out_pending;
  const NodeRef drain = ctx.And(out_valid, host_ready);

  // Issue into the engine.
  NodeRef issue;
  NodeRef issue_data;
  if (params.queue_two_deep) {
    issue = ctx.And(staged, ctx.And(ctx.Not(busy), ctx.Not(out_pending)));
    issue_data = stage_data;
    ts.SetNext(staged, ctx.Ite(capture, ctx.True(),
                               ctx.Ite(issue, ctx.False(), staged)));
    LatchWhen(ts, stage_data, capture, in_data);
  } else {
    issue = capture;
    issue_data = in_data;
    ts.SetNext(staged, staged);
    ts.SetNext(stage_data, stage_data);
  }

  LatchWhen(ts, held, issue, issue_data);
  const NodeRef waited =
      ctx.Uge(wait, ctx.Const(3, params.latency - 1));
  const NodeRef finish = ctx.And(busy, waited);
  ts.SetNext(busy, ctx.Ite(issue, ctx.True(),
                           ctx.Ite(finish, ctx.False(), busy)));
  ts.SetNext(wait, ctx.Ite(issue, ctx.Const(3, 0),
                           ctx.Ite(busy, ctx.Add(wait, ctx.Const(3, 1)),
                                   wait)));

  NodeRef value = ctx.Mul(held, ctx.Const(8, params.mul_const));
  value = ctx.Xor(value, ctx.Const(8, params.xor_const));
  value = ctx.Add(value, ctx.Const(8, params.add_const));
  if (params.seeded_inconsistency) {
    value = ctx.Ite(parity, ctx.Xor(value, ctx.Const(8, 0x10)), value);
  }
  ts.SetNext(parity, ctx.Ite(issue, ctx.Not(parity), parity));
  LatchWhen(ts, out_reg, finish, value);
  ts.SetNext(out_pending, ctx.Ite(finish, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_valid;
  acc.data_elems = {{in_data}};
  acc.out_elems = {{out_reg}};
  return acc;
}

class FcSoundnessFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FcSoundnessFuzz, ConsistentDesignsNeverTripAndSeededBugsAlwaysDo) {
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    RandomToyParams params;
    params.latency = 1 + static_cast<uint32_t>(rng.NextBelow(3));
    params.mul_const = 1 + 2 * rng.NextBelow(8);  // odd => bijective
    params.xor_const = rng.NextBits(8);
    params.add_const = rng.NextBits(8);
    params.queue_two_deep = rng.Chance(1, 2);

    {
      ir::TransitionSystem ts;
      const auto acc = BuildRandomToy(ts, params);
      AqedOptions options;
      options.bmc.max_bound = 9;
      const auto result = RunAqed(ts, acc, options);
      EXPECT_FALSE(result.bug_found)
          << "FALSE POSITIVE seed=" << GetParam() << " round=" << round
          << " lat=" << params.latency << " q2=" << params.queue_two_deep
          << "\n"
          << FormatResult(ts, result);
    }
    {
      ir::TransitionSystem ts;
      RandomToyParams buggy = params;
      buggy.seeded_inconsistency = true;
      const auto acc = BuildRandomToy(ts, buggy);
      AqedOptions options;
      options.bmc.max_bound = 16;
      const auto result = RunAqed(ts, acc, options);
      EXPECT_TRUE(result.bug_found)
          << "FALSE NEGATIVE seed=" << GetParam() << " round=" << round;
      if (result.bug_found) {
        EXPECT_EQ(result.kind, BugKind::kFunctionalConsistency);
        EXPECT_TRUE(result.bmc.trace_validated);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FcSoundnessFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Interfering operations are outside the model: a running accumulator
// (out_n = sum of inputs so far) legitimately returns different outputs for
// equal inputs, and FC flags it. The paper excluded three memory-controller
// configurations for exactly this reason (Sec. V.A).
TEST(ModelBoundaryTest, InterferingAccumulatorIsFlaggedByFc) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef total = Reg(ts, "total", 8, 0);
  const NodeRef out_pending = Reg(ts, "out_pending", 1, 0);
  const NodeRef out_reg = Reg(ts, "out_reg", 8, 0);

  const NodeRef in_ready = ctx.Not(out_pending);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef drain = ctx.And(out_pending, host_ready);
  const NodeRef new_total = ctx.Add(total, in_data);
  LatchWhen(ts, total, capture, new_total);
  LatchWhen(ts, out_reg, capture, new_total);
  ts.SetNext(out_pending, ctx.Ite(capture, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_pending;
  acc.data_elems = {{in_data}};
  acc.out_elems = {{out_reg}};

  AqedOptions options;
  options.bmc.max_bound = 10;
  const auto result = RunAqed(ts, acc, options);
  ASSERT_TRUE(result.bug_found);
  EXPECT_EQ(result.kind, BugKind::kFunctionalConsistency);
}

}  // namespace
}  // namespace aqed::core
