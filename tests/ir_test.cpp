// IR unit tests: hash consing, constant folding, sort checking, transition
// system validation, and the printer.
#include <gtest/gtest.h>

#include "ir/context.h"
#include "ir/printer.h"
#include "ir/transition_system.h"

namespace aqed::ir {
namespace {

TEST(ContextTest, ConstantsAreCanonicalAndShared) {
  Context ctx;
  const NodeRef a = ctx.Const(8, 0x1FF);  // truncated to 0xFF
  const NodeRef b = ctx.Const(8, 0xFF);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ctx.node(a).const_val, 0xFFu);
  EXPECT_NE(ctx.Const(9, 0xFF), a);  // different sort, different node
}

TEST(ContextTest, HashConsingSharesPureOps) {
  Context ctx;
  const NodeRef x = ctx.Input("x", Sort::BitVec(8));
  const NodeRef y = ctx.Input("y", Sort::BitVec(8));
  EXPECT_EQ(ctx.Add(x, y), ctx.Add(x, y));
  EXPECT_NE(ctx.Add(x, y), ctx.Add(y, x));  // no commutative normalization
  EXPECT_NE(ctx.Input("x", Sort::BitVec(8)), x);  // inputs never shared
}

TEST(ContextTest, ConstantFolding) {
  Context ctx;
  EXPECT_EQ(ctx.Add(ctx.Const(8, 200), ctx.Const(8, 100)), ctx.Const(8, 44));
  EXPECT_EQ(ctx.Mul(ctx.Const(8, 16), ctx.Const(8, 16)), ctx.Const(8, 0));
  EXPECT_EQ(ctx.Ult(ctx.Const(4, 3), ctx.Const(4, 5)), ctx.True());
  EXPECT_EQ(ctx.Slt(ctx.Const(4, 0xF), ctx.Const(4, 0)), ctx.True());  // -1<0
  EXPECT_EQ(ctx.Extract(ctx.Const(8, 0xA5), 7, 4), ctx.Const(4, 0xA));
  EXPECT_EQ(ctx.Concat(ctx.Const(4, 0xA), ctx.Const(4, 0x5)),
            ctx.Const(8, 0xA5));
  EXPECT_EQ(ctx.Sext(ctx.Const(4, 0x8), 8), ctx.Const(8, 0xF8));
  EXPECT_EQ(ctx.Udiv(ctx.Const(8, 7), ctx.Const(8, 0)), ctx.Const(8, 0xFF));
  EXPECT_EQ(ctx.Urem(ctx.Const(8, 7), ctx.Const(8, 0)), ctx.Const(8, 7));
}

TEST(ContextTest, AlgebraicSimplifications) {
  Context ctx;
  const NodeRef x = ctx.Input("x", Sort::BitVec(8));
  const NodeRef zero = ctx.Const(8, 0);
  const NodeRef ones = ctx.Const(8, 0xFF);
  EXPECT_EQ(ctx.And(x, zero), zero);
  EXPECT_EQ(ctx.And(x, ones), x);
  EXPECT_EQ(ctx.Or(x, zero), x);
  EXPECT_EQ(ctx.Xor(x, x), zero);
  EXPECT_EQ(ctx.Add(x, zero), x);
  EXPECT_EQ(ctx.Sub(x, zero), x);
  EXPECT_EQ(ctx.Not(ctx.Not(x)), x);
  EXPECT_EQ(ctx.Eq(x, x), ctx.True());
  EXPECT_EQ(ctx.Ult(x, x), ctx.False());
  const NodeRef cond = ctx.Input("c", Sort::BitVec(1));
  EXPECT_EQ(ctx.Ite(cond, x, x), x);
  EXPECT_EQ(ctx.Ite(ctx.True(), x, zero), x);
  EXPECT_EQ(ctx.Extract(x, 7, 0), x);
  EXPECT_EQ(ctx.Zext(x, 8), x);
}

TEST(ContextTest, ArrayOps) {
  Context ctx;
  const NodeRef array = ctx.ConstArray(2, 8, 0x55);
  EXPECT_TRUE(ctx.sort(array).is_array());
  EXPECT_EQ(ctx.sort(array).num_elements(), 4u);
  const NodeRef idx = ctx.Input("i", Sort::BitVec(2));
  const NodeRef read = ctx.Read(array, idx);
  EXPECT_EQ(ctx.width(read), 8u);
  const NodeRef written = ctx.Write(array, idx, ctx.Const(8, 1));
  EXPECT_EQ(ctx.sort(written), ctx.sort(array));
}

TEST(TransitionSystemTest, ValidatesCompleteSystem) {
  TransitionSystem ts;
  Context& ctx = ts.ctx();
  const NodeRef in = ts.AddInput("in", Sort::BitVec(4));
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(4), 0);
  ts.SetNext(reg, ctx.Add(reg, in));
  ts.AddBad(ctx.Eq(reg, ctx.Const(4, 7)), "reg==7");
  ts.AddConstraint(ctx.Ne(in, ctx.Const(4, 0)));
  EXPECT_TRUE(ts.Validate().ok());
}

TEST(TransitionSystemTest, RejectsMissingNext) {
  TransitionSystem ts;
  ts.AddState("reg", Sort::BitVec(4), 0);
  const Status status = ts.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no next function"), std::string::npos);
}

TEST(TransitionSystemTest, InitValuesAreTruncated) {
  TransitionSystem ts;
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(4), 0x1F);
  EXPECT_EQ(ts.init_value(reg), 0xFu);
  EXPECT_TRUE(ts.has_init(reg));
  const NodeRef free_state = ts.AddState("free", Sort::BitVec(4));
  EXPECT_FALSE(ts.has_init(free_state));
}

TEST(PrinterTest, DumpsStatesAndProperties) {
  TransitionSystem ts;
  Context& ctx = ts.ctx();
  const NodeRef reg = ts.AddState("counter", Sort::BitVec(8), 0);
  ts.SetNext(reg, ctx.Add(reg, ctx.Const(8, 1)));
  ts.AddBad(ctx.Eq(reg, ctx.Const(8, 42)), "hits42");
  ts.AddOutput("counter", reg);
  const std::string text = ToString(ts);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("hits42"), std::string::npos);
  EXPECT_NE(text.find("next"), std::string::npos);
}

TEST(SortTest, ToStringAndEquality) {
  EXPECT_EQ(Sort::BitVec(8).ToString(), "bv8");
  EXPECT_EQ(Sort::Array(3, 16).ToString(), "array[2^3 x bv16]");
  EXPECT_EQ(Sort::BitVec(8), Sort::BitVec(8));
  EXPECT_NE(Sort::BitVec(8), Sort::BitVec(9));
  EXPECT_NE(Sort::BitVec(8), Sort::Array(1, 8));
}

}  // namespace
}  // namespace aqed::ir
