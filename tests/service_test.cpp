// Verification-service tests: the order-independent structural digest, the
// content-addressed solve cache (keying, persistence, poison recovery, the
// store failpoint), the wire protocol (framing + message round-trips), and
// aqed-server end to end over a real Unix socket — including the acceptance
// contract that a campaign through the server classifies bit-identically to
// a direct RunFaultCampaign and that a replay is served from cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "aqed/checker.h"
#include "aqed/monitor_util.h"
#include "fault/campaign.h"
#include "ir/digest.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/registry.h"
#include "service/server.h"
#include "support/failpoint.h"
#include "support/io.h"

namespace aqed::service {
namespace {

using ir::NodeRef;
using ir::Sort;
using support::FailpointAction;
namespace failpoint = support::failpoint;

// --- structural digest -------------------------------------------------------

// The same two-state circuit built with its combinational nodes created in
// two different orders: hash-consing assigns different NodeRefs, the digest
// must not care.
void BuildPair(ir::TransitionSystem& ts, bool reversed) {
  auto& ctx = ts.ctx();
  const NodeRef a = ts.AddInput("a", Sort::BitVec(8));
  const NodeRef b = ts.AddInput("b", Sort::BitVec(8));
  const NodeRef acc = ts.AddState("acc", Sort::BitVec(8), ctx.Const(8, 0));
  NodeRef sum, mask;
  if (reversed) {
    mask = ctx.And(a, b);
    sum = ctx.Add(acc, a);
  } else {
    sum = ctx.Add(acc, a);
    mask = ctx.And(a, b);
  }
  ts.SetNext(acc, sum);
  ts.AddBad(ctx.Eq(mask, ctx.Const(8, 0xFF)), "saturated");
  ts.AddOutput("acc", acc);
}

TEST(StructuralDigestTest, NodeOrderDoesNotChangeTheDigest) {
  ir::TransitionSystem forward, backward;
  BuildPair(forward, /*reversed=*/false);
  BuildPair(backward, /*reversed=*/true);
  EXPECT_EQ(ir::StructuralDigest(forward), ir::StructuralDigest(backward));
}

TEST(StructuralDigestTest, DeclarationOrderDoesNotChangeTheDigest) {
  // Registering inputs/outputs/bads in a different order is also immaterial.
  ir::TransitionSystem one, two;
  {
    auto& ctx = one.ctx();
    const NodeRef x = one.AddInput("x", Sort::BitVec(4));
    const NodeRef y = one.AddInput("y", Sort::BitVec(4));
    one.AddBad(ctx.Eq(x, y), "eq");
    one.AddOutput("x", x);
    one.AddOutput("y", y);
  }
  {
    auto& ctx = two.ctx();
    const NodeRef y = two.AddInput("y", Sort::BitVec(4));
    const NodeRef x = two.AddInput("x", Sort::BitVec(4));
    two.AddOutput("y", y);
    two.AddOutput("x", x);
    two.AddBad(ctx.Eq(x, y), "eq");
  }
  EXPECT_EQ(ir::StructuralDigest(one), ir::StructuralDigest(two));
}

TEST(StructuralDigestTest, SemanticChangesChangeTheDigest) {
  auto digest_of = [](auto build) {
    ir::TransitionSystem ts;
    build(ts);
    return ir::StructuralDigest(ts);
  };
  const uint64_t base = digest_of([](ir::TransitionSystem& ts) {
    const NodeRef in = ts.AddInput("in", Sort::BitVec(8));
    ts.AddBad(ts.ctx().Eq(in, ts.ctx().Const(8, 7)), "hit");
  });
  // A different constant, a different width, a renamed port, a renamed bad:
  // all distinct designs, all distinct digests.
  const uint64_t constant = digest_of([](ir::TransitionSystem& ts) {
    const NodeRef in = ts.AddInput("in", Sort::BitVec(8));
    ts.AddBad(ts.ctx().Eq(in, ts.ctx().Const(8, 8)), "hit");
  });
  const uint64_t width = digest_of([](ir::TransitionSystem& ts) {
    const NodeRef in = ts.AddInput("in", Sort::BitVec(16));
    ts.AddBad(ts.ctx().Eq(in, ts.ctx().Const(16, 7)), "hit");
  });
  const uint64_t renamed = digest_of([](ir::TransitionSystem& ts) {
    const NodeRef in = ts.AddInput("input", Sort::BitVec(8));
    ts.AddBad(ts.ctx().Eq(in, ts.ctx().Const(8, 7)), "hit");
  });
  const uint64_t label = digest_of([](ir::TransitionSystem& ts) {
    const NodeRef in = ts.AddInput("in", Sort::BitVec(8));
    ts.AddBad(ts.ctx().Eq(in, ts.ctx().Const(8, 7)), "miss");
  });
  EXPECT_NE(base, constant);
  EXPECT_NE(base, width);
  EXPECT_NE(base, renamed);
  EXPECT_NE(base, label);
}

// --- config digest -----------------------------------------------------------

TEST(ConfigDigestTest, VerdictAffectingFieldsKeyTheCache) {
  core::AqedOptions base;
  EXPECT_EQ(ConfigDigest(base), ConfigDigest(base));  // deterministic

  core::AqedOptions fc_bound = base;
  fc_bound.fc_bound = 12;
  EXPECT_NE(ConfigDigest(base), ConfigDigest(fc_bound));

  core::AqedOptions with_rb = base;
  with_rb.rb.emplace();
  with_rb.rb->tau = 9;
  EXPECT_NE(ConfigDigest(base), ConfigDigest(with_rb));

  core::AqedOptions budget = base;
  budget.bmc.conflict_budget = 12345;
  EXPECT_NE(ConfigDigest(base), ConfigDigest(budget));
}

TEST(ConfigDigestTest, DepthIsNotPartOfTheConfigDigest) {
  // The BMC bound is its own CacheKey field; folding it into the config
  // digest too would make the key ambiguous about *why* two entries differ.
  core::AqedOptions shallow, deep;
  shallow.bmc.max_bound = 8;
  deep.bmc.max_bound = 64;
  EXPECT_EQ(ConfigDigest(shallow), ConfigDigest(deep));
}

// --- catalog selection -------------------------------------------------------

TEST(SelectDesignsTest, ResolvesNamesAndRejectsUnknownsWithTheCatalog) {
  const std::vector<fault::DesignUnderTest> catalog = BuiltinDesigns();

  // Empty selection = the whole catalog (bench_fault with no --designs).
  StatusOr<std::vector<fault::DesignUnderTest>> all =
      SelectDesigns(catalog, std::string_view(""));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), catalog.size());

  StatusOr<std::vector<fault::DesignUnderTest>> two =
      SelectDesigns(catalog, std::string_view("alu,widepipe"));
  ASSERT_TRUE(two.ok());
  ASSERT_EQ(two.value().size(), 2u);
  EXPECT_EQ(two.value()[0].name, "alu");
  EXPECT_EQ(two.value()[1].name, "widepipe");

  StatusOr<std::vector<fault::DesignUnderTest>> bogus =
      SelectDesigns(catalog, std::string_view("alu,frobnicator"));
  ASSERT_FALSE(bogus.ok());
  // The error is the user's catalog listing: every valid name appears.
  EXPECT_NE(bogus.status().message().find("frobnicator"), std::string::npos);
  for (const fault::DesignUnderTest& design : catalog) {
    EXPECT_NE(bogus.status().message().find(design.name), std::string::npos);
  }
}

// --- solve cache -------------------------------------------------------------

CacheKey TestKey(uint32_t depth = 16, const std::string& mutant = "m@n1#s1") {
  CacheKey key;
  key.design_digest = 0xD16E57D16E57D16Eull;
  key.config_digest = 0xC0F1C0F1C0F1C0F1ull;
  key.mutant_key = mutant;
  key.depth = depth;
  return key;
}

CachedVerdict DetectedVerdict() {
  CachedVerdict verdict;
  verdict.classification = fault::Classification::kDetectedFc;
  verdict.kind = core::BugKind::kFunctionalConsistency;
  verdict.cex_cycles = 5;
  verdict.attempts = 2;
  return verdict;
}

TEST(SolveCacheTest, StoreThenLookupRoundTrips) {
  SolveCache cache;
  EXPECT_FALSE(cache.Lookup(TestKey()).has_value());
  cache.Store(TestKey(), DetectedVerdict());
  const auto hit = cache.Lookup(TestKey());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->classification, fault::Classification::kDetectedFc);
  EXPECT_EQ(hit->kind, core::BugKind::kFunctionalConsistency);
  EXPECT_EQ(hit->cex_cycles, 5u);
  EXPECT_EQ(hit->attempts, 2u);
  // Key sensitivity: a different depth or mutant is a different solve.
  EXPECT_FALSE(cache.Lookup(TestKey(32)).has_value());
  EXPECT_FALSE(cache.Lookup(TestKey(16, "m@n2#s1")).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(SolveCacheTest, UnknownVerdictsAreNeverCached) {
  SolveCache cache;
  CachedVerdict unknown;
  unknown.classification = fault::Classification::kUnknown;
  cache.Store(TestKey(), unknown);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(TestKey()).has_value());
}

TEST(SolveCacheTest, SaveLoadRoundTripsEveryEntry) {
  const std::string path =
      "/tmp/aqed_cache_roundtrip_" + std::to_string(::getpid()) + ".jsonl";
  SolveCache cache;
  cache.Store(TestKey(16, "m@n1#s1"), DetectedVerdict());
  CachedVerdict survived;
  survived.classification = fault::Classification::kSurvived;
  cache.Store(TestKey(16, "m@n2#s1"), survived);
  ASSERT_TRUE(cache.Save(path).ok());

  SolveCache restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.poisoned(), 0u);
  const auto hit = restored.Lookup(TestKey(16, "m@n1#s1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->classification, fault::Classification::kDetectedFc);
  EXPECT_EQ(hit->cex_cycles, 5u);
  std::remove(path.c_str());
}

TEST(SolveCacheTest, MissingFileLoadsAsEmptyCache) {
  SolveCache cache;
  EXPECT_TRUE(cache.Load("/tmp/aqed_cache_never_written.jsonl").ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SolveCacheTest, PoisonedLineIsDroppedNotTrusted) {
  const std::string path =
      "/tmp/aqed_cache_poison_" + std::to_string(::getpid()) + ".jsonl";
  SolveCache cache;
  cache.Store(TestKey(16, "m@n1#s1"), DetectedVerdict());
  cache.Store(TestKey(16, "m@n2#s1"), DetectedVerdict());
  ASSERT_TRUE(cache.Save(path).ok());

  // Flip one payload byte of the first line: the CRC must catch it.
  StatusOr<std::string> contents = support::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string text = contents.value();
  const size_t cycles = text.find("\"cex_cycles\":5");
  ASSERT_NE(cycles, std::string::npos);
  text[cycles + 13] = '9';
  ASSERT_TRUE(support::WriteFileDurable(path, text).ok());

  SolveCache restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.size(), 1u);      // the intact line survives
  EXPECT_EQ(restored.poisoned(), 1u);  // the corrupted one is dropped
  // Exactly one of the two mutants now misses (save order is unordered) —
  // i.e. the poisoned solve is simply re-run, never trusted.
  const int live =
      (restored.Lookup(TestKey(16, "m@n1#s1")).has_value() ? 1 : 0) +
      (restored.Lookup(TestKey(16, "m@n2#s1")).has_value() ? 1 : 0);
  EXPECT_EQ(live, 1);
  std::remove(path.c_str());
}

TEST(SolveCacheTest, SaveTrimsLeastRecentlyUsedEntriesToTheBound) {
  const std::string path =
      "/tmp/aqed_cache_lru_" + std::to_string(::getpid()) + ".jsonl";
  SolveCache cache;
  cache.SetMaxEntries(2);
  cache.Store(TestKey(16, "m@n1#s1"), DetectedVerdict());
  cache.Store(TestKey(16, "m@n2#s1"), DetectedVerdict());
  cache.Store(TestKey(16, "m@n3#s1"), DetectedVerdict());
  // A hit refreshes recency: touch the oldest entry so the *middle* one is
  // now least-recently-used and gets trimmed instead.
  ASSERT_TRUE(cache.Lookup(TestKey(16, "m@n1#s1")).has_value());
  EXPECT_EQ(cache.size(), 3u);  // the bound is enforced at save, not store
  EXPECT_EQ(cache.evicted(), 0u);

  ASSERT_TRUE(cache.Save(path).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evicted(), 1u);
  EXPECT_TRUE(cache.Lookup(TestKey(16, "m@n1#s1")).has_value());
  EXPECT_FALSE(cache.Lookup(TestKey(16, "m@n2#s1")).has_value());
  EXPECT_TRUE(cache.Lookup(TestKey(16, "m@n3#s1")).has_value());

  // The persisted file holds only the survivors.
  SolveCache restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_FALSE(restored.Lookup(TestKey(16, "m@n2#s1")).has_value());
  std::remove(path.c_str());
}

TEST(SolveCacheTest, UnboundedCacheNeverEvicts) {
  const std::string path =
      "/tmp/aqed_cache_unbounded_" + std::to_string(::getpid()) + ".jsonl";
  SolveCache cache;  // default max_entries = 0 = unbounded
  for (int i = 0; i < 8; ++i) {
    cache.Store(TestKey(16, "m@n" + std::to_string(i) + "#s1"),
                DetectedVerdict());
  }
  ASSERT_TRUE(cache.Save(path).ok());
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.evicted(), 0u);
  std::remove(path.c_str());
}

TEST(SolveCacheTest, StoreFailpointFailsTheSaveNotTheCache) {
  const std::string path =
      "/tmp/aqed_cache_failpoint_" + std::to_string(::getpid()) + ".jsonl";
  SolveCache cache;
  cache.Store(TestKey(), DetectedVerdict());
  failpoint::Arm("service.cache.store", {FailpointAction::kReturnError});
  const Status failed = cache.Save(path);
  failpoint::DisarmAll();
  EXPECT_FALSE(failed.ok());
  // The in-memory cache is unharmed and the next save succeeds.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Save(path).ok());
  std::remove(path.c_str());
}

// --- campaign through the cache ---------------------------------------------

// The one-deep toy accelerator shared with sched/fault tests: capture when
// idle, respond next cycle with in + 1.
core::AcceleratorBuilder ToyBuilder() {
  return [](ir::TransitionSystem& ts) {
    auto& ctx = ts.ctx();
    const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
    const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
    const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
    const NodeRef held = core::Reg(ts, "held", 8, 0);
    const NodeRef out_pending = core::Reg(ts, "out_pending", 1, 0);

    const NodeRef in_ready = ctx.Not(out_pending);
    const NodeRef capture = ctx.And(in_valid, in_ready);
    const NodeRef drain = ctx.And(out_pending, host_ready);

    core::LatchWhen(ts, held, capture, in_data);
    ts.SetNext(out_pending,
               ctx.Ite(capture, ctx.True(),
                       ctx.Ite(drain, ctx.False(), out_pending)));

    core::AcceleratorInterface acc;
    acc.in_valid = in_valid;
    acc.in_ready = in_ready;
    acc.host_ready = host_ready;
    acc.out_valid = out_pending;
    acc.data_elems = {{in_data}};
    acc.out_elems = {{ctx.Add(held, ctx.Const(8, 1))}};
    return acc;
  };
}

std::vector<fault::DesignUnderTest> ToyDesigns() {
  core::AqedOptions options;
  options.bmc.max_bound = 6;
  return {{"toy", ToyBuilder(), options, nullptr, {}}};
}

fault::FaultCampaignOptions ToyCampaign(fault::CampaignCache* cache) {
  fault::FaultCampaignOptions options;
  options.num_mutants = 8;
  options.session.jobs = 2;
  options.cache = cache;
  return options;
}

TEST(CampaignCacheTest, ReplayIsServedEntirelyFromCache) {
  const auto designs = ToyDesigns();
  SolveCache cache;
  CampaignCacheAdapter adapter(cache);

  const auto cold = fault::RunFaultCampaign(designs, ToyCampaign(&adapter));
  ASSERT_EQ(cold.mutants.size(), 8u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cold.mutants.size());

  const auto warm = fault::RunFaultCampaign(designs, ToyCampaign(&adapter));
  EXPECT_EQ(warm.cache_hits, warm.mutants.size());
  EXPECT_EQ(warm.cache_misses, 0u);
  // The acceptance contract: a fully-cached replay classifies
  // bit-identically to the run that populated the cache.
  EXPECT_EQ(warm.ClassificationDigest(), cold.ClassificationDigest());
}

TEST(CampaignCacheTest, DepthChangeMissesTheCache) {
  auto designs = ToyDesigns();
  SolveCache cache;
  CampaignCacheAdapter adapter(cache);
  (void)fault::RunFaultCampaign(designs, ToyCampaign(&adapter));
  ASSERT_GT(cache.size(), 0u);

  // A deeper bound is a different solve: every lookup must miss.
  designs[0].options.bmc.max_bound = 7;
  const auto deeper = fault::RunFaultCampaign(designs, ToyCampaign(&adapter));
  EXPECT_EQ(deeper.cache_hits, 0u);
  EXPECT_EQ(deeper.cache_misses, deeper.mutants.size());
}

// --- wire protocol -----------------------------------------------------------

TEST(ProtocolTest, FramesRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteFrame(fds[1], "{\"type\":\"ping\"}").ok());
  ASSERT_TRUE(WriteFrame(fds[1], "").ok());
  StatusOr<std::string> first = ReadFrame(fds[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), "{\"type\":\"ping\"}");
  StatusOr<std::string> second = ReadFrame(fds[0]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), "");
  ::close(fds[1]);
  EXPECT_FALSE(ReadFrame(fds[0]).ok());  // EOF is an error, not a frame
  ::close(fds[0]);
}

TEST(ProtocolTest, MalformedLengthLinesAreRejected) {
  for (const char* wire : {"abc\n{}\n", "123456789\n",
                           "5\n{}x\n",  // payload shorter than advertised
                           "\n{}\n"}) {
    const std::string_view text(wire);
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], text.data(), text.size()),
              static_cast<ssize_t>(text.size()));
    ::close(fds[1]);
    EXPECT_FALSE(ReadFrame(fds[0]).ok()) << wire;
    ::close(fds[0]);
  }
}

TEST(ProtocolTest, CampaignRequestRoundTrips) {
  CampaignRequest request;
  request.tenant = "ci";
  request.designs = {"memctrl-fifo", "alu"};
  request.num_mutants = 17;
  request.seed = 0xFFFF'FFFF'FFFF'FFF7ull;  // above 2^53: doubles would lose it
  request.with_aes = true;
  request.baseline = true;
  request.jobs = 3;
  request.deadline_ms = 1500;
  request.memory_budget_mb = 256;
  request.retries = 2;

  const std::string payload = EncodeCampaignRequest(request);
  const auto json = telemetry::ParseJson(payload);
  ASSERT_TRUE(json.has_value());
  ASSERT_EQ(RequestType(*json), std::make_optional<std::string>("campaign"));
  StatusOr<CampaignRequest> decoded = DecodeCampaignRequest(*json);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const CampaignRequest& r = decoded.value();
  EXPECT_EQ(r.tenant, "ci");
  EXPECT_EQ(r.designs, request.designs);
  EXPECT_EQ(r.num_mutants, 17u);
  EXPECT_EQ(r.seed, request.seed);
  EXPECT_TRUE(r.with_aes);
  EXPECT_TRUE(r.baseline);
  EXPECT_EQ(r.jobs, 3u);
  EXPECT_EQ(r.deadline_ms, 1500u);
  EXPECT_EQ(r.memory_budget_mb, 256u);
  EXPECT_EQ(r.retries, 2u);
}

TEST(ProtocolTest, CampaignResponseRoundTripsA64BitDigest) {
  CampaignResponse response;
  response.ok = true;
  response.digest = 0xFEDC'BA98'7654'3210ull;
  response.mutants = 60;
  response.classified = 59;
  response.cache_hits = 41;
  response.cache_misses = 19;
  response.wall_seconds = 12.5;
  response.table = "design  mutants\ntoy  60\n";

  StatusOr<CampaignResponse> decoded =
      DecodeCampaignResponse(EncodeCampaignResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const CampaignResponse& r = decoded.value();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.digest, response.digest);
  EXPECT_EQ(r.mutants, 60u);
  EXPECT_EQ(r.classified, 59u);
  EXPECT_EQ(r.cache_hits, 41u);
  EXPECT_EQ(r.cache_misses, 19u);
  EXPECT_DOUBLE_EQ(r.wall_seconds, 12.5);
  EXPECT_EQ(r.table, response.table);
}

TEST(ProtocolTest, MintedTraceIdsAreNonzeroAndDistinct) {
  const uint64_t a = MintTraceId();
  const uint64_t b = MintTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);  // the process-local counter alone guarantees this
}

TEST(ProtocolTest, TraceIdRoundTripsOnCampaignMessages) {
  CampaignRequest request;
  request.trace_id = 0xFFF0'0000'0000'0001ull;  // above 2^53: hex on the wire
  const std::string payload = EncodeCampaignRequest(request);
  const auto json = telemetry::ParseJson(payload);
  ASSERT_TRUE(json.has_value());
  StatusOr<CampaignRequest> decoded = DecodeCampaignRequest(*json);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().trace_id, request.trace_id);

  // A request without the field decodes as untraced (backward compatible
  // with captured pre-tracing batch files).
  const auto bare = telemetry::ParseJson(
      "{\"type\":\"campaign\",\"tenant\":\"ci\",\"mutants\":4}");
  ASSERT_TRUE(bare.has_value());
  StatusOr<CampaignRequest> untraced = DecodeCampaignRequest(*bare);
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced.value().trace_id, 0u);

  CampaignResponse response;
  response.ok = true;
  response.trace_id = request.trace_id;
  response.digest = 0x1234'5678'9ABC'DEF0ull;
  StatusOr<CampaignResponse> echoed =
      DecodeCampaignResponse(EncodeCampaignResponse(response));
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed.value().trace_id, request.trace_id);
}

TEST(ProtocolTest, StatusResponseRoundTrips) {
  StatusResponse status;
  status.ok = true;
  status.uptime_seconds = 12.5;
  status.requests = (1ull << 60) + 7;  // above 2^53: hex on the wire
  status.live_requests = 2;
  status.accepted = 10;
  status.rejected = 3;
  status.connections = 4;
  status.executors = 2;
  status.max_live = 4;
  status.max_tenant_live = 2;
  status.tenants = {{"ci", 1}, {"nightly", 0}};
  status.cache_entries = 100;
  status.cache_hits = 70;
  status.cache_misses = 30;
  status.cache_evicted = 5;
  status.governor_pressure = 2;
  status.request_p50_ms = 1.5;
  status.request_p95_ms = 8.25;
  status.request_p99_ms = 9.75;

  StatusOr<StatusResponse> decoded =
      DecodeStatusResponse(EncodeStatusResponse(status));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const StatusResponse& s = decoded.value();
  EXPECT_TRUE(s.ok);
  EXPECT_DOUBLE_EQ(s.uptime_seconds, 12.5);
  EXPECT_EQ(s.requests, status.requests);
  EXPECT_EQ(s.live_requests, 2u);
  EXPECT_EQ(s.accepted, 10u);
  EXPECT_EQ(s.rejected, 3u);
  EXPECT_EQ(s.connections, 4u);
  EXPECT_EQ(s.executors, 2u);
  EXPECT_EQ(s.max_live, 4u);
  EXPECT_EQ(s.max_tenant_live, 2u);
  ASSERT_EQ(s.tenants.size(), 2u);
  EXPECT_EQ(s.tenants[0].name, "ci");
  EXPECT_EQ(s.tenants[0].live, 1u);
  EXPECT_EQ(s.tenants[1].name, "nightly");
  EXPECT_EQ(s.tenants[1].live, 0u);
  EXPECT_EQ(s.cache_entries, 100u);
  EXPECT_EQ(s.cache_hits, 70u);
  EXPECT_EQ(s.cache_misses, 30u);
  EXPECT_EQ(s.cache_evicted, 5u);
  EXPECT_EQ(s.governor_pressure, 2);
  EXPECT_DOUBLE_EQ(s.request_p50_ms, 1.5);
  EXPECT_DOUBLE_EQ(s.request_p95_ms, 8.25);
  EXPECT_DOUBLE_EQ(s.request_p99_ms, 9.75);
}

TEST(ProtocolTest, HealthAndMetricsResponsesRoundTrip) {
  HealthResponse health;
  health.ok = true;
  health.state = "stopping";
  health.uptime_seconds = 3.5;
  StatusOr<HealthResponse> decoded_health =
      DecodeHealthResponse(EncodeHealthResponse(health));
  ASSERT_TRUE(decoded_health.ok());
  EXPECT_TRUE(decoded_health.value().ok);
  EXPECT_EQ(decoded_health.value().state, "stopping");
  EXPECT_DOUBLE_EQ(decoded_health.value().uptime_seconds, 3.5);

  MetricsResponse metrics;
  metrics.ok = true;
  metrics.prometheus =
      "# TYPE service_requests counter\nservice_requests 7\n";
  StatusOr<MetricsResponse> decoded_metrics =
      DecodeMetricsResponse(EncodeMetricsResponse(metrics));
  ASSERT_TRUE(decoded_metrics.ok());
  EXPECT_TRUE(decoded_metrics.value().ok);
  EXPECT_EQ(decoded_metrics.value().prometheus, metrics.prometheus);

  // The three introspection requests carry distinct type discriminators.
  for (const auto& [payload, expected] :
       {std::pair{EncodeStatusRequest(), "status"},
        std::pair{EncodeMetricsRequest(), "metrics"},
        std::pair{EncodeHealthRequest(), "health"}}) {
    const auto json = telemetry::ParseJson(payload);
    ASSERT_TRUE(json.has_value());
    EXPECT_EQ(RequestType(*json), std::make_optional<std::string>(expected));
  }
}

TEST(ProtocolTest, ErrorsAndStatsRoundTrip) {
  EXPECT_TRUE(IsOkResponse(EncodePong()));
  const std::string error = EncodeError("tenant 'ci' over quota");
  EXPECT_FALSE(IsOkResponse(error));
  StatusOr<CampaignResponse> as_campaign = DecodeCampaignResponse(error);
  ASSERT_TRUE(as_campaign.ok());
  EXPECT_FALSE(as_campaign.value().ok);
  EXPECT_EQ(as_campaign.value().error, "tenant 'ci' over quota");

  StatsResponse stats;
  stats.ok = true;
  stats.live_requests = 2;
  stats.accepted = 10;
  stats.rejected = 3;
  stats.cache_entries = 100;
  stats.cache_hits = 70;
  stats.cache_misses = 30;
  StatusOr<StatsResponse> decoded =
      DecodeStatsResponse(EncodeStatsResponse(stats));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().live_requests, 2u);
  EXPECT_EQ(decoded.value().accepted, 10u);
  EXPECT_EQ(decoded.value().rejected, 3u);
  EXPECT_EQ(decoded.value().cache_entries, 100u);
  EXPECT_EQ(decoded.value().cache_hits, 70u);
  EXPECT_EQ(decoded.value().cache_misses, 30u);
}

// --- server end to end -------------------------------------------------------

std::string TestSocketPath(const char* tag) {
  return "/tmp/aqed_svc_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

CampaignRequest AluRequest() {
  CampaignRequest request;
  request.designs = {"alu"};
  request.num_mutants = 6;
  request.seed = 7;
  request.jobs = 2;
  return request;
}

TEST(ServerTest, CampaignDigestMatchesADirectRunAndReplaysFromCache) {
  ServerOptions options;
  options.socket_path = TestSocketPath("digest");
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client(options.socket_path);
  ASSERT_TRUE(client.Ping().ok());

  StatusOr<CampaignResponse> cold = client.RunCampaign(AluRequest());
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  ASSERT_TRUE(cold.value().ok) << cold.value().error;
  EXPECT_EQ(cold.value().mutants, 6u);
  EXPECT_EQ(cold.value().cache_hits, 0u);

  // The same campaign straight through the fault layer: same catalog entry,
  // same session governance the server derives from the request.
  const auto catalog = BuiltinDesigns({.with_aes = false});
  const fault::DesignUnderTest* alu = FindDesign(catalog, "alu");
  ASSERT_NE(alu, nullptr);
  fault::FaultCampaignOptions direct;
  direct.num_mutants = 6;
  direct.seed = 7;
  direct.session.jobs = 2;
  direct.session.retry.max_retries = 4;
  const std::vector<fault::DesignUnderTest> selected{*alu};
  const auto reference = fault::RunFaultCampaign(selected, direct);
  EXPECT_EQ(cold.value().digest, reference.ClassificationDigest());

  // Replay: every mutant is already decided; ISSUE asks for >= 90% hits.
  StatusOr<CampaignResponse> warm = client.RunCampaign(AluRequest());
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm.value().ok) << warm.value().error;
  EXPECT_EQ(warm.value().digest, cold.value().digest);
  EXPECT_GE(warm.value().cache_hits, 6u * 9 / 10);
  EXPECT_EQ(warm.value().cache_misses, 0u);

  StatusOr<StatsResponse> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().ok);
  EXPECT_EQ(stats.value().cache_entries, 6u);
  server.Stop();
}

TEST(ServerTest, UnknownDesignsAndTypesAreRejectedNotFatal) {
  ServerOptions options;
  options.socket_path = TestSocketPath("reject");
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client(options.socket_path);
  CampaignRequest bogus;
  bogus.designs = {"no-such-design"};
  StatusOr<CampaignResponse> response = client.RunCampaign(bogus);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().ok);
  EXPECT_NE(response.value().error.find("no-such-design"), std::string::npos);
  // The rejection is the remote client's design listing: it must name the
  // catalog entries, not just the bad name.
  EXPECT_NE(response.value().error.find("catalog:"), std::string::npos);
  EXPECT_NE(response.value().error.find("alu"), std::string::npos);

  StatusOr<std::string> unknown =
      client.Roundtrip("{\"type\":\"frobnicate\"}");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(IsOkResponse(unknown.value()));
  StatusOr<std::string> garbage = client.Roundtrip("not json at all");
  ASSERT_TRUE(garbage.ok());
  EXPECT_FALSE(IsOkResponse(garbage.value()));
  // The connection survived all three rejections.
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

TEST(ServerTest, AdmissionLadderRejectsOverQuota) {
  ServerOptions options;
  options.socket_path = TestSocketPath("admission");
  options.max_live = 0;  // every campaign is over the global bound
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client(options.socket_path);
  StatusOr<CampaignResponse> rejected = client.RunCampaign(AluRequest());
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_NE(rejected.value().error.find("saturated"), std::string::npos);
  EXPECT_EQ(server.rejected(), 1u);
  // Pings are not campaigns; they bypass admission entirely.
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

TEST(ServerTest, PerTenantQuotaIsIndependentOfTheGlobalBound) {
  ServerOptions options;
  options.socket_path = TestSocketPath("tenant");
  options.max_live = 4;
  options.max_tenant_live = 0;  // every tenant is over quota
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client(options.socket_path);
  CampaignRequest request = AluRequest();
  request.tenant = "greedy";
  StatusOr<CampaignResponse> rejected = client.RunCampaign(request);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_NE(rejected.value().error.find("greedy"), std::string::npos);
  server.Stop();
}

TEST(ServerTest, FourConcurrentClientsAreRaceClean) {
  // The TSan target: four clients hammer one server — pings, stats, and
  // campaigns that share the solve cache — while the server multiplexes
  // them over its executor pool.
  ServerOptions options;
  options.socket_path = TestSocketPath("race");
  options.executors = 4;
  options.max_live = 4;
  options.max_tenant_live = 4;
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client(options.socket_path);
      if (!client.Ping().ok()) ++failures;
      // Interleave introspection with the campaign: status/metrics/health
      // read the same live state the campaign path mutates, which is
      // exactly what TSan is here to check.
      if (!client.ServerStatus().ok()) ++failures;
      CampaignRequest request = AluRequest();
      request.tenant = "tenant-" + std::to_string(c);
      StatusOr<CampaignResponse> response = client.RunCampaign(request);
      if (!response.ok() || !response.value().ok) ++failures;
      if (!client.Health().ok()) ++failures;
      if (!client.Metrics().ok()) ++failures;
      if (!client.Stats().ok()) ++failures;
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.accepted(), 4u);
  // Every request was counted: 4 clients x 6 requests.
  EXPECT_GE(server.requests(), 24u);
  server.Stop();
}

TEST(ServerTest, AcceptFailpointDropsOneConnectionServerSurvives) {
  ServerOptions options;
  options.socket_path = TestSocketPath("chaos");
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  failpoint::Arm("service.accept",
                 {FailpointAction::kReturnError, /*skip=*/0, /*limit=*/1});
  Client dropped(options.socket_path);
  // The connect itself lands in the backlog, so the failure surfaces as a
  // dead stream on first use — the client treats that as a retryable error.
  EXPECT_FALSE(dropped.Ping().ok());
  failpoint::DisarmAll();

  Client retry(options.socket_path);
  EXPECT_TRUE(retry.Ping().ok());
  server.Stop();
}

TEST(ServerTest, CacheSurvivesARestart) {
  const std::string cache_path =
      "/tmp/aqed_svc_restart_" + std::to_string(::getpid()) + ".jsonl";
  std::remove(cache_path.c_str());
  ServerOptions options;
  options.socket_path = TestSocketPath("restart");
  options.cache_path = cache_path;
  uint64_t cold_digest = 0;
  {
    AqedServer server(options);
    ASSERT_TRUE(server.Start().ok());
    Client client(options.socket_path);
    StatusOr<CampaignResponse> cold = client.RunCampaign(AluRequest());
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(cold.value().ok) << cold.value().error;
    cold_digest = cold.value().digest;
    server.Stop();  // persists the cache
  }
  {
    AqedServer server(options);
    ASSERT_TRUE(server.Start().ok());  // loads the cache
    Client client(options.socket_path);
    StatusOr<CampaignResponse> warm = client.RunCampaign(AluRequest());
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm.value().ok) << warm.value().error;
    EXPECT_EQ(warm.value().digest, cold_digest);
    EXPECT_EQ(warm.value().cache_misses, 0u);
    server.Stop();
  }
  std::remove(cache_path.c_str());
}

// --- observability plane -----------------------------------------------------

TEST(ServerTest, CampaignTraceIdIsEchoedAndStampedIntoCacheProvenance) {
  const std::string cache_path =
      "/tmp/aqed_svc_trace_" + std::to_string(::getpid()) + ".jsonl";
  std::remove(cache_path.c_str());
  ServerOptions options;
  options.socket_path = TestSocketPath("trace");
  options.cache_path = cache_path;
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client(options.socket_path);
  // The typed client mints an id; the response must echo a nonzero one.
  StatusOr<CampaignResponse> minted = client.RunCampaign(AluRequest());
  ASSERT_TRUE(minted.ok());
  ASSERT_TRUE(minted.value().ok) << minted.value().error;
  EXPECT_NE(minted.value().trace_id, 0u);

  // An explicit id (above 2^53, so the hex wire spelling is load-bearing)
  // must come back verbatim...
  CampaignRequest request = AluRequest();
  request.seed = 11;  // fresh mutants: this run stores entries of its own
  request.trace_id = 0xFEED'FACE'CAFE'F00Dull;
  StatusOr<CampaignResponse> pinned = client.RunCampaign(request);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pinned.value().ok) << pinned.value().error;
  EXPECT_EQ(pinned.value().trace_id, request.trace_id);

  server.Stop();

  // ...and every cache entry that campaign paid for carries it as
  // provenance in the persisted file.
  StatusOr<std::string> persisted = support::ReadFileToString(cache_path);
  ASSERT_TRUE(persisted.ok());
  EXPECT_NE(persisted.value().find("\"trace_id\":\"feedfacecafef00d\""),
            std::string::npos);
  std::remove(cache_path.c_str());
}

TEST(ServerTest, StatusReportsBothTenantsOfAConcurrentPair) {
  ServerOptions options;
  options.socket_path = TestSocketPath("status");
  options.executors = 3;  // two campaigns + the status poller
  options.max_live = 4;
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  std::atomic<int> finished{0};
  std::vector<std::thread> tenants;
  for (const char* tenant : {"tenant-a", "tenant-b"}) {
    tenants.emplace_back([&, tenant] {
      Client client(options.socket_path);
      CampaignRequest request = AluRequest();
      request.tenant = tenant;
      request.num_mutants = 16;  // long enough for the poller to catch live
      StatusOr<CampaignResponse> response = client.RunCampaign(request);
      if (!response.ok() || !response.value().ok) ++failures;
      ++finished;
    });
  }

  // Poll until one status snapshot shows both tenants in flight at once
  // (or both campaigns drain — then the snapshot we want can't come).
  bool both_live = false;
  {
    Client poller(options.socket_path);
    while (!both_live && finished.load() < 2) {
      StatusOr<StatusResponse> status = poller.ServerStatus();
      if (!status.ok() || !status.value().ok) {
        ++failures;
        break;
      }
      uint32_t live = 0;
      for (const StatusResponse::Tenant& tenant : status.value().tenants) {
        if (tenant.live > 0) ++live;
      }
      both_live = live >= 2;
      if (status.value().uptime_seconds > 60) break;  // watchdog
    }
  }
  for (std::thread& thread : tenants) thread.join();
  EXPECT_TRUE(both_live);
  EXPECT_EQ(failures.load(), 0);

  // Drained: both tenants remain listed, with zero in flight.
  Client client(options.socket_path);
  StatusOr<StatusResponse> final_status = client.ServerStatus();
  ASSERT_TRUE(final_status.ok());
  ASSERT_TRUE(final_status.value().ok);
  const StatusResponse& s = final_status.value();
  ASSERT_EQ(s.tenants.size(), 2u);
  for (const StatusResponse::Tenant& tenant : s.tenants) {
    EXPECT_EQ(tenant.live, 0u) << tenant.name;
  }
  EXPECT_EQ(s.live_requests, 0u);
  EXPECT_GT(s.requests, 2u);
  EXPECT_GT(s.uptime_seconds, 0.0);
  server.Stop();
}

TEST(ServerTest, MetricsRequestCarriesParseableExpositionOfLiveState) {
  ServerOptions options;
  options.socket_path = TestSocketPath("expo");
  AqedServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client(options.socket_path);
  ASSERT_TRUE(client.RunCampaign(AluRequest()).ok());
  StatusOr<MetricsResponse> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics.value().ok);
  const std::string& text = metrics.value().prometheus;
  // Pre-registration means the full service name set is present even for
  // metrics that have never fired on this server.
  for (const char* name :
       {"service_requests", "service_admission_rejected",
        "service_cache_hits", "service_cache_evicted",
        "service_sessions_live", "governor_pressure",
        "service_request_ms_bucket", "service_request_ms_sum",
        "service_request_ms_count"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  server.Stop();
}

}  // namespace
}  // namespace aqed::service
