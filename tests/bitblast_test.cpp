// Bit-blaster correctness: every word-level operation's CNF encoding is
// checked for functional equivalence against ir::EvalScalarOp — exhaustively
// at small widths, and randomized at larger widths (differential testing via
// SAT model enumeration would be slow; instead we constrain inputs to
// concrete values and check the encoded output bits propagate to the right
// constants).
#include <gtest/gtest.h>

#include "bitblast/bitblaster.h"
#include "ir/eval.h"
#include "sat/solver.h"
#include "support/rng.h"

namespace aqed::bitblast {
namespace {

using ir::Op;

// Fixture: asserts concrete values onto fresh literal vectors, applies the
// encoded op, solves, and reads back the output value.
class BlastHarness {
 public:
  BlastHarness() : gates_(solver_), blaster_(gates_) {}

  Bits InputWithValue(uint32_t width, uint64_t value) {
    Bits bits = blaster_.Fresh(width);
    for (uint32_t i = 0; i < width; ++i) {
      gates_.Assert(GetBit(value, i) ? bits[i] : ~bits[i]);
    }
    return bits;
  }

  uint64_t Eval(const Bits& bits) {
    EXPECT_EQ(solver_.Solve(), sat::SolveResult::kSat);
    uint64_t value = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
      const sat::LBool model = solver_.ModelValue(bits[i]);
      if (model == sat::LBool::kTrue) value |= uint64_t{1} << i;
    }
    return value;
  }

  BitBlaster& blaster() { return blaster_; }

 private:
  sat::Solver solver_;
  GateBuilder gates_;
  BitBlaster blaster_;
};

uint64_t Golden(Op op, uint32_t out_width, uint64_t a, uint32_t wa,
                uint64_t b, uint32_t wb, uint32_t aux0 = 0,
                uint32_t aux1 = 0) {
  const uint64_t vals[] = {a, b};
  const uint32_t widths[] = {wa, wb};
  return ir::EvalScalarOp(op, out_width, std::span(vals, 2),
                          std::span(widths, 2), aux0, aux1);
}

struct BinOpCase {
  Op op;
  const char* name;
  bool compare;  // 1-bit result
};

class BinaryOpExhaustiveTest : public ::testing::TestWithParam<BinOpCase> {};

// Exhaustive over both operands at width 3.
TEST_P(BinaryOpExhaustiveTest, Width3MatchesSemantics) {
  const BinOpCase& test_case = GetParam();
  constexpr uint32_t w = 3;
  for (uint64_t a = 0; a < 8; ++a) {
    for (uint64_t b = 0; b < 8; ++b) {
      BlastHarness harness;
      const Bits ba = harness.InputWithValue(w, a);
      const Bits bb = harness.InputWithValue(w, b);
      const Bits out = harness.blaster().EvalScalarOp(
          test_case.op, test_case.compare ? 1 : w, std::array<Bits, 2>{ba, bb},
          0, 0);
      const uint64_t expected =
          Golden(test_case.op, test_case.compare ? 1 : w, a, w, b, w);
      ASSERT_EQ(harness.Eval(out), expected)
          << test_case.name << "(" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, BinaryOpExhaustiveTest,
    ::testing::Values(BinOpCase{Op::kAnd, "and", false},
                      BinOpCase{Op::kOr, "or", false},
                      BinOpCase{Op::kXor, "xor", false},
                      BinOpCase{Op::kAdd, "add", false},
                      BinOpCase{Op::kSub, "sub", false},
                      BinOpCase{Op::kMul, "mul", false},
                      BinOpCase{Op::kUdiv, "udiv", false},
                      BinOpCase{Op::kUrem, "urem", false},
                      BinOpCase{Op::kEq, "eq", true},
                      BinOpCase{Op::kNe, "ne", true},
                      BinOpCase{Op::kUlt, "ult", true},
                      BinOpCase{Op::kUle, "ule", true},
                      BinOpCase{Op::kSlt, "slt", true},
                      BinOpCase{Op::kSle, "sle", true},
                      BinOpCase{Op::kShl, "shl", false},
                      BinOpCase{Op::kLshr, "lshr", false},
                      BinOpCase{Op::kAshr, "ashr", false}),
    [](const auto& info) { return std::string(info.param.name); });

class BinaryOpRandomTest : public ::testing::TestWithParam<BinOpCase> {};

// Randomized at widths 8 and 13 (non-power-of-two).
TEST_P(BinaryOpRandomTest, WiderWidthsMatchSemantics) {
  const BinOpCase& test_case = GetParam();
  Rng rng(0xC0FFEE ^ static_cast<uint64_t>(test_case.op));
  for (uint32_t w : {8u, 13u}) {
    for (int round = 0; round < 24; ++round) {
      const uint64_t a = rng.NextBits(w);
      // Bias shift amounts small so in-range shifts get exercised too.
      uint64_t b = rng.NextBits(w);
      if (round % 2 == 0) b = rng.NextBelow(w + 2);
      BlastHarness harness;
      const Bits ba = harness.InputWithValue(w, a);
      const Bits bb = harness.InputWithValue(w, b);
      const uint32_t out_w = test_case.compare ? 1 : w;
      const Bits out = harness.blaster().EvalScalarOp(
          test_case.op, out_w, std::array<Bits, 2>{ba, bb}, 0, 0);
      ASSERT_EQ(harness.Eval(out), Golden(test_case.op, out_w, a, w, b, w))
          << test_case.name << "(" << a << ", " << b << ") width " << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, BinaryOpRandomTest,
    ::testing::Values(BinOpCase{Op::kAdd, "add", false},
                      BinOpCase{Op::kSub, "sub", false},
                      BinOpCase{Op::kMul, "mul", false},
                      BinOpCase{Op::kUdiv, "udiv", false},
                      BinOpCase{Op::kUrem, "urem", false},
                      BinOpCase{Op::kUlt, "ult", true},
                      BinOpCase{Op::kSlt, "slt", true},
                      BinOpCase{Op::kShl, "shl", false},
                      BinOpCase{Op::kLshr, "lshr", false},
                      BinOpCase{Op::kAshr, "ashr", false}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(UnaryOpsTest, NotNegExtractExtendExhaustive) {
  constexpr uint32_t w = 4;
  for (uint64_t a = 0; a < 16; ++a) {
    BlastHarness harness;
    const Bits ba = harness.InputWithValue(w, a);
    EXPECT_EQ(harness.Eval(harness.blaster().Not(ba)), Truncate(~a, w));
    EXPECT_EQ(harness.Eval(harness.blaster().Neg(ba)), Truncate(-a, w));
    EXPECT_EQ(harness.Eval(harness.blaster().Extract(ba, 2, 1)),
              (a >> 1) & 3);
    EXPECT_EQ(harness.Eval(harness.blaster().Zext(ba, 7)), a);
    EXPECT_EQ(harness.Eval(harness.blaster().Sext(ba, 7)),
              Truncate(static_cast<uint64_t>(SignExtend(a, w)), 7));
  }
}

TEST(StructureOpsTest, ConcatAndIte) {
  BlastHarness harness;
  const Bits hi = harness.InputWithValue(3, 0b101);
  const Bits lo = harness.InputWithValue(2, 0b10);
  EXPECT_EQ(harness.Eval(harness.blaster().Concat(hi, lo)), 0b10110u);

  const Bits sel_true = harness.InputWithValue(1, 1);
  const Bits a = harness.InputWithValue(4, 9);
  const Bits b = harness.InputWithValue(4, 4);
  EXPECT_EQ(harness.Eval(harness.blaster().Ite(sel_true[0], a, b)), 9u);
  EXPECT_EQ(harness.Eval(harness.blaster().Ite(~sel_true[0], a, b)), 4u);
}

TEST(ArrayOpsTest, WriteThenReadBack) {
  BlastHarness harness;
  auto& blaster = harness.blaster();
  ArrayBits array = blaster.ConstantArray(2, 8, 0x11);
  const Bits index = harness.InputWithValue(2, 2);
  const Bits value = harness.InputWithValue(8, 0xAB);
  array = blaster.Write(array, index, value);
  // Read back every slot.
  for (uint64_t i = 0; i < 4; ++i) {
    const Bits addr = harness.InputWithValue(2, i);
    const uint64_t expected = i == 2 ? 0xAB : 0x11;
    EXPECT_EQ(harness.Eval(blaster.Read(array, addr)), expected) << i;
  }
}

TEST(ArrayOpsTest, SymbolicIndexReadIsExact) {
  // With a symbolic index constrained to 3, the read must select slot 3.
  sat::Solver solver;
  GateBuilder gates(solver);
  BitBlaster blaster(gates);
  ArrayBits array = blaster.ConstantArray(2, 4, 0);
  for (uint64_t i = 0; i < 4; ++i) {
    Bits idx = blaster.Constant(2, i);
    array = blaster.Write(array, idx, blaster.Constant(4, i + 5));
  }
  Bits index = blaster.Fresh(2);
  Bits out = blaster.Read(array, index);
  // Constrain out == 8 and check the model's index is 3.
  gates.Assert(gates.Xnor(out[0], gates.False()));
  gates.Assert(gates.Xnor(out[1], gates.False()));
  gates.Assert(gates.Xnor(out[2], gates.False()));
  gates.Assert(gates.Xnor(out[3], gates.True()));
  ASSERT_EQ(solver.Solve(), sat::SolveResult::kSat);
  uint64_t idx_val = 0;
  for (int i = 0; i < 2; ++i) {
    if (solver.ModelValue(index[i]) == sat::LBool::kTrue) idx_val |= 1u << i;
  }
  EXPECT_EQ(idx_val, 3u);
}

TEST(GateBuilderTest, ConstantFoldingAndHashConsing) {
  sat::Solver solver;
  GateBuilder gates(solver);
  const sat::Lit a = gates.Fresh();
  const sat::Lit b = gates.Fresh();
  EXPECT_EQ(gates.And(gates.False(), a), gates.False());
  EXPECT_EQ(gates.And(gates.True(), a), a);
  EXPECT_EQ(gates.And(a, a), a);
  EXPECT_EQ(gates.And(a, ~a), gates.False());
  EXPECT_EQ(gates.Or(a, gates.True()), gates.True());
  EXPECT_EQ(gates.Xor(a, gates.False()), a);
  EXPECT_EQ(gates.Xor(a, a), gates.False());
  EXPECT_EQ(gates.Xor(a, ~a), gates.True());
  // Hash consing: same gate twice, one variable.
  const uint64_t gates_before = gates.num_gates();
  const sat::Lit g1 = gates.And(a, b);
  const sat::Lit g2 = gates.And(b, a);  // commutative normalization
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(gates.num_gates(), gates_before + 1);
  // Xor polarity normalization shares the gate.
  const sat::Lit x1 = gates.Xor(a, b);
  const sat::Lit x2 = gates.Xor(~a, b);
  EXPECT_EQ(x1, ~x2);
}

TEST(GateBuilderTest, MuxSpecialCases) {
  sat::Solver solver;
  GateBuilder gates(solver);
  const sat::Lit s = gates.Fresh();
  const sat::Lit t = gates.Fresh();
  EXPECT_EQ(gates.Mux(gates.True(), t, s), t);
  EXPECT_EQ(gates.Mux(gates.False(), t, s), s);
  EXPECT_EQ(gates.Mux(s, t, t), t);
  // Exhaustive truth-table check of the hashed mux gate.
  const sat::Lit e = gates.Fresh();
  const sat::Lit out = gates.Mux(s, t, e);
  for (int sv = 0; sv < 2; ++sv) {
    for (int tv = 0; tv < 2; ++tv) {
      for (int ev = 0; ev < 2; ++ev) {
        const sat::Lit assumptions[] = {sv ? s : ~s, tv ? t : ~t,
                                        ev ? e : ~e};
        ASSERT_EQ(solver.Solve(assumptions), sat::SolveResult::kSat);
        const bool expected = sv ? tv : ev;
        EXPECT_EQ(solver.ModelValue(out) == sat::LBool::kTrue, expected)
            << sv << tv << ev;
      }
    }
  }
}

}  // namespace
}  // namespace aqed::bitblast
