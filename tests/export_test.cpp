// BTOR2 and VCD export tests.
#include <gtest/gtest.h>

#include "accel/memctrl.h"
#include "aqed/checker.h"
#include "bmc/engine.h"
#include "bmc/vcd.h"
#include "ir/btor2.h"

namespace aqed {
namespace {

using ir::NodeRef;
using ir::Sort;

ir::TransitionSystem MakeSmallSystem() {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in = ts.AddInput("stimulus", Sort::BitVec(4));
  const NodeRef acc = ts.AddState("acc", Sort::BitVec(4), 1);
  ts.SetNext(acc, ctx.Add(acc, in));
  ts.AddConstraint(ctx.Ult(in, ctx.Const(4, 8)));
  ts.AddBad(ctx.Eq(acc, ctx.Const(4, 9)), "acc9");
  ts.AddOutput("acc", acc);
  return ts;
}

TEST(Btor2Test, EmitsWellFormedLines) {
  const auto ts = MakeSmallSystem();
  const std::string text = ir::ToBtor2(ts);
  EXPECT_NE(text.find("sort bitvec 4"), std::string::npos);
  EXPECT_NE(text.find("sort bitvec 1"), std::string::npos);
  EXPECT_NE(text.find("input"), std::string::npos);
  EXPECT_NE(text.find("state"), std::string::npos);
  EXPECT_NE(text.find(" init "), std::string::npos);
  EXPECT_NE(text.find(" next "), std::string::npos);
  EXPECT_NE(text.find("constraint"), std::string::npos);
  EXPECT_NE(text.find("bad"), std::string::npos);
  EXPECT_NE(text.find("acc9"), std::string::npos);
  // Every non-comment line starts with a strictly increasing id.
  std::istringstream stream(text);
  std::string line;
  uint64_t last_id = 0;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == ';') continue;
    uint64_t id = 0;
    ASSERT_EQ(sscanf(line.c_str(), "%llu",
                     reinterpret_cast<unsigned long long*>(&id)),
              1)
        << line;
    EXPECT_GT(id, last_id) << line;
    last_id = id;
  }
}

TEST(Btor2Test, ExportsFullCaseStudyDesign) {
  ir::TransitionSystem ts;
  const auto design =
      accel::BuildMemCtrl(ts, accel::MemCtrlConfig::kFifo);
  core::AqedOptions options;  // instrument FC so monitors export too
  core::InstrumentFc(ts, design.acc, {});
  const std::string text = ir::ToBtor2(ts);
  EXPECT_NE(text.find("sort array"), std::string::npos);  // FIFO memory
  EXPECT_NE(text.find("read"), std::string::npos);
  EXPECT_NE(text.find("write"), std::string::npos);
  EXPECT_NE(text.find("aqed_fc"), std::string::npos);
  EXPECT_GT(std::count(text.begin(), text.end(), '\n'), 100);
}

TEST(VcdTest, DumpsCounterexampleWaveform) {
  auto ts = MakeSmallSystem();
  bmc::BmcOptions options;
  options.max_bound = 10;
  const auto result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());

  const std::string vcd = bmc::ToVcd(ts, result.trace);
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 4"), std::string::npos);
  EXPECT_NE(vcd.find("stimulus"), std::string::npos);
  EXPECT_NE(vcd.find("acc9"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  // One timestep marker per cycle plus the closing marker (identifier
  // codes may also contain '#', so count line-initial markers).
  long timesteps = 0;
  std::istringstream lines(vcd);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '#') ++timesteps;
  }
  EXPECT_EQ(timesteps, static_cast<long>(result.trace.length()) + 1);
  // The accumulator must reach 9 (binary) at some point.
  EXPECT_NE(vcd.find("b1001"), std::string::npos);
}

TEST(VcdTest, MultiBitAndSingleBitFormats) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef flag = ts.AddInput("flag", Sort::BitVec(1));
  const NodeRef bus = ts.AddInput("bus", Sort::BitVec(3));
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(1), 0);
  ts.SetNext(reg, flag);
  ts.AddBad(ctx.And(ctx.Eq(flag, ctx.True()),
                    ctx.Eq(bus, ctx.Const(3, 5))),
            "combo");
  bmc::BmcOptions options;
  options.max_bound = 2;
  const auto result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  const std::string vcd = bmc::ToVcd(ts, result.trace);
  EXPECT_NE(vcd.find("b101 "), std::string::npos);  // 3-bit bus value
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
}

TEST(Btor2Test, RoundTripPreservesBmcOutcome) {
  // export -> import -> the same bug at the same minimal depth.
  auto original = MakeSmallSystem();
  const std::string text = ir::ToBtor2(original);
  auto imported = ir::ImportBtor2String(text);
  ASSERT_TRUE(imported.ok()) << imported.status().message();
  ASSERT_TRUE(imported.value()->Validate().ok())
      << imported.value()->Validate().message();

  bmc::BmcOptions options;
  options.max_bound = 12;
  const auto original_result = RunBmc(original, options);
  const auto imported_result = RunBmc(*imported.value(), options);
  ASSERT_TRUE(original_result.found_bug());
  ASSERT_TRUE(imported_result.found_bug());
  EXPECT_EQ(original_result.trace.length(), imported_result.trace.length());
  EXPECT_TRUE(imported_result.trace_validated);
}

TEST(Btor2Test, RoundTripOfInstrumentedAccelerator) {
  // A full A-QED-instrumented buggy design survives the round trip and the
  // imported model finds the same-length FC counterexample.
  ir::TransitionSystem ts;
  const auto design = accel::BuildMemCtrl(
      ts, accel::MemCtrlConfig::kLineBuffer, accel::MemCtrlBug::kLbStaleAccum);
  core::InstrumentFc(ts, design.acc, {});
  const std::string text = ir::ToBtor2(ts);
  auto imported = ir::ImportBtor2String(text);
  ASSERT_TRUE(imported.ok()) << imported.status().message();
  ASSERT_TRUE(imported.value()->Validate().ok());

  bmc::BmcOptions options;
  options.max_bound = 12;
  const auto original_result = RunBmc(ts, options);
  const auto imported_result = RunBmc(*imported.value(), options);
  ASSERT_TRUE(original_result.found_bug());
  ASSERT_TRUE(imported_result.found_bug());
  EXPECT_EQ(original_result.trace.length(), imported_result.trace.length());
}

TEST(Btor2Test, ImportRejectsMalformedInput) {
  EXPECT_FALSE(ir::ImportBtor2String("1 sort bitvec 0\n").ok());
  EXPECT_FALSE(ir::ImportBtor2String("1 bogus 2 3\n").ok());
  EXPECT_FALSE(ir::ImportBtor2String("1 sort bitvec 4\n2 add 1 9 9\n").ok());
  EXPECT_FALSE(ir::ImportBtor2String("x sort bitvec 4\n").ok());
  EXPECT_FALSE(ir::ImportBtor2String("1 sort bitvec 4\n2 constd 1 zz\n").ok());
}

TEST(Btor2Test, ImportSupportsNegatedOperandsAndNamedConstants) {
  const char* text =
      "1 sort bitvec 1\n"
      "2 input 1 a\n"
      "3 one 1\n"
      "4 and 1 -2 3\n"  // ~a & 1
      "5 bad 4\n";
  auto imported = ir::ImportBtor2String(text);
  ASSERT_TRUE(imported.ok()) << imported.status().message();
  bmc::BmcOptions options;
  options.max_bound = 2;
  const auto result = RunBmc(*imported.value(), options);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.trace.length(), 1u);
}

}  // namespace
}  // namespace aqed
