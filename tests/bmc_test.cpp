// BMC engine tests: reachability depth exactness, constraints, multiple bad
// predicates, trace extraction and replay, uninitialized (symbolic) state,
// arrays, conflict budgets, and preprocessing-mode equivalence.
#include <gtest/gtest.h>

#include "bmc/engine.h"
#include "ir/transition_system.h"

namespace aqed::bmc {
namespace {

using ir::NodeRef;
using ir::Sort;

// Counter that reaches `target` after exactly `target` steps.
ir::TransitionSystem MakeCounter(uint64_t target, uint32_t width) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef counter = ts.AddState("counter", Sort::BitVec(width), 0);
  ts.SetNext(counter, ctx.Add(counter, ctx.Const(width, 1)));
  ts.AddBad(ctx.Eq(counter, ctx.Const(width, target)), "reaches_target");
  return ts;
}

TEST(BmcTest, FindsCounterTargetAtExactDepth) {
  for (uint64_t target : {0ull, 1ull, 5ull, 12ull}) {
    auto ts = MakeCounter(target, 5);
    BmcOptions options;
    options.max_bound = 20;
    const BmcResult result = RunBmc(ts, options);
    ASSERT_TRUE(result.found_bug()) << target;
    // Minimal-length witness: trace length == target+1 cycles.
    EXPECT_EQ(result.trace.length(), target + 1) << target;
    EXPECT_TRUE(result.trace_validated);
  }
}

TEST(BmcTest, InputDrivenBadInInitialFrameHasOneCycleTrace) {
  // Depth-0 counterexample through an *input* valuation (not just initial
  // state): the reported trace covers 1 cycle, never 0.
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in = ts.AddInput("in", Sort::BitVec(4));
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(4), 0);
  ts.SetNext(reg, in);
  ts.AddBad(ctx.Eq(in, ctx.Const(4, 9)), "in9");
  BmcOptions options;
  options.max_bound = 4;
  const BmcResult result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.trace.length(), 1u);
  EXPECT_TRUE(result.trace_validated);
}

TEST(BmcTest, UnreachableWithinBound) {
  auto ts = MakeCounter(30, 5);
  BmcOptions options;
  options.max_bound = 10;
  const BmcResult result = RunBmc(ts, options);
  EXPECT_FALSE(result.found_bug());
  EXPECT_EQ(result.outcome, BmcResult::Outcome::kBoundReached);
  EXPECT_EQ(result.frames_explored, 10u);
}

TEST(BmcTest, ConstraintsBlockCounterexamples) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in = ts.AddInput("in", Sort::BitVec(4));
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(4), 0);
  ts.SetNext(reg, in);
  // reg == 9 is reachable only through in == 9, which is forbidden.
  ts.AddConstraint(ctx.Ne(in, ctx.Const(4, 9)));
  ts.AddBad(ctx.Eq(reg, ctx.Const(4, 9)), "reg9");
  BmcOptions options;
  options.max_bound = 6;
  EXPECT_FALSE(RunBmc(ts, options).found_bug());
}

TEST(BmcTest, ReportsTheReachableBadAmongMany) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef counter = ts.AddState("counter", Sort::BitVec(4), 0);
  ts.SetNext(counter, ctx.Add(counter, ctx.Const(4, 1)));
  ts.AddBad(ctx.Eq(counter, ctx.Const(4, 12)), "deep");
  const uint32_t shallow =
      ts.AddBad(ctx.Eq(counter, ctx.Const(4, 3)), "shallow");
  BmcOptions options;
  options.max_bound = 16;
  const BmcResult result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.trace.bad_index, shallow);
  EXPECT_EQ(result.trace.bad_label, "shallow");
  EXPECT_EQ(result.trace.length(), 4u);
}

TEST(BmcTest, BadFilterRestrictsTargets) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef counter = ts.AddState("counter", Sort::BitVec(4), 0);
  ts.SetNext(counter, ctx.Add(counter, ctx.Const(4, 1)));
  const uint32_t deep = ts.AddBad(ctx.Eq(counter, ctx.Const(4, 9)), "deep");
  ts.AddBad(ctx.Eq(counter, ctx.Const(4, 2)), "shallow");
  BmcOptions options;
  options.max_bound = 16;
  options.bad_filter = {deep};
  const BmcResult result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.trace.bad_label, "deep");
  EXPECT_EQ(result.trace.length(), 10u);
}

TEST(BmcTest, SymbolicInitialStateIsSearched) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(8));  // no init
  ts.SetNext(reg, reg);
  ts.AddBad(ctx.Eq(reg, ctx.Const(8, 0xA7)), "magic");
  BmcOptions options;
  options.max_bound = 2;
  const BmcResult result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.trace.length(), 1u);
  EXPECT_EQ(result.trace.initial_states.at(reg), 0xA7u);
  EXPECT_TRUE(result.trace_validated);
}

TEST(BmcTest, InputSequenceRecoveredInTrace) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in = ts.AddInput("in", Sort::BitVec(4));
  const NodeRef acc = ts.AddState("acc", Sort::BitVec(4), 0);
  ts.SetNext(acc, ctx.Add(acc, in));
  ts.AddBad(ctx.Eq(acc, ctx.Const(4, 11)), "sum11");
  BmcOptions options;
  options.max_bound = 8;
  const BmcResult result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  // Inputs across the trace (before the last frame) must sum to 11 mod 16.
  uint64_t sum = 0;
  for (uint32_t t = 0; t + 1 < result.trace.length(); ++t) {
    sum += result.trace.inputs[t].at(in);
  }
  EXPECT_EQ(sum % 16, 11u);
}

TEST(BmcTest, ArrayMemoryReachability) {
  // Write-then-read through a memory: bad when readback of a chosen slot
  // equals a magic value that must first be written there.
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef mem = ts.AddState("mem", Sort::Array(2, 8), 0);
  const NodeRef addr = ts.AddInput("addr", Sort::BitVec(2));
  const NodeRef data = ts.AddInput("data", Sort::BitVec(8));
  ts.SetNext(mem, ctx.Write(mem, addr, data));
  const NodeRef probe = ctx.Read(mem, ctx.Const(2, 3));
  ts.AddBad(ctx.Eq(probe, ctx.Const(8, 0x5A)), "slot3_magic");
  BmcOptions options;
  options.max_bound = 4;
  const BmcResult result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.trace.length(), 2u);  // one write + one observe cycle
  EXPECT_TRUE(result.trace_validated);
}

TEST(BmcTest, ConflictBudgetSkipsDepthsButStaysSound) {
  auto ts = MakeCounter(6, 5);
  BmcOptions options;
  options.max_bound = 10;
  options.conflict_budget = 1;  // tiny; refutations may be skipped
  const BmcResult result = RunBmc(ts, options);
  // The counterexample query is trivial (propagation only), so the bug is
  // still found and still minimal.
  ASSERT_TRUE(result.found_bug());
  EXPECT_EQ(result.trace.length(), 7u);
}

TEST(BmcTest, PreprocessingModeAgrees) {
  for (bool preprocess : {false, true}) {
    auto ts = MakeCounter(9, 5);
    BmcOptions options;
    options.max_bound = 16;
    options.use_preprocessing = preprocess;
    const BmcResult result = RunBmc(ts, options);
    ASSERT_TRUE(result.found_bug()) << preprocess;
    EXPECT_EQ(result.trace.length(), 10u) << preprocess;
    EXPECT_TRUE(result.trace_validated) << preprocess;
  }
}

TEST(TraceTest, ReplayRejectsTamperedTrace) {
  auto ts = MakeCounter(4, 5);
  BmcOptions options;
  options.max_bound = 8;
  BmcResult result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  EXPECT_TRUE(ReplayTrace(ts, result.trace));
  // Truncating the trace makes the bad unreachable at the final cycle.
  Trace truncated = result.trace;
  truncated.inputs.pop_back();
  EXPECT_FALSE(ReplayTrace(ts, truncated));
  Trace empty = result.trace;
  empty.inputs.clear();
  EXPECT_FALSE(ReplayTrace(ts, empty));
}

TEST(TraceTest, FormatContainsInputsAndOutputs) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in = ts.AddInput("stimulus", Sort::BitVec(4));
  const NodeRef reg = ts.AddState("reg", Sort::BitVec(4), 0);
  ts.SetNext(reg, in);
  ts.AddBad(ctx.Eq(reg, ctx.Const(4, 3)), "reg3");
  ts.AddOutput("observed", reg);
  BmcOptions options;
  options.max_bound = 4;
  const BmcResult result = RunBmc(ts, options);
  ASSERT_TRUE(result.found_bug());
  const std::string text = FormatTrace(ts, result.trace);
  EXPECT_NE(text.find("stimulus="), std::string::npos);
  EXPECT_NE(text.find("observed="), std::string::npos);
  EXPECT_NE(text.find("reg3"), std::string::npos);
}

}  // namespace
}  // namespace aqed::bmc
