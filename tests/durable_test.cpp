// Durability and graceful-degradation tests: the CRC-guarded write-ahead
// result journal (encode/decode, torn-tail and corrupt-record replay,
// interrupted-then-resumed campaigns reproducing the uninterrupted digest
// bit-for-bit at --jobs 1 and --jobs 8), the failure-point chaos harness
// that drives those interruptions, durable file writes, the memory
// governor's pressure ladder, and the solver's shed-under-pressure path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "accel/dataflow.h"
#include "aqed/checker.h"
#include "aqed/monitor_util.h"
#include "fault/campaign.h"
#include "fault/journal.h"
#include "sat/solver.h"
#include "sched/memory_governor.h"
#include "sched/session.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "telemetry/export.h"
#include "telemetry/resource.h"

namespace aqed::fault {
namespace {

using ir::NodeRef;
using ir::Sort;
using support::FailpointAction;
using support::FailpointError;
using support::FailpointTrigger;
namespace failpoint = support::failpoint;

// RAII temp file path (the file itself may or may not be created).
class TempPath {
 public:
  explicit TempPath(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             ("aqed_durable_" + stem + "_" +
              std::to_string(::getpid())))
                .string();
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

MutantReport SampleReport() {
  MutantReport report;
  report.design = "memctrl-\"fifo\"\n";  // exercise JSON escaping
  report.key = {MutationOp::kOperatorSwap, 42, 0xA9EDull};
  report.classification = Classification::kDetectedRb;
  report.kind = core::BugKind::kResponseBound;
  report.cex_cycles = 9;
  report.attempts = 3;
  report.unknown_reason = UnknownReason::kNone;
  report.wall_seconds = 0.125;
  report.golden_ran = true;
  report.golden_detected = true;
  report.golden_cycles = 77;
  report.golden_seconds = 2.5;
  return report;
}

// --- durable file I/O --------------------------------------------------------

TEST(DurableIoTest, WriteFileDurableRoundTripsAndLeavesNoTmp) {
  TempPath path("io");
  ASSERT_TRUE(support::WriteFileDurable(path.str(), "hello\njournal\n").ok());
  const auto read = support::ReadFileToString(path.str());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello\njournal\n");
  EXPECT_FALSE(std::filesystem::exists(path.str() + ".tmp"));
}

TEST(DurableIoTest, ReadFileToStringReportsMissingFile) {
  EXPECT_FALSE(support::ReadFileToString("/nonexistent/aqed/file").ok());
}

// --- CRC and record codec ----------------------------------------------------

TEST(JournalTest, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for the ASCII digits "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(JournalTest, RecordRoundTripsAllFields) {
  const MutantReport report = SampleReport();
  const std::string line = EncodeJournalRecord(report);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  const auto decoded =
      DecodeJournalRecord(std::string_view(line).substr(0, line.size() - 1));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->design, report.design);
  EXPECT_TRUE(decoded->key == report.key);
  EXPECT_EQ(decoded->classification, report.classification);
  EXPECT_EQ(decoded->kind, report.kind);
  EXPECT_EQ(decoded->cex_cycles, report.cex_cycles);
  EXPECT_EQ(decoded->attempts, report.attempts);
  EXPECT_EQ(decoded->unknown_reason, report.unknown_reason);
  EXPECT_DOUBLE_EQ(decoded->wall_seconds, report.wall_seconds);
  EXPECT_EQ(decoded->golden_ran, report.golden_ran);
  EXPECT_EQ(decoded->golden_detected, report.golden_detected);
  EXPECT_EQ(decoded->golden_cycles, report.golden_cycles);
  EXPECT_DOUBLE_EQ(decoded->golden_seconds, report.golden_seconds);
}

TEST(JournalTest, CorruptedPayloadFailsCrc) {
  std::string line = EncodeJournalRecord(SampleReport());
  line.pop_back();  // strip '\n'
  // Flip one payload character: the CRC must catch it.
  const size_t pos = line.find("\"node\":42");
  ASSERT_NE(pos, std::string::npos);
  std::string corrupt = line;
  corrupt[pos + 8] = '3';
  EXPECT_FALSE(DecodeJournalRecord(corrupt).has_value());
  // Truncation (a torn write) is also rejected.
  EXPECT_FALSE(
      DecodeJournalRecord(std::string_view(line).substr(0, line.size() / 2))
          .has_value());
  // The pristine line still decodes.
  EXPECT_TRUE(DecodeJournalRecord(line).has_value());
}

// --- replay ------------------------------------------------------------------

TEST(JournalTest, ReplayOfMissingFileIsEmpty) {
  const auto replay = ReplayJournal("/nonexistent/aqed/journal.jsonl");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().records.empty());
  EXPECT_EQ(replay.value().valid_bytes, 0u);
  EXPECT_FALSE(replay.value().torn_tail);
}

TEST(JournalTest, ReplaySkipsCorruptMidFileRecordAndCounts) {
  TempPath path("midcorrupt");
  MutantReport a = SampleReport();
  MutantReport b = SampleReport();
  b.key.node = 7;
  std::string contents = EncodeJournalRecord(a);
  std::string bad = EncodeJournalRecord(SampleReport());
  bad[bad.size() / 2] ^= 1;  // corrupt a complete mid-file line
  contents += bad;
  contents += EncodeJournalRecord(b);
  ASSERT_TRUE(support::WriteFileDurable(path.str(), contents).ok());

  const auto replay = ReplayJournal(path.str());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(), 2u);
  EXPECT_EQ(replay.value().skipped_records, 1u);
  EXPECT_FALSE(replay.value().torn_tail);
  EXPECT_EQ(replay.value().records[1].key.node, 7u);
  // The decodable prefix runs to end-of-file (the corrupt line is complete,
  // so later records after it are still appendable-after).
  EXPECT_EQ(replay.value().valid_bytes, contents.size());
}

TEST(JournalTest, ReplayTruncatesTornTailAndOpenDropsIt) {
  TempPath path("torn");
  const std::string good = EncodeJournalRecord(SampleReport());
  std::string torn = EncodeJournalRecord(SampleReport());
  torn.resize(torn.size() / 2);  // kill -9 mid-append
  ASSERT_TRUE(support::WriteFileDurable(path.str(), good + torn).ok());

  const auto replay = ReplayJournal(path.str());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(), 1u);
  EXPECT_TRUE(replay.value().torn_tail);
  EXPECT_EQ(replay.value().valid_bytes, good.size());

  // Re-opening at valid_bytes truncates the torn bytes; a fresh append
  // lands on a clean boundary and the file replays fully.
  ResultJournal journal;
  ASSERT_TRUE(journal.Open(path.str(), replay.value().valid_bytes).ok());
  MutantReport next = SampleReport();
  next.key.seed = 0xFEED;
  ASSERT_TRUE(journal.Append(next).ok());
  journal.Close();
  const auto replay2 = ReplayJournal(path.str());
  ASSERT_TRUE(replay2.ok());
  EXPECT_EQ(replay2.value().records.size(), 2u);
  EXPECT_FALSE(replay2.value().torn_tail);
  EXPECT_EQ(replay2.value().records[1].key.seed, 0xFEEDull);
}

TEST(JournalTest, WriteJournalFileCompacts) {
  TempPath path("compact");
  std::vector<MutantReport> reports(3, SampleReport());
  reports[1].key.node = 1;
  reports[2].key.node = 2;
  ASSERT_TRUE(WriteJournalFile(path.str(), reports).ok());
  const auto replay = ReplayJournal(path.str());
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 3u);
  EXPECT_EQ(replay.value().records[2].key.node, 2u);
}

// --- failpoints --------------------------------------------------------------

#if !AQED_FAILPOINTS_ENABLED

// -DAQED_FAILPOINTS=OFF compiles every site down to (false) and the arming
// API down to inert stubs; the spec parser reports why arming cannot work.
TEST(FailpointTest, CompiledOutSitesAreInert) {
  failpoint::Arm("durable.test.site", {FailpointAction::kThrow});
  EXPECT_FALSE(AQED_FAILPOINT("durable.test.site"));
  EXPECT_EQ(failpoint::HitCount("durable.test.site"), 0u);
  EXPECT_FALSE(failpoint::ArmFromSpec("durable.test.site=throw").ok());
  EXPECT_TRUE(failpoint::Armed().empty());
}

#else  // AQED_FAILPOINTS_ENABLED

TEST(FailpointTest, UnarmedSiteIsFalseAndCountsNothing) {
  failpoint::DisarmAll();
  EXPECT_FALSE(AQED_FAILPOINT("durable.test.site"));
  EXPECT_EQ(failpoint::HitCount("durable.test.site"), 0u);
}

TEST(FailpointTest, SkipAndLimitCountHits) {
  failpoint::DisarmAll();
  // Fire on the 3rd hit only (skip 2, limit 1), error action.
  failpoint::Arm("durable.test.site",
                 {FailpointAction::kReturnError, /*skip=*/2, /*limit=*/1});
  EXPECT_FALSE(AQED_FAILPOINT("durable.test.site"));
  EXPECT_FALSE(AQED_FAILPOINT("durable.test.site"));
  EXPECT_TRUE(AQED_FAILPOINT("durable.test.site"));
  EXPECT_FALSE(AQED_FAILPOINT("durable.test.site"));  // limit exhausted
  EXPECT_EQ(failpoint::HitCount("durable.test.site"), 4u);
  EXPECT_EQ(failpoint::FireCount("durable.test.site"), 1u);
  failpoint::DisarmAll();
}

TEST(FailpointTest, ThrowActionCarriesSiteName) {
  failpoint::DisarmAll();
  failpoint::Arm("durable.test.throw", {FailpointAction::kThrow});
  try {
    (void)AQED_FAILPOINT("durable.test.throw");
    FAIL() << "failpoint did not throw";
  } catch (const FailpointError& error) {
    EXPECT_EQ(error.name(), "durable.test.throw");
  }
  failpoint::DisarmAll();
}

TEST(FailpointTest, SpecGrammarParses) {
  failpoint::DisarmAll();
  ASSERT_TRUE(
      failpoint::ArmFromSpec("a.site=throw@6,b.site=error,c.site=delay:1")
          .ok());
  EXPECT_EQ(failpoint::Armed(),
            (std::vector<std::string>{"a.site", "b.site", "c.site"}));
  // b.site fires immediately with the error action.
  EXPECT_TRUE(AQED_FAILPOINT("b.site"));
  // a.site=throw@6 passes five hits through, then throws.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(AQED_FAILPOINT("a.site"));
  EXPECT_THROW((void)AQED_FAILPOINT("a.site"), FailpointError);
  EXPECT_FALSE(failpoint::ArmFromSpec("bogus").ok());
  EXPECT_FALSE(failpoint::ArmFromSpec("x=frobnicate").ok());
  failpoint::DisarmAll();
  EXPECT_TRUE(failpoint::Armed().empty());
}

// --- telemetry export failure path ------------------------------------------

TEST(FailpointTest, TelemetryExportSiteTakesErrorPath) {
  TempPath path("trace");
  failpoint::DisarmAll();
  failpoint::Arm("telemetry.export", {FailpointAction::kReturnError});
  EXPECT_FALSE(telemetry::WriteChromeTraceFile(path.str(), {}));
  EXPECT_FALSE(std::filesystem::exists(path.str()));
  failpoint::DisarmAll();
  EXPECT_TRUE(telemetry::WriteChromeTraceFile(path.str(), {}));
  EXPECT_TRUE(std::filesystem::exists(path.str()));
  EXPECT_FALSE(std::filesystem::exists(path.str() + ".tmp"));
}

#endif  // AQED_FAILPOINTS_ENABLED

// --- journaled campaigns -----------------------------------------------------

// Same one-deep toy as fault_test: capture when idle, respond next cycle
// with in + 1.
core::AcceleratorInterface BuildToy(ir::TransitionSystem& ts) {
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef held = core::Reg(ts, "held", 8, 0);
  const NodeRef out_pending = core::Reg(ts, "out_pending", 1, 0);

  const NodeRef in_ready = ctx.Not(out_pending);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef drain = ctx.And(out_pending, host_ready);

  core::LatchWhen(ts, held, capture, in_data);
  ts.SetNext(out_pending, ctx.Ite(capture, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  core::AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_pending;
  acc.data_elems = {{in_data}};
  acc.out_elems = {{ctx.Add(held, ctx.Const(8, 1))}};
  return acc;
}

std::vector<DesignUnderTest> JournalDesigns() {
  std::vector<DesignUnderTest> designs;
  core::AqedOptions toy_options;
  toy_options.bmc.max_bound = 6;
  designs.push_back({"toy",
                     [](ir::TransitionSystem& ts) { return BuildToy(ts); },
                     toy_options, nullptr, {}});
  core::RbOptions rb;
  rb.tau = accel::DataflowResponseBound();
  rb.rdin_bound = accel::DataflowRdinBound();
  const auto dataflow_options = core::AqedOptions::Builder()
                                    .WithRb(rb)
                                    .WithFcBound(6)
                                    .WithRbBound(16)
                                    .Build();
  designs.push_back({"dataflow",
                     [](ir::TransitionSystem& ts) {
                       return accel::BuildDataflow(ts, {}).acc;
                     },
                     dataflow_options, nullptr, {}});
  return designs;
}

FaultCampaignOptions JournalCampaign(uint32_t jobs, const std::string& path,
                                     bool resume) {
  FaultCampaignOptions options;
  options.seed = 0xD0A8EDull;
  options.num_mutants = 10;
  options.session.jobs = jobs;
  options.session.retry.max_retries = 2;
  options.journal_path = path;
  options.resume = resume;
  return options;
}

TEST(DurableCampaignTest, JournaledRunMatchesPlainAndNoOpResumeSkipsAll) {
  const auto designs = JournalDesigns();
  FaultCampaignOptions plain = JournalCampaign(1, "", false);
  const auto baseline = RunFaultCampaign(designs, plain);
  ASSERT_EQ(baseline.mutants.size(), 10u);

  TempPath path("noop");
  const auto journaled =
      RunFaultCampaign(designs, JournalCampaign(1, path.str(), false));
  EXPECT_EQ(journaled.ClassificationDigest(),
            baseline.ClassificationDigest());
  EXPECT_EQ(journaled.resumed, 0u);
  // The finished journal is complete and replayable.
  const auto replay = ReplayJournal(path.str());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(), 10u);
  EXPECT_FALSE(replay.value().torn_tail);

  // Resuming a finished campaign re-verifies nothing and reproduces the
  // digest exactly.
  const auto resumed =
      RunFaultCampaign(designs, JournalCampaign(1, path.str(), true));
  EXPECT_EQ(resumed.resumed, 10u);
  EXPECT_EQ(resumed.stats.num_jobs(), 0u);
  EXPECT_EQ(resumed.ClassificationDigest(), baseline.ClassificationDigest());
}

#if AQED_FAILPOINTS_ENABLED

// The tentpole invariant: kill the campaign mid-run (simulated crash via
// the journal-append failpoint), resume, and get the uninterrupted digest
// bit-for-bit — at --jobs 1 and --jobs 8.
void InterruptAndResume(uint32_t jobs) {
  const auto designs = JournalDesigns();
  const auto baseline =
      RunFaultCampaign(designs, JournalCampaign(jobs, "", false));

  TempPath path("crash");
  failpoint::DisarmAll();
  // Die on the 6th append: some records are durable, some never happened.
  failpoint::Arm("fault.journal.append", {FailpointAction::kThrow,
                                          /*skip=*/5, /*limit=*/1});
  bool crashed = false;
  try {
    RunFaultCampaign(designs, JournalCampaign(jobs, path.str(), false));
  } catch (const FailpointError& error) {
    crashed = true;
    EXPECT_EQ(error.name(), "fault.journal.append");
  }
  failpoint::DisarmAll();
  ASSERT_TRUE(crashed) << "campaign finished before the failpoint fired";

  // The journal holds the five durable records.
  const auto replay = ReplayJournal(path.str());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(), 5u);

  const auto resumed =
      RunFaultCampaign(designs, JournalCampaign(jobs, path.str(), true));
  EXPECT_EQ(resumed.resumed, 5u);
  EXPECT_EQ(resumed.mutants.size(), baseline.mutants.size());
  EXPECT_EQ(resumed.ClassificationDigest(), baseline.ClassificationDigest());
}

TEST(DurableCampaignTest, InterruptedThenResumedDigestMatchesJobs1) {
  InterruptAndResume(1);
}

TEST(DurableCampaignTest, InterruptedThenResumedDigestMatchesJobs8) {
  InterruptAndResume(8);
}

#endif  // AQED_FAILPOINTS_ENABLED

TEST(DurableCampaignTest, ResumeToleratesCorruptRecord) {
  const auto designs = JournalDesigns();
  TempPath path("corrupt");
  const auto first =
      RunFaultCampaign(designs, JournalCampaign(1, path.str(), false));

  // Corrupt one complete record in the finished journal.
  auto contents = support::ReadFileToString(path.str());
  ASSERT_TRUE(contents.ok());
  std::string mangled = contents.value();
  const size_t second_start = mangled.find('\n') + 1;
  const size_t second_end = mangled.find('\n', second_start);
  ASSERT_NE(second_end, std::string::npos);
  mangled[(second_start + second_end) / 2] ^= 1;
  ASSERT_TRUE(support::WriteFileDurable(path.str(), mangled).ok());

  const auto resumed =
      RunFaultCampaign(designs, JournalCampaign(1, path.str(), true));
  EXPECT_EQ(resumed.journal_skipped, 1u);
  EXPECT_EQ(resumed.resumed, 9u);
  EXPECT_EQ(resumed.ClassificationDigest(), first.ClassificationDigest());
}

// --- memory governor ---------------------------------------------------------

TEST(MemoryGovernorTest, PressureLadderNames) {
  EXPECT_STREQ(sched::MemoryPressureName(sched::MemoryPressure::kShed),
               "shed");
  EXPECT_EQ(sched::CurrentMemoryPressure(), sched::MemoryPressure::kNone);
}

// Forcing pressure exercises the solver's shed path without allocating
// gigabytes: a pigeonhole refutation must stay kUnsat while shedding.
TEST(MemoryGovernorTest, SolverShedsUnderPressureAndStaysSound) {
  sat::Solver solver;
  const uint32_t holes = 8;
  std::vector<std::vector<sat::Var>> pigeon(holes + 1);
  for (auto& row : pigeon) {
    for (uint32_t h = 0; h < holes; ++h) row.push_back(solver.NewVar());
  }
  for (const auto& row : pigeon) {
    std::vector<sat::Lit> clause;
    for (const sat::Var var : row) clause.emplace_back(var, false);
    ASSERT_TRUE(solver.AddClause(clause));
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (size_t i = 0; i <= holes; ++i) {
      for (size_t j = i + 1; j <= holes; ++j) {
        ASSERT_TRUE(solver.AddClause({sat::Lit(pigeon[i][h], true),
                                      sat::Lit(pigeon[j][h], true)}));
      }
    }
  }
  EXPECT_GT(solver.MemoryBytes(), 0u);
  sched::internal::g_pressure.store(
      static_cast<uint8_t>(sched::MemoryPressure::kShed),
      std::memory_order_relaxed);
  const sat::SolveResult result = solver.Solve();
  sched::internal::g_pressure.store(0, std::memory_order_relaxed);
  EXPECT_EQ(result, sat::SolveResult::kUnsat);
  EXPECT_GT(solver.stats().shed_rounds, 0u);
}

// Stage 3: a session with an impossibly small budget cancels its jobs with
// UnknownReason::kMemoryBudget instead of letting the OOM killer decide.
TEST(MemoryGovernorTest, TinyBudgetCancelsJobsWithMemoryBudgetReason) {
  core::SessionOptions session_options;
  session_options.jobs = 2;
  session_options.cancel = core::SessionOptions::CancelPolicy::kNone;
  // Any real process is over 1 MiB resident, so the governor sits at the
  // cancel stage from its first poll.
  session_options.memory_budget_mb = 1;
  sched::VerificationSession session(session_options);

  core::RbOptions rb;
  rb.tau = accel::DataflowResponseBound();
  rb.rdin_bound = accel::DataflowRdinBound();
  const auto options = core::AqedOptions::Builder()
                           .WithRb(rb)
                           .WithFcBound(10)
                           .WithRbBound(24)
                           .Build();
  session.Enqueue(
      [](ir::TransitionSystem& ts) { return accel::BuildDataflow(ts, {}).acc; },
      options, "dataflow");
  const core::SessionResult result = session.Wait();
  // Pressure resets when Wait() returns (the governor stops).
  EXPECT_EQ(sched::CurrentMemoryPressure(), sched::MemoryPressure::kNone);
  size_t shed = 0;
  for (const core::JobResult& job : result.jobs) {
    if (job.unknown_reason == UnknownReason::kMemoryBudget) ++shed;
  }
  EXPECT_GT(shed, 0u) << "no job observed the memory-budget cancellation";
  // The budget bounded the damage: the process stayed within an order of
  // magnitude of its pre-run footprint (a loose sanity bound — the real
  // assertion is the governed cancellation above).
  EXPECT_GT(telemetry::SampleResourceUsage().peak_rss_kb, 0);
}

}  // namespace
}  // namespace aqed::fault
