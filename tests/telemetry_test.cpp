// Telemetry subsystem tests: the runtime kill switch, span recording into
// per-thread buffers (no events lost across threads or flush boundaries),
// Chrome trace-event export validity (parseable JSON, per-tid ordering,
// thread metadata), metrics instruments and registry snapshots, and the
// JSONL round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace aqed::telemetry {
namespace {

// Flips telemetry on for one test, with a clean global tracer on both
// sides: the global is shared process state and tests must not see each
// other's spans.
struct ScopedTelemetry {
  ScopedTelemetry() {
    Tracer::Global().Clear();
    SetEnabled(true);
  }
  ~ScopedTelemetry() {
    SetEnabled(false);
    Tracer::Global().Clear();
  }
};

// --- kill switch -------------------------------------------------------------

TEST(KillSwitchTest, DisabledTelemetryRecordsNothing) {
  Tracer::Global().Clear();
  ASSERT_FALSE(Enabled());  // off is the process default
  {
    TELEMETRY_SPAN("dead.span", {{"k", 1}});
    Span explicit_span("dead.explicit");
    explicit_span.AddArg("k", 2);
    explicit_span.End();
  }
  AddCounter("dead.counter", 5);
  ObserveLatencyMs("dead.latency", 1.0);
  EXPECT_EQ(Tracer::Global().num_recorded(), 0u);
  EXPECT_TRUE(Tracer::Global().Drain().empty());
  for (const auto& c : MetricsRegistry::Global().Snapshot().counters) {
    EXPECT_NE(c.name, "dead.counter");
  }
}

TEST(KillSwitchTest, SpanConstructedWhileDisabledStaysInert) {
  Tracer::Global().Clear();
  Span span("late.enable");
  SetEnabled(true);
  span.End();  // half-observed spans are worse than none
  SetEnabled(false);
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

// --- spans -------------------------------------------------------------------

TEST(SpanTest, RecordsOneCompleteEventWithArgs) {
  ScopedTelemetry telemetry;
  {
    Span span("unit.work", {{"depth", 7}});
    span.AddArg("result", 1);
  }
  const auto events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(events[0].tid, ThreadId());
  ASSERT_EQ(events[0].num_args, 2u);
  EXPECT_STREQ(events[0].args[0].key, "depth");
  EXPECT_EQ(events[0].args[0].value, 7);
  EXPECT_STREQ(events[0].args[1].key, "result");
  EXPECT_EQ(events[0].args[1].value, 1);
}

TEST(SpanTest, EndIsIdempotent) {
  ScopedTelemetry telemetry;
  Span span("unit.once");
  span.End();
  span.End();  // destructor will be the third call
  EXPECT_EQ(Tracer::Global().Drain().size(), 1u);
}

TEST(SpanTest, NestedSpansStayInsideTheirParent) {
  ScopedTelemetry telemetry;
  {
    TELEMETRY_SPAN("outer");
    TELEMETRY_SPAN("inner", {{"i", 0}});
  }
  auto events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  // Inner ends (and records) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.begin_us, outer.begin_us);
  EXPECT_LE(inner.begin_us + inner.dur_us, outer.begin_us + outer.dur_us);
}

TEST(SpanTest, ConcurrentSpansFromEightThreadsLoseNoEvents) {
  ScopedTelemetry telemetry;
  constexpr int kThreads = 8;
  // Enough per thread to push every buffer through the flush threshold at
  // least once, so the central-drain path is exercised, not just the
  // per-thread tail sweep.
  constexpr int kSpansPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("mt.span", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const auto events = Tracer::Global().Drain();
  std::map<uint32_t, int> per_tid;
  for (const TraceEvent& e : events) {
    ASSERT_EQ(e.name, "mt.span");
    ++per_tid[e.tid];
  }
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  ASSERT_EQ(per_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, n] : per_tid) EXPECT_EQ(n, kSpansPerThread);
  // Drain moved everything out.
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

// --- Chrome trace export -----------------------------------------------------

TEST(ChromeTraceTest, ExportIsValidJsonWithOrderedPerThreadSpans) {
  ScopedTelemetry telemetry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 20; ++i) {
        Span span("trace.work", {{"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto events = Tracer::Global().Drain();

  std::ostringstream out;
  WriteChromeTrace(out, events);
  const auto root = ParseJson(out.str());
  ASSERT_TRUE(root.has_value()) << out.str().substr(0, 200);
  const Json* trace_events = root->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());

  std::map<int64_t, int64_t> last_ts;   // per tid, for monotonicity
  std::map<int64_t, int> spans_per_tid;
  std::map<int64_t, int> names_per_tid;
  for (const Json& event : trace_events->AsArray()) {
    const Json* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    const Json* tid = event.Find("tid");
    ASSERT_NE(tid, nullptr);
    if (ph->AsString() == "M") {
      ASSERT_NE(event.Find("name"), nullptr);
      EXPECT_EQ(event.Find("name")->AsString(), "thread_name");
      ++names_per_tid[tid->AsInt()];
      continue;
    }
    // Complete events carry matched begin/end by construction: one "X"
    // record per span, with ts (begin) and dur both present and sane.
    EXPECT_EQ(ph->AsString(), "X");
    const Json* ts = event.Find("ts");
    const Json* dur = event.Find("dur");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    EXPECT_GE(ts->AsInt(), 0);
    EXPECT_GE(dur->AsInt(), 0);
    const Json* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->Find("i"), nullptr);
    // File order within a tid is begin-sorted (stable viewer rows).
    auto [it, inserted] = last_ts.try_emplace(tid->AsInt(), ts->AsInt());
    if (!inserted) {
      EXPECT_LE(it->second, ts->AsInt());
      it->second = ts->AsInt();
    }
    ++spans_per_tid[tid->AsInt()];
  }
  ASSERT_EQ(spans_per_tid.size(), 4u);
  for (const auto& [tid, n] : spans_per_tid) {
    EXPECT_EQ(n, 20);
    // Every tid with spans got exactly one thread_name metadata record.
    EXPECT_EQ(names_per_tid[tid], 1);
  }
}

TEST(ChromeTraceTest, EscapesSpanNames) {
  ScopedTelemetry telemetry;
  Tracer::Global().RecordComplete("quote\"back\\slash\nnewline", 1, 2);
  std::ostringstream out;
  WriteChromeTrace(out, Tracer::Global().Drain());
  const auto root = ParseJson(out.str());
  ASSERT_TRUE(root.has_value());
  const auto& events = root->Find("traceEvents")->AsArray();
  // One span + one thread_name record.
  ASSERT_EQ(events.size(), 2u);
  bool found = false;
  for (const Json& event : events) {
    if (event.Find("ph")->AsString() != "X") continue;
    EXPECT_EQ(event.Find("name")->AsString(), "quote\"back\\slash\nnewline");
    found = true;
  }
  EXPECT_TRUE(found);
}

// --- metrics instruments -----------------------------------------------------

TEST(MetricsTest, HistogramBucketsAndSum) {
  const double bounds[] = {1.0, 10.0};
  Histogram h{std::span<const double>(bounds)};
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  EXPECT_EQ(h.counts(), (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
}

TEST(MetricsTest, GaugeSetMaxIsAHighWaterMark) {
  Gauge g;
  g.SetMax(7);
  g.SetMax(3);
  EXPECT_EQ(g.value(), 7);
  g.SetMax(11);
  EXPECT_EQ(g.value(), 11);
}

TEST(MetricsTest, RegistryReturnsStableInstrumentsAndSortedSnapshots) {
  MetricsRegistry registry;
  Counter& b = registry.counter("b.counter");
  Counter& a = registry.counter("a.counter");
  EXPECT_EQ(&b, &registry.counter("b.counter"));  // find-or-create
  a.Add(1);
  b.Add(2);
  registry.gauge("g").Set(-3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.counter");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "b.counter");
  EXPECT_EQ(snapshot.counters[1].value, 2u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, -3);
}

// --- metrics JSONL round trip ------------------------------------------------

TEST(MetricsJsonlTest, SnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.counter("sat.conflicts").Add(12345);
  registry.gauge("sched.pool.active").Set(-1);
  Histogram& h = registry.histogram("sched.job_ms");
  h.Observe(0.05);
  h.Observe(2.5);
  h.Observe(1e6);  // +inf bucket
  const MetricsSnapshot snapshot = registry.Snapshot();

  std::ostringstream out;
  WriteMetricsJsonl(out, snapshot);
  const auto loaded = ReadMetricsJsonl(out.str());
  ASSERT_TRUE(loaded.has_value()) << out.str();

  EXPECT_EQ(loaded->timestamp_us, snapshot.timestamp_us);
  ASSERT_EQ(loaded->counters.size(), 1u);
  EXPECT_EQ(loaded->counters[0].name, "sat.conflicts");
  EXPECT_EQ(loaded->counters[0].value, 12345u);
  ASSERT_EQ(loaded->gauges.size(), 1u);
  EXPECT_EQ(loaded->gauges[0].value, -1);
  ASSERT_EQ(loaded->histograms.size(), 1u);
  const auto& hist = loaded->histograms[0];
  EXPECT_EQ(hist.name, "sched.job_ms");
  EXPECT_EQ(hist.bounds, snapshot.histograms[0].bounds);
  EXPECT_EQ(hist.counts, snapshot.histograms[0].counts);
  EXPECT_EQ(hist.count, 3u);
  EXPECT_DOUBLE_EQ(hist.sum, snapshot.histograms[0].sum);
}

TEST(MetricsJsonlTest, RejectsMissingHeaderAndMalformedLines) {
  EXPECT_FALSE(ReadMetricsJsonl("{\"type\":\"counter\",\"name\":\"c\","
                                "\"value\":1}\n")
                   .has_value());
  EXPECT_FALSE(ReadMetricsJsonl("{\"type\":\"snapshot\","
                                "\"timestamp_us\":1}\nnot json\n")
                   .has_value());
}

// --- JSON parser -------------------------------------------------------------

TEST(JsonTest, ParsesNestedValues) {
  const auto json =
      ParseJson(R"( {"a":[1,-2.5,true,null,"s\t\"q\""],"b":{"c":3}} )");
  ASSERT_TRUE(json.has_value());
  const auto& a = json->Find("a")->AsArray();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a[1].AsNumber(), -2.5);
  EXPECT_TRUE(a[2].AsBool());
  EXPECT_TRUE(a[3].is_null());
  EXPECT_EQ(a[4].AsString(), "s\t\"q\"");
  EXPECT_EQ(json->Find("b")->Find("c")->AsInt(), 3);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").has_value());
  EXPECT_FALSE(ParseJson("[1,]").has_value());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(ParseJson("'single'").has_value());
}

}  // namespace
}  // namespace aqed::telemetry
