// Telemetry subsystem tests: the runtime kill switch, span recording into
// per-thread buffers (no events lost across threads or flush boundaries),
// Chrome trace-event export validity (parseable JSON, per-tid ordering,
// thread metadata), metrics instruments and registry snapshots, the JSONL
// round trip (snapshot + flight-recorder time series), the resource probes,
// the sampler ring, and the HTML report renderer.
//
// Span-producing tests are gated on AQED_TELEMETRY_ENABLED: with
// -DAQED_TELEMETRY=OFF the Span class is an inert stub, and the OFF build
// instead asserts that stubbed instrumentation records nothing even with
// the runtime switch forced on.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/resource.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace aqed::telemetry {
namespace {

// Flips telemetry on for one test, with a clean global tracer on both
// sides: the global is shared process state and tests must not see each
// other's spans.
struct ScopedTelemetry {
  ScopedTelemetry() {
    Tracer::Global().Clear();
    SetEnabled(true);
  }
  ~ScopedTelemetry() {
    SetEnabled(false);
    Tracer::Global().Clear();
  }
};

// --- kill switch -------------------------------------------------------------

TEST(KillSwitchTest, DisabledTelemetryRecordsNothing) {
  Tracer::Global().Clear();
  ASSERT_FALSE(Enabled());  // off is the process default
  {
    TELEMETRY_SPAN("dead.span", {{"k", 1}});
    Span explicit_span("dead.explicit");
    explicit_span.AddArg("k", 2);
    explicit_span.End();
  }
  AddCounter("dead.counter", 5);
  ObserveLatencyMs("dead.latency", 1.0);
  EXPECT_EQ(Tracer::Global().num_recorded(), 0u);
  EXPECT_TRUE(Tracer::Global().Drain().empty());
  for (const auto& c : MetricsRegistry::Global().Snapshot().counters) {
    EXPECT_NE(c.name, "dead.counter");
  }
}

TEST(KillSwitchTest, SpanConstructedWhileDisabledStaysInert) {
  Tracer::Global().Clear();
  Span span("late.enable");
  SetEnabled(true);
  span.End();  // half-observed spans are worse than none
  SetEnabled(false);
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

// --- spans -------------------------------------------------------------------

#if AQED_TELEMETRY_ENABLED

TEST(SpanTest, RecordsOneCompleteEventWithArgs) {
  ScopedTelemetry telemetry;
  {
    Span span("unit.work", {{"depth", 7}});
    span.AddArg("result", 1);
  }
  const auto events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(events[0].tid, ThreadId());
  ASSERT_EQ(events[0].num_args, 2u);
  EXPECT_STREQ(events[0].args[0].key, "depth");
  EXPECT_EQ(events[0].args[0].value, 7);
  EXPECT_STREQ(events[0].args[1].key, "result");
  EXPECT_EQ(events[0].args[1].value, 1);
}

TEST(SpanTest, EndIsIdempotent) {
  ScopedTelemetry telemetry;
  Span span("unit.once");
  span.End();
  span.End();  // destructor will be the third call
  EXPECT_EQ(Tracer::Global().Drain().size(), 1u);
}

TEST(SpanTest, NestedSpansStayInsideTheirParent) {
  ScopedTelemetry telemetry;
  {
    TELEMETRY_SPAN("outer");
    TELEMETRY_SPAN("inner", {{"i", 0}});
  }
  auto events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  // Inner ends (and records) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.begin_us, outer.begin_us);
  EXPECT_LE(inner.begin_us + inner.dur_us, outer.begin_us + outer.dur_us);
}

TEST(SpanTest, ConcurrentSpansFromEightThreadsLoseNoEvents) {
  ScopedTelemetry telemetry;
  constexpr int kThreads = 8;
  // Enough per thread to push every buffer through the flush threshold at
  // least once, so the central-drain path is exercised, not just the
  // per-thread tail sweep.
  constexpr int kSpansPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("mt.span", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const auto events = Tracer::Global().Drain();
  std::map<uint32_t, int> per_tid;
  for (const TraceEvent& e : events) {
    ASSERT_EQ(e.name, "mt.span");
    ++per_tid[e.tid];
  }
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  ASSERT_EQ(per_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, n] : per_tid) EXPECT_EQ(n, kSpansPerThread);
  // Drain moved everything out.
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

#else  // !AQED_TELEMETRY_ENABLED

TEST(SpanTest, CompiledOutSpansRecordNothingEvenWhenRuntimeEnabled) {
  ScopedTelemetry telemetry;
  {
    TELEMETRY_SPAN("stub.span", {{"k", 1}});
    Span span("stub.explicit");
    span.AddArg("k", 2);
    span.End();
  }
  EXPECT_EQ(Tracer::Global().num_recorded(), 0u);
  // The metric free helpers are empty inlines in this configuration.
  AddCounter("stub.counter", 5);
  SetGauge("stub.gauge", 7);
  for (const auto& c : MetricsRegistry::Global().Snapshot().counters) {
    EXPECT_NE(c.name, "stub.counter");
  }
  for (const auto& g : MetricsRegistry::Global().Snapshot().gauges) {
    EXPECT_NE(g.name, "stub.gauge");
  }
}

#endif  // AQED_TELEMETRY_ENABLED

// --- Chrome trace export -----------------------------------------------------

#if AQED_TELEMETRY_ENABLED
TEST(ChromeTraceTest, ExportIsValidJsonWithOrderedPerThreadSpans) {
  ScopedTelemetry telemetry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 20; ++i) {
        Span span("trace.work", {{"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto events = Tracer::Global().Drain();

  std::ostringstream out;
  WriteChromeTrace(out, events);
  const auto root = ParseJson(out.str());
  ASSERT_TRUE(root.has_value()) << out.str().substr(0, 200);
  const Json* trace_events = root->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());

  std::map<int64_t, int64_t> last_ts;   // per tid, for monotonicity
  std::map<int64_t, int> spans_per_tid;
  std::map<int64_t, int> names_per_tid;
  for (const Json& event : trace_events->AsArray()) {
    const Json* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    const Json* tid = event.Find("tid");
    ASSERT_NE(tid, nullptr);
    if (ph->AsString() == "M") {
      ASSERT_NE(event.Find("name"), nullptr);
      EXPECT_EQ(event.Find("name")->AsString(), "thread_name");
      ++names_per_tid[tid->AsInt()];
      continue;
    }
    // Complete events carry matched begin/end by construction: one "X"
    // record per span, with ts (begin) and dur both present and sane.
    EXPECT_EQ(ph->AsString(), "X");
    const Json* ts = event.Find("ts");
    const Json* dur = event.Find("dur");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    EXPECT_GE(ts->AsInt(), 0);
    EXPECT_GE(dur->AsInt(), 0);
    const Json* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->Find("i"), nullptr);
    // File order within a tid is begin-sorted (stable viewer rows).
    auto [it, inserted] = last_ts.try_emplace(tid->AsInt(), ts->AsInt());
    if (!inserted) {
      EXPECT_LE(it->second, ts->AsInt());
      it->second = ts->AsInt();
    }
    ++spans_per_tid[tid->AsInt()];
  }
  ASSERT_EQ(spans_per_tid.size(), 4u);
  for (const auto& [tid, n] : spans_per_tid) {
    EXPECT_EQ(n, 20);
    // Every tid with spans got exactly one thread_name metadata record.
    EXPECT_EQ(names_per_tid[tid], 1);
  }
}
#endif  // AQED_TELEMETRY_ENABLED

TEST(ChromeTraceTest, EscapesSpanNames) {
  ScopedTelemetry telemetry;
  Tracer::Global().RecordComplete("quote\"back\\slash\nnewline", 1, 2);
  std::ostringstream out;
  WriteChromeTrace(out, Tracer::Global().Drain());
  const auto root = ParseJson(out.str());
  ASSERT_TRUE(root.has_value());
  const auto& events = root->Find("traceEvents")->AsArray();
  // One span + one thread_name record.
  ASSERT_EQ(events.size(), 2u);
  bool found = false;
  for (const Json& event : events) {
    if (event.Find("ph")->AsString() != "X") continue;
    EXPECT_EQ(event.Find("name")->AsString(), "quote\"back\\slash\nnewline");
    found = true;
  }
  EXPECT_TRUE(found);
}

// --- metrics instruments -----------------------------------------------------

TEST(MetricsTest, HistogramBucketsAndSum) {
  const double bounds[] = {1.0, 10.0};
  Histogram h{std::span<const double>(bounds)};
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  EXPECT_EQ(h.counts(), (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
}

TEST(MetricsTest, GaugeSetMaxIsAHighWaterMark) {
  Gauge g;
  g.SetMax(7);
  g.SetMax(3);
  EXPECT_EQ(g.value(), 7);
  g.SetMax(11);
  EXPECT_EQ(g.value(), 11);
}

TEST(MetricsTest, RegistryReturnsStableInstrumentsAndSortedSnapshots) {
  MetricsRegistry registry;
  Counter& b = registry.counter("b.counter");
  Counter& a = registry.counter("a.counter");
  EXPECT_EQ(&b, &registry.counter("b.counter"));  // find-or-create
  a.Add(1);
  b.Add(2);
  registry.gauge("g").Set(-3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.counter");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "b.counter");
  EXPECT_EQ(snapshot.counters[1].value, 2u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, -3);
}

// --- metrics JSONL round trip ------------------------------------------------

TEST(MetricsJsonlTest, SnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.counter("sat.conflicts").Add(12345);
  registry.gauge("sched.pool.active").Set(-1);
  Histogram& h = registry.histogram("sched.job_ms");
  h.Observe(0.05);
  h.Observe(2.5);
  h.Observe(1e6);  // +inf bucket
  const MetricsSnapshot snapshot = registry.Snapshot();

  std::ostringstream out;
  WriteMetricsJsonl(out, snapshot);
  const auto loaded = ReadMetricsJsonl(out.str());
  ASSERT_TRUE(loaded.has_value()) << out.str();

  EXPECT_EQ(loaded->timestamp_us, snapshot.timestamp_us);
  ASSERT_EQ(loaded->counters.size(), 1u);
  EXPECT_EQ(loaded->counters[0].name, "sat.conflicts");
  EXPECT_EQ(loaded->counters[0].value, 12345u);
  ASSERT_EQ(loaded->gauges.size(), 1u);
  EXPECT_EQ(loaded->gauges[0].value, -1);
  ASSERT_EQ(loaded->histograms.size(), 1u);
  const auto& hist = loaded->histograms[0];
  EXPECT_EQ(hist.name, "sched.job_ms");
  EXPECT_EQ(hist.bounds, snapshot.histograms[0].bounds);
  EXPECT_EQ(hist.counts, snapshot.histograms[0].counts);
  EXPECT_EQ(hist.count, 3u);
  EXPECT_DOUBLE_EQ(hist.sum, snapshot.histograms[0].sum);
}

TEST(MetricsJsonlTest, CounterValuesAbove2To53RoundTripExactly) {
  constexpr uint64_t kBig = (UINT64_C(1) << 53) + 1;  // not double-exact
  MetricsRegistry registry;
  registry.counter("big.counter").Add(kBig);
  std::ostringstream out;
  std::vector<TimeSeriesSample> samples(1);
  samples[0].timestamp_us = 1;
  samples[0].counters = {{"big.counter", kBig}};
  WriteMetricsJsonl(out, registry.Snapshot(), samples);
  const auto log = ReadMetricsLog(out.str());
  ASSERT_TRUE(log.has_value()) << out.str();
  ASSERT_EQ(log->snapshot.counters.size(), 1u);
  EXPECT_EQ(log->snapshot.counters[0].value, kBig);
  ASSERT_EQ(log->samples.size(), 1u);
  ASSERT_EQ(log->samples[0].counters.size(), 1u);
  EXPECT_EQ(log->samples[0].counters[0].value, kBig);
}

TEST(MetricsJsonlTest, RejectsMissingHeaderAndMalformedLines) {
  EXPECT_FALSE(ReadMetricsJsonl("{\"type\":\"counter\",\"name\":\"c\","
                                "\"value\":1}\n")
                   .has_value());
  EXPECT_FALSE(ReadMetricsJsonl("{\"type\":\"snapshot\","
                                "\"timestamp_us\":1}\nnot json\n")
                   .has_value());
}

// --- JSON parser -------------------------------------------------------------

TEST(JsonTest, ParsesNestedValues) {
  const auto json =
      ParseJson(R"( {"a":[1,-2.5,true,null,"s\t\"q\""],"b":{"c":3}} )");
  ASSERT_TRUE(json.has_value());
  const auto& a = json->Find("a")->AsArray();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a[1].AsNumber(), -2.5);
  EXPECT_TRUE(a[2].AsBool());
  EXPECT_TRUE(a[3].is_null());
  EXPECT_EQ(a[4].AsString(), "s\t\"q\"");
  EXPECT_EQ(json->Find("b")->Find("c")->AsInt(), 3);
}

TEST(JsonTest, IntegerLiteralsKeepInt64Precision) {
  // 2^53 + 1 is the first integer a double cannot represent.
  auto json = ParseJson("9007199254740993");
  ASSERT_TRUE(json.has_value());
  EXPECT_TRUE(json->is_integer());
  EXPECT_EQ(json->AsInt(), INT64_C(9007199254740993));
  json = ParseJson("-9007199254740993");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->AsInt(), INT64_C(-9007199254740993));
  json = ParseJson("1234567890123456789");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->AsInt(), INT64_C(1234567890123456789));
  // Fractions and exponents stay on the double path.
  json = ParseJson("2.5");
  ASSERT_TRUE(json.has_value());
  EXPECT_FALSE(json->is_integer());
  EXPECT_DOUBLE_EQ(json->AsNumber(), 2.5);
  json = ParseJson("1e3");
  ASSERT_TRUE(json.has_value());
  EXPECT_FALSE(json->is_integer());
  EXPECT_DOUBLE_EQ(json->AsNumber(), 1000.0);
  // Integer literals beyond int64 fall back to double, not a parse error.
  json = ParseJson("99999999999999999999999999");
  ASSERT_TRUE(json.has_value());
  EXPECT_FALSE(json->is_integer());
  EXPECT_GT(json->AsNumber(), 9e24);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").has_value());
  EXPECT_FALSE(ParseJson("[1,]").has_value());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(ParseJson("'single'").has_value());
}

TEST(JsonTest, DecodesUnicodeEscapesToUtf8) {
  // One, two, and three UTF-8 bytes from the BMP.
  auto json = ParseJson(R"("A=\u0041 \u00e9 \u20ac")");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->AsString(), "A=A \xC3\xA9 \xE2\x82\xAC");
  // A surrogate pair: U+1F600, four UTF-8 bytes.
  json = ParseJson(R"("\ud83d\ude00")");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->AsString(), "\xF0\x9F\x98\x80");
  // Escaped NUL embeds a real NUL (std::string carries it fine).
  json = ParseJson(R"("a\u0000b")");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->AsString(), std::string("a\0b", 3));
  // Case-insensitive hex digits.
  json = ParseJson(R"("\u20AC")");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->AsString(), "\xE2\x82\xAC");
}

TEST(JsonTest, RejectsLoneAndMalformedSurrogates) {
  EXPECT_FALSE(ParseJson(R"("\ud800")").has_value());        // lone high
  EXPECT_FALSE(ParseJson(R"("\ude00")").has_value());        // lone low
  EXPECT_FALSE(ParseJson(R"("\ud83d junk")").has_value());   // high, no pair
  EXPECT_FALSE(ParseJson(R"("\ud83dA")").has_value());  // high + non-low
  EXPECT_FALSE(ParseJson(R"("\u12g4")").has_value());        // bad hex digit
  EXPECT_FALSE(ParseJson(R"("\u12")").has_value());          // truncated
}

// --- resource probes ---------------------------------------------------------

TEST(ResourceTest, ProbesReportPlausibleValues) {
  const ResourceUsage usage = SampleResourceUsage();
  EXPECT_GE(usage.cpu_seconds(), 0.0);
#if defined(__linux__)
  EXPECT_GT(usage.rss_kb, 0);
  EXPECT_GE(usage.peak_rss_kb, usage.rss_kb);
  EXPECT_GE(usage.num_threads, 1);
#endif
}

// --- sampler -----------------------------------------------------------------

#if AQED_TELEMETRY_ENABLED

TEST(SamplerTest, BracketsTheRunAndSnapshotsTheRegistry) {
  MetricsRegistry registry;
  registry.counter("s.counter").Add(7);
  registry.gauge("s.gauge").Set(3);
  SamplerOptions options;
  options.period_ms = 1;
  options.registry = &registry;
  Sampler sampler(options);
  EXPECT_FALSE(sampler.running());
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());

  const auto samples = sampler.TakeSamples();
  // At least the immediate start sample and the final stop sample.
  ASSERT_GE(samples.size(), 2u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].timestamp_us, samples[i - 1].timestamp_us);
  }
  ASSERT_EQ(samples.front().counters.size(), 1u);
  EXPECT_EQ(samples.front().counters[0].name, "s.counter");
  EXPECT_EQ(samples.front().counters[0].value, 7u);
  ASSERT_EQ(samples.front().gauges.size(), 1u);
  EXPECT_EQ(samples.front().gauges[0].value, 3);
  EXPECT_EQ(sampler.num_dropped(), 0u);
  // TakeSamples moves the ring out.
  EXPECT_TRUE(sampler.TakeSamples().empty());
}

TEST(SamplerTest, RingDropsOldestPastCapacity) {
  MetricsRegistry registry;
  SamplerOptions options;
  options.period_ms = 1;
  options.capacity = 3;
  options.registry = &registry;
  Sampler sampler(options);
  sampler.Start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.num_dropped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.Stop();
  EXPECT_GT(sampler.num_dropped(), 0u);
  const auto samples = sampler.TakeSamples();
  ASSERT_LE(samples.size(), 3u);
  ASSERT_GE(samples.size(), 1u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].timestamp_us, samples[i - 1].timestamp_us);
  }
}

TEST(SamplerTest, ConcurrentStopCallsAreSafe) {
  MetricsRegistry registry;
  SamplerOptions options;
  options.period_ms = 1;
  options.registry = &registry;
  // Racing Stop()s must not double-join (or join a moved-from thread, which
  // throws std::system_error); exactly one caller records the final sample.
  for (int round = 0; round < 20; ++round) {
    Sampler sampler(options);
    sampler.Start();
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&sampler] { sampler.Stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    EXPECT_FALSE(sampler.running());
    EXPECT_GE(sampler.TakeSamples().size(), 2u);  // start + final sample
  }
}

#else  // !AQED_TELEMETRY_ENABLED

TEST(SamplerTest, CompiledOutStubIsInert) {
  Sampler sampler;
  sampler.Start();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();
  EXPECT_TRUE(sampler.TakeSamples().empty());
  EXPECT_EQ(sampler.num_dropped(), 0u);
}

#endif  // AQED_TELEMETRY_ENABLED

// --- time-series JSONL round trip --------------------------------------------

TEST(MetricsJsonlTest, TimeSeriesSamplesRoundTrip) {
  MetricsRegistry registry;
  registry.counter("sat.conflicts").Add(1);
  const MetricsSnapshot snapshot = registry.Snapshot();

  std::vector<TimeSeriesSample> samples(2);
  samples[0].timestamp_us = 100;
  samples[0].resources = {.rss_kb = 11,
                          .peak_rss_kb = 22,
                          .user_cpu_us = 33,
                          .sys_cpu_us = 44,
                          .num_threads = 5};
  samples[0].counters = {{"sat.conflicts", 9}};
  samples[0].gauges = {{"bmc.current_depth", 4}};
  samples[1].timestamp_us = 200;

  std::ostringstream out;
  WriteMetricsJsonl(out, snapshot, samples);
  const auto log = ReadMetricsLog(out.str());
  ASSERT_TRUE(log.has_value()) << out.str();
  ASSERT_EQ(log->samples.size(), 2u);
  const TimeSeriesSample& s0 = log->samples[0];
  EXPECT_EQ(s0.timestamp_us, 100u);
  EXPECT_EQ(s0.resources.rss_kb, 11);
  EXPECT_EQ(s0.resources.peak_rss_kb, 22);
  EXPECT_EQ(s0.resources.user_cpu_us, 33);
  EXPECT_EQ(s0.resources.sys_cpu_us, 44);
  EXPECT_EQ(s0.resources.num_threads, 5);
  ASSERT_EQ(s0.counters.size(), 1u);
  EXPECT_EQ(s0.counters[0].name, "sat.conflicts");
  EXPECT_EQ(s0.counters[0].value, 9u);
  ASSERT_EQ(s0.gauges.size(), 1u);
  EXPECT_EQ(s0.gauges[0].name, "bmc.current_depth");
  EXPECT_EQ(s0.gauges[0].value, 4);
  EXPECT_TRUE(log->samples[1].counters.empty());
  // The snapshot-only wrapper still loads files that carry samples.
  EXPECT_TRUE(ReadMetricsJsonl(out.str()).has_value());
}

// --- report ------------------------------------------------------------------

// A trace with one job span (entry/attempt at start, bug/frames at end) and
// one plain nested span, exported and re-parsed.
std::vector<ReportSpan> ReparsedSpans() {
  std::vector<TraceEvent> events(2);
  events[0].name = "sched.job:fifo/RB";
  events[0].begin_us = 1000;
  events[0].dur_us = 5000;
  events[0].tid = 1;
  events[0].args = {{{"entry", 0}, {"attempt", 0}, {"bug", 1}, {"frames", 4}}};
  events[0].num_args = 4;
  events[1].name = "bmc.solve_depth";
  events[1].begin_us = 1500;
  events[1].dur_us = 2000;
  events[1].tid = 2;
  std::ostringstream out;
  WriteChromeTrace(out, events);
  auto spans = ParseChromeTrace(out.str());
  EXPECT_TRUE(spans.has_value());
  return spans.value_or(std::vector<ReportSpan>{});
}

TEST(ReportTest, ChromeTraceRoundTripsThroughParseChromeTrace) {
  const std::vector<ReportSpan> spans = ReparsedSpans();
  ASSERT_EQ(spans.size(), 2u);  // thread_name metadata skipped
  const auto job = std::find_if(
      spans.begin(), spans.end(),
      [](const ReportSpan& s) { return s.name == "sched.job:fifo/RB"; });
  ASSERT_NE(job, spans.end());
  EXPECT_EQ(job->begin_us, 1000u);
  EXPECT_EQ(job->dur_us, 5000u);
  EXPECT_EQ(job->tid, 1u);
  EXPECT_EQ(job->args.at("bug"), 1);
  EXPECT_EQ(job->args.at("frames"), 4);
}

TEST(ReportTest, RejectsNonTraceInput) {
  EXPECT_FALSE(ParseChromeTrace("not json").has_value());
  EXPECT_FALSE(ParseChromeTrace("{\"noTraceEvents\":1}").has_value());
  EXPECT_FALSE(ParseChromeTrace("[1,2]").has_value());
}

TEST(ReportTest, RendersSelfContainedHtmlWithAllSections) {
  ReportData data;
  data.title = "unit <title> & co";
  data.spans = ReparsedSpans();
  data.metrics.snapshot.counters.push_back({"sat.conflicts", 42});
  data.metrics.snapshot.gauges.push_back({"bmc.depth_reached", 6});
  data.metrics.snapshot.histograms.push_back(
      {"sched.job_ms", {1.0, 10.0}, {2, 1, 0}, 3, 7.5});
  TimeSeriesSample sample;
  sample.timestamp_us = 2000;
  sample.resources.rss_kb = 1024;
  sample.gauges = {{"bmc.current_depth", 3}};
  data.metrics.samples = {sample, sample};

  const std::string html = RenderHtmlReport(data);
  // Self-contained: no scripts, no external references.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  // The title is HTML-escaped, not injected.
  EXPECT_NE(html.find("unit &lt;title&gt; &amp; co"), std::string::npos);
  EXPECT_EQ(html.find("<title> & co"), std::string::npos);
  // Verdict table: the job span's label and its BUG verdict.
  EXPECT_NE(html.find("fifo/RB"), std::string::npos);
  EXPECT_NE(html.find("BUG"), std::string::npos);
  // Charts and tables render.
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<polyline"), std::string::npos);
  EXPECT_NE(html.find("sched.job_ms"), std::string::npos);
  EXPECT_NE(html.find("sat.conflicts"), std::string::npos);
  EXPECT_NE(html.find("bmc.solve_depth"), std::string::npos);
}

TEST(ReportTest, RendersPlaceholdersWhenEitherInputIsMissing) {
  // Metrics only (no trace): still a document, with empty-state markers.
  ReportData metrics_only;
  metrics_only.metrics.snapshot.counters.push_back({"sat.solves", 1});
  std::string html = RenderHtmlReport(metrics_only);
  EXPECT_NE(html.find("no sched.job spans"), std::string::npos);
  EXPECT_NE(html.find("sat.solves"), std::string::npos);
  // Trace only (no metrics).
  ReportData trace_only;
  trace_only.spans = ReparsedSpans();
  html = RenderHtmlReport(trace_only);
  EXPECT_NE(html.find("no metrics snapshot"), std::string::npos);
  EXPECT_NE(html.find("fifo/RB"), std::string::npos);
}

}  // namespace
}  // namespace aqed::telemetry
