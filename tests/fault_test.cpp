// Fault-injection engine and resource-governance tests: deterministic
// mutant enumeration/sampling, mutant validity and observability, the
// deadline watchdog, UNKNOWN reason codes through solver/BMC/session, the
// escalating-budget retry policy, and campaign classification determinism
// across worker counts.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "accel/dataflow.h"
#include "accel/memctrl.h"
#include "aqed/checker.h"
#include "aqed/monitor_util.h"
#include "bmc/engine.h"
#include "fault/campaign.h"
#include "fault/mutator.h"
#include "sched/cancellation.h"
#include "sched/session.h"
#include "sched/watchdog.h"
#include "sim/simulator.h"

namespace aqed::fault {
namespace {

using ir::NodeRef;
using ir::Sort;

constexpr uint64_t kSeed = 0xFA17C0DE;

// Same one-deep toy as sched_test: capture when idle, respond next cycle
// with in + 1 (optionally with a depth-0 early-output bug).
core::AcceleratorInterface BuildToy(ir::TransitionSystem& ts,
                                    bool early_output) {
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef held = core::Reg(ts, "held", 8, 0);
  const NodeRef out_pending = core::Reg(ts, "out_pending", 1, 0);

  const NodeRef in_ready = ctx.Not(out_pending);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  NodeRef out_valid = out_pending;
  if (early_output) out_valid = ctx.Or(out_valid, ctx.Not(out_pending));
  const NodeRef drain = ctx.And(out_valid, host_ready);

  core::LatchWhen(ts, held, capture, in_data);
  ts.SetNext(out_pending, ctx.Ite(capture, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  core::AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_valid;
  acc.data_elems = {{in_data}};
  acc.out_elems = {{ctx.Add(held, ctx.Const(8, 1))}};
  return acc;
}

core::AcceleratorBuilder ToyBuilder(bool early_output = false) {
  return [early_output](ir::TransitionSystem& ts) {
    return BuildToy(ts, early_output);
  };
}

core::AcceleratorBuilder MemCtrlBuilder() {
  return [](ir::TransitionSystem& ts) {
    return accel::BuildMemCtrl(ts, accel::MemCtrlConfig::kFifo).acc;
  };
}

// --- mutation engine ---------------------------------------------------------

TEST(MutatorTest, EnumerationIsDeterministicAcrossFreshBuilds) {
  ir::TransitionSystem a, b;
  const auto acc_a = MemCtrlBuilder()(a);
  const auto acc_b = MemCtrlBuilder()(b);
  const auto sites_a = EnumerateMutants(a, acc_a, kSeed);
  const auto sites_b = EnumerateMutants(b, acc_b, kSeed);
  ASSERT_FALSE(sites_a.empty());
  // Byte-identical keys: the hash-consed builders give stable NodeRefs.
  ASSERT_EQ(sites_a.size(), sites_b.size());
  for (size_t i = 0; i < sites_a.size(); ++i) {
    EXPECT_EQ(sites_a[i], sites_b[i]) << i;
    EXPECT_EQ(sites_a[i].seed, kSeed);
  }
}

TEST(MutatorTest, StuckAtSitesAreStates) {
  ir::TransitionSystem ts;
  const auto acc = ToyBuilder()(ts);
  for (const MutantKey& key : EnumerateMutants(ts, acc, kSeed)) {
    if (key.op != MutationOp::kStuckAtZero &&
        key.op != MutationOp::kStuckAtOne) {
      continue;
    }
    const auto& states = ts.states();
    EXPECT_NE(std::find(states.begin(), states.end(), key.node), states.end())
        << key.ToString();
  }
}

TEST(MutatorTest, SamplingIsSeededAndDistinct) {
  ir::TransitionSystem ts;
  const auto acc = MemCtrlBuilder()(ts);
  const auto all = EnumerateMutants(ts, acc, kSeed);
  ASSERT_GT(all.size(), 8u);
  const auto sample = SampleMutants(ts, acc, kSeed, 8);
  ASSERT_EQ(sample.size(), 8u);
  const auto again = SampleMutants(ts, acc, kSeed, 8);
  EXPECT_EQ(sample, again);
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = i + 1; j < sample.size(); ++j) {
      EXPECT_FALSE(sample[i] == sample[j]) << i << "," << j;
    }
    // Every sampled key is an enumerated site.
    EXPECT_NE(std::find(all.begin(), all.end(), sample[i]), all.end());
  }
  // Oversampling returns every site exactly once.
  EXPECT_EQ(
      SampleMutants(ts, acc, kSeed, static_cast<uint32_t>(all.size()) + 100)
          .size(),
      all.size());
}

TEST(MutatorTest, AppliedMutantsValidateAndRemapTheInterface) {
  ir::TransitionSystem src;
  const auto acc = ToyBuilder()(src);
  const auto sites = EnumerateMutants(src, acc, kSeed);
  ASSERT_FALSE(sites.empty());
  for (const MutantKey& key : sites) {
    ir::TransitionSystem dst;
    const auto map = ApplyMutant(src, key, dst);
    EXPECT_TRUE(dst.Validate().ok()) << key.ToString();
    const auto mutant_acc = RemapInterface(acc, map);
    EXPECT_NE(mutant_acc.in_valid, ir::kNullNode);
    EXPECT_NE(mutant_acc.out_valid, ir::kNullNode);
    ASSERT_EQ(mutant_acc.data_elems.size(), acc.data_elems.size());
  }
}

TEST(MutatorTest, SomeMutantChangesObservableBehavior) {
  ir::TransitionSystem src;
  const auto acc = ToyBuilder()(src);
  size_t observable = 0;
  for (const MutantKey& key : EnumerateMutants(src, acc, kSeed)) {
    ir::TransitionSystem dst;
    const auto mutant_acc = RemapInterface(acc, ApplyMutant(src, key, dst));
    sim::Simulator pristine_sim(src);
    sim::Simulator mutant_sim(dst);
    bool differs = false;
    for (int cycle = 0; cycle < 40 && !differs; ++cycle) {
      const uint64_t valid = cycle % 2;
      const uint64_t data = (cycle * 37) & 0xFF;
      const uint64_t ready = cycle % 3 != 0;
      pristine_sim.SetInput(acc.in_valid, valid);
      pristine_sim.SetInput(acc.data_elems[0][0], data);
      pristine_sim.SetInput(acc.host_ready, ready);
      mutant_sim.SetInput(mutant_acc.in_valid, valid);
      mutant_sim.SetInput(mutant_acc.data_elems[0][0], data);
      mutant_sim.SetInput(mutant_acc.host_ready, ready);
      pristine_sim.Eval();
      mutant_sim.Eval();
      differs =
          pristine_sim.Value(acc.out_valid) !=
              mutant_sim.Value(mutant_acc.out_valid) ||
          pristine_sim.Value(acc.out_elems[0][0]) !=
              mutant_sim.Value(mutant_acc.out_elems[0][0]) ||
          pristine_sim.Value(acc.in_ready) !=
              mutant_sim.Value(mutant_acc.in_ready);
      pristine_sim.Step();
      mutant_sim.Step();
    }
    observable += differs;
  }
  // The engine must inject real defects, not no-ops: most toy mutants are
  // visible on the interface within a short directed run.
  EXPECT_GE(observable, 3u);
}

TEST(MutatorTest, MutantBuilderMatchesApplyMutant) {
  ir::TransitionSystem src;
  const auto acc = ToyBuilder()(src);
  const auto sites = SampleMutants(src, acc, kSeed, 3);
  ASSERT_FALSE(sites.empty());
  for (const MutantKey& key : sites) {
    ir::TransitionSystem via_apply, via_builder;
    ApplyMutant(src, key, via_apply);
    const auto built_acc = MutantBuilder(ToyBuilder(), key)(via_builder);
    EXPECT_TRUE(via_builder.Validate().ok());
    EXPECT_EQ(via_apply.states().size(), via_builder.states().size());
    EXPECT_NE(built_acc.out_valid, ir::kNullNode);
  }
}

// --- watchdog ----------------------------------------------------------------

TEST(WatchdogTest, TripsTheSourceWithDeadlineReason) {
  sched::Watchdog watchdog;
  sched::CancellationSource source;
  const auto guard = watchdog.Arm(source, 5);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (!source.cancelled() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(source.cancelled());
  EXPECT_EQ(source.token().reason(), sched::CancelReason::kDeadline);
  EXPECT_EQ(sched::UnknownReasonFromCancel(source.token().reason()),
            UnknownReason::kDeadline);
}

TEST(WatchdogTest, DisarmedGuardNeverFires) {
  sched::Watchdog watchdog;
  sched::CancellationSource source;
  {
    auto guard = watchdog.Arm(source, 30);
    guard.Disarm();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(source.cancelled());
}

TEST(WatchdogTest, GuardDestructorDisarms) {
  sched::Watchdog watchdog;
  sched::CancellationSource source;
  { const auto guard = watchdog.Arm(source, 30); }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(source.cancelled());
}

// --- UNKNOWN reason codes ----------------------------------------------------

TEST(UnknownReasonTest, PreCancelledBmcReportsCancelled) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef counter = ts.AddState("counter", Sort::BitVec(8), 0);
  ts.SetNext(counter, ctx.Add(counter, ctx.Const(8, 1)));
  ts.AddBad(ctx.Eq(counter, ctx.Const(8, 200)), "deep");

  sched::CancellationSource source;
  source.Cancel();
  bmc::BmcOptions options;
  options.max_bound = 50;
  options.cancel = source.token();
  const bmc::BmcResult result = bmc::RunBmc(ts, options);
  EXPECT_EQ(result.outcome, bmc::BmcResult::Outcome::kUnknown);
  EXPECT_EQ(result.unknown_reason, UnknownReason::kCancelled);
}

TEST(UnknownReasonTest, ConflictBudgetExhaustionIsReported) {
  core::AqedOptions options;
  options.bmc.max_bound = 8;
  options.bmc.conflict_budget = 1;
  const auto result = core::CheckAccelerator(MemCtrlBuilder(), options);
  ASSERT_FALSE(result.bug_found(0));
  EXPECT_EQ(result.unknown_reason(0), UnknownReason::kConflictBudget);
  EXPECT_EQ(result.num_unknown(), 1u);
  EXPECT_EQ(result.jobs[0].result.bmc.unknown_reason,
            UnknownReason::kConflictBudget);
  EXPECT_GE(result.stats.num_unknown(UnknownReason::kConflictBudget), 1u);
  EXPECT_EQ(result.stats.num_unknown(UnknownReason::kDeadline), 0u);
}

TEST(UnknownReasonTest, SessionDeadlineReportsDeadline) {
  core::SessionOptions session_options;
  session_options.jobs = 1;
  session_options.deadline_ms = 1;  // trips long before bound 14 refutes
  sched::VerificationSession session(session_options);
  core::AqedOptions options;
  options.bmc.max_bound = 14;
  session.Enqueue(MemCtrlBuilder(), options, "starved");
  const auto result = session.Wait();
  ASSERT_FALSE(result.bug_found(0));
  EXPECT_EQ(result.unknown_reason(0), UnknownReason::kDeadline);
  // A deadline expiry is a timeout, not a first-bug-wins cancellation.
  EXPECT_FALSE(result.jobs[0].cancelled);
  EXPECT_EQ(result.stats.num_cancelled(), 0u);
  EXPECT_GE(result.stats.num_unknown(UnknownReason::kDeadline), 1u);
}

// The ISSUE's UNKNOWN-propagation regression: a session with one
// budget-starved job still finishes, reports that job kUnknown with the
// right reason, and the other entries' verdicts are identical to an
// unbudgeted run.
TEST(UnknownReasonTest, StarvedJobDoesNotPerturbSiblingVerdicts) {
  const auto run = [](int64_t budget_entry0) {
    core::SessionOptions session_options;
    session_options.jobs = 2;
    session_options.cancel = core::SessionOptions::CancelPolicy::kNone;
    sched::VerificationSession session(session_options);
    core::AqedOptions starved;
    starved.bmc.max_bound = 8;
    starved.bmc.conflict_budget = budget_entry0;
    session.Enqueue(MemCtrlBuilder(), starved, "memctrl");
    core::AqedOptions toy;
    toy.bmc.max_bound = 6;
    session.Enqueue(ToyBuilder(/*early_output=*/true), toy, "toy");
    return session.Wait();
  };
  const auto starved = run(1);
  const auto unbudgeted = run(-1);

  EXPECT_EQ(starved.unknown_reason(0), UnknownReason::kConflictBudget);
  EXPECT_GE(starved.num_unknown(), 1u);
  EXPECT_EQ(unbudgeted.num_unknown(), 0u);
  // Entry 1's verdict is untouched by its sibling's starvation.
  ASSERT_TRUE(starved.bug_found(1));
  EXPECT_EQ(starved.bug_found(1), unbudgeted.bug_found(1));
  EXPECT_EQ(starved.kind(1), unbudgeted.kind(1));
  EXPECT_EQ(starved.cex_cycles(1), unbudgeted.cex_cycles(1));
}

// --- escalating-budget retries ----------------------------------------------

TEST(RetryTest, EscalationDecidesAStarvedJob) {
  core::SessionOptions session_options;
  session_options.jobs = 1;
  session_options.retry.max_retries = 16;  // budget 1 -> 64k: plenty
  sched::VerificationSession session(session_options);
  core::AqedOptions options;
  options.bmc.max_bound = 6;
  options.bmc.conflict_budget = 1;
  session.Enqueue(MemCtrlBuilder(), options, "memctrl");
  const auto result = session.Wait();
  // The final attempt refutes cleanly where attempt 0 ran out of budget.
  EXPECT_FALSE(result.bug_found(0));
  EXPECT_EQ(result.unknown_reason(0), UnknownReason::kNone);
  EXPECT_EQ(result.num_unknown(), 0u);
  EXPECT_GT(result.jobs[0].attempt, 0u);
  // One stats row per executed attempt, retries accounted separately.
  EXPECT_GE(result.stats.num_retries(), 1u);
  EXPECT_EQ(result.stats.num_jobs(),
            static_cast<size_t>(result.jobs[0].attempt) + 1);
}

TEST(RetryTest, BudgetCapStopsEscalation) {
  core::SessionOptions session_options;
  session_options.jobs = 1;
  session_options.retry.max_retries = 16;
  session_options.retry.max_conflict_budget = 2;
  sched::VerificationSession session(session_options);
  core::AqedOptions options;
  options.bmc.max_bound = 8;
  options.bmc.conflict_budget = 1;
  session.Enqueue(MemCtrlBuilder(), options, "memctrl");
  const auto result = session.Wait();
  // 1 -> 2 (cap) and then nothing grows: exactly one retry, still unknown.
  EXPECT_EQ(result.unknown_reason(0), UnknownReason::kConflictBudget);
  EXPECT_EQ(result.jobs[0].attempt, 1u);
  EXPECT_EQ(result.stats.num_retries(), 1u);
  EXPECT_EQ(result.stats.num_jobs(), 2u);
}

// Pins the stats-accumulation contract across the escalation ladder: each
// JobStat row carries only its own attempt's solver effort (a fresh Solver
// runs per attempt), and the final JobResult holds the last attempt alone —
// never a running sum over retried attempts.
TEST(RetryTest, AttemptRowsCarryPerAttemptEffortNotCumulative) {
  core::SessionOptions session_options;
  session_options.jobs = 1;
  session_options.retry.max_retries = 16;
  core::AqedOptions options;
  options.bmc.max_bound = 6;
  options.bmc.conflict_budget = 1;

  sched::VerificationSession session(session_options);
  session.Enqueue(MemCtrlBuilder(), options, "memctrl");
  const auto result = session.Wait();
  const uint32_t attempts = result.jobs[0].attempt + 1;
  ASSERT_GT(attempts, 1u);  // budget 1 must escalate at least once
  const auto& rows = result.stats.jobs();
  ASSERT_EQ(rows.size(), attempts);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].attempt, i);
    if (i + 1 < rows.size()) {
      EXPECT_EQ(rows[i].unknown_reason, UnknownReason::kConflictBudget);
    }
  }
  EXPECT_EQ(rows.back().unknown_reason, UnknownReason::kNone);
  // The result slot is the last attempt's row, not an accumulation.
  EXPECT_EQ(result.jobs[0].result.bmc.conflicts, rows.back().conflicts);

  // The decisive pin: a fresh run given the final attempt's budget up front
  // reproduces that attempt's conflict count exactly (the solver is
  // deterministic at --jobs 1). Any cross-attempt accumulation would make
  // the retried row strictly larger.
  core::AqedOptions direct = options;
  direct.bmc.conflict_budget = options.bmc.conflict_budget
                               << (attempts - 1);
  core::SessionOptions no_retry;
  no_retry.jobs = 1;
  sched::VerificationSession fresh(no_retry);
  fresh.Enqueue(MemCtrlBuilder(), direct, "memctrl");
  const auto direct_result = fresh.Wait();
  EXPECT_FALSE(direct_result.bug_found(0));
  EXPECT_EQ(direct_result.jobs[0].result.bmc.conflicts,
            rows.back().conflicts);
}

TEST(RetryTest, DecidedJobsAreNeverRetried) {
  core::SessionOptions session_options;
  session_options.jobs = 1;
  session_options.retry.max_retries = 4;
  sched::VerificationSession session(session_options);
  core::AqedOptions options;
  options.bmc.max_bound = 6;
  session.Enqueue(ToyBuilder(/*early_output=*/true), options, "buggy");
  session.Enqueue(ToyBuilder(), options, "clean");
  const auto result = session.Wait();
  EXPECT_TRUE(result.bug_found(0));
  EXPECT_FALSE(result.bug_found(1));
  EXPECT_EQ(result.stats.num_retries(), 0u);
  for (const auto& job : result.jobs) EXPECT_EQ(job.attempt, 0u);
}

// --- campaign determinism ----------------------------------------------------

FaultCampaignOptions SmallCampaign(uint32_t jobs) {
  FaultCampaignOptions options;
  options.seed = kSeed;
  options.num_mutants = 10;
  options.session.jobs = jobs;
  options.session.retry.max_retries = 2;
  return options;
}

std::vector<DesignUnderTest> SmallDesigns() {
  std::vector<DesignUnderTest> designs;
  core::AqedOptions toy_options;
  toy_options.bmc.max_bound = 6;
  designs.push_back({"toy", ToyBuilder(), toy_options, nullptr, {}});
  core::RbOptions rb;
  rb.tau = accel::DataflowResponseBound();
  rb.rdin_bound = accel::DataflowRdinBound();
  const auto dataflow_options = core::AqedOptions::Builder()
                                    .WithRb(rb)
                                    .WithFcBound(6)
                                    .WithRbBound(16)
                                    .Build();
  designs.push_back({"dataflow",
                     [](ir::TransitionSystem& ts) {
                       return accel::BuildDataflow(ts, {}).acc;
                     },
                     dataflow_options, nullptr, {}});
  return designs;
}

// The ISSUE's determinism regression: the same seed yields byte-identical
// mutant sets and identical classifications at --jobs 1 and --jobs 8.
TEST(FaultCampaignTest, ClassificationsAreIdenticalAcrossWorkerCounts) {
  const auto designs = SmallDesigns();
  const auto serial = RunFaultCampaign(designs, SmallCampaign(1));
  const auto parallel = RunFaultCampaign(designs, SmallCampaign(8));

  ASSERT_EQ(serial.mutants.size(), 10u);
  ASSERT_EQ(parallel.mutants.size(), serial.mutants.size());
  for (size_t i = 0; i < serial.mutants.size(); ++i) {
    EXPECT_EQ(serial.mutants[i].design, parallel.mutants[i].design) << i;
    EXPECT_TRUE(serial.mutants[i].key == parallel.mutants[i].key) << i;
    EXPECT_EQ(serial.mutants[i].classification,
              parallel.mutants[i].classification)
        << i << ": " << serial.mutants[i].key.ToString();
    EXPECT_EQ(serial.mutants[i].cex_cycles, parallel.mutants[i].cex_cycles)
        << i;
  }
  EXPECT_EQ(serial.ClassificationDigest(), parallel.ClassificationDigest());
  // The engine injects real bugs: a healthy share of mutants is detected,
  // and with unbounded budgets nothing is left unknown.
  EXPECT_GE(serial.num_detected(), 3u);
  EXPECT_EQ(serial.count(Classification::kUnknown), 0u);
  EXPECT_DOUBLE_EQ(serial.classified_fraction(), 1.0);
  EXPECT_FALSE(serial.ToTable().empty());
}

}  // namespace
}  // namespace aqed::fault
