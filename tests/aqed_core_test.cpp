// A-QED monitor semantics on small purpose-built accelerators:
//  * FC passes on consistent designs and catches history-dependent bugs;
//  * the strengthened early-output check (footnote 1) fires on spurious
//    outputs;
//  * FC provably cannot see consistently-wrong outputs — SAC closes that gap
//    (Sec. III.C / Proposition 1);
//  * RB separates slow-but-bounded designs from unresponsive ones;
//  * batch mode with a shared-context signal (Sec. IV.B customization);
//  * interface validation rejects malformed descriptions.
#include <gtest/gtest.h>

#include "aqed/checker.h"
#include "aqed/monitor_util.h"
#include "aqed/report.h"

namespace aqed::core {
namespace {

using ir::NodeRef;
using ir::Sort;

struct ToyOptions {
  // Output value: f(x) = x + increment (+ toggle if inconsistent).
  uint64_t increment = 1;
  bool inconsistent_toggle = false;  // alternate outputs by a parity bit
  bool early_output = false;        // assert out_valid from reset
  uint32_t extra_latency = 0;       // additional wait states
};

// One-deep accelerator: capture when idle, respond `1 + extra_latency`
// cycles later with f(x).
AcceleratorInterface BuildToy(ir::TransitionSystem& ts,
                              const ToyOptions& toy) {
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));

  const NodeRef busy = Reg(ts, "busy", 1, 0);
  const NodeRef wait = Reg(ts, "wait", 4, 0);
  const NodeRef held = Reg(ts, "held", 8, 0);
  const NodeRef out_pending = Reg(ts, "out_pending", 1, 0);
  const NodeRef out_reg = Reg(ts, "out_reg", 8, 0);
  const NodeRef parity = Reg(ts, "parity", 1, 0);

  const NodeRef in_ready = ctx.And(ctx.Not(busy), ctx.Not(out_pending));
  const NodeRef capture = ctx.And(in_valid, in_ready);
  NodeRef out_valid = out_pending;
  if (toy.early_output) out_valid = ctx.Or(out_valid, ctx.Not(busy));
  const NodeRef drain = ctx.And(out_valid, host_ready);

  const NodeRef waited =
      ctx.Uge(wait, ctx.Const(4, toy.extra_latency));
  const NodeRef finish = ctx.And(busy, waited);

  LatchWhen(ts, held, capture, in_data);
  ts.SetNext(busy, ctx.Ite(capture, ctx.True(),
                           ctx.Ite(finish, ctx.False(), busy)));
  ts.SetNext(wait, ctx.Ite(capture, ctx.Const(4, 0),
                           ctx.Ite(busy, ctx.Add(wait, ctx.Const(4, 1)),
                                   wait)));
  NodeRef value = ctx.Add(held, ctx.Const(8, toy.increment));
  if (toy.inconsistent_toggle) {
    value = ctx.Ite(parity, ctx.Add(value, ctx.Const(8, 1)), value);
  }
  ts.SetNext(parity, ctx.Ite(capture, ctx.Not(parity), parity));
  LatchWhen(ts, out_reg, finish, value);
  ts.SetNext(out_pending, ctx.Ite(finish, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_valid;
  acc.data_elems = {{in_data}};
  acc.out_elems = {{out_reg}};
  return acc;
}

SpecFn ToySpec(uint64_t increment) {
  return [increment](ir::Context& ctx, const std::vector<NodeRef>& in) {
    return std::vector<NodeRef>{
        ctx.Add(in[0], ctx.Const(8, increment))};
  };
}

TEST(FcMonitorTest, ConsistentToyPasses) {
  ir::TransitionSystem ts;
  const auto acc = BuildToy(ts, {});
  AqedOptions options;
  options.bmc.max_bound = 10;
  const auto result = RunAqed(ts, acc, options);
  EXPECT_FALSE(result.bug_found) << FormatResult(ts, result);
}

TEST(FcMonitorTest, InconsistentToggleCaught) {
  ir::TransitionSystem ts;
  ToyOptions toy;
  toy.inconsistent_toggle = true;
  const auto acc = BuildToy(ts, toy);
  AqedOptions options;
  options.bmc.max_bound = 12;
  const auto result = RunAqed(ts, acc, options);
  ASSERT_TRUE(result.bug_found);
  EXPECT_EQ(result.kind, BugKind::kFunctionalConsistency);
  EXPECT_TRUE(result.bmc.trace_validated);
  // Two transactions and their responses: a short counterexample.
  EXPECT_LE(result.cex_cycles(), 8u);
}

TEST(FcMonitorTest, EarlyOutputCaughtByStrengthenedCheck) {
  ir::TransitionSystem ts;
  ToyOptions toy;
  toy.early_output = true;
  const auto acc = BuildToy(ts, toy);
  AqedOptions options;
  options.bmc.max_bound = 6;
  const auto result = RunAqed(ts, acc, options);
  ASSERT_TRUE(result.bug_found);
  EXPECT_EQ(result.kind, BugKind::kEarlyOutput);
}

// The paper's key theoretical caveat (Sec. III.C): a bug that is
// *consistently* wrong is invisible to FC but caught by SAC given a spec.
TEST(SacMonitorTest, ConsistentlyWrongOutputInvisibleToFcCaughtBySac) {
  ToyOptions wrong;
  wrong.increment = 2;  // spec says +1

  // FC alone: passes (the design is self-consistent).
  {
    ir::TransitionSystem ts;
    const auto acc = BuildToy(ts, wrong);
    AqedOptions options;
    options.bmc.max_bound = 10;
    const auto result = RunAqed(ts, acc, options);
    EXPECT_FALSE(result.bug_found) << FormatResult(ts, result);
  }
  // FC + SAC with Spec f(x)=x+1: caught by SAC.
  {
    ir::TransitionSystem ts;
    const auto acc = BuildToy(ts, wrong);
    AqedOptions options;
    options.bmc.max_bound = 10;
    options.sac_spec = ToySpec(1);
    const auto result = RunAqed(ts, acc, options);
    ASSERT_TRUE(result.bug_found);
    EXPECT_EQ(result.kind, BugKind::kSingleActionCorrectness);
  }
  // Correct design passes FC + SAC.
  {
    ir::TransitionSystem ts;
    const auto acc = BuildToy(ts, {});
    AqedOptions options;
    options.bmc.max_bound = 10;
    options.sac_spec = ToySpec(1);
    const auto result = RunAqed(ts, acc, options);
    EXPECT_FALSE(result.bug_found) << FormatResult(ts, result);
  }
}

TEST(RbMonitorTest, BoundSeparatesSlowFromUnresponsive) {
  // Latency ~5: passes with tau=8, flagged with tau=3 (bound too tight —
  // the response bound is the one design parameter A-QED needs, Sec. III).
  for (auto [tau, expect_bug] : {std::pair{8u, false}, std::pair{3u, true}}) {
    ir::TransitionSystem ts;
    ToyOptions toy;
    toy.extra_latency = 4;
    const auto acc = BuildToy(ts, toy);
    AqedOptions options;
    options.check_fc = false;
    RbOptions rb;
    rb.tau = tau;
    options.rb = rb;
    options.bmc.max_bound = 16;
    const auto result = RunAqed(ts, acc, options);
    EXPECT_EQ(result.bug_found, expect_bug) << "tau=" << tau;
    if (expect_bug) {
      EXPECT_EQ(result.kind, BugKind::kResponseBound);
    }
  }
}

// --- batch mode with shared context ------------------------------------------

// Two-element batch combinational-latency-1 design sharing a "bias" input
// across the batch; optionally the bias is mis-applied to element 1 only
// on odd transactions.
AcceleratorInterface BuildBatchToy(ir::TransitionSystem& ts,
                                   bool inconsistent) {
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef d0 = ts.AddInput("d0", Sort::BitVec(8));
  const NodeRef d1 = ts.AddInput("d1", Sort::BitVec(8));
  const NodeRef bias = ts.AddInput("bias", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));

  const NodeRef out_pending = Reg(ts, "out_pending", 1, 0);
  const NodeRef o0 = Reg(ts, "o0", 8, 0);
  const NodeRef o1 = Reg(ts, "o1", 8, 0);
  const NodeRef parity = Reg(ts, "parity", 1, 0);

  const NodeRef in_ready = ctx.Not(out_pending);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef out_valid = out_pending;
  const NodeRef drain = ctx.And(out_valid, host_ready);

  LatchWhen(ts, o0, capture, ctx.Add(d0, bias));
  NodeRef e1 = ctx.Add(d1, bias);
  if (inconsistent) {
    e1 = ctx.Ite(parity, ctx.Add(e1, ctx.Const(8, 3)), e1);
  }
  LatchWhen(ts, o1, capture, e1);
  ts.SetNext(parity, ctx.Ite(capture, ctx.Not(parity), parity));
  ts.SetNext(out_pending, ctx.Ite(capture, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_valid;
  acc.data_elems = {{d0}, {d1}};
  acc.out_elems = {{o0}, {o1}};
  acc.shared_context = {bias};
  return acc;
}

TEST(BatchFcTest, ConsistentBatchDesignPasses) {
  ir::TransitionSystem ts;
  const auto acc = BuildBatchToy(ts, /*inconsistent=*/false);
  AqedOptions options;
  options.bmc.max_bound = 8;
  const auto result = RunAqed(ts, acc, options);
  EXPECT_FALSE(result.bug_found) << FormatResult(ts, result);
}

TEST(BatchFcTest, CrossBatchInconsistencyCaught) {
  ir::TransitionSystem ts;
  const auto acc = BuildBatchToy(ts, /*inconsistent=*/true);
  AqedOptions options;
  options.bmc.max_bound = 10;
  const auto result = RunAqed(ts, acc, options);
  ASSERT_TRUE(result.bug_found);
  EXPECT_EQ(result.kind, BugKind::kFunctionalConsistency);
  EXPECT_TRUE(result.bmc.trace_validated);
}

// Same-batch original/duplicate (Fig. 4 allows ORIG_BATCH == DUP_BATCH with
// different element indices): a design that swaps its two element outputs
// can only be caught by comparing two elements of the *same* batch, since
// equal-data elements within one batch must produce equal outputs.
TEST(BatchFcTest, SameBatchDuplicateCatchesElementSwap) {
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef d0 = ts.AddInput("d0", Sort::BitVec(8));
  const NodeRef d1 = ts.AddInput("d1", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef out_pending = Reg(ts, "out_pending", 1, 0);
  const NodeRef o0 = Reg(ts, "o0", 8, 0);
  const NodeRef o1 = Reg(ts, "o1", 8, 0);
  const NodeRef in_ready = ctx.Not(out_pending);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef drain = ctx.And(out_pending, host_ready);
  // BUG: element outputs crossed — o0 gets f(d1), o1 gets f(d0). For a
  // batch with d0 == d1 the outputs o0 and o1 must match f(d0) == f(d1);
  // they do match each other here, so the cross is only visible when the
  // two elements' *data* are equal but an asymmetric f' sneaks in:
  // make element 1's function differ (f0 = x+1, f1 = x+2) to model a
  // per-lane copy-paste error.
  LatchWhen(ts, o0, capture, ctx.Add(d0, ctx.Const(8, 1)));
  LatchWhen(ts, o1, capture, ctx.Add(d1, ctx.Const(8, 2)));
  ts.SetNext(out_pending, ctx.Ite(capture, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = in_ready;
  acc.host_ready = host_ready;
  acc.out_valid = out_pending;
  acc.data_elems = {{d0}, {d1}};
  acc.out_elems = {{o0}, {o1}};

  // Allow only ONE transaction ever: after the first capture the monitor
  // can only pick orig and dup inside that single batch.
  const NodeRef seen = Reg(ts, "seen", 1, 0);
  SetSticky(ts, seen, capture);
  ts.AddConstraint(ctx.Implies(seen, ctx.Not(in_valid)));

  AqedOptions options;
  options.bmc.max_bound = 6;
  const auto result = RunAqed(ts, acc, options);
  ASSERT_TRUE(result.bug_found);
  EXPECT_EQ(result.kind, BugKind::kFunctionalConsistency);
  EXPECT_TRUE(result.bmc.trace_validated);
  // orig and dup were necessarily in the same (only) batch.
  EXPECT_LE(result.cex_cycles(), 4u);
}

// --- interface validation ------------------------------------------------------

TEST(InterfaceTest, ValidationCatchesMalformedDescriptions) {
  ir::TransitionSystem ts;
  auto acc = BuildToy(ts, {});
  EXPECT_TRUE(acc.Validate(ts).ok());

  auto missing = acc;
  missing.out_valid = ir::kNullNode;
  EXPECT_FALSE(missing.Validate(ts).ok());

  auto wide_handshake = acc;
  wide_handshake.in_valid = acc.data_elems[0][0];  // 8-bit, not 1-bit
  EXPECT_FALSE(wide_handshake.Validate(ts).ok());

  auto no_data = acc;
  no_data.data_elems.clear();
  EXPECT_FALSE(no_data.Validate(ts).ok());

  auto ragged = acc;
  ragged.out_elems.push_back({});  // batch size mismatch
  EXPECT_FALSE(ragged.Validate(ts).ok());
}

// --- options validation (fluent builder) ------------------------------------

TEST(AqedOptionsBuilderTest, DefaultsAreValid) {
  EXPECT_TRUE(AqedOptions::Builder().Validate().ok());
  const AqedOptions options = AqedOptions::Builder()
                                  .WithRb({.tau = 8})
                                  .WithBound(32)
                                  .WithFcBound(14)
                                  .WithRbBound(20)
                                  .WithConflictBudget(400000)
                                  .Build();
  EXPECT_TRUE(options.check_fc);
  ASSERT_TRUE(options.rb.has_value());
  EXPECT_EQ(options.rb->tau, 8u);
  EXPECT_EQ(options.bmc.max_bound, 32u);
  EXPECT_EQ(options.fc_bound, 14u);
  EXPECT_EQ(options.rb_bound, 20u);
  EXPECT_EQ(options.bmc.conflict_budget, 400000);
}

TEST(AqedOptionsBuilderTest, RejectsEveryPropertyDisabled) {
  EXPECT_FALSE(AqedOptions::Builder().WithoutFc().Validate().ok());
  EXPECT_TRUE(
      AqedOptions::Builder().WithoutFc().WithRb({.tau = 4}).Validate().ok());
}

TEST(AqedOptionsBuilderTest, RejectsBoundOverrideAboveMaxBound) {
  EXPECT_FALSE(
      AqedOptions::Builder().WithBound(8).WithFcBound(14).Validate().ok());
  EXPECT_FALSE(AqedOptions::Builder()
                   .WithRb({.tau = 4})
                   .WithBound(8)
                   .WithRbBound(9)
                   .Validate()
                   .ok());
  EXPECT_TRUE(
      AqedOptions::Builder().WithBound(14).WithFcBound(14).Validate().ok());
  EXPECT_FALSE(AqedOptions::Builder().WithBound(0).Validate().ok());
}

TEST(AqedOptionsBuilderTest, RejectsOverrideForDisabledProperty) {
  // rb_bound without RB enabled, sac_bound without a SAC spec.
  EXPECT_FALSE(AqedOptions::Builder().WithRbBound(4).Validate().ok());
  EXPECT_FALSE(AqedOptions::Builder().WithSacBound(4).Validate().ok());
  // fc_bound after FC was turned off.
  EXPECT_FALSE(AqedOptions::Builder()
                   .WithoutFc()
                   .WithRb({.tau = 4})
                   .WithFcBound(4)
                   .Validate()
                   .ok());
}

TEST(AqedOptionsBuilderTest, RejectsDegenerateRb) {
  EXPECT_FALSE(AqedOptions::Builder().WithRb({.tau = 0}).Validate().ok());
  RbOptions rb;
  rb.tau = 4;
  rb.in_min = 0;
  EXPECT_FALSE(AqedOptions::Builder().WithRb(rb).Validate().ok());
}

TEST(AqedOptionsBuilderTest, SeedsFromLegacyStructAndRevalidates) {
  // Struct-poked legacy configuration, fluently adjusted.
  AqedOptions legacy;
  legacy.rb = RbOptions{};
  legacy.rb->tau = 8;
  legacy.fc_bound = 14;
  const AqedOptions tightened =
      AqedOptions::Builder(legacy).WithBound(14).Build();
  EXPECT_EQ(tightened.bmc.max_bound, 14u);
  EXPECT_EQ(tightened.fc_bound, 14u);
  // The same seed with an incoherent tweak is rejected.
  EXPECT_FALSE(AqedOptions::Builder(legacy).WithBound(10).Validate().ok());
}

// --- depth-zero counterexamples ----------------------------------------------

// A bug reachable in the *initial* frame (BMC depth 0) must report a trace
// of 1 cycle, never 0: a depth-d counterexample has d + 1 frames.

TEST(DepthZeroTest, CycleZeroSacViolationReportsOneCycleTrace) {
  // Purely combinational responder: out_valid mirrors in_valid, so the
  // wrong function (+1 against a +2 spec) is visible in cycle 0 already.
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(8));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  AcceleratorInterface acc;
  acc.in_valid = in_valid;
  acc.in_ready = ctx.True();
  acc.host_ready = host_ready;
  acc.out_valid = in_valid;
  acc.data_elems = {{in_data}};
  acc.out_elems = {{ctx.Add(in_data, ctx.Const(8, 1))}};

  AqedOptions options;
  options.check_fc = false;
  options.sac_spec = ToySpec(2);
  options.bmc.max_bound = 4;
  const auto result = RunAqed(ts, acc, options);
  ASSERT_TRUE(result.bug_found);
  EXPECT_EQ(result.kind, BugKind::kSingleActionCorrectness);
  EXPECT_EQ(result.bmc.trace.length(), 1u);
  EXPECT_EQ(result.cex_cycles(), 1u);
}

TEST(DepthZeroTest, ResetTimeEarlyOutputReportsOneCycleTrace) {
  // out_valid asserted straight out of reset, before any input was ever
  // captured: the strengthened FC check fires in the initial frame.
  ir::TransitionSystem ts;
  ToyOptions toy;
  toy.early_output = true;
  const auto acc = BuildToy(ts, toy);
  AqedOptions options;
  options.bmc.max_bound = 2;
  const auto result = RunAqed(ts, acc, options);
  ASSERT_TRUE(result.bug_found);
  EXPECT_EQ(result.kind, BugKind::kEarlyOutput);
  EXPECT_EQ(result.bmc.trace.length(), 1u);
  EXPECT_EQ(result.cex_cycles(), 1u);
}

TEST(MonitorUtilTest, IndexWidthAndMux) {
  EXPECT_EQ(IndexWidth(1), 1u);
  EXPECT_EQ(IndexWidth(2), 1u);
  EXPECT_EQ(IndexWidth(3), 2u);
  EXPECT_EQ(IndexWidth(4), 2u);
  EXPECT_EQ(IndexWidth(5), 3u);
  EXPECT_EQ(IndexWidth(16), 4u);
}

}  // namespace
}  // namespace aqed::core
