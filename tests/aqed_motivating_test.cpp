// End-to-end A-QED checks on the paper's motivating example (Fig. 2).
#include <gtest/gtest.h>

#include "accel/motivating.h"
#include "aqed/checker.h"
#include "aqed/report.h"
#include "bmc/trace.h"
#include "harness/conventional_flow.h"
#include "sim/simulator.h"

namespace aqed {
namespace {

using accel::BuildMotivating;
using accel::MotivatingConfig;
using accel::MotivatingGolden;

core::AqedOptions DefaultOptions(uint32_t max_bound) {
  core::AqedOptions options;
  options.bmc.max_bound = max_bound;
  return options;
}

TEST(MotivatingSim, ProcessesInputsInOrder) {
  ir::TransitionSystem ts;
  const auto design = BuildMotivating(ts, MotivatingConfig{});
  ASSERT_TRUE(ts.Validate().ok());
  sim::Simulator sim(ts);

  const std::vector<uint64_t> stimulus = {3, 10, 7, 1, 255, 0, 42, 9};
  std::vector<uint64_t> outputs;
  size_t sent = 0;
  for (int cycle = 0; cycle < 200 && outputs.size() < stimulus.size();
       ++cycle) {
    sim.SetInput(design.acc.in_valid, sent < stimulus.size() ? 1 : 0);
    if (sent < stimulus.size()) {
      sim.SetInput(design.acc.data_elems[0][0], stimulus[sent]);
    }
    sim.SetInput(design.acc.host_ready, 1);
    sim.SetInput(design.clk_en, 1);
    sim.Eval();
    if (sim.Value(design.acc.in_valid) && sim.Value(design.acc.in_ready)) {
      ++sent;
    }
    if (sim.Value(design.acc.out_valid) && sim.Value(design.acc.host_ready)) {
      outputs.push_back(sim.Value(design.acc.out_elems[0][0]));
    }
    sim.Step();
  }
  ASSERT_EQ(outputs.size(), stimulus.size());
  for (size_t i = 0; i < stimulus.size(); ++i) {
    EXPECT_EQ(outputs[i], MotivatingGolden(stimulus[i], 8)) << i;
  }
}

TEST(MotivatingSim, ClockDisableFreezesDesign) {
  ir::TransitionSystem ts;
  const auto design = BuildMotivating(ts, MotivatingConfig{});
  sim::Simulator sim(ts);
  sim.SetInput(design.acc.in_valid, 1);
  sim.SetInput(design.clk_en, 0);
  sim.Eval();
  EXPECT_EQ(sim.Value(design.acc.in_ready), 0u);
  EXPECT_EQ(sim.Value(design.acc.out_valid), 0u);
}

TEST(MotivatingAqed, CorrectDesignPassesShallowBound) {
  ir::TransitionSystem ts;
  const auto design = BuildMotivating(ts, MotivatingConfig{});
  const auto result = core::RunAqed(ts, design.acc, DefaultOptions(9));
  EXPECT_FALSE(result.bug_found) << core::FormatResult(ts, result);
}

TEST(MotivatingAqed, ClockEnableBugIsCaughtByFc) {
  ir::TransitionSystem ts;
  MotivatingConfig config;
  config.bug_clock_enable = true;
  config.data_width = 4;  // keeps the control bug identical, shrinks the CNF
  const auto design = BuildMotivating(ts, config);
  const auto result = core::RunAqed(ts, design.acc, DefaultOptions(24));
  ASSERT_TRUE(result.bug_found) << core::SummarizeResult(result);
  EXPECT_EQ(result.kind, core::BugKind::kFunctionalConsistency);
  EXPECT_TRUE(result.bmc.trace_validated);
  // The counterexample is minimal-length by construction and far shorter
  // than a random-simulation failure trace.
  EXPECT_LE(result.cex_cycles(), 24u);
}

TEST(MotivatingConventional, RandomTestbenchAlsoSeesTheBug) {
  harness::CampaignOptions options;
  options.num_seeds = 8;
  options.testbench.max_cycles = 20000;
  options.testbench.data_pool = 8;
  const auto campaign = harness::RunCampaign(
      [](ir::TransitionSystem& ts) {
        MotivatingConfig config;
        config.bug_clock_enable = true;
        return BuildMotivating(ts, config).acc;
      },
      [](const std::vector<uint64_t>& in, const std::vector<uint64_t>&) {
        return std::vector<uint64_t>{MotivatingGolden(in[0], 8)};
      },
      options);
  EXPECT_TRUE(campaign.bug_detected);
}

TEST(MotivatingConventional, CorrectDesignRunsClean) {
  harness::CampaignOptions options;
  options.num_seeds = 2;
  options.testbench.max_cycles = 4000;
  const auto campaign = harness::RunCampaign(
      [](ir::TransitionSystem& ts) {
        return BuildMotivating(ts, MotivatingConfig{}).acc;
      },
      [](const std::vector<uint64_t>& in, const std::vector<uint64_t>&) {
        return std::vector<uint64_t>{MotivatingGolden(in[0], 8)};
      },
      options);
  EXPECT_FALSE(campaign.bug_detected);
}

}  // namespace
}  // namespace aqed
