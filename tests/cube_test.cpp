// Cube-and-conquer tests: the VSIDS cube splitter (exhaustive, disjoint,
// seed-deterministic), solver cloning for cube workers, the BMC escalation
// policy (cube verdicts identical to monolithic solving on buggy and clean
// designs), first-SAT-wins sibling cancellation under real concurrency
// (exercised by the tsan preset), and the one-token cancellation contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "accel/memctrl.h"
#include "aqed/checker.h"
#include "bmc/engine.h"
#include "sat/cube.h"
#include "sat/solver.h"
#include "sched/cancellation.h"
#include "sched/session.h"

namespace aqed {
namespace {

using sat::Lit;
using sat::Solver;
using sat::SolveResult;
using sat::Var;

Lit Pos(Var v) { return Lit(v, false); }
Lit NegL(Var v) { return Lit(v, true); }

// Unsatisfiable pigeonhole instance: hard enough to stall small budgets and
// to build a real VSIDS activity profile.
void AddPigeonhole(Solver& solver, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (auto& row : at) {
    for (auto& var : row) var = solver.NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Pos(at[p][h]));
    ASSERT_TRUE(solver.AddClause(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(solver.AddClause({NegL(at[p1][h]), NegL(at[p2][h])}));
      }
    }
  }
}

// --- cube splitter -----------------------------------------------------------

TEST(CubeSplitterTest, EmitsEverySignCombinationOverTheSameVars) {
  Solver solver;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(solver.NewVar());
  // Non-unit clauses only, so every variable stays free at level 0.
  ASSERT_TRUE(solver.AddClause({Pos(vars[0]), Pos(vars[1])}));
  ASSERT_TRUE(solver.AddClause({Pos(vars[2]), Pos(vars[3])}));

  const sat::CubeSplitter splitter({.num_split_vars = 2});
  const auto cubes = splitter.Split(solver);
  ASSERT_EQ(cubes.size(), 4u);

  std::set<Var> split_vars;
  std::set<std::vector<bool>> signs;
  for (const auto& cube : cubes) {
    ASSERT_EQ(cube.size(), 2u);
    std::vector<bool> sign;
    for (const Lit lit : cube) {
      split_vars.insert(lit.var());
      sign.push_back(lit.negated());
    }
    signs.insert(sign);
  }
  // Two distinct variables, and all four sign combinations — the cubes are
  // pairwise disjoint and jointly exhaustive.
  EXPECT_EQ(split_vars.size(), 2u);
  EXPECT_EQ(signs.size(), 4u);
}

TEST(CubeSplitterTest, SameSeedSameSolverStateGivesIdenticalCubes) {
  Solver a, b;
  AddPigeonhole(a, 6);
  AddPigeonhole(b, 6);
  // Burn the same number of conflicts into both so the activity profiles
  // (and therefore the split variables) match.
  EXPECT_EQ(a.Solve({}, sat::SolveLimits{.max_conflicts = 50}),
            SolveResult::kUnknown);
  EXPECT_EQ(b.Solve({}, sat::SolveLimits{.max_conflicts = 50}),
            SolveResult::kUnknown);

  const sat::CubeSplitter splitter({.num_split_vars = 3, .seed = 42});
  const auto cubes_a = splitter.Split(a);
  const auto cubes_b = splitter.Split(b);
  ASSERT_EQ(cubes_a.size(), 8u);
  EXPECT_EQ(cubes_a, cubes_b);
  // And re-splitting the same solver reproduces the list exactly.
  EXPECT_EQ(splitter.Split(a), cubes_a);
}

TEST(CubeSplitterTest, SeedShufflesTheEmissionOrder) {
  Solver solver;
  AddPigeonhole(solver, 6);
  EXPECT_EQ(solver.Solve({}, sat::SolveLimits{.max_conflicts = 50}),
            SolveResult::kUnknown);
  const auto cubes_a =
      sat::CubeSplitter({.num_split_vars = 3, .seed = 1}).Split(solver);
  const auto cubes_b =
      sat::CubeSplitter({.num_split_vars = 3, .seed = 2}).Split(solver);
  ASSERT_EQ(cubes_a.size(), cubes_b.size());
  // Same cube *set* (the split variables are seed-independent) ...
  const auto keyed = [](const std::vector<std::vector<Lit>>& cubes) {
    std::set<std::vector<uint32_t>> keys;
    for (const auto& cube : cubes) {
      std::vector<uint32_t> key;
      for (const Lit lit : cube) key.push_back(lit.index());
      keys.insert(std::move(key));
    }
    return keys;
  };
  EXPECT_EQ(keyed(cubes_a), keyed(cubes_b));
  // ... in a different order.
  EXPECT_NE(cubes_a, cubes_b);
}

TEST(CubeSplitterTest, CapsAtTheFreeVariableCount) {
  Solver solver;
  const Var x = solver.NewVar();
  const Var y = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Pos(x)}));  // fixes x at level 0
  (void)y;
  const auto cubes = sat::CubeSplitter({.num_split_vars = 3}).Split(solver);
  // Only y is free: 2^1 cubes of one literal each, never branching on x.
  ASSERT_EQ(cubes.size(), 2u);
  for (const auto& cube : cubes) {
    ASSERT_EQ(cube.size(), 1u);
    EXPECT_EQ(cube[0].var(), y);
  }
}

TEST(CubeSplitterTest, NoFreeVariablesGivesNoCubes) {
  Solver empty;
  EXPECT_TRUE(sat::CubeSplitter().Split(empty).empty());

  Solver fixed;
  const Var x = fixed.NewVar();
  ASSERT_TRUE(fixed.AddClause({Pos(x)}));
  EXPECT_TRUE(sat::CubeSplitter().Split(fixed).empty());
}

// --- solver cloning ----------------------------------------------------------

TEST(SolverCloneTest, CloneSharesNoStateWithTheOriginal) {
  Solver solver;
  const Var x = solver.NewVar(), y = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({Pos(x), Pos(y)}));
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);

  const auto clone = solver.Clone(Solver::Options{});
  // The second unit contradicts (x | y) under the first; AddClause may
  // detect that eagerly (returning false), and Solve must report kUnsat.
  clone->AddClause({NegL(x)});
  clone->AddClause({NegL(y)});
  EXPECT_EQ(clone->Solve(), SolveResult::kUnsat);
  // The original never sees the clone's clauses.
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(SolverCloneTest, ClonePreservesProblemAndLearntClauses) {
  Solver solver;
  AddPigeonhole(solver, 7);
  // A budgeted solve leaves learnt clauses and activity behind.
  EXPECT_EQ(solver.Solve({}, sat::SolveLimits{.max_conflicts = 100}),
            SolveResult::kUnknown);
  EXPECT_GT(solver.num_learnts(), 0u);

  const auto clone = solver.Clone(Solver::Options{});
  EXPECT_EQ(clone->num_vars(), solver.num_vars());
  EXPECT_EQ(clone->num_clauses(), solver.num_clauses());
  EXPECT_EQ(clone->num_learnts(), solver.num_learnts());
  // Both finish the proof; the learnts are logically implied, so carrying
  // them over is sound.
  EXPECT_EQ(clone->Solve(), SolveResult::kUnsat);
  EXPECT_EQ(solver.Solve(), SolveResult::kUnsat);
}

TEST(SolverCloneTest, CloneAgreesWithOriginalUnderCubeAssumptions) {
  Solver solver;
  AddPigeonhole(solver, 5);
  EXPECT_EQ(solver.Solve({}, sat::SolveLimits{.max_conflicts = 20}),
            SolveResult::kUnknown);

  const auto cubes = sat::CubeSplitter({.num_split_vars = 2}).Split(solver);
  ASSERT_EQ(cubes.size(), 4u);
  for (const auto& cube : cubes) {
    const auto clone = solver.Clone(Solver::Options{});
    // The instance is UNSAT, so every cube must be refuted — on the clone
    // and on the original alike.
    EXPECT_EQ(clone->Solve(cube), SolveResult::kUnsat);
    EXPECT_EQ(solver.Solve(cube), SolveResult::kUnsat);
  }
}

// --- BMC escalation policy ---------------------------------------------------

core::AcceleratorBuilder MemCtrlBuilder(
    accel::MemCtrlBug bug = accel::MemCtrlBug::kNone) {
  return [bug](ir::TransitionSystem& ts) {
    return accel::BuildMemCtrl(ts, accel::MemCtrlConfig::kFifo, bug).acc;
  };
}

// FC-only study options on the FIFO configuration — deep enough to reach
// the catalog's FC counterexamples, with per-depth refutations that
// accumulate real conflicts along the way.
core::AqedOptions MemCtrlFcOptions() {
  core::AqedOptions options;
  options.bmc.max_bound = 14;
  return options;
}

bmc::BmcOptions::CubeEscalation EagerCubes(uint32_t jobs) {
  bmc::BmcOptions::CubeEscalation cube;
  // Escalate almost immediately so even this small workload exercises the
  // fan-out on many depths.
  cube.conflict_threshold = 1;
  cube.num_split_vars = 2;
  cube.jobs = jobs;
  return cube;
}

TEST(BmcCubeTest, CubeVerdictMatchesMonolithicOnABuggyDesign) {
  const auto build = MemCtrlBuilder(accel::MemCtrlBug::kFifoPtrNoWrap);
  const core::SessionResult mono =
      core::CheckAccelerator(build, MemCtrlFcOptions());

  const auto options = core::AqedOptions::Builder(MemCtrlFcOptions())
                           .WithCubes(EagerCubes(/*jobs=*/1))
                           .Build();
  const core::SessionResult cubed = core::CheckAccelerator(build, options);

  ASSERT_TRUE(mono.bug_found());
  ASSERT_TRUE(cubed.bug_found());
  EXPECT_EQ(cubed.kind(), mono.kind());
  EXPECT_EQ(cubed.cex_cycles(), mono.cex_cycles());
  EXPECT_TRUE(cubed.aqed().bmc.trace_validated);
  // The escalation actually fired (threshold 1 guarantees it on this
  // workload) and solved real cubes.
  EXPECT_GT(cubed.aqed().bmc.cube_escalations, 0u);
  EXPECT_GT(cubed.aqed().bmc.cubes_solved, 0u);
}

TEST(BmcCubeTest, CubeVerdictMatchesMonolithicOnACleanDesign) {
  // Bound 8 as in memctrl_test's clean-design check: a genuine full
  // refutation with no budget. Deeper clean FC refutations on this design
  // grow out of test-suite range regardless of cubes.
  auto fc = MemCtrlFcOptions();
  fc.bmc.max_bound = 8;
  const auto build = MemCtrlBuilder();
  const core::SessionResult mono = core::CheckAccelerator(build, fc);

  const auto options = core::AqedOptions::Builder(fc)
                           .WithCubes(EagerCubes(/*jobs=*/2))
                           .Build();
  const core::SessionResult cubed = core::CheckAccelerator(build, options);

  EXPECT_FALSE(mono.bug_found());
  EXPECT_FALSE(cubed.bug_found());
  // Clean means every escalated depth was refuted by *all* of its cubes:
  // a single kUnknown cube would have left the refutation incomplete.
  EXPECT_EQ(cubed.aqed().bmc.outcome, bmc::BmcResult::Outcome::kBoundReached);
  EXPECT_TRUE(cubed.aqed().bmc.refutation_complete);
  EXPECT_GT(cubed.aqed().bmc.cube_escalations, 0u);
}

TEST(BmcCubeTest, FixedSeedReproducesTheRun) {
  const auto build = MemCtrlBuilder(accel::MemCtrlBug::kFifoPtrNoWrap);
  auto cube = EagerCubes(/*jobs=*/1);  // sequential: bit-for-bit repeatable
  cube.seed = 7;
  const auto options =
      core::AqedOptions::Builder(MemCtrlFcOptions()).WithCubes(cube).Build();

  const core::SessionResult first = core::CheckAccelerator(build, options);
  const core::SessionResult second = core::CheckAccelerator(build, options);
  ASSERT_TRUE(first.bug_found());
  ASSERT_TRUE(second.bug_found());
  EXPECT_EQ(first.kind(), second.kind());
  EXPECT_EQ(first.cex_cycles(), second.cex_cycles());
  EXPECT_EQ(first.aqed().bmc.cube_escalations,
            second.aqed().bmc.cube_escalations);
  EXPECT_EQ(first.aqed().bmc.cubes_solved, second.aqed().bmc.cubes_solved);
  EXPECT_EQ(first.conflicts(), second.conflicts());
}

// Concurrent cube workers racing to the first SAT cube, with reason-carrying
// cancellation of the siblings — the data-race surface the tsan preset
// exercises. The verdict must not depend on who wins the race.
TEST(BmcCubeTest, SiblingCancellationUnderConcurrentWorkers) {
  const auto build = MemCtrlBuilder(accel::MemCtrlBug::kFifoPtrNoWrap);
  const core::SessionResult mono =
      core::CheckAccelerator(build, MemCtrlFcOptions());
  ASSERT_TRUE(mono.bug_found());

  auto cube = EagerCubes(/*jobs=*/4);
  cube.num_split_vars = 3;  // 8 cubes racing on 4 workers
  const auto options =
      core::AqedOptions::Builder(MemCtrlFcOptions()).WithCubes(cube).Build();
  for (int run = 0; run < 3; ++run) {
    const core::SessionResult cubed = core::CheckAccelerator(build, options);
    ASSERT_TRUE(cubed.bug_found()) << run;
    // BMC deepens one frame at a time, so the counterexample depth — and
    // with it the trace length — is race-free even though the winning cube
    // is not.
    EXPECT_EQ(cubed.cex_cycles(), mono.cex_cycles()) << run;
    EXPECT_TRUE(cubed.aqed().bmc.trace_validated) << run;
  }
}

TEST(BmcCubeTest, CubeSolvedReasonIsDistinguishable) {
  // The new cancel reason must survive the reason/name plumbing: siblings
  // cancelled by a winning cube report kCubeSolved, not a generic cancel.
  sched::CancellationSource source;
  source.Cancel(sched::CancelReason::kCubeSolved);
  EXPECT_EQ(source.reason(), sched::CancelReason::kCubeSolved);
  EXPECT_STREQ(ToString(source.reason()), "cube-solved");
  EXPECT_EQ(sched::UnknownReasonFromCancel(source.reason()),
            UnknownReason::kCancelled);
}

TEST(BmcCubeDeathTest, ConflictingCancellationTokensAreRejected) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ir::TransitionSystem ts;
  auto& ctx = ts.ctx();
  const ir::NodeRef counter = ts.AddState("counter", ir::Sort::BitVec(4), 0);
  ts.SetNext(counter, ctx.Add(counter, ctx.Const(4, 1)));
  ts.AddBad(ctx.Eq(counter, ctx.Const(4, 9)), "deep");

  sched::CancellationSource a, b;
  bmc::BmcOptions options;
  options.max_bound = 4;
  options.cancel = a.token();
  options.solver_options.cancel = b.token();  // a *different* source: bug
  EXPECT_DEATH(bmc::RunBmc(ts, options), "arm only the top-level token");

  // The same token on both knobs is fine — that is the one-token contract.
  options.solver_options.cancel = options.cancel;
  const bmc::BmcResult result = bmc::RunBmc(ts, options);
  EXPECT_EQ(result.outcome, bmc::BmcResult::Outcome::kBoundReached);
}

// --- session integration -----------------------------------------------------

TEST(CubeSessionTest, EnqueueReturnsATypedHandle) {
  sched::VerificationSession session;
  core::AqedOptions options;
  options.bmc.max_bound = 3;
  const core::JobHandle handle =
      session.Enqueue(MemCtrlBuilder(), options, "fifo/clean");
  EXPECT_EQ(handle.index(), 0u);
  EXPECT_EQ(handle.label(), "fifo/clean");
  const core::SessionResult result = session.Wait();
  // Handle-taking accessors agree with the index-taking ones.
  EXPECT_EQ(result.bug_found(handle), result.bug_found(handle.index()));
  EXPECT_EQ(result.kind(handle), result.kind(handle.index()));
  EXPECT_EQ(result.conflicts(handle), result.conflicts(handle.index()));
  EXPECT_FALSE(result.bug_found(handle));
}

TEST(CubeSessionTest, SessionJobRunsWithCubeEscalation) {
  // The full stack: a session job whose BMC escalates into cubes. jobs = 0
  // makes the engine inherit the session's worker count.
  auto cube = EagerCubes(/*jobs=*/0);
  const auto options =
      core::AqedOptions::Builder(MemCtrlFcOptions()).WithCubes(cube).Build();
  core::SessionOptions session_options;
  session_options.jobs = 2;
  sched::VerificationSession session(session_options);
  const core::JobHandle handle =
      session.Enqueue(MemCtrlBuilder(accel::MemCtrlBug::kFifoPtrNoWrap),
                      options, "fifo/ptr_no_wrap");
  const core::SessionResult result = session.Wait();
  ASSERT_TRUE(result.bug_found(handle));
  EXPECT_GT(result.aqed(handle).bmc.cube_escalations, 0u);
  EXPECT_TRUE(result.aqed(handle).bmc.trace_validated);
}

TEST(CubeSessionTest, BuilderRejectsIncoherentCubeOptions) {
  bmc::BmcOptions::CubeEscalation cube;
  cube.conflict_threshold = 0;
  core::AqedOptions options;
  options.bmc.cube = cube;
  options.bmc.cube.enabled = true;
  EXPECT_FALSE(options.Validate().ok());
  options.bmc.cube.conflict_threshold = 100;
  options.bmc.cube.num_split_vars = 17;
  EXPECT_FALSE(options.Validate().ok());
  options.bmc.cube.num_split_vars = 3;
  EXPECT_TRUE(options.Validate().ok());
}

}  // namespace
}  // namespace aqed
