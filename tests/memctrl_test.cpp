// Memory-controller unit case study: every catalog bug must be caught by
// A-QED with the expected property (FC or RB) and a validated minimal
// counterexample; every correct configuration must pass; the conventional
// random flow must catch the non-corner bugs and miss the corner cases.
#include <gtest/gtest.h>

#include "accel/memctrl.h"
#include "aqed/checker.h"
#include "aqed/report.h"
#include "harness/conventional_flow.h"
#include "sim/simulator.h"

namespace aqed {
namespace {

using accel::BuildMemCtrl;
using accel::MemCtrlBug;
using accel::MemCtrlBugCatalog;
using accel::MemCtrlBugInfo;
using accel::MemCtrlConfig;
using accel::MemCtrlGolden;
using accel::MemCtrlResponseBound;

core::AqedOptions MemCtrlAqedOptions(MemCtrlConfig config) {
  core::AqedOptions options;
  core::RbOptions rb;
  rb.tau = MemCtrlResponseBound(config);
  rb.in_min = config == MemCtrlConfig::kDoubleBuffer ? 2 : 1;
  options.rb = rb;
  return options;
}

harness::CampaignOptions ConventionalOptions(MemCtrlConfig config) {
  harness::CampaignOptions options;
  options.num_seeds = 20;
  options.testbench.max_cycles = 300;   // one directed-test run
  options.testbench.data_pool = 6;
  options.testbench.hang_timeout = 200;
  // Results are compared when the test completes, as application-level
  // testbenches do — a failing conventional trace is the whole test.
  options.testbench.end_of_test_checking = true;
  // Stimulus assumptions of the hand-written testbenches — the blind spots
  // behind Fig. 5's escapes: every configuration's bench ties clock-enable
  // high; the line-buffer bench additionally keeps the host always ready
  // ("the element completes in six cycles anyway").
  options.testbench.pinned_inputs = {{"clk_en", 1}};
  if (config == MemCtrlConfig::kLineBuffer) {
    options.testbench.host_ready_prob = 256;
  }
  return options;
}

// --- simulation sanity for the three correct configurations ----------------

void DriveAndCheck(MemCtrlConfig config, uint32_t num_elems) {
  ir::TransitionSystem ts;
  const auto design = BuildMemCtrl(ts, config);
  ASSERT_TRUE(ts.Validate().ok());
  sim::Simulator sim(ts);
  const auto golden = MemCtrlGolden(config);

  Rng rng(7 + static_cast<uint64_t>(config));
  std::vector<std::vector<uint64_t>> expected;
  uint32_t sent = 0, received = 0;
  for (int cycle = 0; cycle < 500 && received < num_elems; ++cycle) {
    const bool try_send = sent < num_elems;
    sim.SetInput(design.acc.in_valid, try_send ? 1 : 0);
    std::vector<uint64_t> words;
    for (ir::NodeRef word : design.acc.data_elems[0]) {
      const uint64_t value = rng.NextBits(8);
      sim.SetInput(word, value);
      words.push_back(value);
    }
    sim.SetInput(design.acc.host_ready, 1);
    sim.SetInput(design.clk_en, 1);
    sim.Eval();
    if (try_send && sim.Value(design.acc.in_ready)) {
      expected.push_back(golden(words, {}));
      ++sent;
    }
    if (sim.Value(design.acc.out_valid)) {
      ASSERT_LT(received, expected.size()) << "output before input";
      EXPECT_EQ(sim.Value(design.acc.out_elems[0][0]),
                expected[received][0])
          << "element " << received << " config "
          << accel::MemCtrlConfigName(config);
      ++received;
    }
    sim.Step();
  }
  EXPECT_EQ(received, num_elems);
}

TEST(MemCtrlSim, FifoMovesDataInOrder) {
  DriveAndCheck(MemCtrlConfig::kFifo, 12);
}
TEST(MemCtrlSim, DoubleBufferMovesDataInOrder) {
  DriveAndCheck(MemCtrlConfig::kDoubleBuffer, 12);
}
TEST(MemCtrlSim, LineBufferComputesStencil) {
  DriveAndCheck(MemCtrlConfig::kLineBuffer, 8);
}

// --- A-QED on the correct configurations -----------------------------------

class MemCtrlCleanTest : public ::testing::TestWithParam<MemCtrlConfig> {};

TEST_P(MemCtrlCleanTest, CorrectConfigPassesAqed) {
  const auto options =
      core::AqedOptions::Builder(MemCtrlAqedOptions(GetParam()))
          .WithBound(8)  // genuine UNSAT up to the bound, no budget
          .Build();
  const auto result = core::CheckAccelerator(
      [&](ir::TransitionSystem& t) { return BuildMemCtrl(t, GetParam()).acc; },
      options);
  EXPECT_FALSE(result.bug_found())
      << core::FormatResult(result.ts(), result.aqed());
  EXPECT_EQ(result.aqed().bmc.outcome,
            bmc::BmcResult::Outcome::kBoundReached);
}

INSTANTIATE_TEST_SUITE_P(Configs, MemCtrlCleanTest,
                         ::testing::Values(MemCtrlConfig::kFifo,
                                           MemCtrlConfig::kDoubleBuffer,
                                           MemCtrlConfig::kLineBuffer),
                         [](const auto& info) {
                           return accel::MemCtrlConfigName(info.param);
                         });

// --- A-QED over the full bug catalog ----------------------------------------

class MemCtrlBugTest : public ::testing::TestWithParam<MemCtrlBugInfo> {};

TEST_P(MemCtrlBugTest, AqedCatchesWithExpectedProperty) {
  const MemCtrlBugInfo& info = GetParam();
  auto options = MemCtrlAqedOptions(info.config);
  options.fc_bound = 14;
  options.rb_bound = 20;
  // Bounded effort per depth: deep FC refutations give way to the RB pass
  // (industrial BMC practice; soundness of found bugs is unaffected).
  options.bmc.conflict_budget = 400000;
  const auto result = core::CheckAccelerator(
      [&](ir::TransitionSystem& t) {
        return BuildMemCtrl(t, info.config, info.bug).acc;
      },
      options);
  ASSERT_TRUE(result.bug_found())
      << info.name << ": " << core::SummarizeResult(result.aqed());
  EXPECT_TRUE(result.aqed().bmc.trace_validated);
  if (info.rb_expected) {
    EXPECT_EQ(result.kind(), core::BugKind::kResponseBound) << info.name;
  } else {
    EXPECT_TRUE(result.kind() == core::BugKind::kFunctionalConsistency ||
                result.kind() == core::BugKind::kEarlyOutput)
        << info.name << " detected as " << core::BugKindName(result.kind());
  }
  EXPECT_LE(result.cex_cycles(), 20u);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, MemCtrlBugTest,
    ::testing::ValuesIn(MemCtrlBugCatalog().begin(),
                        MemCtrlBugCatalog().end()),
    [](const auto& info) { return std::string(info.param.name); });

// --- conventional flow over the catalog --------------------------------------

class MemCtrlConventionalTest
    : public ::testing::TestWithParam<MemCtrlBugInfo> {};

TEST_P(MemCtrlConventionalTest, DetectionMatchesCornerCaseStatus) {
  const MemCtrlBugInfo& info = GetParam();
  const auto campaign = harness::RunCampaign(
      [&](ir::TransitionSystem& ts) {
        return BuildMemCtrl(ts, info.config, info.bug).acc;
      },
      MemCtrlGolden(info.config), ConventionalOptions(info.config));
  if (info.corner_case) {
    EXPECT_FALSE(campaign.bug_detected)
        << info.name << " should escape the conventional flow";
  } else {
    EXPECT_TRUE(campaign.bug_detected)
        << info.name << " should be caught by the conventional flow";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, MemCtrlConventionalTest,
    ::testing::ValuesIn(MemCtrlBugCatalog().begin(),
                        MemCtrlBugCatalog().end()),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MemCtrlConventionalTest, CorrectConfigsRunClean) {
  for (MemCtrlConfig config :
       {MemCtrlConfig::kFifo, MemCtrlConfig::kDoubleBuffer,
        MemCtrlConfig::kLineBuffer}) {
    harness::CampaignOptions options = ConventionalOptions(config);
    options.num_seeds = 2;
    options.testbench.max_cycles = 3000;
    const auto campaign = harness::RunCampaign(
        [&](ir::TransitionSystem& ts) {
          return BuildMemCtrl(ts, config).acc;
        },
        MemCtrlGolden(config), options);
    EXPECT_FALSE(campaign.bug_detected)
        << accel::MemCtrlConfigName(config) << " outcome "
        << static_cast<int>(campaign.outcome) << " at cycle "
        << campaign.detection_cycle;
  }
}

// With unconstrained stimulus (clock-enable and host back-pressure toggled),
// even the random flow can reach the corner cases — the escapes above are a
// property of the testbench's stimulus assumptions, not of simulation.
TEST(MemCtrlConventionalTest, UnpinnedStimulusReachesCornerCase) {
  harness::CampaignOptions options;
  options.num_seeds = 10;
  options.testbench.max_cycles = 30000;
  options.testbench.data_pool = 4;
  const auto campaign = harness::RunCampaign(
      [](ir::TransitionSystem& ts) {
        return BuildMemCtrl(ts, MemCtrlConfig::kFifo,
                            MemCtrlBug::kFifoClockEnableRd)
            .acc;
      },
      MemCtrlGolden(MemCtrlConfig::kFifo), options);
  EXPECT_TRUE(campaign.bug_detected);
}

}  // namespace
}  // namespace aqed
