// A-QED² functional decomposition tests: cut-point declaration validation
// (names resolve, cuts partition the design), fragment verdicts vs the
// monolithic check on a small configuration where both complete, verdict
// determinism across worker counts, isomorphic-fragment dedup, the
// cross-run SolveCache, and the acceptance gate — the bench-sized widepipe
// is UNKNOWN (deadline) monolithically but verifies clean decomposed, and a
// bug injected into one stage is caught decomposed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "accel/widepipe.h"
#include "aqed/checker.h"
#include "decomp/decomposition.h"
#include "decomp/session.h"
#include "ir/digest.h"
#include "service/cache.h"

namespace aqed::decomp {
namespace {

// The small widepipe: monolithically tractable (sub-second), so composed
// and monolithic verdicts can be compared directly.
accel::WidePipeConfig SmallConfig(int32_t bug_stage = -1) {
  return {.lanes = 2, .stages = 2, .width = 4, .bug_stage = bug_stage};
}

core::AqedOptions MonoOptions(const accel::WidePipeConfig& config) {
  return core::AqedOptions::Builder()
      .WithBound(accel::WidePipeMonolithicBound(config))
      .Build();
}

DecompositionResult RunDecomposed(const accel::WidePipeConfig& config,
                                  DecompOptions options = {}) {
  options.aqed = MonoOptions(config);
  DecomposedSession session(accel::WidePipeDecomposition(config), options);
  StatusOr<DecompositionResult> result = session.Run();
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.status().message());
  return std::move(result).value();
}

// --- declaration validation --------------------------------------------------

TEST(DecompositionTest, AnalyzeReportsThePartition) {
  const accel::WidePipeConfig config = SmallConfig();
  const StatusOr<CutCoverage> coverage =
      accel::WidePipeDecomposition(config).Analyze();
  ASSERT_TRUE(coverage.ok()) << coverage.status().message();
  ASSERT_EQ(coverage.value().subs.size(), config.stages);
  uint32_t claimed = 0;
  for (const CutCoverage::Sub& sub : coverage.value().subs) {
    claimed += sub.states_claimed;
  }
  // The partition is total: every parent state claimed exactly once.
  EXPECT_EQ(claimed, coverage.value().total_states);
  // Stage 0 owns the real host inputs (no cuts); stage 1 cuts at stage 0's
  // valid + lane registers.
  EXPECT_EQ(coverage.value().subs[0].cut_signals, 0u);
  EXPECT_EQ(coverage.value().subs[1].cut_signals, 1u + config.lanes);
}

TEST(DecompositionTest, UnknownSignalNamesAreValidationErrors) {
  const accel::WidePipeConfig config = SmallConfig();
  Decomposition decomposition("widepipe", [config](ir::TransitionSystem& ts) {
    return accel::BuildWidePipe(ts, config).acc;
  });
  SubAccelerator sub("stage1");
  sub.Cut("s0.valid")
      .Cut("s0.no_such_reg")  // typo'd cut
      .WithInValid("s0.valid")
      .WithDataElem({"s0.r0", "s0.r1"})
      .WithOutElem({"s1.r0", "s1.r1"})
      .WithInReady("one")
      .WithHostReady("one")
      .WithOutValid("s1.valid");
  decomposition.Add(std::move(sub));
  const Status status = decomposition.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("s0.no_such_reg"), std::string::npos);
}

TEST(DecompositionTest, UnclaimedStatesFailThePartitionCheck) {
  const accel::WidePipeConfig config = SmallConfig();
  Decomposition decomposition("widepipe", [config](ir::TransitionSystem& ts) {
    return accel::BuildWidePipe(ts, config).acc;
  });
  // Only stage 1 declared: stage 0's registers are nobody's.
  SubAccelerator sub("stage1");
  sub.Cut({"s0.valid", "s0.r0", "s0.r1"})
      .WithInValid("s0.valid")
      .WithDataElem({"s0.r0", "s0.r1"})
      .WithOutElem({"s1.r0", "s1.r1"})
      .WithInReady("one")
      .WithHostReady("one")
      .WithOutValid("s1.valid");
  decomposition.Add(std::move(sub));
  const Status status = decomposition.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unclaimed states"), std::string::npos);
  EXPECT_NE(status.message().find("s0.r0"), std::string::npos);
}

TEST(DecompositionTest, DoublyClaimedStatesFailThePartitionCheck) {
  const accel::WidePipeConfig config = SmallConfig();
  // Both stages declared without the cut between them: stage 1's cone
  // reaches through stage 0's registers, so every stage-0 state is claimed
  // twice.
  Decomposition decomposition("widepipe", [config](ir::TransitionSystem& ts) {
    return accel::BuildWidePipe(ts, config).acc;
  });
  SubAccelerator stage0("stage0");
  stage0.WithInValid("in_valid")
      .WithDataElem({"in0", "in1"})
      .WithOutElem({"s0.r0", "s0.r1"})
      .WithInReady("one")
      .WithHostReady("one")
      .WithOutValid("s0.valid");
  SubAccelerator stage1("stage1");
  stage1.WithInValid("in_valid")
      .WithDataElem({"in0", "in1"})
      .WithOutElem({"s1.r0", "s1.r1"})
      .WithInReady("one")
      .WithHostReady("one")
      .WithOutValid("s1.valid");
  decomposition.Add(std::move(stage0)).Add(std::move(stage1));
  const Status status = decomposition.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("claimed by multiple"), std::string::npos);
}

// --- composed vs monolithic verdicts ----------------------------------------

TEST(DecompTest, CleanComposedVerdictMatchesTheMonolithicCheck) {
  const accel::WidePipeConfig config = SmallConfig();
  const core::SessionResult mono = core::CheckAccelerator(
      [config](ir::TransitionSystem& ts) {
        return accel::BuildWidePipe(ts, config).acc;
      },
      MonoOptions(config));
  ASSERT_FALSE(mono.bug_found());
  ASSERT_EQ(mono.unknown_reason(), UnknownReason::kNone);

  const DecompositionResult decomposed = RunDecomposed(config);
  EXPECT_TRUE(decomposed.clean());
  EXPECT_FALSE(decomposed.bug_found());
  EXPECT_EQ(decomposed.num_unknown(), 0u);
  EXPECT_EQ(decomposed.subs.size(), config.stages);
}

TEST(DecompTest, BuggyDesignIsCaughtByBothFlows) {
  const accel::WidePipeConfig config = SmallConfig(/*bug_stage=*/1);
  const core::SessionResult mono = core::CheckAccelerator(
      [config](ir::TransitionSystem& ts) {
        return accel::BuildWidePipe(ts, config).acc;
      },
      MonoOptions(config));
  EXPECT_TRUE(mono.bug_found());

  const DecompositionResult decomposed = RunDecomposed(config);
  ASSERT_TRUE(decomposed.bug_found());
  // The bug is localized: decomposition names the offending fragment.
  EXPECT_EQ(decomposed.FirstBug()->name, "stage1");
  EXPECT_EQ(decomposed.FirstBug()->classification,
            fault::Classification::kDetectedFc);
  EXPECT_GT(decomposed.FirstBug()->cex_cycles, 0u);
}

TEST(DecompTest, BugInAnySingleStageIsDetected) {
  // Three stages; the tailgate bug walks through first / middle / last.
  for (int32_t bug_stage = 0; bug_stage < 3; ++bug_stage) {
    accel::WidePipeConfig config = SmallConfig(bug_stage);
    config.stages = 3;
    const DecompositionResult result = RunDecomposed(config);
    ASSERT_TRUE(result.bug_found()) << "bug_stage=" << bug_stage;
    EXPECT_EQ(result.FirstBug()->name,
              "stage" + std::to_string(bug_stage));
  }
}

// --- determinism and dedup ---------------------------------------------------

TEST(DecompTest, VerdictDigestIsIdenticalAcrossWorkerCounts) {
  const accel::WidePipeConfig config = SmallConfig(/*bug_stage=*/1);
  DecompOptions seq;
  seq.session.jobs = 1;
  DecompOptions par;
  par.session.jobs = 8;
  const DecompositionResult a = RunDecomposed(config, seq);
  const DecompositionResult b = RunDecomposed(config, par);
  EXPECT_EQ(a.VerdictDigest(), b.VerdictDigest());
  EXPECT_NE(a.VerdictDigest(), 0u);
}

TEST(DecompTest, IsomorphicCleanStagesCollapseToOneSolve) {
  accel::WidePipeConfig config = SmallConfig();
  config.stages = 4;
  const DecompositionResult result = RunDecomposed(config);
  ASSERT_TRUE(result.clean());
  // The stages are structurally identical under the anonymous digest, so
  // one representative is solved and the rest alias onto it.
  EXPECT_EQ(result.jobs_enqueued, 1u);
  EXPECT_EQ(result.deduped, config.stages - 1);
  for (size_t i = 1; i < result.subs.size(); ++i) {
    EXPECT_EQ(result.subs[i].fragment_digest, result.subs[0].fragment_digest);
    EXPECT_TRUE(result.subs[i].deduped);
  }
}

TEST(DecompTest, BuggyStageDigestsDifferentlyAndIsSolvedSeparately) {
  const accel::WidePipeConfig config = SmallConfig(/*bug_stage=*/1);
  const DecompositionResult result = RunDecomposed(config);
  ASSERT_TRUE(result.bug_found());
  // The shadow/b2b registers make stage 1 structurally distinct: it must
  // never inherit the clean stage's verdict.
  EXPECT_NE(result.subs[0].fragment_digest, result.subs[1].fragment_digest);
  EXPECT_FALSE(result.subs[1].deduped);
  EXPECT_FALSE(result.subs[1].cached);
}

TEST(DecompTest, SecondRunIsServedFromTheSolveCache) {
  const accel::WidePipeConfig config = SmallConfig();
  service::SolveCache cache;
  DecompOptions options;
  options.cache = &cache;

  const DecompositionResult cold = RunDecomposed(config, options);
  ASSERT_TRUE(cold.clean());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.jobs_enqueued, 1u);

  const DecompositionResult warm = RunDecomposed(config, options);
  ASSERT_TRUE(warm.clean());
  // Every fragment answered before the scheduler: hits peel off ahead of
  // dedup, so nothing is enqueued at all.
  EXPECT_EQ(warm.cache_hits, config.stages);
  EXPECT_EQ(warm.jobs_enqueued, 0u);
  for (const SubVerdict& sub : warm.subs) {
    EXPECT_TRUE(sub.cached);
  }
  EXPECT_EQ(cold.VerdictDigest(), warm.VerdictDigest());
}

TEST(DecompTest, CacheRoundTripsThroughDiskAcrossSessions) {
  const std::string path =
      "/tmp/aqed_decomp_cache_" + std::to_string(::getpid()) + ".jsonl";
  const accel::WidePipeConfig config = SmallConfig();
  {
    service::SolveCache cache;
    DecompOptions options;
    options.cache = &cache;
    ASSERT_TRUE(RunDecomposed(config, options).clean());
    ASSERT_TRUE(cache.Save(path).ok());
  }
  {
    service::SolveCache cache;
    ASSERT_TRUE(cache.Load(path).ok());
    DecompOptions options;
    options.cache = &cache;
    const DecompositionResult warm = RunDecomposed(config, options);
    EXPECT_TRUE(warm.clean());
    EXPECT_EQ(warm.jobs_enqueued, 0u);
    EXPECT_EQ(warm.cache_hits, config.stages);
  }
  std::remove(path.c_str());
}

// --- the acceptance gate: too big monolithically, tractable decomposed ------

TEST(DecompAcceptanceTest, BenchConfigBlowsTheMonolithicDeadline) {
  const accel::WidePipeConfig config = accel::WidePipeBenchConfig();
  core::SessionOptions session;
  session.jobs = 1;
  session.deadline_ms = 2000;
  session.retry.max_retries = 0;
  const core::SessionResult mono = core::CheckAccelerator(
      [config](ir::TransitionSystem& ts) {
        return accel::BuildWidePipe(ts, config).acc;
      },
      MonoOptions(config), session);
  EXPECT_FALSE(mono.bug_found());
  EXPECT_EQ(mono.unknown_reason(), UnknownReason::kDeadline);
}

TEST(DecompAcceptanceTest, BenchConfigVerifiesCleanDecomposed) {
  const accel::WidePipeConfig config = accel::WidePipeBenchConfig();
  DecompOptions options;
  options.session.jobs = 2;
  const DecompositionResult result = RunDecomposed(config, options);
  EXPECT_TRUE(result.clean());
  // All six stages are isomorphic: the whole design costs one solve.
  EXPECT_EQ(result.jobs_enqueued, 1u);
  EXPECT_EQ(result.deduped, config.stages - 1);
}

TEST(DecompAcceptanceTest, BenchConfigBugIsCaughtDecomposed) {
  accel::WidePipeConfig config = accel::WidePipeBenchConfig();
  config.bug_stage = 3;
  DecompOptions options;
  options.session.jobs = 2;
  // First-bug-wins across the whole decomposition: the buggy fragment's
  // (fast, SAT) refutation cancels the clean stages' solve.
  options.session.cancel = core::SessionOptions::CancelPolicy::kSession;
  const DecompositionResult result = RunDecomposed(config, options);
  ASSERT_TRUE(result.bug_found());
  EXPECT_EQ(result.FirstBug()->name, "stage3");
  EXPECT_EQ(result.FirstBug()->classification,
            fault::Classification::kDetectedFc);
}

}  // namespace
}  // namespace aqed::decomp
