// Multi-action accelerator (full Def. 1 model, |A| = 4): golden agreement
// over all actions, clean A-QED + SAC pass, and the action-dependent buggy
// variants caught by FC. Functional consistency here compares ad(in) —
// action AND data — between the original and the duplicate.
#include <gtest/gtest.h>

#include "accel/multi_action.h"
#include "aqed/checker.h"
#include "aqed/report.h"
#include "harness/conventional_flow.h"
#include "sim/simulator.h"

namespace aqed {
namespace {

using accel::AluBug;
using accel::AluConfig;
using accel::AluGoldenOp;
using accel::BuildAlu;

TEST(AluGoldenTest, OpsBehave) {
  EXPECT_EQ(AluGoldenOp(0, 200, 100), 44u);   // add mod 256
  EXPECT_EQ(AluGoldenOp(1, 5, 7), 254u);      // sub wraps
  EXPECT_EQ(AluGoldenOp(2, 0xF0, 0x0F), 0xFEu);  // (xor) << 1
  EXPECT_EQ(AluGoldenOp(3, 3, 2), 12u);       // 3 << 2
  EXPECT_EQ(AluGoldenOp(3, 3, 6), 12u);       // shift amount masked to 2 bits
}

TEST(AluSim, MatchesGoldenAcrossActions) {
  ir::TransitionSystem ts;
  const auto design = BuildAlu(ts, {});
  ASSERT_TRUE(ts.Validate().ok());
  sim::Simulator sim(ts);
  Rng rng(31);

  uint32_t sent = 0, received = 0;
  std::vector<uint64_t> expected;
  for (int cycle = 0; cycle < 600 && received < 40; ++cycle) {
    const bool try_send = sent < 40 && rng.Chance(3, 4);
    const uint64_t action = rng.NextBelow(4);
    const uint64_t a = rng.NextBits(8);
    const uint64_t b = rng.NextBits(8);
    sim.SetInput(design.acc.in_valid, try_send ? 1 : 0);
    sim.SetInput(design.acc.data_elems[0][0], action);
    sim.SetInput(design.acc.data_elems[0][1], a);
    sim.SetInput(design.acc.data_elems[0][2], b);
    sim.SetInput(design.acc.host_ready, 1);
    sim.Eval();
    if (try_send && sim.Value(design.acc.in_ready)) {
      expected.push_back(AluGoldenOp(action, a, b));
      ++sent;
    }
    if (sim.Value(design.acc.out_valid)) {
      ASSERT_LT(received, expected.size());
      EXPECT_EQ(sim.Value(design.acc.out_elems[0][0]), expected[received])
          << "txn " << received;
      ++received;
    }
    sim.Step();
  }
  EXPECT_EQ(received, 40u);
}

core::AqedOptions AluOptions(bool clean) {
  core::AqedOptions options;
  core::RbOptions rb;
  rb.tau = accel::AluResponseBound();
  options.rb = rb;
  options.fc_bound = clean ? 8 : 12;
  options.rb_bound = clean ? 10 : 14;
  if (!clean) options.bmc.conflict_budget = 400000;
  return options;
}

TEST(AluAqed, CleanDesignPassesFcRbAndSac) {
  const auto options = core::AqedOptions::Builder(AluOptions(/*clean=*/true))
                           .WithSacSpec(accel::AluSpec())
                           .WithSacBound(8)
                           .Build();
  const auto result = core::CheckAccelerator(
      [](ir::TransitionSystem& t) { return BuildAlu(t, {}).acc; }, options);
  EXPECT_FALSE(result.bug_found())
      << core::FormatResult(result.ts(), result.aqed());
}

class AluBugTest : public ::testing::TestWithParam<AluBug> {};

TEST_P(AluBugTest, ActionDependentBugCaughtByFc) {
  AluConfig config;
  config.bug = GetParam();
  const auto result = core::CheckAccelerator(
      [&](ir::TransitionSystem& t) { return BuildAlu(t, config).acc; },
      AluOptions(/*clean=*/false));
  ASSERT_TRUE(result.bug_found())
      << accel::AluBugName(GetParam()) << ": "
      << core::SummarizeResult(result.aqed());
  EXPECT_EQ(result.kind(), core::BugKind::kFunctionalConsistency);
  EXPECT_TRUE(result.aqed().bmc.trace_validated);
  EXPECT_LE(result.cex_cycles(), 14u);
}

INSTANTIATE_TEST_SUITE_P(Variants, AluBugTest,
                         ::testing::Values(AluBug::kOpcodeLatchGlitch,
                                           AluBug::kScaleSticky),
                         [](const auto& info) {
                           return std::string(accel::AluBugName(info.param));
                         });

TEST(AluConventional, RandomFlowCatchesBothVariants) {
  for (AluBug bug : {AluBug::kOpcodeLatchGlitch, AluBug::kScaleSticky}) {
    AluConfig config;
    config.bug = bug;
    harness::CampaignOptions options;
    options.num_seeds = 4;
    options.testbench.max_cycles = 10000;
    const auto campaign = harness::RunCampaign(
        [&](ir::TransitionSystem& ts) { return BuildAlu(ts, config).acc; },
        accel::AluGolden(), options);
    EXPECT_TRUE(campaign.bug_detected) << accel::AluBugName(bug);
  }
}

}  // namespace
}  // namespace aqed
