// Response-bound (RB) checking on dataflow-style accelerators: the two RB
// bug classes of the paper's Table 2.
//
//   * Optical flow (Rosetta abstraction): an inter-stage FIFO sized one
//     entry too small deadlocks the pipeline — caught by RB part (2): a
//     captured input whose output never arrives although the host stays
//     ready for tau cycles.
//   * Custom dataflow design: a credit-return miswiring leaks credits until
//     in_ready stays low forever — caught by RB part (1): the input-ready
//     signal must re-assert within a bound.
#include <cstdio>

#include "accel/dataflow.h"
#include "accel/optflow.h"
#include "aqed/checker.h"
#include "aqed/report.h"

using namespace aqed;

int main() {
  std::printf("Hunting handshake deadlocks with the response-bound "
              "property\n\n");

  {
    const auto options =
        core::AqedOptions::Builder()
            .WithoutFc()  // focus this run on responsiveness
            .WithRb({.tau = accel::OptFlowResponseBound()})
            .WithRbBound(24)
            .Build();
    const auto result = core::CheckAccelerator(
        [](ir::TransitionSystem& t) {
          return accel::BuildOptFlow(t, {.bug_fifo_sizing = true}).acc;
        },
        options);
    std::printf("optical flow (FIFO sized 1 instead of 2): %s\n",
                core::SummarizeResult(result.aqed()).c_str());
    if (result.bug_found()) {
      std::printf("%s\n",
                  core::FormatResult(result.ts(), result.aqed()).c_str());
    }
  }

  {
    core::RbOptions rb;
    rb.tau = accel::DataflowResponseBound();
    rb.rdin_bound = accel::DataflowRdinBound();
    const auto options = core::AqedOptions::Builder()
                             .WithoutFc()
                             .WithRb(rb)
                             .WithRbBound(24)
                             .Build();
    const auto result = core::CheckAccelerator(
        [](ir::TransitionSystem& t) {
          return accel::BuildDataflow(t, {.bug_credit_leak = true}).acc;
        },
        options);
    std::printf("dataflow (credit leak): %s\n",
                core::SummarizeResult(result.aqed()).c_str());
    if (result.bug_found()) {
      std::printf("%s\n",
                  core::FormatResult(result.ts(), result.aqed()).c_str());
    }
  }
  return 0;
}
