// A-QED module customization (paper Sec. IV.B): an AES accelerator that
// encrypts batches of blocks under one common key.
//
// The key is declared as a *shared-context* signal of the interface: the FC
// monitor latches it with the original transaction and only labels a
// duplicate whose batch uses the same key — exactly the customization the
// paper describes for its AES case study.
#include <cstdio>

#include "accel/aes.h"
#include "aqed/checker.h"
#include "aqed/report.h"

using namespace aqed;

namespace {

void Check(accel::AesBug bug) {
  accel::AesConfig config;
  config.rounds = 2;
  config.batch_size = 2;  // two blocks per handshake, common key
  config.bug = bug;

  const auto options =
      core::AqedOptions::Builder()
          .WithRb({.tau = accel::AesResponseBound(config)})
          .WithFcBound(bug == accel::AesBug::kNone ? 8 : 14)
          .WithRbBound(bug == accel::AesBug::kNone ? 10 : 20)
          .WithConflictBudget(400000)
          .Build();

  const auto result = core::CheckAccelerator(
      [&](ir::TransitionSystem& t) {
        auto design = accel::BuildAes(t, config);
        // design.acc.shared_context == {key}: the common-key customization.
        return design.acc;
      },
      options);
  std::printf("AES (%s): %s\n", accel::AesBugName(bug),
              core::SummarizeResult(result.aqed()).c_str());
  if (result.bug_found()) {
    std::printf("%s\n", core::FormatResult(result.ts(), result.aqed()).c_str());
  }
}

}  // namespace

int main() {
  std::printf("AES with a common key across each batch (shared-context "
              "FC checking)\n\n");
  Check(accel::AesBug::kNone);
  std::printf("\n");
  // v3 samples the key too late — the transaction is encrypted under
  // whatever key the host bus happens to carry at issue time.
  Check(accel::AesBug::kV3KeySampleLate);
  return 0;
}
