// Case study walk-through: stand-alone verification of the memory-controller
// unit's configurations (paper Sec. V.A).
//
// Shows the workflow an accelerator team would run per configuration:
// verify the clean design up to a bound, then demonstrate what A-QED reports
// on two representative regressions — the clock-enable corner case that
// escaped the conventional flow, and the FIFO-full deadlock found through
// the response-bound property.
#include <cstdio>

#include "accel/memctrl.h"
#include "aqed/checker.h"
#include "aqed/report.h"

using namespace aqed;

namespace {

core::AqedOptions StudyOptions(accel::MemCtrlConfig config) {
  core::AqedOptions options;
  core::RbOptions rb;
  rb.tau = accel::MemCtrlResponseBound(config);
  rb.in_min = config == accel::MemCtrlConfig::kDoubleBuffer ? 2 : 1;
  options.rb = rb;
  options.fc_bound = 14;
  options.rb_bound = 20;
  options.bmc.conflict_budget = 400000;
  return options;
}

void Report(const char* title, accel::MemCtrlConfig config,
            accel::MemCtrlBug bug, uint32_t clean_bound = 0) {
  auto options = StudyOptions(config);
  if (clean_bound > 0) {
    options.fc_bound = clean_bound;
    options.rb_bound = clean_bound;
    options.bmc.conflict_budget = -1;
  }
  const auto result = core::CheckAccelerator(
      [&](ir::TransitionSystem& t) {
        return accel::BuildMemCtrl(t, config, bug).acc;
      },
      options);
  std::printf("[%s / %s] %s\n", accel::MemCtrlConfigName(config), title,
              core::SummarizeResult(result.aqed()).c_str());
  if (result.bug_found()) {
    std::printf("%s\n", core::FormatResult(result.ts(), result.aqed()).c_str());
  }
}

}  // namespace

int main() {
  std::printf("Memory-controller unit verification with A-QED\n");
  std::printf("==============================================\n\n");

  std::printf("-- clean configurations (expect PASS up to the bound) --\n");
  Report("clean", accel::MemCtrlConfig::kFifo, accel::MemCtrlBug::kNone, 8);
  Report("clean", accel::MemCtrlConfig::kDoubleBuffer,
         accel::MemCtrlBug::kNone, 8);
  Report("clean", accel::MemCtrlConfig::kLineBuffer, accel::MemCtrlBug::kNone,
         8);

  std::printf("\n-- the clock-enable corner case (escaped the conventional "
              "flow; paper Fig. 2 class) --\n");
  Report("clock-enable bug", accel::MemCtrlConfig::kFifo,
         accel::MemCtrlBug::kFifoClockEnableRd);

  std::printf("-- FIFO-full deadlock (the study's one RB detection) --\n");
  Report("stall deadlock", accel::MemCtrlConfig::kFifo,
         accel::MemCtrlBug::kFifoStallDeadlock);
  return 0;
}
