// Quickstart: verify the paper's motivating accelerator (Fig. 2) with
// A-QED in ~30 lines of user code.
//
//   1. Build (or import) your accelerator as a transition system.
//   2. Describe its ready-valid interface (AcceleratorInterface).
//   3. Call CheckAccelerator — no properties, no golden model, no spec.
//
// The checker instruments the design with the A-QED module (functional
// consistency + response bound) and runs bounded model checking; any
// counterexample is replayed on the simulator before being reported.
#include <cstdio>
#include <fstream>

#include "accel/motivating.h"
#include "aqed/checker.h"
#include "aqed/report.h"
#include "bmc/vcd.h"

using namespace aqed;

namespace {

void Check(bool inject_bug) {
  accel::MotivatingConfig config;
  config.data_width = 4;
  config.bug_clock_enable = inject_bug;  // Fig. 2: Buffer 4 loses clock_enable

  const auto options =
      core::AqedOptions::Builder()
          .WithRb({.tau = 24})  // the only design parameter A-QED needs
          .WithFcBound(inject_bug ? 24 : 9)
          .WithRbBound(12)
          .Build();

  const core::SessionResult result = core::CheckAccelerator(
      [&](ir::TransitionSystem& t) {
        auto design = accel::BuildMotivating(t, config);
        return design.acc;  // in_valid/in_ready/host_ready/out_valid + data
      },
      options);

  std::printf("%s design: %s\n", inject_bug ? "buggy " : "correct",
              core::SummarizeResult(result.aqed()).c_str());
  if (result.bug_found()) {
    std::printf("%s", core::FormatResult(result.ts(), result.aqed()).c_str());
    // Counterexamples also export as waveforms for GTKWave & friends.
    std::ofstream vcd("quickstart_counterexample.vcd");
    bmc::WriteVcd(result.ts(), result.aqed().bmc.trace, vcd);
    std::printf("(waveform written to quickstart_counterexample.vcd)\n");
  }
}

}  // namespace

int main() {
  std::printf("A-QED quickstart — motivating example from the paper "
              "(four buffers, round-robin controller, clock enable)\n\n");
  Check(/*inject_bug=*/false);
  std::printf("\n");
  Check(/*inject_bug=*/true);
  std::printf(
      "\nNote: no specification or golden model was needed — the bug is a\n"
      "violation of functional consistency (same input, different result),\n"
      "found as a minimal-length trace and validated by simulator replay.\n");
  return 0;
}
