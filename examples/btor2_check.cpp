// Command-line model checker over BTOR2 files.
//
//   btor2_check [--kind] [--max-bound N] [--vcd out.vcd] design.btor2
//
// Loads a BTOR2 model (e.g. one produced by ir::ExportBtor2, or an external
// design), runs BMC (default) or k-induction (--kind) on its bad properties,
// and prints the verdict; counterexamples can be written as VCD waveforms.
// This is the adoption path for users who have designs in standard formats
// rather than in this library's C++ builder API.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bmc/engine.h"
#include "bmc/kinduction.h"
#include "bmc/vcd.h"
#include "ir/btor2.h"

using namespace aqed;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--kind] [--max-bound N] [--vcd out.vcd] "
               "design.btor2\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool use_kinduction = false;
  uint32_t max_bound = 32;
  std::string vcd_path;
  std::string input_path;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kind") == 0) {
      use_kinduction = true;
    } else if (std::strcmp(argv[i], "--max-bound") == 0 && i + 1 < argc) {
      max_bound = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--vcd") == 0 && i + 1 < argc) {
      vcd_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else {
      input_path = argv[i];
    }
  }
  if (input_path.empty() || max_bound == 0) return Usage(argv[0]);

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", input_path.c_str());
    return 2;
  }
  auto imported = ir::ImportBtor2(in);
  if (!imported.ok()) {
    std::fprintf(stderr, "error: %s\n", imported.status().message().c_str());
    return 2;
  }
  const auto& ts = *imported.value();
  if (const Status valid = ts.Validate(); !valid.ok()) {
    std::fprintf(stderr, "error: invalid model: %s\n",
                 valid.message().c_str());
    return 2;
  }
  if (ts.bads().empty()) {
    std::fprintf(stderr, "error: model declares no bad properties\n");
    return 2;
  }
  std::printf("%s: %u nodes, %zu inputs, %zu states, %zu bads\n",
              input_path.c_str(), ts.ctx().num_nodes(), ts.inputs().size(),
              ts.states().size(), ts.bads().size());

  const bmc::Trace* trace = nullptr;
  int exit_code = 0;
  bmc::BmcResult bmc_result;
  bmc::KInductionResult kind_result;
  if (use_kinduction) {
    bmc::KInductionOptions options;
    options.max_k = max_bound;
    kind_result = RunKInduction(ts, options);
    switch (kind_result.outcome) {
      case bmc::KInductionResult::Outcome::kProved:
        std::printf("PROVED at k=%u (%.3f s)\n", kind_result.k,
                    kind_result.seconds);
        break;
      case bmc::KInductionResult::Outcome::kCounterexample:
        std::printf("COUNTEREXAMPLE: %s, %u cycles (%.3f s)\n",
                    kind_result.trace.bad_label.c_str(),
                    kind_result.trace.length(), kind_result.seconds);
        trace = &kind_result.trace;
        exit_code = 1;
        break;
      case bmc::KInductionResult::Outcome::kUnknown:
        std::printf("UNKNOWN: not %u-inductive (%.3f s)\n", max_bound,
                    kind_result.seconds);
        exit_code = 3;
        break;
    }
  } else {
    bmc::BmcOptions options;
    options.max_bound = max_bound;
    bmc_result = RunBmc(ts, options);
    switch (bmc_result.outcome) {
      case bmc::BmcResult::Outcome::kCounterexample:
        std::printf("COUNTEREXAMPLE: %s, %u cycles (%.3f s, %llu "
                    "conflicts)\n",
                    bmc_result.trace.bad_label.c_str(),
                    bmc_result.trace.length(), bmc_result.seconds,
                    static_cast<unsigned long long>(bmc_result.conflicts));
        std::printf("%s", FormatTrace(ts, bmc_result.trace).c_str());
        trace = &bmc_result.trace;
        exit_code = 1;
        break;
      case bmc::BmcResult::Outcome::kBoundReached:
        std::printf("PASS up to bound %u (%.3f s, %llu conflicts)\n",
                    bmc_result.frames_explored, bmc_result.seconds,
                    static_cast<unsigned long long>(bmc_result.conflicts));
        break;
      case bmc::BmcResult::Outcome::kUnknown:
        std::printf("UNKNOWN (budget exhausted)\n");
        exit_code = 3;
        break;
    }
  }

  if (trace != nullptr && !vcd_path.empty()) {
    std::ofstream vcd(vcd_path);
    bmc::WriteVcd(ts, *trace, vcd);
    std::printf("waveform written to %s\n", vcd_path.c_str());
  }
  return exit_code;
}
