#include "sim/simulator.h"

#include <array>

#include "ir/eval.h"

namespace aqed::sim {

using ir::Node;
using ir::NodeRef;
using ir::Op;
using ir::Sort;

Simulator::Simulator(const ir::TransitionSystem& ts) : ts_(ts) {
  scalar_.resize(ts_.ctx().num_nodes(), 0);
  array_.resize(ts_.ctx().num_nodes());
  Reset();
}

void Simulator::Reset() {
  cycle_ = 0;
  evaluated_ = false;
  input_scalar_.clear();
  state_scalar_.clear();
  state_array_.clear();
  for (NodeRef state : ts_.states()) {
    const Sort& sort = ts_.ctx().sort(state);
    const uint64_t init = ts_.has_init(state) ? ts_.init_value(state) : 0;
    if (sort.is_bitvec()) {
      state_scalar_[state] = init;
    } else {
      state_array_[state].assign(sort.num_elements(), init);
    }
  }
}

void Simulator::SetState(NodeRef state, uint64_t value) {
  const Sort& sort = ts_.ctx().sort(state);
  AQED_CHECK(sort.is_bitvec(), "SetState on array state");
  state_scalar_[state] = Truncate(value, sort.width);
  evaluated_ = false;
}

void Simulator::SetArrayState(NodeRef state, std::vector<uint64_t> values) {
  const Sort& sort = ts_.ctx().sort(state);
  AQED_CHECK(sort.is_array(), "SetArrayState on scalar state");
  AQED_CHECK(values.size() == sort.num_elements(),
             "SetArrayState size mismatch");
  for (auto& value : values) value = Truncate(value, sort.elem_width);
  state_array_[state] = std::move(values);
  evaluated_ = false;
}

void Simulator::SetInput(NodeRef input, uint64_t value) {
  const Sort& sort = ts_.ctx().sort(input);
  AQED_CHECK(sort.is_bitvec(), "array inputs are not supported");
  input_scalar_[input] = Truncate(value, sort.width);
  evaluated_ = false;
}

void Simulator::EvalNode(NodeRef ref) {
  const Node& node = ts_.ctx().node(ref);
  switch (node.op) {
    case Op::kConst:
      scalar_[ref] = node.const_val;
      return;
    case Op::kConstArray:
      array_[ref].assign(node.sort.num_elements(),
                         scalar_[node.operands[0]]);
      return;
    case Op::kInput: {
      auto it = input_scalar_.find(ref);
      scalar_[ref] = it == input_scalar_.end() ? 0 : it->second;
      return;
    }
    case Op::kState:
      if (node.sort.is_bitvec()) {
        scalar_[ref] = state_scalar_.at(ref);
      } else {
        array_[ref] = state_array_.at(ref);
      }
      return;
    case Op::kIte:
      if (node.sort.is_array()) {
        array_[ref] = scalar_[node.operands[0]] != 0
                          ? array_[node.operands[1]]
                          : array_[node.operands[2]];
        return;
      }
      break;  // scalar ite handled below
    case Op::kRead: {
      const auto& base = array_[node.operands[0]];
      const uint64_t index = scalar_[node.operands[1]];
      scalar_[ref] = base[index];
      return;
    }
    case Op::kWrite: {
      array_[ref] = array_[node.operands[0]];
      array_[ref][scalar_[node.operands[1]]] = scalar_[node.operands[2]];
      return;
    }
    default:
      break;
  }
  // Generic scalar operation.
  std::array<uint64_t, 3> vals{};
  std::array<uint32_t, 3> widths{};
  const size_t arity = node.operands.size();
  for (size_t i = 0; i < arity; ++i) {
    vals[i] = scalar_[node.operands[i]];
    widths[i] = ts_.ctx().width(node.operands[i]);
  }
  scalar_[ref] = ir::EvalScalarOp(node.op, node.sort.width,
                                  std::span(vals.data(), arity),
                                  std::span(widths.data(), arity), node.aux0,
                                  node.aux1);
}

void Simulator::Eval() {
  // Node order is topological (operands precede users), so a single pass
  // evaluates the whole combinational fabric.
  for (NodeRef ref = 1; ref < ts_.ctx().num_nodes(); ++ref) EvalNode(ref);
  evaluated_ = true;
}

void Simulator::Step() {
  AQED_CHECK(evaluated_, "Step without preceding Eval");
  for (NodeRef state : ts_.states()) {
    const NodeRef next = ts_.next(state);
    if (ts_.ctx().sort(state).is_bitvec()) {
      state_scalar_[state] = scalar_[next];
    } else {
      state_array_[state] = array_[next];
    }
  }
  input_scalar_.clear();
  ++cycle_;
  evaluated_ = false;
}

uint64_t Simulator::Value(NodeRef node) const {
  AQED_CHECK(evaluated_, "Value before Eval");
  AQED_CHECK(ts_.ctx().sort(node).is_bitvec(), "Value on array node");
  return scalar_[node];
}

const std::vector<uint64_t>& Simulator::ArrayValue(NodeRef node) const {
  AQED_CHECK(evaluated_, "ArrayValue before Eval");
  AQED_CHECK(ts_.ctx().sort(node).is_array(), "ArrayValue on scalar node");
  return array_[node];
}

bool Simulator::ConstraintsHold() const {
  AQED_CHECK(evaluated_, "ConstraintsHold before Eval");
  for (NodeRef constraint : ts_.constraints()) {
    if (scalar_[constraint] == 0) return false;
  }
  return true;
}

std::vector<uint32_t> Simulator::ActiveBads() const {
  AQED_CHECK(evaluated_, "ActiveBads before Eval");
  std::vector<uint32_t> active;
  for (size_t i = 0; i < ts_.bads().size(); ++i) {
    if (scalar_[ts_.bads()[i]] != 0) active.push_back(static_cast<uint32_t>(i));
  }
  return active;
}

}  // namespace aqed::sim
