// Cycle-accurate concrete simulator for transition systems.
//
// Drives one design cycle at a time: set inputs, Eval() the combinational
// fabric, inspect signals / constraints / bad predicates, then Step() to
// latch next-state values. Used by the conventional-verification baseline
// (random testbenches) and by the BMC engine to replay and validate every
// counterexample before it is reported.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/transition_system.h"

namespace aqed::sim {

class Simulator {
 public:
  explicit Simulator(const ir::TransitionSystem& ts);

  // Returns all states to their initial values (uninitialized states to 0)
  // and resets the cycle counter.
  void Reset();

  // Overrides the current value of a state (e.g. to replay a trace that
  // starts from a symbolic initial state).
  void SetState(ir::NodeRef state, uint64_t value);
  void SetArrayState(ir::NodeRef state, std::vector<uint64_t> values);

  // Sets a (bitvector) input for the current cycle. Unset inputs are 0.
  void SetInput(ir::NodeRef input, uint64_t value);

  // Evaluates the combinational fabric for the current cycle.
  void Eval();

  // Latches next-state values; requires a preceding Eval() this cycle.
  void Step();

  // Signal inspection (valid after Eval / before Step for comb. nodes).
  uint64_t Value(ir::NodeRef node) const;
  const std::vector<uint64_t>& ArrayValue(ir::NodeRef node) const;

  // True iff every environment constraint holds this cycle.
  bool ConstraintsHold() const;
  // Indices of bad predicates that are true this cycle.
  std::vector<uint32_t> ActiveBads() const;

  uint64_t cycle() const { return cycle_; }

 private:
  void EvalNode(ir::NodeRef ref);

  const ir::TransitionSystem& ts_;
  std::vector<uint64_t> scalar_;               // per node
  std::vector<std::vector<uint64_t>> array_;   // per node (arrays only)
  std::unordered_map<ir::NodeRef, uint64_t> input_scalar_;
  std::unordered_map<ir::NodeRef, uint64_t> state_scalar_;
  std::unordered_map<ir::NodeRef, std::vector<uint64_t>> state_array_;
  uint64_t cycle_ = 0;
  bool evaluated_ = false;
};

}  // namespace aqed::sim
