#include "harness/conventional_flow.h"

#include <vector>

#include "sched/thread_pool.h"
#include "support/stats.h"

namespace aqed::harness {

namespace {

TestbenchResult RunSeed(
    const std::function<core::AcceleratorInterface(ir::TransitionSystem&)>&
        build,
    const GoldenFn& golden, const CampaignOptions& options, uint32_t seed) {
  ir::TransitionSystem ts;
  const core::AcceleratorInterface acc = build(ts);
  Rng rng(options.base_seed + seed);
  return RunRandomTestbench(ts, acc, golden, rng, options.testbench);
}

}  // namespace

CampaignResult RunCampaign(
    const std::function<core::AcceleratorInterface(ir::TransitionSystem&)>&
        build,
    const GoldenFn& golden, const CampaignOptions& options) {
  CampaignResult campaign;
  Stopwatch stopwatch;
  if (options.jobs == 1 || options.num_seeds <= 1) {
    for (uint32_t seed = 0; seed < options.num_seeds; ++seed) {
      const TestbenchResult result =
          RunSeed(build, golden, options, seed);
      if (result.bug_detected()) {
        campaign.bug_detected = true;
        campaign.outcome = result.outcome;
        campaign.detection_cycle = result.detection_cycle;
        campaign.total_cycles_simulated += result.detection_cycle + 1;
        break;
      }
      campaign.total_cycles_simulated += options.testbench.max_cycles;
    }
  } else {
    // Run every seed concurrently, then report the first failing seed in
    // seed order — the same detection verdict/cycle as the sequential
    // flow, minus its early exit (the extra clean seeds only show up in
    // total_cycles_simulated).
    std::vector<TestbenchResult> results(options.num_seeds);
    {
      sched::ThreadPool pool(options.jobs == 0 ? sched::ThreadPool::HardwareJobs()
                                               : options.jobs);
      for (uint32_t seed = 0; seed < options.num_seeds; ++seed) {
        pool.Submit([&, seed] {
          results[seed] = RunSeed(build, golden, options, seed);
        });
      }
      pool.Wait();
    }
    for (const TestbenchResult& result : results) {
      if (result.bug_detected()) {
        campaign.bug_detected = true;
        campaign.outcome = result.outcome;
        campaign.detection_cycle = result.detection_cycle;
        campaign.total_cycles_simulated += result.detection_cycle + 1;
        break;
      }
      campaign.total_cycles_simulated += options.testbench.max_cycles;
    }
  }
  campaign.seconds = stopwatch.ElapsedSeconds();
  return campaign;
}

}  // namespace aqed::harness
