#include "harness/conventional_flow.h"

#include "support/stats.h"

namespace aqed::harness {

CampaignResult RunCampaign(
    const std::function<core::AcceleratorInterface(ir::TransitionSystem&)>&
        build,
    const GoldenFn& golden, const CampaignOptions& options) {
  CampaignResult campaign;
  Stopwatch stopwatch;
  for (uint32_t seed = 0; seed < options.num_seeds; ++seed) {
    ir::TransitionSystem ts;
    const core::AcceleratorInterface acc = build(ts);
    Rng rng(options.base_seed + seed);
    const TestbenchResult result =
        RunRandomTestbench(ts, acc, golden, rng, options.testbench);
    if (result.bug_detected()) {
      campaign.bug_detected = true;
      campaign.outcome = result.outcome;
      campaign.detection_cycle = result.detection_cycle;
      campaign.total_cycles_simulated += result.detection_cycle + 1;
      break;
    }
    campaign.total_cycles_simulated += options.testbench.max_cycles;
  }
  campaign.seconds = stopwatch.ElapsedSeconds();
  return campaign;
}

}  // namespace aqed::harness
