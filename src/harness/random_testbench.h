// Constrained-random simulation testbench — the "conventional verification
// flow" baseline of the paper's Table 1 / Fig. 5.
//
// The testbench drives an accelerator's ready-valid interface with random
// valid/data/host-ready (and any other free design inputs), maintains a
// scoreboard of captured inputs, and checks every captured output against a
// user-supplied golden functional model. It reports the first mismatch (a
// functional bug detection) or a hang (no output for a captured input within
// a timeout — the simulation analogue of an RB violation).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <optional>
#include <vector>

#include "aqed/interface.h"
#include "ir/transition_system.h"
#include "support/rng.h"

namespace aqed::harness {

// Golden functional model: expected output words of one batch element given
// its input words and the batch's shared-context values.
using GoldenFn = std::function<std::vector<uint64_t>(
    const std::vector<uint64_t>& elem_inputs,
    const std::vector<uint64_t>& context)>;

struct TestbenchOptions {
  uint64_t max_cycles = 10000;
  // Probability (out of 256) of driving in_valid / host_ready high.
  uint32_t in_valid_prob = 192;
  uint32_t host_ready_prob = 192;
  // Flag a hang if a captured input has seen no output for this many cycles
  // while the host was ready.
  uint64_t hang_timeout = 512;
  // Restrict random data to this many distinct values (0 = full range).
  // Small pools make duplicate inputs frequent, which strengthens
  // scoreboard checking on designs whose golden model is exact anyway.
  uint32_t data_pool = 0;
  // Check outputs only at end-of-test, as application-level testbenches do
  // (the golden comparison happens when the test finishes, so the reported
  // failure trace is the whole test run — the reason conventional failure
  // traces are hundreds of cycles long in the paper's Table 1). Hangs are
  // still detected when they occur.
  bool end_of_test_checking = false;
  // Design inputs (by name) the testbench ties to constants — modeling the
  // stimulus assumptions of a hand-written testbench (e.g. clock-enable
  // held high). Corner-case bugs behind such signals escape the
  // conventional flow; A-QED's free symbolic inputs do not share the blind
  // spot (paper Fig. 2 / Observation 1).
  std::vector<std::pair<std::string, uint64_t>> pinned_inputs;
};

struct TestbenchResult {
  enum class Outcome { kClean, kMismatch, kHang, kConstraintViolation };
  Outcome outcome = Outcome::kClean;
  uint64_t detection_cycle = 0;  // cycle of first mismatch / hang
  uint64_t outputs_checked = 0;
  uint64_t inputs_captured = 0;

  bool bug_detected() const { return outcome != Outcome::kClean; }
};

// Runs one random simulation of `ts` (uninstrumented design) against
// `golden`. All free inputs that are not part of the interface's data/
// handshake signals are driven with uniformly random values each cycle.
TestbenchResult RunRandomTestbench(const ir::TransitionSystem& ts,
                                   const core::AcceleratorInterface& acc,
                                   const GoldenFn& golden, Rng& rng,
                                   const TestbenchOptions& options);

}  // namespace aqed::harness
