#include "harness/random_testbench.h"

#include <algorithm>
#include <deque>

#include "sim/simulator.h"
#include "support/bits.h"
#include "support/status.h"

namespace aqed::harness {

using core::AcceleratorInterface;
using ir::NodeRef;

TestbenchResult RunRandomTestbench(const ir::TransitionSystem& ts,
                                   const AcceleratorInterface& acc,
                                   const GoldenFn& golden, Rng& rng,
                                   const TestbenchOptions& options) {
  const Status valid = acc.Validate(ts);
  AQED_CHECK(valid.ok(), "RunRandomTestbench: " + valid.message());

  sim::Simulator simulator(ts);
  TestbenchResult result;

  // Classify the design's free inputs.
  std::vector<NodeRef> data_inputs;
  for (const auto& elem : acc.data_elems) {
    for (NodeRef word : elem) {
      if (ts.ctx().node(word).op == ir::Op::kInput) data_inputs.push_back(word);
    }
  }
  std::vector<NodeRef> other_inputs;
  std::vector<std::pair<NodeRef, uint64_t>> pinned;
  for (NodeRef input : ts.inputs()) {
    if (input == acc.in_valid || input == acc.host_ready) continue;
    if (std::find(data_inputs.begin(), data_inputs.end(), input) !=
        data_inputs.end()) {
      continue;
    }
    bool is_pinned = false;
    for (const auto& [name, value] : options.pinned_inputs) {
      if (ts.ctx().node(input).name == name) {
        pinned.emplace_back(input, value);
        is_pinned = true;
        break;
      }
    }
    if (!is_pinned) other_inputs.push_back(input);
  }

  // Scoreboard: expected outputs per pending batch, in capture order.
  std::deque<std::vector<std::vector<uint64_t>>> pending;
  uint64_t ready_cycles_waiting = 0;
  uint64_t input_starved_cycles = 0;
  bool mismatch_seen = false;

  auto random_data = [&](uint32_t width) -> uint64_t {
    if (options.data_pool == 0) return rng.NextBits(width);
    // A small value pool keeps duplicate stimulus frequent.
    return Truncate(rng.NextBelow(options.data_pool) * 0x9e37ULL + 3, width);
  };

  for (uint64_t cycle = 0; cycle < options.max_cycles; ++cycle) {
    simulator.SetInput(acc.in_valid,
                       rng.Chance(options.in_valid_prob, 256) ? 1 : 0);
    simulator.SetInput(acc.host_ready,
                       rng.Chance(options.host_ready_prob, 256) ? 1 : 0);
    for (NodeRef word : data_inputs) {
      simulator.SetInput(word, random_data(ts.ctx().width(word)));
    }
    for (NodeRef input : other_inputs) {
      simulator.SetInput(input, rng.NextBits(ts.ctx().width(input)));
    }
    for (const auto& [input, value] : pinned) {
      simulator.SetInput(input, value);
    }
    simulator.Eval();

    if (!simulator.ConstraintsHold()) {
      result.outcome = TestbenchResult::Outcome::kConstraintViolation;
      result.detection_cycle = cycle;
      return result;
    }

    const bool capture_in = simulator.Value(acc.in_valid) != 0 &&
                            simulator.Value(acc.in_ready) != 0;
    const bool capture_out = simulator.Value(acc.out_valid) != 0 &&
                             simulator.Value(acc.host_ready) != 0;

    if (capture_in) {
      ++result.inputs_captured;
      std::vector<uint64_t> context;
      context.reserve(acc.shared_context.size());
      for (NodeRef node : acc.shared_context) {
        context.push_back(simulator.Value(node));
      }
      std::vector<std::vector<uint64_t>> expected_batch;
      for (const auto& elem : acc.data_elems) {
        std::vector<uint64_t> words;
        words.reserve(elem.size());
        for (NodeRef word : elem) words.push_back(simulator.Value(word));
        expected_batch.push_back(golden(words, context));
      }
      pending.push_back(std::move(expected_batch));
    }

    if (capture_out) {
      ready_cycles_waiting = 0;
      if (pending.empty()) {
        // Output with no corresponding input: report as a mismatch.
        result.outcome = TestbenchResult::Outcome::kMismatch;
        result.detection_cycle = cycle;
        return result;
      }
      const auto expected_batch = pending.front();
      pending.pop_front();
      ++result.outputs_checked;
      for (uint32_t e = 0; e < acc.batch_size(); ++e) {
        for (size_t w = 0; w < acc.out_elems[e].size(); ++w) {
          if (simulator.Value(acc.out_elems[e][w]) != expected_batch[e][w]) {
            if (options.end_of_test_checking) {
              mismatch_seen = true;  // reported when the test finishes
            } else {
              result.outcome = TestbenchResult::Outcome::kMismatch;
              result.detection_cycle = cycle;
              return result;
            }
          }
        }
      }
    } else if (!pending.empty() && simulator.Value(acc.host_ready) != 0) {
      if (++ready_cycles_waiting >= options.hang_timeout) {
        result.outcome = TestbenchResult::Outcome::kHang;
        result.detection_cycle = cycle;
        return result;
      }
    }

    // Input starvation: the testbench keeps offering transactions with the
    // host ready, yet the accelerator never accepts one.
    if (capture_in || capture_out) {
      input_starved_cycles = 0;
    } else if (simulator.Value(acc.in_valid) != 0 &&
               simulator.Value(acc.host_ready) != 0) {
      if (++input_starved_cycles >= options.hang_timeout) {
        result.outcome = TestbenchResult::Outcome::kHang;
        result.detection_cycle = cycle;
        return result;
      }
    }

    simulator.Step();
  }
  if (mismatch_seen) {
    // End-of-test comparison failed: the failure trace is the whole test.
    result.outcome = TestbenchResult::Outcome::kMismatch;
    result.detection_cycle = options.max_cycles;
  }
  return result;
}

}  // namespace aqed::harness
