// Multi-seed conventional-verification campaign: the simulation-budgeted
// random-testbench flow A-QED is compared against in Table 1 and Fig. 5.
#pragma once

#include <cstdint>
#include <functional>

#include "harness/random_testbench.h"

namespace aqed::harness {

struct CampaignOptions {
  uint32_t num_seeds = 16;
  uint64_t base_seed = 0xA9EDA9ED;
  // Worker threads simulating seeds concurrently (0 = hardware
  // concurrency). With jobs > 1 every seed runs to completion and the
  // first failing seed *in seed order* is reported, so the detection
  // outcome is identical to the sequential flow; only
  // total_cycles_simulated may count seeds the sequential flow would have
  // skipped after its early exit.
  uint32_t jobs = 1;
  TestbenchOptions testbench;
};

struct CampaignResult {
  bool bug_detected = false;
  TestbenchResult::Outcome outcome = TestbenchResult::Outcome::kClean;
  // Detection latency (cycles into the failing test) of the first failing
  // seed — the conventional flow's counterexample trace length.
  uint64_t detection_cycle = 0;
  uint64_t total_cycles_simulated = 0;
  double seconds = 0;
};

// Builds a fresh design per seed via `build` (returns the interface) and
// simulates it against `golden` until a bug is found or seeds run out.
CampaignResult RunCampaign(
    const std::function<core::AcceleratorInterface(ir::TransitionSystem&)>&
        build,
    const GoldenFn& golden, const CampaignOptions& options);

}  // namespace aqed::harness
