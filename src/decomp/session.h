// Composed verification of a decomposed accelerator.
//
// A DecomposedSession turns a Decomposition into one verification job per
// sub-accelerator and runs them on a sched::VerificationSession — so a
// decomposed check inherits the whole scheduling stack for free: the worker
// pool, first-bug-wins cancellation (SessionOptions::cancel), the deadline
// watchdog, escalating-budget retries, the memory governor, and telemetry.
// The per-sub verdicts fold into one DecompositionResult carrying the cut
// coverage report.
//
// Two solve-avoidance layers sit in front of the scheduler, both keyed by
// the fragment's ir::AnonymousStructuralDigest (pristine, un-instrumented)
// plus the service::ConfigDigest of its options and its BMC depth:
//   * in-run dedup — isomorphic fragments (the stages of a uniform
//     pipeline) collapse to one enqueued job whose verdict all aliases
//     share, turning an S-stage clean check into one solve;
//   * the PR 8 service::SolveCache (optional, borrowed) — fragments
//     decided in a previous run, or inside another design entirely, are
//     answered without solving. Undecided (kUnknown) verdicts are never
//     cached or deduped onto — an unknown is a budget artifact of one run.
//
// Soundness posture (see decomposition.h): a kSurvived composed verdict
// means no fragment has an FC violation within bound under the
// over-approximated cut environment — no missed bugs. A fragment bug may be
// spurious at the cut; assumptions narrow that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqed/checker.h"
#include "decomp/decomposition.h"
#include "fault/campaign.h"
#include "service/cache.h"
#include "support/verdict.h"

namespace aqed::decomp {

struct DecompOptions {
  // Per-fragment instrumentation/BMC options. A SubAccelerator bound
  // override replaces bmc.max_bound (and clears the per-property bound
  // overrides) for that fragment only.
  core::AqedOptions aqed;
  // Scheduling: jobs, cancel policy, deadlines, retries, memory budget,
  // telemetry sinks — passed through to the underlying session. The
  // default cancel policy (kEntry) cancels within one fragment's property
  // jobs; use kSession for first-bug-wins across the whole decomposition.
  core::SessionOptions session;
  // Optional cross-run solve cache (borrowed; must outlive the session).
  service::SolveCache* cache = nullptr;
};

// Verdict for one sub-accelerator, in fault-campaign classification terms
// (kDetectedFc/..., kSurvived = clean within bound, kUnknown = undecided).
struct SubVerdict {
  std::string name;
  fault::Classification classification = fault::Classification::kUnknown;
  core::BugKind kind = core::BugKind::kNone;
  uint32_t cex_cycles = 0;
  UnknownReason unknown_reason = UnknownReason::kNone;
  uint32_t attempts = 1;
  double wall_seconds = 0;
  // Anonymous structural digest of the pristine fragment — the cache key
  // component, reported so runs can be correlated across sessions.
  uint64_t fragment_digest = 0;
  bool cached = false;   // answered by the SolveCache, not solved here
  bool deduped = false;  // alias of an isomorphic fragment solved this run
};

struct DecompositionResult {
  std::string name;
  std::vector<SubVerdict> subs;  // declaration order
  CutCoverage coverage;
  double wall_seconds = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint32_t jobs_enqueued = 0;  // distinct fragments actually solved
  uint32_t deduped = 0;        // fragments answered by an isomorphic twin

  // First detected fragment bug in declaration order (nullptr = none).
  const SubVerdict* FirstBug() const;
  bool bug_found() const { return FirstBug() != nullptr; }
  size_t num_unknown() const;
  // Every fragment survived: the composed design is verified within the
  // fragments' bounds (modulo the cut over-approximation being spuriously
  // violated — which would show up as a bug, not as clean).
  bool clean() const { return !bug_found() && num_unknown() == 0; }

  // Order-independent digest over (name, classification, kind, cex) — equal
  // across --jobs 1 / --jobs N runs of the same decomposition.
  uint64_t VerdictDigest() const;
  std::string ToTable() const;
};

class DecomposedSession {
 public:
  DecomposedSession(Decomposition decomposition, DecompOptions options);

  // Validates the decomposition, fans one job per (non-cached,
  // non-duplicate) fragment across the scheduler, and aggregates. Blocks
  // until every fragment has a verdict.
  StatusOr<DecompositionResult> Run();

 private:
  Decomposition decomposition_;
  DecompOptions options_;
};

}  // namespace aqed::decomp
