// A-QED² functional decomposition (the sequel paper's scaling lever).
//
// Monolithic BMC blows up with design size: the FC refutation of a deep
// pipeline carries every stage's datapath at every frame. Functional
// decomposition cuts the accelerator into *sub-accelerators* along declared
// boundary signals, replaces each sub-accelerator's upstream cut signals
// with free inputs (an over-approximation of the real environment), and
// checks functional consistency per fragment. Soundness direction: a clean
// decomposed verdict implies no FC bug is reachable in the composed design
// within the fragments' bounds — the free cut inputs can drive every value
// the real upstream logic can (and more), so no behavior is lost. The price
// is the converse: a fragment counterexample may be *spurious*, driven
// through a cut valuation the real design never produces. User-supplied
// assumptions at the cut (Assume) narrow the environment when that happens.
//
// A Decomposition names a parent design (by its AcceleratorBuilder) and a
// set of SubAccelerators, each declared purely in terms of *signal names*
// on the parent: cut signals to free, and the per-fragment host interface
// (in_valid / in_ready / host_ready / out_valid / data / out element
// names). Internal wires become nameable via TransitionSystem::AddOutput in
// the parent builder — including constants (a named const-true output makes
// "always ready" declarable). Validate()/Analyze() build the parent once,
// resolve every name, and check the cuts *partition* the design: every
// parent state must be claimed by exactly one sub-accelerator's cone
// (traversal from its interface signals through next-state functions,
// stopping at cuts). BuilderFor(i) then yields a pure AcceleratorBuilder
// for fragment i — directly enqueueable on a sched::VerificationSession —
// that rebuilds the parent into a scratch system and extracts the
// fragment: cut signals become fresh free inputs, claimed states keep
// their init/next (rebuilt over the fragment's cone), and parent
// constraints whose support lies inside the fragment carry over.
//
// Fragments are rebuilt in ascending parent-node order, which makes
// isomorphic fragments (e.g. the stages of a uniform pipeline) byte-equal
// under ir::AnonymousStructuralDigest — the identity the decomp session
// uses to dedupe and cache per-fragment solves (src/decomp/session.h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aqed/checker.h"
#include "ir/transition_system.h"
#include "support/status.h"

namespace aqed::decomp {

// Environment assumption at a cut, evaluated inside the fragment while it
// is being extracted. `signal` resolves a parent signal name (a cut, an
// input, a claimed state, or a named output whose cone lies in the
// fragment) to the fragment's node for it; the returned 1-bit node is
// asserted as an invariant constraint. Resolution failures are programming
// errors and abort (AQED_CHECK) — declare assumptions only over signals the
// fragment contains.
using AssumeFn = std::function<ir::NodeRef(
    ir::Context& ctx,
    const std::function<ir::NodeRef(const std::string&)>& signal)>;

// Declaration of one sub-accelerator, purely by parent signal names. A
// fluent value type: build one, hand it to Decomposition::Add.
class SubAccelerator {
 public:
  explicit SubAccelerator(std::string name) : name_(std::move(name)) {}

  // Declares a boundary signal: inside this fragment, `signal` is replaced
  // by a fresh free input of the same sort and the logic driving it is left
  // to the sub-accelerator that claims it.
  SubAccelerator& Cut(const std::string& signal);
  SubAccelerator& Cut(const std::vector<std::string>& signals);

  // The fragment's host interface, by parent signal name (all resolvable
  // against the parent's inputs, states, or named outputs).
  SubAccelerator& WithInValid(std::string signal);
  SubAccelerator& WithInReady(std::string signal);
  SubAccelerator& WithHostReady(std::string signal);
  SubAccelerator& WithOutValid(std::string signal);
  // Appends one input (resp. output) batch element of named words.
  SubAccelerator& WithDataElem(std::vector<std::string> words);
  SubAccelerator& WithOutElem(std::vector<std::string> words);
  SubAccelerator& WithShared(std::vector<std::string> signals);

  // Environment assumption at the cut (may be called repeatedly).
  SubAccelerator& Assume(AssumeFn assume);

  // Per-fragment FC/BMC bound override (0 = inherit the session's).
  SubAccelerator& WithBound(uint32_t bound);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& cuts() const { return cuts_; }
  const std::string& in_valid() const { return in_valid_; }
  const std::string& in_ready() const { return in_ready_; }
  const std::string& host_ready() const { return host_ready_; }
  const std::string& out_valid() const { return out_valid_; }
  const std::vector<std::vector<std::string>>& data_elems() const {
    return data_elems_;
  }
  const std::vector<std::vector<std::string>>& out_elems() const {
    return out_elems_;
  }
  const std::vector<std::string>& shared() const { return shared_; }
  const std::vector<AssumeFn>& assumes() const { return assumes_; }
  uint32_t bound() const { return bound_; }

 private:
  std::string name_;
  std::vector<std::string> cuts_;
  std::string in_valid_, in_ready_, host_ready_, out_valid_;
  std::vector<std::vector<std::string>> data_elems_;
  std::vector<std::vector<std::string>> out_elems_;
  std::vector<std::string> shared_;
  std::vector<AssumeFn> assumes_;
  uint32_t bound_ = 0;
};

// The cut-coverage report: how the declared cuts carve the parent design,
// one row per sub-accelerator plus partition totals. Produced by Analyze()
// after validation, and carried into the DecompositionResult.
struct CutCoverage {
  struct Sub {
    std::string name;
    uint32_t states_claimed = 0;   // parent states owned by this fragment
    uint32_t state_bits = 0;       // their summed widths
    uint32_t cut_signals = 0;      // boundary signals freed at this fragment
    uint32_t cut_bits = 0;         // their summed widths (env freedom added)
    uint32_t assumptions = 0;      // user constraints narrowing that freedom
    uint32_t constraints_carried = 0;  // parent constraints inside the cone
  };
  std::vector<Sub> subs;
  uint32_t total_states = 0;  // parent states (== sum of states_claimed)
  uint32_t total_state_bits = 0;

  std::string ToTable() const;
};

// A named parent design plus its sub-accelerator declarations.
class Decomposition {
 public:
  Decomposition(std::string name, core::AcceleratorBuilder parent)
      : name_(std::move(name)), parent_(std::move(parent)) {}

  Decomposition& Add(SubAccelerator sub);

  const std::string& name() const { return name_; }
  const core::AcceleratorBuilder& parent() const { return parent_; }
  const std::vector<SubAccelerator>& subs() const { return subs_; }

  // Builds the parent once and checks the declaration is coherent: every
  // referenced name resolves, every fragment's interface validates, and the
  // claimed-state cones of the subs partition the parent's states (each
  // state claimed by exactly one fragment). Also rebuilds every fragment
  // and validates it structurally.
  Status Validate() const;

  // Validate() plus the cut-coverage report.
  StatusOr<CutCoverage> Analyze() const;

  // Pure job builder for fragment `index`: rebuilds the parent into a
  // scratch system and extracts the fragment into the given transition
  // system. Self-contained (copies the declaration), safe to run on
  // session worker threads, and independent of this object's lifetime.
  // Declaration errors abort (AQED_CHECK) — run Validate() first to get
  // them as a Status.
  core::AcceleratorBuilder BuilderFor(size_t index) const;

 private:
  std::string name_;
  core::AcceleratorBuilder parent_;
  std::vector<SubAccelerator> subs_;
};

}  // namespace aqed::decomp
