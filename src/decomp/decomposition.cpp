#include "decomp/decomposition.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "aqed/interface.h"
#include "ir/node.h"

namespace aqed::decomp {

namespace {

using ir::Context;
using ir::Node;
using ir::NodeRef;
using ir::Op;
using ir::TransitionSystem;

using NameMap = std::unordered_map<std::string, NodeRef>;

// Every nameable signal of the parent: inputs and states by their IR name,
// plus named outputs (the escape hatch that makes internal wires — and
// constants — declarable in a SubAccelerator).
NameMap BuildNameMap(const TransitionSystem& ts) {
  NameMap names;
  for (const NodeRef input : ts.inputs()) {
    names.emplace(ts.ctx().node(input).name, input);
  }
  for (const NodeRef state : ts.states()) {
    names.emplace(ts.ctx().node(state).name, state);
  }
  for (const auto& [name, node] : ts.outputs()) names.emplace(name, node);
  return names;
}

// One sub-accelerator declaration with every name resolved against the
// parent, plus the derived cone/claim/constraint information Validate,
// Analyze, and extraction all consume.
struct FragmentPlan {
  // Resolved interface signals (parent NodeRefs).
  NodeRef in_valid = ir::kNullNode;
  NodeRef in_ready = ir::kNullNode;
  NodeRef host_ready = ir::kNullNode;
  NodeRef out_valid = ir::kNullNode;
  std::vector<std::vector<NodeRef>> data_elems;
  std::vector<std::vector<NodeRef>> out_elems;
  std::vector<NodeRef> shared;

  // is_cut[ref]: ref is a declared boundary signal of this fragment.
  std::vector<bool> is_cut;
  // Declared name per cut ref — becomes the fragment's free-input name.
  std::unordered_map<NodeRef, std::string> cut_name;
  // marked[ref]: ref is in the fragment's cone (including carried
  // constraint cones).
  std::vector<bool> marked;
  // Parent states owned by this fragment: marked, not cut.
  std::vector<NodeRef> claimed_states;
  // Parent constraints whose combinational support lies in the cone.
  std::vector<NodeRef> carried_constraints;
};

StatusOr<NodeRef> Resolve(const NameMap& names, const std::string& name,
                          const std::string& sub, const char* role) {
  if (name.empty()) {
    return Status::Error("sub-accelerator '" + sub + "': " + role +
                         " is not declared");
  }
  const auto it = names.find(name);
  if (it == names.end()) {
    return Status::Error("sub-accelerator '" + sub + "': unknown signal '" +
                         name + "' (" + role + ")");
  }
  return it->second;
}

// Marks the cone of `root`: stop at cuts (they become free inputs), follow
// state transitions (a claimed register drags in its next-state logic).
void MarkCone(const TransitionSystem& parent, const std::vector<bool>& is_cut,
              NodeRef root, std::vector<bool>& marked) {
  std::vector<NodeRef> work = {root};
  while (!work.empty()) {
    const NodeRef ref = work.back();
    work.pop_back();
    if (ref == ir::kNullNode || marked[ref]) continue;
    marked[ref] = true;
    if (is_cut[ref]) continue;  // boundary: upstream logic stays outside
    const Node& node = parent.ctx().node(ref);
    if (node.op == Op::kState) {
      work.push_back(parent.next(ref));
      continue;
    }
    for (const NodeRef operand : node.operands) work.push_back(operand);
  }
}

// True iff every input/state leaf of `root`'s combinational support (cuts
// are leaves; next-state functions are not entered) is already in the
// fragment's cone, i.e. the constraint talks only about this fragment.
bool SupportInCone(const TransitionSystem& parent,
                   const std::vector<bool>& is_cut,
                   const std::vector<bool>& marked, NodeRef root) {
  std::vector<bool> seen(parent.ctx().num_nodes(), false);
  std::vector<NodeRef> work = {root};
  while (!work.empty()) {
    const NodeRef ref = work.back();
    work.pop_back();
    if (ref == ir::kNullNode || seen[ref]) continue;
    seen[ref] = true;
    const Node& node = parent.ctx().node(ref);
    const bool leaf =
        is_cut[ref] || node.op == Op::kInput || node.op == Op::kState;
    if (leaf) {
      if (!marked[ref]) return false;
      continue;
    }
    for (const NodeRef operand : node.operands) work.push_back(operand);
  }
  return true;
}

StatusOr<FragmentPlan> PlanFragment(const TransitionSystem& parent,
                                    const NameMap& names,
                                    const SubAccelerator& sub) {
  FragmentPlan plan;
  const uint32_t num_nodes = parent.ctx().num_nodes();
  plan.is_cut.assign(num_nodes, false);
  plan.marked.assign(num_nodes, false);

  for (const std::string& cut : sub.cuts()) {
    const auto ref = Resolve(names, cut, sub.name(), "cut");
    if (!ref.ok()) return ref.status();
    const Node& node = parent.ctx().node(ref.value());
    if (node.op != Op::kInput && node.op != Op::kState) {
      return Status::Error("sub-accelerator '" + sub.name() + "': cut '" +
                           cut + "' is not an input or state (cuts must be " +
                           "registered boundary signals)");
    }
    if (plan.is_cut[ref.value()]) {
      return Status::Error("sub-accelerator '" + sub.name() + "': cut '" +
                           cut + "' declared twice");
    }
    plan.is_cut[ref.value()] = true;
    plan.cut_name.emplace(ref.value(), cut);
  }

  const auto one = [&](const std::string& name, const char* role,
                       NodeRef& out) -> Status {
    auto ref = Resolve(names, name, sub.name(), role);
    if (!ref.ok()) return ref.status();
    out = ref.value();
    return Status::Ok();
  };
  if (Status s = one(sub.in_valid(), "in_valid", plan.in_valid); !s.ok())
    return s;
  if (Status s = one(sub.in_ready(), "in_ready", plan.in_ready); !s.ok())
    return s;
  if (Status s = one(sub.host_ready(), "host_ready", plan.host_ready); !s.ok())
    return s;
  if (Status s = one(sub.out_valid(), "out_valid", plan.out_valid); !s.ok())
    return s;
  if (sub.data_elems().empty() || sub.out_elems().empty()) {
    return Status::Error("sub-accelerator '" + sub.name() +
                         "': needs at least one data and one out element");
  }
  const auto many = [&](const std::vector<std::vector<std::string>>& elems,
                        const char* role,
                        std::vector<std::vector<NodeRef>>& out) -> Status {
    for (const auto& words : elems) {
      std::vector<NodeRef> elem;
      for (const std::string& word : words) {
        auto ref = Resolve(names, word, sub.name(), role);
        if (!ref.ok()) return ref.status();
        elem.push_back(ref.value());
      }
      out.push_back(std::move(elem));
    }
    return Status::Ok();
  };
  if (Status s = many(sub.data_elems(), "data element", plan.data_elems);
      !s.ok())
    return s;
  if (Status s = many(sub.out_elems(), "out element", plan.out_elems); !s.ok())
    return s;
  for (const std::string& name : sub.shared()) {
    auto ref = Resolve(names, name, sub.name(), "shared");
    if (!ref.ok()) return ref.status();
    plan.shared.push_back(ref.value());
  }

  // Cone = everything the fragment's interface can observe.
  const auto roots = [&](NodeRef ref) {
    MarkCone(parent, plan.is_cut, ref, plan.marked);
  };
  roots(plan.in_valid);
  roots(plan.in_ready);
  roots(plan.host_ready);
  roots(plan.out_valid);
  for (const auto& elem : plan.data_elems)
    for (const NodeRef word : elem) roots(word);
  for (const auto& elem : plan.out_elems)
    for (const NodeRef word : elem) roots(word);
  for (const NodeRef ref : plan.shared) roots(ref);

  for (const NodeRef state : parent.states()) {
    if (plan.marked[state] && !plan.is_cut[state]) {
      plan.claimed_states.push_back(state);
    }
  }

  // Parent environment assumptions travel with the fragment that contains
  // their whole support; extend the cone so they can be rebuilt.
  for (const NodeRef constraint : parent.constraints()) {
    if (!SupportInCone(parent, plan.is_cut, plan.marked, constraint)) continue;
    plan.carried_constraints.push_back(constraint);
    MarkCone(parent, plan.is_cut, constraint, plan.marked);
  }
  return plan;
}

// Rebuilds one operation node in the fragment (operands already mapped).
// Leaves are handled by the extraction loop.
NodeRef BuildOp(Context& ctx, const Node& src, const std::vector<NodeRef>& m) {
  const auto op = [&](size_t i) { return m[src.operands[i]]; };
  switch (src.op) {
    case Op::kNot:
      return ctx.Not(op(0));
    case Op::kAnd:
      return ctx.And(op(0), op(1));
    case Op::kOr:
      return ctx.Or(op(0), op(1));
    case Op::kXor:
      return ctx.Xor(op(0), op(1));
    case Op::kNeg:
      return ctx.Neg(op(0));
    case Op::kAdd:
      return ctx.Add(op(0), op(1));
    case Op::kSub:
      return ctx.Sub(op(0), op(1));
    case Op::kMul:
      return ctx.Mul(op(0), op(1));
    case Op::kUdiv:
      return ctx.Udiv(op(0), op(1));
    case Op::kUrem:
      return ctx.Urem(op(0), op(1));
    case Op::kEq:
      return ctx.Eq(op(0), op(1));
    case Op::kNe:
      return ctx.Ne(op(0), op(1));
    case Op::kUlt:
      return ctx.Ult(op(0), op(1));
    case Op::kUle:
      return ctx.Ule(op(0), op(1));
    case Op::kSlt:
      return ctx.Slt(op(0), op(1));
    case Op::kSle:
      return ctx.Sle(op(0), op(1));
    case Op::kShl:
      return ctx.Shl(op(0), op(1));
    case Op::kLshr:
      return ctx.Lshr(op(0), op(1));
    case Op::kAshr:
      return ctx.Ashr(op(0), op(1));
    case Op::kIte:
      return ctx.Ite(op(0), op(1), op(2));
    case Op::kConcat:
      return ctx.Concat(op(0), op(1));
    case Op::kExtract:
      return ctx.Extract(op(0), src.aux0, src.aux1);
    case Op::kZext:
      return ctx.Zext(op(0), src.sort.width);
    case Op::kSext:
      return ctx.Sext(op(0), src.sort.width);
    case Op::kRead:
      return ctx.Read(op(0), op(1));
    case Op::kWrite:
      return ctx.Write(op(0), op(1), op(2));
    case Op::kConst:
    case Op::kConstArray:
    case Op::kInput:
    case Op::kState:
      break;
  }
  AQED_CHECK(false, "decomp BuildOp on unexpected op");
  return ir::kNullNode;
}

// Extracts the planned fragment into `frag` and wires its host interface.
// Nodes are rebuilt in ascending parent-NodeRef order, so isomorphic
// fragments register their leaves identically — the property
// ir::AnonymousStructuralDigest keys on.
core::AcceleratorInterface ExtractFragment(const TransitionSystem& parent,
                                           const NameMap& names,
                                           const FragmentPlan& plan,
                                           const SubAccelerator& sub,
                                           TransitionSystem& frag) {
  AQED_CHECK(frag.ctx().num_nodes() <= 1,
             "decomp: extraction into non-empty system");
  const Context& pctx = parent.ctx();
  Context& fctx = frag.ctx();
  std::vector<NodeRef> map(pctx.num_nodes(), ir::kNullNode);

  for (NodeRef ref = 1; ref < pctx.num_nodes(); ++ref) {
    if (!plan.marked[ref]) continue;
    const Node& node = pctx.node(ref);
    if (plan.is_cut[ref]) {
      // The boundary: whatever drove this signal upstream, the fragment
      // sees a free input — the over-approximated environment.
      map[ref] = frag.AddInput(plan.cut_name.at(ref), node.sort);
      continue;
    }
    switch (node.op) {
      case Op::kInput:
        map[ref] = frag.AddInput(node.name, node.sort);
        break;
      case Op::kState:
        map[ref] = frag.AddState(
            node.name, node.sort,
            parent.has_init(ref)
                ? std::optional<uint64_t>(parent.init_value(ref))
                : std::nullopt);
        break;
      case Op::kConst:
        map[ref] = fctx.Const(node.sort.width, node.const_val);
        break;
      case Op::kConstArray:
        map[ref] = fctx.ConstArray(node.sort.index_width, node.sort.elem_width,
                                   pctx.node(node.operands[0]).const_val);
        break;
      default:
        map[ref] = BuildOp(fctx, node, map);
        break;
    }
  }

  for (const NodeRef state : plan.claimed_states) {
    frag.SetNext(map[state], map[parent.next(state)]);
  }
  for (const NodeRef constraint : plan.carried_constraints) {
    frag.AddConstraint(map[constraint]);
  }

  // Environment assumptions at the cut, evaluated over fragment nodes.
  const auto signal = [&](const std::string& name) -> NodeRef {
    const auto it = names.find(name);
    AQED_CHECK(it != names.end(),
               "decomp assumption: unknown parent signal '" + name + "'");
    const NodeRef mapped = map[it->second];
    AQED_CHECK(mapped != ir::kNullNode,
               "decomp assumption: signal '" + name +
                   "' is outside fragment '" + sub.name() + "'");
    return mapped;
  };
  for (const AssumeFn& assume : sub.assumes()) {
    frag.AddConstraint(assume(fctx, signal));
  }

  core::AcceleratorInterface acc;
  acc.in_valid = map[plan.in_valid];
  acc.in_ready = map[plan.in_ready];
  acc.host_ready = map[plan.host_ready];
  acc.out_valid = map[plan.out_valid];
  const auto remap = [&](const std::vector<std::vector<NodeRef>>& elems) {
    std::vector<std::vector<NodeRef>> out;
    for (const auto& elem : elems) {
      std::vector<NodeRef> words;
      for (const NodeRef word : elem) words.push_back(map[word]);
      out.push_back(std::move(words));
    }
    return out;
  };
  acc.data_elems = remap(plan.data_elems);
  acc.out_elems = remap(plan.out_elems);
  for (const NodeRef ref : plan.shared) acc.shared_context.push_back(map[ref]);
  return acc;
}

uint32_t SortBits(const ir::Sort& sort) {
  if (sort.is_bitvec()) return sort.width;
  return static_cast<uint32_t>(sort.elem_width * sort.num_elements());
}

}  // namespace

SubAccelerator& SubAccelerator::Cut(const std::string& signal) {
  cuts_.push_back(signal);
  return *this;
}

SubAccelerator& SubAccelerator::Cut(const std::vector<std::string>& signals) {
  cuts_.insert(cuts_.end(), signals.begin(), signals.end());
  return *this;
}

SubAccelerator& SubAccelerator::WithInValid(std::string signal) {
  in_valid_ = std::move(signal);
  return *this;
}

SubAccelerator& SubAccelerator::WithInReady(std::string signal) {
  in_ready_ = std::move(signal);
  return *this;
}

SubAccelerator& SubAccelerator::WithHostReady(std::string signal) {
  host_ready_ = std::move(signal);
  return *this;
}

SubAccelerator& SubAccelerator::WithOutValid(std::string signal) {
  out_valid_ = std::move(signal);
  return *this;
}

SubAccelerator& SubAccelerator::WithDataElem(std::vector<std::string> words) {
  data_elems_.push_back(std::move(words));
  return *this;
}

SubAccelerator& SubAccelerator::WithOutElem(std::vector<std::string> words) {
  out_elems_.push_back(std::move(words));
  return *this;
}

SubAccelerator& SubAccelerator::WithShared(std::vector<std::string> signals) {
  shared_.insert(shared_.end(), signals.begin(), signals.end());
  return *this;
}

SubAccelerator& SubAccelerator::Assume(AssumeFn assume) {
  assumes_.push_back(std::move(assume));
  return *this;
}

SubAccelerator& SubAccelerator::WithBound(uint32_t bound) {
  bound_ = bound;
  return *this;
}

Decomposition& Decomposition::Add(SubAccelerator sub) {
  subs_.push_back(std::move(sub));
  return *this;
}

Status Decomposition::Validate() const {
  return Analyze().status();
}

StatusOr<CutCoverage> Decomposition::Analyze() const {
  if (subs_.empty()) {
    return Status::Error("decomposition '" + name_ +
                         "': no sub-accelerators declared");
  }
  TransitionSystem parent;
  parent_(parent);
  if (Status s = parent.Validate(); !s.ok()) {
    return Status::Error("decomposition '" + name_ + "': parent invalid: " +
                         s.message());
  }
  const NameMap names = BuildNameMap(parent);

  CutCoverage coverage;
  // claims[state ordinal] = how many subs own this parent state.
  std::vector<uint32_t> claims(parent.states().size(), 0);
  std::unordered_map<NodeRef, size_t> state_ordinal;
  for (size_t i = 0; i < parent.states().size(); ++i) {
    state_ordinal.emplace(parent.states()[i], i);
    coverage.total_states++;
    coverage.total_state_bits += SortBits(parent.ctx().sort(parent.states()[i]));
  }

  for (size_t i = 0; i < subs_.size(); ++i) {
    const SubAccelerator& sub = subs_[i];
    for (size_t j = 0; j < i; ++j) {
      if (subs_[j].name() == sub.name()) {
        return Status::Error("decomposition '" + name_ +
                             "': duplicate sub-accelerator name '" +
                             sub.name() + "'");
      }
    }
    auto plan = PlanFragment(parent, names, sub);
    if (!plan.ok()) {
      return Status::Error("decomposition '" + name_ + "': " +
                           plan.status().message());
    }

    CutCoverage::Sub row;
    row.name = sub.name();
    for (const NodeRef state : plan.value().claimed_states) {
      claims[state_ordinal.at(state)]++;
      row.states_claimed++;
      row.state_bits += SortBits(parent.ctx().sort(state));
    }
    for (uint32_t ref = 0; ref < plan.value().is_cut.size(); ++ref) {
      if (!plan.value().is_cut[ref]) continue;
      row.cut_signals++;
      row.cut_bits += SortBits(parent.ctx().sort(ref));
    }
    row.assumptions = static_cast<uint32_t>(sub.assumes().size());
    row.constraints_carried =
        static_cast<uint32_t>(plan.value().carried_constraints.size());
    coverage.subs.push_back(std::move(row));

    // Rebuild the fragment and check it is a well-formed accelerator.
    TransitionSystem frag;
    const core::AcceleratorInterface acc =
        ExtractFragment(parent, names, plan.value(), sub, frag);
    if (Status s = frag.Validate(); !s.ok()) {
      return Status::Error("decomposition '" + name_ + "': fragment '" +
                           sub.name() + "' invalid: " + s.message());
    }
    if (Status s = acc.Validate(frag); !s.ok()) {
      return Status::Error("decomposition '" + name_ + "': fragment '" +
                           sub.name() + "' interface invalid: " + s.message());
    }
  }

  // The partition check: every parent state must belong to exactly one
  // fragment, or some logic is verified twice (wasteful, and cut-coverage
  // double counts) or — worse — never (a verification hole).
  std::string unclaimed, doubled;
  for (size_t i = 0; i < parent.states().size(); ++i) {
    const std::string& state_name =
        parent.ctx().node(parent.states()[i]).name;
    if (claims[i] == 0) {
      unclaimed += (unclaimed.empty() ? "" : ", ") + state_name;
    } else if (claims[i] > 1) {
      doubled += (doubled.empty() ? "" : ", ") + state_name;
    }
  }
  if (!unclaimed.empty() || !doubled.empty()) {
    std::string message = "decomposition '" + name_ +
                          "': cuts do not partition the design:";
    if (!unclaimed.empty()) {
      message += " unclaimed states [" + unclaimed + "]";
    }
    if (!doubled.empty()) {
      message += std::string(unclaimed.empty() ? " " : "; ") +
                 "states claimed by multiple sub-accelerators [" + doubled +
                 "]";
    }
    return Status::Error(message);
  }
  return coverage;
}

core::AcceleratorBuilder Decomposition::BuilderFor(size_t index) const {
  AQED_CHECK(index < subs_.size(), "decomp BuilderFor: index out of range");
  // Self-contained by copy: the returned builder must outlive this object
  // and run on session worker threads.
  return [parent = parent_, sub = subs_[index],
          dname = name_](TransitionSystem& frag) {
    TransitionSystem scratch;
    parent(scratch);
    const NameMap names = BuildNameMap(scratch);
    auto plan = PlanFragment(scratch, names, sub);
    AQED_CHECK(plan.ok(), "decomposition '" + dname + "': " +
                              (plan.ok() ? "" : plan.status().message()));
    return ExtractFragment(scratch, names, plan.value(), sub, frag);
  };
}

std::string CutCoverage::ToTable() const {
  std::ostringstream out;
  out << "sub-accelerator      states   bits    cuts  cut-bits  assume  "
         "constr\n";
  for (const Sub& sub : subs) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-20s %6u %6u  %6u  %8u  %6u  %6u\n",
                  sub.name.c_str(), sub.states_claimed, sub.state_bits,
                  sub.cut_signals, sub.cut_bits, sub.assumptions,
                  sub.constraints_carried);
    out << line;
  }
  char total[96];
  std::snprintf(total, sizeof(total), "%-20s %6u %6u\n", "total (parent)",
                total_states, total_state_bits);
  out << total;
  return out.str();
}

}  // namespace aqed::decomp
