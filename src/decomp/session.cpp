#include "decomp/session.h"

#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "ir/digest.h"
#include "sched/session.h"
#include "support/stats.h"
#include "telemetry/metrics.h"

namespace aqed::decomp {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixInt(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t MixText(uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return MixInt(hash, text.size());
}

fault::Classification Classify(core::BugKind kind) {
  switch (kind) {
    case core::BugKind::kFunctionalConsistency:
    case core::BugKind::kEarlyOutput:
      return fault::Classification::kDetectedFc;
    case core::BugKind::kResponseBound:
    case core::BugKind::kInputStarvation:
      return fault::Classification::kDetectedRb;
    case core::BugKind::kSingleActionCorrectness:
      return fault::Classification::kDetectedSac;
    case core::BugKind::kNone:
      break;
  }
  return fault::Classification::kSurvived;
}

// The fragment's per-sub options: a bound override replaces the global BMC
// bound and clears the per-property overrides (they were tuned against the
// parent bound and may exceed the fragment's).
core::AqedOptions OptionsFor(const core::AqedOptions& base,
                             const SubAccelerator& sub) {
  core::AqedOptions options = base;
  if (sub.bound() != 0) {
    options.bmc.max_bound = sub.bound();
    options.fc_bound = 0;
    options.rb_bound = 0;
    options.sac_bound = 0;
  }
  return options;
}

}  // namespace

const SubVerdict* DecompositionResult::FirstBug() const {
  for (const SubVerdict& sub : subs) {
    if (sub.classification == fault::Classification::kDetectedFc ||
        sub.classification == fault::Classification::kDetectedRb ||
        sub.classification == fault::Classification::kDetectedSac) {
      return &sub;
    }
  }
  return nullptr;
}

size_t DecompositionResult::num_unknown() const {
  size_t count = 0;
  for (const SubVerdict& sub : subs) {
    if (sub.classification == fault::Classification::kUnknown) count++;
  }
  return count;
}

uint64_t DecompositionResult::VerdictDigest() const {
  // Commutative sum of per-sub hashes: identical across scheduling orders
  // and worker counts, different whenever any verdict column changes.
  uint64_t sum = 0;
  for (const SubVerdict& sub : subs) {
    uint64_t h = kFnvOffset;
    h = MixText(h, sub.name);
    h = MixInt(h, static_cast<uint64_t>(sub.classification));
    h = MixInt(h, static_cast<uint64_t>(sub.kind));
    h = MixInt(h, sub.cex_cycles);
    sum += h;
  }
  return MixInt(MixInt(kFnvOffset, sum), subs.size());
}

std::string DecompositionResult::ToTable() const {
  std::ostringstream out;
  out << "decomposition '" << name << "': "
      << (bug_found() ? "BUG" : (num_unknown() ? "UNKNOWN" : "clean")) << " ("
      << subs.size() << " subs, " << jobs_enqueued << " solved, " << deduped
      << " deduped, " << cache_hits << " cached)\n";
  out << "sub-accelerator      verdict       kind                  cex  "
         "source\n";
  for (const SubVerdict& sub : subs) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-20s %-13s %-20s %4u  %s\n",
                  sub.name.c_str(),
                  fault::ClassificationName(sub.classification),
                  core::BugKindName(sub.kind), sub.cex_cycles,
                  sub.cached ? "cache" : (sub.deduped ? "dedup" : "solve"));
    out << line;
  }
  out << coverage.ToTable();
  return out.str();
}

DecomposedSession::DecomposedSession(Decomposition decomposition,
                                     DecompOptions options)
    : decomposition_(std::move(decomposition)), options_(std::move(options)) {}

StatusOr<DecompositionResult> DecomposedSession::Run() {
  Stopwatch stopwatch;
  auto coverage = decomposition_.Analyze();
  if (!coverage.ok()) return coverage.status();

  DecompositionResult result;
  result.name = decomposition_.name();
  result.coverage = std::move(coverage).value();
  result.subs.resize(decomposition_.subs().size());

  sched::VerificationSession session(options_.session);

  // Job bookkeeping: for each declared sub, either a cache hit (verdict
  // already final), an alias of an earlier isomorphic fragment, or the
  // handle of the job enqueued for it.
  struct Pending {
    core::JobHandle handle;
    service::CacheKey key;
    bool enqueued = false;
    size_t alias_of = 0;  // index of the representative when deduped
    bool aliased = false;
  };
  std::vector<Pending> pending(decomposition_.subs().size());
  // First sub index seen per cache key — the dedup representative.
  std::unordered_map<std::string, size_t> representative;

  for (size_t i = 0; i < decomposition_.subs().size(); ++i) {
    const SubAccelerator& sub = decomposition_.subs()[i];
    SubVerdict& verdict = result.subs[i];
    verdict.name = sub.name();

    const core::AqedOptions sub_options = OptionsFor(options_.aqed, sub);
    core::AcceleratorBuilder build = decomposition_.BuilderFor(i);

    // Digest the pristine fragment (instrumentation happens inside the
    // session job, on a fresh copy).
    ir::TransitionSystem pristine;
    build(pristine);
    verdict.fragment_digest = ir::AnonymousStructuralDigest(pristine);

    Pending& entry = pending[i];
    entry.key = service::CacheKey{verdict.fragment_digest,
                                  service::ConfigDigest(sub_options), "-",
                                  sub_options.bmc.max_bound};

    if (options_.cache != nullptr) {
      if (const auto hit = options_.cache->Lookup(entry.key)) {
        verdict.classification = hit->classification;
        verdict.kind = hit->kind;
        verdict.cex_cycles = hit->cex_cycles;
        verdict.attempts = hit->attempts;
        verdict.cached = true;
        result.cache_hits++;
        continue;
      }
      result.cache_misses++;
    }

    const std::string key_text = entry.key.ToString();
    if (const auto rep = representative.find(key_text);
        rep != representative.end()) {
      entry.aliased = true;
      entry.alias_of = rep->second;
      verdict.deduped = true;
      result.deduped++;
      continue;
    }
    representative.emplace(key_text, i);
    entry.handle = session.Enqueue(std::move(build), sub_options, sub.name());
    entry.enqueued = true;
    result.jobs_enqueued++;
  }

  const core::SessionResult session_result = session.Wait();

  for (size_t i = 0; i < pending.size(); ++i) {
    if (!pending[i].enqueued) continue;
    SubVerdict& verdict = result.subs[i];
    const core::JobHandle& handle = pending[i].handle;
    if (session_result.bug_found(handle)) {
      verdict.kind = session_result.kind(handle);
      verdict.classification = Classify(verdict.kind);
      verdict.cex_cycles = session_result.cex_cycles(handle);
    } else if (session_result.unknown_reason(handle) != UnknownReason::kNone) {
      verdict.classification = fault::Classification::kUnknown;
      verdict.unknown_reason = session_result.unknown_reason(handle);
    } else {
      verdict.classification = fault::Classification::kSurvived;
    }
    const core::JobResult& reported = session_result.Reported(handle);
    verdict.attempts = reported.attempt + 1;
    verdict.wall_seconds = reported.wall_seconds;

    if (options_.cache != nullptr &&
        verdict.classification != fault::Classification::kUnknown) {
      options_.cache->Store(pending[i].key,
                            {verdict.classification, verdict.kind,
                             verdict.cex_cycles, verdict.attempts});
    }
  }

  // Aliases inherit their representative's verdict (which is never cached
  // here: cache hits were peeled off before dedup, and an unknown
  // representative propagates as unknown — dedup must not launder an
  // undecided verdict into a decided-looking one).
  for (size_t i = 0; i < pending.size(); ++i) {
    if (!pending[i].aliased) continue;
    const SubVerdict& rep = result.subs[pending[i].alias_of];
    SubVerdict& verdict = result.subs[i];
    verdict.classification = rep.classification;
    verdict.kind = rep.kind;
    verdict.cex_cycles = rep.cex_cycles;
    verdict.unknown_reason = rep.unknown_reason;
    verdict.attempts = rep.attempts;
  }

  result.wall_seconds = stopwatch.ElapsedSeconds();
  telemetry::AddCounter("decomp.subs", result.subs.size());
  telemetry::AddCounter("decomp.jobs", result.jobs_enqueued);
  telemetry::AddCounter("decomp.deduped", result.deduped);
  telemetry::AddCounter("decomp.cache_hits", result.cache_hits);
  return result;
}

}  // namespace aqed::decomp
