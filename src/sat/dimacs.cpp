#include "sat/dimacs.h"

#include <istream>
#include <sstream>

#include "sat/solver.h"

namespace aqed::sat {

StatusOr<Cnf> ParseDimacs(std::istream& in) {
  Cnf cnf;
  bool header_seen = false;
  uint64_t expected_clauses = 0;
  std::string line;
  std::vector<Lit> current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, fmt;
      int64_t vars = 0, clauses = 0;
      header >> p >> fmt >> vars >> clauses;
      if (fmt != "cnf" || vars < 0 || clauses < 0) {
        return Status::Error("malformed DIMACS header: " + line);
      }
      cnf.num_vars = static_cast<uint32_t>(vars);
      expected_clauses = static_cast<uint64_t>(clauses);
      header_seen = true;
      continue;
    }
    if (!header_seen) return Status::Error("clause before DIMACS header");
    std::istringstream body(line);
    int64_t dimacs_lit = 0;
    while (body >> dimacs_lit) {
      if (dimacs_lit == 0) {
        cnf.clauses.push_back(current);
        current.clear();
        continue;
      }
      const uint64_t var = static_cast<uint64_t>(
          dimacs_lit > 0 ? dimacs_lit : -dimacs_lit) - 1;
      if (var >= cnf.num_vars) {
        return Status::Error("literal exceeds declared variable count");
      }
      current.emplace_back(static_cast<Var>(var), dimacs_lit < 0);
    }
  }
  if (!current.empty()) return Status::Error("unterminated clause");
  if (expected_clauses != cnf.clauses.size()) {
    return Status::Error("clause count mismatch with header");
  }
  return cnf;
}

StatusOr<Cnf> ParseDimacsString(const std::string& text) {
  std::istringstream in(text);
  return ParseDimacs(in);
}

std::string ToDimacs(const Cnf& cnf) {
  std::ostringstream out;
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (Lit lit : clause) {
      const int64_t dimacs_lit =
          (static_cast<int64_t>(lit.var()) + 1) * (lit.negated() ? -1 : 1);
      out << dimacs_lit << ' ';
    }
    out << "0\n";
  }
  return out.str();
}

bool LoadCnf(const Cnf& cnf, Solver& solver) {
  while (solver.num_vars() < cnf.num_vars) solver.NewVar();
  for (const auto& clause : cnf.clauses) {
    if (!solver.AddClause(clause)) return false;
  }
  return true;
}

}  // namespace aqed::sat
