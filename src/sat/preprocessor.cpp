#include "sat/preprocessor.h"

#include <algorithm>

#include "support/status.h"

namespace aqed::sat {

namespace {

// Working state for the eliminator: clauses with lazy deletion plus
// occurrence lists.
class Eliminator {
 public:
  Eliminator(const Cnf& cnf, const std::vector<Var>& frozen,
             const PreprocessOptions& options)
      : options_(options),
        num_vars_(cnf.num_vars),
        frozen_(cnf.num_vars, 0),
        assigned_(cnf.num_vars, LBool::kUndef),
        occ_(2 * static_cast<size_t>(cnf.num_vars)) {
    for (Var var : frozen) frozen_[var] = 1;
    for (const auto& clause : cnf.clauses) AddClause(clause);
  }

  bool unsat() const { return unsat_; }

  void Run(PreprocessResult& result) {
    PropagateAll();
    for (int pass = 0; pass < 3 && !unsat_; ++pass) {
      bool changed = false;
      for (Var var = 0; var < num_vars_ && !unsat_; ++var) {
        if (frozen_[var] || assigned_[var] != LBool::kUndef) continue;
        if (TryEliminate(var, result)) {
          changed = true;
          PropagateAll();
        }
      }
      if (!changed) break;
    }
  }

  Cnf Export() const {
    Cnf out;
    out.num_vars = num_vars_;
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (alive_[i]) out.clauses.push_back(clauses_[i]);
    }
    // Unit clauses for propagated assignments.
    for (Var var = 0; var < num_vars_; ++var) {
      if (assigned_[var] != LBool::kUndef) {
        out.clauses.push_back({Lit(var, assigned_[var] == LBool::kFalse)});
      }
    }
    return out;
  }

 private:
  LBool Value(Lit lit) const {
    return lit.negated() ? Negate(assigned_[lit.var()])
                         : assigned_[lit.var()];
  }

  // Adds a clause (after removing false literals and duplicates); detects
  // tautologies and satisfied clauses. Returns its index or -1.
  void AddClause(std::vector<Lit> clause) {
    std::sort(clause.begin(), clause.end(),
              [](Lit a, Lit b) { return a.index() < b.index(); });
    std::vector<Lit> cleaned;
    Lit prev = kLitUndef;
    for (Lit lit : clause) {
      if (Value(lit) == LBool::kTrue || lit == ~prev) return;  // satisfied
      if (Value(lit) == LBool::kFalse || lit == prev) continue;
      cleaned.push_back(lit);
      prev = lit;
    }
    if (cleaned.empty()) {
      unsat_ = true;
      return;
    }
    if (cleaned.size() == 1) {
      Enqueue(cleaned[0]);
      return;
    }
    const uint32_t index = static_cast<uint32_t>(clauses_.size());
    for (Lit lit : cleaned) occ_[lit.index()].push_back(index);
    clauses_.push_back(std::move(cleaned));
    alive_.push_back(1);
  }

  void Enqueue(Lit lit) {
    if (Value(lit) == LBool::kTrue) return;
    if (Value(lit) == LBool::kFalse) {
      unsat_ = true;
      return;
    }
    assigned_[lit.var()] = lit.negated() ? LBool::kFalse : LBool::kTrue;
    units_.push_back(lit);
  }

  // Exhaustive unit propagation over the clause database.
  void PropagateAll() {
    while (!units_.empty() && !unsat_) {
      const Lit lit = units_.back();
      units_.pop_back();
      // Clauses satisfied by lit die; clauses containing ~lit shrink.
      for (uint32_t index : occ_[lit.index()]) {
        alive_[index] = 0;
      }
      const auto falsified = occ_[(~lit).index()];
      for (uint32_t index : falsified) {
        if (!alive_[index]) continue;
        std::vector<Lit> shrunk;
        for (Lit other : clauses_[index]) {
          if (other != ~lit) shrunk.push_back(other);
        }
        alive_[index] = 0;
        AddClause(std::move(shrunk));
        if (unsat_) return;
      }
    }
  }

  // Collects alive clause indices containing `lit`, compacting the list.
  std::vector<uint32_t> AliveOcc(Lit lit) {
    auto& list = occ_[lit.index()];
    std::vector<uint32_t> alive_list;
    size_t kept = 0;
    for (uint32_t index : list) {
      if (!alive_[index]) continue;
      list[kept++] = index;
      alive_list.push_back(index);
    }
    list.resize(kept);
    return alive_list;
  }

  // Resolves two clauses on `var`; returns false if tautological.
  bool Resolve(const std::vector<Lit>& pos, const std::vector<Lit>& neg,
               Var var, std::vector<Lit>& out) const {
    out.clear();
    for (Lit lit : pos) {
      if (lit.var() != var) out.push_back(lit);
    }
    for (Lit lit : neg) {
      if (lit.var() == var) continue;
      bool tautology = false;
      bool duplicate = false;
      for (Lit existing : out) {
        if (existing == ~lit) tautology = true;
        if (existing == lit) duplicate = true;
      }
      if (tautology) return false;
      if (!duplicate) out.push_back(lit);
    }
    return true;
  }

  bool TryEliminate(Var var, PreprocessResult& result) {
    const Lit pos_lit(var, false);
    const Lit neg_lit(var, true);
    const auto pos = AliveOcc(pos_lit);
    const auto neg = AliveOcc(neg_lit);
    const size_t total = pos.size() + neg.size();
    if (total == 0) return false;
    if (pos.size() > options_.occurrence_limit ||
        neg.size() > options_.occurrence_limit) {
      return false;
    }
    for (uint32_t index : pos) {
      if (clauses_[index].size() > options_.clause_size_limit) return false;
    }
    for (uint32_t index : neg) {
      if (clauses_[index].size() > options_.clause_size_limit) return false;
    }

    // Count resolvents (pure literals have zero).
    std::vector<std::vector<Lit>> resolvents;
    std::vector<Lit> scratch;
    for (uint32_t pi : pos) {
      for (uint32_t ni : neg) {
        if (Resolve(clauses_[pi], clauses_[ni], var, scratch)) {
          resolvents.push_back(scratch);
          if (resolvents.size() >
              total + static_cast<size_t>(std::max(options_.grow, 0))) {
            return false;
          }
        }
      }
    }

    // Commit: move the variable's clauses to the reconstruction stack and
    // add the resolvents.
    PreprocessResult::Elimination elimination;
    elimination.var = var;
    for (uint32_t index : pos) {
      elimination.clauses.push_back(clauses_[index]);
      alive_[index] = 0;
    }
    for (uint32_t index : neg) {
      elimination.clauses.push_back(clauses_[index]);
      alive_[index] = 0;
    }
    result.eliminated.push_back(std::move(elimination));
    for (auto& resolvent : resolvents) {
      AddClause(std::move(resolvent));
      if (unsat_) return true;
    }
    return true;
  }

  const PreprocessOptions options_;
  const uint32_t num_vars_;
  std::vector<uint8_t> frozen_;
  std::vector<LBool> assigned_;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<uint8_t> alive_;
  std::vector<std::vector<uint32_t>> occ_;
  std::vector<Lit> units_;
  bool unsat_ = false;
};

}  // namespace

PreprocessResult Preprocess(const Cnf& cnf, const std::vector<Var>& frozen,
                            const PreprocessOptions& options) {
  PreprocessResult result;
  Eliminator eliminator(cnf, frozen, options);
  eliminator.Run(result);
  result.unsat = eliminator.unsat();
  if (!result.unsat) result.cnf = eliminator.Export();
  result.cnf.num_vars = cnf.num_vars;
  return result;
}

void ExtendModel(const PreprocessResult& result, std::vector<LBool>& model) {
  auto lit_true = [&model](Lit lit) {
    // Unassigned variables uniformly read as false.
    const bool var_true = model[lit.var()] == LBool::kTrue;
    return lit.negated() ? !var_true : var_true;
  };
  for (auto it = result.eliminated.rbegin(); it != result.eliminated.rend();
       ++it) {
    // v = true works iff every clause containing ~v is satisfied elsewhere.
    bool can_be_true = true;
    for (const auto& clause : it->clauses) {
      bool contains_neg = false;
      bool satisfied_elsewhere = false;
      for (Lit lit : clause) {
        if (lit.var() == it->var) {
          if (lit.negated()) contains_neg = true;
          continue;
        }
        if (lit_true(lit)) satisfied_elsewhere = true;
      }
      if (contains_neg && !satisfied_elsewhere) {
        can_be_true = false;
        break;
      }
    }
    model[it->var] = can_be_true ? LBool::kTrue : LBool::kFalse;
  }
}

}  // namespace aqed::sat
