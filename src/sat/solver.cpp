#include "sat/solver.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "sat/dimacs.h"
#include "sched/memory_governor.h"
#include "support/failpoint.h"
#include "support/status.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace aqed::sat {

// ---------------------------------------------------------------------------
// Clause arena
// ---------------------------------------------------------------------------

CRef Solver::AllocClause(std::span<const Lit> lits, bool learnt) {
  // Chaos site: an armed trigger can throw a simulated allocation failure
  // (or delay) out of the solver's hottest allocation path.
  (void)AQED_FAILPOINT("sat.alloc");
  const CRef cref = static_cast<CRef>(arena_.size());
  arena_.push_back((static_cast<uint32_t>(lits.size()) << 1) |
                   (learnt ? 1u : 0u));
  arena_.push_back(0);  // activity bits
  arena_.push_back(0);  // literal block distance (learnt clauses)
  for (Lit lit : lits) arena_.push_back(lit.index());
  return cref;
}

float Solver::ClauseActivity(CRef cref) const {
  float activity;
  std::memcpy(&activity, &arena_[cref + 1], sizeof(activity));
  return activity;
}

void Solver::SetClauseActivity(CRef cref, float activity) {
  std::memcpy(&arena_[cref + 1], &activity, sizeof(activity));
}

void Solver::ShrinkClause(CRef cref, uint32_t new_size) {
  arena_[cref] = (new_size << 1) | (arena_[cref] & 1);
}

// ---------------------------------------------------------------------------
// Variables and clauses
// ---------------------------------------------------------------------------

Var Solver::NewVar() {
  const Var var = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  model_.push_back(LBool::kUndef);
  polarity_.push_back(1);  // default phase: false
  activity_.push_back(0.0);
  reason_.push_back(kCRefUndef);
  level_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_index_.push_back(kVarUndef);
  InsertVarOrder(var);
  return var;
}

bool Solver::AddClause(std::span<const Lit> lits) {
  AQED_CHECK(DecisionLevel() == 0, "AddClause requires decision level 0");
  if (!ok_) return false;

  // Sort, deduplicate, drop false literals, detect tautologies and
  // satisfied clauses.
  std::vector<Lit> cleaned(lits.begin(), lits.end());
  std::sort(cleaned.begin(), cleaned.end(),
            [](Lit a, Lit b) { return a.index() < b.index(); });
  std::vector<Lit> out;
  out.reserve(cleaned.size());
  Lit prev = kLitUndef;
  for (Lit lit : cleaned) {
    AQED_CHECK(lit.var() < num_vars(), "literal over unknown variable");
    if (Value(lit) == LBool::kTrue || lit == ~prev) return true;  // satisfied
    if (Value(lit) != LBool::kFalse && lit != prev) {
      out.push_back(lit);
      prev = lit;
    }
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    UncheckedEnqueue(out[0], kCRefUndef);
    ok_ = (Propagate() == kCRefUndef);
    return ok_;
  }
  const CRef cref = AllocClause(out, /*learnt=*/false);
  clauses_.push_back(cref);
  ++num_problem_clauses_;
  AttachClause(cref);
  return true;
}

void Solver::AttachClause(CRef cref) {
  const Lit* lits = ClauseLits(cref);
  AQED_CHECK(ClauseSize(cref) >= 2, "attach on short clause");
  watches_[(~lits[0]).index()].push_back({cref, lits[1]});
  watches_[(~lits[1]).index()].push_back({cref, lits[0]});
}

void Solver::DetachClause(CRef cref) {
  const Lit* lits = ClauseLits(cref);
  for (int i = 0; i < 2; ++i) {
    auto& watch_list = watches_[(~lits[i]).index()];
    auto it = std::find_if(watch_list.begin(), watch_list.end(),
                           [&](const Watcher& w) { return w.cref == cref; });
    AQED_CHECK(it != watch_list.end(), "watcher missing in detach");
    *it = watch_list.back();
    watch_list.pop_back();
  }
}

bool Solver::Locked(CRef cref) const {
  const Lit first = ClauseLits(cref)[0];
  return Value(first) == LBool::kTrue && reason_[first.var()] == cref;
}

void Solver::RemoveClause(CRef cref) {
  DetachClause(cref);
  if (Locked(cref)) reason_[ClauseLits(cref)[0].var()] = kCRefUndef;
  // Arena space is not reclaimed; BMC instances at our scale fit comfortably.
}

void Solver::ExportClauses(Cnf& out) const {
  AQED_CHECK(DecisionLevel() == 0, "ExportClauses requires decision level 0");
  out.num_vars = num_vars();
  out.clauses.clear();
  for (const Lit lit : trail_) {
    out.clauses.push_back({lit});  // level-0 facts
  }
  for (const CRef cref : clauses_) {
    const Lit* lits = ClauseLits(cref);
    out.clauses.emplace_back(lits, lits + ClauseSize(cref));
  }
}

// ---------------------------------------------------------------------------
// Assignment trail and propagation
// ---------------------------------------------------------------------------

void Solver::UncheckedEnqueue(Lit lit, CRef reason) {
  AQED_CHECK(Value(lit) == LBool::kUndef, "enqueue of assigned literal");
  assigns_[lit.var()] = lit.negated() ? LBool::kFalse : LBool::kTrue;
  reason_[lit.var()] = reason;
  level_[lit.var()] = DecisionLevel();
  trail_.push_back(lit);
}

CRef Solver::Propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p is true; visit watchers of p.
    ++stats_.propagations;
    auto& watch_list = watches_[p.index()];
    size_t keep = 0;
    size_t i = 0;
    for (; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      if (Value(w.blocker) == LBool::kTrue) {
        watch_list[keep++] = w;
        continue;
      }
      const CRef cref = w.cref;
      Lit* lits = ClauseLits(cref);
      const uint32_t size = ClauseSize(cref);
      // Ensure the false literal (~p) is at position 1.
      const Lit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      AQED_CHECK(lits[1] == false_lit, "watch invariant violated");
      // If the other watched literal is true, the clause is satisfied.
      if (Value(lits[0]) == LBool::kTrue) {
        watch_list[keep++] = {cref, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (uint32_t j = 2; j < size; ++j) {
        if (Value(lits[j]) != LBool::kFalse) {
          std::swap(lits[1], lits[j]);
          watches_[(~lits[1]).index()].push_back({cref, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      watch_list[keep++] = {cref, lits[0]};
      if (Value(lits[0]) == LBool::kFalse) {
        confl = cref;
        qhead_ = static_cast<uint32_t>(trail_.size());
        // Copy back the remaining watchers and stop.
        for (++i; i < watch_list.size(); ++i) watch_list[keep++] = watch_list[i];
        break;
      }
      UncheckedEnqueue(lits[0], cref);
    }
    watch_list.resize(keep);
    if (confl != kCRefUndef) break;
  }
  return confl;
}

void Solver::CancelUntil(uint32_t target_level) {
  if (DecisionLevel() <= target_level) return;
  for (size_t i = trail_.size(); i-- > trail_lim_[target_level];) {
    const Var var = trail_[i].var();
    assigns_[var] = LBool::kUndef;
    if (options_.use_phase_saving) {
      polarity_[var] = trail_[i].negated() ? 1 : 0;
    }
    InsertVarOrder(var);
  }
  qhead_ = trail_lim_[target_level];
  trail_.resize(trail_lim_[target_level]);
  trail_lim_.resize(target_level);
}

// ---------------------------------------------------------------------------
// Conflict analysis (first UIP with deep minimization)
// ---------------------------------------------------------------------------

void Solver::Analyze(CRef confl, std::vector<Lit>& out_learnt,
                     uint32_t& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(kLitUndef);  // placeholder for the asserting literal

  Lit p = kLitUndef;
  int path_count = 0;
  size_t index = trail_.size();

  do {
    AQED_CHECK(confl != kCRefUndef, "missing antecedent in analysis");
    if (ClauseLearnt(confl)) ClaBumpActivity(confl);
    const Lit* lits = ClauseLits(confl);
    const uint32_t size = ClauseSize(confl);
    for (uint32_t j = (p == kLitUndef) ? 0 : 1; j < size; ++j) {
      const Lit q = lits[j];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      VarBumpActivity(q.var());
      seen_[q.var()] = 1;
      if (level_[q.var()] >= DecisionLevel()) {
        ++path_count;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Select next literal on the current level to resolve on.
    while (!seen_[trail_[--index].var()]) {
    }
    p = trail_[index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Minimize: remove literals whose negation is implied by the rest.
  analyze_toclear_.assign(out_learnt.begin(), out_learnt.end());
  size_t kept = 1;
  const size_t original_size = out_learnt.size();
  for (size_t i = 1; i < out_learnt.size(); ++i) {
    const Lit lit = out_learnt[i];
    if (!options_.use_minimization || reason_[lit.var()] == kCRefUndef ||
        !LitRedundant(lit)) {
      out_learnt[kept++] = lit;
    }
  }
  out_learnt.resize(kept);
  stats_.minimized_literals += original_size - kept;
  stats_.learnt_literals += out_learnt.size();

  // Find backtrack level: highest level among out_learnt[1..].
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    size_t max_pos = 1;
    for (size_t i = 2; i < out_learnt.size(); ++i) {
      if (level_[out_learnt[i].var()] > level_[out_learnt[max_pos].var()]) {
        max_pos = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_pos]);
    out_btlevel = level_[out_learnt[1].var()];
  }

  for (Lit lit : analyze_toclear_) seen_[lit.var()] = 0;
}

// Checks whether `lit` (a non-asserting literal of the learnt clause) is
// implied by the remaining seen literals; iterative DFS over antecedents.
bool Solver::LitRedundant(Lit lit) {
  minimize_stack_.clear();
  minimize_stack_.push_back(lit);
  const size_t toclear_base = analyze_toclear_.size();
  while (!minimize_stack_.empty()) {
    const Lit current = minimize_stack_.back();
    minimize_stack_.pop_back();
    const CRef reason = reason_[current.var()];
    AQED_CHECK(reason != kCRefUndef, "redundancy check hit a decision");
    const Lit* lits = ClauseLits(reason);
    const uint32_t size = ClauseSize(reason);
    for (uint32_t i = 1; i < size; ++i) {
      const Lit q = lits[i];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      if (reason_[q.var()] == kCRefUndef) {
        // Reached a decision that is not part of the clause: not redundant.
        for (size_t j = toclear_base; j < analyze_toclear_.size(); ++j) {
          seen_[analyze_toclear_[j].var()] = 0;
        }
        analyze_toclear_.resize(toclear_base);
        return false;
      }
      seen_[q.var()] = 1;
      analyze_toclear_.push_back(q);
      minimize_stack_.push_back(q);
    }
  }
  return true;
}

// Computes which assumptions were responsible for forcing ~p.
void Solver::AnalyzeFinal(Lit p, std::vector<Lit>& out_conflict) {
  out_conflict.clear();
  out_conflict.push_back(p);
  if (DecisionLevel() == 0) return;
  seen_[p.var()] = 1;
  for (size_t i = trail_.size(); i-- > trail_lim_[0];) {
    const Var var = trail_[i].var();
    if (!seen_[var]) continue;
    if (reason_[var] == kCRefUndef) {
      AQED_CHECK(level_[var] > 0, "decision at level 0");
      out_conflict.push_back(~trail_[i]);
    } else {
      const Lit* lits = ClauseLits(reason_[var]);
      const uint32_t size = ClauseSize(reason_[var]);
      for (uint32_t j = 1; j < size; ++j) {
        if (level_[lits[j].var()] > 0) seen_[lits[j].var()] = 1;
      }
    }
    seen_[var] = 0;
  }
  seen_[p.var()] = 0;
}

// ---------------------------------------------------------------------------
// Heuristics
// ---------------------------------------------------------------------------

void Solver::VarBumpActivity(Var var) {
  if ((activity_[var] += var_inc_) > 1e100) {
    for (auto& activity : activity_) activity *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (HeapInHeap(var)) HeapUp(heap_index_[var]);
}

void Solver::VarDecayActivity() { var_inc_ /= options_.var_decay; }

void Solver::ClaBumpActivity(CRef cref) {
  float activity = ClauseActivity(cref) + static_cast<float>(cla_inc_);
  if (activity > 1e20f) {
    for (CRef learnt : learnts_) {
      SetClauseActivity(learnt, ClauseActivity(learnt) * 1e-20f);
    }
    cla_inc_ *= 1e-20;
    activity = ClauseActivity(cref) + static_cast<float>(cla_inc_);
  }
  SetClauseActivity(cref, activity);
}

void Solver::ClaDecayActivity() { cla_inc_ /= options_.clause_decay; }

bool Solver::HeapLess(Var a, Var b) const {
  return activity_[a] > activity_[b];
}

void Solver::HeapUp(uint32_t pos) {
  const Var var = heap_[pos];
  while (pos > 0) {
    const uint32_t parent = (pos - 1) >> 1;
    if (!HeapLess(var, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    heap_index_[heap_[pos]] = pos;
    pos = parent;
  }
  heap_[pos] = var;
  heap_index_[var] = pos;
}

void Solver::HeapDown(uint32_t pos) {
  const Var var = heap_[pos];
  const uint32_t size = static_cast<uint32_t>(heap_.size());
  for (;;) {
    uint32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size && HeapLess(heap_[child + 1], heap_[child])) ++child;
    if (!HeapLess(heap_[child], var)) break;
    heap_[pos] = heap_[child];
    heap_index_[heap_[pos]] = pos;
    pos = child;
  }
  heap_[pos] = var;
  heap_index_[var] = pos;
}

void Solver::InsertVarOrder(Var var) {
  if (HeapInHeap(var)) return;
  heap_.push_back(var);
  heap_index_[var] = static_cast<uint32_t>(heap_.size()) - 1;
  HeapUp(heap_index_[var]);
}

Var Solver::HeapPop() {
  const Var top = heap_[0];
  heap_index_[top] = kVarUndef;
  heap_[0] = heap_.back();
  heap_index_[heap_[0]] = 0;
  heap_.pop_back();
  if (!heap_.empty()) HeapDown(0);
  return top;
}

Lit Solver::PickBranchLit() {
  Var next = kVarUndef;
  if (options_.use_vsids) {
    while (!heap_.empty()) {
      const Var candidate = HeapPop();
      if (Value(candidate) == LBool::kUndef) {
        next = candidate;
        break;
      }
    }
  } else {
    for (Var var = 0; var < num_vars(); ++var) {
      if (Value(var) == LBool::kUndef) {
        next = var;
        break;
      }
    }
  }
  if (next == kVarUndef) return kLitUndef;
  const bool negated =
      options_.use_phase_saving ? polarity_[next] != 0 : true;
  return Lit(next, negated);
}

// ---------------------------------------------------------------------------
// Learnt-clause database reduction
// ---------------------------------------------------------------------------

void Solver::ReduceDB() {
  ++stats_.reduce_db_rounds;
  max_learnts_ *= 1.1;  // allow the database to grow over time
  // Glucose-style: clauses with small literal-block distance encode tight
  // dependencies between few decision levels and are kept unconditionally;
  // the rest are ranked worst-first (high LBD, then low activity).
  std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
    if (ClauseLbd(a) != ClauseLbd(b)) return ClauseLbd(a) > ClauseLbd(b);
    return ClauseActivity(a) < ClauseActivity(b);
  });
  size_t kept = 0;
  const size_t half = learnts_.size() / 2;
  for (size_t i = 0; i < learnts_.size(); ++i) {
    const CRef cref = learnts_[i];
    const bool removable = ClauseSize(cref) > 2 && ClauseLbd(cref) > 3 &&
                           !Locked(cref) && i < half;
    if (removable) {
      RemoveClause(cref);
    } else {
      learnts_[kept++] = cref;
    }
  }
  learnts_.resize(kept);
}

void Solver::ShedLearnts() {
  ++stats_.shed_rounds;
  size_t kept = 0;
  for (const CRef cref : learnts_) {
    const bool removable =
        ClauseSize(cref) > 2 && ClauseLbd(cref) > 2 && !Locked(cref);
    if (removable) {
      RemoveClause(cref);
    } else {
      learnts_[kept++] = cref;
    }
  }
  learnts_.resize(kept);
  // Keep the database small while pressure lasts; the next Solve call
  // resets this to the normal growth schedule.
  max_learnts_ =
      std::max<double>(static_cast<double>(learnts_.size()) + 512.0, 1024.0);
  CompactArena();
  shed_floor_ = 2 * learnts_.size() + 1024;
  telemetry::AddCounter("sat.shed_rounds", 1);
}

void Solver::CompactArena() {
  std::vector<uint32_t> fresh;
  size_t needed = 0;
  for (const CRef cref : clauses_) needed += 3 + ClauseSize(cref);
  for (const CRef cref : learnts_) needed += 3 + ClauseSize(cref);
  fresh.reserve(needed);
  std::unordered_map<CRef, CRef> remap;
  remap.reserve(clauses_.size() + learnts_.size());
  const auto move_clause = [&](CRef old_ref) {
    const uint32_t words = 3 + ClauseSize(old_ref);
    const CRef fresh_ref = static_cast<CRef>(fresh.size());
    fresh.insert(fresh.end(), arena_.begin() + old_ref,
                 arena_.begin() + old_ref + words);
    remap.emplace(old_ref, fresh_ref);
    return fresh_ref;
  };
  for (CRef& cref : clauses_) cref = move_clause(cref);
  for (CRef& cref : learnts_) cref = move_clause(cref);
  arena_ = std::move(fresh);
  // Reasons: an assigned variable's reason clause is locked, so it
  // survived the shed and is in the map; unassigned variables may carry a
  // stale reason from a backtracked assignment — drop those.
  for (Var var = 0; var < num_vars(); ++var) {
    if (Value(var) == LBool::kUndef) {
      reason_[var] = kCRefUndef;
      continue;
    }
    CRef& reason = reason_[var];
    if (reason == kCRefUndef) continue;
    const auto it = remap.find(reason);
    AQED_CHECK(it != remap.end(), "reason clause lost in compaction");
    reason = it->second;
  }
  for (auto& watch_list : watches_) {
    for (Watcher& watcher : watch_list) {
      const auto it = remap.find(watcher.cref);
      AQED_CHECK(it != remap.end(), "watched clause lost in compaction");
      watcher.cref = it->second;
    }
  }
}

uint64_t Solver::MemoryBytes() const {
  // Constant-time: capacities of the big flat arrays plus a per-variable
  // constant covering assigns/model/polarity/activity/reason/level/heap/
  // seen and the two watch-list headers, plus two watchers per attached
  // clause. An estimate — the governor ranks jobs, it doesn't bill them.
  const uint64_t per_var = 2 * sizeof(LBool) + 1 + sizeof(double) +
                           sizeof(CRef) + sizeof(uint32_t) + sizeof(Var) +
                           sizeof(uint32_t) + 1 +
                           2 * sizeof(std::vector<Watcher>);
  return arena_.capacity() * sizeof(uint32_t) +
         (clauses_.capacity() + learnts_.capacity()) * sizeof(CRef) +
         trail_.capacity() * sizeof(Lit) +
         static_cast<uint64_t>(num_vars()) * per_var +
         (num_problem_clauses_ + learnts_.size()) * 2 * sizeof(Watcher);
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

uint64_t Solver::Luby(uint64_t i) {
  // Finds the subsequence value for the Luby restart sequence
  // 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

SolveResult Solver::Search(int64_t conflicts_budget) {
  int64_t conflicts_here = 0;
  std::vector<Lit> learnt;
  for (;;) {
    const CRef confl = Propagate();
    if (confl != kCRefUndef) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) return SolveResult::kUnsat;
      uint32_t backtrack_level = 0;
      Analyze(confl, learnt, backtrack_level);
      CancelUntil(backtrack_level);
      if (learnt.size() == 1) {
        UncheckedEnqueue(learnt[0], kCRefUndef);
      } else {
        const CRef cref = AllocClause(learnt, /*learnt=*/true);
        // Literal block distance: number of distinct decision levels in the
        // clause (computed after backtracking bumps nothing, so use the
        // recorded levels).
        lbd_levels_.clear();
        for (const Lit lit : learnt) lbd_levels_.push_back(level_[lit.var()]);
        std::sort(lbd_levels_.begin(), lbd_levels_.end());
        const uint32_t lbd = static_cast<uint32_t>(
            std::unique(lbd_levels_.begin(), lbd_levels_.end()) -
            lbd_levels_.begin());
        SetClauseLbd(cref, lbd);
        learnts_.push_back(cref);
        AttachClause(cref);
        ClaBumpActivity(cref);
        UncheckedEnqueue(learnt[0], cref);
      }
      VarDecayActivity();
      ClaDecayActivity();
      continue;
    }

    // No conflict.
    if (options_.cancel.cancelled()) {
      CancelUntil(0);
      return SolveResult::kUnknown;  // cooperative cancellation
    }
    if (conflicts_budget >= 0 && conflicts_here >= conflicts_budget) {
      CancelUntil(0);
      return SolveResult::kUnknown;  // restart (or budget exhausted)
    }
    if (sched::CurrentMemoryPressure() >= sched::MemoryPressure::kShed &&
        learnts_.size() >= shed_floor_) {
      // Governor stage 1: shed the learnt database and compact the arena
      // regardless of use_reduce_db — memory pressure outranks ablation.
      ShedLearnts();
    } else if (options_.use_reduce_db &&
               static_cast<double>(learnts_.size()) >=
                   max_learnts_ + trail_.size()) {
      ReduceDB();
    }

    Lit next = kLitUndef;
    while (DecisionLevel() < assumptions_.size()) {
      const Lit assumption = assumptions_[DecisionLevel()];
      if (Value(assumption) == LBool::kTrue) {
        NewDecisionLevel();  // dummy level, already satisfied
      } else if (Value(assumption) == LBool::kFalse) {
        AnalyzeFinal(~assumption, conflict_);
        return SolveResult::kUnsat;
      } else {
        next = assumption;
        break;
      }
    }
    if (next == kLitUndef) {
      ++stats_.decisions;
      next = PickBranchLit();
      if (next == kLitUndef) {
        // All variables assigned: model found.
        model_ = assigns_;
        return SolveResult::kSat;
      }
    }
    NewDecisionLevel();
    UncheckedEnqueue(next, kCRefUndef);
  }
}

std::unique_ptr<Solver> Solver::Clone(const Options& options) const {
  AQED_CHECK(DecisionLevel() == 0, "Clone requires decision level 0");
  auto clone = std::make_unique<Solver>(options);
  clone->arena_ = arena_;
  clone->clauses_ = clauses_;
  clone->learnts_ = learnts_;
  clone->num_problem_clauses_ = num_problem_clauses_;
  clone->assigns_ = assigns_;
  clone->model_ = model_;
  clone->polarity_ = polarity_;
  clone->activity_ = activity_;
  clone->reason_ = reason_;
  clone->level_ = level_;
  clone->watches_ = watches_;
  clone->trail_ = trail_;
  clone->trail_lim_ = trail_lim_;
  clone->qhead_ = qhead_;
  clone->heap_ = heap_;
  clone->heap_index_ = heap_index_;
  clone->seen_ = seen_;
  clone->var_inc_ = var_inc_;
  clone->cla_inc_ = cla_inc_;
  clone->max_learnts_ = max_learnts_;
  clone->ok_ = ok_;
  return clone;
}

std::vector<Var> Solver::TopActivityVars(uint32_t n) const {
  std::vector<Var> free_vars;
  free_vars.reserve(num_vars());
  for (Var var = 0; var < num_vars(); ++var) {
    if (Value(var) == LBool::kUndef) free_vars.push_back(var);
  }
  const size_t count = std::min<size_t>(n, free_vars.size());
  std::partial_sort(free_vars.begin(), free_vars.begin() + count,
                    free_vars.end(), [&](Var a, Var b) {
                      if (activity_[a] != activity_[b]) {
                        return activity_[a] > activity_[b];
                      }
                      return a < b;
                    });
  free_vars.resize(count);
  return free_vars;
}

SolveResult Solver::Solve(std::span<const Lit> assumptions,
                          const SolveLimits& limits) {
  conflict_.clear();
  if (!ok_) return SolveResult::kUnsat;
  // One span per solve call; search-effort counters are accumulated in the
  // private stats_ as always and flushed to the metrics registry as deltas
  // below — no atomics inside the search loop.
  telemetry::Span span("sat.solve",
                       {{"vars", static_cast<int64_t>(num_vars())},
                        {"clauses",
                         static_cast<int64_t>(num_problem_clauses_)}});
  const Statistics before = stats_;
  assumptions_.assign(assumptions.begin(), assumptions.end());
  for (Lit assumption : assumptions_) {
    AQED_CHECK(assumption.var() < num_vars(), "assumption over unknown var");
  }
  max_learnts_ = std::max<double>(static_cast<double>(num_problem_clauses_) / 3.0, 1000.0);

  const int64_t budget = limits.max_conflicts;
  int64_t total_conflicts = 0;
  SolveResult result = SolveResult::kUnknown;
  for (uint64_t restart = 0; result == SolveResult::kUnknown; ++restart) {
    if (options_.cancel.cancelled()) break;
    // Refresh the governor's view of this job's footprint once per
    // restart: frequent enough to rank jobs honestly, far off the
    // per-decision hot path.
    sched::PublishSolverMemory(MemoryBytes());
    int64_t this_restart = options_.use_restarts
                               ? static_cast<int64_t>(Luby(restart)) *
                                     options_.restart_base
                               : -1;
    if (budget >= 0) {
      const int64_t remaining = budget - total_conflicts;
      if (remaining <= 0) break;
      this_restart = this_restart < 0
                         ? remaining
                         : std::min<int64_t>(this_restart, remaining);
    }
    const uint64_t conflicts_before = stats_.conflicts;
    result = Search(this_restart);
    total_conflicts +=
        static_cast<int64_t>(stats_.conflicts - conflicts_before);
    if (result == SolveResult::kUnknown) ++stats_.restarts;
  }
  CancelUntil(0);
  // Record why an inconclusive solve stopped: the only ways out of the
  // restart loop with kUnknown are a fired cancellation token (which knows
  // whether a deadline or a sibling tripped it) or budget exhaustion.
  stats_.last_unknown =
      result != SolveResult::kUnknown ? UnknownReason::kNone
      : options_.cancel.cancelled()
          ? sched::UnknownReasonFromCancel(options_.cancel.reason())
          : UnknownReason::kConflictBudget;
  if (telemetry::Enabled()) {
    telemetry::AddCounter("sat.solves", 1);
    // Formula-size gauges for the flight recorder: sampled mid-run they
    // show clause-database growth across BMC depths — the memory half of
    // the BMC blow-up story. Set once per solve, never in the search loop.
    telemetry::SetGauge("sat.vars", static_cast<int64_t>(num_vars()));
    telemetry::SetGauge("sat.clauses", static_cast<int64_t>(
                                           num_problem_clauses_ +
                                           learnts_.size()));
    telemetry::AddCounter("sat.decisions", stats_.decisions - before.decisions);
    telemetry::AddCounter("sat.propagations",
                          stats_.propagations - before.propagations);
    telemetry::AddCounter("sat.conflicts", stats_.conflicts - before.conflicts);
    telemetry::AddCounter("sat.restarts", stats_.restarts - before.restarts);
    span.AddArg("conflicts",
                static_cast<int64_t>(stats_.conflicts - before.conflicts));
    span.AddArg("result", static_cast<int64_t>(result));
  }
  return result;
}

}  // namespace aqed::sat
