// Core value types for the CDCL SAT solver: variables, literals, and the
// three-valued assignment domain.
//
// Literal encoding follows the MiniSat convention: a literal is
// 2*var + sign, where sign == 1 means the negated literal. This keeps
// literal-indexed arrays (watch lists, assignment tables) dense.
#pragma once

#include <cstdint>
#include <functional>

namespace aqed::sat {

using Var = uint32_t;

inline constexpr Var kVarUndef = ~Var{0};

class Lit {
 public:
  constexpr Lit() : index_(~uint32_t{0}) {}
  constexpr Lit(Var var, bool negated) : index_(2 * var + (negated ? 1 : 0)) {}

  static constexpr Lit FromIndex(uint32_t index) {
    Lit lit;
    lit.index_ = index;
    return lit;
  }

  constexpr Var var() const { return index_ >> 1; }
  constexpr bool negated() const { return (index_ & 1) != 0; }
  constexpr uint32_t index() const { return index_; }

  constexpr Lit operator~() const { return FromIndex(index_ ^ 1); }
  constexpr bool operator==(const Lit& other) const = default;

 private:
  uint32_t index_;
};

inline constexpr Lit kLitUndef{};

// Three-valued assignment: true / false / unassigned.
enum class LBool : uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

// Negation that maps undef to undef.
constexpr LBool Negate(LBool value) {
  switch (value) {
    case LBool::kTrue:
      return LBool::kFalse;
    case LBool::kFalse:
      return LBool::kTrue;
    default:
      return LBool::kUndef;
  }
}

// Result of a (possibly budgeted) solve call.
enum class SolveResult : uint8_t { kSat, kUnsat, kUnknown };

}  // namespace aqed::sat

template <>
struct std::hash<aqed::sat::Lit> {
  size_t operator()(const aqed::sat::Lit& lit) const noexcept {
    return std::hash<uint32_t>{}(lit.index());
  }
};
