// CDCL SAT solver in the MiniSat lineage.
//
// Features: two-watched-literal propagation, VSIDS decision heuristic with a
// binary order heap, phase saving, first-UIP conflict analysis with deep
// clause minimization, Luby restarts, activity-driven learnt-clause database
// reduction, and incremental solving under assumptions with failed-assumption
// (unsat core over assumptions) extraction.
//
// Every heuristic can be disabled through Options; the SAT-ablation benchmark
// (bench_ablation_sat) uses this to quantify each feature's contribution on
// A-QED BMC workloads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sat/types.h"
#include "sched/cancellation.h"

namespace aqed::sat {

// Reference to a clause in the arena (word offset). kCRefUndef = none.
using CRef = uint32_t;
inline constexpr CRef kCRefUndef = ~CRef{0};

// Per-call resource limits for Solver::Solve. Passed explicitly with every
// call so concurrent workers sharing one retry policy never race on hidden
// solver state (the removed predecessor, a stateful SetConflictBudget,
// applied to whichever Solve happened to run next).
struct SolveLimits {
  // Conflict cap for this call; Solve returns kUnknown with
  // UnknownReason::kConflictBudget when exceeded. Negative: unlimited.
  int64_t max_conflicts = -1;
};

class Solver {
 public:
  struct Options {
    bool use_vsids = true;           // false: lowest-index unassigned var
    bool use_phase_saving = true;    // false: always decide negative
    bool use_minimization = true;    // false: raw 1UIP clauses
    bool use_restarts = true;        // false: single unbounded search
    bool use_reduce_db = true;       // false: keep every learnt clause
    double var_decay = 0.95;
    double clause_decay = 0.999;
    int restart_base = 100;          // conflicts per Luby unit
    // Cooperative cancellation: Solve returns kUnknown soon after the
    // token's source is cancelled (polled once per search-loop iteration).
    // A default token never cancels.
    sched::CancellationToken cancel;
  };

  struct Statistics {
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t conflicts = 0;
    uint64_t restarts = 0;
    uint64_t learnt_literals = 0;
    uint64_t minimized_literals = 0;  // removed by clause minimization
    uint64_t reduce_db_rounds = 0;
    // Memory-pressure shed rounds (ShedLearnts + arena compaction) taken
    // because the session's memory governor published kShed or worse.
    uint64_t shed_rounds = 0;
    // Why the most recent Solve() returned kUnknown (kNone when it returned
    // kSat/kUnsat): conflict-budget exhaustion, a tripped deadline watchdog,
    // or cooperative cancellation.
    UnknownReason last_unknown = UnknownReason::kNone;
  };

  Solver() = default;
  explicit Solver(const Options& options) : options_(options) {}

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // Creates a fresh variable and returns it.
  Var NewVar();
  uint32_t num_vars() const { return static_cast<uint32_t>(assigns_.size()); }

  // Adds a clause over existing variables. Returns false if the formula
  // became trivially unsatisfiable (empty clause / conflicting units).
  bool AddClause(std::span<const Lit> lits);
  bool AddClause(std::initializer_list<Lit> lits) {
    return AddClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  // Solves under the given assumptions and per-call limits. All assumption
  // literals must be over existing variables.
  SolveResult Solve(std::span<const Lit> assumptions,
                    const SolveLimits& limits);

  // Solves without an explicit limit (unbounded conflicts).
  SolveResult Solve(std::span<const Lit> assumptions = {}) {
    return Solve(assumptions, SolveLimits{});
  }

  // Deep-copies the full solver state — problem and learnt clauses, level-0
  // trail, VSIDS activities, saved phases — into a fresh solver running
  // under `options`. Must be called outside Solve (decision level 0); the
  // clone shares no state with the original. Cube-and-conquer workers use
  // this so every cube starts from an identical incremental solver and
  // diverges only in its assumption cube.
  std::unique_ptr<Solver> Clone(const Options& options) const;

  // The `n` unassigned variables with the highest VSIDS activity, ordered
  // activity-descending with index-ascending tie-break (deterministic for a
  // deterministic solve history). The cube splitter branches on these: they
  // are the variables the search itself judged most decision-worthy.
  std::vector<Var> TopActivityVars(uint32_t n) const;

  // Model access after kSat.
  const std::vector<LBool>& model() const { return model_; }
  LBool ModelValue(Var var) const { return model_[var]; }
  bool ModelBool(Var var) const { return model_[var] == LBool::kTrue; }
  LBool ModelValue(Lit lit) const {
    return lit.negated() ? Negate(model_[lit.var()]) : model_[lit.var()];
  }

  // After kUnsat under assumptions: the subset of assumptions (negated) that
  // formed the final conflict.
  const std::vector<Lit>& failed_assumptions() const { return conflict_; }

  // Exports the current problem clauses (including level-0 unit facts) for
  // external preprocessing. Learnt clauses are not included.
  void ExportClauses(struct Cnf& out) const;

  const Statistics& stats() const { return stats_; }
  uint64_t num_clauses() const { return num_problem_clauses_; }
  uint64_t num_learnts() const { return learnts_.size(); }
  bool inconsistent() const { return !ok_; }

  // Constant-time estimate of the solver's heap footprint in bytes —
  // arena, clause lists, per-variable structures, watcher storage. This is
  // what Solve publishes to the memory governor at restart boundaries
  // (sched::PublishSolverMemory), so the governor's heaviest-job choice
  // tracks the solvers that actually own the memory.
  uint64_t MemoryBytes() const;

 private:
  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  // --- clause arena ----------------------------------------------------
  // Layout per clause: [size<<1 | learnt][activity bits][lbd][lits ...]
  uint32_t ClauseSize(CRef cref) const { return arena_[cref] >> 1; }
  bool ClauseLearnt(CRef cref) const { return (arena_[cref] & 1) != 0; }
  Lit* ClauseLits(CRef cref) {
    return reinterpret_cast<Lit*>(&arena_[cref + 3]);
  }
  const Lit* ClauseLits(CRef cref) const {
    return reinterpret_cast<const Lit*>(&arena_[cref + 3]);
  }
  uint32_t ClauseLbd(CRef cref) const { return arena_[cref + 2]; }
  void SetClauseLbd(CRef cref, uint32_t lbd) { arena_[cref + 2] = lbd; }
  float ClauseActivity(CRef cref) const;
  void SetClauseActivity(CRef cref, float activity);
  void ShrinkClause(CRef cref, uint32_t new_size);
  CRef AllocClause(std::span<const Lit> lits, bool learnt);

  // --- assignment / trail ----------------------------------------------
  LBool Value(Var var) const { return assigns_[var]; }
  LBool Value(Lit lit) const {
    return lit.negated() ? Negate(assigns_[lit.var()]) : assigns_[lit.var()];
  }
  uint32_t DecisionLevel() const {
    return static_cast<uint32_t>(trail_lim_.size());
  }
  void NewDecisionLevel() {
    trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
  }
  void UncheckedEnqueue(Lit lit, CRef reason);
  CRef Propagate();
  void CancelUntil(uint32_t level);

  // --- conflict analysis -------------------------------------------------
  void Analyze(CRef confl, std::vector<Lit>& out_learnt,
               uint32_t& out_btlevel);
  bool LitRedundant(Lit lit);
  void AnalyzeFinal(Lit p, std::vector<Lit>& out_conflict);

  // --- heuristics --------------------------------------------------------
  void VarBumpActivity(Var var);
  void VarDecayActivity();
  void ClaBumpActivity(CRef cref);
  void ClaDecayActivity();
  Lit PickBranchLit();
  void InsertVarOrder(Var var);
  // Order heap (max-heap on activity).
  void HeapUp(uint32_t pos);
  void HeapDown(uint32_t pos);
  bool HeapLess(Var a, Var b) const;
  Var HeapPop();
  bool HeapInHeap(Var var) const { return heap_index_[var] != kVarUndef; }

  // --- clause management ---------------------------------------------------
  void AttachClause(CRef cref);
  void DetachClause(CRef cref);
  void RemoveClause(CRef cref);
  bool Locked(CRef cref) const;
  void ReduceDB();
  // Memory-pressure degradation (stage 1 of the governor's ladder): drops
  // every expendable learnt clause — keeps binaries, glue (LBD <= 2), and
  // locked clauses — then compacts the arena to actually return the bytes.
  // Runs even with use_reduce_db off: under memory pressure, survival
  // outranks the ablation setting.
  void ShedLearnts();
  // Rebuilds the arena with only the live clauses and remaps every CRef
  // (clause lists, reasons, watchers). The normal path never reclaims
  // arena space; shedding exists to.
  void CompactArena();

  // --- top-level search ---------------------------------------------------
  SolveResult Search(int64_t conflicts_budget);
  static uint64_t Luby(uint64_t i);

  Options options_;
  Statistics stats_;

  std::vector<uint32_t> arena_;
  std::vector<CRef> clauses_;  // problem clauses
  std::vector<CRef> learnts_;
  uint64_t num_problem_clauses_ = 0;

  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<uint8_t> polarity_;      // saved phase (1 = last was false)
  std::vector<double> activity_;
  std::vector<CRef> reason_;
  std::vector<uint32_t> level_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()

  std::vector<Lit> trail_;
  std::vector<uint32_t> trail_lim_;
  uint32_t qhead_ = 0;

  // Order heap.
  std::vector<Var> heap_;
  std::vector<uint32_t> heap_index_;

  // Analysis scratch.
  std::vector<uint8_t> seen_;
  std::vector<uint32_t> lbd_levels_;
  std::vector<Lit> analyze_toclear_;
  std::vector<Lit> minimize_stack_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_;

  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  double max_learnts_ = 0;
  // Learnt count below which a shed round is pointless; re-armed after
  // each shed so sustained pressure can't thrash compaction.
  size_t shed_floor_ = 0;
  bool ok_ = true;
};

}  // namespace aqed::sat
