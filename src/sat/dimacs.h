// DIMACS CNF import/export, for interoperability with external SAT tooling
// and for the solver's randomized differential tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.h"
#include "support/status.h"

namespace aqed::sat {

// A raw CNF formula: clause list over variables 0..num_vars-1.
struct Cnf {
  uint32_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

// Parses DIMACS text ("p cnf V C" header, clauses terminated by 0).
StatusOr<Cnf> ParseDimacs(std::istream& in);
StatusOr<Cnf> ParseDimacsString(const std::string& text);

// Serializes to DIMACS text.
std::string ToDimacs(const Cnf& cnf);

// Loads a CNF into a solver (creating variables 0..num_vars-1).
// Returns false if the formula is trivially unsatisfiable.
bool LoadCnf(const Cnf& cnf, class Solver& solver);

}  // namespace aqed::sat
