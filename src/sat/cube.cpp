#include "sat/cube.h"

#include "support/rng.h"

namespace aqed::sat {

std::vector<std::vector<Lit>> CubeSplitter::Split(const Solver& solver) const {
  const std::vector<Var> split_vars =
      solver.TopActivityVars(options_.num_split_vars);
  if (split_vars.empty()) return {};

  const size_t num_cubes = size_t{1} << split_vars.size();
  std::vector<std::vector<Lit>> cubes(num_cubes);
  for (size_t mask = 0; mask < num_cubes; ++mask) {
    cubes[mask].reserve(split_vars.size());
    for (size_t i = 0; i < split_vars.size(); ++i) {
      cubes[mask].push_back(Lit(split_vars[i], (mask >> i & 1) != 0));
    }
  }
  // Deterministic Fisher-Yates on the emission order (see CubeSplitOptions).
  Rng rng(options_.seed);
  for (size_t i = num_cubes - 1; i > 0; --i) {
    std::swap(cubes[i], cubes[rng.NextBelow(i + 1)]);
  }
  return cubes;
}

}  // namespace aqed::sat
