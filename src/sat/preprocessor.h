// CNF preprocessing: bounded variable elimination (SatELite-style BVE) with
// model reconstruction.
//
// Tseitin-encoded BMC formulas are dominated by single-use gate variables;
// eliminating a variable whose resolvent count does not exceed its clause
// count shrinks the formula dramatically and is the single largest lever for
// the UNSAT instances that dominate A-QED checking (every depth below the
// counterexample must be refuted).
//
// Elimination is model-preserving in the strong sense needed by BMC: the
// eliminated clauses are kept on a reconstruction stack, and ExtendModel
// extends any model of the simplified formula to a model of the original —
// so full counterexample traces can still be decoded.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/dimacs.h"
#include "sat/types.h"

namespace aqed::sat {

struct PreprocessOptions {
  // A variable is eliminated only if the number of non-tautological
  // resolvents does not exceed the number of removed clauses plus `grow`.
  int grow = 0;
  // Skip elimination of variables occurring in more clauses than this.
  uint32_t occurrence_limit = 20;
  // Maximum clause size considered for resolution.
  uint32_t clause_size_limit = 24;
};

struct PreprocessResult {
  // Simplified formula (over the same variable numbering).
  Cnf cnf;
  // True if the formula was proved unsatisfiable outright.
  bool unsat = false;
  // Reconstruction stack: for each eliminated variable (in elimination
  // order), the original clauses containing it.
  struct Elimination {
    Var var;
    std::vector<std::vector<Lit>> clauses;
  };
  std::vector<Elimination> eliminated;
};

// Runs unit propagation and bounded variable elimination. Variables in
// `frozen` are never eliminated (e.g. assumption targets, trace-relevant
// inputs).
PreprocessResult Preprocess(const Cnf& cnf, const std::vector<Var>& frozen,
                            const PreprocessOptions& options = {});

// Extends `model` (indexed by var, values over the simplified formula) to
// the eliminated variables so that every original clause is satisfied.
void ExtendModel(const PreprocessResult& result, std::vector<LBool>& model);

}  // namespace aqed::sat
