// Cube-and-conquer splitting for a stalled incremental SAT query.
//
// A cube is a partial assignment passed to a solver as extra assumptions.
// The splitter picks the top-m unassigned variables by VSIDS activity — the
// variables the stalled search itself judged most decision-worthy — and
// emits all 2^m sign combinations. The cubes partition the search space:
// the query is SAT iff some cube is SAT, and refuted iff every cube is
// UNSAT, so solving them on independent solver clones (Solver::Clone) is a
// sound parallelization of one hard query. The BMC engine's escalation
// policy (bmc::BmcOptions::cube) is the production consumer.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/solver.h"
#include "sat/types.h"

namespace aqed::sat {

struct CubeSplitOptions {
  // Number of split variables m; up to 2^m cubes are emitted (fewer only
  // when the solver has fewer free variables).
  uint32_t num_split_vars = 3;
  // Seed for the deterministic shuffle of the emitted cube order. The order
  // decides which cube a sequential (or narrow) worker pool tries first —
  // shuffling decorrelates that from the phase-saving polarity so a
  // first-SAT-wins race is not systematically won by cube 0. The same seed
  // over the same solver state always yields the same cube list.
  uint64_t seed = 0;
};

class CubeSplitter {
 public:
  explicit CubeSplitter(CubeSplitOptions options = {}) : options_(options) {}

  // Splits the solver's current search space. Returns 2^k cubes over the
  // top-k activity variables (k = min(num_split_vars, free variables)),
  // pairwise disjoint and jointly exhaustive; an empty list when the solver
  // has no free variable to branch on. Deterministic: same solver state and
  // options, same cubes in the same order.
  std::vector<std::vector<Lit>> Split(const Solver& solver) const;

  const CubeSplitOptions& options() const { return options_; }

 private:
  CubeSplitOptions options_;
};

}  // namespace aqed::sat
