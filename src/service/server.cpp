#include "service/server.h"

#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/campaign.h"
#include "service/registry.h"
#include "support/failpoint.h"
#include "telemetry/metrics.h"

namespace aqed::service {

namespace {

// Binds a Unix-domain stream socket at `path`, replacing a stale file.
StatusOr<int> BindSocket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::Error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Error(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Error("bind '" + path + "': " + error);
  }
  if (::listen(fd, 16) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return Status::Error("listen '" + path + "': " + error);
  }
  return fd;
}

}  // namespace

AqedServer::AqedServer(ServerOptions options)
    : options_(std::move(options)), adapter_(cache_) {}

AqedServer::~AqedServer() { Stop(); }

Status AqedServer::Start() {
  AQED_CHECK(!started_, "AqedServer::Start called twice");
  if (!options_.cache_path.empty()) {
    const Status loaded = cache_.Load(options_.cache_path);
    if (!loaded.ok()) return loaded;
  }
  cache_.SetMaxEntries(options_.cache_max_entries);
  StatusOr<int> fd = BindSocket(options_.socket_path);
  if (!fd.ok()) return fd.status();
  listen_fd_ = fd.value();
  executors_ = std::make_unique<sched::ThreadPool>(options_.executors);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void AqedServer::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Unblock every connection handler parked in read(): shutdown() makes
    // the read return 0 without racing the handler's own close().
    for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  // Unblock the accept loop: shutdown() wakes a blocked accept() on Linux;
  // the throwaway connect covers platforms where it does not.
  ::shutdown(listen_fd_, SHUT_RDWR);
  const int dummy = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (dummy >= 0) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() < sizeof(addr.sun_path)) {
      std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                  options_.socket_path.size() + 1);
      ::connect(dummy, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr));
    }
    ::close(dummy);
  }
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  executors_.reset();  // Wait()s for in-flight handlers, joins workers
  ::unlink(options_.socket_path.c_str());
  if (!options_.cache_path.empty()) {
    const Status saved = cache_.Save(options_.cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "[aqed-server] cache save: %s\n",
                   saved.message().c_str());
    }
  }
  started_ = false;
}

uint64_t AqedServer::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

uint64_t AqedServer::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

uint64_t AqedServer::live_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

void AqedServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or hard error
    }
    // Chaos site: a connection the server fails to service — clients must
    // treat an immediately-closed connection as a retryable error.
    if (AQED_FAILPOINT("service.accept")) {
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      ++accepted_;
      connections_.insert(fd);
      telemetry::SetGauge("service.queue_depth",
                          static_cast<int64_t>(connections_.size()));
    }
    executors_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void AqedServer::HandleConnection(int fd) {
  // Requests on one connection are served in order; concurrency comes from
  // concurrent connections (each on its own executor slot).
  for (;;) {
    StatusOr<std::string> frame = ReadFrame(fd);
    if (!frame.ok()) break;  // client done (EOF) or protocol error
    std::string response;
    const std::optional<telemetry::Json> payload =
        telemetry::ParseJson(frame.value());
    if (!payload) {
      response = EncodeError("request is not valid JSON");
    } else {
      response = HandleRequest(*payload);
    }
    if (!WriteFrame(fd, response).ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.erase(fd);
  telemetry::SetGauge("service.queue_depth",
                      static_cast<int64_t>(connections_.size()));
}

std::string AqedServer::HandleRequest(const telemetry::Json& payload) {
  const std::optional<std::string> type = RequestType(payload);
  if (!type) return EncodeError("request without a 'type' field");
  if (*type == "ping") return EncodePong();
  if (*type == "stats") {
    StatsResponse stats;
    stats.ok = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats.live_requests = live_;
      stats.accepted = accepted_;
      stats.rejected = rejected_;
    }
    stats.cache_entries = cache_.size();
    stats.cache_hits = cache_.hits();
    stats.cache_misses = cache_.misses();
    return EncodeStatsResponse(stats);
  }
  if (*type == "campaign") {
    StatusOr<CampaignRequest> request = DecodeCampaignRequest(payload);
    if (!request.ok()) return EncodeError(request.status().message());
    std::string reason;
    if (!Admit(request.value().tenant, &reason)) return EncodeError(reason);
    const std::string response = RunCampaign(request.value());
    Release(request.value().tenant);
    return response;
  }
  return EncodeError("unknown request type '" + *type + "'");
}

bool AqedServer::Admit(const std::string& tenant, std::string* reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    *reason = "server is shutting down";
  } else if (live_ >= options_.max_live) {
    *reason = "server saturated (" + std::to_string(live_) +
              " campaigns in flight); retry later";
  } else if (tenant_live_[tenant] >= options_.max_tenant_live) {
    *reason = "tenant '" + tenant + "' over quota (" +
              std::to_string(options_.max_tenant_live) +
              " campaigns in flight)";
  } else {
    ++live_;
    const uint32_t tenant_live = ++tenant_live_[tenant];
    telemetry::SetGauge("service.sessions.live",
                        static_cast<int64_t>(live_));
    telemetry::SetGauge("service.tenant." + tenant + ".live",
                        static_cast<int64_t>(tenant_live));
    return true;
  }
  ++rejected_;
  telemetry::AddCounter("service.admission.rejected", 1);
  return false;
}

void AqedServer::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  --live_;
  const uint32_t tenant_live = --tenant_live_[tenant];
  telemetry::SetGauge("service.sessions.live", static_cast<int64_t>(live_));
  telemetry::SetGauge("service.tenant." + tenant + ".live",
                      static_cast<int64_t>(tenant_live));
}

std::string AqedServer::RunCampaign(const CampaignRequest& request) {
  // The catalog is the CLI's (bench_fault) — identical DesignUnderTest
  // construction is what makes server and CLI digests comparable.
  StatusOr<std::vector<fault::DesignUnderTest>> selection = SelectDesigns(
      BuiltinDesigns({.with_aes = request.with_aes}), request.designs);
  if (!selection.ok()) {
    // The error names every catalog entry — a remote client cannot grep the
    // registry, so the rejection is its design listing.
    return EncodeError(selection.status().message());
  }
  const std::vector<fault::DesignUnderTest> designs =
      std::move(selection).value();

  uint32_t jobs = request.jobs;
  if (options_.max_session_jobs > 0 &&
      (jobs == 0 || jobs > options_.max_session_jobs)) {
    jobs = options_.max_session_jobs;
  }
  core::SessionOptions::Builder session;
  if (jobs == 0) {
    session.WithHardwareJobs();
  } else {
    session.WithJobs(jobs);
  }
  session.WithDeadlineMs(request.deadline_ms)
      .WithMemoryBudgetMb(request.memory_budget_mb)
      .WithRetries(request.retries);

  fault::FaultCampaignOptions campaign;
  campaign.seed = request.seed;
  campaign.num_mutants = request.num_mutants;
  campaign.session = session.Build();
  campaign.conventional_baseline = request.baseline;
  campaign.cache = &adapter_;

  const fault::FaultCampaignResult result =
      fault::RunFaultCampaign(designs, campaign);

  // Persist eagerly: the cache's value is surviving the server, and the
  // write is atomic, so a crash between campaigns costs nothing.
  if (!options_.cache_path.empty()) {
    const Status saved = cache_.Save(options_.cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "[aqed-server] cache save: %s\n",
                   saved.message().c_str());
    }
  }

  CampaignResponse response;
  response.ok = true;
  response.digest = result.ClassificationDigest();
  response.mutants = result.mutants.size();
  response.classified = result.num_classified();
  response.cache_hits = result.cache_hits;
  response.cache_misses = result.cache_misses;
  response.wall_seconds = result.wall_seconds;
  response.table = result.ToTable();
  return EncodeCampaignResponse(response);
}

}  // namespace aqed::service
