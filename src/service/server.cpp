#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/campaign.h"
#include "service/registry.h"
#include "support/failpoint.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace aqed::service {

namespace {

std::string TraceIdHex(uint64_t trace_id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return std::string(buf);
}

// Wall-clock microseconds since the epoch (slow-log records correlate with
// external logs, so the steady trace clock is the wrong clock here).
int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Binds a Unix-domain stream socket at `path`, replacing a stale file.
StatusOr<int> BindSocket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::Error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Error(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Error("bind '" + path + "': " + error);
  }
  if (::listen(fd, 16) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return Status::Error("listen '" + path + "': " + error);
  }
  return fd;
}

}  // namespace

AqedServer::AqedServer(ServerOptions options)
    : options_(std::move(options)), adapter_(cache_) {}

AqedServer::~AqedServer() { Stop(); }

Status AqedServer::Start() {
  AQED_CHECK(!started_, "AqedServer::Start called twice");
  if (!options_.cache_path.empty()) {
    const Status loaded = cache_.Load(options_.cache_path);
    if (!loaded.ok()) return loaded;
  }
  cache_.SetMaxEntries(options_.cache_max_entries);
  if (!options_.slow_log_path.empty() && options_.slow_request_ms >= 0) {
    slow_log_ = std::fopen(options_.slow_log_path.c_str(), "a");
    if (slow_log_ == nullptr) {
      return Status::Error("open slow-request log '" +
                           options_.slow_log_path + "': " +
                           std::strerror(errno));
    }
  }
  StatusOr<int> fd = BindSocket(options_.socket_path);
  if (!fd.ok()) {
    if (slow_log_ != nullptr) {
      std::fclose(slow_log_);
      slow_log_ = nullptr;
    }
    return fd.status();
  }
  listen_fd_ = fd.value();
  start_us_ = telemetry::NowMicros();
  PreRegisterMetrics();
  if (!options_.prom_path.empty()) {
    // Exposition needs the registry populated, so arm the runtime switch;
    // write once immediately so the scrape target exists (with the full
    // pre-registered name set) before the first request arrives.
    telemetry::SetEnabled(true);
    WritePromFile();
    prom_stop_ = false;
    prom_thread_ = std::thread([this] { PromLoop(); });
  }
  executors_ = std::make_unique<sched::ThreadPool>(options_.executors);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void AqedServer::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Unblock every connection handler parked in read(): shutdown() makes
    // the read return 0 without racing the handler's own close().
    for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  // Unblock the accept loop: shutdown() wakes a blocked accept() on Linux;
  // the throwaway connect covers platforms where it does not.
  ::shutdown(listen_fd_, SHUT_RDWR);
  const int dummy = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (dummy >= 0) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() < sizeof(addr.sun_path)) {
      std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                  options_.socket_path.size() + 1);
      ::connect(dummy, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr));
    }
    ::close(dummy);
  }
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  executors_.reset();  // Wait()s for in-flight handlers, joins workers
  ::unlink(options_.socket_path.c_str());
  if (prom_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(prom_mutex_);
      prom_stop_ = true;
    }
    prom_cv_.notify_all();
    prom_thread_.join();
    WritePromFile();  // final exposition covers the whole lifetime
  }
  if (slow_log_ != nullptr) {
    std::fclose(slow_log_);
    slow_log_ = nullptr;
  }
  if (!options_.cache_path.empty()) {
    const Status saved = cache_.Save(options_.cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "[aqed-server] cache save: %s\n",
                   saved.message().c_str());
    }
  }
  started_ = false;
}

uint64_t AqedServer::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

uint64_t AqedServer::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

uint64_t AqedServer::live_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

uint64_t AqedServer::requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

StatusResponse AqedServer::LiveStatus() const {
  StatusResponse status;
  status.ok = true;
  status.uptime_seconds =
      static_cast<double>(telemetry::NowMicros() - start_us_) / 1e6;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    status.requests = requests_;
    status.live_requests = live_;
    status.accepted = accepted_;
    status.rejected = rejected_;
    status.connections = connections_.size();
    // tenant_live_ keeps an entry for every tenant ever admitted (entries
    // decrement to 0, they are never erased), so this is "all seen".
    for (const auto& [name, live] : tenant_live_) {
      status.tenants.push_back({name, live});
    }
  }
  status.executors = options_.executors;
  status.max_live = options_.max_live;
  status.max_tenant_live = options_.max_tenant_live;
  status.cache_entries = cache_.size();
  status.cache_hits = cache_.hits();
  status.cache_misses = cache_.misses();
  status.cache_evicted = cache_.evicted();
  status.governor_pressure =
      telemetry::MetricsRegistry::Global().gauge("governor.pressure").value();
  const std::vector<uint64_t> counts = request_ms_.counts();
  const std::vector<double>& bounds = request_ms_.bounds();
  status.request_p50_ms = telemetry::HistogramQuantile(bounds, counts, 0.50);
  status.request_p95_ms = telemetry::HistogramQuantile(bounds, counts, 0.95);
  status.request_p99_ms = telemetry::HistogramQuantile(bounds, counts, 0.99);
  return status;
}

void AqedServer::PreRegisterMetrics() {
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  for (const char* name :
       {"service.requests", "service.admission.rejected",
        "service.cache.hits", "service.cache.misses", "service.cache.store",
        "service.cache.dropped", "service.cache.evicted"}) {
    registry.counter(name);
  }
  registry.gauge("service.sessions.live");
  registry.gauge("service.queue_depth");
  registry.gauge("service.cache.entries");
  registry.gauge("governor.pressure");
  registry.histogram("service.request_ms");
}

void AqedServer::PromLoop() {
  const auto period = std::chrono::milliseconds(
      options_.prom_period_ms == 0 ? 1 : options_.prom_period_ms);
  std::unique_lock<std::mutex> lock(prom_mutex_);
  while (!prom_stop_) {
    if (prom_cv_.wait_for(lock, period, [this] { return prom_stop_; })) {
      break;  // Stop() writes the final file after the join
    }
    lock.unlock();
    WritePromFile();
    lock.lock();
  }
}

void AqedServer::WritePromFile() {
  if (!telemetry::WritePrometheusFile(
          options_.prom_path,
          telemetry::MetricsRegistry::Global().Snapshot())) {
    std::fprintf(stderr, "[aqed-server] prometheus write to '%s' failed\n",
                 options_.prom_path.c_str());
  }
}

void AqedServer::AppendSlowLog(uint64_t trace_id, const std::string& tenant,
                               const std::string& designs, uint32_t depth,
                               uint32_t mutants, double wall_ms,
                               const char* verdict, uint64_t digest) {
  if (slow_log_ == nullptr || options_.slow_request_ms < 0) return;
  if (wall_ms < static_cast<double>(options_.slow_request_ms)) return;
  // Built with the JSON model so tenant and design names arrive escaped.
  using telemetry::Json;
  std::map<std::string, Json> fields;
  fields.emplace("ts_us", Json(WallMicros()));
  fields.emplace("trace_id", Json(TraceIdHex(trace_id)));
  fields.emplace("tenant", Json(tenant));
  fields.emplace("designs", Json(designs));
  fields.emplace("depth", Json(static_cast<int64_t>(depth)));
  fields.emplace("mutants", Json(static_cast<int64_t>(mutants)));
  fields.emplace("wall_ms", Json(wall_ms));
  fields.emplace("verdict", Json(std::string(verdict)));
  fields.emplace("digest", Json(TraceIdHex(digest)));
  const std::string line = telemetry::Dump(Json::Object(std::move(fields)));
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  std::fprintf(slow_log_, "%s\n", line.c_str());
  std::fflush(slow_log_);
}

void AqedServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or hard error
    }
    // Chaos site: a connection the server fails to service — clients must
    // treat an immediately-closed connection as a retryable error.
    if (AQED_FAILPOINT("service.accept")) {
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      ++accepted_;
      connections_.insert(fd);
      telemetry::SetGauge("service.queue_depth",
                          static_cast<int64_t>(connections_.size()));
    }
    executors_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void AqedServer::HandleConnection(int fd) {
  // Requests on one connection are served in order; concurrency comes from
  // concurrent connections (each on its own executor slot).
  for (;;) {
    StatusOr<std::string> frame = ReadFrame(fd);
    if (!frame.ok()) break;  // client done (EOF) or protocol error
    std::string response;
    const std::optional<telemetry::Json> payload =
        telemetry::ParseJson(frame.value());
    if (!payload) {
      response = EncodeError("request is not valid JSON");
    } else {
      response = HandleRequest(*payload);
    }
    if (!WriteFrame(fd, response).ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.erase(fd);
  telemetry::SetGauge("service.queue_depth",
                      static_cast<int64_t>(connections_.size()));
}

std::string AqedServer::HandleRequest(const telemetry::Json& payload) {
  const uint64_t begin_us = telemetry::NowMicros();
  std::string response = DispatchRequest(payload);
  const double wall_ms =
      static_cast<double>(telemetry::NowMicros() - begin_us) / 1000.0;
  // The server-owned histogram feeds status quantiles with telemetry off;
  // the registry mirror feeds the Prometheus exposition.
  request_ms_.Observe(wall_ms);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
  }
  telemetry::AddCounter("service.requests", 1);
  telemetry::ObserveLatencyMs("service.request_ms", wall_ms);
  return response;
}

std::string AqedServer::DispatchRequest(const telemetry::Json& payload) {
  const std::optional<std::string> type = RequestType(payload);
  if (!type) return EncodeError("request without a 'type' field");
  if (*type == "ping") return EncodePong();
  if (*type == "health") {
    HealthResponse health;
    health.ok = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      health.state = stopping_ ? "stopping" : "ok";
    }
    health.uptime_seconds =
        static_cast<double>(telemetry::NowMicros() - start_us_) / 1e6;
    return EncodeHealthResponse(health);
  }
  if (*type == "status") return EncodeStatusResponse(LiveStatus());
  if (*type == "metrics") {
    MetricsResponse metrics;
    metrics.ok = true;
    metrics.prometheus = telemetry::RenderPrometheus(
        telemetry::MetricsRegistry::Global().Snapshot());
    return EncodeMetricsResponse(metrics);
  }
  if (*type == "stats") {
    StatsResponse stats;
    stats.ok = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats.live_requests = live_;
      stats.accepted = accepted_;
      stats.rejected = rejected_;
    }
    stats.cache_entries = cache_.size();
    stats.cache_hits = cache_.hits();
    stats.cache_misses = cache_.misses();
    return EncodeStatsResponse(stats);
  }
  if (*type == "campaign") {
    StatusOr<CampaignRequest> decoded = DecodeCampaignRequest(payload);
    if (!decoded.ok()) return EncodeError(decoded.status().message());
    CampaignRequest request = std::move(decoded).value();
    // A raw request without a trace id still runs traced: the id in the
    // error or response is the only handle the operator gets.
    if (request.trace_id == 0) request.trace_id = MintTraceId();
    std::string reason;
    if (!Admit(request.tenant, &reason)) {
      std::string names;
      for (const std::string& design : request.designs) {
        if (!names.empty()) names += ',';
        names += design;
      }
      AppendSlowLog(request.trace_id, request.tenant, names, /*depth=*/0,
                    request.num_mutants, /*wall_ms=*/0.0, "rejected",
                    /*digest=*/0);
      return EncodeError(reason);
    }
    const std::string response = RunCampaign(request);
    Release(request.tenant);
    return response;
  }
  return EncodeError("unknown request type '" + *type + "'");
}

bool AqedServer::Admit(const std::string& tenant, std::string* reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    *reason = "server is shutting down";
  } else if (live_ >= options_.max_live) {
    *reason = "server saturated (" + std::to_string(live_) +
              " campaigns in flight); retry later";
  } else if (tenant_live_[tenant] >= options_.max_tenant_live) {
    *reason = "tenant '" + tenant + "' over quota (" +
              std::to_string(options_.max_tenant_live) +
              " campaigns in flight)";
  } else {
    ++live_;
    const uint32_t tenant_live = ++tenant_live_[tenant];
    telemetry::SetGauge("service.sessions.live",
                        static_cast<int64_t>(live_));
    telemetry::SetGauge("service.tenant." + tenant + ".live",
                        static_cast<int64_t>(tenant_live));
    return true;
  }
  ++rejected_;
  telemetry::AddCounter("service.admission.rejected", 1);
  return false;
}

void AqedServer::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  --live_;
  const uint32_t tenant_live = --tenant_live_[tenant];
  telemetry::SetGauge("service.sessions.live", static_cast<int64_t>(live_));
  telemetry::SetGauge("service.tenant." + tenant + ".live",
                      static_cast<int64_t>(tenant_live));
}

std::string AqedServer::RunCampaign(const CampaignRequest& request) {
  // Every span this executor thread records while the campaign runs — the
  // request span itself, fault.sample:* solves, the baseline — carries the
  // request's trace id into the Chrome-trace export.
  const telemetry::ScopedTraceId trace_scope(request.trace_id);
  telemetry::Span span(
      "service.request",
      {{"mutants", static_cast<int64_t>(request.num_mutants)}});
  const uint64_t begin_us = telemetry::NowMicros();

  // The catalog is the CLI's (bench_fault) — identical DesignUnderTest
  // construction is what makes server and CLI digests comparable.
  StatusOr<std::vector<fault::DesignUnderTest>> selection = SelectDesigns(
      BuiltinDesigns({.with_aes = request.with_aes}), request.designs);
  if (!selection.ok()) {
    // The error names every catalog entry — a remote client cannot grep the
    // registry, so the rejection is its design listing.
    std::string names;
    for (const std::string& design : request.designs) {
      if (!names.empty()) names += ',';
      names += design;
    }
    AppendSlowLog(
        request.trace_id, request.tenant, names, /*depth=*/0,
        request.num_mutants,
        static_cast<double>(telemetry::NowMicros() - begin_us) / 1000.0,
        "error", /*digest=*/0);
    return EncodeError(selection.status().message());
  }
  const std::vector<fault::DesignUnderTest> designs =
      std::move(selection).value();

  uint32_t jobs = request.jobs;
  if (options_.max_session_jobs > 0 &&
      (jobs == 0 || jobs > options_.max_session_jobs)) {
    jobs = options_.max_session_jobs;
  }
  core::SessionOptions::Builder session;
  if (jobs == 0) {
    session.WithHardwareJobs();
  } else {
    session.WithJobs(jobs);
  }
  session.WithDeadlineMs(request.deadline_ms)
      .WithMemoryBudgetMb(request.memory_budget_mb)
      .WithRetries(request.retries);

  fault::FaultCampaignOptions campaign;
  campaign.seed = request.seed;
  campaign.num_mutants = request.num_mutants;
  campaign.session = session.Build();
  campaign.conventional_baseline = request.baseline;
  campaign.cache = &adapter_;
  campaign.trace_id = request.trace_id;

  const fault::FaultCampaignResult result =
      fault::RunFaultCampaign(designs, campaign);

  // Persist eagerly: the cache's value is surviving the server, and the
  // write is atomic, so a crash between campaigns costs nothing.
  if (!options_.cache_path.empty()) {
    const Status saved = cache_.Save(options_.cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "[aqed-server] cache save: %s\n",
                   saved.message().c_str());
    }
  }

  CampaignResponse response;
  response.ok = true;
  response.trace_id = request.trace_id;
  response.digest = result.ClassificationDigest();
  response.mutants = result.mutants.size();
  response.classified = result.num_classified();
  response.cache_hits = result.cache_hits;
  response.cache_misses = result.cache_misses;
  response.wall_seconds = result.wall_seconds;
  response.table = result.ToTable();
  span.AddArg("cache_hits", static_cast<int64_t>(result.cache_hits));

  std::string names;
  uint32_t depth = 0;
  for (const fault::DesignUnderTest& dut : designs) {
    if (!names.empty()) names += ',';
    names += dut.name;
    depth = std::max(depth, dut.options.bmc.max_bound);
  }
  AppendSlowLog(request.trace_id, request.tenant, names, depth,
                static_cast<uint32_t>(result.mutants.size()),
                result.wall_seconds * 1000.0, "ok",
                response.digest);
  return EncodeCampaignResponse(response);
}

}  // namespace aqed::service
