#include "service/protocol.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include <sys/socket.h>
#include <unistd.h>

namespace aqed::service {

namespace {

using telemetry::Json;

Status WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up (e.g. the service.accept chaos
    // site closing a backlogged connection) must surface as EPIPE here,
    // not as a process-killing SIGPIPE. Frames also travel over plain
    // pipes (send() refuses those with ENOTSOCK), so fall back to
    // write() for non-socket fds.
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data.data() + written, data.size() - written);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(std::string("socket write: ") +
                           std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Reads exactly `n` bytes; an error mentions `what` for context.
StatusOr<std::string> ReadExact(int fd, size_t n, const char* what) {
  std::string out(n, '\0');
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out.data() + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Error(std::string("socket read: ") +
                           std::strerror(errno));
    }
    if (r == 0) {
      return Status::Error(std::string("connection closed mid-") + what);
    }
    got += static_cast<size_t>(r);
  }
  return out;
}

uint64_t UintField(const Json& json, const char* name, uint64_t fallback) {
  const Json* value = json.Find(name);
  if (value == nullptr || !value->is_number()) return fallback;
  const int64_t raw = value->AsInt();
  return raw < 0 ? fallback : static_cast<uint64_t>(raw);
}

bool BoolField(const Json& json, const char* name, bool fallback) {
  const Json* value = json.Find(name);
  if (value == nullptr || value->kind() != Json::Kind::kBool) return fallback;
  return value->AsBool();
}

std::string StringField(const Json& json, const char* name,
                        std::string fallback = {}) {
  const Json* value = json.Find(name);
  if (value == nullptr || !value->is_string()) return fallback;
  return value->AsString();
}

// uint64 values cross the wire as 16-hex-digit strings: JSON numbers are
// doubles in most readers and lose integers above 2^53, which both digests
// and seeds can exceed.
std::string HexString(uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return std::string(buf);
}

std::optional<uint64_t> HexValue(const Json& json, const char* name) {
  const Json* value = json.Find(name);
  if (value == nullptr || !value->is_string() ||
      value->AsString().size() != 16) {
    return std::nullopt;
  }
  uint64_t out = 0;
  for (const char c : value->AsString()) {
    out <<= 4;
    if (c >= '0' && c <= '9') out |= static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') out |= static_cast<uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return out;
}

StatusOr<Json> ParseResponse(std::string_view payload) {
  std::optional<Json> json = telemetry::ParseJson(payload);
  if (!json || !json->is_object()) {
    return Status::Error("malformed response payload");
  }
  return std::move(*json);
}

double DoubleField(const Json& json, const char* name, double fallback) {
  const Json* value = json.Find(name);
  if (value == nullptr || !value->is_number()) return fallback;
  return value->AsNumber();
}

}  // namespace

uint64_t MintTraceId() {
  // splitmix64 over (wall-clock ns ^ pid ^ per-process counter): distinct
  // across concurrent clients on one machine and across restarts. Not
  // cryptographic — a trace id correlates telemetry, it authorizes nothing.
  static std::atomic<uint64_t> counter{0};
  uint64_t x = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  x ^= static_cast<uint64_t>(::getpid()) << 32;
  x += 0x9E3779B97F4A7C15ull *
       (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

Status WriteFrame(int fd, std::string_view payload) {
  char header[32];
  std::snprintf(header, sizeof(header), "%zu\n", payload.size());
  std::string frame(header);
  frame += payload;
  frame += '\n';
  return WriteAll(fd, frame);
}

StatusOr<std::string> ReadFrame(int fd) {
  // The length line, byte by byte: frames are few and small next to the
  // solves they request, so simplicity beats a read buffer here.
  std::string header;
  for (;;) {
    char c = 0;
    const ssize_t r = ::read(fd, &c, 1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Error(std::string("socket read: ") +
                           std::strerror(errno));
    }
    if (r == 0) {
      if (header.empty()) return Status::Error("connection closed");
      return Status::Error("connection closed mid-header");
    }
    if (c == '\n') break;
    if (c < '0' || c > '9' || header.size() > 8) {
      return Status::Error("malformed frame length");
    }
    header += c;
  }
  if (header.empty()) return Status::Error("malformed frame length");
  const size_t length = std::strtoull(header.c_str(), nullptr, 10);
  if (length > kMaxFramePayload) {
    return Status::Error("frame payload over limit (" + header + " bytes)");
  }
  StatusOr<std::string> payload = ReadExact(fd, length + 1, "payload");
  if (!payload.ok()) return payload.status();
  std::string text = std::move(payload).value();
  if (text.back() != '\n') {
    return Status::Error("frame payload missing trailing newline");
  }
  text.pop_back();
  return text;
}

std::string EncodePing() {
  return telemetry::Dump(
      Json::Object({{"type", Json(std::string("ping"))}}));
}

std::string EncodeStatsRequest() {
  return telemetry::Dump(
      Json::Object({{"type", Json(std::string("stats"))}}));
}

std::string EncodeStatusRequest() {
  return telemetry::Dump(
      Json::Object({{"type", Json(std::string("status"))}}));
}

std::string EncodeMetricsRequest() {
  return telemetry::Dump(
      Json::Object({{"type", Json(std::string("metrics"))}}));
}

std::string EncodeHealthRequest() {
  return telemetry::Dump(
      Json::Object({{"type", Json(std::string("health"))}}));
}

std::string EncodeCampaignRequest(const CampaignRequest& request) {
  std::map<std::string, Json> fields;
  fields.emplace("type", Json(std::string("campaign")));
  fields.emplace("tenant", Json(request.tenant));
  if (request.trace_id != 0) {
    fields.emplace("trace_id", Json(HexString(request.trace_id)));
  }
  std::vector<Json> designs;
  for (const std::string& design : request.designs) {
    designs.emplace_back(design);
  }
  fields.emplace("designs", Json::Array(std::move(designs)));
  fields.emplace("mutants", Json(static_cast<int64_t>(request.num_mutants)));
  fields.emplace("seed", Json(HexString(request.seed)));
  fields.emplace("with_aes", Json(request.with_aes));
  fields.emplace("baseline", Json(request.baseline));
  fields.emplace("jobs", Json(static_cast<int64_t>(request.jobs)));
  fields.emplace("deadline_ms",
                 Json(static_cast<int64_t>(request.deadline_ms)));
  fields.emplace("memory_budget_mb",
                 Json(static_cast<int64_t>(request.memory_budget_mb)));
  fields.emplace("retries", Json(static_cast<int64_t>(request.retries)));
  return telemetry::Dump(Json::Object(std::move(fields)));
}

std::optional<std::string> RequestType(const Json& payload) {
  if (!payload.is_object()) return std::nullopt;
  const Json* type = payload.Find("type");
  if (type == nullptr || !type->is_string()) return std::nullopt;
  return type->AsString();
}

StatusOr<CampaignRequest> DecodeCampaignRequest(const Json& payload) {
  CampaignRequest request;
  request.tenant = StringField(payload, "tenant", request.tenant);
  if (request.tenant.empty()) {
    return Status::Error("campaign request with an empty tenant");
  }
  if (const auto trace = HexValue(payload, "trace_id")) {
    request.trace_id = *trace;
  }
  const Json* designs = payload.Find("designs");
  if (designs != nullptr) {
    if (!designs->is_array()) {
      return Status::Error("campaign 'designs' must be an array of names");
    }
    for (const Json& design : designs->AsArray()) {
      if (!design.is_string()) {
        return Status::Error("campaign 'designs' must be an array of names");
      }
      request.designs.push_back(design.AsString());
    }
  }
  request.num_mutants = static_cast<uint32_t>(
      UintField(payload, "mutants", request.num_mutants));
  if (request.num_mutants == 0) {
    return Status::Error("campaign request with zero mutants");
  }
  if (const auto seed = HexValue(payload, "seed")) request.seed = *seed;
  request.with_aes = BoolField(payload, "with_aes", request.with_aes);
  request.baseline = BoolField(payload, "baseline", request.baseline);
  request.jobs =
      static_cast<uint32_t>(UintField(payload, "jobs", request.jobs));
  request.deadline_ms = static_cast<uint32_t>(
      UintField(payload, "deadline_ms", request.deadline_ms));
  request.memory_budget_mb = static_cast<uint32_t>(
      UintField(payload, "memory_budget_mb", request.memory_budget_mb));
  request.retries =
      static_cast<uint32_t>(UintField(payload, "retries", request.retries));
  return request;
}

std::string EncodeError(std::string_view message) {
  return telemetry::Dump(Json::Object({
      {"ok", Json(false)},
      {"error", Json(std::string(message))},
  }));
}

std::string EncodePong() {
  return telemetry::Dump(Json::Object({
      {"ok", Json(true)},
      {"type", Json(std::string("pong"))},
  }));
}

std::string EncodeCampaignResponse(const CampaignResponse& response) {
  if (!response.ok) return EncodeError(response.error);
  std::map<std::string, Json> fields;
  fields.emplace("ok", Json(true));
  if (response.trace_id != 0) {
    fields.emplace("trace_id", Json(HexString(response.trace_id)));
  }
  fields.emplace("digest", Json(HexString(response.digest)));
  fields.emplace("mutants", Json(static_cast<int64_t>(response.mutants)));
  fields.emplace("classified",
                 Json(static_cast<int64_t>(response.classified)));
  fields.emplace("cache_hits",
                 Json(static_cast<int64_t>(response.cache_hits)));
  fields.emplace("cache_misses",
                 Json(static_cast<int64_t>(response.cache_misses)));
  fields.emplace("wall_seconds", Json(response.wall_seconds));
  fields.emplace("table", Json(response.table));
  return telemetry::Dump(Json::Object(std::move(fields)));
}

std::string EncodeStatsResponse(const StatsResponse& response) {
  if (!response.ok) return EncodeError(response.error);
  std::map<std::string, Json> fields;
  fields.emplace("ok", Json(true));
  fields.emplace("live_requests",
                 Json(static_cast<int64_t>(response.live_requests)));
  fields.emplace("accepted", Json(static_cast<int64_t>(response.accepted)));
  fields.emplace("rejected", Json(static_cast<int64_t>(response.rejected)));
  fields.emplace("cache_entries",
                 Json(static_cast<int64_t>(response.cache_entries)));
  fields.emplace("cache_hits",
                 Json(static_cast<int64_t>(response.cache_hits)));
  fields.emplace("cache_misses",
                 Json(static_cast<int64_t>(response.cache_misses)));
  return telemetry::Dump(Json::Object(std::move(fields)));
}

StatusOr<CampaignResponse> DecodeCampaignResponse(std::string_view payload) {
  StatusOr<Json> json = ParseResponse(payload);
  if (!json.ok()) return json.status();
  CampaignResponse response;
  response.ok = BoolField(json.value(), "ok", false);
  if (!response.ok) {
    response.error = StringField(json.value(), "error", "unspecified error");
    return response;
  }
  if (const auto trace = HexValue(json.value(), "trace_id")) {
    response.trace_id = *trace;
  }
  const auto digest = HexValue(json.value(), "digest");
  if (!digest) return Status::Error("campaign response without a digest");
  response.digest = *digest;
  response.mutants = UintField(json.value(), "mutants", 0);
  response.classified = UintField(json.value(), "classified", 0);
  response.cache_hits = UintField(json.value(), "cache_hits", 0);
  response.cache_misses = UintField(json.value(), "cache_misses", 0);
  const Json* wall = json.value().Find("wall_seconds");
  if (wall != nullptr && wall->is_number()) {
    response.wall_seconds = wall->AsNumber();
  }
  response.table = StringField(json.value(), "table");
  return response;
}

StatusOr<StatsResponse> DecodeStatsResponse(std::string_view payload) {
  StatusOr<Json> json = ParseResponse(payload);
  if (!json.ok()) return json.status();
  StatsResponse response;
  response.ok = BoolField(json.value(), "ok", false);
  if (!response.ok) {
    response.error = StringField(json.value(), "error", "unspecified error");
    return response;
  }
  response.live_requests = UintField(json.value(), "live_requests", 0);
  response.accepted = UintField(json.value(), "accepted", 0);
  response.rejected = UintField(json.value(), "rejected", 0);
  response.cache_entries = UintField(json.value(), "cache_entries", 0);
  response.cache_hits = UintField(json.value(), "cache_hits", 0);
  response.cache_misses = UintField(json.value(), "cache_misses", 0);
  return response;
}

std::string EncodeStatusResponse(const StatusResponse& response) {
  if (!response.ok) return EncodeError(response.error);
  std::map<std::string, Json> fields;
  fields.emplace("ok", Json(true));
  fields.emplace("uptime_seconds", Json(response.uptime_seconds));
  // Counters go as 16-hex strings like digests do: a long-lived server's
  // request totals are exactly the kind of uint64 a double-backed JSON
  // reader would silently round.
  fields.emplace("requests", Json(HexString(response.requests)));
  fields.emplace("live_requests",
                 Json(static_cast<int64_t>(response.live_requests)));
  fields.emplace("accepted", Json(HexString(response.accepted)));
  fields.emplace("rejected", Json(HexString(response.rejected)));
  fields.emplace("connections",
                 Json(static_cast<int64_t>(response.connections)));
  fields.emplace("executors", Json(static_cast<int64_t>(response.executors)));
  fields.emplace("max_live", Json(static_cast<int64_t>(response.max_live)));
  fields.emplace("max_tenant_live",
                 Json(static_cast<int64_t>(response.max_tenant_live)));
  std::map<std::string, Json> tenants;
  for (const StatusResponse::Tenant& tenant : response.tenants) {
    tenants.emplace(tenant.name, Json(static_cast<int64_t>(tenant.live)));
  }
  fields.emplace("tenants", Json::Object(std::move(tenants)));
  fields.emplace("cache_entries",
                 Json(static_cast<int64_t>(response.cache_entries)));
  fields.emplace("cache_hits", Json(HexString(response.cache_hits)));
  fields.emplace("cache_misses", Json(HexString(response.cache_misses)));
  fields.emplace("cache_evicted", Json(HexString(response.cache_evicted)));
  fields.emplace("governor_pressure",
                 Json(static_cast<int64_t>(response.governor_pressure)));
  fields.emplace("request_p50_ms", Json(response.request_p50_ms));
  fields.emplace("request_p95_ms", Json(response.request_p95_ms));
  fields.emplace("request_p99_ms", Json(response.request_p99_ms));
  return telemetry::Dump(Json::Object(std::move(fields)));
}

std::string EncodeHealthResponse(const HealthResponse& response) {
  if (!response.ok) return EncodeError(response.error);
  return telemetry::Dump(Json::Object({
      {"ok", Json(true)},
      {"state", Json(response.state)},
      {"uptime_seconds", Json(response.uptime_seconds)},
  }));
}

std::string EncodeMetricsResponse(const MetricsResponse& response) {
  if (!response.ok) return EncodeError(response.error);
  return telemetry::Dump(Json::Object({
      {"ok", Json(true)},
      {"prometheus", Json(response.prometheus)},
  }));
}

StatusOr<StatusResponse> DecodeStatusResponse(std::string_view payload) {
  StatusOr<Json> json = ParseResponse(payload);
  if (!json.ok()) return json.status();
  StatusResponse response;
  response.ok = BoolField(json.value(), "ok", false);
  if (!response.ok) {
    response.error = StringField(json.value(), "error", "unspecified error");
    return response;
  }
  response.uptime_seconds = DoubleField(json.value(), "uptime_seconds", 0);
  if (const auto v = HexValue(json.value(), "requests")) response.requests = *v;
  response.live_requests = UintField(json.value(), "live_requests", 0);
  if (const auto v = HexValue(json.value(), "accepted")) response.accepted = *v;
  if (const auto v = HexValue(json.value(), "rejected")) response.rejected = *v;
  response.connections = UintField(json.value(), "connections", 0);
  response.executors =
      static_cast<uint32_t>(UintField(json.value(), "executors", 0));
  response.max_live =
      static_cast<uint32_t>(UintField(json.value(), "max_live", 0));
  response.max_tenant_live =
      static_cast<uint32_t>(UintField(json.value(), "max_tenant_live", 0));
  const Json* tenants = json.value().Find("tenants");
  if (tenants != nullptr && tenants->is_object()) {
    for (const auto& [name, live] : tenants->AsObject()) {
      if (!live.is_number()) continue;
      StatusResponse::Tenant tenant;
      tenant.name = name;
      const int64_t raw = live.AsInt();
      tenant.live = raw < 0 ? 0 : static_cast<uint32_t>(raw);
      response.tenants.push_back(std::move(tenant));
    }
  }
  response.cache_entries = UintField(json.value(), "cache_entries", 0);
  if (const auto v = HexValue(json.value(), "cache_hits")) {
    response.cache_hits = *v;
  }
  if (const auto v = HexValue(json.value(), "cache_misses")) {
    response.cache_misses = *v;
  }
  if (const auto v = HexValue(json.value(), "cache_evicted")) {
    response.cache_evicted = *v;
  }
  const Json* pressure = json.value().Find("governor_pressure");
  if (pressure != nullptr && pressure->is_number()) {
    response.governor_pressure = pressure->AsInt();
  }
  response.request_p50_ms = DoubleField(json.value(), "request_p50_ms", 0);
  response.request_p95_ms = DoubleField(json.value(), "request_p95_ms", 0);
  response.request_p99_ms = DoubleField(json.value(), "request_p99_ms", 0);
  return response;
}

StatusOr<HealthResponse> DecodeHealthResponse(std::string_view payload) {
  StatusOr<Json> json = ParseResponse(payload);
  if (!json.ok()) return json.status();
  HealthResponse response;
  response.ok = BoolField(json.value(), "ok", false);
  if (!response.ok) {
    response.error = StringField(json.value(), "error", "unspecified error");
    return response;
  }
  response.state = StringField(json.value(), "state", "ok");
  response.uptime_seconds = DoubleField(json.value(), "uptime_seconds", 0);
  return response;
}

StatusOr<MetricsResponse> DecodeMetricsResponse(std::string_view payload) {
  StatusOr<Json> json = ParseResponse(payload);
  if (!json.ok()) return json.status();
  MetricsResponse response;
  response.ok = BoolField(json.value(), "ok", false);
  if (!response.ok) {
    response.error = StringField(json.value(), "error", "unspecified error");
    return response;
  }
  response.prometheus = StringField(json.value(), "prometheus");
  return response;
}

bool IsOkResponse(std::string_view payload) {
  const std::optional<Json> json = telemetry::ParseJson(payload);
  return json && json->is_object() && BoolField(*json, "ok", false);
}

}  // namespace aqed::service
