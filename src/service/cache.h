// Content-addressed solve cache.
//
// aqed-server multiplexes campaigns from many clients, and campaigns are
// overwhelmingly re-runs: the same design list, the same seeds, the same
// bounds — a CI job replayed, a flaky client retried, a second tenant
// verifying the same accelerator drop. The cache makes the second solve
// free by keying each mutant's decided classification by *what was solved*:
//
//   (design digest, instrument config digest, mutant key, depth)
//
// The design digest is the order-independent structural digest of the
// pristine (un-instrumented) transition system (ir/digest.h), so two
// clients that build the same circuit with different node numbering or
// declaration order share entries. The config digest covers every
// AqedOptions field that can change a verdict (enabled properties and
// their parameters, per-property bounds, bad filter, budgets); the BMC
// depth is kept as its own key field. Undecided (kUnknown) results are
// never cached — an unknown is a budget artifact of one run, not a
// property of the design.
//
// Persistence reuses the journal posture (fault/journal.h): CRC-guarded
// JSONL, written atomically via tmp+fsync+rename. A poisoned line — torn
// write, flipped bit, hand-edited garbage — fails its CRC or decode at
// Load, is dropped and counted, and the affected mutant is simply
// re-solved: corruption can cost a cache hit, never an answer.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "fault/campaign.h"
#include "support/status.h"

namespace aqed::service {

// What one cache entry is addressed by. mutant_key is the stable textual
// MutantKey ("op-swap@n42#seed=0xa9ed", node indices relative to the
// pristine build — deterministic builders make that stable), or "-" for a
// whole-design (unmutated) solve.
struct CacheKey {
  uint64_t design_digest = 0;
  uint64_t config_digest = 0;
  std::string mutant_key;
  uint32_t depth = 0;

  bool operator==(const CacheKey&) const = default;
  // Canonical spelling, e.g. "d=0123..cdef c=89ab..0123 m=op-swap@n4#... b=32".
  std::string ToString() const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const;
};

// Digest of every AqedOptions field that can change a verdict. Excludes
// bmc.max_bound (the CacheKey carries depth separately) and pure-performance
// knobs (cube escalation, solver worker counts): those change *how fast* a
// verdict arrives, never which one. The SAC spec is a std::function and
// cannot be hashed — only its presence enters; in practice specs are bound
// to designs (service/registry.h), so the design digest disambiguates.
uint64_t ConfigDigest(const core::AqedOptions& options);

// One decided solve outcome: the A-QED verdict columns of a MutantReport.
struct CachedVerdict {
  fault::Classification classification = fault::Classification::kUnknown;
  core::BugKind kind = core::BugKind::kNone;
  uint32_t cex_cycles = 0;
  uint32_t attempts = 1;
  // Provenance: the request trace id that originally solved this entry
  // (0 = untraced). A later hit hands the id back out via the adapter, so
  // `aqed-client --status`-style tooling can trace a cached verdict to the
  // request that paid for the solve. Persisted; optional on decode.
  uint64_t trace_id = 0;
};

// Thread-safe content-addressed map of decided verdicts with CRC-JSONL
// persistence. Telemetry: service.cache.{hits,misses,store,dropped,evicted}
// counters and the service.cache.entries gauge.
class SolveCache {
 public:
  // Lookup counts a hit or miss. nullopt = not cached, solve it.
  std::optional<CachedVerdict> Lookup(const CacheKey& key);

  // Stores a decided verdict; kUnknown classifications are ignored.
  void Store(const CacheKey& key, const CachedVerdict& verdict);

  // Bounds the cache (0 = unbounded, the default). Enforced at Save time:
  // when over budget, the least-recently-used entries (touched by neither a
  // Lookup hit nor a Store since longest ago) are trimmed before the file
  // is written, so neither memory nor the persisted file grows without
  // limit while the in-memory hot path stays a plain map.
  void SetMaxEntries(size_t max_entries);

  // Merges `path` into the cache. A missing file is an empty cache, not an
  // error; lines failing CRC or decode are dropped and counted (poisoned()).
  Status Load(const std::string& path);

  // Atomically rewrites `path` with every entry (tmp+fsync+rename), after
  // LRU-trimming to the SetMaxEntries bound (counted in evicted()).
  // Serialized: concurrent campaigns finishing together must not race on
  // the rename's temporary file. Chaos site "service.cache.store".
  Status Save(const std::string& path);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;
  // Undecodable lines dropped by Load since construction.
  uint64_t poisoned() const;
  // Entries trimmed by the SetMaxEntries bound since construction.
  uint64_t evicted() const;
  // hits / (hits + misses); 1.0 when no lookups happened.
  double hit_ratio() const;

 private:
  struct Slot {
    CachedVerdict verdict;
    uint64_t last_use = 0;  // recency tick of the last hit or store
  };

  mutable std::mutex mutex_;
  mutable std::mutex save_mutex_;  // taken first; never under mutex_
  std::unordered_map<CacheKey, Slot, CacheKeyHash> entries_;
  size_t max_entries_ = 0;  // 0 = unbounded
  uint64_t tick_ = 0;       // monotonic recency clock
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t poisoned_ = 0;
  uint64_t evicted_ = 0;
};

// fault::CampaignCache adapter: translates (DesignUnderTest, MutantKey)
// into a CacheKey — memoizing the per-design structural digest, which costs
// one pristine build per design — and moves verdict columns between
// MutantReport and CachedVerdict. Borrowed cache must outlive the adapter.
class CampaignCacheAdapter : public fault::CampaignCache {
 public:
  explicit CampaignCacheAdapter(SolveCache& cache) : cache_(cache) {}

  bool Lookup(const fault::DesignUnderTest& dut, const fault::MutantKey& key,
              fault::MutantReport& report) override;
  void Store(const fault::DesignUnderTest& dut, const fault::MutantKey& key,
             const fault::MutantReport& report) override;

 private:
  CacheKey KeyFor(const fault::DesignUnderTest& dut,
                  const fault::MutantKey& key);

  SolveCache& cache_;
  std::mutex mutex_;
  // Design digests memoized by name: campaigns reuse a handful of designs
  // across thousands of mutants, and names are unique within a design list.
  std::unordered_map<std::string, uint64_t> design_digests_;
};

}  // namespace aqed::service
