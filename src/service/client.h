// Client side of the aqed-server protocol: connect, frame, decode.
//
// One Client is one connection; requests on it are answered in order.
// Batch clients (aqed-client --batch, the stress generator, the tests)
// open several Clients to exercise the server's admission ladder.
#pragma once

#include <string>
#include <string_view>

#include "service/protocol.h"
#include "support/status.h"

namespace aqed::service {

class Client {
 public:
  explicit Client(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect();
  bool connected() const { return fd_ >= 0; }
  void Close();

  // One framed request, one framed response (payload returned verbatim).
  StatusOr<std::string> Roundtrip(std::string_view request);

  // Typed helpers over Roundtrip. RunCampaign mints a trace id when the
  // request carries none, so every campaign a typed client sends is
  // traceable; the response echoes the id the campaign ran under.
  Status Ping();
  StatusOr<CampaignResponse> RunCampaign(const CampaignRequest& request);
  StatusOr<StatsResponse> Stats();
  // Named ServerStatus (not Status) to keep clear of support::Status.
  StatusOr<StatusResponse> ServerStatus();
  StatusOr<HealthResponse> Health();
  StatusOr<MetricsResponse> Metrics();

 private:
  std::string socket_path_;
  int fd_ = -1;
};

}  // namespace aqed::service
