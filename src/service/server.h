// aqed-server: resident verification service.
//
// A campaign costs minutes of SAT solving; starting a fresh process per run
// throws away everything the previous run learned. The server stays
// resident, listens on a Unix-domain socket, and multiplexes campaign
// requests from any number of clients over one shared executor pool —
// every request passes the same governance ladder before it may spend a
// core:
//
//   1. protocol: an undecodable request costs a one-line error, nothing else
//   2. global admission: at most `max_live` campaigns in flight; beyond
//      that the server answers "saturated" immediately instead of queueing
//      unbounded work behind an opaque socket
//   3. per-tenant admission: one tenant may not occupy the whole server;
//      requests beyond `max_tenant_live` are rejected with the quota
//   4. per-request governance: the campaign runs under the session's
//      deadline / retry / memory-budget machinery, configured per request
//
// Admitted campaigns share the process-wide content-addressed solve cache
// (service/cache.h): the second client to ask for a solve gets the first
// client's answer. Per-tenant telemetry gauges (service.sessions.live,
// service.queue_depth, service.tenant.<t>.live) and counters
// (service.admission.rejected) make the ladder observable.
//
// Observability plane (see DESIGN.md §14): every campaign runs under a
// request trace id (client-minted, server-minted for raw requests) scoped
// into the executor thread, so spans, journal records, and cache entries
// the request produces all carry the id the client was answered with. The
// introspection trio (status/metrics/health) answers from live server
// state; an optional writer thread renders the metrics registry as
// Prometheus text exposition to `prom_path` on a timer; requests slower
// than `slow_request_ms` append a JSONL record to the slow-request log.
//
// Threading: an accept thread hands each connection to the executor pool
// (sched::ThreadPool); a connection's requests run sequentially on its
// executor, so `executors` bounds concurrently-running campaigns from the
// top while admission control bounds them from the front. Stop() shuts
// down every open connection, drains the pool, and persists the cache.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "sched/thread_pool.h"
#include "service/cache.h"
#include "service/protocol.h"
#include "support/status.h"
#include "telemetry/metrics.h"

namespace aqed::service {

struct ServerOptions {
  std::string socket_path;
  // Executor threads servicing connections — the shared pool every
  // client's campaigns multiplex onto (0 = hardware concurrency).
  uint32_t executors = 2;
  // Global admission bound: campaign requests while this many are already
  // in flight are rejected, not queued.
  uint32_t max_live = 4;
  // Per-tenant bound on in-flight campaigns.
  uint32_t max_tenant_live = 2;
  // Cap on any one request's session worker count (0 = uncapped): a client
  // asking for --jobs 64 gets the cap, not the machine.
  uint32_t max_session_jobs = 0;
  // Solve-cache persistence: loaded at Start(), rewritten atomically after
  // every campaign and at Stop(). Empty = in-memory cache only.
  std::string cache_path;
  // Bound on cached verdicts: every save LRU-trims the cache to this many
  // entries, so a long-lived server's cache file cannot grow without limit
  // (0 = unbounded).
  size_t cache_max_entries = 0;
  // Prometheus exposition: when set, a writer thread renders the full
  // metrics registry to this file (atomically, via tmp+fsync+rename) every
  // prom_period_ms — once right after Start() so the scrape target exists
  // before the first request, and once more at Stop(). Arms the telemetry
  // runtime switch.
  std::string prom_path;
  uint32_t prom_period_ms = 1000;
  // Slow-request log: campaign requests whose wall time reaches this many
  // milliseconds append a JSONL record (trace id, tenant, designs, depth,
  // wall time, verdict) to slow_log_path. 0 logs every campaign; the
  // default -1 disables the log even when a path is set.
  int64_t slow_request_ms = -1;
  std::string slow_log_path;
};

class AqedServer {
 public:
  explicit AqedServer(ServerOptions options);
  ~AqedServer();  // Stop()s.

  AqedServer(const AqedServer&) = delete;
  AqedServer& operator=(const AqedServer&) = delete;

  // Binds the socket (replacing a stale file), loads the cache, and starts
  // accepting. Chaos site "service.accept" drops incoming connections.
  Status Start();

  // Idempotent: closes the listener and every live connection, drains the
  // executor pool, persists the cache.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }
  SolveCache& cache() { return cache_; }

  uint64_t accepted() const;
  uint64_t rejected() const;
  uint64_t live_requests() const;
  // Total requests of any type answered since Start().
  uint64_t requests() const;

  // The operator view behind the "status" request, from live server state
  // (independent of the telemetry kill switch). Public so in-process
  // embedders can poll without a socket round-trip.
  StatusResponse LiveStatus() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  // One request in, one response payload out: times and counts the request,
  // then dispatches on its "type".
  std::string HandleRequest(const telemetry::Json& payload);
  std::string DispatchRequest(const telemetry::Json& payload);
  std::string RunCampaign(const CampaignRequest& request);
  // The admission ladder; on success the caller owns one Release(tenant).
  bool Admit(const std::string& tenant, std::string* reason);
  void Release(const std::string& tenant);

  // Touches every service metric name at Start() so the first Prometheus
  // exposition (and any scrape thereafter) carries the complete name set —
  // a counter that has never fired reads 0, it does not vanish.
  void PreRegisterMetrics();
  // Periodic Prometheus writer (own thread; prom_cv_ wakes it for Stop()).
  void PromLoop();
  void WritePromFile();
  // Appends one slow-request record when wall_ms clears the threshold.
  void AppendSlowLog(uint64_t trace_id, const std::string& tenant,
                     const std::string& designs, uint32_t depth,
                     uint32_t mutants, double wall_ms, const char* verdict,
                     uint64_t digest);

  ServerOptions options_;
  SolveCache cache_;
  CampaignCacheAdapter adapter_;

  int listen_fd_ = -1;
  bool started_ = false;
  std::thread accept_thread_;
  std::unique_ptr<sched::ThreadPool> executors_;

  mutable std::mutex mutex_;  // admission + connection + counter state
  bool stopping_ = false;
  uint64_t live_ = 0;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t requests_ = 0;
  std::map<std::string, uint32_t> tenant_live_;
  std::set<int> connections_;  // open fds, shutdown() on Stop()

  // Request latencies, server-owned (Histogram::Observe bypasses the kill
  // switch) so `status` quantiles work with telemetry off.
  uint64_t start_us_ = 0;
  telemetry::Histogram request_ms_{telemetry::DefaultLatencyBucketsMs()};

  std::thread prom_thread_;
  std::mutex prom_mutex_;
  std::condition_variable prom_cv_;
  bool prom_stop_ = false;

  std::mutex slow_log_mutex_;
  std::FILE* slow_log_ = nullptr;
};

}  // namespace aqed::service
