// aqed-server: resident verification service.
//
// A campaign costs minutes of SAT solving; starting a fresh process per run
// throws away everything the previous run learned. The server stays
// resident, listens on a Unix-domain socket, and multiplexes campaign
// requests from any number of clients over one shared executor pool —
// every request passes the same governance ladder before it may spend a
// core:
//
//   1. protocol: an undecodable request costs a one-line error, nothing else
//   2. global admission: at most `max_live` campaigns in flight; beyond
//      that the server answers "saturated" immediately instead of queueing
//      unbounded work behind an opaque socket
//   3. per-tenant admission: one tenant may not occupy the whole server;
//      requests beyond `max_tenant_live` are rejected with the quota
//   4. per-request governance: the campaign runs under the session's
//      deadline / retry / memory-budget machinery, configured per request
//
// Admitted campaigns share the process-wide content-addressed solve cache
// (service/cache.h): the second client to ask for a solve gets the first
// client's answer. Per-tenant telemetry gauges (service.sessions.live,
// service.queue_depth, service.tenant.<t>.live) and counters
// (service.admission.rejected) make the ladder observable.
//
// Threading: an accept thread hands each connection to the executor pool
// (sched::ThreadPool); a connection's requests run sequentially on its
// executor, so `executors` bounds concurrently-running campaigns from the
// top while admission control bounds them from the front. Stop() shuts
// down every open connection, drains the pool, and persists the cache.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "sched/thread_pool.h"
#include "service/cache.h"
#include "service/protocol.h"
#include "support/status.h"

namespace aqed::service {

struct ServerOptions {
  std::string socket_path;
  // Executor threads servicing connections — the shared pool every
  // client's campaigns multiplex onto (0 = hardware concurrency).
  uint32_t executors = 2;
  // Global admission bound: campaign requests while this many are already
  // in flight are rejected, not queued.
  uint32_t max_live = 4;
  // Per-tenant bound on in-flight campaigns.
  uint32_t max_tenant_live = 2;
  // Cap on any one request's session worker count (0 = uncapped): a client
  // asking for --jobs 64 gets the cap, not the machine.
  uint32_t max_session_jobs = 0;
  // Solve-cache persistence: loaded at Start(), rewritten atomically after
  // every campaign and at Stop(). Empty = in-memory cache only.
  std::string cache_path;
  // Bound on cached verdicts: every save LRU-trims the cache to this many
  // entries, so a long-lived server's cache file cannot grow without limit
  // (0 = unbounded).
  size_t cache_max_entries = 0;
};

class AqedServer {
 public:
  explicit AqedServer(ServerOptions options);
  ~AqedServer();  // Stop()s.

  AqedServer(const AqedServer&) = delete;
  AqedServer& operator=(const AqedServer&) = delete;

  // Binds the socket (replacing a stale file), loads the cache, and starts
  // accepting. Chaos site "service.accept" drops incoming connections.
  Status Start();

  // Idempotent: closes the listener and every live connection, drains the
  // executor pool, persists the cache.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }
  SolveCache& cache() { return cache_; }

  uint64_t accepted() const;
  uint64_t rejected() const;
  uint64_t live_requests() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  // One request in, one response payload out.
  std::string HandleRequest(const telemetry::Json& payload);
  std::string RunCampaign(const CampaignRequest& request);
  // The admission ladder; on success the caller owns one Release(tenant).
  bool Admit(const std::string& tenant, std::string* reason);
  void Release(const std::string& tenant);

  ServerOptions options_;
  SolveCache cache_;
  CampaignCacheAdapter adapter_;

  int listen_fd_ = -1;
  bool started_ = false;
  std::thread accept_thread_;
  std::unique_ptr<sched::ThreadPool> executors_;

  mutable std::mutex mutex_;  // admission + connection + counter state
  bool stopping_ = false;
  uint64_t live_ = 0;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  std::map<std::string, uint32_t> tenant_live_;
  std::set<int> connections_;  // open fds, shutdown() on Stop()
};

}  // namespace aqed::service
