#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace aqed::service {

Status Client::Connect() {
  if (fd_ >= 0) return Status::Ok();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::Error("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Error("connect '" + socket_path_ + "': " + error);
  }
  fd_ = fd;
  return Status::Ok();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::string> Client::Roundtrip(std::string_view request) {
  const Status connected = Connect();
  if (!connected.ok()) return connected;
  const Status sent = WriteFrame(fd_, request);
  if (!sent.ok()) {
    Close();  // a half-written frame poisons the stream
    return sent;
  }
  StatusOr<std::string> response = ReadFrame(fd_);
  if (!response.ok()) Close();
  return response;
}

Status Client::Ping() {
  StatusOr<std::string> response = Roundtrip(EncodePing());
  if (!response.ok()) return response.status();
  if (!IsOkResponse(response.value())) {
    return Status::Error("ping rejected: " + response.value());
  }
  return Status::Ok();
}

StatusOr<CampaignResponse> Client::RunCampaign(const CampaignRequest& request) {
  CampaignRequest traced = request;
  if (traced.trace_id == 0) traced.trace_id = MintTraceId();
  StatusOr<std::string> response = Roundtrip(EncodeCampaignRequest(traced));
  if (!response.ok()) return response.status();
  return DecodeCampaignResponse(response.value());
}

StatusOr<StatsResponse> Client::Stats() {
  StatusOr<std::string> response = Roundtrip(EncodeStatsRequest());
  if (!response.ok()) return response.status();
  return DecodeStatsResponse(response.value());
}

StatusOr<StatusResponse> Client::ServerStatus() {
  StatusOr<std::string> response = Roundtrip(EncodeStatusRequest());
  if (!response.ok()) return response.status();
  return DecodeStatusResponse(response.value());
}

StatusOr<HealthResponse> Client::Health() {
  StatusOr<std::string> response = Roundtrip(EncodeHealthRequest());
  if (!response.ok()) return response.status();
  return DecodeHealthResponse(response.value());
}

StatusOr<MetricsResponse> Client::Metrics() {
  StatusOr<std::string> response = Roundtrip(EncodeMetricsRequest());
  if (!response.ok()) return response.status();
  return DecodeMetricsResponse(response.value());
}

}  // namespace aqed::service
