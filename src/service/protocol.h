// aqed-server wire protocol: length-prefixed JSONL over a Unix-domain
// stream socket.
//
// Framing is deliberately trivial to parse from any language:
//
//   <decimal payload byte length>\n<payload JSON, one line>\n
//
// The length line bounds the read (no JSON scanning to find message ends),
// the trailing newline keeps a captured socket stream valid JSONL — `nc -U`
// piped through `jq` works. Payloads are single JSON objects built and
// parsed with the in-tree telemetry JSON model (telemetry/json.h), carrying
// a "type" discriminator:
//
//   request:  {"type":"ping"}
//             {"type":"stats"}
//             {"type":"status"} | {"type":"metrics"} | {"type":"health"}
//             {"type":"campaign","tenant":"ci","mutants":12,"seed":...,
//              "trace_id":"7f3a...","designs":["memctrl-fifo"],
//              "with_aes":false,"baseline":false,"jobs":2,"deadline_ms":0,
//              "memory_budget_mb":0,"retries":4}
//   response: {"ok":true,...} | {"ok":false,"error":"..."}
//
// Campaign responses carry the order-independent classification digest as a
// 16-hex-digit string (JSON numbers are doubles in many readers; a uint64
// digest must not round-trip through one). The same spelling carries the
// per-request trace_id: minted by the client (or by the server when a raw
// request omits it), echoed in the response, and stamped into every span,
// journal record, and cache entry the request produces.
//
// The introspection trio answers from live server state: `status` is the
// operator view (admission ladder, per-tenant live counts, cache and
// governor state, request latency quantiles), `metrics` carries the full
// registry as Prometheus text exposition, `health` is a cheap liveness
// probe (uptime + whether the server is draining for shutdown).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"
#include "telemetry/json.h"

namespace aqed::service {

// Upper bound on one frame's payload: a campaign response carries a
// coverage table, never megabytes. A length line beyond this is a protocol
// error, not an allocation request.
inline constexpr size_t kMaxFramePayload = 4u << 20;

// Blocking framed I/O over a connected stream socket. Both retry EINTR;
// short writes are completed. ReadFrame errors on EOF, a malformed or
// oversized length line, or a truncated payload.
Status WriteFrame(int fd, std::string_view payload);
StatusOr<std::string> ReadFrame(int fd);

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

// A fresh nonzero request trace id: splitmix64 over wall clock, pid, and a
// process-local counter. Uniqueness is statistical (ids correlate requests,
// they are not security tokens); never returns 0, the "untraced" value.
uint64_t MintTraceId();

struct CampaignRequest {
  std::string tenant = "default";
  // Per-request trace id (16-hex on the wire). 0 = unset: the typed client
  // mints one before sending, the server mints one for raw requests that
  // omit it — either way the response echoes the id the campaign ran under.
  uint64_t trace_id = 0;
  // Designs to enroll, by catalog name (service/registry.h); empty = every
  // built-in design (subject to with_aes).
  std::vector<std::string> designs;
  uint32_t num_mutants = 30;
  uint64_t seed = 0xA9EDFA17;
  bool with_aes = false;
  // Run the conventional random-simulation baseline too.
  bool baseline = false;
  // Session governance for this campaign's verification jobs. The server
  // clamps jobs to its own worker budget.
  uint32_t jobs = 1;
  uint32_t deadline_ms = 0;
  uint32_t memory_budget_mb = 0;
  uint32_t retries = 4;
};

struct CampaignResponse {
  bool ok = false;
  std::string error;             // set when !ok
  uint64_t trace_id = 0;         // echo of the id the campaign ran under
  uint64_t digest = 0;           // order-independent classification digest
  uint64_t mutants = 0;
  uint64_t classified = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double wall_seconds = 0;
  std::string table;             // per-design coverage table (human-facing)
};

struct StatsResponse {
  bool ok = false;
  std::string error;
  uint64_t live_requests = 0;    // admitted and not yet answered
  uint64_t accepted = 0;         // connections accepted since start
  uint64_t rejected = 0;         // admission-control rejections since start
  uint64_t cache_entries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

// The operator view: everything an `aqed-client --status` call needs to
// answer "what is this server doing right now". All values come from live
// server state (admission counters, the solve cache, the server's own
// request-latency histogram), not from the telemetry kill switch.
struct StatusResponse {
  bool ok = false;
  std::string error;
  double uptime_seconds = 0;
  uint64_t requests = 0;         // total requests handled (any type)
  uint64_t live_requests = 0;    // campaigns admitted and not yet answered
  uint64_t accepted = 0;         // connections accepted since start
  uint64_t rejected = 0;         // admission-control rejections since start
  uint64_t connections = 0;      // currently-open client connections
  uint32_t executors = 0;        // configured executor pool size
  uint32_t max_live = 0;         // global admission bound
  uint32_t max_tenant_live = 0;  // per-tenant admission bound
  // Every tenant the server has seen, name-sorted, with its current
  // in-flight campaign count (0 once its campaigns drain).
  struct Tenant {
    std::string name;
    uint32_t live = 0;
  };
  std::vector<Tenant> tenants;
  uint64_t cache_entries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evicted = 0;
  // Memory-governor pressure stage (governor.pressure gauge; 0 when no
  // governed session is running).
  int64_t governor_pressure = 0;
  // Request-latency quantiles over every request handled since start.
  double request_p50_ms = 0;
  double request_p95_ms = 0;
  double request_p99_ms = 0;
};

// Liveness probe: cheap to answer, safe to poll.
struct HealthResponse {
  bool ok = false;
  std::string error;
  std::string state;             // "ok" | "stopping"
  double uptime_seconds = 0;
};

// Prometheus text exposition of the server's full metrics registry
// (telemetry::RenderPrometheus output, carried verbatim).
struct MetricsResponse {
  bool ok = false;
  std::string error;
  std::string prometheus;
};

// Request encoding/decoding. Decode validates the "type" field and every
// typed member; unknown designs are the server's to reject (it owns the
// catalog), unknown fields are ignored (forward compatibility).
std::string EncodePing();
std::string EncodeStatsRequest();
std::string EncodeStatusRequest();
std::string EncodeMetricsRequest();
std::string EncodeHealthRequest();
std::string EncodeCampaignRequest(const CampaignRequest& request);

// The "type" of a decoded request payload; nullopt on parse failure.
std::optional<std::string> RequestType(const telemetry::Json& payload);
StatusOr<CampaignRequest> DecodeCampaignRequest(const telemetry::Json& payload);

// Response encoding/decoding.
std::string EncodeError(std::string_view message);
std::string EncodePong();
std::string EncodeCampaignResponse(const CampaignResponse& response);
std::string EncodeStatsResponse(const StatsResponse& response);
std::string EncodeStatusResponse(const StatusResponse& response);
std::string EncodeHealthResponse(const HealthResponse& response);
std::string EncodeMetricsResponse(const MetricsResponse& response);
StatusOr<CampaignResponse> DecodeCampaignResponse(std::string_view payload);
StatusOr<StatsResponse> DecodeStatsResponse(std::string_view payload);
StatusOr<StatusResponse> DecodeStatusResponse(std::string_view payload);
StatusOr<HealthResponse> DecodeHealthResponse(std::string_view payload);
StatusOr<MetricsResponse> DecodeMetricsResponse(std::string_view payload);
// True iff the payload decodes to {"ok":true,...} (pong or any success).
bool IsOkResponse(std::string_view payload);

}  // namespace aqed::service
