// Built-in design catalog.
//
// bench_fault used to assemble its campaign design list — the seed
// accelerators with their campaign-tuned A-QED options — inline in main().
// aqed-server verifies the same designs for remote clients, and the cache
// digest-equality contract ("a campaign through the server classifies
// bit-identically to the CLI") only holds if both sides construct *exactly*
// the same DesignUnderTest list. So the list lives here, once, and both the
// bench and the server resolve designs from it by name.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "accel/memctrl.h"
#include "fault/campaign.h"
#include "harness/conventional_flow.h"
#include "support/status.h"

namespace aqed::service {

// A-QED options used for the memory-controller study (Sec. V.A): FC plus RB
// with the per-configuration response bound, per-property bounds, and a
// bounded per-depth refutation effort. (Moved from bench_common.h; the
// bench namespace re-exports it for its table/figure binaries.)
core::AqedOptions MemCtrlStudyOptions(accel::MemCtrlConfig config);

// The conventional flow's per-configuration testbench assumptions (see
// tests/memctrl_test.cpp for the rationale).
harness::CampaignOptions MemCtrlConventionalOptions(accel::MemCtrlConfig config);

struct CatalogOptions {
  // Include the mini-AES design (the most expensive entry: its duplicated
  // S-box datapath dominates campaign wall time; bench_fault's --no-aes).
  bool with_aes = true;
};

// The campaign design list: memctrl (fifo / double-buffer / line-buffer),
// alu, dataflow, optflow, and (optionally) mini-AES — each with the
// campaign-tuned bounds, SAC spec, golden model, and conventional-flow
// testbench shape. Deterministic: every call builds an identical list.
std::vector<fault::DesignUnderTest> BuiltinDesigns(
    const CatalogOptions& options = {});

// Looks a design up by name; nullptr when absent.
const fault::DesignUnderTest* FindDesign(
    std::span<const fault::DesignUnderTest> designs, std::string_view name);

// Resolves a design selection against the catalog. An empty selection is
// the whole catalog; an unknown name is an error whose message lists every
// valid name ("unknown design 'x' (catalog: a, b, ...)") — the one answer
// every caller (bench_fault --designs, the server's campaign request)
// should give instead of silently running an empty campaign.
StatusOr<std::vector<fault::DesignUnderTest>> SelectDesigns(
    std::span<const fault::DesignUnderTest> catalog,
    std::span<const std::string> names);
// Same, over a comma-separated list ("alu,dataflow"); empty segments are
// ignored.
StatusOr<std::vector<fault::DesignUnderTest>> SelectDesigns(
    std::span<const fault::DesignUnderTest> catalog, std::string_view names);

}  // namespace aqed::service
