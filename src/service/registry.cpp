#include "service/registry.h"

#include <sstream>

#include "accel/aes.h"
#include "accel/dataflow.h"
#include "accel/multi_action.h"
#include "accel/optflow.h"
#include "accel/widepipe.h"

namespace aqed::service {

namespace {

fault::DesignUnderTest MemCtrlDut(accel::MemCtrlConfig config) {
  fault::DesignUnderTest dut;
  dut.name = std::string("memctrl-") + accel::MemCtrlConfigName(config);
  dut.build = [config](ir::TransitionSystem& ts) {
    return accel::BuildMemCtrl(ts, config).acc;
  };
  // Campaign bounds are tighter than the Table 1 study's: mutant
  // counterexamples are shallow (they corrupt the first transaction — every
  // FC detection in the campaign lands at depth <= 7), and refutation cost
  // grows steeply with depth. Bound 7 keeps even the hardest surviving
  // mutant's FC refutation several times under the escalated deadline
  // ladder, so no final verdict ever rides on a wall-clock race and
  // classifications stay identical across --jobs counts.
  dut.options = core::AqedOptions::Builder(MemCtrlStudyOptions(config))
                    .WithFcBound(7)
                    .WithSacSpec(accel::MemCtrlSpec(config))
                    .WithSacBound(8)
                    .Build();
  dut.golden = accel::MemCtrlGolden(config);
  dut.conventional = MemCtrlConventionalOptions(config);
  return dut;
}

core::AqedOptions HlsOptions(uint32_t tau, uint32_t rdin_bound,
                             core::SpecFn spec, uint32_t sac_bound) {
  core::RbOptions rb;
  rb.tau = tau;
  rb.rdin_bound = rdin_bound;
  auto builder = core::AqedOptions::Builder()
                     .WithRb(rb)
                     .WithFcBound(10)
                     .WithRbBound(tau + 8)
                     .WithConflictBudget(400000);
  if (spec) builder.WithSacSpec(std::move(spec)).WithSacBound(sac_bound);
  return builder.Build();
}

harness::CampaignOptions HlsConventional() {
  harness::CampaignOptions options;
  options.num_seeds = 10;
  options.testbench.max_cycles = 300;
  options.testbench.hang_timeout = 150;
  return options;
}

}  // namespace

core::AqedOptions MemCtrlStudyOptions(accel::MemCtrlConfig config) {
  core::RbOptions rb;
  rb.tau = accel::MemCtrlResponseBound(config);
  rb.in_min = config == accel::MemCtrlConfig::kDoubleBuffer ? 2 : 1;
  return core::AqedOptions::Builder()
      .WithRb(rb)
      .WithFcBound(14)
      .WithRbBound(20)
      .WithConflictBudget(400000)
      .Build();
}

harness::CampaignOptions MemCtrlConventionalOptions(
    accel::MemCtrlConfig config) {
  harness::CampaignOptions options;
  options.num_seeds = 20;
  options.testbench.max_cycles = 300;   // one directed-test run
  options.testbench.data_pool = 6;
  options.testbench.hang_timeout = 200;
  // Results are compared when the test completes, as application-level
  // testbenches do — a failing conventional trace is the whole test.
  options.testbench.end_of_test_checking = true;
  options.testbench.pinned_inputs = {{"clk_en", 1}};
  if (config == accel::MemCtrlConfig::kLineBuffer) {
    options.testbench.host_ready_prob = 256;
  }
  return options;
}

std::vector<fault::DesignUnderTest> BuiltinDesigns(
    const CatalogOptions& options) {
  std::vector<fault::DesignUnderTest> designs;
  designs.push_back(MemCtrlDut(accel::MemCtrlConfig::kFifo));
  designs.push_back(MemCtrlDut(accel::MemCtrlConfig::kDoubleBuffer));
  designs.push_back(MemCtrlDut(accel::MemCtrlConfig::kLineBuffer));
  designs.push_back(
      {"alu",
       [](ir::TransitionSystem& ts) { return accel::BuildAlu(ts, {}).acc; },
       HlsOptions(accel::AluResponseBound(), 0, accel::AluSpec(), 8),
       accel::AluGolden(), HlsConventional()});
  designs.push_back({"dataflow",
                     [](ir::TransitionSystem& ts) {
                       return accel::BuildDataflow(ts, {}).acc;
                     },
                     HlsOptions(accel::DataflowResponseBound(),
                                accel::DataflowRdinBound(),
                                accel::DataflowSpec(), 8),
                     accel::DataflowGolden(), HlsConventional()});
  designs.push_back({"optflow",
                     [](ir::TransitionSystem& ts) {
                       return accel::BuildOptFlow(ts, {}).acc;
                     },
                     HlsOptions(accel::OptFlowResponseBound(), 0,
                                accel::OptFlowSpec(), 8),
                     accel::OptFlowGolden(), HlsConventional()});
  {
    // The decomposition showcase (accel/widepipe.h) in its small,
    // monolithically tractable configuration — FC-only: the pipe has no
    // backpressure (RB is trivial) and its point is consistency across
    // transaction timing, which is exactly what FC checks. The bench-sized
    // configuration is exercised by bench_decomp, not by campaigns.
    const accel::WidePipeConfig widepipe{
        .lanes = 2, .stages = 2, .width = 4, .bug_stage = -1};
    designs.push_back({"widepipe",
                       [widepipe](ir::TransitionSystem& ts) {
                         return accel::BuildWidePipe(ts, widepipe).acc;
                       },
                       core::AqedOptions::Builder()
                           .WithBound(8)
                           .WithConflictBudget(400000)
                           .Build(),
                       accel::WidePipeGolden(widepipe), HlsConventional()});
  }
  if (options.with_aes) {
    // Mini-AES with one round: the heaviest design here — a single round
    // keeps FC refutations inside the per-job deadline while preserving the
    // key schedule, queue, and batch logic mutants land in.
    accel::AesConfig aes;
    aes.rounds = 1;
    // The duplicated (orig + dup) S-box datapath makes AES FC refutations
    // several times costlier per depth than the other designs', so FC gets
    // a shallow bound covering queue/handshake mutants; the (single-copy,
    // far cheaper) SAC spec carries detection of the round-datapath and
    // key-schedule mutants FC cannot reach at that depth.
    const auto aes_options =
        core::AqedOptions::Builder(
            HlsOptions(accel::AesResponseBound(aes), 0, accel::AesSpec(aes),
                       8))
            .WithFcBound(7)
            .Build();
    designs.push_back({"aes",
                       [aes](ir::TransitionSystem& ts) {
                         return accel::BuildAes(ts, aes).acc;
                       },
                       aes_options, accel::AesGolden(aes), HlsConventional()});
  }
  return designs;
}

const fault::DesignUnderTest* FindDesign(
    std::span<const fault::DesignUnderTest> designs, std::string_view name) {
  for (const fault::DesignUnderTest& design : designs) {
    if (design.name == name) return &design;
  }
  return nullptr;
}

StatusOr<std::vector<fault::DesignUnderTest>> SelectDesigns(
    std::span<const fault::DesignUnderTest> catalog,
    std::span<const std::string> names) {
  std::vector<fault::DesignUnderTest> selected;
  for (const std::string& name : names) {
    const fault::DesignUnderTest* design = FindDesign(catalog, name);
    if (design == nullptr) {
      std::string message = "unknown design '" + name + "' (catalog: ";
      for (size_t i = 0; i < catalog.size(); ++i) {
        if (i > 0) message += ", ";
        message += catalog[i].name;
      }
      return Status::Error(message + ")");
    }
    selected.push_back(*design);
  }
  if (selected.empty()) {
    selected.assign(catalog.begin(), catalog.end());
  }
  return selected;
}

StatusOr<std::vector<fault::DesignUnderTest>> SelectDesigns(
    std::span<const fault::DesignUnderTest> catalog, std::string_view names) {
  std::vector<std::string> split;
  std::stringstream stream{std::string(names)};
  for (std::string name; std::getline(stream, name, ',');) {
    if (!name.empty()) split.push_back(name);
  }
  return SelectDesigns(catalog, split);
}

}  // namespace aqed::service
