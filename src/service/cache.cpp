#include "service/cache.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "fault/journal.h"
#include "ir/digest.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace aqed::service {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixInt(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t MixText(uint64_t hash, std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return MixInt(hash, text.size());
}

// Persistence reuses the journal's line skeleton so the CRC covers exactly
// the "data" payload bytes and torn tails are detected the same way:
//   {"crc":"1a2b3c4d","data":{...}}
constexpr std::string_view kCrcPrefix = "{\"crc\":\"";
constexpr std::string_view kDataInfix = "\",\"data\":";
constexpr std::string_view kLineSuffix = "}";

std::string EncodeEntry(const CacheKey& key, const CachedVerdict& verdict) {
  std::map<std::string, telemetry::Json> data;
  char hex[20];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, key.design_digest);
  data.emplace("design", telemetry::Json(std::string(hex)));
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, key.config_digest);
  data.emplace("config", telemetry::Json(std::string(hex)));
  data.emplace("mutant", telemetry::Json(key.mutant_key));
  data.emplace("depth", telemetry::Json(static_cast<int64_t>(key.depth)));
  data.emplace("classification",
               telemetry::Json(std::string(
                   fault::ClassificationName(verdict.classification))));
  data.emplace("kind", telemetry::Json(std::string(
                           core::BugKindName(verdict.kind))));
  data.emplace("cex_cycles",
               telemetry::Json(static_cast<int64_t>(verdict.cex_cycles)));
  data.emplace("attempts",
               telemetry::Json(static_cast<int64_t>(verdict.attempts)));
  if (verdict.trace_id != 0) {
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, verdict.trace_id);
    data.emplace("trace_id", telemetry::Json(std::string(hex)));
  }
  const std::string payload =
      telemetry::Dump(telemetry::Json::Object(std::move(data)));

  std::string line(kCrcPrefix);
  std::snprintf(hex, sizeof(hex), "%08x", fault::Crc32(payload));
  line += hex;
  line += kDataInfix;
  line += payload;
  line += kLineSuffix;
  line += '\n';
  return line;
}

std::optional<uint64_t> HexField(const telemetry::Json& json,
                                 const char* name) {
  const telemetry::Json* value = json.Find(name);
  if (value == nullptr || !value->is_string()) return std::nullopt;
  const std::string& text = value->AsString();
  if (text.size() != 16) return std::nullopt;
  uint64_t out = 0;
  for (const char c : text) {
    out <<= 4;
    if (c >= '0' && c <= '9') out |= static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') out |= static_cast<uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return out;
}

std::optional<std::pair<CacheKey, CachedVerdict>> DecodeEntry(
    std::string_view line) {
  // Same validation ladder as DecodeJournalRecord: skeleton, CRC over the
  // payload bytes, then JSON + enum decode. Any failure poisons the line.
  if (line.size() < kCrcPrefix.size() + 8 + kDataInfix.size() +
                        kLineSuffix.size() ||
      line.substr(0, kCrcPrefix.size()) != kCrcPrefix) {
    return std::nullopt;
  }
  const std::string_view crc_hex = line.substr(kCrcPrefix.size(), 8);
  if (line.substr(kCrcPrefix.size() + 8, kDataInfix.size()) != kDataInfix) {
    return std::nullopt;
  }
  if (line.substr(line.size() - kLineSuffix.size()) != kLineSuffix) {
    return std::nullopt;
  }
  const std::string_view payload =
      line.substr(kCrcPrefix.size() + 8 + kDataInfix.size(),
                  line.size() - kCrcPrefix.size() - 8 - kDataInfix.size() -
                      kLineSuffix.size());
  uint32_t expected = 0;
  for (const char c : crc_hex) {
    expected <<= 4;
    if (c >= '0' && c <= '9') expected |= static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') expected |= static_cast<uint32_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  if (fault::Crc32(payload) != expected) return std::nullopt;

  const std::optional<telemetry::Json> json = telemetry::ParseJson(payload);
  if (!json || !json->is_object()) return std::nullopt;
  const auto design = HexField(*json, "design");
  const auto config = HexField(*json, "config");
  const telemetry::Json* mutant = json->Find("mutant");
  const telemetry::Json* depth = json->Find("depth");
  const telemetry::Json* classification = json->Find("classification");
  const telemetry::Json* kind = json->Find("kind");
  const telemetry::Json* cex = json->Find("cex_cycles");
  const telemetry::Json* attempts = json->Find("attempts");
  if (!design || !config || mutant == nullptr || !mutant->is_string() ||
      depth == nullptr || !depth->is_number() || classification == nullptr ||
      !classification->is_string() || kind == nullptr || !kind->is_string() ||
      cex == nullptr || !cex->is_number() || attempts == nullptr ||
      !attempts->is_number()) {
    return std::nullopt;
  }
  const auto decoded_class =
      fault::ClassificationFromName(classification->AsString());
  const auto decoded_kind = fault::BugKindFromName(kind->AsString());
  if (!decoded_class || !decoded_kind) return std::nullopt;
  // A persisted kUnknown can only come from corruption or hand-editing:
  // Store refuses them, so Load does too.
  if (*decoded_class == fault::Classification::kUnknown) return std::nullopt;

  CacheKey key;
  key.design_digest = *design;
  key.config_digest = *config;
  key.mutant_key = mutant->AsString();
  key.depth = static_cast<uint32_t>(depth->AsInt());
  CachedVerdict verdict;
  verdict.classification = *decoded_class;
  verdict.kind = *decoded_kind;
  verdict.cex_cycles = static_cast<uint32_t>(cex->AsInt());
  verdict.attempts = static_cast<uint32_t>(attempts->AsInt());
  // Optional provenance: files written before trace ids (or entries solved
  // by an untraced run) simply have none.
  if (const auto trace = HexField(*json, "trace_id")) {
    verdict.trace_id = *trace;
  }
  return std::make_pair(std::move(key), verdict);
}

}  // namespace

std::string CacheKey::ToString() const {
  char buf[64];
  std::string out;
  std::snprintf(buf, sizeof(buf), "d=%016" PRIx64 " c=%016" PRIx64 " m=",
                design_digest, config_digest);
  out += buf;
  out += mutant_key;
  std::snprintf(buf, sizeof(buf), " b=%u", depth);
  out += buf;
  return out;
}

size_t CacheKeyHash::operator()(const CacheKey& key) const {
  uint64_t hash = kFnvOffset;
  hash = MixInt(hash, key.design_digest);
  hash = MixInt(hash, key.config_digest);
  hash = MixText(hash, key.mutant_key);
  hash = MixInt(hash, key.depth);
  return static_cast<size_t>(hash);
}

uint64_t ConfigDigest(const core::AqedOptions& options) {
  uint64_t hash = MixInt(kFnvOffset, 0xC0F1D16Eu);  // format version salt
  hash = MixInt(hash, options.check_fc ? 1 : 0);
  hash = MixText(hash, options.fc.label);
  hash = MixInt(hash, options.fc.check_early_output ? 1 : 0);
  hash = MixInt(hash, options.rb.has_value() ? 1 : 0);
  if (options.rb.has_value()) {
    hash = MixInt(hash, options.rb->tau);
    hash = MixInt(hash, options.rb->in_min);
    hash = MixInt(hash, options.rb->rdin_bound);
    hash = MixInt(hash, options.rb->progress_qualifier);
    hash = MixText(hash, options.rb->label);
  }
  hash = MixInt(hash, options.sac_spec != nullptr ? 1 : 0);
  hash = MixText(hash, options.sac.label);
  hash = MixInt(hash, options.fc_bound);
  hash = MixInt(hash, options.rb_bound);
  hash = MixInt(hash, options.sac_bound);
  // Budgets are conservative inclusions: a decided verdict does not depend
  // on them, but keying them avoids ever having to argue the point.
  hash = MixInt(hash, static_cast<uint64_t>(options.bmc.conflict_budget));
  hash = MixInt(hash, options.bmc.validate_counterexamples ? 1 : 0);
  hash = MixInt(hash, options.bmc.bad_filter.size());
  for (const uint32_t bad : options.bmc.bad_filter) {
    hash = MixInt(hash, bad);
  }
  return hash;
}

std::optional<CachedVerdict> SolveCache::Lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    telemetry::AddCounter("service.cache.misses", 1);
    return std::nullopt;
  }
  ++hits_;
  it->second.last_use = ++tick_;
  telemetry::AddCounter("service.cache.hits", 1);
  return it->second.verdict;
}

void SolveCache::Store(const CacheKey& key, const CachedVerdict& verdict) {
  if (verdict.classification == fault::Classification::kUnknown) return;
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = Slot{verdict, ++tick_};
  telemetry::AddCounter("service.cache.store", 1);
  telemetry::SetGauge("service.cache.entries",
                      static_cast<int64_t>(entries_.size()));
}

void SolveCache::SetMaxEntries(size_t max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_entries_ = max_entries;
}

Status SolveCache::Load(const std::string& path) {
  StatusOr<std::string> contents = support::ReadFileToString(path);
  if (!contents.ok()) return Status::Ok();  // missing cache = empty cache
  const std::string& text = contents.value();

  std::lock_guard<std::mutex> lock(mutex_);
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();  // torn tail: poisoned
    const std::string_view line(text.data() + begin, end - begin);
    if (!line.empty()) {
      if (auto entry = DecodeEntry(line)) {
        // Load order approximates the persisted file's recency: Save wrote
        // survivors of the previous trim, so all of them start equally warm
        // relative to anything stored later in this run.
        entries_[std::move(entry->first)] = Slot{entry->second, ++tick_};
      } else {
        ++poisoned_;
        telemetry::AddCounter("service.cache.dropped", 1);
      }
    }
    begin = end + 1;
  }
  telemetry::SetGauge("service.cache.entries",
                      static_cast<int64_t>(entries_.size()));
  return Status::Ok();
}

Status SolveCache::Save(const std::string& path) {
  // Chaos site: the moment a crash would tear the persisted cache — which
  // the CRC line format plus atomic replace must make survivable.
  if (AQED_FAILPOINT("service.cache.store")) {
    return Status::Error("cache store failed (failpoint)");
  }
  // Concurrent saves share one temporary file name; without this two
  // campaigns finishing together race the rename and one fails with ENOENT.
  std::lock_guard<std::mutex> save_lock(save_mutex_);
  std::string contents;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_entries_ != 0 && entries_.size() > max_entries_) {
      // Trim the least-recently-used entries down to the bound. Save is the
      // cold path (once per campaign), so a sort over the ticks is cheaper
      // to reason about than keeping an intrusive LRU list hot in Lookup.
      std::vector<uint64_t> ticks;
      ticks.reserve(entries_.size());
      for (const auto& [key, slot] : entries_) ticks.push_back(slot.last_use);
      std::nth_element(ticks.begin(),
                       ticks.begin() + (entries_.size() - max_entries_ - 1),
                       ticks.end());
      const uint64_t cutoff = ticks[entries_.size() - max_entries_ - 1];
      uint64_t trimmed = 0;
      for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.last_use <= cutoff) {
          it = entries_.erase(it);
          ++trimmed;
        } else {
          ++it;
        }
      }
      evicted_ += trimmed;
      telemetry::AddCounter("service.cache.evicted",
                            static_cast<int64_t>(trimmed));
      telemetry::SetGauge("service.cache.entries",
                          static_cast<int64_t>(entries_.size()));
    }
    for (const auto& [key, slot] : entries_) {
      contents += EncodeEntry(key, slot.verdict);
    }
  }
  return support::WriteFileDurable(path, contents);
}

size_t SolveCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

uint64_t SolveCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t SolveCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

uint64_t SolveCache::poisoned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

uint64_t SolveCache::evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

double SolveCache::hit_ratio() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 1.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

CacheKey CampaignCacheAdapter::KeyFor(const fault::DesignUnderTest& dut,
                                      const fault::MutantKey& key) {
  CacheKey out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = design_digests_.find(dut.name);
    if (it != design_digests_.end()) {
      out.design_digest = it->second;
    }
  }
  if (out.design_digest == 0) {
    // One pristine build per design, outside the lock: builders are pure
    // and the digest deterministic, so a racing double-compute is benign.
    ir::TransitionSystem scratch;
    dut.build(scratch);
    const uint64_t digest = ir::StructuralDigest(scratch);
    std::lock_guard<std::mutex> lock(mutex_);
    design_digests_[dut.name] = digest;
    out.design_digest = digest;
  }
  out.config_digest = ConfigDigest(dut.options);
  out.mutant_key = key.ToString();
  out.depth = dut.options.bmc.max_bound;
  return out;
}

bool CampaignCacheAdapter::Lookup(const fault::DesignUnderTest& dut,
                                  const fault::MutantKey& key,
                                  fault::MutantReport& report) {
  const std::optional<CachedVerdict> verdict = cache_.Lookup(KeyFor(dut, key));
  if (!verdict) return false;
  report.classification = verdict->classification;
  report.kind = verdict->kind;
  report.cex_cycles = verdict->cex_cycles;
  report.attempts = verdict->attempts;
  // The *originating* request's id, not this run's: a hit's provenance is
  // whoever actually solved it.
  report.trace_id = verdict->trace_id;
  return true;
}

void CampaignCacheAdapter::Store(const fault::DesignUnderTest& dut,
                                 const fault::MutantKey& key,
                                 const fault::MutantReport& report) {
  if (report.classification == fault::Classification::kUnknown) return;
  CachedVerdict verdict;
  verdict.classification = report.classification;
  verdict.kind = report.kind;
  verdict.cex_cycles = report.cex_cycles;
  verdict.attempts = report.attempts;
  verdict.trace_id = report.trace_id;
  cache_.Store(KeyFor(dut, key), verdict);
}

}  // namespace aqed::service
