#include "fault/journal.h"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <initializer_list>
#include <system_error>

#include <unistd.h>

#include "aqed/checker.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "telemetry/json.h"

namespace aqed::fault {

namespace {

// The fixed line skeleton: the CRC field leads, at a fixed offset, so the
// payload bytes the CRC covers can be located without parsing JSON first.
constexpr std::string_view kCrcPrefix = "{\"crc\":\"";   // then 8 hex chars
constexpr std::string_view kDataInfix = "\",\"data\":";  // then the payload
constexpr std::string_view kLineSuffix = "}";

void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Reverse lookup over an enum's canonical Name() function: the journal
// stores the human-readable names (grep-able, stable across enum reorders),
// so decoding walks the value lists instead of trusting raw integers.
template <typename E, typename Namer>
std::optional<E> EnumFromName(std::string_view name,
                              std::initializer_list<E> values, Namer namer) {
  for (const E value : values) {
    if (name == namer(value)) return value;
  }
  return std::nullopt;
}

constexpr std::initializer_list<MutationOp> kMutationOps = {
    MutationOp::kStuckAtZero,  MutationOp::kStuckAtOne,
    MutationOp::kOperatorSwap, MutationOp::kConstPerturb,
    MutationOp::kCondNegate,   MutationOp::kOffByOne,
};
constexpr std::initializer_list<Classification> kClassifications = {
    Classification::kDetectedFc,  Classification::kDetectedRb,
    Classification::kDetectedSac, Classification::kSurvived,
    Classification::kUnknown,
};
constexpr std::initializer_list<core::BugKind> kBugKinds = {
    core::BugKind::kNone,
    core::BugKind::kFunctionalConsistency,
    core::BugKind::kEarlyOutput,
    core::BugKind::kResponseBound,
    core::BugKind::kInputStarvation,
    core::BugKind::kSingleActionCorrectness,
};
std::string EncodePayload(const MutantReport& report) {
  std::string out;
  // Worst case for the last piece: two %.17g doubles (~24 chars each), a
  // 20-digit uint64, and ~90 literal chars — well under 224.
  char buf[224];
  out += "{\"design\":";
  AppendJsonString(out, report.design);
  out += ",\"op\":";
  AppendJsonString(out, MutationOpName(report.key.op));
  std::snprintf(buf, sizeof(buf), ",\"node\":%u,\"seed\":%" PRIu64,
                report.key.node, report.key.seed);
  out += buf;
  out += ",\"classification\":";
  AppendJsonString(out, ClassificationName(report.classification));
  out += ",\"kind\":";
  AppendJsonString(out, core::BugKindName(report.kind));
  std::snprintf(buf, sizeof(buf), ",\"cex_cycles\":%u,\"attempts\":%u",
                report.cex_cycles, report.attempts);
  out += buf;
  // Provenance as 16-hex (the wire spelling for uint64s); 0 = untraced.
  // Written unconditionally so records round-trip field-for-field, decoded
  // as optional so pre-trace journals still replay.
  std::snprintf(buf, sizeof(buf), ",\"trace_id\":\"%016" PRIx64 "\"",
                report.trace_id);
  out += buf;
  out += ",\"unknown_reason\":";
  AppendJsonString(out, ToString(report.unknown_reason));
  // %.17g round-trips doubles exactly through strtod.
  std::snprintf(buf, sizeof(buf),
                ",\"wall_seconds\":%.17g,\"golden_ran\":%s,"
                "\"golden_detected\":%s,\"golden_cycles\":%" PRIu64
                ",\"golden_seconds\":%.17g}",
                report.wall_seconds, report.golden_ran ? "true" : "false",
                report.golden_detected ? "true" : "false",
                report.golden_cycles, report.golden_seconds);
  out += buf;
  return out;
}

std::optional<MutantReport> DecodePayload(std::string_view payload) {
  const std::optional<telemetry::Json> json = telemetry::ParseJson(payload);
  if (!json || !json->is_object()) return std::nullopt;
  const auto string_field =
      [&](const char* key) -> std::optional<std::string_view> {
    const telemetry::Json* value = json->Find(key);
    if (value == nullptr || !value->is_string()) return std::nullopt;
    return value->AsString();
  };
  const auto int_field = [&](const char* key) -> std::optional<int64_t> {
    const telemetry::Json* value = json->Find(key);
    if (value == nullptr || !value->is_number()) return std::nullopt;
    return value->AsInt();
  };
  const auto double_field = [&](const char* key) -> std::optional<double> {
    const telemetry::Json* value = json->Find(key);
    if (value == nullptr || !value->is_number()) return std::nullopt;
    return value->AsNumber();
  };
  const auto bool_field = [&](const char* key) -> std::optional<bool> {
    const telemetry::Json* value = json->Find(key);
    if (value == nullptr || value->kind() != telemetry::Json::Kind::kBool) {
      return std::nullopt;
    }
    return value->AsBool();
  };

  MutantReport report;
  const auto design = string_field("design");
  const auto op_name = string_field("op");
  const auto node = int_field("node");
  const auto seed = int_field("seed");
  const auto classification_name = string_field("classification");
  const auto kind_name = string_field("kind");
  const auto cex_cycles = int_field("cex_cycles");
  const auto attempts = int_field("attempts");
  const auto unknown_name = string_field("unknown_reason");
  const auto wall_seconds = double_field("wall_seconds");
  const auto golden_ran = bool_field("golden_ran");
  const auto golden_detected = bool_field("golden_detected");
  const auto golden_cycles = int_field("golden_cycles");
  const auto golden_seconds = double_field("golden_seconds");
  if (!design || !op_name || !node || !seed || !classification_name ||
      !kind_name || !cex_cycles || !attempts || !unknown_name ||
      !wall_seconds || !golden_ran || !golden_detected || !golden_cycles ||
      !golden_seconds) {
    return std::nullopt;
  }
  const auto op = MutationOpFromName(*op_name);
  const auto classification = ClassificationFromName(*classification_name);
  const auto kind = BugKindFromName(*kind_name);
  // The wire-stable mapping in support/verdict.h is the single source of
  // truth for the outcome enums; only the fault-local enums keep lists here.
  const auto unknown = UnknownReasonFromString(*unknown_name);
  if (!op || !classification || !kind || !unknown) return std::nullopt;

  // trace_id is optional (journals written before it existed lack the
  // field) and deliberately lax: a malformed value degrades to "untraced",
  // never poisons an otherwise-valid classification record.
  if (const auto trace = string_field("trace_id");
      trace && trace->size() == 16) {
    uint64_t value = 0;
    bool valid = true;
    for (const char c : *trace) {
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint64_t>(c - 'a' + 10);
      else { valid = false; break; }
    }
    if (valid) report.trace_id = value;
  }

  report.design = std::string(*design);
  report.key.op = *op;
  report.key.node = static_cast<ir::NodeRef>(*node);
  report.key.seed = static_cast<uint64_t>(*seed);
  report.classification = *classification;
  report.kind = *kind;
  report.cex_cycles = static_cast<uint32_t>(*cex_cycles);
  report.attempts = static_cast<uint32_t>(*attempts);
  report.unknown_reason = *unknown;
  report.wall_seconds = *wall_seconds;
  report.golden_ran = *golden_ran;
  report.golden_detected = *golden_detected;
  report.golden_cycles = static_cast<uint64_t>(*golden_cycles);
  report.golden_seconds = *golden_seconds;
  return report;
}

}  // namespace

std::optional<MutationOp> MutationOpFromName(std::string_view name) {
  return EnumFromName(name, kMutationOps, MutationOpName);
}

std::optional<Classification> ClassificationFromName(std::string_view name) {
  return EnumFromName(name, kClassifications, ClassificationName);
}

std::optional<core::BugKind> BugKindFromName(std::string_view name) {
  return EnumFromName(name, kBugKinds, core::BugKindName);
}

uint32_t Crc32(std::string_view data) {
  // Table-driven CRC-32 (IEEE 802.3 polynomial, reflected). In-tree so the
  // journal needs no zlib; the table builds once.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(c)) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeJournalRecord(const MutantReport& report) {
  const std::string payload = EncodePayload(report);
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(payload));
  std::string line;
  line.reserve(kCrcPrefix.size() + 8 + kDataInfix.size() + payload.size() +
               kLineSuffix.size() + 1);
  line += kCrcPrefix;
  line += crc;
  line += kDataInfix;
  line += payload;
  line += kLineSuffix;
  line += '\n';
  return line;
}

std::optional<MutantReport> DecodeJournalRecord(std::string_view line) {
  const size_t header = kCrcPrefix.size() + 8 + kDataInfix.size();
  if (line.size() < header + kLineSuffix.size()) return std::nullopt;
  if (line.substr(0, kCrcPrefix.size()) != kCrcPrefix) return std::nullopt;
  if (line.substr(kCrcPrefix.size() + 8, kDataInfix.size()) != kDataInfix) {
    return std::nullopt;
  }
  if (line.substr(line.size() - kLineSuffix.size()) != kLineSuffix) {
    return std::nullopt;
  }
  const std::string hex(line.substr(kCrcPrefix.size(), 8));
  char* end = nullptr;
  const unsigned long expected = std::strtoul(hex.c_str(), &end, 16);
  if (end != hex.c_str() + 8) return std::nullopt;
  const std::string_view payload =
      line.substr(header, line.size() - header - kLineSuffix.size());
  if (Crc32(payload) != static_cast<uint32_t>(expected)) return std::nullopt;
  return DecodePayload(payload);
}

StatusOr<JournalReplay> ReplayJournal(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return JournalReplay{};
  StatusOr<std::string> contents = support::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& text = contents.value();

  JournalReplay replay;
  size_t start = 0;
  while (start < text.size()) {
    const size_t newline = text.find('\n', start);
    if (newline == std::string::npos) {
      // Unterminated tail. Appends always end in '\n', so this is a torn
      // write — unless the bytes happen to decode (a file that lost only
      // its final newline), in which case keep the record.
      std::optional<MutantReport> record =
          DecodeJournalRecord(std::string_view(text).substr(start));
      if (record.has_value()) {
        replay.records.push_back(std::move(*record));
        replay.valid_bytes = text.size();
      } else {
        replay.torn_tail = true;
      }
      break;
    }
    const std::string_view line =
        std::string_view(text).substr(start, newline - start);
    start = newline + 1;
    if (line.empty()) continue;
    std::optional<MutantReport> record = DecodeJournalRecord(line);
    if (record.has_value()) {
      replay.records.push_back(std::move(*record));
      replay.valid_bytes = start;
    } else {
      ++replay.skipped_records;
      std::fprintf(stderr,
                   "[journal] %s: skipping corrupt record at byte %zu\n",
                   path.c_str(), start - line.size() - 1);
    }
  }
  return replay;
}

Status ResultJournal::Open(const std::string& path, uint64_t keep_bytes) {
  Close();
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (!ec && size > keep_bytes) {
    // Drop the torn tail (and any trailing corrupt records) before the
    // first new append lands, so a resumed journal never interleaves a new
    // record with half of an old one.
    std::filesystem::resize_file(path, keep_bytes, ec);
    if (ec) {
      return Status::Error("journal truncate failed on '" + path +
                           "': " + ec.message());
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Error("cannot open journal '" + path + "' for append");
  }
  path_ = path;
  appended_ = 0;
  return Status::Ok();
}

Status ResultJournal::Append(const MutantReport& report) {
  AQED_CHECK(file_ != nullptr, "Append on a closed journal");
  // Chaos site: simulates a crash (throw) or an I/O error (error) at the
  // exact moment a kill -9 mid-append would hit.
  if (AQED_FAILPOINT("fault.journal.append")) {
    return Status::Error("journal append failed (failpoint)");
  }
  const std::string line = EncodeJournalRecord(report);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::Error("journal write failed on '" + path_ + "'");
  }
  // Record-granular durability: the whole point of a write-ahead journal is
  // that a classification survives the very next instruction's crash.
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::Error("journal flush failed on '" + path_ + "'");
  }
  ++appended_;
  return Status::Ok();
}

void ResultJournal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteJournalFile(const std::string& path,
                        std::span<const MutantReport> reports) {
  std::string contents;
  for (const MutantReport& report : reports) {
    contents += EncodeJournalRecord(report);
  }
  return support::WriteFileDurable(path, contents);
}

}  // namespace aqed::fault
