#include "fault/mutator.h"

#include <algorithm>
#include <cstdio>

#include "support/bits.h"
#include "support/rng.h"
#include "support/status.h"

namespace aqed::fault {

using ir::Context;
using ir::Node;
using ir::NodeRef;
using ir::Op;

const char* MutationOpName(MutationOp op) {
  switch (op) {
    case MutationOp::kStuckAtZero:
      return "stuck-at-0";
    case MutationOp::kStuckAtOne:
      return "stuck-at-1";
    case MutationOp::kOperatorSwap:
      return "op-swap";
    case MutationOp::kConstPerturb:
      return "const-perturb";
    case MutationOp::kCondNegate:
      return "cond-negate";
    case MutationOp::kOffByOne:
      return "off-by-one";
  }
  return "?";
}

std::string MutantKey::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s@n%u#s%llx", MutationOpName(op), node,
                static_cast<unsigned long long>(seed));
  return buf;
}

namespace {

// The deterministic operator-swap table: every entry maps to an operator of
// the identical signature (same operand sorts, same result sort), so the
// rebuilt node always type-checks.
Op SwappedOp(Op op) {
  switch (op) {
    case Op::kAdd:
      return Op::kSub;
    case Op::kSub:
      return Op::kAdd;
    case Op::kMul:
      return Op::kAdd;
    case Op::kAnd:
      return Op::kOr;
    case Op::kOr:
      return Op::kAnd;
    case Op::kXor:
      return Op::kOr;
    case Op::kEq:
      return Op::kNe;
    case Op::kNe:
      return Op::kEq;
    case Op::kUlt:
      return Op::kUle;
    case Op::kUle:
      return Op::kUlt;
    case Op::kSlt:
      return Op::kSle;
    case Op::kSle:
      return Op::kSlt;
    case Op::kShl:
      return Op::kLshr;
    case Op::kLshr:
      return Op::kShl;
    case Op::kAshr:
      return Op::kLshr;
    default:
      return op;  // not swappable
  }
}

bool IsComparison(Op op) {
  return op == Op::kEq || op == Op::kNe || op == Op::kUlt || op == Op::kUle ||
         op == Op::kSlt || op == Op::kSle;
}

bool IsCondNegateSite(const Node& node) {
  if (!node.sort.is_bitvec() || node.sort.width != 1) return false;
  // Conditions are computed, not free: leaves stay untouched (a negated
  // input is just another free input; a negated constant is kConstPerturb's
  // job).
  if (ir::OpIsLeaf(node.op)) return false;
  return IsComparison(node.op) || node.op == Op::kNot || node.op == Op::kAnd ||
         node.op == Op::kOr || node.op == Op::kXor || node.op == Op::kIte;
}

bool IsOffByOneSite(const Node& node) {
  return (node.op == Op::kAdd || node.op == Op::kSub) &&
         node.sort.is_bitvec() && node.sort.width > 1;
}

// Which bit a kConstPerturb flips: seeded, but stable per (node, seed).
uint32_t PerturbBit(const MutantKey& key, uint32_t width) {
  const uint64_t mix =
      (key.seed ^ (static_cast<uint64_t>(key.node) * 0x9E3779B97F4A7C15ull));
  return static_cast<uint32_t>(mix % width);
}

// Live nodes: the transitive fanin of everything the design observably
// computes — next-state functions, constraints, bads, named outputs, and
// the accelerator interface signals the A-QED monitors will tap.
std::vector<bool> LiveSet(const ir::TransitionSystem& ts,
                          const core::AcceleratorInterface& acc) {
  const Context& ctx = ts.ctx();
  std::vector<bool> live(ctx.num_nodes(), false);
  std::vector<NodeRef> stack;
  const auto root = [&](NodeRef ref) {
    if (ref != ir::kNullNode && !live[ref]) {
      live[ref] = true;
      stack.push_back(ref);
    }
  };
  for (NodeRef state : ts.states()) {
    root(state);
    root(ts.next(state));
  }
  for (NodeRef c : ts.constraints()) root(c);
  for (NodeRef b : ts.bads()) root(b);
  for (const auto& [name, node] : ts.outputs()) root(node);
  root(acc.in_valid);
  root(acc.in_ready);
  root(acc.host_ready);
  root(acc.out_valid);
  root(acc.progress_qualifier);
  for (const auto& elem : acc.data_elems) {
    for (NodeRef word : elem) root(word);
  }
  for (const auto& elem : acc.out_elems) {
    for (NodeRef word : elem) root(word);
  }
  for (NodeRef shared : acc.shared_context) root(shared);
  while (!stack.empty()) {
    const NodeRef ref = stack.back();
    stack.pop_back();
    for (NodeRef operand : ctx.node(ref).operands) root(operand);
  }
  return live;
}

bool HasConstOperand(const Context& ctx, const Node& node) {
  for (NodeRef operand : node.operands) {
    if (ctx.node(operand).op == Op::kConst) return true;
  }
  return false;
}

// Rebuilds one operation node in `ctx` (operands already mapped).
NodeRef BuildOp(Context& ctx, Op op, const Node& src,
                const std::vector<NodeRef>& ops) {
  switch (op) {
    case Op::kNot:
      return ctx.Not(ops[0]);
    case Op::kAnd:
      return ctx.And(ops[0], ops[1]);
    case Op::kOr:
      return ctx.Or(ops[0], ops[1]);
    case Op::kXor:
      return ctx.Xor(ops[0], ops[1]);
    case Op::kNeg:
      return ctx.Neg(ops[0]);
    case Op::kAdd:
      return ctx.Add(ops[0], ops[1]);
    case Op::kSub:
      return ctx.Sub(ops[0], ops[1]);
    case Op::kMul:
      return ctx.Mul(ops[0], ops[1]);
    case Op::kUdiv:
      return ctx.Udiv(ops[0], ops[1]);
    case Op::kUrem:
      return ctx.Urem(ops[0], ops[1]);
    case Op::kEq:
      return ctx.Eq(ops[0], ops[1]);
    case Op::kNe:
      return ctx.Ne(ops[0], ops[1]);
    case Op::kUlt:
      return ctx.Ult(ops[0], ops[1]);
    case Op::kUle:
      return ctx.Ule(ops[0], ops[1]);
    case Op::kSlt:
      return ctx.Slt(ops[0], ops[1]);
    case Op::kSle:
      return ctx.Sle(ops[0], ops[1]);
    case Op::kShl:
      return ctx.Shl(ops[0], ops[1]);
    case Op::kLshr:
      return ctx.Lshr(ops[0], ops[1]);
    case Op::kAshr:
      return ctx.Ashr(ops[0], ops[1]);
    case Op::kIte:
      return ctx.Ite(ops[0], ops[1], ops[2]);
    case Op::kConcat:
      return ctx.Concat(ops[0], ops[1]);
    case Op::kExtract:
      return ctx.Extract(ops[0], src.aux0, src.aux1);
    case Op::kZext:
      return ctx.Zext(ops[0], src.sort.width);
    case Op::kSext:
      return ctx.Sext(ops[0], src.sort.width);
    case Op::kRead:
      return ctx.Read(ops[0], ops[1]);
    case Op::kWrite:
      return ctx.Write(ops[0], ops[1], ops[2]);
    case Op::kConst:
    case Op::kConstArray:
    case Op::kInput:
    case Op::kState:
      break;  // leaves are handled by the caller
  }
  AQED_CHECK(false, "BuildOp on unexpected op");
  return ir::kNullNode;
}

bool IsApplicable(const ir::TransitionSystem& ts, const MutantKey& key) {
  const Context& ctx = ts.ctx();
  if (key.node == ir::kNullNode || key.node >= ctx.num_nodes()) return false;
  const Node& node = ctx.node(key.node);
  switch (key.op) {
    case MutationOp::kStuckAtZero:
    case MutationOp::kStuckAtOne:
      return node.op == Op::kState && node.sort.is_bitvec();
    case MutationOp::kOperatorSwap:
      return SwappedOp(node.op) != node.op;
    case MutationOp::kConstPerturb:
      return node.op == Op::kConst && node.sort.is_bitvec() &&
             node.sort.width >= 1;
    case MutationOp::kCondNegate:
      return IsCondNegateSite(node);
    case MutationOp::kOffByOne:
      return IsOffByOneSite(node) && HasConstOperand(ctx, node);
  }
  return false;
}

}  // namespace

std::vector<MutantKey> EnumerateMutants(const ir::TransitionSystem& ts,
                                        const core::AcceleratorInterface& acc,
                                        uint64_t seed) {
  const Context& ctx = ts.ctx();
  const std::vector<bool> live = LiveSet(ts, acc);
  std::vector<MutantKey> sites;
  for (NodeRef ref = 1; ref < ctx.num_nodes(); ++ref) {
    if (!live[ref]) continue;  // dead nodes yield equivalent mutants
    const Node& node = ctx.node(ref);
    const auto add = [&](MutationOp op) { sites.push_back({op, ref, seed}); };
    if (node.op == Op::kState && node.sort.is_bitvec()) {
      add(MutationOp::kStuckAtZero);
      add(MutationOp::kStuckAtOne);
    }
    if (SwappedOp(node.op) != node.op) add(MutationOp::kOperatorSwap);
    if (node.op == Op::kConst && node.sort.is_bitvec()) {
      add(MutationOp::kConstPerturb);
    }
    if (IsCondNegateSite(node)) add(MutationOp::kCondNegate);
    if (IsOffByOneSite(node) && HasConstOperand(ctx, node)) {
      add(MutationOp::kOffByOne);
    }
  }
  return sites;
}

std::vector<MutantKey> SampleMutants(const ir::TransitionSystem& ts,
                                     const core::AcceleratorInterface& acc,
                                     uint64_t seed, uint32_t count) {
  std::vector<MutantKey> sites = EnumerateMutants(ts, acc, seed);
  Rng rng(seed);
  // Seeded Fisher-Yates: the prefix of the shuffle is the sample, so the
  // same seed selects the same mutants no matter how many are requested
  // up to the point the prefixes diverge.
  for (size_t i = 0; i + 1 < sites.size(); ++i) {
    const size_t j = i + rng.NextBelow(sites.size() - i);
    std::swap(sites[i], sites[j]);
  }
  if (count < sites.size()) sites.resize(count);
  return sites;
}

std::vector<NodeRef> ApplyMutant(const ir::TransitionSystem& src,
                                 const MutantKey& key,
                                 ir::TransitionSystem& dst) {
  AQED_CHECK(src.Validate().ok(), "ApplyMutant on invalid source system");
  AQED_CHECK(dst.ctx().num_nodes() <= 1, "ApplyMutant into non-empty system");
  AQED_CHECK(IsApplicable(src, key),
             "ApplyMutant: inapplicable mutant " + key.ToString());

  const Context& sctx = src.ctx();
  Context& dctx = dst.ctx();
  std::vector<NodeRef> map(sctx.num_nodes(), ir::kNullNode);

  for (NodeRef ref = 1; ref < sctx.num_nodes(); ++ref) {
    const Node& node = sctx.node(ref);
    const bool target = ref == key.node;
    NodeRef out = ir::kNullNode;
    switch (node.op) {
      case Op::kConst: {
        uint64_t value = node.const_val;
        if (target && key.op == MutationOp::kConstPerturb) {
          value ^= uint64_t{1} << PerturbBit(key, node.sort.width);
        }
        out = dctx.Const(node.sort.width, value);
        break;
      }
      case Op::kConstArray: {
        // The default-element operand is an already-mapped kConst in dst;
        // read its (possibly perturbed) value back out.
        const uint64_t value =
            dctx.node(map[node.operands[0]]).const_val;
        out = dctx.ConstArray(node.sort.index_width, node.sort.elem_width,
                              value);
        break;
      }
      case Op::kInput:
        out = dst.AddInput(node.name, node.sort);
        break;
      case Op::kState: {
        std::optional<uint64_t> init;
        if (src.has_init(ref)) init = src.init_value(ref);
        out = dst.AddState(node.name, node.sort, init);
        break;
      }
      default: {
        std::vector<NodeRef> ops;
        ops.reserve(node.operands.size());
        for (NodeRef operand : node.operands) ops.push_back(map[operand]);
        Op op = node.op;
        if (target && key.op == MutationOp::kOperatorSwap) {
          op = SwappedOp(op);
        }
        if (target && key.op == MutationOp::kOffByOne) {
          // Bump the first constant operand: i+1 becomes i+2 (the classic
          // counter-update off-by-one).
          for (size_t i = 0; i < node.operands.size(); ++i) {
            const Node& operand = sctx.node(node.operands[i]);
            if (operand.op == Op::kConst) {
              ops[i] = dctx.Const(operand.sort.width, operand.const_val + 1);
              break;
            }
          }
        }
        out = BuildOp(dctx, op, node, ops);
        if (target && key.op == MutationOp::kCondNegate) {
          out = dctx.Not(out);
        }
        break;
      }
    }
    map[ref] = out;
  }

  for (NodeRef state : src.states()) {
    NodeRef next = map[src.next(state)];
    if (state == key.node && (key.op == MutationOp::kStuckAtZero ||
                              key.op == MutationOp::kStuckAtOne)) {
      const uint32_t width = sctx.sort(state).width;
      next = dctx.Const(width, key.op == MutationOp::kStuckAtZero
                                   ? 0
                                   : WidthMask(width));
    }
    dst.SetNext(map[state], next);
  }
  for (NodeRef c : src.constraints()) dst.AddConstraint(map[c]);
  const auto& bads = src.bads();
  for (size_t i = 0; i < bads.size(); ++i) {
    dst.AddBad(map[bads[i]], src.bad_labels()[i]);
  }
  for (const auto& [name, node] : src.outputs()) {
    dst.AddOutput(name, map[node]);
  }
  return map;
}

core::AcceleratorInterface RemapInterface(
    const core::AcceleratorInterface& acc,
    const std::vector<NodeRef>& map) {
  const auto remap = [&](NodeRef ref) {
    return ref == ir::kNullNode ? ir::kNullNode : map[ref];
  };
  core::AcceleratorInterface out;
  out.in_valid = remap(acc.in_valid);
  out.in_ready = remap(acc.in_ready);
  out.host_ready = remap(acc.host_ready);
  out.out_valid = remap(acc.out_valid);
  out.progress_qualifier = remap(acc.progress_qualifier);
  out.data_elems.reserve(acc.data_elems.size());
  for (const auto& elem : acc.data_elems) {
    std::vector<NodeRef> words;
    words.reserve(elem.size());
    for (NodeRef word : elem) words.push_back(remap(word));
    out.data_elems.push_back(std::move(words));
  }
  out.out_elems.reserve(acc.out_elems.size());
  for (const auto& elem : acc.out_elems) {
    std::vector<NodeRef> words;
    words.reserve(elem.size());
    for (NodeRef word : elem) words.push_back(remap(word));
    out.out_elems.push_back(std::move(words));
  }
  out.shared_context.reserve(acc.shared_context.size());
  for (NodeRef shared : acc.shared_context) {
    out.shared_context.push_back(remap(shared));
  }
  return out;
}

core::AcceleratorBuilder MutantBuilder(core::AcceleratorBuilder build,
                                       MutantKey key) {
  return [build = std::move(build), key](ir::TransitionSystem& ts) {
    ir::TransitionSystem pristine;
    const core::AcceleratorInterface acc = build(pristine);
    const std::vector<NodeRef> map = ApplyMutant(pristine, key, ts);
    return RemapInterface(acc, map);
  };
}

}  // namespace aqed::fault
