// Write-ahead result journal for fault campaigns.
//
// A campaign over thousands of mutants can run for hours; a crash, OOM
// kill, or power loss mid-run used to throw away every classification made
// so far. The journal makes classifications durable the moment they exist:
// RunFaultCampaign appends one record per classified mutant — keyed by the
// stable (op, node, seed) MutantKey — and fsyncs it before the report is
// merged into the result, so a resumed campaign replays the journal, skips
// every already-classified mutant, and re-verifies only the remainder. The
// order-independent classification digest (campaign.h) then proves the
// resumed run identical to an uninterrupted one.
//
// Format: JSONL, one record per line, each line CRC-guarded:
//
//   {"crc":"1a2b3c4d","data":{"design":"memctrl-fifo","op":"op-swap",...}}
//
// The CRC-32 covers exactly the bytes of the "data" value, so a torn write
// (any strict prefix of a line) and a corrupted record are both detected.
// Replay skips corrupt mid-file records with a counted warning and treats
// an undecodable unterminated tail as torn: the campaign truncates it and
// continues appending — exactly the posture a kill -9 mid-append demands.
// A successful campaign finally rewrites the journal compacted via
// tmp+fsync+rename (support/io.h), so the artifact a finished run leaves
// behind is always complete and clean.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fault/campaign.h"
#include "support/status.h"

namespace aqed::fault {

// CRC-32 (IEEE 802.3, reflected) over `data`. Exposed for tests.
uint32_t Crc32(std::string_view data);

// Reverse lookups for the fault-local enums the journal stores by name
// (MutationOpName / ClassificationName / BugKindName are the forward maps).
// Shared with the service solve cache so the wire spelling of a
// classification exists in exactly one place. nullopt on unknown names.
std::optional<MutationOp> MutationOpFromName(std::string_view name);
std::optional<Classification> ClassificationFromName(std::string_view name);
std::optional<core::BugKind> BugKindFromName(std::string_view name);

// One report as its CRC-guarded journal line (trailing '\n' included).
std::string EncodeJournalRecord(const MutantReport& report);

// Decodes one line (no trailing newline). nullopt on any format, parse, or
// CRC failure.
std::optional<MutantReport> DecodeJournalRecord(std::string_view line);

struct JournalReplay {
  std::vector<MutantReport> records;  // file order
  // Complete-but-undecodable lines (bad CRC / bad JSON), warned and skipped.
  size_t skipped_records = 0;
  // The file ended in a partial record (torn write) that was dropped.
  bool torn_tail = false;
  // Byte length of the decodable prefix: what ResultJournal::Open keeps
  // when re-opening the journal for append.
  uint64_t valid_bytes = 0;
};

// Replays the journal. A missing file is not an error — it yields an empty
// replay (resuming a campaign that never started is a fresh campaign).
StatusOr<JournalReplay> ReplayJournal(const std::string& path);

// Append half: an open journal file with record-granular durability (each
// Append is flushed and fsynced before it returns).
class ResultJournal {
 public:
  ResultJournal() = default;
  ~ResultJournal() { Close(); }

  ResultJournal(const ResultJournal&) = delete;
  ResultJournal& operator=(const ResultJournal&) = delete;

  // Opens `path` for appending, first truncating it to `keep_bytes` (the
  // replay's valid_bytes — this is what drops a torn tail). keep_bytes == 0
  // starts the journal fresh.
  Status Open(const std::string& path, uint64_t keep_bytes);
  bool is_open() const { return file_ != nullptr; }

  // Appends one record, durably. Chaos site "fault.journal.append".
  Status Append(const MutantReport& report);
  size_t appended() const { return appended_; }

  void Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  size_t appended_ = 0;
};

// Atomically replaces `path` with exactly `reports` (tmp + fsync + rename):
// the compaction step a finishing campaign runs so skipped records, torn
// tails, and stale baselines never outlive the run that found them.
Status WriteJournalFile(const std::string& path,
                        std::span<const MutantReport> reports);

}  // namespace aqed::fault
