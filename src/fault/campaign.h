// Fault-injection campaign driver.
//
// A FaultCampaign is the systematic version of the paper's injected-bug
// study (Table 1 / Fig. 5): sample a seeded set of mutants per design,
// verify every mutant with the A-QED property suite on the parallel
// verification session, and classify each one as detected-by-FC /
// detected-by-RB / detected-by-SAC / survived / unknown — optionally
// running the conventional random-simulation flow on the same mutants for
// an apples-to-apples detection baseline (the golden-model diff).
//
// Campaigns are the workload the resource-governance layer exists for:
// thousands of independent jobs, most trivial, a few pathological. The
// session's per-job deadlines and escalating-budget retries bound the cost
// of the pathological ones; classifications stay deterministic across
// worker counts because every per-job verdict is.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aqed/checker.h"
#include "fault/mutator.h"
#include "harness/conventional_flow.h"
#include "support/stats.h"

namespace aqed::fault {

// One design enrolled in a campaign: its builder, the A-QED property
// options to verify each mutant with, and (optionally) a golden functional
// model enabling the conventional-flow baseline on its mutants.
struct DesignUnderTest {
  std::string name;
  core::AcceleratorBuilder build;
  core::AqedOptions options;
  harness::GoldenFn golden;                // null = no conventional baseline
  harness::CampaignOptions conventional;   // testbench shape for the baseline
};

struct MutantReport;

// Optional solve-result cache consulted by RunFaultCampaign before a mutant
// is verified. Implementations (src/service/cache.h) key entries by *what
// would be solved* — design digest, instrument configuration, mutant key,
// bound — so a hit is exactly "the same solve already ran somewhere". The
// fault layer only sees this interface; it never depends on service/.
class CampaignCache {
 public:
  virtual ~CampaignCache() = default;

  // Fills the A-QED verdict columns of `report` (classification, kind,
  // cex_cycles, attempts) when a decided entry exists. report.design and
  // report.key are already set by the caller. false = miss, verify normally.
  virtual bool Lookup(const DesignUnderTest& dut, const MutantKey& key,
                      MutantReport& report) = 0;

  // Offers a freshly classified mutant for caching. Implementations ignore
  // undecided (kUnknown) reports: an unknown is a budget artifact of this
  // run, not a property of the design.
  virtual void Store(const DesignUnderTest& dut, const MutantKey& key,
                     const MutantReport& report) = 0;
};

enum class Classification : uint8_t {
  kDetectedFc,   // functional consistency (or early-output) caught it
  kDetectedRb,   // response bound (or input starvation) caught it
  kDetectedSac,  // single-action correctness caught it
  kSurvived,     // every property refuted up to its bound
  kUnknown,      // some property job stayed inconclusive after retries
};

const char* ClassificationName(Classification classification);

struct MutantReport {
  std::string design;
  MutantKey key;
  Classification classification = Classification::kUnknown;
  core::BugKind kind = core::BugKind::kNone;  // precise detecting property
  uint32_t cex_cycles = 0;      // A-QED detection latency (0 if undetected)
  uint32_t attempts = 1;        // max attempts over the mutant's jobs
  UnknownReason unknown_reason = UnknownReason::kNone;
  double wall_seconds = 0;      // summed job wall time for this mutant
  // Provenance: the request trace id that classified this mutant (0 =
  // untraced, e.g. a CLI run). Fresh verdicts take
  // FaultCampaignOptions::trace_id; cache hits keep the *originating*
  // request's id (the one that actually solved), so a verdict traces back
  // to the request that paid for it. Never part of ClassificationDigest.
  uint64_t trace_id = 0;
  // Conventional-flow baseline on the same mutant (when golden was given):
  bool golden_ran = false;
  bool golden_detected = false;
  uint64_t golden_cycles = 0;   // conventional detection latency
  double golden_seconds = 0;
};

struct FaultCampaignOptions {
  uint64_t seed = 0xA9EDFA17;
  // Total mutants across all designs, split evenly (earlier designs get
  // the remainder). Designs with fewer applicable sites contribute all of
  // them.
  uint32_t num_mutants = 30;
  // Scheduling and resource governance for the verification jobs. The
  // cancellation policy is forced to kNone: classification needs every
  // property's verdict, not just the first bug.
  core::SessionOptions session;
  // Also run the conventional random-simulation campaign on each mutant of
  // every golden-equipped design.
  bool conventional_baseline = false;
  // Durable campaigns (src/fault/journal.h): when set, every classified
  // mutant is appended — CRC-guarded, fsynced — to this JSONL journal the
  // moment its batch is classified, and the finished campaign rewrites the
  // journal compacted via tmp+rename. Mutants are verified in batches (a
  // few per worker) instead of one monolithic session round, so a crash
  // loses at most the in-flight batch.
  std::string journal_path;
  // Replay journal_path first and skip every mutant it already classifies
  // (matched by design name + mutant key). A torn trailing record is
  // truncated and re-verified; corrupt mid-file records are skipped with a
  // counted warning. With `resume` false an existing journal is restarted
  // from scratch.
  bool resume = false;
  // Content-addressed solve cache (src/service/cache.h): consulted per
  // planned mutant before verification, offered every fresh classification.
  // Borrowed, not owned; null = no caching. Cache hits skip the solve
  // entirely but still count in the classification digest, so a fully
  // cached campaign digests identical to a cold one.
  CampaignCache* cache = nullptr;
  // Request trace id stamped onto every mutant this campaign classifies
  // fresh — into journal records and cache-store provenance (0 = untraced).
  // aqed-server sets it from the client request.
  uint64_t trace_id = 0;
};

struct FaultCampaignResult {
  std::vector<MutantReport> mutants;  // deterministic order
  SessionStats stats;                 // per-attempt accounting
  double wall_seconds = 0;
  // Resume accounting (zero for non-journaled campaigns): mutants restored
  // from the journal instead of re-verified, corrupt journal records
  // skipped during replay, and whether a torn trailing record was dropped.
  size_t resumed = 0;
  size_t journal_skipped = 0;
  bool journal_torn_tail = false;
  // Solve-cache accounting (zero when options.cache was null): mutants
  // restored from the cache vs. verified fresh this run.
  size_t cache_hits = 0;
  size_t cache_misses = 0;

  size_t count(Classification classification) const;
  size_t num_detected() const;
  // Mutants with a definite verdict (detected or survived).
  size_t num_classified() const { return mutants.size() - count(Classification::kUnknown); }
  double classified_fraction() const;
  // Survivors the golden-model diff flags: mutants the conventional flow
  // detects but every A-QED property missed — the campaign's soundness
  // canary (expected 0 when SAC is enabled; see DESIGN.md).
  size_t num_silent_survivors() const;
  // Order-independent digest over (design, mutant, classification): equal
  // digests <=> identical classifications, the cheap way to compare runs
  // across --jobs counts.
  uint64_t ClassificationDigest() const;
  // Per-design coverage table plus a summary line.
  std::string ToTable() const;
};

// Runs the campaign: samples options.num_mutants mutants over `designs`,
// verifies them all in one verification session, classifies, and (when
// asked) baselines against the conventional flow.
FaultCampaignResult RunFaultCampaign(std::span<const DesignUnderTest> designs,
                                     const FaultCampaignOptions& options);

}  // namespace aqed::fault
