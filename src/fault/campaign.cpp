#include "fault/campaign.h"

#include <algorithm>
#include <cstdio>

#include "sched/session.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace aqed::fault {
namespace {

// FC before RB before SAC: when several properties detect the same mutant
// (common — a corrupted datapath usually violates FC and SAC), the campaign
// credits the strongest, most design-independent property first, matching
// the paper's attribution in Table 1.
Classification ClassifyKind(core::BugKind kind) {
  switch (kind) {
    case core::BugKind::kFunctionalConsistency:
    case core::BugKind::kEarlyOutput:
      return Classification::kDetectedFc;
    case core::BugKind::kResponseBound:
    case core::BugKind::kInputStarvation:
      return Classification::kDetectedRb;
    case core::BugKind::kSingleActionCorrectness:
      return Classification::kDetectedSac;
    case core::BugKind::kNone:
      break;
  }
  return Classification::kSurvived;
}

void Fnv1a(uint64_t& hash, std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
}

}  // namespace

const char* ClassificationName(Classification classification) {
  switch (classification) {
    case Classification::kDetectedFc: return "detected-by-FC";
    case Classification::kDetectedRb: return "detected-by-RB";
    case Classification::kDetectedSac: return "detected-by-SAC";
    case Classification::kSurvived: return "survived";
    case Classification::kUnknown: return "unknown";
  }
  return "?";
}

FaultCampaignResult RunFaultCampaign(std::span<const DesignUnderTest> designs,
                                     const FaultCampaignOptions& options) {
  Stopwatch watch;
  FaultCampaignResult result;
  if (designs.empty() || options.num_mutants == 0) return result;

  core::SessionOptions session_options = options.session;
  session_options.cancel = core::SessionOptions::CancelPolicy::kNone;
  sched::VerificationSession session(session_options);

  struct EntryInfo {
    size_t design;
    MutantKey key;
    core::JobHandle handle;
  };
  std::vector<EntryInfo> entries;
  const size_t num_designs = designs.size();
  for (size_t d = 0; d < num_designs; ++d) {
    const uint32_t share = options.num_mutants / num_designs +
                           (d < options.num_mutants % num_designs ? 1 : 0);
    if (share == 0) continue;
    TELEMETRY_SPAN("fault.sample:" + designs[d].name,
                   {{"share", static_cast<int64_t>(share)}});
    ir::TransitionSystem scratch;
    const core::AcceleratorInterface acc = designs[d].build(scratch);
    for (const MutantKey& key :
         SampleMutants(scratch, acc, options.seed, share)) {
      core::JobHandle handle = session.Enqueue(
          MutantBuilder(designs[d].build, key), designs[d].options,
          designs[d].name + "/" + key.ToString());
      entries.push_back({d, key, std::move(handle)});
    }
  }

  core::SessionResult session_result = session.Wait();

  result.mutants.resize(entries.size());
  for (size_t e = 0; e < entries.size(); ++e) {
    MutantReport& report = result.mutants[e];
    report.design = designs[entries[e].design].name;
    report.key = entries[e].key;
    const core::JobResult* best = nullptr;
    Classification best_class = Classification::kUnknown;
    bool inconclusive = false;
    UnknownReason reason = UnknownReason::kNone;
    for (const core::JobResult& job : session_result.jobs) {
      if (job.entry != entries[e].handle.index()) continue;
      report.attempts = std::max(report.attempts, job.attempt + 1);
      report.wall_seconds += job.wall_seconds;
      if (job.result.bug_found) {
        const Classification c = ClassifyKind(job.result.kind);
        if (best == nullptr ||
            static_cast<uint8_t>(c) < static_cast<uint8_t>(best_class)) {
          best = &job;
          best_class = c;
        }
      } else if (job.unknown_reason != UnknownReason::kNone) {
        inconclusive = true;
        if (reason == UnknownReason::kNone) reason = job.unknown_reason;
      }
    }
    if (best != nullptr) {
      report.classification = best_class;
      report.kind = best->result.kind;
      report.cex_cycles = best->result.cex_cycles();
    } else if (inconclusive) {
      report.classification = Classification::kUnknown;
      report.unknown_reason = reason;
    } else {
      report.classification = Classification::kSurvived;
    }
    telemetry::AddCounter(
        std::string("fault.classified.") +
            ClassificationName(report.classification),
        1);
  }
  result.stats = std::move(session_result.stats);

  if (options.conventional_baseline) {
    for (size_t e = 0; e < entries.size(); ++e) {
      const DesignUnderTest& dut = designs[entries[e].design];
      if (!dut.golden) continue;
      TELEMETRY_SPAN("fault.baseline:" + dut.name + "/" +
                     entries[e].key.ToString());
      const harness::CampaignResult conventional = harness::RunCampaign(
          MutantBuilder(dut.build, entries[e].key), dut.golden,
          dut.conventional);
      MutantReport& report = result.mutants[e];
      report.golden_ran = true;
      report.golden_detected = conventional.bug_detected;
      report.golden_cycles = conventional.detection_cycle;
      report.golden_seconds = conventional.seconds;
    }
  }

  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

size_t FaultCampaignResult::count(Classification classification) const {
  return static_cast<size_t>(
      std::count_if(mutants.begin(), mutants.end(),
                    [classification](const MutantReport& m) {
                      return m.classification == classification;
                    }));
}

size_t FaultCampaignResult::num_detected() const {
  return count(Classification::kDetectedFc) +
         count(Classification::kDetectedRb) +
         count(Classification::kDetectedSac);
}

double FaultCampaignResult::classified_fraction() const {
  if (mutants.empty()) return 1.0;
  return static_cast<double>(num_classified()) /
         static_cast<double>(mutants.size());
}

size_t FaultCampaignResult::num_silent_survivors() const {
  return static_cast<size_t>(
      std::count_if(mutants.begin(), mutants.end(), [](const MutantReport& m) {
        return m.golden_ran && m.golden_detected &&
               m.classification == Classification::kSurvived;
      }));
}

uint64_t FaultCampaignResult::ClassificationDigest() const {
  // Commutative sum of per-mutant FNV-1a hashes: identical classifications
  // give identical digests regardless of report order.
  uint64_t digest = 0;
  for (const MutantReport& m : mutants) {
    uint64_t hash = 1469598103934665603ull;
    Fnv1a(hash, m.design);
    Fnv1a(hash, "|");
    Fnv1a(hash, m.key.ToString());
    Fnv1a(hash, "|");
    Fnv1a(hash, ClassificationName(m.classification));
    digest += hash;
  }
  return digest;
}

std::string FaultCampaignResult::ToTable() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-18s %8s %5s %5s %5s %9s %8s %9s\n",
                "design", "mutants", "FC", "RB", "SAC", "survived", "unknown",
                "coverage");
  out += line;
  std::vector<std::string> names;
  for (const MutantReport& m : mutants) {
    if (std::find(names.begin(), names.end(), m.design) == names.end()) {
      names.push_back(m.design);
    }
  }
  names.push_back("");  // sentinel: the totals row aggregates every design
  for (const std::string& name : names) {
    size_t total = 0, fc = 0, rb = 0, sac = 0, survived = 0, unknown = 0;
    for (const MutantReport& m : mutants) {
      if (!name.empty() && m.design != name) continue;
      ++total;
      switch (m.classification) {
        case Classification::kDetectedFc: ++fc; break;
        case Classification::kDetectedRb: ++rb; break;
        case Classification::kDetectedSac: ++sac; break;
        case Classification::kSurvived: ++survived; break;
        case Classification::kUnknown: ++unknown; break;
      }
    }
    const double coverage =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(fc + rb + sac) /
                         static_cast<double>(total);
    std::snprintf(line, sizeof(line),
                  "%-18s %8zu %5zu %5zu %5zu %9zu %8zu %8.1f%%\n",
                  name.empty() ? "total" : name.c_str(), total, fc, rb, sac,
                  survived, unknown, coverage);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%zu/%zu classified (%.1f%%), digest %016llx\n",
                num_classified(), mutants.size(),
                100.0 * classified_fraction(),
                static_cast<unsigned long long>(ClassificationDigest()));
  out += line;
  return out;
}

}  // namespace aqed::fault
