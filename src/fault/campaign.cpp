#include "fault/campaign.h"

#include <algorithm>
#include <cstdio>
#include <span>
#include <unordered_map>

#include "fault/journal.h"
#include "sched/session.h"
#include "sched/thread_pool.h"
#include "support/status.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace aqed::fault {
namespace {

// FC before RB before SAC: when several properties detect the same mutant
// (common — a corrupted datapath usually violates FC and SAC), the campaign
// credits the strongest, most design-independent property first, matching
// the paper's attribution in Table 1.
Classification ClassifyKind(core::BugKind kind) {
  switch (kind) {
    case core::BugKind::kFunctionalConsistency:
    case core::BugKind::kEarlyOutput:
      return Classification::kDetectedFc;
    case core::BugKind::kResponseBound:
    case core::BugKind::kInputStarvation:
      return Classification::kDetectedRb;
    case core::BugKind::kSingleActionCorrectness:
      return Classification::kDetectedSac;
    case core::BugKind::kNone:
      break;
  }
  return Classification::kSurvived;
}

void Fnv1a(uint64_t& hash, std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
}

// Classifies one entry's jobs out of a session round into `report` (which
// already carries design/key). FC < RB < SAC priority via ClassifyKind.
void ClassifyEntry(const core::SessionResult& session_result,
                   size_t entry_index, MutantReport& report) {
  const core::JobResult* best = nullptr;
  Classification best_class = Classification::kUnknown;
  bool inconclusive = false;
  UnknownReason reason = UnknownReason::kNone;
  for (const core::JobResult& job : session_result.jobs) {
    if (job.entry != entry_index) continue;
    report.attempts = std::max(report.attempts, job.attempt + 1);
    report.wall_seconds += job.wall_seconds;
    if (job.result.bug_found) {
      const Classification c = ClassifyKind(job.result.kind);
      if (best == nullptr ||
          static_cast<uint8_t>(c) < static_cast<uint8_t>(best_class)) {
        best = &job;
        best_class = c;
      }
    } else if (job.unknown_reason != UnknownReason::kNone) {
      inconclusive = true;
      if (reason == UnknownReason::kNone) reason = job.unknown_reason;
    }
  }
  if (best != nullptr) {
    report.classification = best_class;
    report.kind = best->result.kind;
    report.cex_cycles = best->result.cex_cycles();
  } else if (inconclusive) {
    report.classification = Classification::kUnknown;
    report.unknown_reason = reason;
  } else {
    report.classification = Classification::kSurvived;
  }
  telemetry::AddCounter(std::string("fault.classified.") +
                            ClassificationName(report.classification),
                        1);
}

// Runs the conventional random-simulation baseline on one mutant and
// records it in the report.
void RunBaseline(const DesignUnderTest& dut, const MutantKey& key,
                 MutantReport& report) {
  TELEMETRY_SPAN("fault.baseline:" + dut.name + "/" + key.ToString());
  const harness::CampaignResult conventional =
      harness::RunCampaign(MutantBuilder(dut.build, key), dut.golden,
                           dut.conventional);
  report.golden_ran = true;
  report.golden_detected = conventional.bug_detected;
  report.golden_cycles = conventional.detection_cycle;
  report.golden_seconds = conventional.seconds;
}

// The replay map key: mutant keys are unique within a design, not across.
std::string ReplayKey(std::string_view design, const MutantKey& key) {
  return std::string(design) + "|" + key.ToString();
}

}  // namespace

const char* ClassificationName(Classification classification) {
  switch (classification) {
    case Classification::kDetectedFc: return "detected-by-FC";
    case Classification::kDetectedRb: return "detected-by-RB";
    case Classification::kDetectedSac: return "detected-by-SAC";
    case Classification::kSurvived: return "survived";
    case Classification::kUnknown: return "unknown";
  }
  return "?";
}

FaultCampaignResult RunFaultCampaign(std::span<const DesignUnderTest> designs,
                                     const FaultCampaignOptions& options) {
  Stopwatch watch;
  FaultCampaignResult result;
  if (designs.empty() || options.num_mutants == 0) return result;

  core::SessionOptions session_options = options.session;
  session_options.cancel = core::SessionOptions::CancelPolicy::kNone;
  sched::VerificationSession session(session_options);

  // Deterministic sampling first: the full mutant plan exists before any
  // verification runs, so a resumed campaign lines its journal records up
  // against the exact same plan the interrupted run had.
  struct Planned {
    size_t design;
    MutantKey key;
  };
  std::vector<Planned> plan;
  const size_t num_designs = designs.size();
  for (size_t d = 0; d < num_designs; ++d) {
    const uint32_t share = options.num_mutants / num_designs +
                           (d < options.num_mutants % num_designs ? 1 : 0);
    if (share == 0) continue;
    TELEMETRY_SPAN("fault.sample:" + designs[d].name,
                   {{"share", static_cast<int64_t>(share)}});
    ir::TransitionSystem scratch;
    const core::AcceleratorInterface acc = designs[d].build(scratch);
    for (const MutantKey& key :
         SampleMutants(scratch, acc, options.seed, share)) {
      plan.push_back({d, key});
    }
  }

  // Resume: replay the journal and index its records by (design, key).
  std::unordered_map<std::string, MutantReport> replayed;
  uint64_t keep_bytes = 0;
  if (options.resume && !options.journal_path.empty()) {
    StatusOr<JournalReplay> replay = ReplayJournal(options.journal_path);
    if (!replay.ok()) {
      std::fprintf(stderr, "[campaign] resume: %s; starting fresh\n",
                   replay.status().message().c_str());
    } else {
      JournalReplay r = std::move(replay).value();
      result.journal_skipped = r.skipped_records;
      result.journal_torn_tail = r.torn_tail;
      keep_bytes = r.valid_bytes;
      for (MutantReport& record : r.records) {
        replayed[ReplayKey(record.design, record.key)] = std::move(record);
      }
      if (r.torn_tail) {
        std::fprintf(stderr,
                     "[campaign] resume: dropped a torn trailing record in "
                     "%s\n",
                     options.journal_path.c_str());
      }
    }
  }

  ResultJournal journal;
  if (!options.journal_path.empty()) {
    // A fresh (non-resume) campaign restarts the journal from byte 0; a
    // resumed one keeps exactly the decodable prefix.
    const Status opened = journal.Open(options.journal_path, keep_bytes);
    // Failing to open the journal of a campaign that was asked to be
    // durable must be loud, not a silent downgrade to a volatile run.
    AQED_CHECK(opened.ok(), opened.message());
  }

  // Split the plan: journaled mutants are restored, the rest re-verified.
  result.mutants.resize(plan.size());
  std::vector<size_t> todo;
  todo.reserve(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    MutantReport& report = result.mutants[i];
    report.design = designs[plan[i].design].name;
    report.key = plan[i].key;
    // Fresh classifications carry this request's trace id; a journal replay
    // overwrites the whole report (keeping the id that solved it), and a
    // cache hit's Lookup installs the originating request's id.
    report.trace_id = options.trace_id;
    const auto it = replayed.find(ReplayKey(report.design, report.key));
    if (it != replayed.end()) {
      report = std::move(it->second);
      replayed.erase(it);
      ++result.resumed;
    } else if (options.cache != nullptr &&
               options.cache->Lookup(designs[plan[i].design], report.key,
                                     report)) {
      ++result.cache_hits;
      telemetry::AddCounter(std::string("fault.classified.") +
                                ClassificationName(report.classification),
                            1);
    } else {
      if (options.cache != nullptr) ++result.cache_misses;
      todo.push_back(i);
    }
  }

  // Journaled campaigns run in small batches — a few mutants per worker —
  // so records become durable steadily and a crash loses at most one
  // batch. Unjournaled campaigns keep the single-round hot path (one
  // Enqueue storm, one Wait) untouched.
  const uint32_t workers = session_options.jobs == 0
                               ? sched::ThreadPool::HardwareJobs()
                               : session_options.jobs;
  const size_t batch_size =
      journal.is_open() ? std::max<size_t>(size_t{2} * workers, 8)
                        : std::max<size_t>(todo.size(), 1);
  double session_wall = 0;
  for (size_t begin = 0; begin < todo.size(); begin += batch_size) {
    const std::span<const size_t> batch(
        todo.data() + begin, std::min(batch_size, todo.size() - begin));
    std::vector<core::JobHandle> handles;
    handles.reserve(batch.size());
    for (const size_t i : batch) {
      const DesignUnderTest& dut = designs[plan[i].design];
      handles.push_back(session.Enqueue(MutantBuilder(dut.build, plan[i].key),
                                        dut.options,
                                        dut.name + "/" + plan[i].key.ToString()));
    }
    const core::SessionResult session_result = session.Wait();
    session_wall += session_result.wall_seconds;
    for (const JobStat& stat : session_result.stats.jobs()) {
      result.stats.AddJob(stat);
    }
    for (size_t b = 0; b < batch.size(); ++b) {
      const size_t i = batch[b];
      ClassifyEntry(session_result, handles[b].index(), result.mutants[i]);
      if (options.cache != nullptr) {
        options.cache->Store(designs[plan[i].design], plan[i].key,
                             result.mutants[i]);
      }
    }
    // Baseline before journaling so the record a crash preserves carries
    // the golden columns too.
    if (options.conventional_baseline) {
      for (const size_t i : batch) {
        const DesignUnderTest& dut = designs[plan[i].design];
        if (!dut.golden) continue;
        RunBaseline(dut, plan[i].key, result.mutants[i]);
      }
    }
    if (journal.is_open()) {
      for (const size_t i : batch) {
        const Status appended = journal.Append(result.mutants[i]);
        if (!appended.ok()) {
          std::fprintf(stderr, "[campaign] %s\n",
                       appended.message().c_str());
        }
      }
    }
  }

  // Backfill baselines the interrupted run never reached on its resumed
  // mutants (their A-QED classification is journaled; golden columns may
  // not be). The final compaction rewrites them complete.
  if (options.conventional_baseline) {
    for (MutantReport& report : result.mutants) {
      if (report.golden_ran) continue;
      for (size_t d = 0; d < num_designs; ++d) {
        if (designs[d].name != report.design) continue;
        if (designs[d].golden) RunBaseline(designs[d], report.key, report);
        break;
      }
    }
  }

  if (journal.is_open()) {
    journal.Close();
    // Compaction: the artifact a finished campaign leaves is complete, in
    // plan order, free of skipped records and torn tails — and written
    // atomically, so even a crash right here leaves a valid journal.
    const Status rewritten =
        WriteJournalFile(options.journal_path, result.mutants);
    if (!rewritten.ok()) {
      std::fprintf(stderr, "[campaign] %s\n", rewritten.message().c_str());
    }
  }

  result.stats.set_wall_seconds(session_wall);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

size_t FaultCampaignResult::count(Classification classification) const {
  return static_cast<size_t>(
      std::count_if(mutants.begin(), mutants.end(),
                    [classification](const MutantReport& m) {
                      return m.classification == classification;
                    }));
}

size_t FaultCampaignResult::num_detected() const {
  return count(Classification::kDetectedFc) +
         count(Classification::kDetectedRb) +
         count(Classification::kDetectedSac);
}

double FaultCampaignResult::classified_fraction() const {
  if (mutants.empty()) return 1.0;
  return static_cast<double>(num_classified()) /
         static_cast<double>(mutants.size());
}

size_t FaultCampaignResult::num_silent_survivors() const {
  return static_cast<size_t>(
      std::count_if(mutants.begin(), mutants.end(), [](const MutantReport& m) {
        return m.golden_ran && m.golden_detected &&
               m.classification == Classification::kSurvived;
      }));
}

uint64_t FaultCampaignResult::ClassificationDigest() const {
  // Commutative sum of per-mutant FNV-1a hashes: identical classifications
  // give identical digests regardless of report order.
  uint64_t digest = 0;
  for (const MutantReport& m : mutants) {
    uint64_t hash = 1469598103934665603ull;
    Fnv1a(hash, m.design);
    Fnv1a(hash, "|");
    Fnv1a(hash, m.key.ToString());
    Fnv1a(hash, "|");
    Fnv1a(hash, ClassificationName(m.classification));
    digest += hash;
  }
  return digest;
}

std::string FaultCampaignResult::ToTable() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-18s %8s %5s %5s %5s %9s %8s %9s\n",
                "design", "mutants", "FC", "RB", "SAC", "survived", "unknown",
                "coverage");
  out += line;
  std::vector<std::string> names;
  for (const MutantReport& m : mutants) {
    if (std::find(names.begin(), names.end(), m.design) == names.end()) {
      names.push_back(m.design);
    }
  }
  names.push_back("");  // sentinel: the totals row aggregates every design
  for (const std::string& name : names) {
    size_t total = 0, fc = 0, rb = 0, sac = 0, survived = 0, unknown = 0;
    for (const MutantReport& m : mutants) {
      if (!name.empty() && m.design != name) continue;
      ++total;
      switch (m.classification) {
        case Classification::kDetectedFc: ++fc; break;
        case Classification::kDetectedRb: ++rb; break;
        case Classification::kDetectedSac: ++sac; break;
        case Classification::kSurvived: ++survived; break;
        case Classification::kUnknown: ++unknown; break;
      }
    }
    const double coverage =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(fc + rb + sac) /
                         static_cast<double>(total);
    std::snprintf(line, sizeof(line),
                  "%-18s %8zu %5zu %5zu %5zu %9zu %8zu %8.1f%%\n",
                  name.empty() ? "total" : name.c_str(), total, fc, rb, sac,
                  survived, unknown, coverage);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%zu/%zu classified (%.1f%%), digest %016llx\n",
                num_classified(), mutants.size(),
                100.0 * classified_fraction(),
                static_cast<unsigned long long>(ClassificationDigest()));
  out += line;
  return out;
}

}  // namespace aqed::fault
