// Deterministic, seeded mutation engine over the word-level IR.
//
// A mutant is one small, realistic design defect injected into a built
// TransitionSystem — the synthetic analogue of the paper's injected-bug
// study (Table 1 / Fig. 5): stuck-at faults on next-state functions,
// swapped operators, perturbed constants, negated conditions, and off-by-one
// counter updates, i.e. exactly the logic-bug classes the tracked-repository
// catalog models by hand, generated mechanically and at scale.
//
// Every mutant is identified by a stable (op, node, seed) key: design
// builders are deterministic (the hash-consed Context interns nodes in
// build order), so a NodeRef names the same sub-expression in every fresh
// build of the same design, on every thread, in every process. The same
// --seed therefore yields byte-identical mutant sets and — because
// verification itself is deterministic — byte-identical campaign
// classifications regardless of worker count.
//
// Mutants are applied by *rebuilding* the design into a fresh context with
// the mutation spliced in (the hash-consed DAG is immutable by design), so
// a mutant transition system is a first-class, Validate()-clean system that
// every downstream layer (simulator, bit-blaster, A-QED instrumentation)
// consumes unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqed/checker.h"
#include "aqed/interface.h"
#include "ir/transition_system.h"

namespace aqed::fault {

enum class MutationOp : uint8_t {
  kStuckAtZero,   // next-state function of a register forced to 0
  kStuckAtOne,    // next-state function of a register forced to all-ones
  kOperatorSwap,  // kAdd<->kSub, kAnd<->kOr, kEq<->kNe, kUlt<->kUle, ...
  kConstPerturb,  // a design constant gets one (seeded) bit flipped
  kCondNegate,    // a 1-bit condition (comparison/logic) is inverted
  kOffByOne,      // the constant addend of a counter update is +1'd
};

const char* MutationOpName(MutationOp op);

// Stable identity of one mutant: the mutation operator, the target node in
// the *pristine* build's node numbering, and the campaign seed (which also
// parameterizes seed-dependent operators such as kConstPerturb's bit pick).
struct MutantKey {
  MutationOp op = MutationOp::kStuckAtZero;
  ir::NodeRef node = ir::kNullNode;
  uint64_t seed = 0;

  bool operator==(const MutantKey&) const = default;

  // Stable textual id, e.g. "op-swap@n42#seed=0xa9ed" — used in job labels
  // and campaign reports.
  std::string ToString() const;
};

// Enumerates every applicable mutation site of the design, in a
// deterministic order (ascending node index, fixed operator order per
// node). Only *live* nodes are considered — nodes in the transitive fanin
// of the next-state functions, constraints, outputs, and the accelerator
// interface — so mutants always touch logic the design actually uses.
// `seed` is stamped into the returned keys.
std::vector<MutantKey> EnumerateMutants(const ir::TransitionSystem& ts,
                                        const core::AcceleratorInterface& acc,
                                        uint64_t seed);

// Deterministically samples `count` distinct mutants from the enumeration
// (seeded Fisher-Yates; returns all sites when count >= #sites). The same
// (ts, seed, count) always yields the same keys in the same order.
std::vector<MutantKey> SampleMutants(const ir::TransitionSystem& ts,
                                     const core::AcceleratorInterface& acc,
                                     uint64_t seed, uint32_t count);

// Rebuilds `src` into the empty system `dst` with the mutation applied.
// Returns the old-ref -> new-ref map over src's node table (index 0 maps
// to kNullNode). The key must name an applicable site (as produced by
// EnumerateMutants); this is checked.
std::vector<ir::NodeRef> ApplyMutant(const ir::TransitionSystem& src,
                                     const MutantKey& key,
                                     ir::TransitionSystem& dst);

// Remaps every NodeRef of an interface through the ApplyMutant map.
core::AcceleratorInterface RemapInterface(const core::AcceleratorInterface& acc,
                                          const std::vector<ir::NodeRef>& map);

// Wraps an accelerator builder so it yields the mutated design: builds the
// pristine design into a scratch system, rebuilds it mutated into the
// requested one, and returns the remapped interface. The wrapper is pure
// and thread-safe (sessions call builders from worker threads).
core::AcceleratorBuilder MutantBuilder(core::AcceleratorBuilder build,
                                       MutantKey key);

}  // namespace aqed::fault
