#include "telemetry/json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace aqed::telemetry {

Json Json::Array(std::vector<Json> items) {
  Json json;
  json.kind_ = Kind::kArray;
  json.array_ = std::move(items);
  return json;
}

Json Json::Object(std::map<std::string, Json> members) {
  Json json;
  json.kind_ = Kind::kObject;
  json.object_ = std::move(members);
  return json;
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> Parse() {
    std::optional<Json> value = ParseValue();
    if (!value) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n':
        return ConsumeWord("null") ? std::optional<Json>(Json())
                                   : std::nullopt;
      case 't':
        return ConsumeWord("true") ? std::optional<Json>(Json(true))
                                   : std::nullopt;
      case 'f':
        return ConsumeWord("false") ? std::optional<Json>(Json(false))
                                    : std::nullopt;
      case '"':
        return ParseString();
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        return ParseNumber();
    }
  }

  // Four hex digits after "\u"; false on a short or non-hex sequence.
  bool ParseHex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      out = out << 4 | digit;
    }
    return true;
  }

  static void AppendUtf8(std::string& out, uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | code >> 6));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | code >> 12));
      out.push_back(static_cast<char>(0x80 | (code >> 6 & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | code >> 18));
      out.push_back(static_cast<char>(0x80 | (code >> 12 & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code >> 6 & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  // A "\uXXXX" escape with pos_ just past the 'u': decodes one code point
  // (pairing surrogates, rejecting lone ones) and appends it as UTF-8.
  bool ParseUnicodeEscape(std::string& out) {
    uint32_t code;
    if (!ParseHex4(code)) return false;
    if (code >= 0xDC00 && code <= 0xDFFF) return false;  // lone low surrogate
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: the paired "\uXXXX" low surrogate must follow
      // immediately, per RFC 8259 — anything else is a lone surrogate.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return false;
      }
      pos_ += 2;
      uint32_t low;
      if (!ParseHex4(low)) return false;
      if (low < 0xDC00 || low > 0xDFFF) return false;
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    AppendUtf8(out, code);
    return true;
  }

  std::optional<Json> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u':
          if (!ParseUnicodeEscape(out)) return std::nullopt;
          break;
        default: return std::nullopt;
      }
    }
    if (pos_ >= text_.size()) return std::nullopt;  // unterminated
    ++pos_;                                         // closing quote
    return Json(std::move(out));
  }

  std::optional<Json> ParseNumber() {
    const size_t start = pos_;
    bool integral = true;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
        integral = false;
      }
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (integral) {
      // Integer literals take the exact int64 path: doubles silently lose
      // precision above 2^53, which uint64 telemetry counters can exceed.
      // Out-of-int64-range literals fall through to the double path.
      errno = 0;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        return Json(static_cast<int64_t>(value));
      }
    }
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json(value);
  }

  std::optional<Json> ParseArray() {
    ++pos_;  // '['
    std::vector<Json> items;
    if (Consume(']')) return Json::Array(std::move(items));
    for (;;) {
      std::optional<Json> item = ParseValue();
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      if (Consume(']')) return Json::Array(std::move(items));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, Json> members;
    if (Consume('}')) return Json::Object(std::move(members));
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
      std::optional<Json> key = ParseString();
      if (!key) return std::nullopt;
      if (!Consume(':')) return std::nullopt;
      std::optional<Json> value = ParseValue();
      if (!value) return std::nullopt;
      members.emplace(key->AsString(), std::move(*value));
      if (Consume('}')) return Json::Object(std::move(members));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Json> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

namespace {

void DumpString(const std::string& text, std::string& out) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void DumpValue(const Json& value, std::string& out) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += value.AsBool() ? "true" : "false";
      break;
    case Json::Kind::kNumber:
      if (value.is_integer()) {
        out += std::to_string(value.AsInt());
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", value.AsNumber());
        out += buf;
      }
      break;
    case Json::Kind::kString:
      DumpString(value.AsString(), out);
      break;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : value.AsArray()) {
        if (!first) out += ',';
        first = false;
        DumpValue(item, out);
      }
      out += ']';
      break;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.AsObject()) {
        if (!first) out += ',';
        first = false;
        DumpString(key, out);
        out += ':';
        DumpValue(member, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Dump(const Json& value) {
  std::string out;
  DumpValue(value, out);
  return out;
}

}  // namespace aqed::telemetry
