#include "telemetry/json.h"

#include <cctype>
#include <cstdlib>

namespace aqed::telemetry {

Json Json::Array(std::vector<Json> items) {
  Json json;
  json.kind_ = Kind::kArray;
  json.array_ = std::move(items);
  return json;
}

Json Json::Object(std::map<std::string, Json> members) {
  Json json;
  json.kind_ = Kind::kObject;
  json.object_ = std::move(members);
  return json;
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> Parse() {
    std::optional<Json> value = ParseValue();
    if (!value) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n':
        return ConsumeWord("null") ? std::optional<Json>(Json())
                                   : std::nullopt;
      case 't':
        return ConsumeWord("true") ? std::optional<Json>(Json(true))
                                   : std::nullopt;
      case 'f':
        return ConsumeWord("false") ? std::optional<Json>(Json(false))
                                    : std::nullopt;
      case '"':
        return ParseString();
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        return ParseNumber();
    }
  }

  std::optional<Json> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: return std::nullopt;  // \uXXXX unsupported (unused)
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return std::nullopt;  // unterminated
    ++pos_;                                         // closing quote
    return Json(std::move(out));
  }

  std::optional<Json> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json(value);
  }

  std::optional<Json> ParseArray() {
    ++pos_;  // '['
    std::vector<Json> items;
    if (Consume(']')) return Json::Array(std::move(items));
    for (;;) {
      std::optional<Json> item = ParseValue();
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      if (Consume(']')) return Json::Array(std::move(items));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, Json> members;
    if (Consume('}')) return Json::Object(std::move(members));
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
      std::optional<Json> key = ParseString();
      if (!key) return std::nullopt;
      if (!Consume(':')) return std::nullopt;
      std::optional<Json> value = ParseValue();
      if (!value) return std::nullopt;
      members.emplace(key->AsString(), std::move(*value));
      if (Consume('}')) return Json::Object(std::move(members));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Json> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace aqed::telemetry
