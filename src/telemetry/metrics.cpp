#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>

namespace aqed::telemetry {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1) {}

void Histogram::Observe(double value) {
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = std::bit_cast<uint64_t>(
        std::bit_cast<double>(bits) + value);
    if (sum_bits_.compare_exchange_weak(bits, next,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

std::vector<uint64_t> Histogram::counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::span<const double> DefaultLatencyBucketsMs() {
  static constexpr double kBuckets[] = {0.1, 0.3,  1,    3,    10,   30,
                                        100, 300,  1000, 3000, 10000, 30000};
  return kBuckets;
}

double HistogramQuantile(std::span<const double> bounds,
                         std::span<const uint64_t> counts, double q) {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0 || counts.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // The observation rank the quantile falls on, 1-based; q=1 is the last.
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // +inf bucket: no upper edge to interpolate toward; clamp to the
      // highest finite bound (0 when there are no finite buckets at all).
      return bounds.empty() ? 0 : bounds.back();
    }
    const double lower = i == 0 ? 0 : bounds[i - 1];
    const double upper = bounds[i];
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) return upper;
    const double into =
        rank - static_cast<double>(cumulative - in_bucket);
    return lower + (upper - lower) * into / static_cast<double>(in_bucket);
  }
  return bounds.empty() ? 0 : bounds.back();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never
  return *registry;                                          // destroyed
}

namespace {

// Find-or-create in a name-sorted vector of unique_ptr instruments.
template <typename T, typename Make>
T& FindOrCreate(std::vector<std::pair<std::string, std::unique_ptr<T>>>& all,
                const std::string& name, Make make) {
  const auto it = std::lower_bound(
      all.begin(), all.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != all.end() && it->first == name) return *it->second;
  return *all.insert(it, {name, make()})->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(counters_, name,
                      [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(histograms_, name, [bounds] {
    return std::make_unique<Histogram>(bounds);
  });
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.timestamp_us = NowMicros();
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value{name, histogram->bounds(),
                                          histogram->counts(),
                                          histogram->count(),
                                          histogram->sum()};
    value.p50 = HistogramQuantile(value.bounds, value.counts, 0.50);
    value.p95 = HistogramQuantile(value.bounds, value.counts, 0.95);
    value.p99 = HistogramQuantile(value.bounds, value.counts, 0.99);
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// Kill-switch-aware helpers (inline no-ops when compiled out)
// ---------------------------------------------------------------------------

#if AQED_TELEMETRY_ENABLED

void AddCounter(const std::string& name, uint64_t delta) {
  if (!Enabled()) return;
  MetricsRegistry::Global().counter(name).Add(delta);
}

void SetGauge(const std::string& name, int64_t value) {
  if (!Enabled()) return;
  MetricsRegistry::Global().gauge(name).Set(value);
}

void AddGauge(const std::string& name, int64_t delta) {
  if (!Enabled()) return;
  MetricsRegistry::Global().gauge(name).Add(delta);
}

void MaxGauge(const std::string& name, int64_t value) {
  if (!Enabled()) return;
  MetricsRegistry::Global().gauge(name).SetMax(value);
}

void ObserveLatencyMs(const std::string& name, double ms) {
  if (!Enabled()) return;
  MetricsRegistry::Global().histogram(name).Observe(ms);
}

#endif  // AQED_TELEMETRY_ENABLED

}  // namespace aqed::telemetry
