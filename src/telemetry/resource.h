// Process resource probes: memory, CPU time, and thread count.
//
// The flight recorder (src/telemetry/sampler.h) samples these alongside the
// metrics registry so a session's time series carries the two axes the
// A-QED scaling literature actually plots — solver effort and memory
// footprint against wall time (BMC blow-up is a *resource* failure long
// before it is a wrong answer). The probes are also what bench_driver
// records per scenario for the BENCH_*.json perf trajectory.
//
// Sources, cheapest sufficient first: getrusage(RUSAGE_SELF) for CPU time
// and the peak-RSS fallback, /proc/self/status (VmRSS / VmHWM / Threads)
// for current RSS, peak RSS, and thread count. A probe that cannot be read
// (non-Linux /proc, sandboxed build) reports 0 rather than failing — a
// flight recorder must never take the plane down.
#pragma once

#include <cstdint>

namespace aqed::telemetry {

struct ResourceUsage {
  int64_t rss_kb = 0;        // current resident set (VmRSS), KiB
  int64_t peak_rss_kb = 0;   // high-water resident set (VmHWM), KiB
  int64_t user_cpu_us = 0;   // process user CPU time, microseconds
  int64_t sys_cpu_us = 0;    // process system CPU time, microseconds
  int64_t num_threads = 0;   // live threads in the process

  double cpu_seconds() const {
    return static_cast<double>(user_cpu_us + sys_cpu_us) * 1e-6;
  }
};

// Reads the probes now. Unreadable fields are 0; never fails.
ResourceUsage SampleResourceUsage();

}  // namespace aqed::telemetry
