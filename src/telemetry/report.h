// Session report builder: merges a Chrome trace JSON and a metrics JSONL
// (snapshot + flight-recorder time series) into one self-contained HTML
// document — the human-readable end of the telemetry pipeline, rendered by
// the `aqed-report` tool (tools/report_main.cpp).
//
// The report answers the questions the raw files make you script for:
// which jobs ran and what they concluded (verdict table from the
// sched.job spans), where the latency mass sits (histogram charts), how
// BMC depth and RSS evolved over the run (time-series charts from the
// sampler), and which individual spans dominated (top-N table). Everything
// is inline CSS + inline SVG; the file opens anywhere, attaches to CI
// artifacts, and references nothing over the network.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/export.h"

namespace aqed::telemetry {

// One span re-loaded from a Chrome trace file. Unlike TraceEvent, the arg
// keys are owned strings — a parsed trace has no static literals to point
// into.
struct ReportSpan {
  std::string name;
  uint64_t begin_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  std::map<std::string, int64_t> args;
};

// Parses a Chrome trace-event document (as written by WriteChromeTrace)
// back into spans; "M" metadata records are skipped. nullopt on input that
// is not a trace-event JSON object.
std::optional<std::vector<ReportSpan>> ParseChromeTrace(std::string_view text);

// Everything a report is rendered from. Either side may be empty: a trace
// without metrics still gets the verdict/top-span tables, metrics without
// a trace still get the charts.
struct ReportData {
  std::string title = "A-QED session report";
  std::vector<ReportSpan> spans;
  MetricsLog metrics;
};

struct ReportOptions {
  size_t top_spans = 20;  // rows in the longest-spans table
};

// Renders the report as one self-contained HTML document.
std::string RenderHtmlReport(const ReportData& data,
                             const ReportOptions& options = {});

// Convenience: renders and writes; false when the path cannot be opened.
bool WriteHtmlReportFile(const std::string& path, const ReportData& data,
                         const ReportOptions& options = {});

}  // namespace aqed::telemetry
