// Minimal JSON value model + recursive-descent parser.
//
// Exists so the telemetry exporters can be round-trip-tested (and the
// metrics JSONL re-loaded by tools like aqed-report) without an external
// JSON dependency. Scope is deliberately narrow: the full JSON grammar,
// with \uXXXX escapes decoded to UTF-8 (surrogate pairs included, lone
// surrogates rejected), integer literals kept exact in int64 (doubles lose
// integers above 2^53), and other numbers parsed with strtod. Not a
// general-purpose library — everything this repo writes, it reads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aqed::telemetry {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  explicit Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  explicit Json(double value) : kind_(Kind::kNumber), number_(value) {}
  // Integer-valued number: keeps full int64 precision (doubles lose
  // integers above 2^53, which uint64 telemetry counters can exceed).
  explicit Json(int64_t value)
      : kind_(Kind::kNumber),
        is_int_(true),
        int_(value),
        number_(static_cast<double>(value)) {}
  explicit Json(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}

  static Json Array(std::vector<Json> items);
  static Json Object(std::map<std::string, Json> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  // True when the number was an integer literal (no '.', no exponent) that
  // fits int64 — AsInt() is then exact even beyond 2^53.
  bool is_integer() const { return is_int_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const {
    return is_int_ ? int_ : static_cast<int64_t>(number_);
  }
  const std::string& AsString() const { return string_; }
  const std::vector<Json>& AsArray() const { return array_; }
  const std::map<std::string, Json>& AsObject() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  int64_t int_ = 0;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

// Parses exactly one JSON value spanning the whole input (surrounding
// whitespace allowed); nullopt on any syntax error or trailing garbage.
std::optional<Json> ParseJson(std::string_view text);

// Serializes a value on one line (no insignificant whitespace), suitable for
// JSONL records. Strings escape control characters, quotes, and backslashes;
// integer-tagged numbers print exactly (full int64 range), other numbers
// with enough digits to round-trip through strtod. Dump ∘ ParseJson is the
// identity on everything this repo writes.
std::string Dump(const Json& value);

}  // namespace aqed::telemetry
