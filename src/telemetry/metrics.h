// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms.
//
// Registration (the name -> instrument lookup) takes the registry mutex and
// happens once per name per call site that caches, or once per flush point
// for sites that don't — the instruments themselves are plain atomics, so
// updates are wait-free and snapshot reads are racy-but-coherent
// point-in-time values, which is all a metrics export needs.
//
// The stack deliberately updates metrics at flush points rather than inside
// inner loops: the SAT solver keeps counting decisions/propagations in its
// private Statistics struct and adds the per-call deltas to the registry
// once per Solve() — a registry update per propagation would be atomics
// traffic for nothing.
//
// The free helpers (AddCounter/SetGauge/...) check the runtime kill switch
// first, so un-instrumented runs pay one relaxed load per call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace aqed::telemetry {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (pool occupancy, depth reached).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  // Raises the gauge to `value` if higher (high-water marks like the
  // deepest BMC frame reached across concurrent jobs).
  void SetMax(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: bounds are upper edges of the first N buckets,
// with an implicit +inf bucket after the last. Observations also feed a
// count/sum pair so exports can report averages without bucket math.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // counts() has bounds().size() + 1 entries (the +inf bucket is last).
  std::vector<uint64_t> counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double stored as bits, CAS-accumulated
};

// The default latency bucket edges (milliseconds): 0.1 ms .. 30 s in a
// 1-3-10 ladder, wide enough for a sub-ms RB refutation and a
// deadline-escalated AES solve in the same histogram.
std::span<const double> DefaultLatencyBucketsMs();

// Quantile estimate over a fixed-bucket histogram (Prometheus
// histogram_quantile semantics): find the bucket where the cumulative
// count crosses q * total, interpolate linearly inside it. The +inf bucket
// clamps to the last finite bound (there is no upper edge to interpolate
// toward); an empty histogram reports 0. `counts` has bounds.size() + 1
// entries, per-bucket (not cumulative), exactly Histogram::counts().
double HistogramQuantile(std::span<const double> bounds,
                         std::span<const uint64_t> counts, double q);

// Point-in-time values of every registered instrument, name-sorted.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    int64_t value;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1 entries
    uint64_t count = 0;
    double sum = 0;
    // Derived quantiles (HistogramQuantile over bounds/counts), computed at
    // Snapshot() and carried through the JSONL export so consumers
    // (aqed-report, the server's status response) need no bucket math.
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  uint64_t timestamp_us = 0;  // NowMicros() at snapshot
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  // The process-wide registry the instrumentation records into. Tests may
  // build private registries.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. Returned references stay valid for the
  // registry's lifetime (instruments are never deregistered), so call
  // sites may cache them.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // The bucket bounds are fixed by whichever call registers the name first;
  // later calls with different bounds get the existing histogram.
  Histogram& histogram(
      const std::string& name,
      std::span<const double> bounds = DefaultLatencyBucketsMs());

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // Sorted-by-name storage keeps Snapshot() deterministic.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

// Kill-switch-aware conveniences over the global registry: no-ops (one
// relaxed load) when telemetry is disabled at runtime, and empty inlines —
// the instrumented layers record nothing even if SetEnabled(true) is called
// — when compiled out with -DAQED_TELEMETRY=OFF.
#if AQED_TELEMETRY_ENABLED
void AddCounter(const std::string& name, uint64_t delta);
void SetGauge(const std::string& name, int64_t value);
void AddGauge(const std::string& name, int64_t delta);
void MaxGauge(const std::string& name, int64_t value);
// Observes into a default-bucket latency histogram.
void ObserveLatencyMs(const std::string& name, double ms);
#else
inline void AddCounter(const std::string&, uint64_t) {}
inline void SetGauge(const std::string&, int64_t) {}
inline void AddGauge(const std::string&, int64_t) {}
inline void MaxGauge(const std::string&, int64_t) {}
inline void ObserveLatencyMs(const std::string&, double) {}
#endif  // AQED_TELEMETRY_ENABLED

}  // namespace aqed::telemetry
