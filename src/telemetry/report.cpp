#include "telemetry/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "telemetry/json.h"

namespace aqed::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Small formatting helpers
// ---------------------------------------------------------------------------

std::string HtmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Num(double value, const char* format = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

std::string Ms(uint64_t micros) { return Num(micros * 1e-3, "%.2f"); }

// ---------------------------------------------------------------------------
// Inline SVG charts
// ---------------------------------------------------------------------------

struct Point {
  double x;  // seconds from the first sample
  double y;
};

// A plain polyline chart: x in seconds, y in the series' own unit. Sized
// for side-by-side stacking in the report; min/max labels instead of full
// axes keep the markup small and dependency-free.
std::string RenderLineChart(const std::string& title, const char* unit,
                            const std::vector<Point>& points) {
  constexpr double kW = 680, kH = 180;
  constexpr double kL = 64, kR = 12, kT = 20, kB = 26;
  std::ostringstream svg;
  svg << "<figure class=\"chart\"><figcaption>" << HtmlEscape(title)
      << "</figcaption>";
  if (points.size() < 2) {
    svg << "<p class=\"empty\">no samples (enable "
           "SessionOptions::sample_period_ms)</p></figure>";
    return svg.str();
  }
  double xmin = points.front().x, xmax = points.front().x;
  double ymin = points.front().y, ymax = points.front().y;
  for (const Point& p : points) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  if (xmax <= xmin) xmax = xmin + 1e-6;
  if (ymax <= ymin) ymax = ymin + 1;
  const auto sx = [&](double x) {
    return kL + (x - xmin) / (xmax - xmin) * (kW - kL - kR);
  };
  const auto sy = [&](double y) {
    return kH - kB - (y - ymin) / (ymax - ymin) * (kH - kT - kB);
  };
  svg << "<svg viewBox=\"0 0 " << kW << ' ' << kH
      << "\" width=\"" << kW << "\" height=\"" << kH
      << "\" role=\"img\">";
  // Plot frame.
  svg << "<rect x=\"" << kL << "\" y=\"" << kT << "\" width=\""
      << kW - kL - kR << "\" height=\"" << kH - kT - kB
      << "\" class=\"frame\"/>";
  svg << "<polyline class=\"line\" points=\"";
  for (const Point& p : points) {
    svg << Num(sx(p.x), "%.1f") << ',' << Num(sy(p.y), "%.1f") << ' ';
  }
  svg << "\"/>";
  // Corner labels: y range on the left, x range along the bottom.
  svg << "<text x=\"" << kL - 6 << "\" y=\"" << kT + 10
      << "\" class=\"lbl\" text-anchor=\"end\">" << Num(ymax, "%.4g") << ' '
      << unit << "</text>";
  svg << "<text x=\"" << kL - 6 << "\" y=\"" << kH - kB
      << "\" class=\"lbl\" text-anchor=\"end\">" << Num(ymin, "%.4g")
      << "</text>";
  svg << "<text x=\"" << kL << "\" y=\"" << kH - 8
      << "\" class=\"lbl\">" << Num(xmin, "%.3g") << " s</text>";
  svg << "<text x=\"" << kW - kR << "\" y=\"" << kH - 8
      << "\" class=\"lbl\" text-anchor=\"end\">" << Num(xmax, "%.3g")
      << " s</text>";
  svg << "</svg></figure>";
  return svg.str();
}

// Latency histogram as an SVG bar row, one bar per bucket (last = +inf).
std::string RenderHistogram(const MetricsSnapshot::HistogramValue& histogram) {
  constexpr double kW = 680, kH = 140;
  constexpr double kL = 8, kR = 8, kT = 18, kB = 30;
  const size_t buckets = histogram.counts.size();
  std::ostringstream svg;
  const double avg =
      histogram.count > 0 ? histogram.sum / static_cast<double>(histogram.count)
                          : 0;
  // p50/p95/p99 come from the snapshot's derived fields (the JSONL parser
  // backfills them for old files), not recomputed from buckets here.
  svg << "<figure class=\"chart\"><figcaption>" << HtmlEscape(histogram.name)
      << " &mdash; " << histogram.count << " observations, avg "
      << Num(avg, "%.3g") << " ms, p50 " << Num(histogram.p50, "%.3g")
      << " / p95 " << Num(histogram.p95, "%.3g") << " / p99 "
      << Num(histogram.p99, "%.3g") << " ms</figcaption>";
  if (buckets == 0 || histogram.count == 0) {
    svg << "<p class=\"empty\">no observations</p></figure>";
    return svg.str();
  }
  uint64_t peak = 1;
  for (const uint64_t c : histogram.counts) peak = std::max(peak, c);
  const double bar_w = (kW - kL - kR) / static_cast<double>(buckets);
  svg << "<svg viewBox=\"0 0 " << kW << ' ' << kH << "\" width=\"" << kW
      << "\" height=\"" << kH << "\" role=\"img\">";
  for (size_t i = 0; i < buckets; ++i) {
    const double h = histogram.counts[i] * (kH - kT - kB) /
                     static_cast<double>(peak);
    const double x = kL + bar_w * static_cast<double>(i);
    const std::string upper =
        i < histogram.bounds.size() ? Num(histogram.bounds[i], "%.4g") + " ms"
                                    : std::string("+inf");
    svg << "<rect class=\"bar\" x=\"" << Num(x + 1, "%.1f") << "\" y=\""
        << Num(kH - kB - h, "%.1f") << "\" width=\""
        << Num(bar_w - 2, "%.1f") << "\" height=\"" << Num(h, "%.1f")
        << "\"><title>&le; " << upper << ": " << histogram.counts[i]
        << "</title></rect>";
    if (histogram.counts[i] > 0) {
      svg << "<text class=\"lbl\" text-anchor=\"middle\" x=\""
          << Num(x + bar_w / 2, "%.1f") << "\" y=\"" << kH - kB + 12
          << "\">" << upper << "</text>";
      svg << "<text class=\"lbl\" text-anchor=\"middle\" x=\""
          << Num(x + bar_w / 2, "%.1f") << "\" y=\""
          << Num(kH - kB - h - 4, "%.1f") << "\">" << histogram.counts[i]
          << "</text>";
    }
  }
  svg << "</svg></figure>";
  return svg.str();
}

// ---------------------------------------------------------------------------
// Time-series extraction
// ---------------------------------------------------------------------------

// The named gauge over the sample sequence; samples missing the gauge are
// skipped (a gauge appears the first time its layer records).
std::vector<Point> GaugeSeries(const std::vector<TimeSeriesSample>& samples,
                               std::string_view gauge, uint64_t epoch_us) {
  std::vector<Point> points;
  for (const TimeSeriesSample& sample : samples) {
    for (const auto& value : sample.gauges) {
      if (value.name == gauge) {
        points.push_back({(sample.timestamp_us - epoch_us) * 1e-6,
                          static_cast<double>(value.value)});
        break;
      }
    }
  }
  return points;
}

std::vector<Point> ResourceSeries(
    const std::vector<TimeSeriesSample>& samples, uint64_t epoch_us,
    int64_t ResourceUsage::* field, double scale) {
  std::vector<Point> points;
  points.reserve(samples.size());
  for (const TimeSeriesSample& sample : samples) {
    points.push_back({(sample.timestamp_us - epoch_us) * 1e-6,
                      static_cast<double>(sample.resources.*field) * scale});
  }
  return points;
}

int64_t FindArg(const ReportSpan& span, const std::string& key,
                int64_t fallback) {
  const auto it = span.args.find(key);
  return it == span.args.end() ? fallback : it->second;
}

}  // namespace

// ---------------------------------------------------------------------------
// Chrome trace re-loading
// ---------------------------------------------------------------------------

std::optional<std::vector<ReportSpan>> ParseChromeTrace(
    std::string_view text) {
  const std::optional<Json> root = ParseJson(text);
  if (!root || !root->is_object()) return std::nullopt;
  const Json* events = root->Find("traceEvents");
  if (events == nullptr || !events->is_array()) return std::nullopt;
  std::vector<ReportSpan> spans;
  for (const Json& event : events->AsArray()) {
    if (!event.is_object()) return std::nullopt;
    const Json* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->AsString() != "X") {
      continue;  // metadata and non-complete events carry no duration
    }
    ReportSpan span;
    const Json* name = event.Find("name");
    const Json* ts = event.Find("ts");
    const Json* dur = event.Find("dur");
    const Json* tid = event.Find("tid");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number()) {
      return std::nullopt;
    }
    span.name = name->AsString();
    span.begin_us = static_cast<uint64_t>(ts->AsNumber());
    span.dur_us = static_cast<uint64_t>(dur->AsNumber());
    if (tid != nullptr && tid->is_number()) {
      span.tid = static_cast<uint32_t>(tid->AsInt());
    }
    if (const Json* args = event.Find("args"); args && args->is_object()) {
      for (const auto& [key, value] : args->AsObject()) {
        if (value.is_number()) span.args.emplace(key, value.AsInt());
      }
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

// ---------------------------------------------------------------------------
// HTML rendering
// ---------------------------------------------------------------------------

std::string RenderHtmlReport(const ReportData& data,
                             const ReportOptions& options) {
  std::ostringstream html;
  const std::vector<TimeSeriesSample>& samples = data.metrics.samples;

  // Session extent (for the header and the chart epochs): span extremes
  // when a trace is present, sample extremes otherwise.
  uint64_t begin_us = UINT64_MAX, end_us = 0;
  for (const ReportSpan& span : data.spans) {
    begin_us = std::min(begin_us, span.begin_us);
    end_us = std::max(end_us, span.begin_us + span.dur_us);
  }
  for (const TimeSeriesSample& sample : samples) {
    begin_us = std::min(begin_us, sample.timestamp_us);
    end_us = std::max(end_us, sample.timestamp_us);
  }
  if (begin_us == UINT64_MAX) begin_us = end_us = 0;

  html << "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
       << "<title>" << HtmlEscape(data.title) << "</title><style>\n"
       << "body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;"
          "max-width:760px;color:#1a1a2e}\n"
       << "h1{font-size:20px}h2{font-size:16px;border-bottom:1px solid #ccd;"
          "padding-bottom:4px;margin-top:28px}\n"
       << "table{border-collapse:collapse;width:100%;font-size:13px}\n"
       << "th,td{border:1px solid #dde;padding:3px 8px;text-align:left}\n"
       << "td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}\n"
       << "tr.bug td{background:#fde8e8}tr.err td{background:#fdf3e0}\n"
       << ".tiles{display:flex;flex-wrap:wrap;gap:12px;margin:12px 0}\n"
       << ".tile{border:1px solid #dde;border-radius:6px;padding:8px 14px}\n"
       << ".tile b{display:block;font-size:18px}\n"
       << ".chart{margin:14px 0}figcaption{font-weight:600;margin-bottom:4px}\n"
       << ".frame{fill:none;stroke:#ccd}.line{fill:none;stroke:#3459e6;"
          "stroke-width:1.5}\n"
       << ".bar{fill:#3459e6}.lbl{font-size:10px;fill:#555}\n"
       << ".empty{color:#888;font-style:italic}\n"
       << "</style></head><body>\n"
       << "<h1>" << HtmlEscape(data.title) << "</h1>\n";

  // --- summary tiles ---------------------------------------------------
  size_t threads = 0;
  {
    std::vector<uint32_t> tids;
    for (const ReportSpan& span : data.spans) tids.push_back(span.tid);
    std::sort(tids.begin(), tids.end());
    threads = static_cast<size_t>(
        std::unique(tids.begin(), tids.end()) - tids.begin());
  }
  html << "<div class=\"tiles\">";
  html << "<div class=\"tile\"><b>" << Num((end_us - begin_us) * 1e-6, "%.2f")
       << " s</b>session extent</div>";
  html << "<div class=\"tile\"><b>" << data.spans.size()
       << "</b>spans / " << threads << " threads</div>";
  html << "<div class=\"tile\"><b>" << samples.size()
       << "</b>flight-recorder samples</div>";
  if (!samples.empty()) {
    int64_t peak_rss = 0;
    for (const TimeSeriesSample& s : samples) {
      peak_rss = std::max(peak_rss, s.resources.peak_rss_kb);
    }
    const ResourceUsage& last = samples.back().resources;
    html << "<div class=\"tile\"><b>" << Num(peak_rss / 1024.0, "%.1f")
         << " MiB</b>peak RSS</div>";
    html << "<div class=\"tile\"><b>" << Num(last.cpu_seconds(), "%.2f")
         << " s</b>process CPU</div>";
  }
  html << "</div>\n";

  // --- verdict table ----------------------------------------------------
  // One row per executed job attempt: the sched.job:<label> spans carry
  // entry/attempt args at construction and bug/frames args at completion
  // (absent on cancelled jobs).
  html << "<h2>Jobs</h2>\n";
  std::vector<const ReportSpan*> jobs;
  for (const ReportSpan& span : data.spans) {
    if (span.name.rfind("sched.job:", 0) == 0) jobs.push_back(&span);
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const ReportSpan* a, const ReportSpan* b) {
                     return a->begin_us < b->begin_us;
                   });
  if (jobs.empty()) {
    html << "<p class=\"empty\">no sched.job spans in the trace</p>\n";
  } else {
    html << "<table><tr><th>job</th><th class=\"num\">entry</th>"
            "<th class=\"num\">attempt</th><th class=\"num\">start ms</th>"
            "<th class=\"num\">wall ms</th><th class=\"num\">frames</th>"
            "<th>verdict</th></tr>\n";
    for (const ReportSpan* job : jobs) {
      const int64_t bug = FindArg(*job, "bug", -1);
      const char* verdict = bug == 1 ? "BUG" : bug == 0 ? "clean" : "n/a";
      html << "<tr" << (bug == 1 ? " class=\"bug\"" : "") << "><td>"
           << HtmlEscape(job->name.substr(sizeof("sched.job:") - 1))
           << "</td><td class=\"num\">" << FindArg(*job, "entry", -1)
           << "</td><td class=\"num\">" << FindArg(*job, "attempt", 0)
           << "</td><td class=\"num\">" << Ms(job->begin_us - begin_us)
           << "</td><td class=\"num\">" << Ms(job->dur_us)
           << "</td><td class=\"num\">" << FindArg(*job, "frames", 0)
           << "</td><td>" << verdict << "</td></tr>\n";
    }
    html << "</table>\n";
  }

  // --- time-series charts ----------------------------------------------
  html << "<h2>Flight recorder</h2>\n";
  html << RenderLineChart("BMC depth vs time", "frames",
                          GaugeSeries(samples, "bmc.current_depth", begin_us))
       << '\n';
  html << RenderLineChart(
              "Resident set vs time", "MiB",
              ResourceSeries(samples, begin_us, &ResourceUsage::rss_kb,
                             1.0 / 1024.0))
       << '\n';
  if (!samples.empty()) {
    html << RenderLineChart(
                "SAT clauses vs time", "clauses",
                GaugeSeries(samples, "sat.clauses", begin_us))
         << '\n';
    html << RenderLineChart(
                "Scheduler queue depth vs time", "jobs",
                GaugeSeries(samples, "sched.queue_depth", begin_us))
         << '\n';
  }

  // --- latency histograms ----------------------------------------------
  html << "<h2>Latency histograms</h2>\n";
  if (data.metrics.snapshot.histograms.empty()) {
    html << "<p class=\"empty\">no histograms in the metrics snapshot</p>\n";
  }
  for (const auto& histogram : data.metrics.snapshot.histograms) {
    html << RenderHistogram(histogram) << '\n';
  }

  // --- top-N longest spans ---------------------------------------------
  html << "<h2>Longest spans</h2>\n";
  std::vector<const ReportSpan*> longest;
  longest.reserve(data.spans.size());
  for (const ReportSpan& span : data.spans) longest.push_back(&span);
  std::stable_sort(longest.begin(), longest.end(),
                   [](const ReportSpan* a, const ReportSpan* b) {
                     return a->dur_us > b->dur_us;
                   });
  if (longest.size() > options.top_spans) longest.resize(options.top_spans);
  if (longest.empty()) {
    html << "<p class=\"empty\">no spans</p>\n";
  } else {
    html << "<table><tr><th>span</th><th class=\"num\">tid</th>"
            "<th class=\"num\">start ms</th><th class=\"num\">wall ms</th>"
            "<th>args</th></tr>\n";
    for (const ReportSpan* span : longest) {
      html << "<tr><td>" << HtmlEscape(span->name) << "</td><td class=\"num\">"
           << span->tid << "</td><td class=\"num\">"
           << Ms(span->begin_us - begin_us) << "</td><td class=\"num\">"
           << Ms(span->dur_us) << "</td><td>";
      bool first = true;
      for (const auto& [key, value] : span->args) {
        if (!first) html << ", ";
        first = false;
        html << HtmlEscape(key) << "=" << value;
      }
      html << "</td></tr>\n";
    }
    html << "</table>\n";
  }

  // --- final counters / gauges -----------------------------------------
  html << "<h2>Final counters and gauges</h2>\n";
  if (data.metrics.snapshot.counters.empty() &&
      data.metrics.snapshot.gauges.empty()) {
    html << "<p class=\"empty\">no metrics snapshot</p>\n";
  } else {
    html << "<table><tr><th>instrument</th><th class=\"num\">value</th></tr>\n";
    for (const auto& counter : data.metrics.snapshot.counters) {
      html << "<tr><td>" << HtmlEscape(counter.name)
           << "</td><td class=\"num\">" << counter.value << "</td></tr>\n";
    }
    for (const auto& gauge : data.metrics.snapshot.gauges) {
      html << "<tr><td>" << HtmlEscape(gauge.name)
           << " (gauge)</td><td class=\"num\">" << gauge.value
           << "</td></tr>\n";
    }
    html << "</table>\n";
  }

  html << "</body></html>\n";
  return html.str();
}

bool WriteHtmlReportFile(const std::string& path, const ReportData& data,
                         const ReportOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << RenderHtmlReport(data, options);
  return static_cast<bool>(out);
}

}  // namespace aqed::telemetry
