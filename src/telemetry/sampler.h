// Session flight recorder: a background thread that periodically snapshots
// the metrics registry and the process resource probes into a bounded ring
// of timestamped samples.
//
// End-of-run metric snapshots say what a session cost; they cannot say
// *when* — whether the solver's clause database grew linearly or blew up at
// one depth, whether RSS plateaued or climbed until the deadline tripped.
// The sampler turns the registry's live gauges (bmc.current_depth,
// sat.clauses, sched.queue_depth, ...) into exactly that time series, which
// the metrics JSONL exporter writes as "sample" lines and aqed-report plots
// as depth-vs-time / RSS-vs-time charts.
//
// Cost model: one sample is a registry snapshot (one mutex acquisition, no
// hot-path interaction — instruments are wait-free atomics) plus one
// /proc/self/status read, every period. The ring drops its *oldest* samples
// past capacity (a flight recorder keeps the most recent history);
// num_dropped() reports how many were lost.
//
// With -DAQED_TELEMETRY=OFF the class is an inert stub: no thread, no
// samples, nothing to pay for.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/resource.h"
#include "telemetry/telemetry.h"

#if AQED_TELEMETRY_ENABLED
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#endif

namespace aqed::telemetry {

// One flight-recorder sample: registry counters/gauges plus the resource
// probes at one instant. Histograms are deliberately not sampled — they are
// cumulative and land once in the final snapshot; per-sample bucket arrays
// would multiply the export size for no chart.
struct TimeSeriesSample {
  uint64_t timestamp_us = 0;  // NowMicros() at the sample
  ResourceUsage resources;
  std::vector<MetricsSnapshot::CounterValue> counters;
  std::vector<MetricsSnapshot::GaugeValue> gauges;
};

struct SamplerOptions {
  uint32_t period_ms = 100;   // sampling period (clamped to >= 1)
  size_t capacity = 4096;     // ring capacity; oldest samples drop first
  MetricsRegistry* registry = nullptr;  // nullptr = MetricsRegistry::Global()
};

#if AQED_TELEMETRY_ENABLED

class Sampler {
 public:
  explicit Sampler(SamplerOptions options = {});
  ~Sampler();  // Stop()s

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // Starts the background thread; records one sample immediately so even a
  // sub-period run has a first point. No-op when already running.
  void Start();

  // Stops the thread and records one final sample (a start/stop pair
  // brackets the run even when it outpaces the period). No-op when idle.
  void Stop();

  bool running() const;

  // Moves the accumulated samples out, oldest first. Callable while
  // running; subsequent samples accumulate afresh.
  std::vector<TimeSeriesSample> TakeSamples();

  // Samples lost to the ring bound so far.
  uint64_t num_dropped() const;

 private:
  void Loop();
  void SampleNowLocked();  // caller holds mu_

  const SamplerOptions options_;
  MetricsRegistry& registry_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::deque<TimeSeriesSample> ring_;
  uint64_t num_dropped_ = 0;
  std::thread thread_;
};

#else  // !AQED_TELEMETRY_ENABLED

class Sampler {
 public:
  explicit Sampler(SamplerOptions = {}) {}
  void Start() {}
  void Stop() {}
  bool running() const { return false; }
  std::vector<TimeSeriesSample> TakeSamples() { return {}; }
  uint64_t num_dropped() const { return 0; }
};

#endif  // AQED_TELEMETRY_ENABLED

}  // namespace aqed::telemetry
