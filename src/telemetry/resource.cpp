#include "telemetry/resource.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define AQED_HAVE_GETRUSAGE 1
#else
#define AQED_HAVE_GETRUSAGE 0
#endif

namespace aqed::telemetry {

namespace {

// Parses "<Key>:   <value> kB" lines out of /proc/self/status. Returns
// false when the file cannot be opened (non-Linux); the caller keeps its
// fallbacks.
bool ReadProcSelfStatus(ResourceUsage& usage) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return false;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    long long value = 0;
    if (std::sscanf(line, "VmRSS: %lld", &value) == 1) {
      usage.rss_kb = value;
    } else if (std::sscanf(line, "VmHWM: %lld", &value) == 1) {
      usage.peak_rss_kb = value;
    } else if (std::sscanf(line, "Threads: %lld", &value) == 1) {
      usage.num_threads = value;
    }
  }
  std::fclose(file);
  return true;
}

}  // namespace

ResourceUsage SampleResourceUsage() {
  ResourceUsage usage;
#if AQED_HAVE_GETRUSAGE
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.user_cpu_us =
        static_cast<int64_t>(ru.ru_utime.tv_sec) * 1000000 + ru.ru_utime.tv_usec;
    usage.sys_cpu_us =
        static_cast<int64_t>(ru.ru_stime.tv_sec) * 1000000 + ru.ru_stime.tv_usec;
    // ru_maxrss is KiB on Linux; used as the peak fallback when /proc is
    // absent (and overwritten by VmHWM when it is not).
    usage.peak_rss_kb = ru.ru_maxrss;
  }
#endif
  ReadProcSelfStatus(usage);
  return usage;
}

}  // namespace aqed::telemetry
