// Telemetry core: the kill switch, the monotonic trace clock, stable
// per-thread ids, and the RAII span primitive behind TELEMETRY_SPAN.
//
// The paper's pitch (Table 1, Fig. 5) is quantitative — verification
// effort, detection latency, solver cost — and a parallel session hides
// where that time goes: queue wait vs. unroll vs. SAT search vs. retry
// escalation. This subsystem makes the stack observable without making it
// slower: spans write to per-thread buffers (src/telemetry/trace.h), metric
// updates are uncontended atomics (src/telemetry/metrics.h), and the whole
// thing reduces to a single relaxed load — or to nothing at all — when
// switched off.
//
// Kill switches, outermost first:
//   * compile time: configure with -DAQED_TELEMETRY=OFF (the CMake option
//     defines AQED_TELEMETRY_ENABLED=0) and TELEMETRY_SPAN expands to
//     nothing; the recording helpers compile to empty inlines.
//   * runtime: telemetry::SetEnabled(false) — the default — makes every
//     span constructor and metric helper bail on one relaxed atomic load.
// Sessions flip the runtime switch on when SessionOptions::trace_path or
// ::metrics_path is set (see sched/session.h); tests drive it directly.
//
// This header is dependency-free (std only) so the SAT solver and the BMC
// engine can include it without pulling in scheduler machinery.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#ifndef AQED_TELEMETRY_ENABLED
#define AQED_TELEMETRY_ENABLED 1
#endif

namespace aqed::telemetry {

// Runtime kill switch. Off by default: an un-configured process records
// nothing and pays one relaxed load per instrumentation site.
bool Enabled();
void SetEnabled(bool enabled);

// Microseconds on the steady clock, measured from process start (Chrome
// trace-event timestamps are microsecond-denominated).
uint64_t NowMicros();

// Small, stable, human-readable thread id: 1 for the first thread that
// asks, counting up. Used as the `tid` of trace events so Perfetto rows
// stay compact and deterministic-ish across runs (modulo thread creation
// order), unlike raw pthread ids.
uint32_t ThreadId();

// Ambient request trace id: a thread-local uint64 every span records at
// End() (0 = untraced, the default). aqed-server scopes one around each
// campaign request so every span the request produces on that thread —
// and on worker threads that re-scope the captured id — carries the id
// the client was answered with. Emitted into Chrome-trace args as a
// 16-hex string (a JSON double would lose ids above 2^53).
uint64_t CurrentTraceId();
void SetCurrentTraceId(uint64_t trace_id);

// RAII scope for the ambient trace id: sets on construction, restores the
// previous value on destruction, so nested scopes (a traced request
// calling into a traced sub-campaign) unwind correctly.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t trace_id)
      : previous_(CurrentTraceId()) {
    SetCurrentTraceId(trace_id);
  }
  ~ScopedTraceId() { SetCurrentTraceId(previous_); }

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t previous_;
};

// One key/value annotation on a span ("depth" = 7). Keys are string
// literals — spans annotate code sites, and sites are static.
struct Arg {
  const char* key;
  int64_t value;
};

inline constexpr size_t kMaxSpanArgs = 4;

#if AQED_TELEMETRY_ENABLED

// RAII span: records one complete trace event (begin = construction,
// end = destruction) on the calling thread's buffer. When telemetry is
// disabled at construction the span is inert — End() records nothing even
// if telemetry is enabled mid-span (half-observed spans are worse than
// none).
class Span {
 public:
  explicit Span(std::string name, std::initializer_list<Arg> args = {});
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Records the span now (idempotent; the destructor is the usual caller).
  void End();

  // Adds an annotation discovered mid-span (e.g. the verdict); dropped
  // silently past kMaxSpanArgs or on an inert span.
  void AddArg(const char* key, int64_t value);

 private:
  std::string name_;
  std::array<Arg, kMaxSpanArgs> args_{};
  uint8_t num_args_ = 0;
  uint64_t begin_us_ = 0;
  bool active_ = false;
};

#define AQED_TELEMETRY_CAT2(a, b) a##b
#define AQED_TELEMETRY_CAT(a, b) AQED_TELEMETRY_CAT2(a, b)

// TELEMETRY_SPAN("bmc.solve_depth", {{"depth", d}}): scoped span over the
// rest of the enclosing block. Variadic so brace-enclosed argument lists
// survive the preprocessor's comma splitting.
#define TELEMETRY_SPAN(...)                                             \
  ::aqed::telemetry::Span AQED_TELEMETRY_CAT(aqed_telemetry_span_,      \
                                             __LINE__)(__VA_ARGS__)

#else  // !AQED_TELEMETRY_ENABLED

class Span {
 public:
  explicit Span(std::string, std::initializer_list<Arg> = {}) {}
  void End() {}
  void AddArg(const char*, int64_t) {}
};

#define TELEMETRY_SPAN(...) \
  do {                      \
  } while (false)

#endif  // AQED_TELEMETRY_ENABLED

}  // namespace aqed::telemetry
