#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

namespace aqed::telemetry {

namespace {

std::atomic<bool> g_enabled{false};

uint64_t SteadyMicrosNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Process-start epoch so trace timestamps are small and non-negative.
const uint64_t g_epoch_us = SteadyMicrosNow();

std::atomic<uint32_t> g_next_thread_id{1};

// A thread's buffers, one per tracer it has recorded into (almost always
// just the global tracer; tests add their own). Holding shared_ptr keeps a
// dying thread's events alive for the tracer to drain.
struct ThreadSlots {
  std::vector<std::pair<const void*, std::shared_ptr<void>>> slots;
};

ThreadSlots& Slots() {
  thread_local ThreadSlots slots;
  return slots;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t NowMicros() { return SteadyMicrosNow() - g_epoch_us; }

uint32_t ThreadId() {
  thread_local const uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

// The ambient per-thread trace id (0 = untraced). Plain thread_local, no
// atomics: only the owning thread reads or writes its slot.
thread_local uint64_t g_trace_id = 0;

}  // namespace

uint64_t CurrentTraceId() { return g_trace_id; }

void SetCurrentTraceId(uint64_t trace_id) { g_trace_id = trace_id; }

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

#if AQED_TELEMETRY_ENABLED

Span::Span(std::string name, std::initializer_list<Arg> args) {
  if (!Enabled()) return;
  active_ = true;
  name_ = std::move(name);
  for (const Arg& arg : args) {
    if (num_args_ < kMaxSpanArgs) args_[num_args_++] = arg;
  }
  begin_us_ = NowMicros();
}

void Span::End() {
  if (!active_) return;
  active_ = false;
  const uint64_t end_us = NowMicros();
  TraceEvent event;
  event.name = std::move(name_);
  event.begin_us = begin_us_;
  event.dur_us = end_us - begin_us_;
  event.tid = ThreadId();
  event.trace_id = CurrentTraceId();
  event.args = args_;
  event.num_args = num_args_;
  Tracer::Global().Record(std::move(event));
}

void Span::AddArg(const char* key, int64_t value) {
  if (!active_ || num_args_ >= kMaxSpanArgs) return;
  args_[num_args_++] = {key, value};
}

#endif  // AQED_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed: threads may
  return *tracer;                        // outlive static teardown
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  ThreadSlots& slots = Slots();
  for (auto& [owner, buffer] : slots.slots) {
    if (owner == this) return *static_cast<ThreadBuffer*>(buffer.get());
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(buffer);
  }
  slots.slots.emplace_back(this, buffer);
  return *buffer;
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer& buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
  if (buffer.events.size() >= kFlushThreshold) FlushLocked(buffer);
}

void Tracer::RecordComplete(std::string name, uint64_t begin_us,
                            uint64_t end_us, std::initializer_list<Arg> args) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.begin_us = begin_us;
  event.dur_us = end_us >= begin_us ? end_us - begin_us : 0;
  event.tid = ThreadId();
  event.trace_id = CurrentTraceId();
  for (const Arg& arg : args) {
    if (event.num_args < kMaxSpanArgs) event.args[event.num_args++] = arg;
  }
  Record(std::move(event));
}

void Tracer::FlushLocked(ThreadBuffer& buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  num_recorded_ += buffer.events.size();
  std::move(buffer.events.begin(), buffer.events.end(),
            std::back_inserter(drained_));
  buffer.events.clear();
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<TraceEvent> out;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = std::move(drained_);
    drained_.clear();
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    {
      std::lock_guard<std::mutex> count_lock(mu_);
      num_recorded_ += buffer->events.size();
    }
    std::move(buffer->events.begin(), buffer->events.end(),
              std::back_inserter(out));
    buffer->events.clear();
  }
  return out;
}

size_t Tracer::num_recorded() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  size_t total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = num_recorded_;
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained_.clear();
    num_recorded_ = 0;
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
}

}  // namespace aqed::telemetry
