#include "telemetry/sampler.h"

#if AQED_TELEMETRY_ENABLED

#include <chrono>
#include <iterator>
#include <utility>

namespace aqed::telemetry {

Sampler::Sampler(SamplerOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? *options.registry
                                            : MetricsRegistry::Global()) {}

Sampler::~Sampler() { Stop(); }

void Sampler::SampleNowLocked() {
  // Snapshot() takes the registry mutex, never a hot-path lock; the
  // resource probe is one /proc read. Both are safe under mu_ because the
  // worker threads never touch mu_.
  MetricsSnapshot snapshot = registry_.Snapshot();
  TimeSeriesSample sample;
  sample.timestamp_us = snapshot.timestamp_us;
  sample.resources = SampleResourceUsage();
  sample.counters = std::move(snapshot.counters);
  sample.gauges = std::move(snapshot.gauges);
  if (options_.capacity > 0 && ring_.size() >= options_.capacity) {
    ring_.pop_front();
    ++num_dropped_;
  }
  ring_.push_back(std::move(sample));
}

void Sampler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  SampleNowLocked();
  thread_ = std::thread([this] { Loop(); });
}

void Sampler::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    // Flip running_ before releasing the lock so a concurrent Stop() bails
    // out above instead of join()ing the already-moved (non-joinable)
    // thread_; the joinable() guard below is belt and braces.
    running_ = false;
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock(mu_);
  SampleNowLocked();  // final point: the run's end state
}

bool Sampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Sampler::Loop() {
  const auto period =
      std::chrono::milliseconds(options_.period_ms > 0 ? options_.period_ms : 1);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // wait_for over a stop-predicate: a Stop() mid-period wakes the thread
    // immediately instead of costing one trailing period.
    if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
    SampleNowLocked();
  }
}

std::vector<TimeSeriesSample> Sampler::TakeSamples() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimeSeriesSample> out(std::make_move_iterator(ring_.begin()),
                                    std::make_move_iterator(ring_.end()));
  ring_.clear();
  return out;
}

uint64_t Sampler::num_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_dropped_;
}

}  // namespace aqed::telemetry

#endif  // AQED_TELEMETRY_ENABLED
