// Telemetry exporters.
//
// Chrome trace-event JSON: the drained span log serialized as complete
// ("ph":"X") events — load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing and every worker thread gets its own correctly-ordered
// row of nested spans. Timestamps are microseconds from process start on
// the steady clock, so spans from different threads line up.
//
// Metrics JSONL: one JSON object per line, one line per instrument, plus a
// leading snapshot-header line — append-friendly, greppable, and loadable
// with a three-line python loop. ReadMetricsJsonl() round-trips what
// WriteMetricsJsonl() emits (see tests/telemetry_test.cpp).
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace aqed::telemetry {

// Serializes `events` as a Chrome trace: {"traceEvents":[...]}. Events are
// written sorted by (tid, begin_us) — stable rows in viewers that honor
// file order — plus thread_name metadata so Perfetto labels the rows.
void WriteChromeTrace(std::ostream& out, std::span<const TraceEvent> events);

// One snapshot as JSON Lines:
//   {"type":"snapshot","timestamp_us":...,"counters":N,...}
//   {"type":"counter","name":"sat.conflicts","value":123}
//   {"type":"gauge","name":"sched.pool.active","value":0}
//   {"type":"histogram","name":"sched.job_ms","bounds":[...],"counts":[...],
//    "count":N,"sum":S}
void WriteMetricsJsonl(std::ostream& out, const MetricsSnapshot& snapshot);

// Parses WriteMetricsJsonl output back into a snapshot; nullopt on any
// malformed line or a missing header.
std::optional<MetricsSnapshot> ReadMetricsJsonl(std::string_view text);

// File-writing conveniences; false (with no partial file guarantee beyond
// the OS's) when the path cannot be opened.
bool WriteChromeTraceFile(const std::string& path,
                          std::span<const TraceEvent> events);
bool WriteMetricsJsonlFile(const std::string& path,
                           const MetricsSnapshot& snapshot);

}  // namespace aqed::telemetry
