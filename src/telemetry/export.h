// Telemetry exporters.
//
// Chrome trace-event JSON: the drained span log serialized as complete
// ("ph":"X") events — load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing and every worker thread gets its own correctly-ordered
// row of nested spans. Timestamps are microseconds from process start on
// the steady clock, so spans from different threads line up.
//
// Metrics JSONL: one JSON object per line, one line per instrument, plus a
// leading snapshot-header line — append-friendly, greppable, and loadable
// with a three-line python loop. When the session flight recorder ran, the
// instrument lines are followed by a `timeseries` section: one "sample"
// line per flight-recorder sample (registry counters/gauges plus resource
// probes, see telemetry/sampler.h). ReadMetricsLog() round-trips what
// WriteMetricsJsonl() emits (see tests/telemetry_test.cpp).
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"

namespace aqed::telemetry {

// Serializes `events` as a Chrome trace: {"traceEvents":[...]}. Events are
// written sorted by (tid, begin_us) — stable rows in viewers that honor
// file order — plus thread_name metadata so Perfetto labels the rows.
void WriteChromeTrace(std::ostream& out, std::span<const TraceEvent> events);

// One snapshot (plus an optional flight-recorder time series) as JSON Lines:
//   {"type":"snapshot","timestamp_us":...,"counters":N,...,"samples":N}
//   {"type":"counter","name":"sat.conflicts","value":123}
//   {"type":"gauge","name":"sched.pool.active","value":0}
//   {"type":"histogram","name":"sched.job_ms","bounds":[...],"counts":[...],
//    "count":N,"sum":S}
//   {"type":"sample","timestamp_us":...,"rss_kb":...,"peak_rss_kb":...,
//    "user_cpu_us":...,"sys_cpu_us":...,"threads":...,
//    "counters":{"name":v,...},"gauges":{"name":v,...}}
void WriteMetricsJsonl(std::ostream& out, const MetricsSnapshot& snapshot,
                       std::span<const TimeSeriesSample> samples = {});

// Everything one metrics JSONL file holds: the final snapshot plus the
// flight-recorder samples (empty when the sampler did not run).
struct MetricsLog {
  MetricsSnapshot snapshot;
  std::vector<TimeSeriesSample> samples;
};

// Parses WriteMetricsJsonl output back; nullopt on any malformed line or a
// missing header.
std::optional<MetricsLog> ReadMetricsLog(std::string_view text);

// Snapshot-only compatibility wrapper over ReadMetricsLog.
std::optional<MetricsSnapshot> ReadMetricsJsonl(std::string_view text);

// File-writing conveniences; false (with no partial file guarantee beyond
// the OS's) when the path cannot be opened.
bool WriteChromeTraceFile(const std::string& path,
                          std::span<const TraceEvent> events);
bool WriteMetricsJsonlFile(const std::string& path,
                           const MetricsSnapshot& snapshot,
                           std::span<const TimeSeriesSample> samples = {});

}  // namespace aqed::telemetry
