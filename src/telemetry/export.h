// Telemetry exporters.
//
// Chrome trace-event JSON: the drained span log serialized as complete
// ("ph":"X") events — load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing and every worker thread gets its own correctly-ordered
// row of nested spans. Timestamps are microseconds from process start on
// the steady clock, so spans from different threads line up.
//
// Metrics JSONL: one JSON object per line, one line per instrument, plus a
// leading snapshot-header line — append-friendly, greppable, and loadable
// with a three-line python loop. When the session flight recorder ran, the
// instrument lines are followed by a `timeseries` section: one "sample"
// line per flight-recorder sample (registry counters/gauges plus resource
// probes, see telemetry/sampler.h). ReadMetricsLog() round-trips what
// WriteMetricsJsonl() emits (see tests/telemetry_test.cpp).
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"

namespace aqed::telemetry {

// Serializes `events` as a Chrome trace: {"traceEvents":[...]}. Events are
// written sorted by (tid, begin_us) — stable rows in viewers that honor
// file order — plus thread_name metadata so Perfetto labels the rows.
void WriteChromeTrace(std::ostream& out, std::span<const TraceEvent> events);

// One snapshot (plus an optional flight-recorder time series) as JSON Lines:
//   {"type":"snapshot","timestamp_us":...,"counters":N,...,"samples":N}
//   {"type":"counter","name":"sat.conflicts","value":123}
//   {"type":"gauge","name":"sched.pool.active","value":0}
//   {"type":"histogram","name":"sched.job_ms","bounds":[...],"counts":[...],
//    "count":N,"sum":S}
//   {"type":"sample","timestamp_us":...,"rss_kb":...,"peak_rss_kb":...,
//    "user_cpu_us":...,"sys_cpu_us":...,"threads":...,
//    "counters":{"name":v,...},"gauges":{"name":v,...}}
void WriteMetricsJsonl(std::ostream& out, const MetricsSnapshot& snapshot,
                       std::span<const TimeSeriesSample> samples = {});

// Everything one metrics JSONL file holds: the final snapshot plus the
// flight-recorder samples (empty when the sampler did not run).
struct MetricsLog {
  MetricsSnapshot snapshot;
  std::vector<TimeSeriesSample> samples;
};

// Parses WriteMetricsJsonl output back; nullopt on any malformed line or a
// missing header.
std::optional<MetricsLog> ReadMetricsLog(std::string_view text);

// Snapshot-only compatibility wrapper over ReadMetricsLog.
std::optional<MetricsSnapshot> ReadMetricsJsonl(std::string_view text);

// Prometheus text exposition (format version 0.0.4) of a snapshot:
//
//   # TYPE service_requests counter
//   service_requests 12
//   # TYPE sched_job_ms histogram
//   sched_job_ms_bucket{le="0.1"} 5
//   ...
//   sched_job_ms_bucket{le="+Inf"} 42
//   sched_job_ms_sum 1234.5
//   sched_job_ms_count 42
//
// Metric names are the registry names with every character outside
// [a-zA-Z0-9_:] mapped to '_' ("service.cache.hits" scrapes as
// service_cache_hits); no _total suffix is appended, so a name round-trips
// to its registry spelling by reversing the mapping. Counter values are
// printed as decimal integers — exact for the full uint64 range, unlike a
// JSON double — and histogram buckets are cumulative with the mandatory
// +Inf bucket, so `sum(..._bucket{le="+Inf"}) == ..._count` holds.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

// RenderPrometheus written via tmp+fsync+rename (a scraper must never see
// a torn exposition); false when the write fails. Failpoint
// "telemetry.export" applies, like the other file exporters.
bool WritePrometheusFile(const std::string& path,
                         const MetricsSnapshot& snapshot);

// File-writing conveniences; false (with no partial file guarantee beyond
// the OS's) when the path cannot be opened.
bool WriteChromeTraceFile(const std::string& path,
                          std::span<const TraceEvent> events);
bool WriteMetricsJsonlFile(const std::string& path,
                           const MetricsSnapshot& snapshot,
                           std::span<const TimeSeriesSample> samples = {});

}  // namespace aqed::telemetry
