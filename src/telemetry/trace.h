// Span event collection: per-thread buffers draining into one global log.
//
// Record() appends to the calling thread's own buffer under the buffer's
// own (uncontended) mutex — there is no global lock on the hot path. A
// buffer that grows past its flush threshold is emptied into the central
// drained list by its owning thread; Drain() sweeps the central list plus
// every live thread buffer. Buffers are owned by shared_ptr from both the
// thread_local slot and the tracer's registry, so events recorded by a
// worker thread survive the thread's death (verification sessions build a
// fresh pool per batch) and are picked up by the next Drain().
//
// Nothing is ever dropped: the "ring" wraps into the central log, not over
// its own tail — a telemetry run that silently loses spans would make the
// per-phase accounting it exists for untrustworthy.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace aqed::telemetry {

// One completed span, Chrome trace-event shaped ("ph":"X").
struct TraceEvent {
  std::string name;
  uint64_t begin_us = 0;  // NowMicros() at span construction
  uint64_t dur_us = 0;
  uint32_t tid = 0;       // telemetry::ThreadId() of the recording thread
  // CurrentTraceId() of the recording thread (0 = untraced). Exported into
  // the Chrome-trace args as "trace_id":"<16 hex>" so Perfetto queries can
  // pull every span one server request produced.
  uint64_t trace_id = 0;
  std::array<Arg, kMaxSpanArgs> args{};
  uint8_t num_args = 0;
};

class Tracer {
 public:
  // The process-wide tracer every span records into. Tests may build their
  // own Tracer to record/drain in isolation.
  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Appends to the calling thread's buffer (registered on first use).
  void Record(TraceEvent event);

  // Records an already-timed complete event — for durations whose start
  // predates the recording scope, e.g. a job's queue wait timed from its
  // submission timestamp.
  void RecordComplete(std::string name, uint64_t begin_us, uint64_t end_us,
                      std::initializer_list<Arg> args = {});

  // Moves every recorded event out (central log + all thread buffers), in
  // no particular order. Concurrent recorders keep working; their
  // in-flight events land in a later Drain().
  std::vector<TraceEvent> Drain();

  // Events recorded since construction (or the last Clear), including
  // already-drained ones. Cheap enough for tests only.
  size_t num_recorded();

  void Clear();

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
  };
  // A thread's buffer for this tracer, registering it on first use.
  ThreadBuffer& BufferForThisThread();
  void FlushLocked(ThreadBuffer& buffer);  // caller holds buffer.mu

  // Flush threshold: one buffer's worth of events moved centrally at a
  // time, so per-thread memory stays bounded without ever dropping events.
  static constexpr size_t kFlushThreshold = 4096;

  std::mutex mu_;  // guards buffers_ / drained_ / num_recorded_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<TraceEvent> drained_;
  size_t num_recorded_ = 0;
};

}  // namespace aqed::telemetry
