#include "telemetry/export.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "support/failpoint.h"
#include "support/io.h"
#include "telemetry/json.h"

namespace aqed::telemetry {

namespace {

void WriteJsonString(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Doubles printed with %.17g survive the round-trip through strtod.
void WriteJsonDouble(std::ostream& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

void WriteEvent(std::ostream& out, const TraceEvent& event) {
  out << "{\"name\":";
  WriteJsonString(out, event.name);
  out << ",\"cat\":\"aqed\",\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid
      << ",\"ts\":" << event.begin_us << ",\"dur\":" << event.dur_us;
  if (event.num_args > 0 || event.trace_id != 0) {
    out << ",\"args\":{";
    bool first = true;
    if (event.trace_id != 0) {
      // As a 16-hex string, not a JSON number: ids above 2^53 must survive
      // every double-based JSON reader between here and Perfetto.
      char hex[20];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(event.trace_id));
      out << "\"trace_id\":\"" << hex << '"';
      first = false;
    }
    for (uint8_t i = 0; i < event.num_args; ++i) {
      if (!first) out << ',';
      first = false;
      WriteJsonString(out, event.args[i].key);
      out << ':' << event.args[i].value;
    }
    out << '}';
  }
  out << '}';
}

}  // namespace

void WriteChromeTrace(std::ostream& out, std::span<const TraceEvent> events) {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const TraceEvent& event : events) sorted.push_back(&event);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->tid != b->tid ? a->tid < b->tid
                                             : a->begin_us < b->begin_us;
                   });

  out << "{\"traceEvents\":[";
  bool first = true;
  std::set<uint32_t> tids;
  for (const TraceEvent* event : sorted) tids.insert(event->tid);
  for (const uint32_t tid : tids) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"worker-" << tid << "\"}}";
  }
  for (const TraceEvent* event : sorted) {
    if (!first) out << ",\n";
    first = false;
    WriteEvent(out, *event);
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

namespace {

// {"name":value,...} over a counter/gauge value list.
template <typename Values>
void WriteNameValueObject(std::ostream& out, const Values& values) {
  out << '{';
  bool first = true;
  for (const auto& value : values) {
    if (!first) out << ',';
    first = false;
    WriteJsonString(out, value.name);
    out << ':' << value.value;
  }
  out << '}';
}

void WriteSample(std::ostream& out, const TimeSeriesSample& sample) {
  out << "{\"type\":\"sample\",\"timestamp_us\":" << sample.timestamp_us
      << ",\"rss_kb\":" << sample.resources.rss_kb
      << ",\"peak_rss_kb\":" << sample.resources.peak_rss_kb
      << ",\"user_cpu_us\":" << sample.resources.user_cpu_us
      << ",\"sys_cpu_us\":" << sample.resources.sys_cpu_us
      << ",\"threads\":" << sample.resources.num_threads << ",\"counters\":";
  WriteNameValueObject(out, sample.counters);
  out << ",\"gauges\":";
  WriteNameValueObject(out, sample.gauges);
  out << "}\n";
}

}  // namespace

void WriteMetricsJsonl(std::ostream& out, const MetricsSnapshot& snapshot,
                       std::span<const TimeSeriesSample> samples) {
  out << "{\"type\":\"snapshot\",\"timestamp_us\":" << snapshot.timestamp_us
      << ",\"counters\":" << snapshot.counters.size()
      << ",\"gauges\":" << snapshot.gauges.size()
      << ",\"histograms\":" << snapshot.histograms.size()
      << ",\"samples\":" << samples.size() << "}\n";
  for (const auto& counter : snapshot.counters) {
    out << "{\"type\":\"counter\",\"name\":";
    WriteJsonString(out, counter.name);
    out << ",\"value\":" << counter.value << "}\n";
  }
  for (const auto& gauge : snapshot.gauges) {
    out << "{\"type\":\"gauge\",\"name\":";
    WriteJsonString(out, gauge.name);
    out << ",\"value\":" << gauge.value << "}\n";
  }
  for (const auto& histogram : snapshot.histograms) {
    out << "{\"type\":\"histogram\",\"name\":";
    WriteJsonString(out, histogram.name);
    out << ",\"bounds\":[";
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i > 0) out << ',';
      WriteJsonDouble(out, histogram.bounds[i]);
    }
    out << "],\"counts\":[";
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out << ',';
      out << histogram.counts[i];
    }
    out << "],\"count\":" << histogram.count << ",\"sum\":";
    WriteJsonDouble(out, histogram.sum);
    out << ",\"p50\":";
    WriteJsonDouble(out, histogram.p50);
    out << ",\"p95\":";
    WriteJsonDouble(out, histogram.p95);
    out << ",\"p99\":";
    WriteJsonDouble(out, histogram.p99);
    out << "}\n";
  }
  for (const TimeSeriesSample& sample : samples) WriteSample(out, sample);
}

std::optional<MetricsLog> ReadMetricsLog(std::string_view text) {
  MetricsLog log;
  MetricsSnapshot& snapshot = log.snapshot;
  bool saw_header = false;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;

    const std::optional<Json> json = ParseJson(line);
    if (!json || !json->is_object()) return std::nullopt;
    const Json* type = json->Find("type");
    if (!type || !type->is_string()) return std::nullopt;

    if (type->AsString() == "snapshot") {
      const Json* timestamp = json->Find("timestamp_us");
      if (!timestamp || !timestamp->is_number()) return std::nullopt;
      snapshot.timestamp_us = static_cast<uint64_t>(timestamp->AsInt());
      saw_header = true;
      continue;
    }

    if (type->AsString() == "sample") {
      TimeSeriesSample sample;
      const Json* timestamp = json->Find("timestamp_us");
      const Json* counters = json->Find("counters");
      const Json* gauges = json->Find("gauges");
      if (!timestamp || !timestamp->is_number() || !counters ||
          !counters->is_object() || !gauges || !gauges->is_object()) {
        return std::nullopt;
      }
      sample.timestamp_us = static_cast<uint64_t>(timestamp->AsInt());
      const auto read_int = [&](const char* key, int64_t& out_value) {
        const Json* value = json->Find(key);
        if (value && value->is_number()) out_value = value->AsInt();
      };
      read_int("rss_kb", sample.resources.rss_kb);
      read_int("peak_rss_kb", sample.resources.peak_rss_kb);
      read_int("user_cpu_us", sample.resources.user_cpu_us);
      read_int("sys_cpu_us", sample.resources.sys_cpu_us);
      read_int("threads", sample.resources.num_threads);
      for (const auto& [key, value] : counters->AsObject()) {
        if (!value.is_number()) return std::nullopt;
        // AsInt, not AsNumber: counter values are uint64 and must survive
        // the round trip exactly even above 2^53.
        sample.counters.push_back(
            {key, static_cast<uint64_t>(value.AsInt())});
      }
      for (const auto& [key, value] : gauges->AsObject()) {
        if (!value.is_number()) return std::nullopt;
        sample.gauges.push_back({key, value.AsInt()});
      }
      log.samples.push_back(std::move(sample));
      continue;
    }

    const Json* name = json->Find("name");
    if (!name || !name->is_string()) return std::nullopt;
    if (type->AsString() == "counter") {
      const Json* value = json->Find("value");
      if (!value || !value->is_number()) return std::nullopt;
      snapshot.counters.push_back(
          {name->AsString(), static_cast<uint64_t>(value->AsInt())});
    } else if (type->AsString() == "gauge") {
      const Json* value = json->Find("value");
      if (!value || !value->is_number()) return std::nullopt;
      snapshot.gauges.push_back({name->AsString(), value->AsInt()});
    } else if (type->AsString() == "histogram") {
      const Json* bounds = json->Find("bounds");
      const Json* counts = json->Find("counts");
      const Json* count = json->Find("count");
      const Json* sum = json->Find("sum");
      if (!bounds || !bounds->is_array() || !counts || !counts->is_array() ||
          !count || !count->is_number() || !sum || !sum->is_number()) {
        return std::nullopt;
      }
      MetricsSnapshot::HistogramValue value;
      value.name = name->AsString();
      for (const Json& bound : bounds->AsArray()) {
        if (!bound.is_number()) return std::nullopt;
        value.bounds.push_back(bound.AsNumber());
      }
      for (const Json& bucket : counts->AsArray()) {
        if (!bucket.is_number()) return std::nullopt;
        value.counts.push_back(static_cast<uint64_t>(bucket.AsInt()));
      }
      value.count = static_cast<uint64_t>(count->AsInt());
      value.sum = sum->AsNumber();
      // Quantiles: optional for files written before they existed — when
      // absent, derive them from the buckets so every reader sees them.
      const auto quantile = [&](const char* key, double q) {
        const Json* field = json->Find(key);
        return field != nullptr && field->is_number()
                   ? field->AsNumber()
                   : HistogramQuantile(value.bounds, value.counts, q);
      };
      value.p50 = quantile("p50", 0.50);
      value.p95 = quantile("p95", 0.95);
      value.p99 = quantile("p99", 0.99);
      snapshot.histograms.push_back(std::move(value));
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) return std::nullopt;
  return log;
}

std::optional<MetricsSnapshot> ReadMetricsJsonl(std::string_view text) {
  std::optional<MetricsLog> log = ReadMetricsLog(text);
  if (!log) return std::nullopt;
  return std::move(log->snapshot);
}

namespace {

// Registry names use dots; Prometheus names allow [a-zA-Z0-9_:]. The
// mapping is character-wise so it is trivially reversible for our names
// (none contain '_' before mangling except as '_' already).
std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

// `le` labels use %.17g so a bound like 0.1 round-trips through strtod
// exactly, matching the JSONL exporter's double policy.
void AppendPrometheusDouble(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[48];
  for (const auto& counter : snapshot.counters) {
    const std::string name = PrometheusName(counter.name);
    out += "# TYPE " + name + " counter\n";
    out += name;
    // Decimal integer, not a double: exact for the full uint64 range.
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(counter.value));
    out += buf;
  }
  for (const auto& gauge : snapshot.gauges) {
    const std::string name = PrometheusName(gauge.name);
    out += "# TYPE " + name + " gauge\n";
    out += name;
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(gauge.value));
    out += buf;
  }
  for (const auto& histogram : snapshot.histograms) {
    const std::string name = PrometheusName(histogram.name);
    out += "# TYPE " + name + " histogram\n";
    // Buckets are cumulative on the wire (ours are per-bucket), ending in
    // the mandatory +Inf bucket that equals _count.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      cumulative += histogram.counts[i];
      out += name + "_bucket{le=\"";
      if (i < histogram.bounds.size()) {
        AppendPrometheusDouble(out, histogram.bounds[i]);
      } else {
        out += "+Inf";
      }
      std::snprintf(buf, sizeof(buf), "\"} %llu\n",
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    out += name + "_sum ";
    AppendPrometheusDouble(out, histogram.sum);
    out += '\n';
    out += name + "_count ";
    std::snprintf(buf, sizeof(buf), "%llu\n",
                  static_cast<unsigned long long>(histogram.count));
    out += buf;
  }
  return out;
}

bool WritePrometheusFile(const std::string& path,
                         const MetricsSnapshot& snapshot) {
  if (AQED_FAILPOINT("telemetry.export")) return false;
  return support::WriteFileDurable(path, RenderPrometheus(snapshot)).ok();
}

bool WriteChromeTraceFile(const std::string& path,
                          std::span<const TraceEvent> events) {
  // Chaos site: simulated export failure, so callers' error surfacing is
  // testable without a read-only filesystem.
  if (AQED_FAILPOINT("telemetry.export")) return false;
  // Serialize in memory, then tmp+fsync+rename: a crash (or full disk)
  // mid-export leaves the previous trace intact, never a truncated JSON.
  std::ostringstream out;
  WriteChromeTrace(out, events);
  if (!out) return false;
  return support::WriteFileDurable(path, out.view()).ok();
}

bool WriteMetricsJsonlFile(const std::string& path,
                           const MetricsSnapshot& snapshot,
                           std::span<const TimeSeriesSample> samples) {
  if (AQED_FAILPOINT("telemetry.export")) return false;
  std::ostringstream out;
  WriteMetricsJsonl(out, snapshot, samples);
  if (!out) return false;
  return support::WriteFileDurable(path, out.view()).ok();
}

}  // namespace aqed::telemetry
