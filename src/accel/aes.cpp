#include "accel/aes.h"

#include <string>
#include <vector>

#include "accel/aes_internal.h"
#include "aqed/monitor_util.h"
#include "support/status.h"

namespace aqed::accel {

using core::LatchWhen;
using core::Reg;
using ir::Context;
using ir::NodeRef;
using ir::Sort;

namespace {

constexpr uint32_t kBlockWidth = 16;
constexpr uint32_t kQueueSlots = 2;

// 4-bit S-box as a mux chain.
NodeRef SboxIR(Context& ctx, NodeRef nibble) {
  NodeRef result = ctx.Const(4, aes_internal::kSbox[0]);
  for (uint64_t v = 1; v < 16; ++v) {
    result = ctx.Ite(ctx.Eq(nibble, ctx.Const(4, v)),
                     ctx.Const(4, aes_internal::kSbox[v]), result);
  }
  return result;
}

NodeRef Nibble(Context& ctx, NodeRef word, uint32_t index) {
  return ctx.Extract(word, 4 * index + 3, 4 * index);
}

NodeRef RotL16IR(Context& ctx, NodeRef word, uint32_t amount) {
  return ctx.Concat(ctx.Extract(word, 15 - amount, 0),
                    ctx.Extract(word, 15, 16 - amount));
}

// One encryption round (matches aes_internal::RoundFn).
NodeRef RoundIR(Context& ctx, NodeRef state, NodeRef round_key) {
  std::array<NodeRef, 4> sub{};
  for (uint32_t i = 0; i < 4; ++i) sub[i] = SboxIR(ctx, Nibble(ctx, state, i));
  std::array<NodeRef, 4> shifted{};
  for (uint32_t i = 0; i < 4; ++i) shifted[i] = sub[(i + 1) % 4];
  std::array<NodeRef, 4> mixed{};
  for (uint32_t i = 0; i < 4; ++i) {
    mixed[i] = ctx.Xor(shifted[i], shifted[(i + 1) % 4]);
  }
  const NodeRef packed = ctx.Concat(
      ctx.Concat(mixed[3], mixed[2]), ctx.Concat(mixed[1], mixed[0]));
  return ctx.Xor(packed, round_key);
}

// Key-schedule step for the (1-based) round held in `round_plus_1`.
NodeRef KeyStepIR(Context& ctx, NodeRef key, NodeRef round_plus_1,
                  uint32_t max_rounds) {
  NodeRef rcon = ctx.Const(kBlockWidth, aes_internal::Rcon(1));
  for (uint32_t r = 2; r <= max_rounds; ++r) {
    rcon = ctx.Ite(ctx.Eq(round_plus_1, ctx.Const(3, r)),
                   ctx.Const(kBlockWidth, aes_internal::Rcon(r)), rcon);
  }
  const NodeRef rotated = RotL16IR(ctx, key, 5);
  const NodeRef sboxed =
      ctx.Zext(SboxIR(ctx, Nibble(ctx, key, 0)), kBlockWidth);
  return ctx.Xor(ctx.Xor(rotated, sboxed), rcon);
}

}  // namespace

const char* AesBugName(AesBug bug) {
  switch (bug) {
    case AesBug::kNone: return "none";
    case AesBug::kV1KeyScheduleStale: return "aes_v1_key_schedule_stale";
    case AesBug::kV2QueueOverflow: return "aes_v2_queue_overflow";
    case AesBug::kV3KeySampleLate: return "aes_v3_key_sample_late";
    case AesBug::kV4RoundSkip: return "aes_v4_round_skip";
  }
  return "?";
}

AesDesign BuildAes(ir::TransitionSystem& ts, const AesConfig& config) {
  AQED_CHECK(config.rounds >= 1 && config.rounds <= 7,
             "AES rounds out of range");
  AQED_CHECK(config.batch_size >= 1 && config.batch_size <= 4,
             "AES batch size out of range");
  Context& ctx = ts.ctx();
  const uint32_t batch = config.batch_size;
  AesDesign design;

  // --- host-facing inputs -----------------------------------------------
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  std::vector<NodeRef> in_block(batch);
  for (uint32_t b = 0; b < batch; ++b) {
    in_block[b] =
        ts.AddInput("in_block" + std::to_string(b), Sort::BitVec(kBlockWidth));
  }
  const NodeRef key = ts.AddInput("key", Sort::BitVec(kBlockWidth));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  design.key = key;

  // --- input queue: two slots of (batch blocks, key) ------------------------
  std::vector<std::vector<NodeRef>> q_block(kQueueSlots);
  std::vector<NodeRef> q_key(kQueueSlots);
  for (uint32_t s = 0; s < kQueueSlots; ++s) {
    q_block[s].resize(batch);
    for (uint32_t b = 0; b < batch; ++b) {
      q_block[s][b] = Reg(ts,
                          "q" + std::to_string(s) + ".block" +
                              std::to_string(b),
                          kBlockWidth, 0);
    }
    q_key[s] = Reg(ts, "q" + std::to_string(s) + ".key", kBlockWidth, 0);
  }
  const NodeRef q_wr = Reg(ts, "q.wr", 1, 0);
  const NodeRef q_rd = Reg(ts, "q.rd", 1, 0);
  const NodeRef q_cnt = Reg(ts, "q.cnt", 2, 0);

  // v2 (incorrect FIFO sizing): accepts a transaction while full, and the
  // write pointer overruns the oldest pending slot.
  const NodeRef space =
      config.bug == AesBug::kV2QueueOverflow
          ? ctx.Ule(q_cnt, ctx.Const(2, kQueueSlots))
          : ctx.Ult(q_cnt, ctx.Const(2, kQueueSlots));
  const NodeRef in_ready = space;
  const NodeRef capture = ctx.And(in_valid, in_ready);

  for (uint32_t s = 0; s < kQueueSlots; ++s) {
    const NodeRef write_here =
        ctx.And(capture, ctx.Eq(q_wr, ctx.Const(1, s)));
    for (uint32_t b = 0; b < batch; ++b) {
      LatchWhen(ts, q_block[s][b], write_here, in_block[b]);
    }
    LatchWhen(ts, q_key[s], write_here, key);
  }
  LatchWhen(ts, q_wr, capture, ctx.Not(q_wr));

  // --- encryption engine ---------------------------------------------------
  const NodeRef busy = Reg(ts, "eng.busy", 1, 0);
  const NodeRef round = Reg(ts, "eng.round", 3, 0);
  const NodeRef kreg = Reg(ts, "eng.kreg", kBlockWidth, 0);
  std::vector<NodeRef> state(batch), out_reg(batch);
  for (uint32_t b = 0; b < batch; ++b) {
    state[b] = Reg(ts, "eng.state" + std::to_string(b), kBlockWidth, 0);
    out_reg[b] = Reg(ts, "eng.out" + std::to_string(b), kBlockWidth, 0);
  }
  const NodeRef out_pending = Reg(ts, "eng.out_pending", 1, 0);

  const NodeRef out_valid = out_pending;
  const NodeRef drain = ctx.And(out_valid, host_ready);
  const NodeRef slot_free = ctx.Or(ctx.Not(out_pending), drain);

  const NodeRef q_non_empty = ctx.Ugt(q_cnt, ctx.Const(2, 0));
  const NodeRef rounds_done =
      ctx.Eq(round, ctx.Const(3, config.rounds));
  const NodeRef finish = ctx.And(ctx.And(busy, rounds_done), slot_free);
  const NodeRef issue =
      ctx.And(ctx.Or(ctx.Not(busy), finish), q_non_empty);
  const NodeRef running = ctx.And(busy, ctx.Not(rounds_done));

  // Queue consume.
  NodeRef q_cnt_next = q_cnt;
  q_cnt_next = ctx.Ite(capture, ctx.Add(q_cnt_next, ctx.Const(2, 1)),
                       q_cnt_next);
  q_cnt_next =
      ctx.Ite(issue, ctx.Sub(q_cnt_next, ctx.Const(2, 1)), q_cnt_next);
  ts.SetNext(q_cnt, q_cnt_next);
  LatchWhen(ts, q_rd, issue, ctx.Not(q_rd));

  // The key a transaction is encrypted under. Correct behaviour uses the
  // key queued with the transaction; v3 samples the host's *live* key at
  // issue time instead.
  const NodeRef queued_key =
      ctx.Ite(q_rd, q_key[1], q_key[0]);
  const NodeRef issue_key =
      config.bug == AesBug::kV3KeySampleLate ? key : queued_key;

  // Round-key register: reloaded at issue (v1 leaves the previous
  // transaction's evolved key in place), stepped every round.
  const NodeRef round_plus_1 = ctx.Add(round, ctx.Const(3, 1));
  const NodeRef key_stepped = KeyStepIR(ctx, kreg, round_plus_1,
                                        config.rounds);
  NodeRef kreg_next = ctx.Ite(running, key_stepped, kreg);
  if (config.bug != AesBug::kV1KeyScheduleStale) {
    kreg_next = ctx.Ite(issue, issue_key, kreg_next);
  }
  ts.SetNext(kreg, kreg_next);

  // Data path: initial whitening at issue, one round per cycle after.
  for (uint32_t b = 0; b < batch; ++b) {
    const NodeRef queued_block =
        ctx.Ite(q_rd, q_block[1][b], q_block[0][b]);
    const NodeRef whitened = ctx.Xor(queued_block, issue_key);
    const NodeRef rounded = RoundIR(ctx, state[b], key_stepped);
    NodeRef state_next = ctx.Ite(running, rounded, state[b]);
    state_next = ctx.Ite(issue, whitened, state_next);
    ts.SetNext(state[b], state_next);
    LatchWhen(ts, out_reg[b], finish, state[b]);
  }

  // Round counter. v4: when an issue coincides with a finish, the counter
  // erroneously starts at 1, skipping the first round of the new block.
  NodeRef issue_round = ctx.Const(3, 0);
  if (config.bug == AesBug::kV4RoundSkip) {
    issue_round = ctx.Ite(finish, ctx.Const(3, 1), ctx.Const(3, 0));
  }
  NodeRef round_next = ctx.Ite(
      running, ctx.Add(round, ctx.Const(3, 1)), round);
  round_next = ctx.Ite(issue, issue_round, round_next);
  ts.SetNext(round, round_next);

  ts.SetNext(busy, ctx.Ite(issue, ctx.True(),
                           ctx.Ite(finish, ctx.False(), busy)));
  ts.SetNext(out_pending, ctx.Ite(finish, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  // --- interface ---------------------------------------------------------
  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  for (uint32_t b = 0; b < batch; ++b) {
    design.acc.data_elems.push_back({in_block[b]});
    design.acc.out_elems.push_back({out_reg[b]});
  }
  design.acc.shared_context = {key};
  ts.AddOutput("out0", out_reg[0]);
  return design;
}

core::SpecFn AesSpec(const AesConfig& config) {
  const uint32_t rounds = config.rounds;
  return [rounds](Context& ctx, const std::vector<NodeRef>& in) {
    // in[0] = block, in[1] = shared-context key.
    NodeRef state = ctx.Xor(in[0], in[1]);
    NodeRef key = in[1];
    for (uint32_t r = 1; r <= rounds; ++r) {
      key = ctx.Xor(
          ctx.Xor(RotL16IR(ctx, key, 5),
                  ctx.Zext(SboxIR(ctx, Nibble(ctx, key, 0)), kBlockWidth)),
          ctx.Const(kBlockWidth, aes_internal::Rcon(r)));
      state = RoundIR(ctx, state, key);
    }
    return std::vector<NodeRef>{state};
  };
}

uint32_t AesResponseBound(const AesConfig& config) {
  // Two queue slots ahead of the tracked transaction, each taking
  // rounds+2 cycles, plus drain handshakes.
  return 3 * (config.rounds + 2) + 6;
}

}  // namespace aqed::accel
