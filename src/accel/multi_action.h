// Multi-action accelerator exercising the full Def. 1 model.
//
// The formal accelerator model has an action set A: each transaction selects
// an operation as well as data. The case-study accelerators are
// fixed-function (|A| = 1); this design is a small ALU-style offload engine
// with four actions (ADD, SUB, XORSHIFT, SCALE) over two operands. The
// action word is simply part of the transaction's data element — functional
// consistency then requires equality of *action and* data between the
// original and the duplicate, exactly as ad(in) does in Def. 2.
//
// Two buggy variants:
//   * kOpcodeLatchGlitch: the opcode register is only reloaded when the
//     previous operation differed (a bogus "optimization"); after a
//     back-to-back pair of transactions with equal operands but different
//     actions, the second executes under the first's opcode — FC catches it
//     because the duplicate's action matches but its output does not.
//   * kScaleSticky: the SCALE action leaves a stale shift amount behind
//     that corrupts the *next* XORSHIFT — a cross-action state leak (FC).
#pragma once

#include <cstdint>

#include "aqed/interface.h"
#include "aqed/sac_instrument.h"
#include "harness/random_testbench.h"
#include "ir/transition_system.h"

namespace aqed::accel {

enum class AluAction : uint64_t {
  kAdd = 0,
  kSub = 1,
  kXorShift = 2,
  kScale = 3,
};

enum class AluBug {
  kNone,
  kOpcodeLatchGlitch,
  kScaleSticky,
};

const char* AluBugName(AluBug bug);

struct AluConfig {
  AluBug bug = AluBug::kNone;
};

struct AluDesign {
  core::AcceleratorInterface acc;
};

AluDesign BuildAlu(ir::TransitionSystem& ts, const AluConfig& config);

// Golden result of one (action, a, b) transaction (8-bit datapath).
uint64_t AluGoldenOp(uint64_t action, uint64_t a, uint64_t b);
harness::GoldenFn AluGolden();
core::SpecFn AluSpec();

uint32_t AluResponseBound();

}  // namespace aqed::accel
