#include "accel/widepipe.h"

#include <string>
#include <vector>

#include "aqed/monitor_util.h"
#include "support/status.h"

namespace aqed::accel {

using core::Reg;
using ir::Context;
using ir::NodeRef;
using ir::Sort;

namespace {

// Lane-varying (stage-invariant) mixing constants. Stage-invariance is
// load-bearing: it is what makes the clean stages isomorphic fragments, so
// the decomposed session collapses them to one solve.
uint64_t RoundConst(uint32_t lane, uint32_t width) {
  return (0x9E3779B97F4A7C15ull >> (7 * (lane % 8))) &
         ((width >= 64) ? ~0ull : ((1ull << width) - 1));
}

uint64_t KeyConst(uint32_t lane, uint32_t width) {
  const uint64_t c = 0xC2B2AE3D27D4EB4Full >> (5 * (lane % 8));
  // The multiplier must be odd so t*C2 never collapses to a shift.
  return (c | 1) & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
}

std::string StageValid(uint32_t stage) {
  return "s" + std::to_string(stage) + ".valid";
}

std::string StageReg(uint32_t stage, uint32_t lane) {
  return "s" + std::to_string(stage) + ".r" + std::to_string(lane);
}

// out[l] = sbox(prev[l]) + prev[(l+1) % lanes], with
// sbox(x) = ((t*t) >> 3) ^ (t * key), t = x ^ round_const.
NodeRef LaneFn(Context& ctx, const std::vector<NodeRef>& prev, uint32_t lane,
               uint32_t width) {
  const uint32_t lanes = static_cast<uint32_t>(prev.size());
  const NodeRef t =
      ctx.Xor(prev[lane], ctx.Const(width, RoundConst(lane, width)));
  const NodeRef sq = ctx.Lshr(ctx.Mul(t, t), ctx.Const(width, 3));
  const NodeRef keyed = ctx.Mul(t, ctx.Const(width, KeyConst(lane, width)));
  const NodeRef sbox = ctx.Xor(sq, keyed);
  return ctx.Add(sbox, prev[(lane + 1) % lanes]);
}

}  // namespace

WidePipeDesign BuildWidePipe(ir::TransitionSystem& ts,
                             const WidePipeConfig& config) {
  AQED_CHECK(config.lanes >= 2 && config.stages >= 1 && config.width >= 4,
             "widepipe: degenerate configuration");
  Context& ctx = ts.ctx();

  // Host inputs, valid first — mirroring the per-stage register creation
  // order (valid, then lanes) so stage-0's fragment registers its free
  // leaves in the same ordinal order as a cut stage's.
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  std::vector<NodeRef> in_data;
  for (uint32_t lane = 0; lane < config.lanes; ++lane) {
    in_data.push_back(ts.AddInput("in" + std::to_string(lane),
                                  Sort::BitVec(config.width)));
  }
  // Nameable constant true: the decomposition declares every fragment's
  // in_ready / host_ready against this (the pipe has no backpressure).
  ts.AddOutput("one", ctx.True());

  NodeRef prev_valid = in_valid;
  std::vector<NodeRef> prev = in_data;
  for (uint32_t stage = 0; stage < config.stages; ++stage) {
    const NodeRef valid = Reg(ts, StageValid(stage), 1, 0);
    std::vector<NodeRef> regs;
    for (uint32_t lane = 0; lane < config.lanes; ++lane) {
      regs.push_back(Reg(ts, StageReg(stage, lane), config.width, 0));
    }

    std::vector<NodeRef> out;
    for (uint32_t lane = 0; lane < config.lanes; ++lane) {
      out.push_back(LaneFn(ctx, prev, lane, config.width));
    }

    if (config.bug_stage == static_cast<int32_t>(stage)) {
      // Tailgate bug: remember the previous accepted word's lane 0 and
      // whether the last cycle carried a valid word; a back-to-back word
      // gets its lane-0 result XORed with that stale shadow.
      const NodeRef shadow =
          Reg(ts, "s" + std::to_string(stage) + ".shadow", config.width, 0);
      const NodeRef b2b = Reg(ts, "s" + std::to_string(stage) + ".b2b", 1, 0);
      ts.SetNext(shadow, ctx.Ite(prev_valid, prev[0], shadow));
      ts.SetNext(b2b, prev_valid);
      out[0] = ctx.Ite(b2b, ctx.Xor(out[0], shadow), out[0]);
    }

    ts.SetNext(valid, prev_valid);
    for (uint32_t lane = 0; lane < config.lanes; ++lane) {
      ts.SetNext(regs[lane], ctx.Ite(prev_valid, out[lane], regs[lane]));
    }
    prev_valid = valid;
    prev = regs;
  }

  WidePipeDesign design;
  design.acc.in_valid = in_valid;
  design.acc.in_ready = ctx.True();
  design.acc.host_ready = ctx.True();
  design.acc.out_valid = prev_valid;
  design.acc.data_elems = {in_data};
  design.acc.out_elems = {prev};
  return design;
}

harness::GoldenFn WidePipeGolden(const WidePipeConfig& config) {
  return [config](const std::vector<uint64_t>& in,
                  const std::vector<uint64_t>&) {
    const uint64_t mask =
        config.width >= 64 ? ~0ull : ((1ull << config.width) - 1);
    std::vector<uint64_t> words = in;
    for (uint32_t stage = 0; stage < config.stages; ++stage) {
      std::vector<uint64_t> next(words.size());
      for (uint32_t lane = 0; lane < config.lanes; ++lane) {
        const uint64_t t =
            (words[lane] ^ RoundConst(lane, config.width)) & mask;
        const uint64_t sq = ((t * t) & mask) >> 3;
        const uint64_t keyed = (t * KeyConst(lane, config.width)) & mask;
        next[lane] =
            ((sq ^ keyed) + words[(lane + 1) % config.lanes]) & mask;
      }
      words = std::move(next);
    }
    return words;
  };
}

decomp::Decomposition WidePipeDecomposition(const WidePipeConfig& config) {
  decomp::Decomposition decomposition(
      "widepipe", [config](ir::TransitionSystem& ts) {
        return BuildWidePipe(ts, config).acc;
      });
  for (uint32_t stage = 0; stage < config.stages; ++stage) {
    decomp::SubAccelerator sub("stage" + std::to_string(stage));
    std::vector<std::string> data;
    if (stage == 0) {
      sub.WithInValid("in_valid");
      for (uint32_t lane = 0; lane < config.lanes; ++lane) {
        data.push_back("in" + std::to_string(lane));
      }
    } else {
      // Cut at the previous stage's registers: this fragment sees a free
      // valid bit and free data words in their place.
      sub.Cut(StageValid(stage - 1));
      sub.WithInValid(StageValid(stage - 1));
      for (uint32_t lane = 0; lane < config.lanes; ++lane) {
        sub.Cut(StageReg(stage - 1, lane));
        data.push_back(StageReg(stage - 1, lane));
      }
    }
    std::vector<std::string> out;
    for (uint32_t lane = 0; lane < config.lanes; ++lane) {
      out.push_back(StageReg(stage, lane));
    }
    sub.WithDataElem(std::move(data))
        .WithOutElem(std::move(out))
        .WithInReady("one")
        .WithHostReady("one")
        .WithOutValid(StageValid(stage))
        .WithBound(WidePipeSubBound());
    decomposition.Add(std::move(sub));
  }
  return decomposition;
}

WidePipeConfig WidePipeBenchConfig() {
  // Width is the hardness dial (multiplier equivalence scales brutally with
  // it): at 6 bits one 4-lane stage refutes in a few seconds, while the
  // 6-stage monolithic composition is far beyond any interactive deadline
  // (the 2-lane 2-stage pipe already takes ~10s at this width).
  return {.lanes = 4, .stages = 6, .width = 6, .bug_stage = -1};
}

uint32_t WidePipeMonolithicBound(const WidePipeConfig& config) {
  // Latency `stages` + capture of orig, filler, dup + one drain cycle.
  return config.stages + 4;
}

uint32_t WidePipeSubBound() { return 6; }

}  // namespace aqed::accel
