// AES encryption accelerator (paper Sec. V.B, Table 2: AES v1-v4).
//
// The paper verified abstracted versions of an HLS AES kernel ([RESULTS 20]
// reduces the design for BMC scalability); we follow the same strategy with
// a "mini-AES": 16-bit blocks of four nibbles, a 4-bit S-box, ShiftRows /
// MixColumns-style nibble diffusion, an evolving round key, and a
// configurable round count. The accelerator is an LCA with a two-slot input
// queue and supports multi-block batches that share a common key — the
// paper's AES-specific A-QED module customization (the key is a
// shared-context signal, common across a batch).
//
// The four buggy variants model the bug classes the paper reports (array
// indexing errors, incorrect FIFO sizing) as *state- or timing-dependent*
// flaws, which is what makes them functional-consistency violations:
//   v1: the round-key register is not reloaded between blocks;
//   v2: the input queue's full check is off by one (FIFO sizing);
//   v3: the key is sampled at processing start instead of at capture;
//   v4: a block issued in the cycle a previous block finishes skips a round.
#pragma once

#include <cstdint>

#include "aqed/interface.h"
#include "aqed/sac_instrument.h"
#include "harness/random_testbench.h"
#include "ir/transition_system.h"

namespace aqed::accel {

enum class AesBug {
  kNone,
  kV1KeyScheduleStale,
  kV2QueueOverflow,
  kV3KeySampleLate,
  kV4RoundSkip,
};

const char* AesBugName(AesBug bug);

struct AesConfig {
  uint32_t rounds = 3;      // >= 1
  uint32_t batch_size = 1;  // blocks per handshake, common key
  AesBug bug = AesBug::kNone;
};

struct AesDesign {
  core::AcceleratorInterface acc;
  ir::NodeRef key = ir::kNullNode;  // host key input (shared context)
};

AesDesign BuildAes(ir::TransitionSystem& ts, const AesConfig& config);

// Golden mini-AES encryption of one 16-bit block.
uint64_t AesGoldenEncrypt(uint64_t block, uint64_t key, uint32_t rounds);

// Golden model / SAC spec matching BuildAes (per batch element; the key is
// the shared-context value).
harness::GoldenFn AesGolden(const AesConfig& config);
core::SpecFn AesSpec(const AesConfig& config);

// Response bound for RB checking.
uint32_t AesResponseBound(const AesConfig& config);

}  // namespace aqed::accel
