// The paper's motivating example (Fig. 2): a loosely-coupled accelerator in
// which four input buffers feed four execution units computing f(x), with a
// round-robin accelerator controller and a host-controlled clock_enable.
//
// When clock_enable is 0 the whole design pauses and holds state. The
// injected bug (Fig. 2) disconnects clock_enable from Buffer 4: that buffer
// keeps shifting inputs toward its (disabled) execution unit, which silently
// drops them, so later outputs pair with the wrong inputs — a functional-
// consistency violation that only triggers when the design is disabled on
// the exact cycle Buffer 4 is scheduled to shift a pending entry.
#pragma once

#include <cstdint>

#include "aqed/interface.h"
#include "ir/transition_system.h"

namespace aqed::accel {

struct MotivatingConfig {
  uint32_t data_width = 8;
  uint32_t latency = 1;  // execution-unit cycles per operation (>= 1)
  bool bug_clock_enable = false;  // Fig. 2: Buffer 4 ignores clock_enable
};

struct MotivatingDesign {
  core::AcceleratorInterface acc;
  ir::NodeRef clk_en = ir::kNullNode;  // host clock-enable input
};

// Builds the design inside `ts` and returns its A-QED interface.
MotivatingDesign BuildMotivating(ir::TransitionSystem& ts,
                                 const MotivatingConfig& config);

// The function f(x) each execution unit computes (golden reference).
uint64_t MotivatingGolden(uint64_t x, uint32_t data_width);

}  // namespace aqed::accel
