// Memory-controller unit case study (paper Sec. V.A).
//
// The paper's subject is a CGRA memory-controller unit supporting several
// configurations; we model the three named ones:
//
//   * kFifo         — ready/valid store-and-forward queue (depth 3 within a
//                     4-slot memory, output throttled to one transfer per
//                     two cycles, host clock-enable);
//   * kDoubleBuffer — two ping-pong banks: one fills from the host while the
//                     other drains to the output;
//   * kLineBuffer   — 3-word stencil element: a wide transaction is streamed
//                     into a line memory and reduced by a 1-3-1 MAC.
//
// All three are non-interfering: the output for a transaction is a function
// of that transaction's words only (FIFO/double-buffer move data; the line
// buffer computes a per-element stencil).
//
// The bug catalog models the tracked-repository study: fifteen realistic
// logic bugs drawn from the bug classes the paper names (clock-enable
// disconnection, FIFO sizing/pointer errors, array indexing, bank-swap and
// handshake flaws). Fourteen violate functional consistency, one is a
// response-bound (deadlock) bug; two are timing corner cases that escape the
// conventional random-simulation flow (Fig. 5's "13% unique to A-QED").
#pragma once

#include <cstdint>
#include <span>

#include "aqed/interface.h"
#include "aqed/sac_instrument.h"
#include "harness/random_testbench.h"
#include "ir/transition_system.h"

namespace aqed::accel {

enum class MemCtrlConfig { kFifo, kDoubleBuffer, kLineBuffer };

enum class MemCtrlBug {
  kNone,
  // --- FIFO configuration ---
  kFifoPtrNoWrap,      // write pointer misses the depth-3 wrap (FC)
  kFifoFullOffByOne,   // accepts a word while full, overwrites oldest (FC)
  kFifoReadWrIndex,    // read data path indexes with the write ptr (FC)
  kFifoClockEnableRd,  // read pointer ignores clock_enable (FC, corner case)
  kFifoBypassStale,    // empty-FIFO bypass reads stale memory (FC)
  kFifoStallDeadlock,  // sticky stall once full: outputs stop (RB)
  // --- double-buffer configuration ---
  kDbSwapEarly,        // banks swap one word early (FC)
  kDbReadWrongBank,    // output reads the bank being written (FC)
  kDbWriteIndexStuck,  // write data always lands in bank word 0 (FC)
  kDbDrainOffByOne,    // drain reads bank words in rotated order (FC)
  kDbBubbleReadShift,  // host back-pressure bubble shifts reads (FC)
  // --- line-buffer configuration ---
  kLbStaleAccum,       // accumulator not cleared between elements (FC)
  kLbReadyGateMac,     // MAC accumulation gated by host_ready (FC, corner)
  kLbBackToBackLoad,   // capture concurrent with drain loads stale tap (FC)
  kLbBusyDoubleStep,   // in_valid during processing double-steps FSM (FC)
};

struct MemCtrlBugInfo {
  MemCtrlBug bug;
  MemCtrlConfig config;
  const char* name;
  // Requires a stimulus corner (clock-enable drop / host back-pressure)
  // that the conventional directed-random testbench does not exercise.
  bool corner_case;
  // Expected to be detected by the response-bound property (else FC).
  bool rb_expected;
};

// The fifteen-bug study catalog, in a stable order.
std::span<const MemCtrlBugInfo> MemCtrlBugCatalog();

const char* MemCtrlConfigName(MemCtrlConfig config);

struct MemCtrlDesign {
  core::AcceleratorInterface acc;
  ir::NodeRef clk_en = ir::kNullNode;  // host clock-enable input
};

// Builds the selected configuration (with an optional injected bug) inside
// `ts` and returns its A-QED interface. Data paths are 8 bits wide.
MemCtrlDesign BuildMemCtrl(ir::TransitionSystem& ts, MemCtrlConfig config,
                           MemCtrlBug bug = MemCtrlBug::kNone);

// Golden functional model of a configuration (per element).
harness::GoldenFn MemCtrlGolden(MemCtrlConfig config);

// Combinational IR spec of a configuration, for SAC checking.
core::SpecFn MemCtrlSpec(MemCtrlConfig config);

// The response bound (tau) appropriate for each configuration.
uint32_t MemCtrlResponseBound(MemCtrlConfig config);

}  // namespace aqed::accel
