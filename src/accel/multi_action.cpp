#include "accel/multi_action.h"

#include "aqed/monitor_util.h"
#include "support/bits.h"

namespace aqed::accel {

using core::LatchWhen;
using core::Reg;
using ir::Context;
using ir::NodeRef;
using ir::Sort;

namespace {
constexpr uint32_t kWidth = 8;
constexpr uint32_t kActionWidth = 2;
}  // namespace

const char* AluBugName(AluBug bug) {
  switch (bug) {
    case AluBug::kNone: return "none";
    case AluBug::kOpcodeLatchGlitch: return "alu_opcode_latch_glitch";
    case AluBug::kScaleSticky: return "alu_scale_sticky";
  }
  return "?";
}

uint64_t AluGoldenOp(uint64_t action, uint64_t a, uint64_t b) {
  switch (static_cast<AluAction>(action & 3)) {
    case AluAction::kAdd:
      return Truncate(a + b, kWidth);
    case AluAction::kSub:
      return Truncate(a - b, kWidth);
    case AluAction::kXorShift:
      return Truncate((a ^ b) << 1, kWidth);
    case AluAction::kScale:
      return Truncate(a << (b & 3), kWidth);
  }
  return 0;
}

harness::GoldenFn AluGolden() {
  return [](const std::vector<uint64_t>& in, const std::vector<uint64_t>&) {
    // in = {action, a, b}
    return std::vector<uint64_t>{AluGoldenOp(in[0], in[1], in[2])};
  };
}

core::SpecFn AluSpec() {
  return [](Context& ctx, const std::vector<NodeRef>& in) {
    const NodeRef action = in[0];
    const NodeRef a = in[1];
    const NodeRef b = in[2];
    const NodeRef add = ctx.Add(a, b);
    const NodeRef sub = ctx.Sub(a, b);
    const NodeRef xorshift = ctx.Shl(ctx.Xor(a, b), ctx.Const(kWidth, 1));
    const NodeRef scale =
        ctx.Shl(a, ctx.Zext(ctx.Extract(b, 1, 0), kWidth));
    NodeRef out = add;
    out = ctx.Ite(ctx.Eq(action, ctx.Const(kActionWidth, 1)), sub, out);
    out = ctx.Ite(ctx.Eq(action, ctx.Const(kActionWidth, 2)), xorshift, out);
    out = ctx.Ite(ctx.Eq(action, ctx.Const(kActionWidth, 3)), scale, out);
    return std::vector<NodeRef>{out};
  };
}

uint32_t AluResponseBound() { return 8; }

AluDesign BuildAlu(ir::TransitionSystem& ts, const AluConfig& config) {
  Context& ctx = ts.ctx();
  AluDesign design;

  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_action = ts.AddInput("in_action", Sort::BitVec(kActionWidth));
  const NodeRef in_a = ts.AddInput("in_a", Sort::BitVec(kWidth));
  const NodeRef in_b = ts.AddInput("in_b", Sort::BitVec(kWidth));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));

  const NodeRef busy = Reg(ts, "alu.busy", 1, 0);
  const NodeRef opcode = Reg(ts, "alu.opcode", kActionWidth, 0);
  const NodeRef op_a = Reg(ts, "alu.a", kWidth, 0);
  const NodeRef op_b = Reg(ts, "alu.b", kWidth, 0);
  const NodeRef shamt = Reg(ts, "alu.shamt", kWidth, 1);  // XORSHIFT amount
  const NodeRef out_reg = Reg(ts, "alu.out", kWidth, 0);
  const NodeRef out_pending = Reg(ts, "alu.out_pending", 1, 0);

  const NodeRef in_ready = ctx.And(ctx.Not(busy), ctx.Not(out_pending));
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef out_valid = out_pending;
  const NodeRef drain = ctx.And(out_valid, host_ready);
  const NodeRef finish = busy;  // single execute cycle

  // Operand capture.
  LatchWhen(ts, op_a, capture, in_a);
  LatchWhen(ts, op_b, capture, in_b);

  // Opcode capture. The latch-glitch bug "saves power" by reloading the
  // opcode register only when the incoming action differs from the opcode
  // of two transactions ago — wrong whenever two consecutive transactions
  // alternate actions in a particular pattern.
  NodeRef opcode_load = capture;
  if (config.bug == AluBug::kOpcodeLatchGlitch) {
    // Miswired comparator: reload only if the new action's low bit differs
    // from the held opcode's low bit.
    opcode_load = ctx.And(
        capture, ctx.Ne(ctx.Extract(in_action, 0, 0),
                        ctx.Extract(opcode, 0, 0)));
  }
  LatchWhen(ts, opcode, opcode_load, in_action);

  // Execute (1 cycle).
  const NodeRef add = ctx.Add(op_a, op_b);
  const NodeRef sub = ctx.Sub(op_a, op_b);
  // XORSHIFT uses a shift-amount register that is architecturally always 1;
  // the sticky bug lets SCALE leave its own amount behind.
  const NodeRef xorshift = ctx.Shl(ctx.Xor(op_a, op_b), shamt);
  const NodeRef scale_amount = ctx.Zext(ctx.Extract(op_b, 1, 0), kWidth);
  const NodeRef scale = ctx.Shl(op_a, scale_amount);
  NodeRef result = add;
  result = ctx.Ite(ctx.Eq(opcode, ctx.Const(kActionWidth, 1)), sub, result);
  result =
      ctx.Ite(ctx.Eq(opcode, ctx.Const(kActionWidth, 2)), xorshift, result);
  result = ctx.Ite(ctx.Eq(opcode, ctx.Const(kActionWidth, 3)), scale, result);

  if (config.bug == AluBug::kScaleSticky) {
    const NodeRef is_scale = ctx.Eq(opcode, ctx.Const(kActionWidth, 3));
    ts.SetNext(shamt, ctx.Ite(ctx.And(finish, is_scale), scale_amount,
                              shamt));
  } else {
    ts.SetNext(shamt, ctx.Const(kWidth, 1));
  }

  ts.SetNext(busy, ctx.Ite(capture, ctx.True(),
                           ctx.Ite(finish, ctx.False(), busy)));
  LatchWhen(ts, out_reg, finish, result);
  ts.SetNext(out_pending, ctx.Ite(finish, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  // The action is the first word of the element: ad(in) = (action, data).
  design.acc.data_elems = {{in_action, in_a, in_b}};
  design.acc.out_elems = {{out_reg}};
  ts.AddOutput("out", out_reg);
  return design;
}

}  // namespace aqed::accel
