#include "accel/gsm.h"

#include <array>
#include <string>

#include "aqed/monitor_util.h"
#include "support/bits.h"
#include "support/status.h"

namespace aqed::accel {

using core::LatchWhen;
using core::Reg;
using ir::Context;
using ir::NodeRef;
using ir::Sort;

namespace {
constexpr uint32_t kWidth = 8;
constexpr uint32_t kFrame = 4;             // samples per transaction
constexpr uint32_t kBufLog2 = 3;           // 8-entry circular sample buffer
constexpr std::array<uint32_t, kFrame> kWeightShift = {0, 1, 1, 0};  // 1,2,2,1
}  // namespace

uint64_t GsmGoldenFrame(const std::vector<uint64_t>& samples) {
  uint64_t acc = 0;
  for (uint32_t i = 0; i < kFrame; ++i) {
    acc += samples[i] << kWeightShift[i];
  }
  return Truncate(acc, kWidth);
}

harness::GoldenFn GsmGolden() {
  return [](const std::vector<uint64_t>& in, const std::vector<uint64_t>&) {
    return std::vector<uint64_t>{GsmGoldenFrame(in)};
  };
}

core::SpecFn GsmSpec() {
  return [](Context& ctx, const std::vector<NodeRef>& in) {
    NodeRef acc = ctx.Const(kWidth, 0);
    for (uint32_t i = 0; i < kFrame; ++i) {
      acc = ctx.Add(acc,
                    ctx.Shl(in[i], ctx.Const(kWidth, kWeightShift[i])));
    }
    return std::vector<NodeRef>{acc};
  };
}

uint32_t GsmResponseBound() { return 12; }

GsmDesign BuildGsm(ir::TransitionSystem& ts, const GsmConfig& config) {
  Context& ctx = ts.ctx();
  GsmDesign design;

  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  std::array<NodeRef, kFrame> sample{};
  for (uint32_t i = 0; i < kFrame; ++i) {
    sample[i] = ts.AddInput("in_s" + std::to_string(i), Sort::BitVec(kWidth));
  }
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));

  const NodeRef buf =
      ts.AddState("gsm.buf", Sort::Array(kBufLog2, kWidth), 0);
  const NodeRef base = Reg(ts, "gsm.base", kBufLog2, 0);
  const NodeRef busy = Reg(ts, "gsm.busy", 1, 0);
  const NodeRef tap = Reg(ts, "gsm.tap", 2, 0);
  const NodeRef acc = Reg(ts, "gsm.acc", kWidth, 0);
  const NodeRef out_reg = Reg(ts, "gsm.out", kWidth, 0);
  const NodeRef out_pending = Reg(ts, "gsm.out_pending", 1, 0);

  const NodeRef in_ready = ctx.Not(busy);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef out_valid = out_pending;
  const NodeRef drain = ctx.And(out_valid, host_ready);

  // Frame capture: all four samples land in the circular buffer at
  // base .. base+3 in one wide write.
  NodeRef buf_written = buf;
  for (uint32_t i = 0; i < kFrame; ++i) {
    const NodeRef slot = ctx.Add(base, ctx.Const(kBufLog2, i));
    buf_written = ctx.Write(buf_written, slot, sample[i]);
  }
  ts.SetNext(buf, ctx.Ite(capture, buf_written, buf));

  // MAC phase: one tap per cycle. The buggy variant indexes tap+1, so the
  // final tap reads past the frame into the previous contents of the next
  // frame's region.
  const NodeRef tap_offset =
      config.bug_tap_index ? ctx.Add(ctx.Zext(tap, kBufLog2),
                                     ctx.Const(kBufLog2, 1))
                           : ctx.Zext(tap, kBufLog2);
  const NodeRef tap_addr = ctx.Add(base, tap_offset);
  const NodeRef tap_value = ctx.Read(buf, tap_addr);
  NodeRef weighted = tap_value;
  // Weights 1,2,2,1: double the middle taps.
  const NodeRef is_middle =
      ctx.Or(ctx.Eq(tap, ctx.Const(2, 1)), ctx.Eq(tap, ctx.Const(2, 2)));
  weighted = ctx.Ite(is_middle, ctx.Shl(tap_value, ctx.Const(kWidth, 1)),
                     weighted);

  const NodeRef last_tap = ctx.Eq(tap, ctx.Const(2, kFrame - 1));
  const NodeRef slot_free = ctx.Or(ctx.Not(out_pending), drain);
  const NodeRef finish = ctx.And(ctx.And(busy, last_tap), slot_free);
  const NodeRef advance = ctx.And(busy, ctx.Not(last_tap));
  const NodeRef acc_step = ctx.Or(advance, finish);

  NodeRef acc_next = ctx.Ite(acc_step, ctx.Add(acc, weighted), acc);
  acc_next = ctx.Ite(capture, ctx.Const(kWidth, 0), acc_next);
  ts.SetNext(acc, acc_next);

  ts.SetNext(tap, ctx.Ite(capture, ctx.Const(2, 0),
                          ctx.Ite(advance, ctx.Add(tap, ctx.Const(2, 1)),
                                  ctx.Ite(finish, ctx.Const(2, 0), tap))));
  ts.SetNext(busy, ctx.Ite(capture, ctx.True(),
                           ctx.Ite(finish, ctx.False(), busy)));

  // Frame base advances when the frame completes.
  LatchWhen(ts, base, finish, ctx.Add(base, ctx.Const(kBufLog2, kFrame)));

  LatchWhen(ts, out_reg, finish, ctx.Add(acc, weighted));
  ts.SetNext(out_pending, ctx.Ite(finish, ctx.True(),
                                  ctx.Ite(drain, ctx.False(), out_pending)));

  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  design.acc.data_elems = {{sample[0], sample[1], sample[2], sample[3]}};
  design.acc.out_elems = {{out_reg}};
  ts.AddOutput("out", out_reg);
  return design;
}

}  // namespace aqed::accel
