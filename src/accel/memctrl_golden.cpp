// Golden functional models and SAC specs for the memory-controller unit.
//
// All three configurations are non-interfering data movers/reducers, so the
// golden model of one transaction is a pure function of that transaction's
// words: identity for FIFO and double-buffer, the 1-3-1 stencil for the
// line buffer.
#include "accel/memctrl.h"
#include "support/bits.h"

namespace aqed::accel {

harness::GoldenFn MemCtrlGolden(MemCtrlConfig config) {
  switch (config) {
    case MemCtrlConfig::kFifo:
    case MemCtrlConfig::kDoubleBuffer:
      return [](const std::vector<uint64_t>& in,
                const std::vector<uint64_t>&) {
        return std::vector<uint64_t>{in[0]};
      };
    case MemCtrlConfig::kLineBuffer:
      return [](const std::vector<uint64_t>& in,
                const std::vector<uint64_t>&) {
        return std::vector<uint64_t>{Truncate(in[0] + 2 * in[1] + in[2], 8)};
      };
  }
  return {};
}

core::SpecFn MemCtrlSpec(MemCtrlConfig config) {
  switch (config) {
    case MemCtrlConfig::kFifo:
    case MemCtrlConfig::kDoubleBuffer:
      return [](ir::Context&, const std::vector<ir::NodeRef>& in) {
        return std::vector<ir::NodeRef>{in[0]};
      };
    case MemCtrlConfig::kLineBuffer:
      return [](ir::Context& ctx, const std::vector<ir::NodeRef>& in) {
        const ir::NodeRef doubled = ctx.Shl(in[1], ctx.Const(8, 1));
        return std::vector<ir::NodeRef>{
            ctx.Add(ctx.Add(in[0], doubled), in[2])};
      };
  }
  return {};
}

}  // namespace aqed::accel
