#include "accel/optflow.h"

#include <array>
#include <string>

#include "aqed/monitor_util.h"
#include "support/bits.h"

namespace aqed::accel {

using core::LatchWhen;
using core::Reg;
using ir::Context;
using ir::NodeRef;
using ir::Sort;

namespace {
constexpr uint32_t kWidth = 8;
}

harness::GoldenFn OptFlowGolden() {
  return [](const std::vector<uint64_t>& in, const std::vector<uint64_t>&) {
    return std::vector<uint64_t>{Truncate(in[2] - in[0], kWidth)};
  };
}

core::SpecFn OptFlowSpec() {
  return [](Context& ctx, const std::vector<NodeRef>& in) {
    return std::vector<NodeRef>{ctx.Sub(in[2], in[0])};
  };
}

uint32_t OptFlowResponseBound() { return 14; }

OptFlowDesign BuildOptFlow(ir::TransitionSystem& ts,
                           const OptFlowConfig& config) {
  Context& ctx = ts.ctx();
  OptFlowDesign design;
  // Inter-stage FIFO capacity: the pair fits only in the correct sizing.
  const uint64_t fifo_depth = config.bug_fifo_sizing ? 1 : 2;

  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  std::array<NodeRef, 3> pixel{};
  for (uint32_t i = 0; i < 3; ++i) {
    pixel[i] = ts.AddInput("in_p" + std::to_string(i), Sort::BitVec(kWidth));
  }
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));

  // Stage 1: produces the two half-gradients of a window, pushing one per
  // cycle into the inter-stage FIFO.
  const NodeRef s1_busy = Reg(ts, "s1.busy", 1, 0);
  const NodeRef s1_half = Reg(ts, "s1.half", 1, 0);  // which half is next
  const NodeRef s1_h0 = Reg(ts, "s1.h0", kWidth, 0);
  const NodeRef s1_h1 = Reg(ts, "s1.h1", kWidth, 0);

  // Inter-stage FIFO (2 slots allocated; logical depth per config).
  const NodeRef fifo = ts.AddState("if.mem", Sort::Array(1, kWidth), 0);
  const NodeRef f_wr = Reg(ts, "if.wr", 1, 0);
  const NodeRef f_rd = Reg(ts, "if.rd", 1, 0);
  const NodeRef f_cnt = Reg(ts, "if.cnt", 2, 0);

  // Stage 2: pops a pair, combines, holds the output until drained.
  const NodeRef s2_out = Reg(ts, "s2.out", kWidth, 0);
  const NodeRef s2_pending = Reg(ts, "s2.pending", 1, 0);

  const NodeRef in_ready = ctx.Not(s1_busy);
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef out_valid = s2_pending;
  const NodeRef drain = ctx.And(out_valid, host_ready);

  // Stage-1 datapath: h0 = p1 - p0, h1 = p2 - p1 (computed at capture).
  LatchWhen(ts, s1_h0, capture, ctx.Sub(pixel[1], pixel[0]));
  LatchWhen(ts, s1_h1, capture, ctx.Sub(pixel[2], pixel[1]));

  const NodeRef fifo_has_space =
      ctx.Ult(f_cnt, ctx.Const(2, fifo_depth));
  const NodeRef push = ctx.And(s1_busy, fifo_has_space);
  const NodeRef push_value = ctx.Ite(s1_half, s1_h1, s1_h0);
  const NodeRef s1_done = ctx.And(push, s1_half);  // second half pushed

  ts.SetNext(s1_busy, ctx.Ite(capture, ctx.True(),
                              ctx.Ite(s1_done, ctx.False(), s1_busy)));
  ts.SetNext(s1_half, ctx.Ite(capture, ctx.False(),
                              ctx.Ite(push, ctx.Not(s1_half), s1_half)));

  // Stage 2 consumes a pair atomically.
  const NodeRef pair_ready = ctx.Uge(f_cnt, ctx.Const(2, 2));
  const NodeRef s2_slot_free = ctx.Or(ctx.Not(s2_pending), drain);
  const NodeRef pop_pair = ctx.And(pair_ready, s2_slot_free);
  const NodeRef head0 = ctx.Read(fifo, f_rd);
  const NodeRef head1 = ctx.Read(fifo, ctx.Add(f_rd, ctx.Const(1, 1)));
  LatchWhen(ts, s2_out, pop_pair, ctx.Add(head0, head1));
  ts.SetNext(s2_pending, ctx.Ite(pop_pair, ctx.True(),
                                 ctx.Ite(drain, ctx.False(), s2_pending)));

  // FIFO bookkeeping.
  ts.SetNext(fifo, ctx.Ite(push, ctx.Write(fifo, f_wr, push_value), fifo));
  LatchWhen(ts, f_wr, push, ctx.Add(f_wr, ctx.Const(1, 1)));
  LatchWhen(ts, f_rd, pop_pair, f_rd);  // pair pop leaves rd in place (wraps)
  NodeRef f_cnt_next = f_cnt;
  f_cnt_next = ctx.Ite(push, ctx.Add(f_cnt_next, ctx.Const(2, 1)),
                       f_cnt_next);
  f_cnt_next = ctx.Ite(pop_pair, ctx.Sub(f_cnt_next, ctx.Const(2, 2)),
                       f_cnt_next);
  ts.SetNext(f_cnt, f_cnt_next);

  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  design.acc.data_elems = {{pixel[0], pixel[1], pixel[2]}};
  design.acc.out_elems = {{s2_out}};
  ts.AddOutput("flow", s2_out);
  return design;
}

}  // namespace aqed::accel
