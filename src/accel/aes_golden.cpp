#include "accel/aes.h"
#include "accel/aes_internal.h"

namespace aqed::accel {

uint64_t AesGoldenEncrypt(uint64_t block, uint64_t key, uint32_t rounds) {
  uint16_t state = static_cast<uint16_t>(block ^ key);
  uint16_t round_key = static_cast<uint16_t>(key);
  for (uint32_t r = 1; r <= rounds; ++r) {
    round_key = aes_internal::KeyStep(round_key, r);
    state = aes_internal::RoundFn(state, round_key);
  }
  return state;
}

harness::GoldenFn AesGolden(const AesConfig& config) {
  const uint32_t rounds = config.rounds;
  return [rounds](const std::vector<uint64_t>& in,
                  const std::vector<uint64_t>& context) {
    return std::vector<uint64_t>{AesGoldenEncrypt(in[0], context[0], rounds)};
  };
}

}  // namespace aqed::accel
