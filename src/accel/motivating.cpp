#include "accel/motivating.h"

#include <string>
#include <vector>

#include "aqed/monitor_util.h"
#include "support/bits.h"
#include "support/status.h"

namespace aqed::accel {

using core::LatchWhen;
using core::Reg;
using ir::Context;
using ir::NodeRef;
using ir::Sort;

namespace {
constexpr uint32_t kNumBuffers = 4;
constexpr uint32_t kDepthLog2 = 1;  // buffer depth 2
constexpr uint32_t kDepth = 1u << kDepthLog2;
}  // namespace

uint64_t MotivatingGolden(uint64_t x, uint32_t data_width) {
  return Truncate(x * x + 1, data_width);
}

MotivatingDesign BuildMotivating(ir::TransitionSystem& ts,
                                 const MotivatingConfig& config) {
  AQED_CHECK(config.latency >= 1, "motivating: latency must be >= 1");
  Context& ctx = ts.ctx();
  const uint32_t w = config.data_width;
  const uint32_t timer_width = core::IndexWidth(config.latency + 1);

  MotivatingDesign design;

  // --- host-facing inputs -----------------------------------------------
  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(w));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef clk_en = ts.AddInput("clk_en", Sort::BitVec(1));
  design.clk_en = clk_en;

  // --- state ---------------------------------------------------------------
  // Per-buffer FIFO storage and pointers; per execution unit: busy flag,
  // operand, countdown timer, result and result-valid.
  std::vector<NodeRef> mem(kNumBuffers), wr(kNumBuffers), rd(kNumBuffers),
      cnt(kNumBuffers), busy(kNumBuffers), operand(kNumBuffers),
      timer(kNumBuffers), result(kNumBuffers), result_valid(kNumBuffers);
  for (uint32_t b = 0; b < kNumBuffers; ++b) {
    const std::string sb = std::to_string(b);
    mem[b] = ts.AddState("buf" + sb + ".mem", Sort::Array(kDepthLog2, w), 0);
    wr[b] = Reg(ts, "buf" + sb + ".wr", kDepthLog2, 0);
    rd[b] = Reg(ts, "buf" + sb + ".rd", kDepthLog2, 0);
    cnt[b] = Reg(ts, "buf" + sb + ".cnt", kDepthLog2 + 1, 0);
    busy[b] = Reg(ts, "eu" + sb + ".busy", 1, 0);
    operand[b] = Reg(ts, "eu" + sb + ".operand", w, 0);
    timer[b] = Reg(ts, "eu" + sb + ".timer", timer_width, 0);
    result[b] = Reg(ts, "eu" + sb + ".result", w, 0);
    result_valid[b] = Reg(ts, "eu" + sb + ".result_valid", 1, 0);
  }
  const NodeRef in_sel = Reg(ts, "ctrl.in_sel", 2, 0);
  const NodeRef exec_ptr = Reg(ts, "ctrl.exec_ptr", 2, 0);
  const NodeRef out_sel = Reg(ts, "ctrl.out_sel", 2, 0);

  auto is_sel = [&](NodeRef sel, uint32_t b) {
    return ctx.Eq(sel, ctx.Const(2, b));
  };

  // --- input capture ---------------------------------------------------
  // The selected buffer accepts an input when it has space and the design
  // is enabled.
  NodeRef selected_has_space = ctx.False();
  for (uint32_t b = 0; b < kNumBuffers; ++b) {
    selected_has_space =
        ctx.Or(selected_has_space,
               ctx.And(is_sel(in_sel, b),
                       ctx.Ult(cnt[b], ctx.Const(kDepthLog2 + 1, kDepth))));
  }
  const NodeRef in_ready = ctx.And(clk_en, selected_has_space);
  const NodeRef capture_in = ctx.And(in_valid, in_ready);

  // --- execution-unit issue ----------------------------------------------
  // The controller visits buffers round-robin; when the visited buffer is
  // non-empty and its execution unit is idle, the buffer head shifts out.
  std::vector<NodeRef> shift_out(kNumBuffers), eu_capture(kNumBuffers);
  for (uint32_t b = 0; b < kNumBuffers; ++b) {
    const NodeRef turn = is_sel(exec_ptr, b);
    const NodeRef non_empty =
        ctx.Ugt(cnt[b], ctx.Const(kDepthLog2 + 1, 0));
    const NodeRef eu_free = ctx.And(ctx.Not(busy[b]),
                                    ctx.Not(result_valid[b]));
    const NodeRef want_shift = ctx.And(turn, ctx.And(non_empty, eu_free));
    // The execution unit always honors clock_enable.
    eu_capture[b] = ctx.And(want_shift, clk_en);
    // Fig. 2 bug: Buffer 4 (index 3) shifts even when the clock is
    // disabled — the execution unit then misses the shifted value.
    const bool buggy = config.bug_clock_enable && b == kNumBuffers - 1;
    shift_out[b] = buggy ? want_shift : eu_capture[b];
  }

  // --- execution-unit datapath -----------------------------------------
  // f(x) = x*x + 1 over `latency` cycles (operand held, timer counts down).
  std::vector<NodeRef> eu_done(kNumBuffers);
  for (uint32_t b = 0; b < kNumBuffers; ++b) {
    const NodeRef timer_zero = ctx.Eq(timer[b], ctx.Const(timer_width, 0));
    eu_done[b] = ctx.And(ctx.And(busy[b], timer_zero), clk_en);
    const NodeRef fx = ctx.Add(ctx.Mul(operand[b], operand[b]),
                               ctx.Const(w, 1));

    // busy: set on capture, cleared on completion.
    ts.SetNext(busy[b], ctx.Ite(eu_capture[b], ctx.True(),
                                ctx.Ite(eu_done[b], ctx.False(), busy[b])));
    LatchWhen(ts, operand[b], eu_capture[b], ctx.Read(mem[b], rd[b]));
    // timer: loaded with latency-1 on capture, decremented while busy.
    const NodeRef ticking =
        ctx.And(ctx.And(busy[b], clk_en), ctx.Not(timer_zero));
    ts.SetNext(timer[b],
               ctx.Ite(eu_capture[b],
                       ctx.Const(timer_width, config.latency - 1),
                       ctx.Ite(ticking,
                               ctx.Sub(timer[b], ctx.Const(timer_width, 1)),
                               timer[b])));
    LatchWhen(ts, result[b], eu_done[b], fx);
  }

  // --- output collection -----------------------------------------------
  NodeRef selected_result_valid = ctx.False();
  NodeRef out_data = ctx.Const(w, 0);
  for (uint32_t b = 0; b < kNumBuffers; ++b) {
    const NodeRef hit = is_sel(out_sel, b);
    selected_result_valid =
        ctx.Or(selected_result_valid, ctx.And(hit, result_valid[b]));
    out_data = ctx.Ite(hit, result[b], out_data);
  }
  const NodeRef out_valid = ctx.And(clk_en, selected_result_valid);
  const NodeRef drain = ctx.And(out_valid, host_ready);

  for (uint32_t b = 0; b < kNumBuffers; ++b) {
    const NodeRef drained = ctx.And(drain, is_sel(out_sel, b));
    ts.SetNext(result_valid[b],
               ctx.Ite(eu_done[b], ctx.True(),
                       ctx.Ite(drained, ctx.False(), result_valid[b])));
  }

  // --- buffer updates -----------------------------------------------------
  for (uint32_t b = 0; b < kNumBuffers; ++b) {
    const NodeRef write_here = ctx.And(capture_in, is_sel(in_sel, b));
    ts.SetNext(mem[b],
               ctx.Ite(write_here, ctx.Write(mem[b], wr[b], in_data),
                       mem[b]));
    LatchWhen(ts, wr[b], write_here,
              ctx.Add(wr[b], ctx.Const(kDepthLog2, 1)));
    LatchWhen(ts, rd[b], shift_out[b],
              ctx.Add(rd[b], ctx.Const(kDepthLog2, 1)));
    // cnt +1 on write, -1 on shift (both may happen in one cycle).
    const NodeRef one = ctx.Const(kDepthLog2 + 1, 1);
    NodeRef next_cnt = cnt[b];
    next_cnt = ctx.Ite(write_here, ctx.Add(next_cnt, one), next_cnt);
    next_cnt = ctx.Ite(shift_out[b], ctx.Sub(next_cnt, one), next_cnt);
    ts.SetNext(cnt[b], next_cnt);
  }

  // --- controller pointers -----------------------------------------------
  LatchWhen(ts, in_sel, capture_in, ctx.Add(in_sel, ctx.Const(2, 1)));
  LatchWhen(ts, exec_ptr, clk_en, ctx.Add(exec_ptr, ctx.Const(2, 1)));
  LatchWhen(ts, out_sel, drain, ctx.Add(out_sel, ctx.Const(2, 1)));

  // --- interface ---------------------------------------------------------
  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  design.acc.data_elems = {{in_data}};
  design.acc.out_elems = {{out_data}};
  design.acc.progress_qualifier = clk_en;

  ts.AddOutput("in_ready", in_ready);
  ts.AddOutput("out_valid", out_valid);
  ts.AddOutput("out_data", out_data);
  return design;
}

}  // namespace aqed::accel
