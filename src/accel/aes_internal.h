// Shared mini-AES datapath definitions: the 4-bit S-box, nibble diffusion,
// key schedule, and reference round functions. Both the IR design builder
// (aes.cpp) and the golden model (aes_golden.cpp) derive from these tables
// so they can never diverge silently.
#pragma once

#include <array>
#include <cstdint>

namespace aqed::accel::aes_internal {

// A fixed 4-bit S-box (a permutation of 0..15).
inline constexpr std::array<uint8_t, 16> kSbox = {
    0x6, 0xB, 0x5, 0x4, 0x2, 0xE, 0x7, 0xA,
    0x9, 0xD, 0xF, 0xC, 0x3, 0x1, 0x0, 0x8};

// Per-round key-schedule constant.
constexpr uint16_t Rcon(uint32_t round) {
  return static_cast<uint16_t>((0x9D * round) & 0xFFFF);
}

constexpr uint16_t RotL16(uint16_t value, int amount) {
  return static_cast<uint16_t>((value << amount) | (value >> (16 - amount)));
}

// One encryption round: SubNibbles -> ShiftRows -> Mix -> AddRoundKey.
constexpr uint16_t RoundFn(uint16_t state, uint16_t round_key) {
  uint8_t nib[4];
  for (int i = 0; i < 4; ++i) {
    nib[i] = kSbox[(state >> (4 * i)) & 0xF];  // SubNibbles
  }
  uint8_t shifted[4];
  for (int i = 0; i < 4; ++i) shifted[i] = nib[(i + 1) % 4];  // ShiftRows
  uint16_t mixed = 0;
  for (int i = 0; i < 4; ++i) {
    const uint8_t m = shifted[i] ^ shifted[(i + 1) % 4];  // Mix
    mixed = static_cast<uint16_t>(mixed | (static_cast<uint16_t>(m) << (4 * i)));
  }
  return static_cast<uint16_t>(mixed ^ round_key);
}

// Key schedule step producing the key for `round` (1-based).
constexpr uint16_t KeyStep(uint16_t key, uint32_t round) {
  return static_cast<uint16_t>(RotL16(key, 5) ^ kSbox[key & 0xF] ^
                               Rcon(round));
}

}  // namespace aqed::accel::aes_internal
