// Custom dataflow accelerator (paper Table 2, "custom design" [Chi 19],
// RB bug).
//
// A three-stage elastic pipeline (x*3, +7, ^0x55) with one register per
// stage and a credit counter that limits the number of in-flight
// transactions. Credits are consumed at capture and returned when an output
// drains.
//
// The buggy variant miswires the credit-return path: a credit comes back
// only when another transaction is in flight behind the draining one, so a
// solo transaction permanently loses its credit. Once the pool is empty,
// in_ready stays low forever: the accelerator starves the host — a
// violation of part (1) of the response-bound property (Def. 3), checked
// via the rdin bound.
#pragma once

#include <cstdint>

#include "aqed/interface.h"
#include "aqed/sac_instrument.h"
#include "harness/random_testbench.h"
#include "ir/transition_system.h"

namespace aqed::accel {

struct DataflowConfig {
  bool bug_credit_leak = false;  // credit return lost on solo drains
};

struct DataflowDesign {
  core::AcceleratorInterface acc;
};

DataflowDesign BuildDataflow(ir::TransitionSystem& ts,
                             const DataflowConfig& config);

// Golden: ((x*3) + 7) ^ 0x55 over 8 bits.
uint64_t DataflowGoldenFn(uint64_t x);
harness::GoldenFn DataflowGolden();
core::SpecFn DataflowSpec();

uint32_t DataflowResponseBound();
// rdin bound for the part-1 (starvation) check.
uint32_t DataflowRdinBound();

}  // namespace aqed::accel
