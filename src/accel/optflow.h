// Optical-flow accelerator abstraction (paper Table 2, Rosetta suite,
// RB bug).
//
// Rosetta's optical flow is a multi-stage dataflow pipeline with FIFOs
// between stages; the bug class the paper reports is incorrect FIFO sizing.
// Our abstraction keeps exactly that structure: stage 1 computes two
// half-gradients per 3-pixel window element and pushes them through an
// inter-stage FIFO; stage 2 pops a *pair* of half-results and combines them
// into the flow value.
//
// With the correctly sized FIFO (depth 2) the pair always fits. The buggy
// variant sizes it at depth 1: stage 1 blocks with the second half-result in
// hand, stage 2 waits forever for a pair — a classic dataflow deadlock that
// violates the accelerator response bound (RB).
#pragma once

#include <cstdint>

#include "aqed/interface.h"
#include "aqed/sac_instrument.h"
#include "harness/random_testbench.h"
#include "ir/transition_system.h"

namespace aqed::accel {

struct OptFlowConfig {
  bool bug_fifo_sizing = false;  // inter-stage FIFO depth 1 instead of 2
};

struct OptFlowDesign {
  core::AcceleratorInterface acc;
};

OptFlowDesign BuildOptFlow(ir::TransitionSystem& ts,
                           const OptFlowConfig& config);

// Golden flow value for one 3-pixel window: (p1-p0) + (p2-p1) = p2-p0.
harness::GoldenFn OptFlowGolden();
core::SpecFn OptFlowSpec();

uint32_t OptFlowResponseBound();

}  // namespace aqed::accel
