#include "accel/memctrl.h"

#include <array>
#include <string>

#include "aqed/monitor_util.h"
#include "support/bits.h"
#include "support/status.h"

namespace aqed::accel {

using core::LatchWhen;
using core::Reg;
using ir::Context;
using ir::NodeRef;
using ir::Sort;

namespace {

constexpr uint32_t kWidth = 8;

// FIFO configuration geometry: 4-slot memory, logical depth 3.
constexpr uint32_t kFifoSlotsLog2 = 2;
constexpr uint64_t kFifoDepth = 3;

// Double-buffer geometry: two banks of 2 words.
constexpr uint32_t kBankLog2 = 1;
constexpr uint64_t kBankWords = 2;

// Line-buffer element: 3 taps, coefficients 1,2,1.
constexpr uint32_t kTaps = 3;

bool Is(MemCtrlBug bug, MemCtrlBug expected) { return bug == expected; }

// reg' = clk_en ? expr : reg  (global clock-enable gating)
void GatedNext(ir::TransitionSystem& ts, NodeRef clk_en, NodeRef reg,
               NodeRef expr) {
  ts.SetNext(reg, ts.ctx().Ite(clk_en, expr, reg));
}

// -------------------------------------------------------------------------
// FIFO configuration
// -------------------------------------------------------------------------

MemCtrlDesign BuildFifo(ir::TransitionSystem& ts, MemCtrlBug bug) {
  Context& ctx = ts.ctx();
  MemCtrlDesign design;

  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(kWidth));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef clk_en = ts.AddInput("clk_en", Sort::BitVec(1));
  design.clk_en = clk_en;

  const NodeRef mem =
      ts.AddState("fifo.mem", Sort::Array(kFifoSlotsLog2, kWidth), 0);
  const NodeRef wr = Reg(ts, "fifo.wr", kFifoSlotsLog2, 0);
  const NodeRef rd = Reg(ts, "fifo.rd", kFifoSlotsLog2, 0);
  const NodeRef cnt = Reg(ts, "fifo.cnt", 3, 0);
  const NodeRef throttle = Reg(ts, "fifo.throttle", 1, 0);
  const NodeRef stalled = Reg(ts, "fifo.stalled", 1, 0);

  // Pointer wrap at the logical depth (slots 0..2 of the 4-slot memory).
  auto wrap = [&](NodeRef ptr) {
    return ctx.Ite(ctx.Eq(ptr, ctx.Const(kFifoSlotsLog2, kFifoDepth - 1)),
                   ctx.Const(kFifoSlotsLog2, 0),
                   ctx.Add(ptr, ctx.Const(kFifoSlotsLog2, 1)));
  };

  // Space check: off-by-one bug accepts a word while full.
  const NodeRef space =
      Is(bug, MemCtrlBug::kFifoFullOffByOne)
          ? ctx.Ule(cnt, ctx.Const(3, kFifoDepth))
          : ctx.Ult(cnt, ctx.Const(3, kFifoDepth));
  const NodeRef in_ready = ctx.And(clk_en, space);
  const NodeRef capture = ctx.And(in_valid, in_ready);

  // Output side: one transfer every other enabled cycle.
  const NodeRef non_empty = ctx.Ugt(cnt, ctx.Const(3, 0));
  NodeRef out_avail = non_empty;
  if (Is(bug, MemCtrlBug::kFifoBypassStale)) {
    out_avail = ctx.Or(non_empty, capture);  // bypass, but data path is stale
  }
  NodeRef out_valid = ctx.And(ctx.And(clk_en, throttle), out_avail);
  if (Is(bug, MemCtrlBug::kFifoStallDeadlock)) {
    out_valid = ctx.And(out_valid, ctx.Not(stalled));
  }
  const NodeRef drain = ctx.And(out_valid, host_ready);
  // Array-indexing bug class: the read data path dereferences the write
  // pointer (copy-paste), so drained data comes from the wrong slot while
  // the handshake remains perfectly timed.
  const NodeRef out_data = Is(bug, MemCtrlBug::kFifoReadWrIndex)
                               ? ctx.Read(mem, wr)
                               : ctx.Read(mem, rd);

  // Memory and write pointer.
  GatedNext(ts, clk_en, mem,
            ctx.Ite(capture, ctx.Write(mem, wr, in_data), mem));
  const NodeRef wr_next = Is(bug, MemCtrlBug::kFifoPtrNoWrap)
                              ? ctx.Add(wr, ctx.Const(kFifoSlotsLog2, 1))
                              : wrap(wr);
  GatedNext(ts, clk_en, wr, ctx.Ite(capture, wr_next, wr));

  // Read pointer. The clock-enable corner-case bug advances it from the raw
  // (ungated) drain condition, so a disabled cycle silently skips a word.
  const NodeRef drain_raw =
      ctx.And(ctx.And(non_empty, throttle), host_ready);
  if (Is(bug, MemCtrlBug::kFifoClockEnableRd)) {
    ts.SetNext(rd, ctx.Ite(drain_raw, wrap(rd), rd));
  } else {
    GatedNext(ts, clk_en, rd, ctx.Ite(drain, wrap(rd), rd));
  }

  const NodeRef cnt_dec = drain;
  NodeRef cnt_next = cnt;
  cnt_next = ctx.Ite(capture, ctx.Add(cnt_next, ctx.Const(3, 1)), cnt_next);
  cnt_next = ctx.Ite(cnt_dec, ctx.Sub(cnt_next, ctx.Const(3, 1)), cnt_next);
  GatedNext(ts, clk_en, cnt, cnt_next);

  // The output window opens every other cycle but then *stays open* until
  // the host actually drains — a design whose windows could forever miss
  // host-ready cycles would itself violate Def. 3.
  GatedNext(ts, clk_en, throttle,
            ctx.Ite(throttle, ctx.Ite(drain, ctx.False(), throttle),
                    ctx.True()));
  // Sticky stall (only reachable in the deadlock bug's out_valid path).
  GatedNext(ts, clk_en, stalled,
            ctx.Or(stalled, ctx.Uge(cnt, ctx.Const(3, kFifoDepth))));

  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  design.acc.data_elems = {{in_data}};
  design.acc.out_elems = {{out_data}};
  design.acc.progress_qualifier = clk_en;
  ts.AddOutput("out_data", out_data);
  ts.AddOutput("cnt", cnt);
  return design;
}

// -------------------------------------------------------------------------
// Double-buffer configuration
// -------------------------------------------------------------------------

MemCtrlDesign BuildDoubleBuffer(ir::TransitionSystem& ts, MemCtrlBug bug) {
  Context& ctx = ts.ctx();
  MemCtrlDesign design;

  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(kWidth));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef clk_en = ts.AddInput("clk_en", Sort::BitVec(1));
  design.clk_en = clk_en;

  const std::array<NodeRef, 2> bank = {
      ts.AddState("db.bank0", Sort::Array(kBankLog2, kWidth), 0),
      ts.AddState("db.bank1", Sort::Array(kBankLog2, kWidth), 0)};
  const std::array<NodeRef, 2> full = {Reg(ts, "db.full0", 1, 0),
                                       Reg(ts, "db.full1", 1, 0)};
  const NodeRef wcnt = Reg(ts, "db.wcnt", kBankLog2, 0);
  const NodeRef rcnt = Reg(ts, "db.rcnt", kBankLog2, 0);
  const NodeRef wbank = Reg(ts, "db.wbank", 1, 0);
  const NodeRef rbank = Reg(ts, "db.rbank", 1, 0);

  const NodeRef wbank_full =
      ctx.Ite(wbank, full[1], full[0]);
  const NodeRef rbank_full =
      ctx.Ite(rbank, full[1], full[0]);

  const NodeRef in_ready = ctx.And(clk_en, ctx.Not(wbank_full));
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef out_valid = ctx.And(clk_en, rbank_full);
  const NodeRef drain = ctx.And(out_valid, host_ready);

  // Fill completion: normally on the last word; the swap-early bug fires on
  // the first.
  const uint64_t fill_at = Is(bug, MemCtrlBug::kDbSwapEarly)
                               ? 0
                               : kBankWords - 1;
  const NodeRef fills =
      ctx.And(capture, ctx.Eq(wcnt, ctx.Const(kBankLog2, fill_at)));
  const NodeRef drain_done =
      ctx.And(drain, ctx.Eq(rcnt, ctx.Const(kBankLog2, kBankWords - 1)));

  // Bank writes. The stuck-index bug wires word 0's address into the write
  // data path: every word of a batch lands in slot 0, leaving slot 1 stale
  // — fill/drain control remains correctly timed.
  const NodeRef write_index = Is(bug, MemCtrlBug::kDbWriteIndexStuck)
                                  ? ctx.Const(kBankLog2, 0)
                                  : wcnt;
  for (int b = 0; b < 2; ++b) {
    const NodeRef write_here =
        ctx.And(capture, ctx.Eq(wbank, ctx.Const(1, b)));
    GatedNext(ts, clk_en, bank[b],
              ctx.Ite(write_here, ctx.Write(bank[b], write_index, in_data),
                      bank[b]));
  }

  NodeRef wcnt_next =
      ctx.Ite(capture, ctx.Add(wcnt, ctx.Const(kBankLog2, 1)), wcnt);
  wcnt_next = ctx.Ite(fills, ctx.Const(kBankLog2, 0), wcnt_next);
  GatedNext(ts, clk_en, wcnt, wcnt_next);

  // Bank swap on fill.
  GatedNext(ts, clk_en, wbank, ctx.Ite(fills, ctx.Not(wbank), wbank));

  NodeRef rcnt_next =
      ctx.Ite(drain, ctx.Add(rcnt, ctx.Const(kBankLog2, 1)), rcnt);
  rcnt_next = ctx.Ite(drain_done, ctx.Const(kBankLog2, 0), rcnt_next);
  GatedNext(ts, clk_en, rcnt, rcnt_next);
  GatedNext(ts, clk_en, rbank, ctx.Ite(drain_done, ctx.Not(rbank), rbank));

  // Full flags: set on fill of the write bank, cleared when its drain ends.
  for (int b = 0; b < 2; ++b) {
    const NodeRef set =
        ctx.And(fills, ctx.Eq(wbank, ctx.Const(1, b)));
    const NodeRef clear =
        ctx.And(drain_done, ctx.Eq(rbank, ctx.Const(1, b)));
    GatedNext(ts, clk_en, full[b],
              ctx.Ite(clear, ctx.False(), ctx.Ite(set, ctx.True(), full[b])));
  }

  // Output data path.
  const NodeRef read_bank_sel =
      Is(bug, MemCtrlBug::kDbReadWrongBank) ? wbank : rbank;
  NodeRef rindex = rcnt;
  if (Is(bug, MemCtrlBug::kDbDrainOffByOne)) {
    rindex = ctx.Add(rcnt, ctx.Const(kBankLog2, 1));  // rotated word order
  }
  if (Is(bug, MemCtrlBug::kDbBubbleReadShift)) {
    // A host back-pressure bubble (output offered but not taken) latches a
    // sticky flag that shifts every later read of the bank by one word —
    // the drain timing itself is untouched.
    const NodeRef bubble = Reg(ts, "db.bubble", 1, 0);
    const NodeRef bubble_now = ctx.And(out_valid, ctx.Not(host_ready));
    GatedNext(ts, clk_en, bubble,
              ctx.Ite(drain_done, ctx.False(),
                      ctx.Or(bubble, bubble_now)));
    rindex = ctx.Ite(ctx.Or(bubble, bubble_now),
                     ctx.Add(rcnt, ctx.Const(kBankLog2, 1)), rindex);
  }
  const NodeRef out_data = ctx.Ite(read_bank_sel, ctx.Read(bank[1], rindex),
                                   ctx.Read(bank[0], rindex));

  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  design.acc.data_elems = {{in_data}};
  design.acc.out_elems = {{out_data}};
  design.acc.progress_qualifier = clk_en;
  ts.AddOutput("out_data", out_data);
  return design;
}

// -------------------------------------------------------------------------
// Line-buffer configuration
// -------------------------------------------------------------------------

MemCtrlDesign BuildLineBuffer(ir::TransitionSystem& ts, MemCtrlBug bug) {
  Context& ctx = ts.ctx();
  MemCtrlDesign design;

  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  std::array<NodeRef, kTaps> words{};
  for (uint32_t t = 0; t < kTaps; ++t) {
    words[t] = ts.AddInput("in_w" + std::to_string(t), Sort::BitVec(kWidth));
  }
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));
  const NodeRef clk_en = ts.AddInput("clk_en", Sort::BitVec(1));
  design.clk_en = clk_en;

  std::array<NodeRef, kTaps> tap{};
  for (uint32_t t = 0; t < kTaps; ++t) {
    tap[t] = Reg(ts, "lb.tap" + std::to_string(t), kWidth, 0);
  }
  const NodeRef busy = Reg(ts, "lb.busy", 1, 0);
  const NodeRef phase = Reg(ts, "lb.phase", 2, 0);
  const NodeRef acc = Reg(ts, "lb.acc", kWidth, 0);
  const NodeRef out_reg = Reg(ts, "lb.out", kWidth, 0);
  const NodeRef out_pending = Reg(ts, "lb.out_pending", 1, 0);

  const NodeRef in_ready = ctx.And(clk_en, ctx.Not(busy));
  const NodeRef capture = ctx.And(in_valid, in_ready);
  const NodeRef out_valid = ctx.And(clk_en, out_pending);
  const NodeRef drain = ctx.And(out_valid, host_ready);

  // MAC over the taps: coefficient 1, 2, 1.
  const NodeRef tap_sel =
      ctx.Ite(ctx.Eq(phase, ctx.Const(2, 0)), tap[0],
              ctx.Ite(ctx.Eq(phase, ctx.Const(2, 1)), tap[1], tap[2]));
  const NodeRef contribution =
      ctx.Ite(ctx.Eq(phase, ctx.Const(2, 1)),
              ctx.Shl(tap_sel, ctx.Const(kWidth, 1)), tap_sel);
  const NodeRef last_phase = ctx.Eq(phase, ctx.Const(2, kTaps - 1));
  // Completion waits for the output slot to free up.
  const NodeRef slot_free = ctx.Or(ctx.Not(out_pending), drain);
  const NodeRef finish = ctx.And(ctx.And(busy, last_phase), slot_free);
  const NodeRef advance = ctx.And(busy, ctx.Not(last_phase));

  // Accumulator step; the ready-gate corner bug requires host_ready high to
  // actually add (the phase still advances), silently skipping taps.
  NodeRef acc_step = ctx.Or(advance, finish);
  if (Is(bug, MemCtrlBug::kLbReadyGateMac)) {
    acc_step = ctx.And(acc_step, host_ready);
  }
  const NodeRef acc_sum = ctx.Add(acc, contribution);
  NodeRef acc_next = ctx.Ite(acc_step, acc_sum, acc);
  // A new element clears the accumulator — unless the stale-accumulator bug
  // leaves the previous element's sum behind.
  if (!Is(bug, MemCtrlBug::kLbStaleAccum)) {
    acc_next = ctx.Ite(capture, ctx.Const(kWidth, 0), acc_next);
  }
  GatedNext(ts, clk_en, acc, acc_next);

  // Tap capture; the back-to-back bug drops tap0's load when an output is
  // drained in the same cycle.
  for (uint32_t t = 0; t < kTaps; ++t) {
    NodeRef load = capture;
    if (t == 0 && Is(bug, MemCtrlBug::kLbBackToBackLoad)) {
      load = ctx.And(capture, ctx.Not(drain));
    }
    GatedNext(ts, clk_en, tap[t], ctx.Ite(load, words[t], tap[t]));
  }

  // FSM: phase / busy. The double-step bug advances the phase by two when
  // the host knocks (in_valid) while the unit is busy — a MAC tap is
  // skipped, but completion timing stays bounded.
  NodeRef phase_step = ctx.Const(2, 1);
  if (Is(bug, MemCtrlBug::kLbBusyDoubleStep)) {
    // The glitch only hits the first phase, so completion still happens —
    // just with tap 1 skipped whenever the host knocked at the wrong time.
    phase_step = ctx.Ite(ctx.And(in_valid, ctx.Eq(phase, ctx.Const(2, 0))),
                         ctx.Const(2, 2), ctx.Const(2, 1));
  }
  NodeRef phase_next = ctx.Ite(
      capture, ctx.Const(2, 0),
      ctx.Ite(advance, ctx.Add(phase, phase_step),
              ctx.Ite(finish, ctx.Const(2, 0), phase)));
  GatedNext(ts, clk_en, phase, phase_next);
  GatedNext(ts, clk_en, busy,
            ctx.Ite(capture, ctx.True(),
                    ctx.Ite(finish, ctx.False(), busy)));

  // Output register.
  const NodeRef acc_final =
      Is(bug, MemCtrlBug::kLbReadyGateMac)
          ? ctx.Ite(host_ready, acc_sum, acc)
          : acc_sum;
  GatedNext(ts, clk_en, out_reg, ctx.Ite(finish, acc_final, out_reg));
  GatedNext(ts, clk_en, out_pending,
            ctx.Ite(finish, ctx.True(),
                    ctx.Ite(drain, ctx.False(), out_pending)));

  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  design.acc.data_elems = {{words[0], words[1], words[2]}};
  design.acc.out_elems = {{out_reg}};
  design.acc.progress_qualifier = clk_en;
  ts.AddOutput("out_data", out_reg);
  return design;
}

}  // namespace

// -------------------------------------------------------------------------
// Public API
// -------------------------------------------------------------------------

const char* MemCtrlConfigName(MemCtrlConfig config) {
  switch (config) {
    case MemCtrlConfig::kFifo: return "fifo";
    case MemCtrlConfig::kDoubleBuffer: return "double_buffer";
    case MemCtrlConfig::kLineBuffer: return "line_buffer";
  }
  return "?";
}

std::span<const MemCtrlBugInfo> MemCtrlBugCatalog() {
  static const MemCtrlBugInfo kCatalog[] = {
      {MemCtrlBug::kFifoPtrNoWrap, MemCtrlConfig::kFifo,
       "fifo_ptr_no_wrap", false, false},
      {MemCtrlBug::kFifoFullOffByOne, MemCtrlConfig::kFifo,
       "fifo_full_off_by_one", false, false},
      {MemCtrlBug::kFifoReadWrIndex, MemCtrlConfig::kFifo,
       "fifo_read_wr_index", false, false},
      {MemCtrlBug::kFifoClockEnableRd, MemCtrlConfig::kFifo,
       "fifo_clock_enable_rd", true, false},
      {MemCtrlBug::kFifoBypassStale, MemCtrlConfig::kFifo,
       "fifo_bypass_stale", false, false},
      {MemCtrlBug::kFifoStallDeadlock, MemCtrlConfig::kFifo,
       "fifo_stall_deadlock", false, true},
      {MemCtrlBug::kDbSwapEarly, MemCtrlConfig::kDoubleBuffer,
       "db_swap_early", false, false},
      {MemCtrlBug::kDbReadWrongBank, MemCtrlConfig::kDoubleBuffer,
       "db_read_wrong_bank", false, false},
      {MemCtrlBug::kDbWriteIndexStuck, MemCtrlConfig::kDoubleBuffer,
       "db_write_index_stuck", false, false},
      {MemCtrlBug::kDbDrainOffByOne, MemCtrlConfig::kDoubleBuffer,
       "db_drain_off_by_one", false, false},
      {MemCtrlBug::kDbBubbleReadShift, MemCtrlConfig::kDoubleBuffer,
       "db_bubble_read_shift", false, false},
      {MemCtrlBug::kLbStaleAccum, MemCtrlConfig::kLineBuffer,
       "lb_stale_accum", false, false},
      {MemCtrlBug::kLbReadyGateMac, MemCtrlConfig::kLineBuffer,
       "lb_ready_gate_mac", true, false},
      {MemCtrlBug::kLbBackToBackLoad, MemCtrlConfig::kLineBuffer,
       "lb_back_to_back_load", false, false},
      {MemCtrlBug::kLbBusyDoubleStep, MemCtrlConfig::kLineBuffer,
       "lb_busy_double_step", false, false},
  };
  return kCatalog;
}

MemCtrlDesign BuildMemCtrl(ir::TransitionSystem& ts, MemCtrlConfig config,
                           MemCtrlBug bug) {
  switch (config) {
    case MemCtrlConfig::kFifo:
      return BuildFifo(ts, bug);
    case MemCtrlConfig::kDoubleBuffer:
      return BuildDoubleBuffer(ts, bug);
    case MemCtrlConfig::kLineBuffer:
      return BuildLineBuffer(ts, bug);
  }
  AQED_CHECK(false, "unknown memctrl config");
  return {};
}

uint32_t MemCtrlResponseBound(MemCtrlConfig config) {
  switch (config) {
    case MemCtrlConfig::kFifo:
      return 12;  // depth 3, one transfer per two enabled cycles
    case MemCtrlConfig::kDoubleBuffer:
      return 10;  // fill (2) + drain (2) with margin
    case MemCtrlConfig::kLineBuffer:
      return 10;  // 3 MAC phases + handoff with margin
  }
  return 16;
}

}  // namespace aqed::accel
