// Wide multi-lane multi-stage pipeline — the deliberately-too-big design
// for A-QED² functional decomposition (ISSUE 9 / ROADMAP item 2).
//
// `lanes` parallel `width`-bit words flow through `stages` identical
// nonlinear mixing stages (two symbolic multiplies per lane per stage — a
// squaring S-box plus a keyed product — and a rotate-by-one neighbor add,
// so lanes interact and nothing folds to constants). There is no
// backpressure: the pipe advances every cycle a valid word is behind it
// (in_ready and host_ready are constant true), latency is exactly `stages`.
//
// Monolithically, the FC check must prove two `stages`-deep compositions of
// 2*lanes*stages multiplies equal across different capture frames — a
// multiplier-equivalence CNF that blows past any reasonable deadline well
// before the datapath stops looking like a toy. Decomposed per stage, each
// fragment is one stage deep (cut at the previous stage's registers: the
// stage sees a free valid bit and free data words — a strict
// over-approximation of the upstream pipeline), and all clean stages are
// isomorphic, so dedup + the solve cache reduce an S-stage clean check to
// ONE one-stage solve. This is the paper's decomposition win in its purest
// form, and the subject of the bench_decomp scenario.
//
// The injected bug (`bug_stage` >= 0) is deliberately timing-dependent —
// the kind FC catches and per-transaction spec checks miss: stage k latches
// lane 0 of the word it accepts into a shadow register; when two valid
// words arrive back-to-back, the second one's lane-0 result is XORed with
// the shadow (the *previous* word's lane 0). A lone transaction computes
// correctly; a transaction tailgating another is corrupted. The FC monitor
// sees it as orig(D) != dup(D) whenever the duplicate tailgates a filler.
#pragma once

#include <cstdint>

#include "aqed/interface.h"
#include "decomp/decomposition.h"
#include "harness/random_testbench.h"
#include "ir/transition_system.h"

namespace aqed::accel {

struct WidePipeConfig {
  uint32_t lanes = 4;
  uint32_t stages = 6;
  uint32_t width = 16;
  int32_t bug_stage = -1;  // -1 = clean; k = inject the tailgate bug there
};

struct WidePipeDesign {
  core::AcceleratorInterface acc;
};

WidePipeDesign BuildWidePipe(ir::TransitionSystem& ts,
                             const WidePipeConfig& config);

// The per-stage decomposition of the same design: sub-accelerator "stage<k>"
// cuts at stage k-1's registers (stage 0 keeps the real host inputs) and
// checks FC for its one stage. Valid for any WidePipeConfig.
decomp::Decomposition WidePipeDecomposition(const WidePipeConfig& config);

// C++ reference model of the clean pipe: `stages` rounds of the lane
// function over one batch of `lanes` words (conventional-flow baseline).
harness::GoldenFn WidePipeGolden(const WidePipeConfig& config);

// The bench/acceptance configuration: big enough that the monolithic FC
// check reliably blows a multi-second deadline, while every one-stage
// fragment solves in well under a second.
WidePipeConfig WidePipeBenchConfig();

// BMC bound covering the monolithic pipeline (latency + tailgate slack).
uint32_t WidePipeMonolithicBound(const WidePipeConfig& config);
// BMC bound for a one-stage fragment (latency 1 + tailgate slack).
uint32_t WidePipeSubBound();

}  // namespace aqed::accel
