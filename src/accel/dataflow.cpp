#include "accel/dataflow.h"

#include "aqed/monitor_util.h"
#include "support/bits.h"

namespace aqed::accel {

using core::Reg;
using ir::Context;
using ir::NodeRef;
using ir::Sort;

namespace {
constexpr uint32_t kWidth = 8;
constexpr uint64_t kCredits = 2;  // in-flight transaction limit
}  // namespace

uint64_t DataflowGoldenFn(uint64_t x) {
  return Truncate(((x * 3) + 7) ^ 0x55, kWidth);
}

harness::GoldenFn DataflowGolden() {
  return [](const std::vector<uint64_t>& in, const std::vector<uint64_t>&) {
    return std::vector<uint64_t>{DataflowGoldenFn(in[0])};
  };
}

core::SpecFn DataflowSpec() {
  return [](Context& ctx, const std::vector<NodeRef>& in) {
    const NodeRef tripled =
        ctx.Add(ctx.Shl(in[0], ctx.Const(kWidth, 1)), in[0]);
    const NodeRef plus7 = ctx.Add(tripled, ctx.Const(kWidth, 7));
    return std::vector<NodeRef>{ctx.Xor(plus7, ctx.Const(kWidth, 0x55))};
  };
}

uint32_t DataflowResponseBound() { return 10; }
uint32_t DataflowRdinBound() { return 8; }

DataflowDesign BuildDataflow(ir::TransitionSystem& ts,
                             const DataflowConfig& config) {
  Context& ctx = ts.ctx();
  DataflowDesign design;

  const NodeRef in_valid = ts.AddInput("in_valid", Sort::BitVec(1));
  const NodeRef in_data = ts.AddInput("in_data", Sort::BitVec(kWidth));
  const NodeRef host_ready = ts.AddInput("host_ready", Sort::BitVec(1));

  // Per-stage value register + occupancy flag.
  const NodeRef s1 = Reg(ts, "df.s1", kWidth, 0);
  const NodeRef s1_full = Reg(ts, "df.s1_full", 1, 0);
  const NodeRef s2 = Reg(ts, "df.s2", kWidth, 0);
  const NodeRef s2_full = Reg(ts, "df.s2_full", 1, 0);
  const NodeRef s3 = Reg(ts, "df.s3", kWidth, 0);
  const NodeRef s3_full = Reg(ts, "df.s3_full", 1, 0);
  const NodeRef credits = Reg(ts, "df.credits", 2, kCredits);

  const NodeRef out_valid = s3_full;
  const NodeRef drain = ctx.And(out_valid, host_ready);

  // Elastic advance conditions (downstream-first).
  const NodeRef s3_can_accept = ctx.Or(ctx.Not(s3_full), drain);
  const NodeRef s2_advance = ctx.And(s2_full, s3_can_accept);
  const NodeRef s2_can_accept = ctx.Or(ctx.Not(s2_full), s2_advance);
  const NodeRef s1_advance = ctx.And(s1_full, s2_can_accept);
  const NodeRef s1_can_accept = ctx.Or(ctx.Not(s1_full), s1_advance);

  const NodeRef has_credit = ctx.Ugt(credits, ctx.Const(2, 0));
  const NodeRef in_ready = ctx.And(s1_can_accept, has_credit);
  const NodeRef capture = ctx.And(in_valid, in_ready);

  // Stage datapaths: s1 = x*3, s2 = +7, s3 = ^0x55.
  const NodeRef tripled =
      ctx.Add(ctx.Shl(in_data, ctx.Const(kWidth, 1)), in_data);
  ts.SetNext(s1, ctx.Ite(capture, tripled, s1));
  ts.SetNext(s1_full, ctx.Ite(capture, ctx.True(),
                              ctx.Ite(s1_advance, ctx.False(), s1_full)));
  ts.SetNext(s2, ctx.Ite(s1_advance, ctx.Add(s1, ctx.Const(kWidth, 7)), s2));
  ts.SetNext(s2_full, ctx.Ite(s1_advance, ctx.True(),
                              ctx.Ite(s2_advance, ctx.False(), s2_full)));
  ts.SetNext(s3, ctx.Ite(s2_advance,
                         ctx.Xor(s2, ctx.Const(kWidth, 0x55)), s3));
  ts.SetNext(s3_full, ctx.Ite(s2_advance, ctx.True(),
                              ctx.Ite(drain, ctx.False(), s3_full)));

  // Credit pool: -1 at capture, +1 at drain. The leak bug miswires the
  // return path to require another transaction in flight behind the
  // draining one (s2_full) — a solo transaction's drain permanently loses
  // its credit, and once the pool is empty in_ready never re-asserts.
  const NodeRef one = ctx.Const(2, 1);
  NodeRef credit_inc = drain;
  if (config.bug_credit_leak) {
    credit_inc = ctx.And(drain, s2_full);
  }
  NodeRef credits_next = credits;
  credits_next = ctx.Ite(capture, ctx.Sub(credits_next, one), credits_next);
  credits_next = ctx.Ite(credit_inc, ctx.Add(credits_next, one),
                         credits_next);
  ts.SetNext(credits, credits_next);

  design.acc.in_valid = in_valid;
  design.acc.in_ready = in_ready;
  design.acc.host_ready = host_ready;
  design.acc.out_valid = out_valid;
  design.acc.data_elems = {{in_data}};
  design.acc.out_elems = {{s3}};
  ts.AddOutput("out", s3);
  ts.AddOutput("credits", credits);
  return design;
}

}  // namespace aqed::accel
