// GSM LPC accelerator abstraction (paper Table 2, CHStone GSM, FC bug).
//
// The CHStone GSM kernel performs linear predictive coding over sample
// windows. Following the paper's abstraction strategy, we model the
// windowing/weighting stage: a transaction delivers a 4-sample frame that is
// staged into a circular sample buffer and reduced by a 4-tap weighted MAC
// (weights 1,2,2,1) over four cycles.
//
// The buggy variant has the array-indexing error class the paper reports:
// the MAC reads the circular buffer with an off-by-one tap index, so the
// last tap lands in the *next* frame's region — stale data from an earlier
// frame. The result depends on buffer history, which is precisely a
// functional-consistency violation.
#pragma once

#include <cstdint>

#include "aqed/interface.h"
#include "aqed/sac_instrument.h"
#include "harness/random_testbench.h"
#include "ir/transition_system.h"

namespace aqed::accel {

struct GsmConfig {
  bool bug_tap_index = false;  // off-by-one circular-buffer tap index
};

struct GsmDesign {
  core::AcceleratorInterface acc;
};

GsmDesign BuildGsm(ir::TransitionSystem& ts, const GsmConfig& config);

// Golden weighted reduction of one 4-sample frame.
uint64_t GsmGoldenFrame(const std::vector<uint64_t>& samples);
harness::GoldenFn GsmGolden();
core::SpecFn GsmSpec();

uint32_t GsmResponseBound();

}  // namespace aqed::accel
