#include "ir/digest.h"

#include <string_view>

namespace aqed::ir {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixInt(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t MixText(uint64_t hash, std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  // Length-terminate so ("ab","c") never collides with ("a","bc").
  return MixInt(hash, text.size());
}

uint64_t MixSort(uint64_t hash, const Sort& sort) {
  hash = MixInt(hash, static_cast<uint64_t>(sort.kind));
  hash = MixInt(hash, sort.width);
  hash = MixInt(hash, sort.index_width);
  return MixInt(hash, sort.elem_width);
}

}  // namespace

StructuralHasher::StructuralHasher(const Context& ctx, bool anonymous)
    : ctx_(ctx), anonymous_(anonymous), memo_(ctx.num_nodes(), 0) {
  if (anonymous_) {
    ordinal_.resize(ctx.num_nodes(), 0);
    uint64_t i = 0;
    for (const NodeRef input : ctx.inputs()) ordinal_[input] = ++i;
    i = 0;
    for (const NodeRef state : ctx.states()) ordinal_[state] = ++i;
  }
}

uint64_t StructuralHasher::Digest(NodeRef ref) {
  if (ref == kNullNode) return kFnvOffset;  // fixed "absent" sentinel
  if (ref < memo_.size() && memo_[ref] != 0) return memo_[ref];

  // Iterative post-order: designs nest ites/concats deeply enough that the
  // obvious recursion is a stack-overflow risk on big generated designs.
  std::vector<NodeRef> stack = {ref};
  while (!stack.empty()) {
    const NodeRef top = stack.back();
    const Node& node = ctx_.node(top);
    if (memo_[top] != 0) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    if (!OpIsLeaf(node.op)) {
      for (const NodeRef operand : node.operands) {
        if (operand != kNullNode && memo_[operand] == 0) {
          stack.push_back(operand);
          ready = false;
        }
      }
    }
    if (!ready) continue;
    stack.pop_back();

    uint64_t hash = kFnvOffset;
    hash = MixInt(hash, static_cast<uint64_t>(node.op));
    hash = MixSort(hash, node.sort);
    switch (node.op) {
      case Op::kConst:
      case Op::kConstArray:
        hash = MixInt(hash, node.const_val);
        break;
      case Op::kInput:
      case Op::kState:
        // Named leaves: the identity of an input/state is its name and
        // sort, never the NodeRef the builder happened to get for it.
        // Anonymous mode replaces the name with the leaf's registration
        // ordinal — the identity machine-extracted fragments share.
        if (anonymous_) {
          hash = MixInt(hash, ordinal_[top]);
        } else {
          hash = MixText(hash, node.name);
        }
        break;
      default:
        break;
    }
    hash = MixInt(hash, node.aux0);
    hash = MixInt(hash, node.aux1);
    if (!OpIsLeaf(node.op)) {
      for (const NodeRef operand : node.operands) {
        hash = MixInt(hash, operand == kNullNode ? kFnvOffset
                                                 : memo_[operand]);
      }
    }
    if (hash == 0) hash = 1;  // keep 0 reserved for "not computed"
    memo_[top] = hash;
  }
  return memo_[ref];
}

uint64_t StructuralDigest(const TransitionSystem& ts) {
  StructuralHasher hasher(ts.ctx());

  // Each category folds in as a salted commutative sum: the sum makes
  // registration order immaterial, the salt keeps "a constraint" from
  // colliding with "an output named the same".
  const auto salted = [](uint64_t salt, uint64_t hash) {
    return MixInt(MixInt(kFnvOffset, salt), hash);
  };

  uint64_t digest = MixInt(kFnvOffset, 0xA9EDD16Eu);  // format version salt
  uint64_t sum = 0;
  for (const NodeRef state : ts.states()) {
    uint64_t h = kFnvOffset;
    h = MixText(h, ts.ctx().node(state).name);
    h = MixSort(h, ts.ctx().sort(state));
    h = MixInt(h, ts.has_init(state) ? 1 : 0);
    h = MixInt(h, ts.has_init(state) ? ts.init_value(state) : 0);
    h = MixInt(h, hasher.Digest(ts.next(state)));
    sum += salted(1, h);
  }
  digest = MixInt(digest, sum);

  sum = 0;
  for (const NodeRef input : ts.inputs()) {
    uint64_t h = kFnvOffset;
    h = MixText(h, ts.ctx().node(input).name);
    h = MixSort(h, ts.ctx().sort(input));
    sum += salted(2, h);
  }
  digest = MixInt(digest, sum);

  sum = 0;
  for (const NodeRef constraint : ts.constraints()) {
    sum += salted(3, hasher.Digest(constraint));
  }
  digest = MixInt(digest, sum);

  sum = 0;
  for (size_t i = 0; i < ts.bads().size(); ++i) {
    uint64_t h = kFnvOffset;
    h = MixText(h, ts.bad_labels()[i]);
    h = MixInt(h, hasher.Digest(ts.bads()[i]));
    sum += salted(4, h);
  }
  digest = MixInt(digest, sum);

  sum = 0;
  for (const auto& [name, node] : ts.outputs()) {
    uint64_t h = kFnvOffset;
    h = MixText(h, name);
    h = MixInt(h, hasher.Digest(node));
    sum += salted(5, h);
  }
  return MixInt(digest, sum);
}

uint64_t AnonymousStructuralDigest(const TransitionSystem& ts) {
  StructuralHasher hasher(ts.ctx(), /*anonymous=*/true);

  const auto salted = [](uint64_t salt, uint64_t hash) {
    return MixInt(MixInt(kFnvOffset, salt), hash);
  };

  // Same category structure as the named digest, but every name — state,
  // input, bad label, output — is dropped: a leaf's Digest already carries
  // its registration ordinal, which is what identifies it here.
  uint64_t digest = MixInt(kFnvOffset, 0xA9EDA0DEu);  // format version salt
  uint64_t sum = 0;
  for (const NodeRef state : ts.states()) {
    uint64_t h = kFnvOffset;
    h = MixInt(h, hasher.Digest(state));
    h = MixInt(h, ts.has_init(state) ? 1 : 0);
    h = MixInt(h, ts.has_init(state) ? ts.init_value(state) : 0);
    h = MixInt(h, hasher.Digest(ts.next(state)));
    sum += salted(1, h);
  }
  digest = MixInt(digest, sum);

  sum = 0;
  for (const NodeRef input : ts.inputs()) {
    sum += salted(2, hasher.Digest(input));
  }
  digest = MixInt(digest, sum);

  sum = 0;
  for (const NodeRef constraint : ts.constraints()) {
    sum += salted(3, hasher.Digest(constraint));
  }
  digest = MixInt(digest, sum);

  sum = 0;
  for (const NodeRef bad : ts.bads()) {
    sum += salted(4, hasher.Digest(bad));
  }
  digest = MixInt(digest, sum);

  sum = 0;
  for (const auto& [name, node] : ts.outputs()) {
    (void)name;
    sum += salted(5, hasher.Digest(node));
  }
  return MixInt(digest, sum);
}

}  // namespace aqed::ir
