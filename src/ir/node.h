// Word-level IR node definitions.
//
// The IR is a hash-consed DAG of bitvector/array operations, in the spirit of
// BTOR2: rich enough to describe synchronous accelerator designs (registers,
// datapaths, memories, handshakes), small enough to bit-blast exactly.
// Bitvector widths are limited to 64 bits (see support/bits.h), which covers
// the accelerator datapaths in all case studies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bits.h"

namespace aqed::ir {

// Index of a node inside its Context. 0 is reserved as "no node".
using NodeRef = uint32_t;
inline constexpr NodeRef kNullNode = 0;

enum class SortKind : uint8_t { kBitVec, kArray };

// Sort of a node: a bitvector of some width, or an array (memory) of
// 2^index_width elements, each elem_width bits wide.
struct Sort {
  SortKind kind = SortKind::kBitVec;
  uint32_t width = 0;        // bitvector width (kBitVec)
  uint32_t index_width = 0;  // log2(#elements)   (kArray)
  uint32_t elem_width = 0;   // element width     (kArray)

  static Sort BitVec(uint32_t width) { return {SortKind::kBitVec, width, 0, 0}; }
  static Sort Array(uint32_t index_width, uint32_t elem_width) {
    return {SortKind::kArray, 0, index_width, elem_width};
  }

  bool is_bitvec() const { return kind == SortKind::kBitVec; }
  bool is_array() const { return kind == SortKind::kArray; }
  uint64_t num_elements() const { return uint64_t{1} << index_width; }
  bool operator==(const Sort&) const = default;

  std::string ToString() const;
};

enum class Op : uint8_t {
  // Leaves
  kConst,       // const_val
  kConstArray,  // operand: default element value (must be kConst)
  kInput,       // free symbolic input (fresh every cycle in BMC)
  kState,       // register / memory; init+next owned by TransitionSystem
  // Bitwise
  kNot,
  kAnd,
  kOr,
  kXor,
  // Arithmetic (unsigned two's complement)
  kNeg,
  kAdd,
  kSub,
  kMul,
  kUdiv,  // division by zero yields all-ones (SMT-LIB convention)
  kUrem,  // remainder by zero yields the dividend
  // Comparison (1-bit result)
  kEq,
  kNe,
  kUlt,
  kUle,
  kSlt,
  kSle,
  // Shifts (shift amount is the second operand; oversized shifts saturate)
  kShl,
  kLshr,
  kAshr,
  // Structure
  kIte,      // operands: cond (1 bit), then, else
  kConcat,   // operands: high, low
  kExtract,  // operand: value; aux0 = hi bit, aux1 = lo bit
  kZext,     // operand: value; width from sort
  kSext,
  // Arrays
  kRead,   // operands: array, index -> elem_width bitvec
  kWrite,  // operands: array, index, value -> array
};

const char* OpName(Op op);
bool OpIsLeaf(Op op);

struct Node {
  Op op = Op::kConst;
  Sort sort;
  uint64_t const_val = 0;  // kConst only (canonical: truncated to width)
  uint32_t aux0 = 0;       // kExtract: hi
  uint32_t aux1 = 0;       // kExtract: lo
  std::vector<NodeRef> operands;
  std::string name;  // kInput / kState only
};

}  // namespace aqed::ir
