// Structural validation of transition systems: every state has a next
// function of matching sort; all operation nodes are well-sorted. Operation
// sorting is largely enforced at construction time by Context's AQED_CHECKs;
// Validate() re-verifies the graph so that hand-assembled or instrumented
// systems get a uniform error report instead of a hard abort.
#include <string>

#include "ir/transition_system.h"

namespace aqed::ir {

namespace {

Status CheckNode(const Context& ctx, NodeRef ref) {
  const Node& node = ctx.node(ref);
  auto error = [&](const std::string& message) {
    return Status::Error("node " + std::to_string(ref) + " (" +
                         std::string(OpName(node.op)) + "): " + message);
  };
  auto operand_sort = [&](size_t i) { return ctx.sort(node.operands[i]); };

  switch (node.op) {
    case Op::kConst:
      if (!node.sort.is_bitvec() || node.sort.width == 0 ||
          node.sort.width > kMaxWidth) {
        return error("invalid constant sort");
      }
      if (node.const_val != Truncate(node.const_val, node.sort.width)) {
        return error("constant value not canonical");
      }
      return Status::Ok();
    case Op::kConstArray:
      if (!node.sort.is_array()) return error("const_array with scalar sort");
      if (!operand_sort(0).is_bitvec() ||
          operand_sort(0).width != node.sort.elem_width) {
        return error("const_array element width mismatch");
      }
      return Status::Ok();
    case Op::kInput:
    case Op::kState:
      return Status::Ok();
    case Op::kNot:
    case Op::kNeg:
      if (operand_sort(0) != node.sort) return error("operand sort mismatch");
      return Status::Ok();
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kUdiv:
    case Op::kUrem:
      if (operand_sort(0) != node.sort || operand_sort(1) != node.sort) {
        return error("operand sort mismatch");
      }
      return Status::Ok();
    case Op::kEq:
    case Op::kNe:
      if (node.sort != Sort::BitVec(1)) return error("comparison not 1 bit");
      if (operand_sort(0) != operand_sort(1)) {
        return error("comparison operand sorts differ");
      }
      return Status::Ok();
    case Op::kUlt:
    case Op::kUle:
    case Op::kSlt:
    case Op::kSle:
      if (node.sort != Sort::BitVec(1)) return error("comparison not 1 bit");
      if (!operand_sort(0).is_bitvec() ||
          operand_sort(0) != operand_sort(1)) {
        return error("comparison operand sorts differ");
      }
      return Status::Ok();
    case Op::kShl:
    case Op::kLshr:
    case Op::kAshr:
      if (operand_sort(0) != node.sort) return error("shift value sort");
      if (!operand_sort(1).is_bitvec()) return error("shift amount sort");
      return Status::Ok();
    case Op::kIte:
      if (operand_sort(0) != Sort::BitVec(1)) return error("ite condition");
      if (operand_sort(1) != node.sort || operand_sort(2) != node.sort) {
        return error("ite branch sorts");
      }
      return Status::Ok();
    case Op::kConcat:
      if (!node.sort.is_bitvec() ||
          operand_sort(0).width + operand_sort(1).width != node.sort.width) {
        return error("concat width mismatch");
      }
      return Status::Ok();
    case Op::kExtract:
      if (node.aux0 < node.aux1 || node.aux0 >= operand_sort(0).width ||
          node.sort.width != node.aux0 - node.aux1 + 1) {
        return error("extract range invalid");
      }
      return Status::Ok();
    case Op::kZext:
    case Op::kSext:
      if (!node.sort.is_bitvec() ||
          node.sort.width < operand_sort(0).width) {
        return error("extension narrows value");
      }
      return Status::Ok();
    case Op::kRead:
      if (!operand_sort(0).is_array() ||
          node.sort.width != operand_sort(0).elem_width ||
          operand_sort(1).width != operand_sort(0).index_width) {
        return error("read sorts invalid");
      }
      return Status::Ok();
    case Op::kWrite:
      if (node.sort != operand_sort(0) ||
          operand_sort(1).width != node.sort.index_width ||
          operand_sort(2).width != node.sort.elem_width) {
        return error("write sorts invalid");
      }
      return Status::Ok();
  }
  return error("unknown operation");
}

}  // namespace

Status TransitionSystem::Validate() const {
  for (NodeRef ref = 1; ref < ctx_.num_nodes(); ++ref) {
    // Operands must precede users (topological node order).
    for (NodeRef operand : ctx_.node(ref).operands) {
      if (operand == kNullNode || operand >= ref) {
        return Status::Error("node " + std::to_string(ref) +
                             ": operand order violated");
      }
    }
    if (Status status = CheckNode(ctx_, ref); !status.ok()) return status;
  }
  for (NodeRef state : states()) {
    if (!next_.contains(state)) {
      return Status::Error("state '" + ctx_.node(state).name +
                           "' has no next function");
    }
    if (ctx_.sort(next_.at(state)) != ctx_.sort(state)) {
      return Status::Error("state '" + ctx_.node(state).name +
                           "' next sort mismatch");
    }
  }
  for (NodeRef constraint : constraints_) {
    if (ctx_.sort(constraint) != Sort::BitVec(1)) {
      return Status::Error("constraint is not 1 bit");
    }
  }
  for (NodeRef bad : bads_) {
    if (ctx_.sort(bad) != Sort::BitVec(1)) {
      return Status::Error("bad predicate is not 1 bit");
    }
  }
  return Status::Ok();
}

}  // namespace aqed::ir
