// Concrete semantics of scalar (non-array) IR operations.
//
// Shared by the Context's constant folder and the cycle-accurate simulator so
// the two can never disagree; the bit-blaster is tested for equivalence
// against these semantics exhaustively at small widths.
#pragma once

#include <cstdint>
#include <span>

#include "ir/node.h"
#include "support/bits.h"
#include "support/status.h"

namespace aqed::ir {

// Evaluates a scalar operation. `vals[i]` holds the canonical value of
// operand i and `widths[i]` its width. `out_width` is the result width.
inline uint64_t EvalScalarOp(Op op, uint32_t out_width,
                             std::span<const uint64_t> vals,
                             std::span<const uint32_t> widths, uint32_t aux0,
                             uint32_t aux1) {
  switch (op) {
    case Op::kNot:
      return Truncate(~vals[0], out_width);
    case Op::kAnd:
      return vals[0] & vals[1];
    case Op::kOr:
      return vals[0] | vals[1];
    case Op::kXor:
      return vals[0] ^ vals[1];
    case Op::kNeg:
      return Truncate(~vals[0] + 1, out_width);
    case Op::kAdd:
      return Truncate(vals[0] + vals[1], out_width);
    case Op::kSub:
      return Truncate(vals[0] - vals[1], out_width);
    case Op::kMul:
      return Truncate(vals[0] * vals[1], out_width);
    case Op::kUdiv:
      return vals[1] == 0 ? WidthMask(out_width)
                          : Truncate(vals[0] / vals[1], out_width);
    case Op::kUrem:
      return vals[1] == 0 ? vals[0] : Truncate(vals[0] % vals[1], out_width);
    case Op::kEq:
      return vals[0] == vals[1] ? 1 : 0;
    case Op::kNe:
      return vals[0] != vals[1] ? 1 : 0;
    case Op::kUlt:
      return vals[0] < vals[1] ? 1 : 0;
    case Op::kUle:
      return vals[0] <= vals[1] ? 1 : 0;
    case Op::kSlt:
      return SignExtend(vals[0], widths[0]) < SignExtend(vals[1], widths[1])
                 ? 1
                 : 0;
    case Op::kSle:
      return SignExtend(vals[0], widths[0]) <= SignExtend(vals[1], widths[1])
                 ? 1
                 : 0;
    case Op::kShl:
      return vals[1] >= widths[0] ? 0
                                  : Truncate(vals[0] << vals[1], out_width);
    case Op::kLshr:
      return vals[1] >= widths[0] ? 0 : (vals[0] >> vals[1]);
    case Op::kAshr: {
      const int64_t a = SignExtend(vals[0], widths[0]);
      const uint64_t shift = vals[1] >= widths[0] ? widths[0] - 1 : vals[1];
      return Truncate(static_cast<uint64_t>(a >> shift), out_width);
    }
    case Op::kIte:
      return vals[0] != 0 ? vals[1] : vals[2];
    case Op::kConcat:
      return Truncate((vals[0] << widths[1]) | vals[1], out_width);
    case Op::kExtract:
      return Truncate(vals[0] >> aux1, aux0 - aux1 + 1);
    case Op::kZext:
      return vals[0];
    case Op::kSext:
      return Truncate(static_cast<uint64_t>(SignExtend(vals[0], widths[0])),
                      out_width);
    default:
      AQED_CHECK(false, "EvalScalarOp: not a scalar operation");
      return 0;
  }
}

}  // namespace aqed::ir
