#include "ir/transition_system.h"

namespace aqed::ir {

NodeRef TransitionSystem::AddInput(const std::string& name, Sort sort) {
  return ctx_.Input(name, sort);
}

NodeRef TransitionSystem::AddState(const std::string& name, Sort sort,
                                   std::optional<uint64_t> init_value) {
  const NodeRef state = ctx_.State(name, sort);
  if (init_value.has_value()) {
    if (sort.is_bitvec()) {
      init_[state] = Truncate(*init_value, sort.width);
    } else {
      init_[state] = Truncate(*init_value, sort.elem_width);
    }
  }
  return state;
}

void TransitionSystem::SetNext(NodeRef state, NodeRef next) {
  AQED_CHECK(ctx_.node(state).op == Op::kState, "SetNext on non-state");
  AQED_CHECK(ctx_.sort(state) == ctx_.sort(next), "SetNext sort mismatch");
  next_[state] = next;
}

void TransitionSystem::SetInit(NodeRef state, uint64_t init_value) {
  AQED_CHECK(ctx_.node(state).op == Op::kState, "SetInit on non-state");
  const Sort& sort = ctx_.sort(state);
  init_[state] = Truncate(init_value,
                          sort.is_bitvec() ? sort.width : sort.elem_width);
}

void TransitionSystem::AddConstraint(NodeRef condition) {
  AQED_CHECK(ctx_.width(condition) == 1, "constraint must be 1 bit");
  constraints_.push_back(condition);
}

uint32_t TransitionSystem::AddBad(NodeRef condition,
                                  const std::string& label) {
  AQED_CHECK(ctx_.width(condition) == 1, "bad predicate must be 1 bit");
  bads_.push_back(condition);
  bad_labels_.push_back(label);
  return static_cast<uint32_t>(bads_.size()) - 1;
}

void TransitionSystem::AddOutput(const std::string& name, NodeRef node) {
  outputs_.emplace_back(name, node);
}

NodeRef TransitionSystem::next(NodeRef state) const {
  auto it = next_.find(state);
  AQED_CHECK(it != next_.end(), "state has no next function");
  return it->second;
}

uint64_t TransitionSystem::init_value(NodeRef state) const {
  auto it = init_.find(state);
  AQED_CHECK(it != init_.end(), "state has no initial value");
  return it->second;
}

}  // namespace aqed::ir
