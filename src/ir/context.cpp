#include "ir/context.h"

#include <array>

#include "ir/eval.h"
#include "support/status.h"

namespace aqed::ir {

namespace {
// Packs a sort into a tag for hash-cons keys.
uint32_t SortTag(const Sort& sort) {
  if (sort.is_bitvec()) return sort.width;
  return 0x80000000u | (sort.index_width << 16) | sort.elem_width;
}
}  // namespace

size_t Context::KeyHash::operator()(const Key& key) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(key.op);
  auto mix = [&h](uint64_t value) {
    h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(key.const_val);
  mix(key.aux0);
  mix(key.aux1);
  mix(key.sort_tag);
  for (NodeRef operand : key.operands) mix(operand);
  return static_cast<size_t>(h);
}

Context::Context() {
  nodes_.emplace_back();  // index 0 reserved as kNullNode
}

NodeRef Context::Intern(Op op, Sort sort, std::vector<NodeRef> operands,
                        uint64_t const_val, uint32_t aux0, uint32_t aux1) {
  Key key{op, const_val, aux0, aux1, SortTag(sort), operands};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  Node node;
  node.op = op;
  node.sort = sort;
  node.const_val = const_val;
  node.aux0 = aux0;
  node.aux1 = aux1;
  node.operands = std::move(operands);
  const NodeRef ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(std::move(node));
  cache_.emplace(std::move(key), ref);
  return ref;
}

NodeRef Context::TryFold(Op op, Sort sort, std::span<const NodeRef> operands,
                         uint32_t aux0, uint32_t aux1) {
  if (!sort.is_bitvec()) return kNullNode;
  std::array<uint64_t, 3> vals{};
  std::array<uint32_t, 3> widths{};
  for (size_t i = 0; i < operands.size(); ++i) {
    if (!IsConst(operands[i])) return kNullNode;
    vals[i] = ConstVal(operands[i]);
    widths[i] = width(operands[i]);
  }
  const uint64_t folded =
      EvalScalarOp(op, sort.width, std::span(vals.data(), operands.size()),
                   std::span(widths.data(), operands.size()), aux0, aux1);
  return Const(sort.width, folded);
}

NodeRef Context::Const(uint32_t w, uint64_t value) {
  AQED_CHECK(w >= 1 && w <= kMaxWidth, "constant width out of range");
  return Intern(Op::kConst, Sort::BitVec(w), {}, Truncate(value, w));
}

NodeRef Context::ConstArray(uint32_t index_width, uint32_t elem_width,
                            uint64_t value) {
  AQED_CHECK(elem_width >= 1 && elem_width <= kMaxWidth,
             "array element width out of range");
  AQED_CHECK(index_width >= 1 && index_width <= 16,
             "array index width out of range");
  const NodeRef elem = Const(elem_width, value);
  return Intern(Op::kConstArray, Sort::Array(index_width, elem_width), {elem});
}

NodeRef Context::Input(const std::string& name, Sort sort) {
  Node node;
  node.op = Op::kInput;
  node.sort = sort;
  node.name = name;
  const NodeRef ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(std::move(node));
  inputs_.push_back(ref);
  return ref;
}

NodeRef Context::State(const std::string& name, Sort sort) {
  Node node;
  node.op = Op::kState;
  node.sort = sort;
  node.name = name;
  const NodeRef ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(std::move(node));
  states_.push_back(ref);
  return ref;
}

NodeRef Context::MakeBinary(Op op, Sort sort, NodeRef a, NodeRef b) {
  const std::array<NodeRef, 2> operands{a, b};
  if (NodeRef folded = TryFold(op, sort, operands, 0, 0)) return folded;
  return Intern(op, sort, {a, b});
}

NodeRef Context::Not(NodeRef a) {
  const std::array<NodeRef, 1> operands{a};
  if (NodeRef folded = TryFold(Op::kNot, sort(a), operands, 0, 0)) {
    return folded;
  }
  // Involution: not(not(x)) == x.
  if (node(a).op == Op::kNot) return node(a).operands[0];
  return Intern(Op::kNot, sort(a), {a});
}

NodeRef Context::And(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "And width mismatch");
  if (a == b) return a;
  // Identity / annihilator with constants (either side).
  for (int swap = 0; swap < 2; ++swap) {
    const NodeRef x = swap ? b : a;
    const NodeRef y = swap ? a : b;
    if (IsConst(x)) {
      if (ConstVal(x) == 0) return Const(width(x), 0);
      if (ConstVal(x) == WidthMask(width(x))) return y;
    }
  }
  return MakeBinary(Op::kAnd, sort(a), a, b);
}

NodeRef Context::Or(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Or width mismatch");
  if (a == b) return a;
  for (int swap = 0; swap < 2; ++swap) {
    const NodeRef x = swap ? b : a;
    const NodeRef y = swap ? a : b;
    if (IsConst(x)) {
      if (ConstVal(x) == 0) return y;
      if (ConstVal(x) == WidthMask(width(x))) return Const(width(x),
                                                           WidthMask(width(x)));
    }
  }
  return MakeBinary(Op::kOr, sort(a), a, b);
}

NodeRef Context::Xor(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Xor width mismatch");
  if (a == b) return Const(width(a), 0);
  return MakeBinary(Op::kXor, sort(a), a, b);
}

NodeRef Context::AndAll(std::span<const NodeRef> xs) {
  AQED_CHECK(!xs.empty(), "AndAll of empty span");
  NodeRef acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = And(acc, xs[i]);
  return acc;
}

NodeRef Context::OrAll(std::span<const NodeRef> xs) {
  AQED_CHECK(!xs.empty(), "OrAll of empty span");
  NodeRef acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = Or(acc, xs[i]);
  return acc;
}

NodeRef Context::Neg(NodeRef a) {
  const std::array<NodeRef, 1> operands{a};
  if (NodeRef folded = TryFold(Op::kNeg, sort(a), operands, 0, 0)) {
    return folded;
  }
  return Intern(Op::kNeg, sort(a), {a});
}

NodeRef Context::Add(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Add width mismatch");
  if (IsConst(a) && ConstVal(a) == 0) return b;
  if (IsConst(b) && ConstVal(b) == 0) return a;
  return MakeBinary(Op::kAdd, sort(a), a, b);
}

NodeRef Context::Sub(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Sub width mismatch");
  if (IsConst(b) && ConstVal(b) == 0) return a;
  return MakeBinary(Op::kSub, sort(a), a, b);
}

NodeRef Context::Mul(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Mul width mismatch");
  return MakeBinary(Op::kMul, sort(a), a, b);
}

NodeRef Context::Udiv(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Udiv width mismatch");
  return MakeBinary(Op::kUdiv, sort(a), a, b);
}

NodeRef Context::Urem(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Urem width mismatch");
  return MakeBinary(Op::kUrem, sort(a), a, b);
}

NodeRef Context::Eq(NodeRef a, NodeRef b) {
  AQED_CHECK(sort(a) == sort(b), "Eq sort mismatch");
  if (a == b) return True();
  return MakeBinary(Op::kEq, Sort::BitVec(1), a, b);
}

NodeRef Context::Ne(NodeRef a, NodeRef b) {
  AQED_CHECK(sort(a) == sort(b), "Ne sort mismatch");
  if (a == b) return False();
  return MakeBinary(Op::kNe, Sort::BitVec(1), a, b);
}

NodeRef Context::Ult(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Ult width mismatch");
  if (a == b) return False();
  return MakeBinary(Op::kUlt, Sort::BitVec(1), a, b);
}

NodeRef Context::Ule(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Ule width mismatch");
  if (a == b) return True();
  return MakeBinary(Op::kUle, Sort::BitVec(1), a, b);
}

NodeRef Context::Slt(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Slt width mismatch");
  if (a == b) return False();
  return MakeBinary(Op::kSlt, Sort::BitVec(1), a, b);
}

NodeRef Context::Sle(NodeRef a, NodeRef b) {
  AQED_CHECK(width(a) == width(b), "Sle width mismatch");
  if (a == b) return True();
  return MakeBinary(Op::kSle, Sort::BitVec(1), a, b);
}

NodeRef Context::Shl(NodeRef a, NodeRef amount) {
  return MakeBinary(Op::kShl, sort(a), a, amount);
}

NodeRef Context::Lshr(NodeRef a, NodeRef amount) {
  return MakeBinary(Op::kLshr, sort(a), a, amount);
}

NodeRef Context::Ashr(NodeRef a, NodeRef amount) {
  return MakeBinary(Op::kAshr, sort(a), a, amount);
}

NodeRef Context::Ite(NodeRef cond, NodeRef then_val, NodeRef else_val) {
  AQED_CHECK(width(cond) == 1, "Ite condition must be 1 bit");
  AQED_CHECK(sort(then_val) == sort(else_val), "Ite branch sort mismatch");
  if (IsConst(cond)) return ConstVal(cond) != 0 ? then_val : else_val;
  if (then_val == else_val) return then_val;
  return Intern(Op::kIte, sort(then_val), {cond, then_val, else_val});
}

NodeRef Context::Concat(NodeRef high, NodeRef low) {
  const uint32_t new_width = width(high) + width(low);
  AQED_CHECK(new_width <= kMaxWidth, "Concat exceeds max width");
  const std::array<NodeRef, 2> operands{high, low};
  if (NodeRef folded =
          TryFold(Op::kConcat, Sort::BitVec(new_width), operands, 0, 0)) {
    return folded;
  }
  return Intern(Op::kConcat, Sort::BitVec(new_width), {high, low});
}

NodeRef Context::Extract(NodeRef a, uint32_t hi, uint32_t lo) {
  AQED_CHECK(hi >= lo && hi < width(a), "Extract range out of bounds");
  if (lo == 0 && hi == width(a) - 1) return a;
  const std::array<NodeRef, 1> operands{a};
  const Sort out = Sort::BitVec(hi - lo + 1);
  if (NodeRef folded = TryFold(Op::kExtract, out, operands, hi, lo)) {
    return folded;
  }
  return Intern(Op::kExtract, out, {a}, 0, hi, lo);
}

NodeRef Context::Zext(NodeRef a, uint32_t new_width) {
  AQED_CHECK(new_width >= width(a) && new_width <= kMaxWidth,
             "Zext target width invalid");
  if (new_width == width(a)) return a;
  const std::array<NodeRef, 1> operands{a};
  if (NodeRef folded =
          TryFold(Op::kZext, Sort::BitVec(new_width), operands, 0, 0)) {
    return folded;
  }
  return Intern(Op::kZext, Sort::BitVec(new_width), {a});
}

NodeRef Context::Sext(NodeRef a, uint32_t new_width) {
  AQED_CHECK(new_width >= width(a) && new_width <= kMaxWidth,
             "Sext target width invalid");
  if (new_width == width(a)) return a;
  const std::array<NodeRef, 1> operands{a};
  if (NodeRef folded =
          TryFold(Op::kSext, Sort::BitVec(new_width), operands, 0, 0)) {
    return folded;
  }
  return Intern(Op::kSext, Sort::BitVec(new_width), {a});
}

NodeRef Context::Read(NodeRef array, NodeRef index) {
  const Sort& array_sort = sort(array);
  AQED_CHECK(array_sort.is_array(), "Read from non-array");
  AQED_CHECK(width(index) == array_sort.index_width, "Read index width");
  return Intern(Op::kRead, Sort::BitVec(array_sort.elem_width),
                {array, index});
}

NodeRef Context::Write(NodeRef array, NodeRef index, NodeRef value) {
  const Sort& array_sort = sort(array);
  AQED_CHECK(array_sort.is_array(), "Write to non-array");
  AQED_CHECK(width(index) == array_sort.index_width, "Write index width");
  AQED_CHECK(width(value) == array_sort.elem_width, "Write value width");
  return Intern(Op::kWrite, array_sort, {array, index, value});
}

}  // namespace aqed::ir
