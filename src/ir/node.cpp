#include "ir/node.h"

#include <string>

namespace aqed::ir {

const char* OpName(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kConstArray: return "const_array";
    case Op::kInput: return "input";
    case Op::kState: return "state";
    case Op::kNot: return "not";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNeg: return "neg";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kUdiv: return "udiv";
    case Op::kUrem: return "urem";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kUlt: return "ult";
    case Op::kUle: return "ule";
    case Op::kSlt: return "slt";
    case Op::kSle: return "sle";
    case Op::kShl: return "shl";
    case Op::kLshr: return "lshr";
    case Op::kAshr: return "ashr";
    case Op::kIte: return "ite";
    case Op::kConcat: return "concat";
    case Op::kExtract: return "extract";
    case Op::kZext: return "zext";
    case Op::kSext: return "sext";
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
  }
  return "?";
}

bool OpIsLeaf(Op op) {
  return op == Op::kConst || op == Op::kInput || op == Op::kState;
}

std::string Sort::ToString() const {
  if (is_bitvec()) return "bv" + std::to_string(width);
  return "array[2^" + std::to_string(index_width) + " x bv" +
         std::to_string(elem_width) + "]";
}

}  // namespace aqed::ir
