#include "ir/printer.h"

#include <ostream>
#include <sstream>

namespace aqed::ir {

void Print(const TransitionSystem& ts, std::ostream& out) {
  const Context& ctx = ts.ctx();
  for (NodeRef ref = 1; ref < ctx.num_nodes(); ++ref) {
    const Node& node = ctx.node(ref);
    out << ref << ' ' << OpName(node.op) << ' ' << node.sort.ToString();
    if (node.op == Op::kConst) out << " value=" << node.const_val;
    if (node.op == Op::kExtract) {
      out << " [" << node.aux0 << ':' << node.aux1 << ']';
    }
    if (!node.name.empty()) out << " \"" << node.name << '"';
    for (NodeRef operand : node.operands) out << ' ' << operand;
    out << '\n';
  }
  for (NodeRef state : ts.states()) {
    out << "next " << state << " <- " << ts.next(state);
    if (ts.has_init(state)) out << " init=" << ts.init_value(state);
    out << '\n';
  }
  for (NodeRef constraint : ts.constraints()) {
    out << "constraint " << constraint << '\n';
  }
  for (size_t i = 0; i < ts.bads().size(); ++i) {
    out << "bad " << ts.bads()[i] << " \"" << ts.bad_labels()[i] << "\"\n";
  }
  for (const auto& [name, node] : ts.outputs()) {
    out << "output \"" << name << "\" " << node << '\n';
  }
}

std::string ToString(const TransitionSystem& ts) {
  std::ostringstream out;
  Print(ts, out);
  return out.str();
}

}  // namespace aqed::ir
