#include "ir/btor2.h"

#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/status.h"

namespace aqed::ir {

namespace {

// Incremental BTOR2 line emitter with sort and node deduplication.
class Btor2Writer {
 public:
  explicit Btor2Writer(const TransitionSystem& ts, std::ostream& out)
      : ts_(ts), ctx_(ts.ctx()), out_(out) {}

  void Write() {
    out_ << "; exported by aqed (A-QED verification library)\n";
    for (NodeRef ref = 1; ref < ctx_.num_nodes(); ++ref) Emit(ref);
    for (NodeRef state : ts_.states()) {
      const uint64_t state_sort = SortId(ctx_.sort(state));
      if (ts_.has_init(state)) {
        const Sort& sort = ctx_.sort(state);
        // Uniform array init: BTOR2 allows initializing an array state
        // with a bitvector constant (replicated).
        const uint64_t init_line =
            sort.is_bitvec()
                ? Constant(sort.width, ts_.init_value(state))
                : Constant(sort.elem_width, ts_.init_value(state));
        out_ << next_id_++ << " init " << state_sort << ' '
             << node_line_.at(state) << ' ' << init_line << '\n';
      }
      out_ << next_id_++ << " next " << state_sort << ' '
           << node_line_.at(state) << ' ' << node_line_.at(ts_.next(state))
           << '\n';
    }
    for (NodeRef constraint : ts_.constraints()) {
      out_ << next_id_++ << " constraint " << node_line_.at(constraint)
           << '\n';
    }
    for (size_t i = 0; i < ts_.bads().size(); ++i) {
      out_ << next_id_++ << " bad " << node_line_.at(ts_.bads()[i]) << " ; "
           << ts_.bad_labels()[i] << '\n';
    }
  }

 private:
  uint64_t SortId(const Sort& sort) {
    auto key = std::tuple(sort.kind, sort.width, sort.index_width,
                          sort.elem_width);
    if (auto it = sorts_.find(key); it != sorts_.end()) return it->second;
    uint64_t id;
    if (sort.is_bitvec()) {
      id = next_id_++;
      out_ << id << " sort bitvec " << sort.width << '\n';
    } else {
      const uint64_t index_sort = SortId(Sort::BitVec(sort.index_width));
      const uint64_t elem_sort = SortId(Sort::BitVec(sort.elem_width));
      id = next_id_++;
      out_ << id << " sort array " << index_sort << ' ' << elem_sort << '\n';
    }
    sorts_.emplace(key, id);
    return id;
  }

  uint64_t Constant(uint32_t width, uint64_t value) {
    const auto key = std::pair(width, value);
    if (auto it = consts_.find(key); it != consts_.end()) return it->second;
    const uint64_t sort = SortId(Sort::BitVec(width));
    const uint64_t id = next_id_++;
    out_ << id << " constd " << sort << ' ' << value << '\n';
    consts_.emplace(key, id);
    return id;
  }

  // Widens/narrows the shift amount to the value's width, as BTOR2 shifts
  // require equal operand sorts.
  uint64_t CoerceAmount(NodeRef amount, uint32_t target_width) {
    const uint32_t width = ctx_.width(amount);
    const uint64_t line = node_line_.at(amount);
    if (width == target_width) return line;
    const uint64_t sort = SortId(Sort::BitVec(target_width));
    const uint64_t id = next_id_++;
    if (width < target_width) {
      out_ << id << " uext " << sort << ' ' << line << ' '
           << target_width - width << '\n';
    } else {
      // Truncation is sound here only because our semantics saturate
      // oversized shifts; guard by ORing the truncated-away bits is not
      // needed for widths <= 64 used with in-range amounts, so emit an
      // explicit saturating form: ite(amount >= width, width, amount).
      // For export simplicity we slice; external checking of designs with
      // oversized symbolic shifts should widen the value instead.
      out_ << id << " slice " << sort << ' ' << line << ' '
           << target_width - 1 << " 0\n";
    }
    return id;
  }

  void Emit(NodeRef ref) {
    const Node& node = ctx_.node(ref);
    const Sort& sort = node.sort;
    switch (node.op) {
      case Op::kConst:
        node_line_[ref] = Constant(sort.width, node.const_val);
        return;
      case Op::kConstArray: {
        // No direct BTOR2 const-array expression node; model as a fresh
        // state with init+next to itself would change semantics inside a
        // combinational expression, so emit as input with a comment. All
        // library-produced systems only use kConstArray through state
        // init, which is handled in Write(); reaching here means a direct
        // combinational use.
        const uint64_t sort_id = SortId(sort);
        const uint64_t id = next_id_++;
        out_ << id << " state " << sort_id
             << " ; const-array (uniform "
             << ctx_.node(node.operands[0]).const_val << ")\n";
        node_line_[ref] = id;
        return;
      }
      case Op::kInput: {
        const uint64_t sort_id = SortId(sort);
        const uint64_t id = next_id_++;
        out_ << id << " input " << sort_id << ' ' << node.name << '\n';
        node_line_[ref] = id;
        return;
      }
      case Op::kState: {
        const uint64_t sort_id = SortId(sort);
        const uint64_t id = next_id_++;
        out_ << id << " state " << sort_id << ' ' << node.name << '\n';
        node_line_[ref] = id;
        return;
      }
      case Op::kExtract: {
        const uint64_t id = next_id_++;
        out_ << id << " slice " << SortId(sort) << ' '
             << node_line_.at(node.operands[0]) << ' ' << node.aux0 << ' '
             << node.aux1 << '\n';
        node_line_[ref] = id;
        return;
      }
      case Op::kZext:
      case Op::kSext: {
        const uint64_t sort_id = SortId(sort);
        const uint64_t id = next_id_++;
        const uint32_t extend =
            sort.width - ctx_.width(node.operands[0]);
        out_ << id << (node.op == Op::kZext ? " uext " : " sext ")
             << sort_id << ' ' << node_line_.at(node.operands[0]) << ' '
             << extend << '\n';
        node_line_[ref] = id;
        return;
      }
      case Op::kShl:
      case Op::kLshr:
      case Op::kAshr: {
        const char* name = node.op == Op::kShl    ? "sll"
                           : node.op == Op::kLshr ? "srl"
                                                  : "sra";
        const uint64_t sort_id = SortId(sort);
        const uint64_t amount =
            CoerceAmount(node.operands[1], sort.width);
        const uint64_t id = next_id_++;
        out_ << id << ' ' << name << ' ' << sort_id << ' '
             << node_line_.at(node.operands[0]) << ' ' << amount << '\n';
        node_line_[ref] = id;
        return;
      }
      default:
        break;
    }
    // Uniform operand-list operations.
    const char* name = nullptr;
    switch (node.op) {
      case Op::kNot: name = "not"; break;
      case Op::kAnd: name = "and"; break;
      case Op::kOr: name = "or"; break;
      case Op::kXor: name = "xor"; break;
      case Op::kNeg: name = "neg"; break;
      case Op::kAdd: name = "add"; break;
      case Op::kSub: name = "sub"; break;
      case Op::kMul: name = "mul"; break;
      case Op::kUdiv: name = "udiv"; break;
      case Op::kUrem: name = "urem"; break;
      case Op::kEq: name = "eq"; break;
      case Op::kNe: name = "neq"; break;
      case Op::kUlt: name = "ult"; break;
      case Op::kUle: name = "ulte"; break;
      case Op::kSlt: name = "slt"; break;
      case Op::kSle: name = "slte"; break;
      case Op::kIte: name = "ite"; break;
      case Op::kConcat: name = "concat"; break;
      case Op::kRead: name = "read"; break;
      case Op::kWrite: name = "write"; break;
      default:
        AQED_CHECK(false, "ExportBtor2: unhandled op");
    }
    const uint64_t sort_id = SortId(sort);
    const uint64_t id = next_id_++;
    out_ << id << ' ' << name << ' ' << sort_id;
    for (NodeRef operand : node.operands) {
      out_ << ' ' << node_line_.at(operand);
    }
    out_ << '\n';
    node_line_[ref] = id;
  }

  const TransitionSystem& ts_;
  const Context& ctx_;
  std::ostream& out_;
  uint64_t next_id_ = 1;
  std::map<std::tuple<SortKind, uint32_t, uint32_t, uint32_t>, uint64_t>
      sorts_;
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> consts_;
  std::unordered_map<NodeRef, uint64_t> node_line_;
};

}  // namespace

void ExportBtor2(const TransitionSystem& ts, std::ostream& out) {
  Btor2Writer(ts, out).Write();
}

std::string ToBtor2(const TransitionSystem& ts) {
  std::ostringstream out;
  ExportBtor2(ts, out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Import
// ---------------------------------------------------------------------------

namespace {

// Line-oriented BTOR2 reader covering the operator subset this library
// emits. Structural errors (unknown ids, unsupported keywords, malformed
// values) are reported via Status; type errors surface through the final
// TransitionSystem::Validate().
class Btor2Reader {
 public:
  explicit Btor2Reader(std::istream& in) : in_(in) {}

  StatusOr<std::unique_ptr<TransitionSystem>> Read() {
    ts_ = std::make_unique<TransitionSystem>();
    std::string line;
    uint64_t line_number = 0;
    while (std::getline(in_, line)) {
      ++line_number;
      if (Status status = ParseLine(line); !status.ok()) {
        return Status::Error("btor2 line " + std::to_string(line_number) +
                             ": " + status.message());
      }
    }
    return std::move(ts_);
  }

 private:
  Status ParseLine(std::string line) {
    // Strip comments.
    if (const size_t comment = line.find(';'); comment != std::string::npos) {
      line.resize(comment);
    }
    std::istringstream tokens(line);
    std::vector<std::string> tok;
    std::string word;
    while (tokens >> word) tok.push_back(word);
    if (tok.empty()) return Status::Ok();
    if (tok.size() < 2) return Status::Error("truncated line");

    uint64_t id = 0;
    if (Status status = ParseUint(tok[0], id); !status.ok()) return status;
    const std::string& kind = tok[1];

    if (kind == "sort") return ParseSort(id, tok);
    if (kind == "constd" || kind == "const" || kind == "consth" ||
        kind == "zero" || kind == "one" || kind == "ones") {
      return ParseConstant(id, kind, tok);
    }
    if (kind == "input" || kind == "state") {
      Sort sort;
      if (Status status = LookupSort(tok, 2, sort); !status.ok()) {
        return status;
      }
      const std::string name =
          tok.size() > 3 ? tok[3]
                         : (kind == "input" ? "in" : "s") + std::to_string(id);
      nodes_[id] = kind == "input" ? ts_->AddInput(name, sort)
                                   : ts_->AddState(name, sort);
      return Status::Ok();
    }
    if (kind == "init") {
      NodeRef state = kNullNode, value = kNullNode;
      if (tok.size() < 5) return Status::Error("init needs 3 operands");
      if (Status status = LookupNode(tok[3], state); !status.ok()) {
        return status;
      }
      if (Status status = LookupNode(tok[4], value); !status.ok()) {
        return status;
      }
      if (ts_->ctx().node(value).op != Op::kConst) {
        return Status::Error("only constant init values are supported");
      }
      ts_->SetInit(state, ts_->ctx().node(value).const_val);
      return Status::Ok();
    }
    if (kind == "next") {
      NodeRef state = kNullNode, next = kNullNode;
      if (tok.size() < 5) return Status::Error("next needs 3 operands");
      if (Status status = LookupNode(tok[3], state); !status.ok()) {
        return status;
      }
      if (Status status = LookupNode(tok[4], next); !status.ok()) {
        return status;
      }
      ts_->SetNext(state, next);
      return Status::Ok();
    }
    if (kind == "constraint" || kind == "bad" || kind == "output") {
      NodeRef node = kNullNode;
      if (Status status = LookupNode(tok[2], node); !status.ok()) {
        return status;
      }
      if (kind == "constraint") {
        ts_->AddConstraint(node);
      } else if (kind == "bad") {
        ts_->AddBad(node, "bad" + std::to_string(id));
      } else {
        ts_->AddOutput("out" + std::to_string(id), node);
      }
      return Status::Ok();
    }
    return ParseOperation(id, kind, tok);
  }

  Status ParseSort(uint64_t id, const std::vector<std::string>& tok) {
    if (tok.size() >= 4 && tok[2] == "bitvec") {
      uint64_t width = 0;
      if (Status status = ParseUint(tok[3], width); !status.ok()) {
        return status;
      }
      if (width == 0 || width > kMaxWidth) {
        return Status::Error("unsupported bitvector width " + tok[3]);
      }
      sorts_[id] = Sort::BitVec(static_cast<uint32_t>(width));
      return Status::Ok();
    }
    if (tok.size() >= 5 && tok[2] == "array") {
      Sort index, elem;
      if (Status status = LookupSort(tok, 3, index); !status.ok()) {
        return status;
      }
      if (Status status = LookupSort(tok, 4, elem); !status.ok()) {
        return status;
      }
      if (!index.is_bitvec() || !elem.is_bitvec() || index.width > 16) {
        return Status::Error("unsupported array sort");
      }
      sorts_[id] = Sort::Array(index.width, elem.width);
      return Status::Ok();
    }
    return Status::Error("malformed sort");
  }

  Status ParseConstant(uint64_t id, const std::string& kind,
                       const std::vector<std::string>& tok) {
    Sort sort;
    if (Status status = LookupSort(tok, 2, sort); !status.ok()) return status;
    if (!sort.is_bitvec()) return Status::Error("constant of array sort");
    uint64_t value = 0;
    if (kind == "zero") {
      value = 0;
    } else if (kind == "one") {
      value = 1;
    } else if (kind == "ones") {
      value = WidthMask(sort.width);
    } else {
      if (tok.size() < 4) return Status::Error("constant missing value");
      const int base = kind == "constd" ? 10 : (kind == "const" ? 2 : 16);
      char* end = nullptr;
      value = std::strtoull(tok[3].c_str(), &end, base);
      if (end == nullptr || *end != '\0') {
        return Status::Error("malformed constant value " + tok[3]);
      }
    }
    nodes_[id] = ts_->ctx().Const(sort.width, value);
    return Status::Ok();
  }

  Status ParseOperation(uint64_t id, const std::string& kind,
                        const std::vector<std::string>& tok) {
    Sort sort;
    if (Status status = LookupSort(tok, 2, sort); !status.ok()) return status;
    std::vector<NodeRef> operand;
    std::vector<uint64_t> literal;  // trailing numeric arguments
    for (size_t i = 3; i < tok.size(); ++i) {
      // slice/uext/sext carry plain numbers after the node operands.
      if (kind == "slice" && i >= 4) {
        uint64_t value = 0;
        if (Status status = ParseUint(tok[i], value); !status.ok()) {
          return status;
        }
        literal.push_back(value);
        continue;
      }
      if ((kind == "uext" || kind == "sext") && i >= 4) {
        uint64_t value = 0;
        if (Status status = ParseUint(tok[i], value); !status.ok()) {
          return status;
        }
        literal.push_back(value);
        continue;
      }
      NodeRef node = kNullNode;
      if (Status status = LookupNode(tok[i], node); !status.ok()) {
        return status;
      }
      operand.push_back(node);
    }
    Context& ctx = ts_->ctx();
    auto need = [&](size_t n) { return operand.size() == n; };
    NodeRef result = kNullNode;
    if (kind == "not" && need(1)) result = ctx.Not(operand[0]);
    else if (kind == "neg" && need(1)) result = ctx.Neg(operand[0]);
    else if (kind == "and" && need(2)) result = ctx.And(operand[0], operand[1]);
    else if (kind == "or" && need(2)) result = ctx.Or(operand[0], operand[1]);
    else if (kind == "xor" && need(2)) result = ctx.Xor(operand[0], operand[1]);
    else if (kind == "add" && need(2)) result = ctx.Add(operand[0], operand[1]);
    else if (kind == "sub" && need(2)) result = ctx.Sub(operand[0], operand[1]);
    else if (kind == "mul" && need(2)) result = ctx.Mul(operand[0], operand[1]);
    else if (kind == "udiv" && need(2)) result = ctx.Udiv(operand[0], operand[1]);
    else if (kind == "urem" && need(2)) result = ctx.Urem(operand[0], operand[1]);
    else if (kind == "eq" && need(2)) result = ctx.Eq(operand[0], operand[1]);
    else if (kind == "neq" && need(2)) result = ctx.Ne(operand[0], operand[1]);
    else if (kind == "ult" && need(2)) result = ctx.Ult(operand[0], operand[1]);
    else if (kind == "ulte" && need(2)) result = ctx.Ule(operand[0], operand[1]);
    else if (kind == "ugt" && need(2)) result = ctx.Ugt(operand[0], operand[1]);
    else if (kind == "ugte" && need(2)) result = ctx.Uge(operand[0], operand[1]);
    else if (kind == "slt" && need(2)) result = ctx.Slt(operand[0], operand[1]);
    else if (kind == "slte" && need(2)) result = ctx.Sle(operand[0], operand[1]);
    else if (kind == "sll" && need(2)) result = ctx.Shl(operand[0], operand[1]);
    else if (kind == "srl" && need(2)) result = ctx.Lshr(operand[0], operand[1]);
    else if (kind == "sra" && need(2)) result = ctx.Ashr(operand[0], operand[1]);
    else if (kind == "concat" && need(2)) {
      result = ctx.Concat(operand[0], operand[1]);
    } else if (kind == "read" && need(2)) {
      result = ctx.Read(operand[0], operand[1]);
    } else if (kind == "ite" && need(3)) {
      result = ctx.Ite(operand[0], operand[1], operand[2]);
    } else if (kind == "write" && need(3)) {
      result = ctx.Write(operand[0], operand[1], operand[2]);
    } else if (kind == "slice" && need(1) && literal.size() == 2) {
      result = ctx.Extract(operand[0], static_cast<uint32_t>(literal[0]),
                           static_cast<uint32_t>(literal[1]));
    } else if (kind == "uext" && need(1) && literal.size() == 1) {
      result = ctx.Zext(operand[0],
                        ctx.width(operand[0]) +
                            static_cast<uint32_t>(literal[0]));
    } else if (kind == "sext" && need(1) && literal.size() == 1) {
      result = ctx.Sext(operand[0],
                        ctx.width(operand[0]) +
                            static_cast<uint32_t>(literal[0]));
    } else {
      return Status::Error("unsupported operation '" + kind + "'");
    }
    if (ctx.sort(result) != sort) {
      return Status::Error("result sort mismatch for '" + kind + "'");
    }
    nodes_[id] = result;
    return Status::Ok();
  }

  static Status ParseUint(const std::string& text, uint64_t& out) {
    char* end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || text.empty()) {
      return Status::Error("expected a number, got '" + text + "'");
    }
    return Status::Ok();
  }

  Status LookupSort(const std::vector<std::string>& tok, size_t index,
                    Sort& out) {
    if (index >= tok.size()) return Status::Error("missing sort operand");
    uint64_t id = 0;
    if (Status status = ParseUint(tok[index], id); !status.ok()) {
      return status;
    }
    auto it = sorts_.find(id);
    if (it == sorts_.end()) {
      return Status::Error("unknown sort id " + tok[index]);
    }
    out = it->second;
    return Status::Ok();
  }

  Status LookupNode(const std::string& text, NodeRef& out) {
    // A leading '-' denotes bitwise negation of the referenced node.
    const bool negated = !text.empty() && text[0] == '-';
    uint64_t id = 0;
    if (Status status = ParseUint(negated ? text.substr(1) : text, id);
        !status.ok()) {
      return status;
    }
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      return Status::Error("unknown node id " + text);
    }
    out = negated ? ts_->ctx().Not(it->second) : it->second;
    return Status::Ok();
  }

  std::istream& in_;
  std::unique_ptr<TransitionSystem> ts_;
  std::unordered_map<uint64_t, Sort> sorts_;
  std::unordered_map<uint64_t, NodeRef> nodes_;
};

}  // namespace

StatusOr<std::unique_ptr<TransitionSystem>> ImportBtor2(std::istream& in) {
  return Btor2Reader(in).Read();
}

StatusOr<std::unique_ptr<TransitionSystem>> ImportBtor2String(
    const std::string& text) {
  std::istringstream in(text);
  return ImportBtor2(in);
}

}  // namespace aqed::ir
