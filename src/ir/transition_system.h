// Synchronous transition system over the word-level IR.
//
// This is the formal object of the paper's Def. 1: a finite-state system with
// inputs, registered state (init/next), invariant constraints on the inputs
// (the environment assumptions), named outputs, and "bad" predicates whose
// reachability BMC checks. One TransitionSystem owns one Context.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/context.h"
#include "support/status.h"

namespace aqed::ir {

class TransitionSystem {
 public:
  Context& ctx() { return ctx_; }
  const Context& ctx() const { return ctx_; }

  // Creates a free input of the given sort, fresh every cycle under BMC.
  NodeRef AddInput(const std::string& name, Sort sort);

  // Creates a register/memory state. If `init` is given it must be a
  // constant (kConst / kConstArray); states without init start symbolic.
  NodeRef AddState(const std::string& name, Sort sort,
                   std::optional<uint64_t> init_value = std::nullopt);

  // Defines the next-state function of `state` (mandatory for every state).
  void SetNext(NodeRef state, NodeRef next);

  // Sets/overrides the initial value of an existing state (importers use
  // this when init lines arrive after the state declaration).
  void SetInit(NodeRef state, uint64_t init_value);

  // Asserts `condition` (1-bit) as an environment assumption every cycle.
  void AddConstraint(NodeRef condition);

  // Registers `condition` (1-bit) as a property violation to search for.
  // Returns the bad-state index used by the BMC engine.
  uint32_t AddBad(NodeRef condition, const std::string& label);

  // Names a signal for tracing / simulation visibility.
  void AddOutput(const std::string& name, NodeRef node);

  NodeRef next(NodeRef state) const;
  bool has_init(NodeRef state) const { return init_.contains(state); }
  // Initial value of a (bitvector or array) state; arrays are uniform-init.
  uint64_t init_value(NodeRef state) const;

  const std::vector<NodeRef>& inputs() const { return ctx_.inputs(); }
  const std::vector<NodeRef>& states() const { return ctx_.states(); }
  const std::vector<NodeRef>& constraints() const { return constraints_; }
  const std::vector<NodeRef>& bads() const { return bads_; }
  const std::vector<std::string>& bad_labels() const { return bad_labels_; }
  const std::vector<std::pair<std::string, NodeRef>>& outputs() const {
    return outputs_;
  }

  // Structural well-formedness check (widths, next-function coverage).
  Status Validate() const;

 private:
  Context ctx_;
  std::unordered_map<NodeRef, NodeRef> next_;
  std::unordered_map<NodeRef, uint64_t> init_;
  std::vector<NodeRef> constraints_;
  std::vector<NodeRef> bads_;
  std::vector<std::string> bad_labels_;
  std::vector<std::pair<std::string, NodeRef>> outputs_;
};

}  // namespace aqed::ir
