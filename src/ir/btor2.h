// BTOR2 export: serializes a transition system in the word-level
// model-checking exchange format (Niemetz et al., CAV 2018), so designs and
// A-QED-instrumented models can be cross-checked with external checkers
// (btormc, AVR, Pono) or inspected with standard tooling.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ir/transition_system.h"
#include "support/status.h"

namespace aqed::ir {

// Writes the system in BTOR2 text format. Node names are attached as
// symbols to inputs and states; bad/constraint lines carry their labels as
// trailing comments.
void ExportBtor2(const TransitionSystem& ts, std::ostream& out);
std::string ToBtor2(const TransitionSystem& ts);

// Parses BTOR2 text into a transition system. Supports the word-level core
// used by this library (bitvector/array sorts; const/constd/consth; input/
// state/init/next/constraint/bad/output; the operator set of ir::Op).
// Init values must be constants. Returns an error Status for unsupported
// or malformed lines.
StatusOr<std::unique_ptr<TransitionSystem>> ImportBtor2(std::istream& in);
StatusOr<std::unique_ptr<TransitionSystem>> ImportBtor2String(
    const std::string& text);

}  // namespace aqed::ir
