// Hash-consed builder for the word-level IR.
//
// The Context owns all nodes of one design. Pure operation nodes are
// structurally hash-consed (identical op + operands => identical NodeRef) and
// lightly constant-folded, so design builders can compute with IR expressions
// freely without blowing up the graph. Inputs and states are never shared.
//
// NodeRefs are indices into the context's node table; operands always have a
// smaller index than their users, so node-table order is a topological order
// (the simulator and bit-blaster rely on this).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/node.h"

namespace aqed::ir {

class Context {
 public:
  Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  Context(Context&&) = default;
  Context& operator=(Context&&) = default;

  const Node& node(NodeRef ref) const { return nodes_[ref]; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  const Sort& sort(NodeRef ref) const { return nodes_[ref].sort; }
  uint32_t width(NodeRef ref) const { return nodes_[ref].sort.width; }

  // --- leaves ---------------------------------------------------------
  NodeRef Const(uint32_t width, uint64_t value);
  NodeRef True() { return Const(1, 1); }
  NodeRef False() { return Const(1, 0); }
  NodeRef Bit(bool value) { return Const(1, value ? 1 : 0); }
  NodeRef ConstArray(uint32_t index_width, uint32_t elem_width,
                     uint64_t value);
  NodeRef Input(const std::string& name, Sort sort);
  NodeRef State(const std::string& name, Sort sort);

  // --- bitwise ----------------------------------------------------------
  NodeRef Not(NodeRef a);
  NodeRef And(NodeRef a, NodeRef b);
  NodeRef Or(NodeRef a, NodeRef b);
  NodeRef Xor(NodeRef a, NodeRef b);
  NodeRef Implies(NodeRef a, NodeRef b) { return Or(Not(a), b); }
  // Variadic conveniences over 1-bit values.
  NodeRef AndAll(std::span<const NodeRef> xs);
  NodeRef OrAll(std::span<const NodeRef> xs);

  // --- arithmetic -------------------------------------------------------
  NodeRef Neg(NodeRef a);
  NodeRef Add(NodeRef a, NodeRef b);
  NodeRef Sub(NodeRef a, NodeRef b);
  NodeRef Mul(NodeRef a, NodeRef b);
  NodeRef Udiv(NodeRef a, NodeRef b);
  NodeRef Urem(NodeRef a, NodeRef b);

  // --- comparison ---------------------------------------------------------
  NodeRef Eq(NodeRef a, NodeRef b);
  NodeRef Ne(NodeRef a, NodeRef b);
  NodeRef Ult(NodeRef a, NodeRef b);
  NodeRef Ule(NodeRef a, NodeRef b);
  NodeRef Ugt(NodeRef a, NodeRef b) { return Ult(b, a); }
  NodeRef Uge(NodeRef a, NodeRef b) { return Ule(b, a); }
  NodeRef Slt(NodeRef a, NodeRef b);
  NodeRef Sle(NodeRef a, NodeRef b);

  // --- shifts ------------------------------------------------------------
  NodeRef Shl(NodeRef a, NodeRef amount);
  NodeRef Lshr(NodeRef a, NodeRef amount);
  NodeRef Ashr(NodeRef a, NodeRef amount);

  // --- structure ---------------------------------------------------------
  NodeRef Ite(NodeRef cond, NodeRef then_val, NodeRef else_val);
  NodeRef Concat(NodeRef high, NodeRef low);
  NodeRef Extract(NodeRef a, uint32_t hi, uint32_t lo);
  NodeRef Zext(NodeRef a, uint32_t new_width);
  NodeRef Sext(NodeRef a, uint32_t new_width);

  // --- arrays -------------------------------------------------------------
  NodeRef Read(NodeRef array, NodeRef index);
  NodeRef Write(NodeRef array, NodeRef index, NodeRef value);

  // All input / state nodes, in creation order.
  const std::vector<NodeRef>& inputs() const { return inputs_; }
  const std::vector<NodeRef>& states() const { return states_; }

 private:
  struct Key {
    Op op;
    uint64_t const_val;
    uint32_t aux0, aux1;
    uint32_t sort_tag;  // disambiguates same-shape ops of different sorts
    std::vector<NodeRef> operands;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  NodeRef Intern(Op op, Sort sort, std::vector<NodeRef> operands,
                 uint64_t const_val = 0, uint32_t aux0 = 0, uint32_t aux1 = 0);
  NodeRef MakeBinary(Op op, Sort sort, NodeRef a, NodeRef b);
  bool IsConst(NodeRef ref) const { return nodes_[ref].op == Op::kConst; }
  uint64_t ConstVal(NodeRef ref) const { return nodes_[ref].const_val; }
  // Attempts constant folding; returns kNullNode when not foldable.
  NodeRef TryFold(Op op, Sort sort, std::span<const NodeRef> operands,
                  uint32_t aux0, uint32_t aux1);

  std::vector<Node> nodes_;
  std::unordered_map<Key, NodeRef, KeyHash> cache_;
  std::vector<NodeRef> inputs_;
  std::vector<NodeRef> states_;
};

}  // namespace aqed::ir
