// Human-readable dump of a transition system, in a BTOR2-like line format,
// for debugging design builders and instrumentation passes.
#pragma once

#include <iosfwd>
#include <string>

#include "ir/transition_system.h"

namespace aqed::ir {

void Print(const TransitionSystem& ts, std::ostream& out);
std::string ToString(const TransitionSystem& ts);

}  // namespace aqed::ir
