// Order-independent structural digest of a transition system.
//
// The solve cache (src/service/cache.h) keys results by *what was solved*,
// not by which process solved it: two designs that denote the same circuit
// must hash equal even when their builders created the nodes in a different
// order (hash-consing assigns NodeRefs in build order, so node numbering is
// an artifact of the builder's statement order, not of the design).
//
// The digest therefore hashes pure *structure*: an operation node hashes
// over (op, sort, aux, operand digests); inputs and states are leaves
// identified by (kind, name, sort) — their NodeRef never enters a hash.
// At the system level every category (states with their next functions and
// init values, inputs, constraints, bads, outputs) folds in as a salted
// commutative sum, so registration order is immaterial too. The result: a
// digest that is invariant under node renumbering and declaration reorder,
// and that changes whenever any reachable logic, width, constant, init
// value, constraint, bad predicate, or port name changes.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/transition_system.h"

namespace aqed::ir {

// Memoized per-node structural hasher over one context. States and inputs
// hash as named leaves; their next functions / init values are folded in by
// StructuralDigest (hashing them here would make the node hash cyclic).
class StructuralHasher {
 public:
  explicit StructuralHasher(const Context& ctx);

  // Structural digest of one node (never 0 for a real node, so callers can
  // use 0 as "absent"). kNullNode digests to a fixed nonzero sentinel.
  uint64_t Digest(NodeRef ref);

 private:
  const Context& ctx_;
  std::vector<uint64_t> memo_;  // 0 = not yet computed
};

// Whole-system digest: states (name, sort, init, next), inputs, constraints,
// bads (with labels), and outputs (with names), combined order-independently
// per category. Designs built twice in different node orders digest equal;
// any semantic change digests different (modulo 64-bit collisions).
uint64_t StructuralDigest(const TransitionSystem& ts);

}  // namespace aqed::ir
