// Order-independent structural digest of a transition system.
//
// The solve cache (src/service/cache.h) keys results by *what was solved*,
// not by which process solved it: two designs that denote the same circuit
// must hash equal even when their builders created the nodes in a different
// order (hash-consing assigns NodeRefs in build order, so node numbering is
// an artifact of the builder's statement order, not of the design).
//
// The digest therefore hashes pure *structure*: an operation node hashes
// over (op, sort, aux, operand digests); inputs and states are leaves
// identified by (kind, name, sort) — their NodeRef never enters a hash.
// At the system level every category (states with their next functions and
// init values, inputs, constraints, bads, outputs) folds in as a salted
// commutative sum, so registration order is immaterial too. The result: a
// digest that is invariant under node renumbering and declaration reorder,
// and that changes whenever any reachable logic, width, constant, init
// value, constraint, bad predicate, or port name changes.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/transition_system.h"

namespace aqed::ir {

// Memoized per-node structural hasher over one context. States and inputs
// hash as named leaves; their next functions / init values are folded in by
// StructuralDigest (hashing them here would make the node hash cyclic).
// In anonymous mode a leaf hashes by its ordinal among the context's inputs
// (resp. states) in registration order instead of by name — see
// AnonymousStructuralDigest below for when that is the right identity.
class StructuralHasher {
 public:
  explicit StructuralHasher(const Context& ctx, bool anonymous = false);

  // Structural digest of one node (never 0 for a real node, so callers can
  // use 0 as "absent"). kNullNode digests to a fixed nonzero sentinel.
  uint64_t Digest(NodeRef ref);

 private:
  const Context& ctx_;
  bool anonymous_;
  std::vector<uint64_t> memo_;     // 0 = not yet computed
  std::vector<uint64_t> ordinal_;  // anonymous mode: 1-based leaf ordinals
};

// Whole-system digest: states (name, sort, init, next), inputs, constraints,
// bads (with labels), and outputs (with names), combined order-independently
// per category. Designs built twice in different node orders digest equal;
// any semantic change digests different (modulo 64-bit collisions).
uint64_t StructuralDigest(const TransitionSystem& ts);

// Name-insensitive variant for machine-generated systems. The decomposition
// extractor (src/decomp) synthesizes one transition system per
// sub-accelerator, and the whole point of caching those is that *isomorphic*
// fragments — stage 3 of a uniform pipeline vs stage 7, or the same stage
// carved out of two different parent designs — share one solve. Their
// signal names differ by construction ("s3.r0" vs "s7.r0", a parent input
// vs a freed cut), so the named digest above would never let them meet.
//
// Here a leaf's identity is its *ordinal* among the system's inputs (resp.
// states) in registration order, plus its sort and init value; names never
// enter, including output names. Registration order is significant where
// the named digest was order-free: for hand-built designs that would make
// the digest an artifact of statement order, but extractor output is
// canonical (fragments are rebuilt in ascending parent-node order), so two
// isomorphic fragments register their leaves identically and digest equal.
// Use StructuralDigest for anything a human builds or names.
uint64_t AnonymousStructuralDigest(const TransitionSystem& ts);

}  // namespace aqed::ir
