#include "bmc/trace.h"

#include <algorithm>
#include <sstream>

#include "sim/simulator.h"

namespace aqed::bmc {

namespace {

// Applies the trace's initial-state values and drives one simulator run,
// invoking `on_cycle(sim, t)` after each cycle's Eval.
template <typename OnCycle>
void Drive(const Trace& trace, sim::Simulator& sim, OnCycle&& on_cycle) {
  sim.Reset();
  for (const auto& [state, value] : trace.initial_states) {
    sim.SetState(state, value);
  }
  for (const auto& [state, values] : trace.initial_arrays) {
    sim.SetArrayState(state, values);
  }
  for (uint32_t t = 0; t < trace.length(); ++t) {
    for (const auto& [input, value] : trace.inputs[t]) {
      sim.SetInput(input, value);
    }
    sim.Eval();
    on_cycle(sim, t);
    if (t + 1 < trace.length()) sim.Step();
  }
}

}  // namespace

bool ReplayTrace(const ir::TransitionSystem& ts, const Trace& trace) {
  if (trace.length() == 0) return false;
  sim::Simulator sim(ts);
  bool ok = true;
  Drive(trace, sim, [&](const sim::Simulator& s, uint32_t t) {
    if (!s.ConstraintsHold()) ok = false;
    if (t + 1 == trace.length()) {
      const auto active = s.ActiveBads();
      if (std::find(active.begin(), active.end(), trace.bad_index) ==
          active.end()) {
        ok = false;
      }
    }
  });
  return ok;
}

std::string FormatTrace(const ir::TransitionSystem& ts, const Trace& trace) {
  std::ostringstream out;
  out << "counterexample for \"" << trace.bad_label << "\" ("
      << trace.length() << " cycles)\n";
  if (trace.length() == 0) return out.str();
  sim::Simulator sim(ts);
  Drive(trace, sim, [&](const sim::Simulator& s, uint32_t t) {
    out << "cycle " << t << ":";
    for (ir::NodeRef input : ts.inputs()) {
      if (!ts.ctx().sort(input).is_bitvec()) continue;
      out << ' ' << ts.ctx().node(input).name << '=' << s.Value(input);
    }
    out << " |";
    for (const auto& [name, node] : ts.outputs()) {
      if (!ts.ctx().sort(node).is_bitvec()) continue;
      out << ' ' << name << '=' << s.Value(node);
    }
    out << '\n';
  });
  return out.str();
}

}  // namespace aqed::bmc
