#include "bmc/engine.h"

#include <numeric>

#include "sat/preprocessor.h"
#include "support/stats.h"
#include "support/status.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace aqed::bmc {

namespace {

// Outcome of one depth's satisfiability query.
struct DepthQuery {
  sat::SolveResult result = sat::SolveResult::kUnknown;
  std::vector<sat::LBool> model;  // over the main solver's variables
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
};

// Solves "target holds at this depth" on a preprocessed copy of the current
// formula; the model (if any) is extended back over eliminated variables.
DepthQuery SolvePreprocessed(const sat::Solver& main_solver, sat::Lit target,
                             const BmcOptions& options) {
  DepthQuery query;
  sat::Cnf cnf;
  main_solver.ExportClauses(cnf);
  const std::vector<sat::Var> frozen = {target.var()};
  const sat::PreprocessResult pre = sat::Preprocess(cnf, frozen);
  if (pre.unsat) {
    query.result = sat::SolveResult::kUnsat;
    return query;
  }
  sat::Solver scratch(options.solver_options);
  if (!sat::LoadCnf(pre.cnf, scratch)) {
    query.result = sat::SolveResult::kUnsat;
    return query;
  }
  if (options.conflict_budget >= 0) {
    scratch.SetConflictBudget(options.conflict_budget);
  }
  const sat::Lit assumptions[] = {target};
  query.result = scratch.Solve(assumptions);
  query.conflicts = scratch.stats().conflicts;
  query.decisions = scratch.stats().decisions;
  if (query.result == sat::SolveResult::kSat) {
    query.model = scratch.model();
    query.model.resize(cnf.num_vars, sat::LBool::kUndef);
    sat::ExtendModel(pre, query.model);
  }
  return query;
}

// Solves directly on the incremental main solver.
DepthQuery SolveIncremental(sat::Solver& main_solver, sat::Lit target,
                            const BmcOptions& options) {
  DepthQuery query;
  const uint64_t conflicts_before = main_solver.stats().conflicts;
  const uint64_t decisions_before = main_solver.stats().decisions;
  if (options.conflict_budget >= 0) {
    main_solver.SetConflictBudget(options.conflict_budget);
  }
  const sat::Lit assumptions[] = {target};
  query.result = main_solver.Solve(assumptions);
  query.conflicts = main_solver.stats().conflicts - conflicts_before;
  query.decisions = main_solver.stats().decisions - decisions_before;
  if (query.result == sat::SolveResult::kSat) query.model = main_solver.model();
  return query;
}

}  // namespace

BmcResult RunBmc(const ir::TransitionSystem& ts, const BmcOptions& options_in) {
  const Status valid = ts.Validate();
  AQED_CHECK(valid.ok(), "RunBmc on invalid system: " + valid.message());

  // Forward the cancellation token into the solver(s) so a cancel lands
  // mid-refutation, not only between depths.
  BmcOptions options = options_in;
  options.solver_options.cancel = options.cancel;

  Stopwatch stopwatch;
  sat::Solver solver(options.solver_options);
  bitblast::GateBuilder gates(solver);
  bitblast::BitBlaster blaster(gates);
  Unroller unroller(ts, blaster);

  std::vector<uint32_t> targets = options.bad_filter;
  if (targets.empty()) {
    targets.resize(ts.bads().size());
    std::iota(targets.begin(), targets.end(), 0);
  }
  AQED_CHECK(!targets.empty(), "RunBmc with no bad predicates");

  BmcResult result;
  for (uint32_t depth = 0; depth < options.max_bound; ++depth) {
    if (options.cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    {
      TELEMETRY_SPAN("bmc.unroll", {{"depth", depth}});
      unroller.AddFrame();
    }
    result.frames_explored = depth + 1;
    telemetry::MaxGauge("bmc.depth_reached", depth + 1);
    // Live (not high-water) depth for the flight recorder's depth-vs-time
    // chart; with concurrent jobs the sampled value is whichever engine
    // wrote last — a representative progress signal, not an invariant.
    telemetry::SetGauge("bmc.current_depth", depth + 1);

    // any_bad holds iff some targeted bad predicate fires at this depth.
    std::vector<sat::Lit> bad_lits;
    bad_lits.reserve(targets.size());
    for (uint32_t bad_index : targets) {
      bad_lits.push_back(unroller.BadLit(depth, bad_index));
    }
    const sat::Lit any_bad = gates.OrAll(bad_lits);
    if (gates.IsFalse(any_bad)) continue;  // statically unreachable here
    if (solver.inconsistent()) break;       // constraints are contradictory

    telemetry::Span solve_span("bmc.solve_depth", {{"depth", depth}});
    const DepthQuery query =
        options.use_preprocessing
            ? SolvePreprocessed(solver, any_bad, options)
            : SolveIncremental(solver, any_bad, options);
    solve_span.End();
    result.conflicts += query.conflicts;
    result.decisions += query.decisions;
    if (query.result == sat::SolveResult::kUnknown) {
      if (options.cancel.cancelled()) {
        result.cancelled = true;
        break;
      }
      // Refutation budget exhausted at this depth. Counterexample queries
      // are usually far easier than refutations, so keep deepening — the
      // run is no longer a complete proof up to the bound, which the final
      // outcome reflects if nothing is found.
      result.refutation_complete = false;
      continue;
    }
    if (query.result == sat::SolveResult::kUnsat) continue;

    // Counterexample found: identify the violated bad predicate.
    uint32_t hit = targets[0];
    for (uint32_t bad_index : targets) {
      const sat::Lit lit = unroller.BadLit(depth, bad_index);
      const sat::LBool value = query.model[lit.var()];
      const bool lit_true = lit.negated() ? value == sat::LBool::kFalse
                                          : value == sat::LBool::kTrue;
      if (lit_true) {
        hit = bad_index;
        break;
      }
    }
    result.outcome = BmcResult::Outcome::kCounterexample;
    result.trace = unroller.ExtractTrace(query.model, depth + 1, hit);
    if (options.validate_counterexamples) {
      TELEMETRY_SPAN("bmc.replay", {{"depth", depth}});
      // A counterexample whose replay fails on the simulator is a checker
      // bug (unroller/bit-blaster/solver disagreement with the IR
      // semantics), not a verdict about the design. It is reported with
      // trace_validated == false rather than aborting the process, so a
      // thousand-job campaign survives it and the scheduler can surface it
      // as a hard per-job failure (JobResult::checker_error).
      result.trace_validated = ReplayTrace(ts, result.trace);
    }
    break;
  }

  if (result.outcome == BmcResult::Outcome::kBoundReached &&
      (!result.refutation_complete || result.cancelled)) {
    result.outcome = BmcResult::Outcome::kUnknown;
    // A cancellation (deadline or first-bug-wins) trumps budget skips for
    // the reason code: it is what actually ended the run.
    result.unknown_reason =
        result.cancelled
            ? sched::UnknownReasonFromCancel(options.cancel.reason())
            : UnknownReason::kConflictBudget;
  }
  result.seconds = stopwatch.ElapsedSeconds();
  result.clauses = solver.num_clauses();
  return result;
}

}  // namespace aqed::bmc
