#include "bmc/engine.h"

#include <atomic>
#include <memory>
#include <numeric>

#include "sat/cube.h"
#include "sat/preprocessor.h"
#include "sched/memory_governor.h"
#include "sched/thread_pool.h"
#include "support/stats.h"
#include "support/status.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace aqed::bmc {

namespace {

// Outcome of one depth's satisfiability query.
struct DepthQuery {
  sat::SolveResult result = sat::SolveResult::kUnknown;
  std::vector<sat::LBool> model;  // over the main solver's variables
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  bool cube_escalated = false;
  uint64_t cubes_solved = 0;
};

// Solves "target holds at this depth" on a preprocessed copy of the current
// formula; the model (if any) is extended back over eliminated variables.
DepthQuery SolvePreprocessed(const sat::Solver& main_solver, sat::Lit target,
                             const BmcOptions& options) {
  DepthQuery query;
  sat::Cnf cnf;
  main_solver.ExportClauses(cnf);
  const std::vector<sat::Var> frozen = {target.var()};
  const sat::PreprocessResult pre = sat::Preprocess(cnf, frozen);
  if (pre.unsat) {
    query.result = sat::SolveResult::kUnsat;
    return query;
  }
  sat::Solver scratch(options.solver_options);
  if (!sat::LoadCnf(pre.cnf, scratch)) {
    query.result = sat::SolveResult::kUnsat;
    return query;
  }
  const sat::Lit assumptions[] = {target};
  query.result = scratch.Solve(
      assumptions, sat::SolveLimits{.max_conflicts = options.conflict_budget});
  query.conflicts = scratch.stats().conflicts;
  query.decisions = scratch.stats().decisions;
  if (query.result == sat::SolveResult::kSat) {
    query.model = scratch.model();
    query.model.resize(cnf.num_vars, sat::LBool::kUndef);
    sat::ExtendModel(pre, query.model);
  }
  return query;
}

// Solves directly on the incremental main solver under the given conflict
// limit (negative: unlimited).
DepthQuery SolveIncremental(sat::Solver& main_solver, sat::Lit target,
                            int64_t max_conflicts) {
  DepthQuery query;
  const uint64_t conflicts_before = main_solver.stats().conflicts;
  const uint64_t decisions_before = main_solver.stats().decisions;
  const sat::Lit assumptions[] = {target};
  query.result = main_solver.Solve(
      assumptions, sat::SolveLimits{.max_conflicts = max_conflicts});
  query.conflicts = main_solver.stats().conflicts - conflicts_before;
  query.decisions = main_solver.stats().decisions - decisions_before;
  if (query.result == sat::SolveResult::kSat) query.model = main_solver.model();
  return query;
}

// One cube worker's outcome; slots are written by exactly one pool task.
struct CubeOutcome {
  sat::SolveResult result = sat::SolveResult::kUnknown;
  std::vector<sat::LBool> model;  // set on kSat
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  bool ran = false;  // false: skipped because a sibling already won
};

// Cube-and-conquer fan-out for one stalled depth: splits on the main
// solver's hottest VSIDS variables and solves every cube on its own clone
// of the incremental solver, concurrently. First SAT wins and cancels the
// sibling cubes; UNSAT requires every cube refuted.
DepthQuery SolveCubes(sat::Solver& main_solver, sat::Lit target,
                      const BmcOptions& options, uint32_t depth,
                      int64_t per_cube_budget) {
  DepthQuery query;
  query.cube_escalated = true;

  const sat::CubeSplitter splitter(
      {.num_split_vars = options.cube.num_split_vars,
       .seed = options.cube.seed});
  const std::vector<std::vector<sat::Lit>> cubes = splitter.Split(main_solver);
  if (cubes.empty()) return query;  // nothing free to branch on: kUnknown

  telemetry::Span span("bmc.cube_escalation",
                       {{"depth", depth},
                        {"cubes", static_cast<int64_t>(cubes.size())}});
  telemetry::AddCounter("bmc.cube_escalations", 1);

  // First-SAT-wins: the winner trips this source; sibling cubes observe it
  // through their solver token at the next search-loop poll and stop. The
  // parent token (session / deadline) stays merged in, so an outer cancel
  // still lands mid-cube.
  sched::CancellationSource won;
  sat::Solver::Options worker_options = options.solver_options;
  worker_options.cancel =
      sched::CancellationToken::Any(options.cancel, won.token());

  std::vector<CubeOutcome> outcomes(cubes.size());
  const uint32_t jobs = options.cube.jobs == 0
                            ? sched::ThreadPool::HardwareJobs()
                            : options.cube.jobs;
  {
    // A pool local to the escalation: a session job runs *on* a session
    // pool worker, and submitting subtasks to the pool you occupy deadlocks
    // its Wait(). Thread spin-up is noise next to the seconds of SAT search
    // that triggered the escalation.
    sched::ThreadPool pool(
        std::min<uint32_t>(jobs, static_cast<uint32_t>(cubes.size())));
    for (size_t i = 0; i < cubes.size(); ++i) {
      pool.Submit([&, i] {
        if (worker_options.cancel.cancelled()) return;  // sibling already won
        telemetry::Span cube_span(
            "bmc.cube_solve",
            {{"depth", depth}, {"cube", static_cast<int64_t>(i)}});
        const std::unique_ptr<sat::Solver> worker =
            main_solver.Clone(worker_options);
        std::vector<sat::Lit> assumptions = cubes[i];
        assumptions.push_back(target);
        CubeOutcome& out = outcomes[i];
        out.ran = true;
        out.result = worker->Solve(
            assumptions, sat::SolveLimits{.max_conflicts = per_cube_budget});
        out.conflicts = worker->stats().conflicts;
        out.decisions = worker->stats().decisions;
        telemetry::AddCounter("sat.cubes", 1);
        if (telemetry::Enabled()) {
          cube_span.AddArg("result", static_cast<int64_t>(out.result));
          cube_span.AddArg("conflicts",
                           static_cast<int64_t>(out.conflicts));
        }
        if (out.result == sat::SolveResult::kSat) {
          out.model = worker->model();
          won.Cancel(sched::CancelReason::kCubeSolved);
        }
      });
    }
    pool.Wait();
  }

  bool all_unsat = true;
  size_t sat_cube = cubes.size();
  for (size_t i = 0; i < cubes.size(); ++i) {
    const CubeOutcome& out = outcomes[i];
    if (out.ran) ++query.cubes_solved;
    query.conflicts += out.conflicts;
    query.decisions += out.decisions;
    if (out.result == sat::SolveResult::kSat && sat_cube == cubes.size()) {
      sat_cube = i;  // lowest emitted index wins the report, for determinism
    }
    if (out.result != sat::SolveResult::kUnsat) all_unsat = false;
  }
  if (sat_cube < cubes.size()) {
    query.result = sat::SolveResult::kSat;
    query.model = std::move(outcomes[sat_cube].model);
  } else if (all_unsat) {
    query.result = sat::SolveResult::kUnsat;
  }
  // else kUnknown: an un-won cube ran out of budget or an outer cancel
  // fired; the caller tells the two apart through options.cancel.
  if (telemetry::Enabled()) {
    span.AddArg("result", static_cast<int64_t>(query.result));
  }
  return query;
}

// One depth's query on the incremental solver, with the cube-and-conquer
// escalation policy layered on when enabled: a monolithic attempt under the
// escalation threshold first, then the cube fan-out for depths that stall.
DepthQuery SolveWithEscalation(sat::Solver& main_solver, sat::Lit target,
                               const BmcOptions& options, uint32_t depth) {
  const int64_t budget = options.conflict_budget;
  const bool can_escalate =
      options.cube.enabled && options.cube.conflict_threshold > 0 &&
      // A depth budget at or under the threshold exhausts for real before
      // the escalation could fire.
      (budget < 0 || budget > options.cube.conflict_threshold);
  const int64_t first_attempt =
      can_escalate ? options.cube.conflict_threshold : budget;

  DepthQuery query = SolveIncremental(main_solver, target, first_attempt);
  if (query.result != sat::SolveResult::kUnknown || !can_escalate ||
      options.cancel.cancelled()) {
    return query;
  }

  // Governor stage 2: a cube fan-out clones the incremental solver once
  // per worker — the worst possible move near the memory budget. Keep the
  // stalled monolithic verdict instead; the depth reports kUnknown with
  // the budget reason and the session's retry policy takes it from there.
  if (sched::CurrentMemoryPressure() >= sched::MemoryPressure::kThrottle) {
    telemetry::AddCounter("bmc.cube_throttled", 1);
    return query;
  }

  // The monolithic attempt stalled: hand the depth to the cubes. Each cube
  // gets the depth budget net of what the attempt already spent — cubes are
  // strictly easier instances, so the un-divided remainder is generous
  // without being unbounded.
  const int64_t per_cube_budget =
      budget < 0 ? -1
                 : std::max<int64_t>(
                       budget - options.cube.conflict_threshold, 1);
  DepthQuery cube_query =
      SolveCubes(main_solver, target, options, depth, per_cube_budget);
  cube_query.conflicts += query.conflicts;
  cube_query.decisions += query.decisions;
  return cube_query;
}

}  // namespace

BmcResult RunBmc(const ir::TransitionSystem& ts, const BmcOptions& options_in) {
  const Status valid = ts.Validate();
  AQED_CHECK(valid.ok(), "RunBmc on invalid system: " + valid.message());

  // One token, threaded top-down: BmcOptions::cancel is forwarded into
  // every solver this run creates, so a cancel lands mid-refutation, not
  // only between depths. A solver_options token that observes *different*
  // sources is a wiring bug (the legacy two-knob plumbing silently
  // clobbered it here) — reject it loudly.
  AQED_CHECK(!options_in.solver_options.cancel.armed() ||
                 options_in.solver_options.cancel == options_in.cancel,
             "BmcOptions::solver_options.cancel conflicts with "
             "BmcOptions::cancel; arm only the top-level token");
  BmcOptions options = options_in;
  options.solver_options.cancel = options.cancel;

  Stopwatch stopwatch;
  sat::Solver solver(options.solver_options);
  bitblast::GateBuilder gates(solver);
  bitblast::BitBlaster blaster(gates);
  Unroller unroller(ts, blaster);

  std::vector<uint32_t> targets = options.bad_filter;
  if (targets.empty()) {
    targets.resize(ts.bads().size());
    std::iota(targets.begin(), targets.end(), 0);
  }
  AQED_CHECK(!targets.empty(), "RunBmc with no bad predicates");

  BmcResult result;
  for (uint32_t depth = 0; depth < options.max_bound; ++depth) {
    if (options.cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    {
      TELEMETRY_SPAN("bmc.unroll", {{"depth", depth}});
      unroller.AddFrame();
    }
    result.frames_explored = depth + 1;
    telemetry::MaxGauge("bmc.depth_reached", depth + 1);
    // Live (not high-water) depth for the flight recorder's depth-vs-time
    // chart; with concurrent jobs the sampled value is whichever engine
    // wrote last — a representative progress signal, not an invariant.
    telemetry::SetGauge("bmc.current_depth", depth + 1);

    // any_bad holds iff some targeted bad predicate fires at this depth.
    std::vector<sat::Lit> bad_lits;
    bad_lits.reserve(targets.size());
    for (uint32_t bad_index : targets) {
      bad_lits.push_back(unroller.BadLit(depth, bad_index));
    }
    const sat::Lit any_bad = gates.OrAll(bad_lits);
    if (gates.IsFalse(any_bad)) continue;  // statically unreachable here
    if (solver.inconsistent()) break;       // constraints are contradictory

    telemetry::Span solve_span("bmc.solve_depth", {{"depth", depth}});
    // Cube escalation rides the incremental path only: the preprocessed
    // path already rebuilds a scratch solver per depth and has no VSIDS
    // history for the splitter to read.
    const DepthQuery query =
        options.use_preprocessing
            ? SolvePreprocessed(solver, any_bad, options)
            : SolveWithEscalation(solver, any_bad, options, depth);
    solve_span.End();
    result.conflicts += query.conflicts;
    result.decisions += query.decisions;
    if (query.cube_escalated) ++result.cube_escalations;
    result.cubes_solved += query.cubes_solved;
    if (query.result == sat::SolveResult::kUnknown) {
      if (options.cancel.cancelled()) {
        result.cancelled = true;
        break;
      }
      // Refutation budget exhausted at this depth. Counterexample queries
      // are usually far easier than refutations, so keep deepening — the
      // run is no longer a complete proof up to the bound, which the final
      // outcome reflects if nothing is found.
      result.refutation_complete = false;
      continue;
    }
    if (query.result == sat::SolveResult::kUnsat) continue;

    // Counterexample found: identify the violated bad predicate.
    uint32_t hit = targets[0];
    for (uint32_t bad_index : targets) {
      const sat::Lit lit = unroller.BadLit(depth, bad_index);
      const sat::LBool value = query.model[lit.var()];
      const bool lit_true = lit.negated() ? value == sat::LBool::kFalse
                                          : value == sat::LBool::kTrue;
      if (lit_true) {
        hit = bad_index;
        break;
      }
    }
    result.outcome = BmcResult::Outcome::kCounterexample;
    result.trace = unroller.ExtractTrace(query.model, depth + 1, hit);
    if (options.validate_counterexamples) {
      TELEMETRY_SPAN("bmc.replay", {{"depth", depth}});
      // A counterexample whose replay fails on the simulator is a checker
      // bug (unroller/bit-blaster/solver disagreement with the IR
      // semantics), not a verdict about the design. It is reported with
      // trace_validated == false rather than aborting the process, so a
      // thousand-job campaign survives it and the scheduler can surface it
      // as a hard per-job failure (JobResult::checker_error).
      result.trace_validated = ReplayTrace(ts, result.trace);
    }
    break;
  }

  if (result.outcome == BmcResult::Outcome::kBoundReached &&
      (!result.refutation_complete || result.cancelled)) {
    result.outcome = BmcResult::Outcome::kUnknown;
    // A cancellation (deadline or first-bug-wins) trumps budget skips for
    // the reason code: it is what actually ended the run.
    result.unknown_reason =
        result.cancelled
            ? sched::UnknownReasonFromCancel(options.cancel.reason())
            : UnknownReason::kConflictBudget;
  }
  result.seconds = stopwatch.ElapsedSeconds();
  result.clauses = solver.num_clauses();
  return result;
}

}  // namespace aqed::bmc
