// k-induction engine: unbounded safety proofs on top of the BMC substrate.
//
// BMC can only refute properties up to a bound; k-induction can *prove* them
// for all depths (one of the paper's future-work directions for improving
// A-QED scalability beyond plain BMC). For increasing k it checks:
//
//   base(k):  no bad state is reachable within k frames from reset
//             (ordinary BMC);
//   step(k):  from an arbitrary (not necessarily reachable) state, k
//             consecutive good frames imply a good frame k+1 — i.e.
//             ~bad@0 .. ~bad@k-1 && bad@k is UNSAT over a free initial
//             state.
//
// If both hold, the property holds at every depth. Optional simple-path
// (loop-freeness) constraints — all k+1 states pairwise distinct — make the
// method complete for finite-state systems: without them, an unreachable
// lasso that never touches a bad state can block convergence forever.
#pragma once

#include <cstdint>
#include <vector>

#include "bmc/engine.h"
#include "ir/transition_system.h"

namespace aqed::bmc {

struct KInductionOptions {
  uint32_t max_k = 16;
  // Add pairwise state-distinctness constraints to the inductive step.
  bool simple_path = true;
  // Restrict to these bad indices (empty = all, proved conjointly).
  std::vector<uint32_t> bad_filter;
  bool validate_counterexamples = true;
  sat::Solver::Options solver_options;
};

struct KInductionResult {
  enum class Outcome {
    kProved,          // the bad states are unreachable at every depth
    kCounterexample,  // reachable: `trace` holds the witness
    kUnknown,         // not (k-)inductive within max_k
  };
  Outcome outcome = Outcome::kUnknown;
  uint32_t k = 0;  // proof induction depth / counterexample depth
  Trace trace;
  bool trace_validated = false;
  double seconds = 0;

  bool proved() const { return outcome == Outcome::kProved; }
};

KInductionResult RunKInduction(const ir::TransitionSystem& ts,
                               const KInductionOptions& options);

}  // namespace aqed::bmc
