#include "bmc/kinduction.h"

#include <numeric>

#include "support/stats.h"
#include "support/status.h"

namespace aqed::bmc {

KInductionResult RunKInduction(const ir::TransitionSystem& ts,
                               const KInductionOptions& options) {
  const Status valid = ts.Validate();
  AQED_CHECK(valid.ok(), "RunKInduction on invalid system: " + valid.message());

  Stopwatch stopwatch;
  KInductionResult result;

  std::vector<uint32_t> targets = options.bad_filter;
  if (targets.empty()) {
    targets.resize(ts.bads().size());
    std::iota(targets.begin(), targets.end(), 0);
  }
  AQED_CHECK(!targets.empty(), "RunKInduction with no bad predicates");

  // Base-case machinery: unrolling from the reset state.
  sat::Solver base_solver(options.solver_options);
  bitblast::GateBuilder base_gates(base_solver);
  bitblast::BitBlaster base_blaster(base_gates);
  Unroller base(ts, base_blaster);

  // Inductive-step machinery: unrolling from a free symbolic state.
  sat::Solver step_solver(options.solver_options);
  bitblast::GateBuilder step_gates(step_solver);
  bitblast::BitBlaster step_blaster(step_gates);
  Unroller step(ts, step_blaster, /*free_initial_state=*/true);

  auto any_bad = [&](bitblast::GateBuilder& gates, Unroller& unroller,
                     uint32_t frame) {
    std::vector<sat::Lit> lits;
    lits.reserve(targets.size());
    for (uint32_t bad_index : targets) {
      lits.push_back(unroller.BadLit(frame, bad_index));
    }
    return gates.OrAll(lits);
  };

  // step frame 0 exists before the loop so step(k) can assume ~bad@0..k-1.
  step.AddFrame();

  for (uint32_t k = 1; k <= options.max_k; ++k) {
    // --- base(k): bad reachable within k frames from reset? ---------------
    base.AddFrame();
    const uint32_t depth = k - 1;  // newly added frame index
    const sat::Lit base_bad = any_bad(base_gates, base, depth);
    if (!base_gates.IsFalse(base_bad) && !base_solver.inconsistent()) {
      const sat::Lit assumptions[] = {base_bad};
      if (base_solver.Solve(assumptions) == sat::SolveResult::kSat) {
        // Identify which bad fired and extract the witness.
        uint32_t hit = targets[0];
        for (uint32_t bad_index : targets) {
          if (base_solver.ModelValue(base.BadLit(depth, bad_index)) ==
              sat::LBool::kTrue) {
            hit = bad_index;
            break;
          }
        }
        result.outcome = KInductionResult::Outcome::kCounterexample;
        result.k = k;
        result.trace = base.ExtractTrace(base_solver.model(), depth + 1, hit);
        if (options.validate_counterexamples) {
          result.trace_validated = ReplayTrace(ts, result.trace);
          AQED_CHECK(result.trace_validated,
                     "k-induction counterexample failed replay");
        }
        result.seconds = stopwatch.ElapsedSeconds();
        return result;
      }
    }

    // --- step(k): ~bad@0..k-1 (permanent facts) and bad@k (assumption) ----
    // Permanently assert that frame k-1 is good (accumulates over k).
    step_gates.Assert(~any_bad(step_gates, step, k - 1));
    step.AddFrame();  // frame k now exists
    if (options.simple_path) {
      // The new frame must differ from every earlier one.
      for (uint32_t j = 0; j < k; ++j) {
        step_gates.Assert(~step.FramesEqual(j, k));
      }
    }
    const sat::Lit step_bad = any_bad(step_gates, step, k);
    if (step_gates.IsFalse(step_bad) || step_solver.inconsistent()) {
      result.outcome = KInductionResult::Outcome::kProved;
      result.k = k;
      break;
    }
    const sat::Lit assumptions[] = {step_bad};
    if (step_solver.Solve(assumptions) == sat::SolveResult::kUnsat) {
      result.outcome = KInductionResult::Outcome::kProved;
      result.k = k;
      break;
    }
  }

  result.seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace aqed::bmc
