#include "bmc/vcd.h"

#include <ostream>
#include <sstream>
#include <vector>

#include "sim/simulator.h"
#include "support/bits.h"

namespace aqed::bmc {

namespace {

// VCD identifier codes: short strings over the printable range.
std::string IdCode(uint32_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

void WriteValue(std::ostream& out, uint64_t value, uint32_t width,
                const std::string& code) {
  if (width == 1) {
    out << (value & 1) << code << '\n';
    return;
  }
  out << 'b';
  for (uint32_t bit = width; bit-- > 0;) {
    out << ((value >> bit) & 1);
  }
  out << ' ' << code << '\n';
}

struct Signal {
  ir::NodeRef node;
  std::string name;
  uint32_t width;
  std::string code;
  uint64_t last = ~uint64_t{0};  // force an initial dump
};

}  // namespace

void WriteVcd(const ir::TransitionSystem& ts, const Trace& trace,
              std::ostream& out) {
  std::vector<Signal> signals;
  uint32_t next_code = 0;
  auto add_signal = [&](ir::NodeRef node, const std::string& name) {
    if (!ts.ctx().sort(node).is_bitvec()) return;
    signals.push_back(
        {node, name, ts.ctx().width(node), IdCode(next_code++)});
  };
  for (ir::NodeRef input : ts.inputs()) {
    add_signal(input, ts.ctx().node(input).name);
  }
  for (ir::NodeRef state : ts.states()) {
    add_signal(state, ts.ctx().node(state).name);
  }
  for (const auto& [name, node] : ts.outputs()) add_signal(node, name);

  out << "$comment A-QED counterexample: " << trace.bad_label
      << " $end\n$timescale 1ns $end\n$scope module aqed $end\n";
  for (const Signal& signal : signals) {
    // VCD identifiers may not contain whitespace; map '.' to '_' for
    // maximum viewer compatibility.
    std::string name = signal.name;
    for (char& c : name) {
      if (c == ' ' || c == '.') c = '_';
    }
    out << "$var wire " << signal.width << ' ' << signal.code << ' ' << name
        << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  sim::Simulator sim(ts);
  for (const auto& [state, value] : trace.initial_states) {
    sim.SetState(state, value);
  }
  for (const auto& [state, values] : trace.initial_arrays) {
    sim.SetArrayState(state, values);
  }
  for (uint32_t t = 0; t < trace.length(); ++t) {
    for (const auto& [input, value] : trace.inputs[t]) {
      sim.SetInput(input, value);
    }
    sim.Eval();
    out << '#' << t << '\n';
    for (Signal& signal : signals) {
      const uint64_t value = sim.Value(signal.node);
      if (value != signal.last) {
        WriteValue(out, value, signal.width, signal.code);
        signal.last = value;
      }
    }
    if (t + 1 < trace.length()) sim.Step();
  }
  out << '#' << trace.length() << '\n';
}

std::string ToVcd(const ir::TransitionSystem& ts, const Trace& trace) {
  std::ostringstream out;
  WriteVcd(ts, trace, out);
  return out.str();
}

}  // namespace aqed::bmc
