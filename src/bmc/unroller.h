// Time-frame expansion of a transition system into CNF.
//
// Frame t maps every IR node to a literal vector. Inputs get fresh literals
// per frame; states are init constants (or fresh literals when
// uninitialized) at frame 0 and the previous frame's next-function bits
// afterwards; environment constraints are asserted in every frame. The
// expansion is eager per frame and iterative (node order is topological).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bitblast/bitblaster.h"
#include "bmc/trace.h"
#include "ir/transition_system.h"

namespace aqed::bmc {

class Unroller {
 public:
  // `free_initial_state` ignores declared init values and gives every state
  // fresh literals at frame 0 — the unrolling used by the inductive step of
  // k-induction (any state, not just the reset state).
  Unroller(const ir::TransitionSystem& ts, bitblast::BitBlaster& blaster,
           bool free_initial_state = false);

  // Expands one more time frame (frame index == previous num_frames()).
  void AddFrame();
  uint32_t num_frames() const {
    return static_cast<uint32_t>(scalar_frames_.size());
  }

  // Literal of bad predicate `bad_index` in `frame`.
  sat::Lit BadLit(uint32_t frame, uint32_t bad_index) const;

  // Literal vector of a scalar node in a frame.
  const bitblast::Bits& NodeBits(ir::NodeRef node, uint32_t frame) const;

  // Reads a scalar node's value in a frame out of a satisfying model
  // (indexed by variable; unassigned bits read as 0).
  uint64_t ModelValue(std::span<const sat::LBool> model, ir::NodeRef node,
                      uint32_t frame) const;

  // Builds a full input/initial-state trace of `length` frames from a model.
  Trace ExtractTrace(std::span<const sat::LBool> model, uint32_t length,
                     uint32_t bad_index) const;

  // Literal that is true iff every state (registers and memories) holds the
  // same value in `frame_a` and `frame_b` — used for simple-path
  // (loop-freeness) constraints in k-induction.
  sat::Lit FramesEqual(uint32_t frame_a, uint32_t frame_b);

 private:
  uint64_t ModelOfBits(std::span<const sat::LBool> model,
                       const bitblast::Bits& bits) const;

  const ir::TransitionSystem& ts_;
  bitblast::BitBlaster& blaster_;
  const bool free_initial_state_;
  std::vector<std::vector<bitblast::Bits>> scalar_frames_;      // [frame][node]
  std::vector<std::vector<bitblast::ArrayBits>> array_frames_;  // [frame][node]
};

}  // namespace aqed::bmc
