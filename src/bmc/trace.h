// Counterexample traces: concrete input assignments per cycle plus initial
// state values, with replay-based validation against the simulator and
// human-readable formatting.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/transition_system.h"

namespace aqed::bmc {

// A finite input sequence witnessing a bad-state reachability.
struct Trace {
  uint32_t bad_index = 0;
  std::string bad_label;
  // inputs[t][input_node] = value at cycle t. Trace length == inputs.size().
  std::vector<std::unordered_map<ir::NodeRef, uint64_t>> inputs;
  // Values of every state at cycle 0 (needed when states are uninitialized;
  // redundant but harmless otherwise).
  std::unordered_map<ir::NodeRef, uint64_t> initial_states;
  std::unordered_map<ir::NodeRef, std::vector<uint64_t>> initial_arrays;

  uint32_t length() const { return static_cast<uint32_t>(inputs.size()); }
};

// Replays `trace` on a fresh simulator. Returns true iff all environment
// constraints hold at every cycle and the trace's bad predicate is active at
// the final cycle. This is the independent check applied to every BMC
// counterexample before it is reported.
bool ReplayTrace(const ir::TransitionSystem& ts, const Trace& trace);

// Formats the trace as a cycle-by-cycle table of inputs and named outputs.
std::string FormatTrace(const ir::TransitionSystem& ts, const Trace& trace);

}  // namespace aqed::bmc
