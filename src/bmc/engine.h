// Bounded model checking engine.
//
// Iteratively deepens the unrolling and, at each depth, asks the SAT solver
// (under an activation assumption) whether any registered bad predicate is
// reachable exactly at that depth. Iterating depths from 0 guarantees that a
// reported counterexample is one of minimum length — the property behind the
// paper's Observation 3 (short counterexamples for easy debug).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bitblast/bitblaster.h"
#include "bmc/trace.h"
#include "bmc/unroller.h"
#include "ir/transition_system.h"
#include "sat/solver.h"
#include "sched/cancellation.h"

namespace aqed::bmc {

struct BmcOptions {
  // Maximum number of time frames to explore (trace length limit).
  uint32_t max_bound = 64;
  // Replay every counterexample on the simulator before reporting it.
  bool validate_counterexamples = true;
  // Restrict the check to these bad indices (empty = all).
  std::vector<uint32_t> bad_filter;
  // Per-depth SAT conflict budget; kUnknown on exhaustion. -1 = unlimited.
  int64_t conflict_budget = -1;
  // Run bounded variable elimination on the per-depth CNF before solving
  // (off by default: without subsumption alongside, BVE trades variables
  // for longer resolvents and loses the incremental solver's learnt
  // clauses; see bench_ablation_sat for the measured effect).
  bool use_preprocessing = false;
  // Cooperative cancellation (first-bug-wins sessions): checked at every
  // depth and forwarded into the SAT solver's search loop. This is the ONE
  // cancellation token of a BMC run, threaded top-down into every solver it
  // creates (including cube workers). Leave solver_options.cancel unarmed:
  // RunBmc rejects (AQED_CHECK) a solver_options token that observes
  // different sources than this one — the old two-knob plumbing silently
  // clobbered it, which hid real wiring bugs.
  sched::CancellationToken cancel;

  // Cube-and-conquer escalation for a stalled depth (see DESIGN.md,
  // "Intra-property parallelism"). When the incremental solve of one depth
  // exceeds `conflict_threshold` conflicts, the engine abandons it, splits
  // the query into up to 2^num_split_vars cubes on the top VSIDS decision
  // variables (sat::CubeSplitter), clones the incremental solver per cube
  // (sat::Solver::Clone), and solves the cubes concurrently on a
  // sched::ThreadPool local to the escalation. The first SAT cube wins and
  // cancels its siblings (CancelReason::kCubeSolved); the depth is refuted
  // only when every cube comes back UNSAT. Soundness: the cubes partition
  // the search space, and each worker starts from a clone of the exact
  // incremental formula.
  struct CubeEscalation {
    bool enabled = false;
    // Split variables m: up to 2^m cubes per escalated depth.
    uint32_t num_split_vars = 3;
    // Conflicts granted to the monolithic attempt before escalating. Must
    // be positive when enabled — the attempt both filters depths that never
    // needed splitting and builds the VSIDS profile the splitter reads.
    int64_t conflict_threshold = 20000;
    // Cube worker threads: 0 = inherit (the session's worker count when run
    // under a VerificationSession, hardware concurrency standalone).
    uint32_t jobs = 0;
    // Cube emission order seed (sat::CubeSplitOptions::seed).
    uint64_t seed = 0;
  };
  CubeEscalation cube;

  sat::Solver::Options solver_options;
};

struct BmcResult {
  enum class Outcome {
    kCounterexample,  // a bad state is reachable; `trace` holds the witness
    kBoundReached,    // no bad state reachable within max_bound frames
    kUnknown,         // solver budget exhausted
  };
  Outcome outcome = Outcome::kBoundReached;
  Trace trace;                 // valid when kCounterexample
  bool trace_validated = false;  // replayed successfully on the simulator
  // False when some depth's refutation exhausted the conflict budget and
  // was skipped (the search continued deeper; found bugs remain sound).
  bool refutation_complete = true;
  // True when the run was stopped early through BmcOptions::cancel; the
  // outcome is then kUnknown and frames_explored reflects the progress made.
  bool cancelled = false;
  // Why the outcome is kUnknown (kNone otherwise): budget exhaustion at
  // some depth, a tripped per-job deadline, or cooperative cancellation —
  // so stats tables and retry policies can tell the three apart.
  UnknownReason unknown_reason = UnknownReason::kNone;
  uint32_t frames_explored = 0;
  double seconds = 0;
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  uint64_t clauses = 0;
  // Cube-and-conquer accounting (zero unless BmcOptions::cube fired):
  // depths whose monolithic attempt stalled and was split, and the total
  // cube solves executed across them (cancelled siblings included).
  uint64_t cube_escalations = 0;
  uint64_t cubes_solved = 0;

  bool found_bug() const { return outcome == Outcome::kCounterexample; }
};

// Runs BMC on `ts` (which must Validate()) and returns the outcome.
BmcResult RunBmc(const ir::TransitionSystem& ts, const BmcOptions& options);

}  // namespace aqed::bmc
