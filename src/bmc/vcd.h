// VCD (Value Change Dump) export of counterexample traces, so A-QED
// counterexamples open directly in waveform viewers (GTKWave, Surfer) next
// to the design's RTL simulation — the debug workflow of Observation 3.
#pragma once

#include <iosfwd>
#include <string>

#include "bmc/trace.h"
#include "ir/transition_system.h"

namespace aqed::bmc {

// Replays `trace` and writes one VCD timestep per cycle covering all design
// inputs, all (scalar) states, and all named outputs.
void WriteVcd(const ir::TransitionSystem& ts, const Trace& trace,
              std::ostream& out);
std::string ToVcd(const ir::TransitionSystem& ts, const Trace& trace);

}  // namespace aqed::bmc
