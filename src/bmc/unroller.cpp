#include "bmc/unroller.h"

#include <array>

#include "support/status.h"

namespace aqed::bmc {

using bitblast::ArrayBits;
using bitblast::Bits;
using ir::Node;
using ir::NodeRef;
using ir::Op;
using ir::Sort;

Unroller::Unroller(const ir::TransitionSystem& ts,
                   bitblast::BitBlaster& blaster, bool free_initial_state)
    : ts_(ts), blaster_(blaster), free_initial_state_(free_initial_state) {}

void Unroller::AddFrame() {
  const uint32_t frame = num_frames();
  const ir::Context& ctx = ts_.ctx();
  auto& scalars = scalar_frames_.emplace_back(ctx.num_nodes());
  auto& arrays = array_frames_.emplace_back(ctx.num_nodes());

  for (NodeRef ref = 1; ref < ctx.num_nodes(); ++ref) {
    const Node& node = ctx.node(ref);
    switch (node.op) {
      case Op::kConst:
        scalars[ref] = blaster_.Constant(node.sort.width, node.const_val);
        continue;
      case Op::kConstArray:
        arrays[ref] = blaster_.ConstantArray(
            node.sort.index_width, node.sort.elem_width,
            ctx.node(node.operands[0]).const_val);
        continue;
      case Op::kInput:
        scalars[ref] = blaster_.Fresh(node.sort.width);
        continue;
      case Op::kState: {
        if (frame == 0) {
          const bool initialized = ts_.has_init(ref) && !free_initial_state_;
          if (node.sort.is_bitvec()) {
            scalars[ref] = initialized
                               ? blaster_.Constant(node.sort.width,
                                                   ts_.init_value(ref))
                               : blaster_.Fresh(node.sort.width);
          } else {
            arrays[ref] =
                initialized
                    ? blaster_.ConstantArray(node.sort.index_width,
                                             node.sort.elem_width,
                                             ts_.init_value(ref))
                    : blaster_.FreshArray(node.sort.index_width,
                                          node.sort.elem_width);
          }
        } else {
          const NodeRef next = ts_.next(ref);
          if (node.sort.is_bitvec()) {
            scalars[ref] = scalar_frames_[frame - 1][next];
          } else {
            arrays[ref] = array_frames_[frame - 1][next];
          }
        }
        continue;
      }
      case Op::kIte:
        if (node.sort.is_array()) {
          arrays[ref] = blaster_.IteArray(scalars[node.operands[0]][0],
                                          arrays[node.operands[1]],
                                          arrays[node.operands[2]]);
          continue;
        }
        break;
      case Op::kRead:
        scalars[ref] = blaster_.Read(arrays[node.operands[0]],
                                     scalars[node.operands[1]]);
        continue;
      case Op::kWrite:
        arrays[ref] = blaster_.Write(arrays[node.operands[0]],
                                     scalars[node.operands[1]],
                                     scalars[node.operands[2]]);
        continue;
      default:
        break;
    }
    // Generic scalar operation.
    std::array<Bits, 3> operand_bits;
    for (size_t i = 0; i < node.operands.size(); ++i) {
      operand_bits[i] = scalars[node.operands[i]];
    }
    scalars[ref] = blaster_.EvalScalarOp(
        node.op, node.sort.width,
        std::span(operand_bits.data(), node.operands.size()), node.aux0,
        node.aux1);
  }

  // Environment assumptions hold in every frame.
  for (NodeRef constraint : ts_.constraints()) {
    blaster_.gates().Assert(scalars[constraint][0]);
  }
}

sat::Lit Unroller::FramesEqual(uint32_t frame_a, uint32_t frame_b) {
  bitblast::GateBuilder& gates = blaster_.gates();
  sat::Lit equal = gates.True();
  for (NodeRef state : ts_.states()) {
    if (ts_.ctx().sort(state).is_bitvec()) {
      equal = gates.And(equal,
                        blaster_.Eq(scalar_frames_[frame_a][state],
                                    scalar_frames_[frame_b][state]));
    } else {
      const ArrayBits& a = array_frames_[frame_a][state];
      const ArrayBits& b = array_frames_[frame_b][state];
      for (size_t i = 0; i < a.elems.size(); ++i) {
        equal = gates.And(equal, blaster_.Eq(a.elems[i], b.elems[i]));
      }
    }
  }
  return equal;
}

sat::Lit Unroller::BadLit(uint32_t frame, uint32_t bad_index) const {
  return scalar_frames_[frame][ts_.bads()[bad_index]][0];
}

const Bits& Unroller::NodeBits(NodeRef node, uint32_t frame) const {
  return scalar_frames_[frame][node];
}

uint64_t Unroller::ModelOfBits(std::span<const sat::LBool> model,
                               const Bits& bits) const {
  uint64_t value = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    // Unassigned model bits (possible for don't-care inputs) default to 0.
    const sat::Lit lit = bits[i];
    const sat::LBool var_value = model[lit.var()];
    const bool lit_true = lit.negated() ? var_value == sat::LBool::kFalse
                                        : var_value == sat::LBool::kTrue;
    if (lit_true) value |= uint64_t{1} << i;
  }
  return value;
}

uint64_t Unroller::ModelValue(std::span<const sat::LBool> model,
                              NodeRef node, uint32_t frame) const {
  return ModelOfBits(model, scalar_frames_[frame][node]);
}

Trace Unroller::ExtractTrace(std::span<const sat::LBool> model,
                             uint32_t length,
                             uint32_t bad_index) const {
  AQED_CHECK(length >= 1 && length <= num_frames(), "trace length invalid");
  Trace trace;
  trace.bad_index = bad_index;
  trace.bad_label = ts_.bad_labels()[bad_index];
  trace.inputs.resize(length);
  for (uint32_t t = 0; t < length; ++t) {
    for (NodeRef input : ts_.inputs()) {
      trace.inputs[t][input] =
          ModelOfBits(model, scalar_frames_[t][input]);
    }
  }
  for (NodeRef state : ts_.states()) {
    if (ts_.ctx().sort(state).is_bitvec()) {
      trace.initial_states[state] =
          ModelOfBits(model, scalar_frames_[0][state]);
    } else {
      const ArrayBits& array = array_frames_[0][state];
      std::vector<uint64_t> values(array.elems.size());
      for (size_t i = 0; i < array.elems.size(); ++i) {
        values[i] = ModelOfBits(model, array.elems[i]);
      }
      trace.initial_arrays[state] = std::move(values);
    }
  }
  return trace;
}

}  // namespace aqed::bmc
