#include "support/stats.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "support/status.h"

namespace aqed {

void MinAvgMax::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

double MinAvgMax::min() const {
  AQED_CHECK(count_ > 0, "min() on empty accumulator");
  return min_;
}

double MinAvgMax::avg() const {
  AQED_CHECK(count_ > 0, "avg() on empty accumulator");
  return sum_ / static_cast<double>(count_);
}

double MinAvgMax::max() const {
  AQED_CHECK(count_ > 0, "max() on empty accumulator");
  return max_;
}

std::string MinAvgMax::ToString(int precision) const {
  if (count_ == 0) return "-";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f, %.*f, %.*f", precision, min(),
                precision, avg(), precision, max());
  return buf;
}

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Stopwatch::Stopwatch() : start_ns_(NowNs()) {}

void Stopwatch::Reset() { start_ns_ = NowNs(); }

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(NowNs() - start_ns_) * 1e-9;
}

}  // namespace aqed
