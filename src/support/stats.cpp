#include "support/stats.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "support/status.h"

namespace aqed {

void MinAvgMax::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

double MinAvgMax::min() const {
  AQED_CHECK(count_ > 0, "min() on empty accumulator");
  return min_;
}

double MinAvgMax::avg() const {
  AQED_CHECK(count_ > 0, "avg() on empty accumulator");
  return sum_ / static_cast<double>(count_);
}

double MinAvgMax::max() const {
  AQED_CHECK(count_ > 0, "max() on empty accumulator");
  return max_;
}

std::string MinAvgMax::ToString(int precision) const {
  if (count_ == 0) return "-";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f, %.*f, %.*f", precision, min(),
                precision, avg(), precision, max());
  return buf;
}

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Stopwatch::Stopwatch() : start_ns_(NowNs()) {}

void Stopwatch::Reset() { start_ns_ = NowNs(); }

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(NowNs() - start_ns_) * 1e-9;
}

void SessionStats::AddJob(JobStat stat) { jobs_.push_back(std::move(stat)); }

size_t SessionStats::num_cancelled() const {
  size_t cancelled = 0;
  for (const JobStat& job : jobs_) cancelled += job.cancelled ? 1 : 0;
  return cancelled;
}

size_t SessionStats::num_checker_errors() const {
  size_t errors = 0;
  for (const JobStat& job : jobs_) errors += job.checker_error ? 1 : 0;
  return errors;
}

size_t SessionStats::num_retries() const {
  size_t retries = 0;
  for (const JobStat& job : jobs_) retries += job.attempt > 0 ? 1 : 0;
  return retries;
}

size_t SessionStats::num_unknown(UnknownReason reason) const {
  size_t count = 0;
  for (const JobStat& job : jobs_) {
    count += job.unknown_reason == reason ? 1 : 0;
  }
  return count;
}

double SessionStats::serial_seconds() const {
  double total = 0;
  for (const JobStat& job : jobs_) total += job.wall_seconds;
  return total;
}

double SessionStats::speedup() const {
  if (jobs_.empty() || wall_seconds_ <= 0) return 1.0;
  return serial_seconds() / wall_seconds_;
}

std::string SessionStats::ToTable() const {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%-34s %9s %9s %10s %7s %s\n", "job",
                "wall[s]", "solve[s]", "conflicts", "frames", "status");
  out += buf;
  for (const JobStat& job : jobs_) {
    std::string status = job.checker_error ? "CHECKER-ERROR"
                         : job.bug_found   ? "BUG"
                         : job.cancelled
                             ? "cancelled"
                             : job.unknown_reason != UnknownReason::kNone
                                 ? std::string("unknown(") +
                                       ToString(job.unknown_reason) +
                                       ")"
                                 : "clean";
    if (job.attempt > 0) {
      status += " [retry " + std::to_string(job.attempt) + "]";
    }
    std::snprintf(buf, sizeof(buf), "%-34s %9.3f %9.3f %10llu %7u %s\n",
                  job.label.c_str(), job.wall_seconds, job.solver_seconds,
                  static_cast<unsigned long long>(job.conflicts),
                  job.frames_explored, status.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "%zu attempts (%zu cancelled, %zu retries%s%s), serialized "
                "%.3f s, wall %.3f s, speedup %.2fx\n",
                jobs_.size(), num_cancelled(), num_retries(),
                num_checker_errors() > 0 ? ", CHECKER ERRORS: " : "",
                num_checker_errors() > 0
                    ? std::to_string(num_checker_errors()).c_str()
                    : "",
                serial_seconds(), wall_seconds_, speedup());
  out += buf;
  return out;
}

}  // namespace aqed
