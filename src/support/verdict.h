// Termination-reason code for inconclusive verdicts.
//
// A SAT solve, a BMC run, or a whole verification job that comes back
// "unknown" is useless for triage unless it says *why* it stopped: a
// conflict-budget exhaustion can be retried with a bigger budget, a deadline
// expiry wants a longer deadline (or a smaller problem), and a cancellation
// means some sibling already decided the outcome. The same enum is threaded
// through sat::Solver::Statistics, bmc::BmcResult, core::JobResult and the
// per-session stats tables so logs agree at every layer.
#pragma once

#include <cstdint>

namespace aqed {

enum class UnknownReason : uint8_t {
  kNone = 0,         // the verdict is not unknown
  kConflictBudget,   // the per-depth SAT conflict budget ran out
  kDeadline,         // the job's wall-clock deadline expired (watchdog)
  kCancelled,        // stopped cooperatively (first-bug-wins / external)
  kMemoryBudget,     // the session's memory governor cancelled the job
};

inline const char* UnknownReasonName(UnknownReason reason) {
  switch (reason) {
    case UnknownReason::kNone:
      return "none";
    case UnknownReason::kConflictBudget:
      return "conflict-budget";
    case UnknownReason::kDeadline:
      return "deadline";
    case UnknownReason::kCancelled:
      return "cancelled";
    case UnknownReason::kMemoryBudget:
      return "memory-budget";
  }
  return "?";
}

}  // namespace aqed
