// Wire-stable verdict vocabulary shared by every layer.
//
// Three small enums describe how verification work ends: a Verdict (what a
// job concluded), an UnknownReason (why an inconclusive job stopped), and a
// CancelReason (why a cancellation source fired). They cross every boundary
// this repo has — stats tables, the fault-campaign journal, telemetry
// exports, and the aqed-server wire protocol — so each one gets exactly ONE
// string mapping, defined here, with a FromString inverse. The strings are
// wire-stable: persisted journals and recorded client batches parse them
// back, so renaming one is a protocol break, not a refactor.
//
// ToString is total (AQED-internal enums never hold stray values for long;
// the "?" fallback keeps logs printable if one ever does). FromString is the
// exact inverse over the enumerated values and rejects everything else —
// round-tripped exhaustively in tests/support_test.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace aqed {

// How a verification job (one property group on one design) concluded. The
// scheduler's JobResult carries the same information spread over flags
// (bug_found / checker_error / unknown_reason); Verdict is the closed-form
// summary the wire protocol and the solve cache store.
enum class Verdict : uint8_t {
  kBug = 0,      // a validated counterexample was found
  kClean,        // every property refuted up to its bound
  kUnknown,      // inconclusive (see UnknownReason)
  kCheckerError, // counterexample failed simulator replay: toolchain bug
};

enum class UnknownReason : uint8_t {
  kNone = 0,         // the verdict is not unknown
  kConflictBudget,   // the per-depth SAT conflict budget ran out
  kDeadline,         // the job's wall-clock deadline expired (watchdog)
  kCancelled,        // stopped cooperatively (first-bug-wins / external)
  kMemoryBudget,     // the session's memory governor cancelled the job
};

// Why a cancellation source fired (sched/cancellation.h stores this inside
// the shared flag itself; 0 = not cancelled). Defined here, next to the
// other outcome enums, so the string mapping lives in one header.
enum class CancelReason : uint8_t {
  kNone = 0,         // not cancelled
  kExternal = 1,     // VerificationSession::Cancel() / user abort
  kFirstBugWins = 2, // a sibling job found a bug
  kDeadline = 3,     // the job's wall-clock watchdog expired
  kCubeSolved = 4,   // a sibling cube of the same query found a model
  kMemoryBudget = 5, // the session's memory governor shed the job
};

// Every value of each enum, for exhaustive round-trip tests and reverse
// lookups. Keep in sync with the enums above (the round-trip test counts).
inline constexpr Verdict kAllVerdicts[] = {
    Verdict::kBug, Verdict::kClean, Verdict::kUnknown, Verdict::kCheckerError};
inline constexpr UnknownReason kAllUnknownReasons[] = {
    UnknownReason::kNone, UnknownReason::kConflictBudget,
    UnknownReason::kDeadline, UnknownReason::kCancelled,
    UnknownReason::kMemoryBudget};
inline constexpr CancelReason kAllCancelReasons[] = {
    CancelReason::kNone,       CancelReason::kExternal,
    CancelReason::kFirstBugWins, CancelReason::kDeadline,
    CancelReason::kCubeSolved, CancelReason::kMemoryBudget};

inline const char* ToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kBug:
      return "bug";
    case Verdict::kClean:
      return "clean";
    case Verdict::kUnknown:
      return "unknown";
    case Verdict::kCheckerError:
      return "checker-error";
  }
  return "?";
}

inline const char* ToString(UnknownReason reason) {
  switch (reason) {
    case UnknownReason::kNone:
      return "none";
    case UnknownReason::kConflictBudget:
      return "conflict-budget";
    case UnknownReason::kDeadline:
      return "deadline";
    case UnknownReason::kCancelled:
      return "cancelled";
    case UnknownReason::kMemoryBudget:
      return "memory-budget";
  }
  return "?";
}

inline const char* ToString(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kExternal:
      return "external";
    case CancelReason::kFirstBugWins:
      return "first-bug-wins";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kCubeSolved:
      return "cube-solved";
    case CancelReason::kMemoryBudget:
      return "memory-budget";
  }
  return "?";
}

namespace detail {
// Shared reverse lookup: walk the canonical value list and compare against
// the one ToString. Journals and protocol decoders store the names (greppable
// and stable across enum reorders), never the raw integers.
template <typename E, size_t N>
std::optional<E> FromStringImpl(std::string_view name, const E (&values)[N]) {
  for (const E value : values) {
    if (name == ToString(value)) return value;
  }
  return std::nullopt;
}
}  // namespace detail

inline std::optional<Verdict> VerdictFromString(std::string_view name) {
  return detail::FromStringImpl(name, kAllVerdicts);
}
inline std::optional<UnknownReason> UnknownReasonFromString(
    std::string_view name) {
  return detail::FromStringImpl(name, kAllUnknownReasons);
}
inline std::optional<CancelReason> CancelReasonFromString(
    std::string_view name) {
  return detail::FromStringImpl(name, kAllCancelReasons);
}

}  // namespace aqed
