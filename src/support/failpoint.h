// Failure-point chaos harness.
//
// A failpoint is a named site in production code where a test (or an
// operator, via the AQED_FAILPOINTS environment variable) can inject a
// deterministic failure: throw an exception, delay the caller, or make the
// site take its error-return path. The governance machinery this repo has
// grown — journal recovery, export-on-failure guards, watchdogs, retries —
// only fires under real crashes; failpoints let tests drive every one of
// those paths on demand, reproducibly.
//
//   if (AQED_FAILPOINT("fault.journal.append")) {
//     return Status::Error("journal append failed (failpoint)");
//   }
//
// The macro evaluates to true when an armed kReturnError trigger fires at
// this site (the caller then takes its error path); a kThrow trigger throws
// FailpointError out of the macro instead, and kDelay sleeps and returns
// false. Sites whose callers have no error path use the macro as a bare
// statement and support only throw/delay.
//
// Unarmed cost is one relaxed atomic load (a process-wide armed count), so
// sites can sit on warm paths such as the solver's clause allocator. The
// whole harness compiles out to `(false)` under -DAQED_FAILPOINTS=OFF; the
// registry functions remain as inert stubs so callers need no #ifdefs.
//
// Triggers are (skip, limit) counted: fire on the skip+1'th hit of the
// site, then keep firing for `limit` hits (0 = forever). Arming is
// programmatic (Arm/Disarm below) or via the environment:
//
//   AQED_FAILPOINTS="fault.journal.append=throw@6,telemetry.export=error"
//
// with spec grammar  name=action[:delay_ms][@nth[xCOUNT]]  and actions
// throw | delay | error. "@6" fires on the 6th hit; "x0" fires forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/status.h"

#ifndef AQED_FAILPOINTS_ENABLED
#define AQED_FAILPOINTS_ENABLED 1
#endif

namespace aqed::support {

enum class FailpointAction : uint8_t {
  kThrow,        // throw FailpointError out of the site
  kDelay,        // sleep delay_ms, then continue normally
  kReturnError,  // make AQED_FAILPOINT() evaluate to true
};

struct FailpointTrigger {
  FailpointAction action = FailpointAction::kThrow;
  uint32_t skip = 0;      // pass through this many hits before firing
  uint32_t limit = 1;     // fire at most this many times (0 = forever)
  uint32_t delay_ms = 10; // kDelay sleep per firing
};

// What a kThrow trigger throws. Carries the site name so a catch site (or a
// test) can tell which failpoint killed the run.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(std::string name)
      : std::runtime_error("failpoint '" + name + "' fired"),
        name_(std::move(name)) {}
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

namespace failpoint {

#if AQED_FAILPOINTS_ENABLED

// Process-wide count of armed failpoints: the macro's fast path. Internal.
extern std::atomic<uint32_t> g_armed;

// Slow path: trigger lookup, hit counting, and the action itself. Returns
// true when a kReturnError trigger fired at this site.
bool EvaluateSlow(const char* name);

inline bool Evaluate(const char* name) {
  return g_armed.load(std::memory_order_relaxed) != 0 && EvaluateSlow(name);
}

// Installs (or replaces) the trigger of `name`, resetting its counters.
void Arm(const std::string& name, const FailpointTrigger& trigger);
// Removes the trigger of `name` (hit/fire counters are discarded).
void Disarm(const std::string& name);
void DisarmAll();
// Hits observed / actions fired while the site was armed (0 when unarmed).
uint64_t HitCount(const std::string& name);
uint64_t FireCount(const std::string& name);
// Parses and arms a comma-separated spec list (the AQED_FAILPOINTS
// environment grammar above). Partial specs before a bad entry stay armed.
Status ArmFromSpec(std::string_view spec);
// Names currently armed, sorted — for logs and diagnostics.
std::vector<std::string> Armed();

#else  // AQED_FAILPOINTS_ENABLED

inline bool Evaluate(const char*) { return false; }
inline void Arm(const std::string&, const FailpointTrigger&) {}
inline void Disarm(const std::string&) {}
inline void DisarmAll() {}
inline uint64_t HitCount(const std::string&) { return 0; }
inline uint64_t FireCount(const std::string&) { return 0; }
inline Status ArmFromSpec(std::string_view) {
  return Status::Error("failpoints compiled out (-DAQED_FAILPOINTS=OFF)");
}
inline std::vector<std::string> Armed() { return {}; }

#endif  // AQED_FAILPOINTS_ENABLED

}  // namespace failpoint
}  // namespace aqed::support

#if AQED_FAILPOINTS_ENABLED
#define AQED_FAILPOINT(name) (::aqed::support::failpoint::Evaluate(name))
#else
#define AQED_FAILPOINT(name) (false)
#endif
