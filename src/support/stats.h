// Streaming statistics accumulators used by the benchmark harnesses to
// report the paper's [min, avg, max] columns, plus the per-job wall/solver
// accounting of parallel verification sessions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/verdict.h"

namespace aqed {

// Accumulates min/avg/max over a stream of doubles.
class MinAvgMax {
 public:
  void Add(double value);

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  double min() const;
  double avg() const;
  double max() const;

  // Formats as "min, avg, max" with the given precision.
  std::string ToString(int precision = 1) const;

 private:
  uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch();
  void Reset();
  double ElapsedSeconds() const;

 private:
  uint64_t start_ns_;
};

// One verification job's timing/effort record, as accumulated by a
// verification session (sched/session.h).
struct JobStat {
  std::string label;
  double wall_seconds = 0;    // job wall time inside the scheduler
  double solver_seconds = 0;  // BMC-reported solve time
  uint64_t conflicts = 0;
  uint32_t frames_explored = 0;
  bool cancelled = false;     // stopped early by first-bug-wins
  bool bug_found = false;
  // The job's counterexample failed simulator replay — a checker bug, not
  // a verdict (see core::JobResult::checker_error).
  bool checker_error = false;
  // Retry accounting: every executed attempt gets its own JobStat row, so
  // escalation cost is visible separately from first-attempt cost.
  uint32_t attempt = 0;       // 0 = first attempt, > 0 = retry
  // Why this attempt was inconclusive (kNone for decided attempts).
  UnknownReason unknown_reason = UnknownReason::kNone;
};

// Per-job accounting for a scheduled verification session. The headline
// number is speedup(): the serialized job time (what `--jobs 1` without
// cancellation would roughly cost) over the session's actual wall time —
// how measurable the scheduling win is.
class SessionStats {
 public:
  void AddJob(JobStat stat);
  void set_wall_seconds(double seconds) { wall_seconds_ = seconds; }

  const std::vector<JobStat>& jobs() const { return jobs_; }
  size_t num_jobs() const { return jobs_.size(); }
  size_t num_cancelled() const;
  // Attempts whose counterexample failed simulator replay (checker bugs —
  // any nonzero count means the toolchain, not the design, is broken).
  size_t num_checker_errors() const;
  // Executed retry attempts (JobStat rows with attempt > 0).
  size_t num_retries() const;
  // Attempts that ended kUnknown for the given reason.
  size_t num_unknown(UnknownReason reason) const;
  double wall_seconds() const { return wall_seconds_; }
  // Sum of per-job wall times: the serialized cost of the executed work.
  double serial_seconds() const;
  // serial_seconds() / wall_seconds(); 1.0 when the session is empty.
  double speedup() const;

  // Formatted per-job table plus a summary line.
  std::string ToTable() const;

 private:
  std::vector<JobStat> jobs_;
  double wall_seconds_ = 0;
};

}  // namespace aqed
