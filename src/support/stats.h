// Streaming statistics accumulators used by the benchmark harnesses to
// report the paper's [min, avg, max] columns.
#pragma once

#include <cstdint>
#include <string>

namespace aqed {

// Accumulates min/avg/max over a stream of doubles.
class MinAvgMax {
 public:
  void Add(double value);

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  double min() const;
  double avg() const;
  double max() const;

  // Formats as "min, avg, max" with the given precision.
  std::string ToString(int precision = 1) const;

 private:
  uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch();
  void Reset();
  double ElapsedSeconds() const;

 private:
  uint64_t start_ns_;
};

}  // namespace aqed
