#include "support/rng.h"

#include "support/bits.h"
#include "support/status.h"

namespace aqed {
namespace {

constexpr uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 for seeding.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  AQED_CHECK(bound != 0, "NextBelow bound must be nonzero");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::NextBits(uint32_t width) { return Truncate(Next(), width); }

bool Rng::Chance(uint32_t numerator, uint32_t denominator) {
  AQED_CHECK(denominator != 0, "Chance denominator must be nonzero");
  return NextBelow(denominator) < numerator;
}

}  // namespace aqed
