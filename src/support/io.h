// Durable file I/O primitives.
//
// The durability layers (the fault-campaign result journal, the telemetry
// exporters) share two requirements: a reader must never observe a
// half-written file, and a crash between "written" and "visible" must leave
// either the old contents or the new — never a prefix. WriteFileDurable
// implements the standard recipe: write everything to `<path>.tmp`, fsync
// the file, then rename() it over `path` (atomic on POSIX filesystems).
#pragma once

#include <string>
#include <string_view>

#include "support/status.h"

namespace aqed::support {

// Reads the whole file. Missing file or read error -> Status with errno
// detail; an empty file is OK and yields an empty string.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Atomically replaces `path` with `contents` via tmp + fsync + rename. On
// failure the temp file is removed and `path` is untouched.
Status WriteFileDurable(const std::string& path, std::string_view contents);

}  // namespace aqed::support
