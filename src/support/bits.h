// Fixed-width bit manipulation helpers for word-level values.
//
// All word-level values in the IR and simulator are stored as uint64_t with
// semantics defined by an explicit bit width in [1, 64]; bits above the width
// are always kept zero ("canonical" form).
#pragma once

#include <cstdint>

namespace aqed {

// Maximum bitvector width supported by the word-level IR.
inline constexpr uint32_t kMaxWidth = 64;

// All-ones mask for a width in [1, 64].
constexpr uint64_t WidthMask(uint32_t width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

// Truncates `value` to `width` bits (canonical form).
constexpr uint64_t Truncate(uint64_t value, uint32_t width) {
  return value & WidthMask(width);
}

// Sign-extends the low `width` bits of `value` to 64 bits.
constexpr int64_t SignExtend(uint64_t value, uint32_t width) {
  if (width >= 64) return static_cast<int64_t>(value);
  const uint64_t sign_bit = uint64_t{1} << (width - 1);
  return static_cast<int64_t>((value ^ sign_bit) - sign_bit);
}

// Extracts bit `index` of `value`.
constexpr bool GetBit(uint64_t value, uint32_t index) {
  return ((value >> index) & 1u) != 0;
}

}  // namespace aqed
