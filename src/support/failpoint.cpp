#include "support/failpoint.h"

#if AQED_FAILPOINTS_ENABLED

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace aqed::support::failpoint {

std::atomic<uint32_t> g_armed{0};

namespace {

struct Entry {
  std::string name;
  FailpointTrigger trigger;
  uint64_t hits = 0;   // site evaluations while armed
  uint64_t fires = 0;  // actions actually taken
};

struct Registry {
  std::mutex mu;
  std::vector<Entry> entries;  // small: linear scan beats a map here
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

Entry* FindLocked(Registry& registry, std::string_view name) {
  for (Entry& entry : registry.entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const char* ActionName(FailpointAction action) {
  switch (action) {
    case FailpointAction::kThrow: return "throw";
    case FailpointAction::kDelay: return "delay";
    case FailpointAction::kReturnError: return "error";
  }
  return "?";
}

// Arms the AQED_FAILPOINTS environment spec once, before main. The armed
// count starts at 0, so processes without the variable never take the slow
// path.
const bool g_env_armed = [] {
  const char* spec = std::getenv("AQED_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return false;
  const Status status = ArmFromSpec(spec);
  if (!status.ok()) {
    std::fprintf(stderr, "[failpoint] bad AQED_FAILPOINTS spec: %s\n",
                 status.message().c_str());
  }
  return true;
}();

}  // namespace

bool EvaluateSlow(const char* name) {
  FailpointAction action;
  uint32_t delay_ms = 0;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    Entry* entry = FindLocked(registry, name);
    if (entry == nullptr) return false;
    ++entry->hits;
    if (entry->hits <= entry->trigger.skip) return false;
    if (entry->trigger.limit != 0 && entry->fires >= entry->trigger.limit) {
      return false;
    }
    ++entry->fires;
    action = entry->trigger.action;
    delay_ms = entry->trigger.delay_ms;
  }
  // Log every firing: a chaos run's value is knowing exactly which injected
  // failure produced the behavior under test.
  std::fprintf(stderr, "[failpoint] %s fired (action=%s)\n", name,
               ActionName(action));
  switch (action) {
    case FailpointAction::kThrow:
      throw FailpointError(name);
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;
    case FailpointAction::kReturnError:
      return true;
  }
  return false;
}

void Arm(const std::string& name, const FailpointTrigger& trigger) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Entry* entry = FindLocked(registry, name);
  if (entry == nullptr) {
    registry.entries.push_back({name, trigger});
    g_armed.fetch_add(1, std::memory_order_relaxed);
  } else {
    *entry = {name, trigger};
  }
}

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Entry* entry = FindLocked(registry, name);
  if (entry == nullptr) return;
  *entry = std::move(registry.entries.back());
  registry.entries.pop_back();
  g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed.fetch_sub(static_cast<uint32_t>(registry.entries.size()),
                    std::memory_order_relaxed);
  registry.entries.clear();
}

uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const Entry* entry = FindLocked(registry, name);
  return entry == nullptr ? 0 : entry->hits;
}

uint64_t FireCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const Entry* entry = FindLocked(registry, name);
  return entry == nullptr ? 0 : entry->fires;
}

Status ArmFromSpec(std::string_view spec) {
  // Grammar per comma-separated item: name=action[:delay_ms][@nth[xCOUNT]]
  while (!spec.empty()) {
    const size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (item.empty()) continue;

    const size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::Error("failpoint spec item without name=action: '" +
                           std::string(item) + "'");
    }
    const std::string name(item.substr(0, eq));
    std::string_view rest = item.substr(eq + 1);

    FailpointTrigger trigger;
    // Optional "@nth[xCOUNT]" suffix first, so the action parse sees only
    // "action[:delay]".
    const size_t at = rest.find('@');
    if (at != std::string_view::npos) {
      const std::string counts(rest.substr(at + 1));
      rest = rest.substr(0, at);
      char* end = nullptr;
      const unsigned long nth = std::strtoul(counts.c_str(), &end, 10);
      if (end == counts.c_str() || nth == 0) {
        return Status::Error("failpoint spec '@nth' must be a positive "
                             "integer in '" + std::string(item) + "'");
      }
      trigger.skip = static_cast<uint32_t>(nth - 1);
      if (*end == 'x') {
        char* end2 = nullptr;
        trigger.limit =
            static_cast<uint32_t>(std::strtoul(end + 1, &end2, 10));
        end = end2;
      }
      if (*end != '\0') {
        return Status::Error("trailing garbage after '@nth' in '" +
                             std::string(item) + "'");
      }
    }
    const size_t colon = rest.find(':');
    const std::string_view action = rest.substr(0, colon);
    if (action == "throw") {
      trigger.action = FailpointAction::kThrow;
    } else if (action == "delay") {
      trigger.action = FailpointAction::kDelay;
    } else if (action == "error") {
      trigger.action = FailpointAction::kReturnError;
    } else {
      return Status::Error("unknown failpoint action '" +
                           std::string(action) + "' in '" +
                           std::string(item) + "'");
    }
    if (colon != std::string_view::npos) {
      const std::string delay(rest.substr(colon + 1));
      char* end = nullptr;
      trigger.delay_ms =
          static_cast<uint32_t>(std::strtoul(delay.c_str(), &end, 10));
      if (end == delay.c_str() || *end != '\0') {
        return Status::Error("bad delay_ms in '" + std::string(item) + "'");
      }
    }
    Arm(name, trigger);
  }
  return Status::Ok();
}

std::vector<std::string> Armed() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.entries.size());
  for (const Entry& entry : registry.entries) names.push_back(entry.name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace aqed::support::failpoint

#endif  // AQED_FAILPOINTS_ENABLED
