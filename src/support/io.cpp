#include "support/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace aqed::support {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return ErrnoStatus("cannot open", path);
  std::string contents;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return ErrnoStatus("read failed on", path);
  return contents;
}

Status WriteFileDurable(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot create", tmp);
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoStatus("write failed on", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  // fsync before rename: otherwise the rename can land on disk before the
  // data and a crash exposes an empty (or partial) renamed file.
  if (::fsync(fd) != 0) {
    const Status status = ErrnoStatus("fsync failed on", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    const Status status = ErrnoStatus("close failed on", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = ErrnoStatus("rename failed onto", path);
    ::unlink(tmp.c_str());
    return status;
  }
  return Status::Ok();
}

}  // namespace aqed::support
