// Lightweight status/error reporting used across the library.
//
// The library is exception-free on hot paths; construction-time errors in
// user-facing builders (e.g. malformed transition systems) are reported via
// Status / StatusOr so that callers can surface them without aborting.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace aqed {

// Outcome of an operation that can fail with a human-readable message.
class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status Error(std::string message);

  bool ok() const { return !message_.has_value(); }
  const std::string& message() const;

 private:
  std::optional<std::string> message_;
};

// Value-or-error. `value()` must only be called when `ok()`.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}              // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}      // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Aborts with `message` if `condition` is false. Used for internal
// invariants (programming errors), not user-input validation.
void CheckImpl(bool condition, const char* expr, const char* file, int line,
               const std::string& message);

#define AQED_CHECK(cond, msg) \
  ::aqed::CheckImpl((cond), #cond, __FILE__, __LINE__, (msg))

}  // namespace aqed
