// Deterministic pseudo-random number generation for testbenches and
// randomized tests. xoshiro256** — fast, high quality, reproducible across
// platforms (unlike std::mt19937 distributions).
#pragma once

#include <cstdint>

namespace aqed {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform value in [0, bound). `bound` must be nonzero.
  uint64_t NextBelow(uint64_t bound);

  // Uniform value of the given bit width (canonical form).
  uint64_t NextBits(uint32_t width);

  // True with probability numerator/denominator.
  bool Chance(uint32_t numerator, uint32_t denominator);

 private:
  uint64_t state_[4];
};

}  // namespace aqed
