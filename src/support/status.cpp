#include "support/status.h"

#include <cstdio>
#include <cstdlib>

namespace aqed {

Status Status::Error(std::string message) {
  Status s;
  s.message_ = std::move(message);
  return s;
}

const std::string& Status::message() const {
  static const std::string kOk = "OK";
  return message_.has_value() ? *message_ : kOk;
}

void CheckImpl(bool condition, const char* expr, const char* file, int line,
               const std::string& message) {
  if (condition) return;
  std::fprintf(stderr, "AQED_CHECK failed: %s at %s:%d: %s\n", expr, file,
               line, message.c_str());
  std::abort();
}

}  // namespace aqed
