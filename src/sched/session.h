// Parallel verification scheduler.
//
// A VerificationSession collects independent verification jobs — one per
// enabled property group of each Enqueue()d design — and executes them on a
// fixed-size thread pool with cooperative first-bug-wins cancellation: the
// moment a job finds a bug, the remaining jobs in its cancellation scope
// (same entry, or the whole session in portfolio-hunt mode) are told to
// stop via a CancellationToken threaded into the BMC depth loop and the SAT
// solver's search loop.
//
// Resource governance (SessionOptions::deadline_ms / retry): each job can
// carry a wall-clock deadline, enforced by a watchdog thread that trips the
// job's cancellation token; jobs that come back kUnknown because a budget
// or deadline ran out are re-queued with doubled budgets (up to the
// configured caps and retry count). This is what makes thousand-job fault
// campaigns survivable: one hard SAT instance costs one deadline, not the
// whole session.
//
// This is the scheduling layer the functional-decomposition follow-up work
// builds on: A-QED scales by splitting one verification problem into many
// independent sub-checks, and per-design/per-property checks are an
// embarrassingly parallel portfolio.
//
// Determinism: jobs start in submission order (FIFO pool). With jobs == 1
// the session executes them inline, sequentially, and is bit-for-bit the
// legacy CheckAccelerator behavior. With jobs > 1 the set of *reported*
// verdicts is unchanged for single-bug workloads; only which clean sibling
// jobs get cancelled mid-run (instead of completing) may vary. Retry
// rounds are themselves deterministic when job outcomes are (conflict
// budgets are deterministic; wall-clock deadlines are not and should be
// generous when reproducibility matters).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "aqed/checker.h"
#include "sched/cancellation.h"
#include "sched/memory_governor.h"
#include "sched/watchdog.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"

namespace aqed::sched {

class VerificationSession {
 public:
  explicit VerificationSession(core::SessionOptions options = {});

  // Expands the enabled property groups of `options` (cheapest first: RB,
  // SAC, FC — small monitors refute easily, FC carries the symbolic
  // orig/dup choice) into one pending job each, all under one entry.
  // Returns a typed handle that SessionResult's accessors take — it carries
  // the entry index plus the entry label, so result lookups can't be fed a
  // stray loop counter. `label` prefixes the job labels
  // ("<label>/<property>").
  //
  // `build` is invoked once per job, each time on a fresh transition
  // system, possibly from several worker threads at once — it must not
  // mutate shared state.
  core::JobHandle Enqueue(core::AcceleratorBuilder build,
                          core::AqedOptions options, std::string label = {});

  // Requests cancellation of every outstanding job (e.g. an external
  // timeout). Running jobs stop at their next poll point.
  void Cancel() { session_source_.Cancel(CancelReason::kExternal); }

  // Executes all pending jobs — plus any retry rounds the options ask for —
  // and blocks until every one has completed or been cancelled. May be
  // called repeatedly; each call runs the jobs enqueued since the previous
  // one (entry indices keep counting up, and the returned result covers
  // only the new jobs).
  core::SessionResult Wait();

  const core::SessionOptions& options() const { return options_; }

 private:
  struct PendingJob {
    size_t entry;
    std::string label;
    core::AcceleratorBuilder build;
    core::AqedOptions options;  // exactly one property group enabled
    uint32_t bound;             // per-property bound (resolved)
    // Governed resources of the next attempt (escalated between rounds).
    int64_t conflict_budget;    // -1 = unlimited
    uint32_t deadline_ms;       // 0 = none
    uint32_t attempt = 0;
  };

  void RunJob(const PendingJob& job, core::JobResult& out);
  // Runs the given batch (indices into `jobs`/`results`) inline or on the
  // pool, then records one JobStat per executed attempt.
  void RunBatch(const std::vector<PendingJob>& jobs,
                const std::vector<size_t>& batch,
                std::vector<core::JobResult>& results,
                SessionStats& stats);
  // True when the job's attempt ended kUnknown for a retryable reason and
  // escalation would actually change something; doubles the job's budgets
  // in place when so.
  bool EscalateForRetry(const core::JobResult& result, PendingJob& job) const;
  CancellationToken TokenFor(size_t entry) const;

  // Drains the global tracer (and the flight-recorder samples) into the
  // session-owned logs and (re)writes the configured trace/metrics files.
  // Invoked by an RAII guard on *every* exit from Wait() when telemetry is
  // on — normal return, checker errors, deadline cancellation, or an
  // exception out of a builder — so a governed session never loses its
  // telemetry to the failure it was recording.
  void ExportTelemetry();

  core::SessionOptions options_;
  CancellationSource session_source_;
  std::vector<CancellationSource> entry_sources_;  // indexed by entry
  std::vector<PendingJob> pending_;
  size_t num_entries_ = 0;
  Watchdog watchdog_;  // lazily threaded; idle unless deadlines are set
  // Memory governor (SessionOptions::memory_budget_mb): created on the
  // first Wait() of a governed session; its poll thread runs only while
  // Wait() executes jobs. Null when ungoverned.
  std::unique_ptr<MemoryGovernor> governor_;
  // Session-owned span log: every event drained so far, accumulated across
  // Wait() calls so the exported trace covers the whole session.
  std::vector<telemetry::TraceEvent> trace_log_;
  // Flight recorder (SessionOptions::sample_period_ms): runs while Wait()
  // executes jobs; drained samples accumulate across Wait() calls like the
  // span log. Null when sampling is off (or compiled out).
  std::unique_ptr<telemetry::Sampler> sampler_;
  std::vector<telemetry::TimeSeriesSample> samples_;
};

}  // namespace aqed::sched
