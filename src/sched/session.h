// Parallel verification scheduler.
//
// A VerificationSession collects independent verification jobs — one per
// enabled property group of each Enqueue()d design — and executes them on a
// fixed-size thread pool with cooperative first-bug-wins cancellation: the
// moment a job finds a bug, the remaining jobs in its cancellation scope
// (same entry, or the whole session in portfolio-hunt mode) are told to
// stop via a CancellationToken threaded into the BMC depth loop and the SAT
// solver's search loop.
//
// This is the scheduling layer the functional-decomposition follow-up work
// builds on: A-QED scales by splitting one verification problem into many
// independent sub-checks, and per-design/per-property checks are an
// embarrassingly parallel portfolio.
//
// Determinism: jobs start in submission order (FIFO pool). With jobs == 1
// the session executes them inline, sequentially, and is bit-for-bit the
// legacy CheckAccelerator behavior. With jobs > 1 the set of *reported*
// verdicts is unchanged for single-bug workloads; only which clean sibling
// jobs get cancelled mid-run (instead of completing) may vary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqed/checker.h"
#include "sched/cancellation.h"

namespace aqed::sched {

class VerificationSession {
 public:
  explicit VerificationSession(core::SessionOptions options = {});

  // Expands the enabled property groups of `options` (cheapest first: RB,
  // SAC, FC — small monitors refute easily, FC carries the symbolic
  // orig/dup choice) into one pending job each, all under one entry.
  // Returns the entry index used by SessionResult's accessors. `label`
  // prefixes the job labels ("<label>/<property>").
  //
  // `build` is invoked once per job, each time on a fresh transition
  // system, possibly from several worker threads at once — it must not
  // mutate shared state.
  size_t Enqueue(core::AcceleratorBuilder build, core::AqedOptions options,
                 std::string label = {});

  // Requests cancellation of every outstanding job (e.g. an external
  // timeout). Running jobs stop at their next poll point.
  void Cancel() { session_source_.Cancel(); }

  // Executes all pending jobs and blocks until every one has completed or
  // been cancelled. May be called repeatedly; each call runs the jobs
  // enqueued since the previous one (entry indices keep counting up, and
  // the returned result covers only the new jobs).
  core::SessionResult Wait();

  const core::SessionOptions& options() const { return options_; }

 private:
  struct PendingJob {
    size_t entry;
    std::string label;
    core::AcceleratorBuilder build;
    core::AqedOptions options;  // exactly one property group enabled
    uint32_t bound;             // per-property bound (resolved)
  };

  void RunJob(const PendingJob& job, core::JobResult& out);
  CancellationToken TokenFor(size_t entry) const;

  core::SessionOptions options_;
  CancellationSource session_source_;
  std::vector<CancellationSource> entry_sources_;  // indexed by entry
  std::vector<PendingJob> pending_;
  size_t num_entries_ = 0;
};

}  // namespace aqed::sched
