// Memory-budget governor for verification sessions.
//
// BMC blow-up is a *resource* failure long before it is a wrong answer: a
// deep unrolling of a wide accelerator can take the process RSS past what
// the host will tolerate, and the OOM killer's verdict is neither sound nor
// attributable. The governor turns that cliff into staged, observable
// degradation. A single background thread polls the process resource probes
// (telemetry/resource.h) against SessionOptions::memory_budget_mb and
// publishes one of four pressure levels through a process-wide atomic:
//
//   kNone     — under the shed threshold; nothing changes.
//   kShed     — (>= 75% of budget by default) SAT solvers aggressively shed
//               their learnt-clause databases and compact their arenas at
//               the next reduce-DB checkpoint (Solver::ShedLearnts).
//   kThrottle — (>= 90%) the BMC engine stops escalating stalled depths
//               into cube-and-conquer fan-outs, which clone the solver once
//               per worker (bmc.cube_throttled counts the skips).
//   kCancel   — (>= 100%) the governor cancels the heaviest registered
//               job — largest published solver footprint — with
//               CancelReason::kMemoryBudget, one per poll tick, until
//               pressure falls. The job reports kUnknown with
//               UnknownReason::kMemoryBudget and is never retried (a retry
//               would just hit the same wall).
//
// The first two stages are advisory and read by solvers/engines through
// CurrentMemoryPressure() — one relaxed load, cheap enough for the solver's
// restart loop. Only the last stage is mandatory. Pressure is process-wide
// (RSS is a process-wide number); run one governed session at a time.
//
// Like the deadline watchdog, the governor thread is started lazily and the
// per-job registration is RAII (JobScope), so a finished job can never be
// cancelled late.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sched/cancellation.h"

namespace aqed::sched {

enum class MemoryPressure : uint8_t {
  kNone = 0,
  kShed = 1,      // solvers shed learnt clauses and compact arenas
  kThrottle = 2,  // BMC stops escalating into cube fan-outs
  kCancel = 3,    // the governor is cancelling the heaviest job
};

inline const char* MemoryPressureName(MemoryPressure pressure) {
  switch (pressure) {
    case MemoryPressure::kNone: return "none";
    case MemoryPressure::kShed: return "shed";
    case MemoryPressure::kThrottle: return "throttle";
    case MemoryPressure::kCancel: return "cancel";
  }
  return "?";
}

namespace internal {
// The published pressure level. Writable by tests (forcing a level
// exercises the solver's shed path without allocating gigabytes); written
// by at most one governor at a time otherwise.
extern std::atomic<uint8_t> g_pressure;
}  // namespace internal

// The pressure level the active governor last published (kNone when no
// governor is running). One relaxed load.
inline MemoryPressure CurrentMemoryPressure() {
  return static_cast<MemoryPressure>(
      internal::g_pressure.load(std::memory_order_relaxed));
}

// Publishes the calling thread's current solver heap estimate
// (Solver::MemoryBytes, refreshed at restart boundaries) into the job
// registered on this thread via MemoryGovernor::JobScope. A no-op on
// threads without a registered job (standalone solves, cube workers).
void PublishSolverMemory(uint64_t bytes);

class MemoryGovernor {
 public:
  struct Options {
    uint32_t budget_mb = 0;        // RSS budget; 0 disables every stage
    uint32_t poll_ms = 20;         // probe period
    uint32_t shed_percent = 75;    // kShed at >= this % of budget
    uint32_t throttle_percent = 90;  // kThrottle at >= this % of budget
  };

  struct Stats {
    uint64_t polls = 0;
    uint64_t jobs_cancelled = 0;  // kCancel-stage cancellations issued
    int64_t peak_rss_kb = 0;      // high-water RSS seen by the poll loop
  };

  explicit MemoryGovernor(const Options& options) : options_(options) {}
  ~MemoryGovernor();  // stops the thread (all JobScopes must be dead)

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  // Starts (or restarts after Stop) the poll thread. Idempotent.
  void Start();
  // Stops and joins the poll thread and resets the published pressure to
  // kNone. Idempotent; Start may be called again afterwards.
  void Stop();

  // One running job's registration with the governor. Unregisters on
  // destruction; also binds the calling thread's PublishSolverMemory slot
  // to this job for its lifetime. Movable, not copyable.
  class JobScope {
   public:
    JobScope() = default;
    JobScope(JobScope&& other) noexcept { *this = std::move(other); }
    JobScope& operator=(JobScope&& other) noexcept;
    ~JobScope() { Release(); }

    JobScope(const JobScope&) = delete;
    JobScope& operator=(const JobScope&) = delete;

    // Fires with CancelReason::kMemoryBudget when the governor sheds this
    // job. Compose into the job's token with CancellationToken::Any.
    CancellationToken token() const { return source_.token(); }

   private:
    friend class MemoryGovernor;
    JobScope(MemoryGovernor* governor, uint64_t id,
             CancellationSource source);
    void Release();

    MemoryGovernor* governor_ = nullptr;
    uint64_t id_ = 0;
    CancellationSource source_;
  };

  // Registers the calling thread's current job. Call from the thread that
  // runs the job (the scope binds that thread's solver-memory slot).
  JobScope Register(std::string label);

  Stats stats() const;

 private:
  struct Job {
    uint64_t id;
    std::string label;
    CancellationSource source;
    std::shared_ptr<std::atomic<uint64_t>> bytes;  // published footprint
  };

  void Loop();
  void Unregister(uint64_t id);
  // Cancels the heaviest not-yet-cancelled registered job. mu_ held.
  void CancelHeaviestLocked();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Job> jobs_;
  Stats stats_;
  uint64_t next_id_ = 1;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace aqed::sched
