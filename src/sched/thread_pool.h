// Fixed-size thread pool executing submitted tasks in FIFO order.
//
// Deliberately work-stealing-free: verification jobs are coarse (seconds of
// SAT solving each), so a single locked queue is nowhere near contention and
// FIFO order keeps job start order equal to submission order — which is what
// makes the scheduler's first-bug-wins behavior reproducible.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aqed::sched {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (>= 1; 0 is promoted to the hardware
  // concurrency, which itself is promoted to 1 when unknown).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();  // Wait()s, then joins the workers.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle.
  void Wait();

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  // The worker count a `0 = auto` jobs knob resolves to.
  static uint32_t HardwareJobs();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / stop
  std::condition_variable idle_cv_;   // Wait() waits for drain
  std::deque<std::function<void()>> queue_;
  uint32_t active_ = 0;               // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace aqed::sched
