#include "sched/session.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <numeric>

#include "sched/thread_pool.h"
#include "support/stats.h"
#include "support/status.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace aqed::sched {

VerificationSession::VerificationSession(core::SessionOptions options)
    : options_(options) {
  // Same screening whether the options were struct-poked or Builder-made:
  // an incoherent scheduling configuration (see SessionOptions::Validate)
  // fails at construction, not as a silent no-op mid-campaign.
  const Status valid = options_.Validate();
  AQED_CHECK(valid.ok(), "VerificationSession: " + valid.message());
  // Asking for a trace or metrics file is the opt-in that arms the
  // process-wide telemetry switch; everything else keys off it.
  if (!options_.trace_path.empty() || !options_.metrics_path.empty()) {
    telemetry::SetEnabled(true);
  }
}

core::JobHandle VerificationSession::Enqueue(core::AcceleratorBuilder build,
                                             core::AqedOptions options,
                                             std::string label) {
  const Status valid = options.Validate();
  AQED_CHECK(valid.ok(), "Enqueue with invalid options: " + valid.message());

  const size_t entry = num_entries_++;
  entry_sources_.emplace_back();

  const auto add = [&](core::AqedOptions group, uint32_t bound,
                       const char* property) {
    std::string job_label =
        label.empty() ? property : label + "/" + property;
    pending_.push_back({entry, std::move(job_label), build, std::move(group),
                        bound ? bound : options.bmc.max_bound,
                        options.bmc.conflict_budget, options_.deadline_ms});
  };
  // Cheapest property groups first: the RB and SAC monitors are small
  // counters/comparators whose refutations are easy, while FC carries the
  // symbolic orig/dup choice. A deadlocked design is reported in
  // milliseconds by the RB job instead of after deep FC refutations — and
  // under first-bug-wins it then cancels them outright.
  if (options.rb.has_value()) {
    core::AqedOptions rb_only = options;
    rb_only.check_fc = false;
    rb_only.sac_spec.reset();
    add(std::move(rb_only), options.rb_bound, "RB");
  }
  if (options.sac_spec.has_value()) {
    core::AqedOptions sac_only = options;
    sac_only.check_fc = false;
    sac_only.rb.reset();
    add(std::move(sac_only), options.sac_bound, "SAC");
  }
  if (options.check_fc) {
    core::AqedOptions fc_only = options;
    fc_only.rb.reset();
    fc_only.sac_spec.reset();
    add(std::move(fc_only), options.fc_bound, "FC");
  }
  return core::JobHandle(entry, std::move(label));
}

CancellationToken VerificationSession::TokenFor(size_t entry) const {
  switch (options_.cancel) {
    case core::SessionOptions::CancelPolicy::kEntry:
      return CancellationToken::Any(session_source_.token(),
                                    entry_sources_[entry].token());
    case core::SessionOptions::CancelPolicy::kSession:
    case core::SessionOptions::CancelPolicy::kNone:
      // kNone still honors an explicit VerificationSession::Cancel().
      return session_source_.token();
  }
  return session_source_.token();
}

namespace {

// Live-job gauge for the flight recorder: how many verification jobs are
// between start and finish right now (pool workers *and* inline execution,
// unlike sched.pool.active). RAII so a throwing builder can't leak a count.
struct LiveJobGauge {
  LiveJobGauge() { telemetry::AddGauge("sched.jobs.live", 1); }
  ~LiveJobGauge() { telemetry::AddGauge("sched.jobs.live", -1); }
};

}  // namespace

void VerificationSession::RunJob(const PendingJob& job, core::JobResult& out) {
  out.entry = job.entry;
  out.label = job.label;
  out.attempt = job.attempt;
  CancellationToken token = TokenFor(job.entry);
  if (token.cancelled()) {
    // First-bug-wins (or an external cancel) landed before this job
    // started: report it untouched.
    out.cancelled = true;
    out.result.bmc.outcome = bmc::BmcResult::Outcome::kUnknown;
    out.result.bmc.cancelled = true;
    out.result.bmc.unknown_reason = UnknownReasonFromCancel(token.reason());
    out.unknown_reason = out.result.bmc.unknown_reason;
    return;
  }
  LiveJobGauge live_job;
  // Arm the wall-clock watchdog for this attempt; the guard disarms it the
  // moment the job returns, so a finished job can never be tripped late.
  CancellationSource deadline_source;
  Watchdog::Guard deadline_guard;
  if (job.deadline_ms > 0) {
    deadline_guard = watchdog_.Arm(deadline_source, job.deadline_ms);
    token = CancellationToken::Any(token, deadline_source.token());
  }
  // Register with the memory governor (when the session is budgeted) so
  // the job can be shed at stage 3 and its solver footprint is attributed
  // to it. RAII like the deadline guard: a finished job is never shed late.
  MemoryGovernor::JobScope governor_scope;
  if (governor_ != nullptr) {
    governor_scope = governor_->Register(job.label);
    token = CancellationToken::Any(token, governor_scope.token());
  }
  // One span per executed attempt: this is the busy-time unit of the
  // Perfetto view, so per-thread job spans account for (almost) all of a
  // worker's occupied time.
  telemetry::Span span("sched.job:" + job.label,
                       {{"entry", static_cast<int64_t>(job.entry)},
                        {"attempt", job.attempt}});
  Stopwatch watch;
  auto ts = std::make_unique<ir::TransitionSystem>();
  const core::AcceleratorInterface acc = job.build(*ts);
  core::AqedOptions options = job.options;
  options.bmc.max_bound = job.bound;
  options.bmc.conflict_budget = job.conflict_budget;
  options.bmc.cancel = token;
  if (options.bmc.cube.enabled && options.bmc.cube.jobs == 0) {
    // Cube workers inherit the session's parallelism rather than hardware
    // concurrency: a --jobs 4 session escalating inside a job should not
    // suddenly fan out to 64 threads.
    options.bmc.cube.jobs =
        options_.jobs == 0 ? ThreadPool::HardwareJobs() : options_.jobs;
  }
  out.result = core::RunAqed(*ts, acc, options);
  deadline_guard.Disarm();
  out.wall_seconds = watch.ElapsedSeconds();
  // A counterexample that fails simulator replay is a checker bug, never a
  // design verdict: demote it to a hard per-job failure. It must not win
  // first-bug-wins (the "bug" is unsubstantiated) and must not read as
  // clean — JobResult::checker_error and the session stats carry it.
  if (out.result.bug_found && options.bmc.validate_counterexamples &&
      !out.result.bmc.trace_validated) {
    out.checker_error = true;
    out.result.bug_found = false;
    telemetry::AddCounter("sched.checker_errors", 1);
  }
  out.unknown_reason =
      out.result.bmc.outcome == bmc::BmcResult::Outcome::kUnknown
          ? out.result.bmc.unknown_reason
          : UnknownReason::kNone;
  // A deadline expiry or a memory-governor shed is a per-job resource
  // verdict, not a sibling stopping us — only the latter counts as
  // "cancelled" for first-bug-wins accounting.
  out.cancelled = out.result.bmc.cancelled &&
                  out.unknown_reason != UnknownReason::kDeadline &&
                  out.unknown_reason != UnknownReason::kMemoryBudget;
  out.ts = std::move(ts);
  if (telemetry::Enabled()) {
    telemetry::AddCounter("sched.jobs", 1);
    telemetry::ObserveLatencyMs("sched.job_ms", out.wall_seconds * 1e3);
    span.AddArg("bug", out.result.bug_found ? 1 : 0);
    span.AddArg("frames", out.result.bmc.frames_explored);
  }

  if (out.result.bug_found) {
    switch (options_.cancel) {
      case core::SessionOptions::CancelPolicy::kEntry:
        entry_sources_[job.entry].Cancel(CancelReason::kFirstBugWins);
        break;
      case core::SessionOptions::CancelPolicy::kSession:
        session_source_.Cancel(CancelReason::kFirstBugWins);
        break;
      case core::SessionOptions::CancelPolicy::kNone:
        break;
    }
  }
}

void VerificationSession::RunBatch(const std::vector<PendingJob>& jobs,
                                   const std::vector<size_t>& batch,
                                   std::vector<core::JobResult>& results,
                                   SessionStats& stats) {
  const uint32_t workers =
      options_.jobs == 0 ? ThreadPool::HardwareJobs() : options_.jobs;
  if (workers <= 1 || batch.size() <= 1) {
    // Inline sequential execution: deterministic, pool-free, and exactly
    // the legacy CheckAccelerator order.
    for (size_t i : batch) RunJob(jobs[i], results[i]);
  } else {
    ThreadPool pool(std::min<uint32_t>(workers,
                                       static_cast<uint32_t>(batch.size())));
    for (size_t i : batch) {
      // Queue wait — submission to execution start — is timed from here so
      // the trace separates "sat in the FIFO behind siblings" from actual
      // verification work.
      const uint64_t submit_us =
          telemetry::Enabled() ? telemetry::NowMicros() : 0;
      pool.Submit([this, &jobs, &results, i, submit_us] {
        if (telemetry::Enabled()) {
          const uint64_t start_us = telemetry::NowMicros();
          telemetry::Tracer::Global().RecordComplete(
              "sched.queue_wait", submit_us, start_us,
              {{"job", static_cast<int64_t>(i)}});
          telemetry::ObserveLatencyMs(
              "sched.queue_wait_ms",
              static_cast<double>(start_us - submit_us) * 1e-3);
        }
        RunJob(jobs[i], results[i]);
      });
    }
    pool.Wait();
  }
  for (size_t i : batch) {
    const core::JobResult& job = results[i];
    stats.AddJob({.label = job.label,
                  .wall_seconds = job.wall_seconds,
                  .solver_seconds = job.result.bmc.seconds,
                  .conflicts = job.result.bmc.conflicts,
                  .frames_explored = job.result.bmc.frames_explored,
                  .cancelled = job.cancelled,
                  .bug_found = job.result.bug_found,
                  .checker_error = job.checker_error,
                  .attempt = job.attempt,
                  .unknown_reason = job.unknown_reason});
  }
}

bool VerificationSession::EscalateForRetry(const core::JobResult& result,
                                           PendingJob& job) const {
  if (result.result.bmc.outcome != bmc::BmcResult::Outcome::kUnknown) {
    return false;
  }
  // Cancelled jobs are decided elsewhere (first-bug-wins) or abandoned
  // (external cancel) — re-running them would just be cancelled again.
  if (result.unknown_reason != UnknownReason::kConflictBudget &&
      result.unknown_reason != UnknownReason::kDeadline) {
    return false;
  }
  if (TokenFor(job.entry).cancelled()) return false;
  bool escalated = false;
  if (job.conflict_budget > 0) {
    int64_t next = job.conflict_budget * 2;
    const int64_t cap = options_.retry.max_conflict_budget;
    if (cap > 0) next = std::min(next, cap);
    if (next > job.conflict_budget) {
      job.conflict_budget = next;
      escalated = true;
    }
  }
  if (job.deadline_ms > 0) {
    uint64_t next = static_cast<uint64_t>(job.deadline_ms) * 2;
    const uint32_t cap = options_.retry.max_deadline_ms;
    if (cap > 0) next = std::min<uint64_t>(next, cap);
    next = std::min<uint64_t>(next, UINT32_MAX);
    if (next > job.deadline_ms) {
      job.deadline_ms = static_cast<uint32_t>(next);
      escalated = true;
    }
  }
  // A retry with identical budgets would deterministically fail the same
  // way; only re-run when something actually grew.
  return escalated;
}

core::SessionResult VerificationSession::Wait() {
  // Export on *every* exit — including an exception thrown by a user
  // builder running inline — not just the happy-path return: a session
  // that dies mid-run is exactly the one whose telemetry matters most.
  // Declared before the wait span so the span ends (and is drained) first.
  struct ExportGuard {
    VerificationSession* session;
    ~ExportGuard() {
      if (telemetry::Enabled()) session->ExportTelemetry();
    }
  } export_guard{this};
  // A budgeted session runs its governor thread only while Wait() executes
  // jobs; the guard stops it on every exit (and resets the published
  // pressure), so no pressure level outlives the session round.
  if (options_.memory_budget_mb > 0 && governor_ == nullptr) {
    MemoryGovernor::Options governor_options;
    governor_options.budget_mb = options_.memory_budget_mb;
    governor_ = std::make_unique<MemoryGovernor>(governor_options);
  }
  struct GovernorGuard {
    MemoryGovernor* governor;
    ~GovernorGuard() {
      if (governor != nullptr) governor->Stop();
    }
  } governor_guard{governor_.get()};
  if (governor_ != nullptr) governor_->Start();
  if (options_.sample_period_ms > 0 && telemetry::Enabled()) {
    if (sampler_ == nullptr) {
      telemetry::SamplerOptions sampler_options;
      sampler_options.period_ms = options_.sample_period_ms;
      sampler_ = std::make_unique<telemetry::Sampler>(sampler_options);
    }
    sampler_->Start();
  }
  telemetry::Span span("sched.session.wait");
  Stopwatch watch;
  core::SessionResult result;
  std::vector<PendingJob> jobs = std::move(pending_);
  pending_.clear();
  result.jobs.resize(jobs.size());
  span.AddArg("jobs", static_cast<int64_t>(jobs.size()));

  std::vector<size_t> batch(jobs.size());
  std::iota(batch.begin(), batch.end(), 0);
  for (uint32_t attempt = 0;; ++attempt) {
    for (size_t i : batch) jobs[i].attempt = attempt;
    RunBatch(jobs, batch, result.jobs, result.stats);
    if (attempt >= options_.retry.max_retries) break;
    std::vector<size_t> retry;
    for (size_t i : batch) {
      if (EscalateForRetry(result.jobs[i], jobs[i])) retry.push_back(i);
    }
    if (retry.empty()) break;
    telemetry::AddCounter("sched.retries", retry.size());
    // Re-run escalated jobs into their original result slots: the final
    // JobResult (and the entry verdict) reflects the last attempt, while
    // the stats table keeps one row per executed attempt.
    for (size_t i : retry) result.jobs[i] = core::JobResult{};
    batch = std::move(retry);
  }

  result.num_entries = num_entries_;
  result.wall_seconds = watch.ElapsedSeconds();
  result.stats.set_wall_seconds(result.wall_seconds);
  span.End();
  return result;  // export_guard flushes trace/metrics/samples
}

void VerificationSession::ExportTelemetry() {
  if (sampler_ != nullptr) {
    sampler_->Stop();
    std::vector<telemetry::TimeSeriesSample> samples = sampler_->TakeSamples();
    std::move(samples.begin(), samples.end(), std::back_inserter(samples_));
  }
  std::vector<telemetry::TraceEvent> events =
      telemetry::Tracer::Global().Drain();
  std::move(events.begin(), events.end(), std::back_inserter(trace_log_));
  // Surface export failures instead of losing them: the session keeps
  // running (telemetry must never take the run down), but a full disk or
  // unwritable path is printed, not swallowed.
  if (!options_.trace_path.empty() &&
      !telemetry::WriteChromeTraceFile(options_.trace_path, trace_log_)) {
    std::fprintf(stderr, "[session] failed to write trace file %s\n",
                 options_.trace_path.c_str());
  }
  if (!options_.metrics_path.empty() &&
      !telemetry::WriteMetricsJsonlFile(
          options_.metrics_path,
          telemetry::MetricsRegistry::Global().Snapshot(), samples_)) {
    std::fprintf(stderr, "[session] failed to write metrics file %s\n",
                 options_.metrics_path.c_str());
  }
}

}  // namespace aqed::sched
