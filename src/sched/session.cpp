#include "sched/session.h"

#include <algorithm>

#include "sched/thread_pool.h"
#include "support/stats.h"
#include "support/status.h"

namespace aqed::sched {

VerificationSession::VerificationSession(core::SessionOptions options)
    : options_(options) {}

size_t VerificationSession::Enqueue(core::AcceleratorBuilder build,
                                    core::AqedOptions options,
                                    std::string label) {
  const Status valid = options.Validate();
  AQED_CHECK(valid.ok(), "Enqueue with invalid options: " + valid.message());

  const size_t entry = num_entries_++;
  entry_sources_.emplace_back();

  const auto add = [&](core::AqedOptions group, uint32_t bound,
                       const char* property) {
    std::string job_label =
        label.empty() ? property : label + "/" + property;
    pending_.push_back({entry, std::move(job_label), build, std::move(group),
                        bound ? bound : options.bmc.max_bound});
  };
  // Cheapest property groups first: the RB and SAC monitors are small
  // counters/comparators whose refutations are easy, while FC carries the
  // symbolic orig/dup choice. A deadlocked design is reported in
  // milliseconds by the RB job instead of after deep FC refutations — and
  // under first-bug-wins it then cancels them outright.
  if (options.rb.has_value()) {
    core::AqedOptions rb_only = options;
    rb_only.check_fc = false;
    rb_only.sac_spec.reset();
    add(std::move(rb_only), options.rb_bound, "RB");
  }
  if (options.sac_spec.has_value()) {
    core::AqedOptions sac_only = options;
    sac_only.check_fc = false;
    sac_only.rb.reset();
    add(std::move(sac_only), options.sac_bound, "SAC");
  }
  if (options.check_fc) {
    core::AqedOptions fc_only = options;
    fc_only.rb.reset();
    fc_only.sac_spec.reset();
    add(std::move(fc_only), options.fc_bound, "FC");
  }
  return entry;
}

CancellationToken VerificationSession::TokenFor(size_t entry) const {
  switch (options_.cancel) {
    case core::SessionOptions::CancelPolicy::kEntry:
      return CancellationToken::Any(session_source_.token(),
                                    entry_sources_[entry].token());
    case core::SessionOptions::CancelPolicy::kSession:
    case core::SessionOptions::CancelPolicy::kNone:
      // kNone still honors an explicit VerificationSession::Cancel().
      return session_source_.token();
  }
  return session_source_.token();
}

void VerificationSession::RunJob(const PendingJob& job, core::JobResult& out) {
  out.entry = job.entry;
  out.label = job.label;
  const CancellationToken token = TokenFor(job.entry);
  if (token.cancelled()) {
    // First-bug-wins landed before this job started: report it untouched.
    out.cancelled = true;
    out.result.bmc.outcome = bmc::BmcResult::Outcome::kUnknown;
    out.result.bmc.cancelled = true;
    return;
  }
  Stopwatch watch;
  auto ts = std::make_unique<ir::TransitionSystem>();
  const core::AcceleratorInterface acc = job.build(*ts);
  core::AqedOptions options = job.options;
  options.bmc.max_bound = job.bound;
  options.bmc.cancel = token;
  out.result = core::RunAqed(*ts, acc, options);
  out.wall_seconds = watch.ElapsedSeconds();
  out.cancelled = out.result.bmc.cancelled;
  out.ts = std::move(ts);

  if (out.result.bug_found) {
    switch (options_.cancel) {
      case core::SessionOptions::CancelPolicy::kEntry:
        entry_sources_[job.entry].Cancel();
        break;
      case core::SessionOptions::CancelPolicy::kSession:
        session_source_.Cancel();
        break;
      case core::SessionOptions::CancelPolicy::kNone:
        break;
    }
  }
}

core::SessionResult VerificationSession::Wait() {
  Stopwatch watch;
  core::SessionResult result;
  result.jobs.resize(pending_.size());

  const uint32_t jobs =
      options_.jobs == 0 ? ThreadPool::HardwareJobs() : options_.jobs;
  if (jobs <= 1 || pending_.size() <= 1) {
    // Inline sequential execution: deterministic, thread-free, and exactly
    // the legacy CheckAccelerator order.
    for (size_t i = 0; i < pending_.size(); ++i) {
      RunJob(pending_[i], result.jobs[i]);
    }
  } else {
    ThreadPool pool(std::min<uint32_t>(jobs, pending_.size()));
    for (size_t i = 0; i < pending_.size(); ++i) {
      pool.Submit([this, i, &result] { RunJob(pending_[i], result.jobs[i]); });
    }
    pool.Wait();
  }
  pending_.clear();

  result.num_entries = num_entries_;
  result.wall_seconds = watch.ElapsedSeconds();
  for (const core::JobResult& job : result.jobs) {
    result.stats.AddJob({job.label, job.wall_seconds, job.result.bmc.seconds,
                         job.result.bmc.conflicts,
                         job.result.bmc.frames_explored, job.cancelled,
                         job.result.bug_found});
  }
  result.stats.set_wall_seconds(result.wall_seconds);
  return result;
}

}  // namespace aqed::sched
